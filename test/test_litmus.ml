(* Litmus representation and runner. *)

let test_layout () =
  List.iter
    (fun d ->
      let inst = { Litmus.Test.idiom = Litmus.Test.MP; distance = d } in
      Alcotest.(check int)
        (Printf.sprintf "layout for d=%d" d)
        (d + 2)
        (Litmus.Test.layout_words inst))
    [ 0; 1; 32; 255 ]

let test_weak_predicates () =
  let open Litmus.Test in
  Alcotest.(check bool) "MP weak" true
    (weak { idiom = MP; distance = 0 } ~r1:1 ~r2:0);
  Alcotest.(check bool) "MP strong" false
    (weak { idiom = MP; distance = 0 } ~r1:1 ~r2:1);
  Alcotest.(check bool) "LB weak" true
    (weak { idiom = LB; distance = 0 } ~r1:1 ~r2:1);
  Alcotest.(check bool) "SB weak" true
    (weak { idiom = SB; distance = 0 } ~r1:0 ~r2:0)

let test_runner_deterministic () =
  let inst = { Litmus.Test.idiom = Litmus.Test.SB; distance = 64 } in
  let a =
    Litmus.Runner.count_weak ~chip:Gpusim.Chip.titan ~seed:12 ~runs:100 inst
  in
  let b =
    Litmus.Runner.count_weak ~chip:Gpusim.Chip.titan ~seed:12 ~runs:100 inst
  in
  Alcotest.(check int) "same seed, same count" a b

let test_sc_chip_never_weak () =
  List.iter
    (fun idiom ->
      List.iter
        (fun distance ->
          let inst = { Litmus.Test.idiom; distance } in
          Alcotest.(check int)
            (Printf.sprintf "%s d=%d on SC" (Litmus.Test.idiom_name idiom)
               distance)
            0
            (Litmus.Runner.count_weak ~chip:Gpusim.Chip.sequential ~seed:3
               ~runs:50 inst))
        [ 0; 64 ])
    Litmus.Test.idioms

let stress_env ~loc =
  let strategy =
    Core.Stress.Fixed
      { sequence = [ Core.Access_seq.St; Core.Access_seq.Ld ];
        locations = [ loc ]; scratch_words = 256 }
  in
  Core.Environment.for_litmus (Core.Environment.make strategy ~randomise:false)

let test_same_patch_never_weak () =
  (* d = 0 puts both communication locations in one partition: FIFO order
     makes the weak outcome unobservable, even under heavy stress.  This is
     the paper's "no weak behaviour for d < patch size". *)
  List.iter
    (fun idiom ->
      let inst = { Litmus.Test.idiom; distance = 0 } in
      List.iter
        (fun loc ->
          Alcotest.(check int)
            (Printf.sprintf "%s d=0 stress@%d" (Litmus.Test.idiom_name idiom)
               loc)
            0
            (Litmus.Runner.count_weak ~chip:Gpusim.Chip.titan ~seed:17
               ~env:(stress_env ~loc) ~runs:150 inst))
        [ 0; 128 ])
    Litmus.Test.idioms

let test_matching_stress_provokes_weak () =
  (* Stressing the partition of a communication location at d = 64 exposes
     weak behaviour far more often than native runs. *)
  let inst = { Litmus.Test.idiom = Litmus.Test.SB; distance = 64 } in
  let native =
    Litmus.Runner.count_weak ~chip:Gpusim.Chip.titan ~seed:21 ~runs:200 inst
  in
  (* The scratchpad lands at base 128 after the test's allocations, so
     location 192 maps to the partition of y. *)
  let stressed =
    Litmus.Runner.count_weak ~chip:Gpusim.Chip.titan ~seed:21
      ~env:(stress_env ~loc:192) ~runs:200 inst
  in
  Alcotest.(check bool)
    (Printf.sprintf "stressed (%d) >> native (%d)" stressed native)
    true
    (stressed > native + 10)

let test_timeout_not_weak () =
  let o =
    Litmus.Runner.run_once ~chip:Gpusim.Chip.titan ~seed:5
      { Litmus.Test.idiom = Litmus.Test.MP; distance = 1 }
  in
  if o.Litmus.Runner.timed_out then
    Alcotest.(check bool) "timeout never counts as weak" false
      o.Litmus.Runner.weak

let prop_weak_outcomes_match_observed =
  (* Whatever the machine produces, non-weak outcomes must be among the
     SC-reachable ones OR the designated weak outcome; nothing else is
     expressible by the kernels. *)
  QCheck.Test.make ~name:"observed registers are boolean" ~count:60
    QCheck.(pair (int_range 0 2) (int_range 0 100))
  @@ fun (i, d) ->
  let idiom = List.nth Litmus.Test.idioms i in
  let inst = { Litmus.Test.idiom; distance = d } in
  let o = Litmus.Runner.run_once ~chip:Gpusim.Chip.c2075 ~seed:(d + 1000) inst in
  o.Litmus.Runner.timed_out
  || (List.mem o.Litmus.Runner.r1 [ 0; 1 ] && List.mem o.Litmus.Runner.r2 [ 0; 1 ])

let () =
  Alcotest.run "litmus"
    [ ( "unit",
        [ Alcotest.test_case "layout" `Quick test_layout;
          Alcotest.test_case "weak predicates" `Quick test_weak_predicates;
          Alcotest.test_case "runner determinism" `Quick
            test_runner_deterministic;
          Alcotest.test_case "SC chip never weak" `Quick
            test_sc_chip_never_weak;
          Alcotest.test_case "same patch never weak" `Quick
            test_same_patch_never_weak;
          Alcotest.test_case "matching stress provokes weak" `Quick
            test_matching_stress_provokes_weak;
          Alcotest.test_case "timeout not weak" `Quick test_timeout_not_weak ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_weak_outcomes_match_observed ] ) ]
