(* Access sequences: enumeration, notation, rotation classes. *)

module A = Core.Access_seq

let seq_t = Alcotest.testable (fun ppf s -> Fmt.string ppf (A.to_string s)) ( = )

let test_enumeration_count () =
  (* 2 + 4 + ... + 2^N sequences. *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "count for N=%d" n)
        ((1 lsl (n + 1)) - 2)
        (List.length (A.all ~max_len:n)))
    [ 1; 2; 3; 5 ]

let test_enumeration_distinct () =
  let all = A.all ~max_len:5 in
  Alcotest.(check int) "no duplicates" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_to_string () =
  Alcotest.(check string) "ld st2 ld" "ld st2 ld"
    (A.to_string [ A.Ld; A.St; A.St; A.Ld ]);
  Alcotest.(check string) "ld4 st" "ld4 st"
    (A.to_string [ A.Ld; A.Ld; A.Ld; A.Ld; A.St ]);
  Alcotest.(check string) "single" "st" (A.to_string [ A.St ])

let test_of_string () =
  Alcotest.(check (option seq_t)) "parse compact"
    (Some [ A.Ld; A.St; A.St; A.Ld ])
    (A.of_string "ld st2 ld");
  Alcotest.(check (option seq_t)) "parse spelled out"
    (Some [ A.Ld; A.Ld; A.St ])
    (A.of_string "ld ld st");
  Alcotest.(check (option seq_t)) "reject garbage" None (A.of_string "xy 2");
  Alcotest.(check (option seq_t)) "reject empty" None (A.of_string "")

let prop_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 6) (map (fun b -> if b then A.Ld else A.St) bool))
  in
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:300
    (QCheck.make ~print:A.to_string gen)
  @@ fun s -> A.of_string (A.to_string s) = Some s

let test_rotations () =
  let s = [ A.Ld; A.St; A.St ] in
  Alcotest.(check int) "three rotations" 3 (List.length (A.rotations s));
  Alcotest.(check bool) "contains itself" true (List.mem s (A.rotations s))

let prop_rotation_class_invariant =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 6) (map (fun b -> if b then A.Ld else A.St) bool))
  in
  QCheck.Test.make ~name:"rotation class is rotation-invariant" ~count:200
    (QCheck.make ~print:A.to_string gen)
  @@ fun s ->
  List.for_all (fun r -> A.rotation_class r = A.rotation_class s) (A.rotations s)

let test_paper_winners_parse () =
  (* Every sequence in Table 2 must be expressible. *)
  List.iter
    (fun str ->
      match A.of_string str with
      | Some _ -> ()
      | None -> Alcotest.fail ("cannot parse Table 2 sequence " ^ str))
    [ "ld4 st"; "ld3 st ld"; "ld st2 ld"; "st2 ld2"; "ld st" ]

let test_rotation_equivalences_from_paper () =
  (* Sec. 3.3 notes ld st2 ld ~ st2 ld2 under rotation. *)
  let a = Option.get (A.of_string "ld st2 ld") in
  let b = Option.get (A.of_string "st2 ld2") in
  Alcotest.(check seq_t) "same rotation class" (A.rotation_class a)
    (A.rotation_class b)

let () =
  Alcotest.run "access_seq"
    [ ( "unit",
        [ Alcotest.test_case "enumeration count" `Quick test_enumeration_count;
          Alcotest.test_case "enumeration distinct" `Quick
            test_enumeration_distinct;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "rotations" `Quick test_rotations;
          Alcotest.test_case "paper winners parse" `Quick
            test_paper_winners_parse;
          Alcotest.test_case "paper rotation equivalence" `Quick
            test_rotation_equivalences_from_paper ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_rotation_class_invariant ] ) ]
