(* The PRNG underpins reproducibility of every experiment. *)

let test_determinism () =
  let a = Gpusim.Rng.create 1234 and b = Gpusim.Rng.create 1234 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Gpusim.Rng.int64 a) (Gpusim.Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Gpusim.Rng.create 1 and b = Gpusim.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Gpusim.Rng.int64 a = Gpusim.Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Gpusim.Rng.create 7 in
  let b = Gpusim.Rng.copy a in
  let va = Gpusim.Rng.int64 a in
  let vb = Gpusim.Rng.int64 b in
  Alcotest.(check int64) "copy resumes at same point" va vb;
  ignore (Gpusim.Rng.int64 a);
  let va2 = Gpusim.Rng.int64 a and vb2 = Gpusim.Rng.int64 b in
  Alcotest.(check bool) "diverge after unequal draws" true (va2 <> vb2)

let test_split_independent () =
  let a = Gpusim.Rng.create 99 in
  let b = Gpusim.Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Gpusim.Rng.int64 a = Gpusim.Rng.int64 b then incr matches
  done;
  Alcotest.(check bool) "split streams differ" true (!matches < 4)

let prop_int_bounds =
  QCheck.Test.make ~name:"int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
  @@ fun (seed, n) ->
  let t = Gpusim.Rng.create seed in
  let v = Gpusim.Rng.int t n in
  v >= 0 && v < n

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int_in within inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
  @@ fun (seed, lo, width) ->
  let hi = lo + width in
  let t = Gpusim.Rng.create seed in
  let v = Gpusim.Rng.int_in t lo hi in
  v >= lo && v <= hi

let prop_float_unit =
  QCheck.Test.make ~name:"float in [0,1)" ~count:500 QCheck.small_int
  @@ fun seed ->
  let t = Gpusim.Rng.create seed in
  let v = Gpusim.Rng.float t in
  v >= 0.0 && v < 1.0

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (int_range 0 30))
  @@ fun (seed, n) ->
  let t = Gpusim.Rng.create seed in
  let a = Array.init n (fun i -> i) in
  Gpusim.Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  sorted = Array.init n (fun i -> i)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_distinct: distinct, in range, right size"
    ~count:200
    QCheck.(pair small_int (int_range 0 20))
  @@ fun (seed, n) ->
  let t = Gpusim.Rng.create seed in
  let m = if n = 0 then 0 else Gpusim.Rng.int t (n + 1) in
  let s = Gpusim.Rng.sample_distinct t m n in
  List.length s = m
  && List.sort_uniq compare s = List.sort compare s
  && List.for_all (fun x -> x >= 0 && x < n) s

let test_uniformity () =
  (* Coarse chi-square-free sanity: each bucket of 8 gets 10-40% over 1000
     draws of [Rng.int t 8]. *)
  let t = Gpusim.Rng.create 5 in
  let buckets = Array.make 8 0 in
  for _ = 1 to 1000 do
    let v = Gpusim.Rng.int t 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d reasonable (%d)" i c)
        true
        (c > 60 && c < 250))
    buckets

let test_chance_extremes () =
  let t = Gpusim.Rng.create 3 in
  for _ = 1 to 20 do
    Alcotest.(check bool) "p=0 never" false (Gpusim.Rng.chance t 0.0);
    Alcotest.(check bool) "p=1 always" true (Gpusim.Rng.chance t 1.0)
  done

let () =
  Alcotest.run "rng"
    [ ( "unit",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "uniformity" `Quick test_uniformity;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_int_bounds; prop_int_in_bounds; prop_float_unit;
            prop_shuffle_permutation; prop_sample_distinct ] ) ]
