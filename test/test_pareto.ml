(* Pareto selection used by the sequence and spread finders. *)

let scores (x : int array) = x

let test_dominates () =
  Alcotest.(check bool) "strictly better" true
    (Core.Pareto.dominates ~scores [| 2; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "equal does not dominate" false
    (Core.Pareto.dominates ~scores [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "trade-off does not dominate" false
    (Core.Pareto.dominates ~scores [| 3; 0 |] [| 0; 3 |])

let test_front () =
  let items = [ [| 3; 0 |]; [| 0; 3 |]; [| 1; 1 |]; [| 0; 0 |]; [| 3; 1 |] ] in
  let front = Core.Pareto.front ~scores items in
  Alcotest.(check int) "front size" 2 (List.length front);
  Alcotest.(check bool) "[|3;1|] on front" true (List.mem [| 3; 1 |] front);
  Alcotest.(check bool) "[|0;3|] on front" true (List.mem [| 0; 3 |] front)

let test_select_unique () =
  let items = [ [| 1; 1; 1 |]; [| 2; 2; 2 |]; [| 0; 3; 0 |] ] in
  Alcotest.(check (option (array int)))
    "dominating item selected"
    (Some [| 2; 2; 2 |])
    (Core.Pareto.select ~scores ~tie:compare items)

let test_select_tie_break_wins () =
  (* a wins two objectives, b wins one: a preferred (the paper's "most
     effective for two of the three tests"). *)
  let a = [| 5; 5; 0 |] and b = [| 0; 0; 9 |] in
  Alcotest.(check (option (array int)))
    "majority-objective winner" (Some a)
    (Core.Pareto.select ~scores ~tie:compare [ b; a ])

let test_select_empty () =
  Alcotest.(check (option (array int)))
    "empty" None
    (Core.Pareto.select ~scores ~tie:compare [])

let gen_items =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (array_size (return 3) (int_range 0 20)))

let prop_select_on_front =
  QCheck.Test.make ~name:"selected item is Pareto optimal" ~count:300
    (QCheck.make gen_items)
  @@ fun items ->
  match Core.Pareto.select ~scores ~tie:compare items with
  | None -> items = []
  | Some x -> List.mem x (Core.Pareto.front ~scores items)

let prop_front_members_undominated =
  QCheck.Test.make ~name:"front members are undominated" ~count:300
    (QCheck.make gen_items)
  @@ fun items ->
  let front = Core.Pareto.front ~scores items in
  List.for_all
    (fun f -> not (List.exists (fun o -> Core.Pareto.dominates ~scores o f) items))
    front

let prop_front_nonempty =
  QCheck.Test.make ~name:"non-empty input has non-empty front" ~count:300
    (QCheck.make gen_items)
  @@ fun items -> items = [] || Core.Pareto.front ~scores items <> []

let () =
  Alcotest.run "pareto"
    [ ( "unit",
        [ Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "front" `Quick test_front;
          Alcotest.test_case "select unique" `Quick test_select_unique;
          Alcotest.test_case "select tie break" `Quick
            test_select_tie_break_wins;
          Alcotest.test_case "select empty" `Quick test_select_empty ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_select_on_front; prop_front_members_undominated;
            prop_front_nonempty ] ) ]
