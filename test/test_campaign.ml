(* The Table 5 campaign runner. *)

let test_cell_counting () =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let env =
    Core.Environment.sys_plus ~tuned:(Core.Tuning.shipped ~chip:Gpusim.Chip.k20)
  in
  let cell =
    Core.Campaign.test_app ~chip:Gpusim.Chip.k20 ~env ~app ~runs:30 ~seed:1
  in
  Alcotest.(check string) "app name" "cbe-dot" cell.Core.Campaign.app;
  Alcotest.(check int) "runs recorded" 30 cell.Core.Campaign.runs;
  Alcotest.(check bool) "errors within range" true
    (cell.Core.Campaign.errors >= 0 && cell.Core.Campaign.errors <= 30);
  Alcotest.(check bool) "example message accompanies errors" true
    (cell.Core.Campaign.errors = 0 || cell.Core.Campaign.example <> "");
  (* The error histogram partitions the failures by message. *)
  Alcotest.(check int) "histogram counts sum to errors"
    cell.Core.Campaign.errors
    (List.fold_left (fun acc (_, n) -> acc + n) 0
       cell.Core.Campaign.histogram);
  Alcotest.(check bool) "histogram nonempty iff errors" true
    ((cell.Core.Campaign.histogram <> []) = (cell.Core.Campaign.errors > 0));
  Alcotest.(check bool) "histogram sorted by count, descending" true
    (let counts = List.map snd cell.Core.Campaign.histogram in
     List.sort (fun a b -> compare b a) counts = counts);
  (* The dominant mode is the head of the histogram. *)
  Alcotest.(check bool) "dominant is the top entry" true
    (Core.Campaign.dominant cell
    = List.nth_opt cell.Core.Campaign.histogram 0)

let test_no_stress_environment_clean () =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let env = Core.Environment.make Core.Stress.No_stress ~randomise:false in
  let cell =
    Core.Campaign.test_app ~chip:Gpusim.Chip.k20 ~env ~app ~runs:25 ~seed:2
  in
  Alcotest.(check int) "native runs pass" 0 cell.Core.Campaign.errors;
  Alcotest.(check bool) "clean cell has an empty histogram" true
    (cell.Core.Campaign.histogram = [])

let test_grid_and_summary () =
  let apps =
    List.filter_map Apps.Registry.by_name [ "cbe-dot"; "sdk-red" ]
  in
  let envs chip =
    let tuned = Core.Tuning.shipped ~chip in
    [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
      Core.Environment.sys_plus ~tuned ]
  in
  let rows =
    Core.Campaign.run ~chips:[ Gpusim.Chip.k20 ] ~environments_for:envs ~apps
      ~runs:25 ~seed:3 ()
  in
  Alcotest.(check int) "one row per environment" 2 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "cells per row" 2
        (List.length row.Core.Campaign.cells);
      Alcotest.(check bool) "effective <= capable" true
        (row.Core.Campaign.effective <= row.Core.Campaign.capable))
    rows;
  (* sys-str+ must beat no-str- on the buggy app. *)
  let find label =
    List.find (fun r -> r.Core.Campaign.environment = label) rows
  in
  let errors_of row name =
    let c =
      List.find (fun c -> c.Core.Campaign.app = name) row.Core.Campaign.cells
    in
    c.Core.Campaign.errors
  in
  Alcotest.(check bool) "sys-str+ exposes cbe-dot" true
    (errors_of (find "sys-str+") "cbe-dot" > errors_of (find "no-str-") "cbe-dot");
  Alcotest.(check int) "sdk-red survives sys-str+" 0
    (errors_of (find "sys-str+") "sdk-red")

let test_threshold () =
  Alcotest.(check (float 1e-9)) "paper threshold" 0.05
    Core.Campaign.effectiveness_threshold

let test_merge_histograms () =
  (* Summed counts; descending count; ties broken by message so merges
     are order-independent regardless of worker completion order. *)
  Alcotest.(check (list (pair string int)))
    "summed, sorted, ties by message"
    [ ("a", 2); ("b", 2); ("c", 1) ]
    (Core.Campaign.merge_histograms
       [ [ ("b", 2); ("a", 1) ]; [ ("c", 1); ("a", 1) ] ]);
  Alcotest.(check (list (pair string int)))
    "argument order does not matter"
    (Core.Campaign.merge_histograms
       [ [ ("b", 2); ("a", 1) ]; [ ("c", 1); ("a", 1) ] ])
    (Core.Campaign.merge_histograms
       [ [ ("c", 1); ("a", 1) ]; [ ("a", 1); ("b", 2) ] ]);
  Alcotest.(check (list (pair string int))) "no histograms" []
    (Core.Campaign.merge_histograms []);
  Alcotest.(check (list (pair string int))) "empty histograms" []
    (Core.Campaign.merge_histograms [ []; [] ])

let test_dominant_empty_cell () =
  let cell =
    { Core.Campaign.app = "clean"; errors = 0; runs = 10; example = "";
      histogram = []; quarantined = None }
  in
  Alcotest.(check bool) "clean cell has no dominant mode" true
    (Core.Campaign.dominant cell = None)

let () =
  Alcotest.run "campaign"
    [ ( "unit",
        [ Alcotest.test_case "cell counting" `Quick test_cell_counting;
          Alcotest.test_case "native clean" `Quick
            test_no_stress_environment_clean;
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "merge_histograms" `Quick test_merge_histograms;
          Alcotest.test_case "dominant on empty cell" `Quick
            test_dominant_empty_cell ] );
      ( "grid",
        [ Alcotest.test_case "grid and summary" `Slow test_grid_and_summary ] )
    ]
