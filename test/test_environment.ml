(* The eight testing environments of Sec. 4.2 and their Table 5 column
   order. *)

let tuned = Core.Tuning.shipped ~chip:Gpusim.Chip.k20

let test_eight_environments_in_order () =
  let labels =
    List.map (fun e -> e.Core.Environment.label) (Core.Environment.all ~tuned)
  in
  Alcotest.(check (list string)) "Table 5 column order"
    [ "no-str-"; "no-str+"; "sys-str-"; "sys-str+"; "rand-str-"; "rand-str+";
      "cache-str-"; "cache-str+" ]
    labels

let test_label_construction () =
  let e = Core.Environment.make Core.Stress.Cache ~randomise:true in
  Alcotest.(check string) "strategy name plus suffix" "cache-str+"
    e.Core.Environment.label;
  let e = Core.Environment.make Core.Stress.No_stress ~randomise:false in
  Alcotest.(check string) "minus suffix when not randomising" "no-str-"
    e.Core.Environment.label

let test_sys_plus () =
  let e = Core.Environment.sys_plus ~tuned in
  Alcotest.(check string) "flagship label" "sys-str+" e.Core.Environment.label;
  Alcotest.(check bool) "randomises" true e.Core.Environment.randomise;
  Alcotest.(check bool) "systematic stressing" true
    (match e.Core.Environment.strategy with
    | Core.Stress.Sys _ -> true
    | _ -> false)

let test_randomise_propagates () =
  List.iter
    (fun env ->
      let expected = env.Core.Environment.randomise in
      Alcotest.(check bool)
        (env.Core.Environment.label ^ " litmus randomise")
        expected (Core.Environment.for_litmus env).Gpusim.Sim.randomise;
      Alcotest.(check bool)
        (env.Core.Environment.label ^ " app randomise")
        expected (Core.Environment.for_app env).Gpusim.Sim.randomise)
    (Core.Environment.all ~tuned)

let test_distinct_labels () =
  let labels =
    List.map (fun e -> e.Core.Environment.label) (Core.Environment.all ~tuned)
  in
  Alcotest.(check int) "no duplicate environments" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let () =
  Alcotest.run "environment"
    [ ( "environments",
        [ Alcotest.test_case "eight in Table 5 order" `Quick
            test_eight_environments_in_order;
          Alcotest.test_case "label construction" `Quick
            test_label_construction;
          Alcotest.test_case "sys-str+" `Quick test_sys_plus;
          Alcotest.test_case "randomise propagates" `Quick
            test_randomise_propagates;
          Alcotest.test_case "labels distinct" `Quick test_distinct_labels ] )
    ]
