(* Experiment budgets: the paper's published parameters and the scaling
   invariants behind --runs-scale. *)

let test_paper_parameters () =
  let b = Core.Budget.paper in
  Alcotest.(check int) "C = 1000 executions per point (Sec. 3)" 1000
    b.Core.Budget.runs_patch;
  Alcotest.(check int) "sequence finding uses the same C" 1000
    b.Core.Budget.runs_seq;
  Alcotest.(check int) "spread finding uses the same C" 1000
    b.Core.Budget.runs_spread;
  Alcotest.(check int) "L = 256 scratchpad locations" 256
    b.Core.Budget.max_location;
  Alcotest.(check int) "exhaustive location sampling" 1
    b.Core.Budget.location_stride;
  Alcotest.(check int) "N = 5 max sequence length" 5 b.Core.Budget.seq_max_len;
  Alcotest.(check int) "M = 64 max spread" 64 b.Core.Budget.max_spread;
  Alcotest.(check int) "epsilon = 3 noise threshold" 3
    b.Core.Budget.noise_threshold;
  Alcotest.(check int) "all 256 distances sampled" 256
    (List.length b.Core.Budget.distances_patch)

let test_scale_runs_scales_counts () =
  let b = Core.Budget.default in
  let half = Core.Budget.scale_runs b 0.5 in
  Alcotest.(check int) "patch runs halved" (b.Core.Budget.runs_patch / 2)
    half.Core.Budget.runs_patch;
  Alcotest.(check int) "seq runs halved" (b.Core.Budget.runs_seq / 2)
    half.Core.Budget.runs_seq;
  Alcotest.(check int) "spread runs halved" (b.Core.Budget.runs_spread / 2)
    half.Core.Budget.runs_spread;
  (* Grid shape is untouched: scaling trades confidence, not coverage. *)
  Alcotest.(check int) "locations unchanged" b.Core.Budget.max_location
    half.Core.Budget.max_location;
  Alcotest.(check (list int)) "distances unchanged"
    b.Core.Budget.distances_patch half.Core.Budget.distances_patch;
  Alcotest.(check int) "spread unchanged" b.Core.Budget.max_spread
    half.Core.Budget.max_spread

let test_scale_runs_floors_at_one () =
  let tiny = Core.Budget.scale_runs Core.Budget.default 1e-9 in
  Alcotest.(check int) "patch runs floor" 1 tiny.Core.Budget.runs_patch;
  Alcotest.(check int) "seq runs floor" 1 tiny.Core.Budget.runs_seq;
  Alcotest.(check int) "spread runs floor" 1 tiny.Core.Budget.runs_spread;
  Alcotest.(check bool) "threshold stays positive" true
    (tiny.Core.Budget.noise_threshold >= 1)

let test_scale_runs_identity () =
  let b = Core.Budget.default in
  Alcotest.(check bool) "factor 1.0 is the identity" true
    (Core.Budget.scale_runs b 1.0 = b)

let test_noise_threshold_tracks_runs () =
  (* epsilon keeps the same weak-behaviour *rate* as the paper's
     epsilon=3 at C=1000. *)
  let eps factor =
    (Core.Budget.scale_runs Core.Budget.paper factor).Core.Budget
      .noise_threshold
  in
  Alcotest.(check int) "paper scale keeps epsilon ~3" 4 (eps 1.0);
  (* eps_for 1000 = 3*1000/1000+1 = 4; the shipped paper budget pins 3,
     re-derivation is within one. *)
  Alcotest.(check bool) "monotone in runs" true (eps 2.0 >= eps 0.1);
  Alcotest.(check int) "never below one" 1 (eps 1e-9)

let test_quick_no_larger_than_default () =
  let q = Core.Budget.quick and d = Core.Budget.default in
  Alcotest.(check bool) "quick runs <= default runs" true
    (q.Core.Budget.runs_patch <= d.Core.Budget.runs_patch
    && q.Core.Budget.runs_seq <= d.Core.Budget.runs_seq
    && q.Core.Budget.runs_spread <= d.Core.Budget.runs_spread);
  Alcotest.(check bool) "quick grids <= default grids" true
    (List.length q.Core.Budget.distances_patch
     <= List.length d.Core.Budget.distances_patch
    && q.Core.Budget.max_spread <= d.Core.Budget.max_spread
    && q.Core.Budget.seq_max_len <= d.Core.Budget.seq_max_len)

let () =
  Alcotest.run "budget"
    [ ( "budgets",
        [ Alcotest.test_case "paper parameters" `Quick test_paper_parameters;
          Alcotest.test_case "scale_runs scales counts" `Quick
            test_scale_runs_scales_counts;
          Alcotest.test_case "scale_runs floors at one" `Quick
            test_scale_runs_floors_at_one;
          Alcotest.test_case "scale_runs identity" `Quick
            test_scale_runs_identity;
          Alcotest.test_case "noise threshold tracks runs" `Quick
            test_noise_threshold_tracks_runs;
          Alcotest.test_case "quick <= default" `Quick
            test_quick_no_larger_than_default ] ) ]
