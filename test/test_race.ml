(* The dynamic race detector and targeted stressing (the paper's
   future-work item (e)). *)

let run_with_detector kernel ~grid ~block ~args =
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.sequential ~seed:1 () in
  let det = Gpusim.Race.attach sim in
  ignore (Gpusim.Sim.launch sim ~grid ~block kernel ~args);
  Gpusim.Race.detach sim det;
  det

let test_private_data_not_reported () =
  let open Gpusim.Kbuild in
  let k =
    kernel "private" ~params:[ "out" ]
      [ global_tid "g";
        store (param "out" + reg "g") (reg "g");
        load "v" (param "out" + reg "g") ]
  in
  let det = run_with_detector k ~grid:2 ~block:4 ~args:[ ("out", 0) ] in
  Alcotest.(check (list int)) "no shared locations" []
    (List.map (fun f -> f.Gpusim.Race.addr) (Gpusim.Race.findings det))

let test_shared_counter_reported () =
  let open Gpusim.Kbuild in
  let k =
    kernel "shared" ~params:[ "c" ]
      [ load "v" (param "c"); store (param "c") (reg "v" + int 1) ]
  in
  let det = run_with_detector k ~grid:4 ~block:1 ~args:[ ("c", 7) ] in
  match Gpusim.Race.findings det with
  | [ f ] ->
    Alcotest.(check int) "address" 7 f.Gpusim.Race.addr;
    Alcotest.(check int) "writers" 4 f.Gpusim.Race.writers;
    Alcotest.(check bool) "not atomic-only" false f.Gpusim.Race.atomic_only;
    Alcotest.(check (list int)) "is a data location" [ 7 ]
      (Gpusim.Race.data_locations det)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_atomic_only_flagged () =
  let open Gpusim.Kbuild in
  let k =
    kernel "mutexish" ~params:[ "m" ] [ atomic_add (param "m") (int 1) ]
  in
  let det = run_with_detector k ~grid:3 ~block:1 ~args:[ ("m", 3) ] in
  match Gpusim.Race.findings det with
  | [ f ] ->
    Alcotest.(check bool) "atomic only" true f.Gpusim.Race.atomic_only;
    Alcotest.(check (list int)) "not a data target" []
      (Gpusim.Race.data_locations det)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_read_only_sharing_not_racy () =
  let open Gpusim.Kbuild in
  let k = kernel "ro" ~params:[ "x" ] [ load "v" (param "x") ] in
  let det = run_with_detector k ~grid:4 ~block:1 ~args:[ ("x", 5) ] in
  Alcotest.(check int) "read-only sharing is not a communication" 0
    (List.length (Gpusim.Race.findings det))

let test_stress_accesses_invisible () =
  (* The detector must see the application only, never the stressing
     threads (they are disjoint by construction). *)
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let chip = Gpusim.Chip.k20 in
  let sim = Gpusim.Sim.create ~chip ~seed:2 () in
  Gpusim.Sim.set_environment sim (Test_util.sys_plus_env chip);
  let det = Gpusim.Race.attach sim in
  ignore (app.Apps.App.run sim Apps.App.Original);
  Gpusim.Race.detach sim det;
  (* The scratchpad lives above the app's allocations; no finding may
     point into it.  cbe-dot's own data ends well below 1024. *)
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "finding @%d is app memory" f.Gpusim.Race.addr)
        true
        (f.Gpusim.Race.addr < 1024))
    (Gpusim.Race.findings det)

let test_detector_finds_cbe_dot_idiom () =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.sequential ~seed:3 () in
  let det = Gpusim.Race.attach sim in
  ignore (app.Apps.App.run sim Apps.App.Original);
  let findings = Gpusim.Race.findings det in
  Alcotest.(check bool) "mutex detected as synchronisation-only" true
    (List.exists (fun f -> f.Gpusim.Race.atomic_only) findings);
  Alcotest.(check int) "exactly one data communication location" 1
    (List.length (Gpusim.Race.data_locations det))

let test_targeted_beats_blind_stress () =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let chip = Gpusim.Chip.k20 in
  (* Detect the communication locations natively... *)
  let sim = Gpusim.Sim.create ~chip ~seed:4 () in
  let det = Gpusim.Race.attach sim in
  ignore (app.Apps.App.run sim Apps.App.Original);
  Gpusim.Race.detach sim det;
  let addresses = Gpusim.Race.data_locations det in
  Alcotest.(check bool) "found targets" true (addresses <> []);
  (* ... then stress exactly their partitions. *)
  let tuned = Core.Tuning.shipped ~chip in
  let targeted =
    Core.Environment.make
      (Core.Stress.Targeted
         { sequence = tuned.Core.Stress.sequence; addresses })
      ~randomise:true
  in
  let errors env =
    (Core.Campaign.test_app ~chip ~env ~app ~runs:60 ~seed:5)
      .Core.Campaign.errors
  in
  let blind = errors (Core.Environment.sys_plus ~tuned) in
  let tgt = errors targeted in
  Alcotest.(check bool)
    (Printf.sprintf "targeted (%d/60) > blind (%d/60)" tgt blind)
    true (tgt > blind)

let () =
  Alcotest.run "race"
    [ ( "detector",
        [ Alcotest.test_case "private data" `Quick
            test_private_data_not_reported;
          Alcotest.test_case "shared counter" `Quick
            test_shared_counter_reported;
          Alcotest.test_case "atomic-only flagged" `Quick
            test_atomic_only_flagged;
          Alcotest.test_case "read-only sharing" `Quick
            test_read_only_sharing_not_racy;
          Alcotest.test_case "stress invisible" `Quick
            test_stress_accesses_invisible;
          Alcotest.test_case "cbe-dot idiom" `Quick
            test_detector_finds_cbe_dot_idiom ] );
      ( "targeted stressing",
        [ Alcotest.test_case "targeted beats blind" `Slow
            test_targeted_beats_blind_stress ] ) ]
