(* The observability back half: the JSON codec round-trip, both trace
   exporters (Chrome trace-event and JSONL), and the metrics registry
   (counters/histograms aggregated across domains, spans from the
   execution engine). *)

(* ------------------------------------------------------------------ *)
(* Json codec                                                           *)

let json_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [ return Core.Json.Null;
               map (fun b -> Core.Json.Bool b) bool;
               map (fun i -> Core.Json.Int i) int;
               map
                 (fun f ->
                   Core.Json.Float (if Float.is_finite f then f else 0.0))
                 float;
               map (fun s -> Core.Json.String s) string_printable ]
         in
         if n = 0 then leaf
         else
           frequency
             [ (3, leaf);
               ( 1,
                 map
                   (fun l -> Core.Json.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Core.Json.Assoc kvs)
                   (list_size (int_bound 4)
                      (pair string_printable (self (n / 2)))) ) ])

let prop_json_round_trip =
  QCheck.Test.make ~name:"Json: of_string (to_string v) = Ok v" ~count:500
    (QCheck.make json_gen)
    (fun v -> Core.Json.of_string (Core.Json.to_string v) = Ok v)

let test_json_parsing_cases () =
  let ok s v = Alcotest.(check bool) s true (Core.Json.of_string s = Ok v) in
  ok "17" (Core.Json.Int 17);
  ok "-4" (Core.Json.Int (-4));
  ok "2.5" (Core.Json.Float 2.5);
  ok "1e3" (Core.Json.Float 1000.0);
  ok "true" (Core.Json.Bool true);
  ok "null" Core.Json.Null;
  ok "[]" (Core.Json.List []);
  ok "{}" (Core.Json.Assoc []);
  ok " [ 1 , \"a\" ] " (Core.Json.List [ Core.Json.Int 1; Core.Json.String "a" ]);
  ok "\"a\\u0041\\n\"" (Core.Json.String "aA\n");
  (* surrogate pair: U+1F600 *)
  ok "\"\\uD83D\\uDE00\"" (Core.Json.String "\xF0\x9F\x98\x80");
  let bad s =
    Alcotest.(check bool) ("reject " ^ s) true
      (match Core.Json.of_string s with Error _ -> true | Ok _ -> false)
  in
  bad "";
  bad "tru";
  bad "[1,]";
  bad "{\"a\":}";
  bad "1 2";
  bad "\"\\uD83D\"";
  bad "\"unterminated"

let test_json_accessors () =
  let j =
    Core.Json.Assoc
      [ ("a", Core.Json.Int 1); ("b", Core.Json.String "x");
        ("c", Core.Json.List [ Core.Json.Bool true ]) ]
  in
  Alcotest.(check (option int)) "member+to_int" (Some 1)
    (Option.bind (Core.Json.member "a" j) Core.Json.to_int);
  Alcotest.(check (option string)) "member+to_str" (Some "x")
    (Option.bind (Core.Json.member "b" j) Core.Json.to_str);
  Alcotest.(check bool) "missing member" true (Core.Json.member "z" j = None);
  Alcotest.(check (option (float 0.0))) "to_float promotes ints" (Some 1.0)
    (Core.Json.to_float (Core.Json.Int 1))

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

(* One record per event constructor, so codec coverage is total. *)
let all_event_records =
  let open Gpusim.Trace in
  List.mapi
    (fun i event -> { tick = 10 * i; event })
    [ Launch_begin
        { kernel = "k\"1"; grid = 4; block = 64; stress_blocks = 2;
          stress_threads = 128 };
      Access { tid = 1; addr = 7; write = true; atomic = false };
      Issue { tid = 1; addr = 7; part = 3; is_store = true };
      Commit { tid = 1; addr = 7; is_store = true; value = 9; reordered = true };
      Reorder { tid = 1; overtaken = 7; committed = 8 };
      Atomic_rmw { tid = 2; addr = 5; before = 0; after = 1 };
      Fence { tid = 2; pending = 3; device_scope = true };
      Barrier_wait { tid = 3; block = 0 };
      Barrier_release { block = 0; by_exit = false };
      Thread_done { tid = 3; daemon = true };
      Contention { part = 1; read = 0.25; write = 1.5 };
      Bitflip { tid = 4; addr = 11; bit = 3; before = 9; after = 1 };
      Launch_end
        { outcome = "finished"; divergence = false;
          metrics = [ ("ticks", 123); ("reorder", 4) ] } ]

let test_jsonl_round_trip () =
  let text = Core.Telemetry.jsonl all_event_records in
  Alcotest.(check int) "one line per record"
    (List.length all_event_records)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)));
  match Core.Telemetry.jsonl_parse text with
  | Error e -> Alcotest.failf "jsonl_parse failed: %s" e
  | Ok records ->
    Alcotest.(check bool) "records survive the round-trip" true
      (records = all_event_records)

let test_record_of_json_rejects_garbage () =
  let bad j =
    match Core.Telemetry.record_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "decoded a malformed record"
  in
  bad (Core.Json.Assoc [ ("tick", Core.Json.Int 1) ]);
  bad
    (Core.Json.Assoc
       [ ("tick", Core.Json.Int 1); ("ev", Core.Json.String "nonsense") ]);
  bad
    (Core.Json.Assoc
       [ ("tick", Core.Json.Int 1); ("ev", Core.Json.String "commit");
         ("tid", Core.Json.String "not an int") ])

let sample_spans =
  [ { Core.Telemetry.label = "tune"; index = 0; worker = 0; queued_at = 100.0;
      started_at = 100.5; ended_at = 101.0 };
    { Core.Telemetry.label = "tune"; index = 1; worker = 1; queued_at = 100.0;
      started_at = 100.25; ended_at = 102.0 } ]

let test_chrome_trace_golden () =
  let doc =
    Core.Telemetry.chrome_trace ~spans:sample_spans all_event_records
  in
  (* The export must itself survive our parser: valid JSON end to end. *)
  let reparsed =
    match Core.Json.of_string (Core.Json.to_string doc) with
    | Ok v -> v
    | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  in
  let events =
    match
      Option.bind (Core.Json.member "traceEvents" reparsed) Core.Json.to_list
    with
    | Some l -> l
    | None -> Alcotest.fail "missing traceEvents array"
  in
  Alcotest.(check int) "every record and span becomes an event"
    (List.length all_event_records + List.length sample_spans)
    (List.length events);
  let get name j =
    match Core.Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "event missing %s field" name
  in
  let phases = Hashtbl.create 4 in
  let last_ts = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let name = Option.get (Core.Json.to_str (get "name" e)) in
      Alcotest.(check bool) "name nonempty" true (name <> "");
      let ph = Option.get (Core.Json.to_str (get "ph" e)) in
      Alcotest.(check bool) ("known phase " ^ ph) true
        (List.mem ph [ "i"; "C"; "X" ]);
      Hashtbl.replace phases ph ();
      let ts = Option.get (Core.Json.to_int (get "ts" e)) in
      let pid = Option.get (Core.Json.to_int (get "pid" e)) in
      let tid = Option.get (Core.Json.to_int (get "tid" e)) in
      Alcotest.(check bool) "pid 0 = simulator, pid 1 = exec engine" true
        (pid = 0 || pid = 1);
      (* Timestamps must be monotone within each (pid, tid) track. *)
      let prev =
        Option.value ~default:min_int (Hashtbl.find_opt last_ts (pid, tid))
      in
      Alcotest.(check bool)
        (Printf.sprintf "ts monotone on track (%d,%d)" pid tid)
        true (ts >= prev);
      Hashtbl.replace last_ts (pid, tid) ts)
    events;
  List.iter
    (fun ph ->
      Alcotest.(check bool) ("emitted a ph=" ^ ph ^ " event") true
        (Hashtbl.mem phases ph))
    [ "i"; "C"; "X" ];
  (* Spans carry their schedule: dur = run time, queue wait in args. *)
  let span_events =
    List.filter
      (fun e ->
        Core.Json.member "ph" e = Some (Core.Json.String "X"))
      events
  in
  List.iter
    (fun e ->
      let dur = Option.get (Core.Json.to_int (get "dur" e)) in
      Alcotest.(check bool) "positive duration" true (dur > 0);
      let wait =
        Option.get
          (Core.Json.to_int (get "queue_wait_us" (get "args" e)))
      in
      Alcotest.(check bool) "non-negative queue wait" true (wait >= 0))
    span_events

(* ------------------------------------------------------------------ *)
(* Registry: counters, histograms, spans                                *)

let test_counters_across_domains () =
  let c = Core.Telemetry.counter "test.domains" in
  let before = Core.Telemetry.counter_value c in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let c' = Core.Telemetry.counter "test.domains" in
            for _ = 1 to 10_000 do
              Core.Telemetry.incr c'
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (before + 40_000)
    (Core.Telemetry.counter_value c);
  Core.Telemetry.add c 2;
  Alcotest.(check int) "add" (before + 40_002) (Core.Telemetry.counter_value c);
  Alcotest.(check bool) "same name, same counter" true
    (Core.Telemetry.counter "test.domains" == c)

let test_histogram_and_snapshot () =
  Core.Telemetry.reset ();
  let h = Core.Telemetry.histogram "test.hist_seconds" in
  List.iter (Core.Telemetry.observe h) [ 0.5e-6; 3e-4; 3e-4; 2.0; -1.0 ];
  let s = Core.Telemetry.snapshot () in
  let hs = List.assoc "test.hist_seconds" s.Core.Telemetry.histograms in
  Alcotest.(check int) "count" 5 hs.Core.Telemetry.count;
  Alcotest.(check (float 1e-9)) "sum (negatives clamp to 0)" 2.0006005
    hs.Core.Telemetry.sum;
  (* Buckets are cumulative: all samples fall below the top bound. *)
  let _, top = List.nth hs.Core.Telemetry.buckets
      (List.length hs.Core.Telemetry.buckets - 1) in
  Alcotest.(check int) "cumulative top bucket holds everything" 5 top;
  (* The snapshot exports as JSON that our own parser accepts. *)
  let j = Core.Telemetry.snapshot_to_json s in
  (match Core.Json.of_string (Core.Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot JSON invalid: %s" e);
  Core.Telemetry.reset ();
  let s2 = Core.Telemetry.snapshot () in
  let hs2 = List.assoc "test.hist_seconds" s2.Core.Telemetry.histograms in
  Alcotest.(check int) "reset zeroes histograms" 0 hs2.Core.Telemetry.count

let test_exec_spans () =
  Core.Telemetry.set_spans true;
  Fun.protect
    ~finally:(fun () -> Core.Telemetry.set_spans false)
    (fun () ->
      let payloads = List.init 20 Fun.id in
      let results =
        Core.Exec.run ~backend:(Core.Exec.Parallel 2) ~label:"spans-test"
          ~seed:3
          ~f:(fun ~seed:_ p -> p * p)
          payloads
      in
      Alcotest.(check (list int)) "results unaffected by span recording"
        (List.map (fun p -> p * p) payloads)
        results;
      let spans = Core.Telemetry.spans () in
      Alcotest.(check int) "one span per job" 20 (List.length spans);
      let indices =
        List.sort compare (List.map (fun s -> s.Core.Telemetry.index) spans)
      in
      Alcotest.(check (list int)) "every job index present" payloads indices;
      List.iter
        (fun s ->
          Alcotest.(check string) "label" "spans-test" s.Core.Telemetry.label;
          Alcotest.(check bool) "worker slot in range" true
            (s.Core.Telemetry.worker >= 0 && s.Core.Telemetry.worker < 2);
          Alcotest.(check bool) "queued <= started <= ended" true
            (s.Core.Telemetry.queued_at <= s.Core.Telemetry.started_at
            && s.Core.Telemetry.started_at <= s.Core.Telemetry.ended_at))
        spans);
  Alcotest.(check bool) "disabled again" false (Core.Telemetry.spans_enabled ());
  Core.Telemetry.clear_spans ();
  Core.Telemetry.record_span (List.hd sample_spans);
  Alcotest.(check bool) "record_span is a no-op when disabled" true
    (Core.Telemetry.spans () = [])

let test_exec_counters_move () =
  Core.Telemetry.reset ();
  ignore
    (Core.Exec.run ~backend:Core.Exec.Serial ~seed:1
       ~f:(fun ~seed:_ p -> p)
       (List.init 7 Fun.id));
  let s = Core.Telemetry.snapshot () in
  Alcotest.(check int) "exec.jobs counts jobs" 7
    (List.assoc "exec.jobs" s.Core.Telemetry.counters);
  let run_h = List.assoc "exec.run_seconds" s.Core.Telemetry.histograms in
  Alcotest.(check int) "run histogram sees each job" 7
    run_h.Core.Telemetry.count

let () =
  Alcotest.run "telemetry"
    [ ( "json",
        [ QCheck_alcotest.to_alcotest prop_json_round_trip;
          Alcotest.test_case "parser cases" `Quick test_json_parsing_cases;
          Alcotest.test_case "accessors" `Quick test_json_accessors ] );
      ( "exporters",
        [ Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "decoder rejects garbage" `Quick
            test_record_of_json_rejects_garbage;
          Alcotest.test_case "chrome trace golden" `Quick
            test_chrome_trace_golden ] );
      ( "registry",
        [ Alcotest.test_case "counters across domains" `Quick
            test_counters_across_domains;
          Alcotest.test_case "histograms and snapshots" `Quick
            test_histogram_and_snapshot;
          Alcotest.test_case "exec spans" `Quick test_exec_spans;
          Alcotest.test_case "exec counters" `Quick test_exec_counters_move ]
      ) ]
