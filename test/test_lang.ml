(* The litmus concrete-syntax front end. *)

let mp_src =
  {|GPU MP
# classic message passing, y far from x
{ x = 0; y = 0 @ 65 }
P0          | P1         ;
st x, 1     | ld r1, y   ;
st y, 1     | ld r2, x   ;
exists (1:r1 = 1 /\ 1:r2 = 0)
|}

let mp_fenced_src =
  {|GPU MP-fenced
{ x = 0; y = 0 @ 65 }
P0          | P1         ;
st x, 1     | ld r1, y   ;
membar      | membar     ;
st y, 1     | ld r2, x   ;
exists (1:r1 = 1 /\ 1:r2 = 0)
|}

let parse_ok src =
  match Litmus.Lang.parse src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_mp () =
  let t = parse_ok mp_src in
  Alcotest.(check string) "name" "MP" t.Litmus.Lang.name;
  Alcotest.(check int) "two threads" 2 (List.length t.Litmus.Lang.threads);
  Alcotest.(check int) "two conditions" 2 (List.length t.Litmus.Lang.exists);
  Alcotest.(check int) "thread 0 instrs" 2
    (List.length (List.nth t.Litmus.Lang.threads 0))

let test_layout () =
  let t = parse_ok mp_src in
  let offsets, extent = Litmus.Lang.layout t in
  Alcotest.(check int) "x at 0" 0 (List.assoc "x" offsets);
  Alcotest.(check int) "y pinned at 65" 65 (List.assoc "y" offsets);
  Alcotest.(check int) "extent" 66 extent

let test_layout_overlap_rejected () =
  let src =
    {|GPU bad
{ x = 0; y = 0 @ 0 }
P0 ;
st x, 1 ;
exists (0:r0 = 0)
|}
  in
  let t = parse_ok src in
  Alcotest.(check bool) "overlap rejected" true
    (try
       ignore (Litmus.Lang.layout t);
       false
     with Invalid_argument _ -> true)

let test_parse_errors () =
  List.iter
    (fun (src, frag) ->
      match Litmus.Lang.parse src with
      | Ok _ -> Alcotest.failf "expected a parse error for %s" frag
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s (got %s)" frag e)
          true
          (Test_util.contains e frag))
    [ ("CPU MP", "expected 'GPU'");
      ("GPU t { x = 0 } P0 ; st y, 1 ; exists (0:r0 = 0)", "undeclared");
      ("GPU t { x = 0 } P0 ; st x, 1 ; exists (3:r0 = 0)", "missing thread");
      ("GPU t { x = 0 } P0 ; st x ; exists (0:r0 = 0)", "','") ]

let test_roundtrip () =
  let t = parse_ok mp_src in
  let printed = Fmt.str "%a" Litmus.Lang.pp t in
  let t2 = parse_ok printed in
  Alcotest.(check bool) "round-trips" true (t = t2)

let test_sc_allows () =
  Alcotest.(check bool) "MP weak outcome is not SC" false
    (Litmus.Lang.sc_allows (parse_ok mp_src));
  let reachable =
    {|GPU ok
{ x = 0 }
P0 ;
st x, 1 ;
exists (0:r0 = 0)
|}
  in
  (* r0 never assigned: reads as 0. *)
  Alcotest.(check bool) "trivial condition reachable" true
    (Litmus.Lang.sc_allows (parse_ok reachable))

let stress_env chip =
  Core.Environment.for_litmus
    (Core.Environment.sys_plus ~tuned:(Core.Tuning.shipped ~chip))

let test_weak_machine_exposes_mp () =
  let t = parse_ok mp_src in
  let chip = Gpusim.Chip.titan in
  let n =
    Litmus.Lang.count_satisfied ~chip ~seed:3 ~env:(stress_env chip) ~runs:400 t
  in
  Alcotest.(check bool)
    (Printf.sprintf "weak outcome observed under stress (%d/400)" n)
    true (n > 0)

let test_fences_suppress () =
  let t = parse_ok mp_fenced_src in
  let chip = Gpusim.Chip.titan in
  let n =
    Litmus.Lang.count_satisfied ~chip ~seed:3 ~env:(stress_env chip) ~runs:200 t
  in
  Alcotest.(check int) "fenced MP never weak" 0 n

let test_run_once_registers () =
  let t = parse_ok mp_src in
  match Litmus.Lang.run_once ~chip:Gpusim.Chip.sequential ~seed:1 t with
  | None -> Alcotest.fail "unexpected timeout"
  | Some o ->
    Alcotest.(check int) "two observed registers" 2
      (List.length o.Litmus.Lang.registers);
    Alcotest.(check bool) "SC run not weak" false o.Litmus.Lang.satisfied

let () =
  Alcotest.run "lang"
    [ ( "parser",
        [ Alcotest.test_case "parse MP" `Quick test_parse_mp;
          Alcotest.test_case "layout" `Quick test_layout;
          Alcotest.test_case "layout overlap" `Quick
            test_layout_overlap_rejected;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip ] );
      ( "execution",
        [ Alcotest.test_case "sc_allows" `Quick test_sc_allows;
          Alcotest.test_case "weak machine exposes MP" `Slow
            test_weak_machine_exposes_mp;
          Alcotest.test_case "fences suppress" `Slow test_fences_suppress;
          Alcotest.test_case "run_once registers" `Quick
            test_run_once_registers ] ) ]
