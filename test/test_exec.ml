(* The plan/execute/reduce engine: seed derivation compatibility with
   the historical sequential RNG threading, plan-order results, error
   propagation, and the headline guarantee that the parallel backend is
   bit-identical to the serial one on the real campaign drivers. *)

let test_plan_matches_bits30_stream () =
  (* The contract that keeps every historical seed-sensitive result
     reproducible: plan's i-th seed is the i-th draw of the old
     sequential master RNG. *)
  List.iter
    (fun master ->
      let rng = Gpusim.Rng.create master in
      let jobs = Core.Exec.plan ~seed:master (List.init 50 Fun.id) in
      List.iter
        (fun j ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d, job %d" master j.Core.Exec.index)
            (Gpusim.Rng.bits30 rng) j.Core.Exec.seed)
        jobs)
    [ 0; 1; 3; 42; 123456789 ]

let test_plan_indices_and_payloads () =
  let jobs = Core.Exec.plan ~seed:7 [ "a"; "b"; "c" ] in
  Alcotest.(check (list int)) "indices in order" [ 0; 1; 2 ]
    (List.map (fun j -> j.Core.Exec.index) jobs);
  Alcotest.(check (list string)) "payloads in order" [ "a"; "b"; "c" ]
    (List.map (fun j -> j.Core.Exec.payload) jobs)

let test_backend_of_jobs () =
  Alcotest.(check bool) "0 jobs is serial" true
    (Core.Exec.backend_of_jobs 0 = Core.Exec.Serial);
  Alcotest.(check bool) "1 job is serial" true
    (Core.Exec.backend_of_jobs 1 = Core.Exec.Serial);
  Alcotest.(check bool) "4 jobs is parallel" true
    (Core.Exec.backend_of_jobs 4 = Core.Exec.Parallel 4);
  Alcotest.(check int) "jobs_of_backend inverts" 4
    (Core.Exec.jobs_of_backend (Core.Exec.Parallel 4));
  Alcotest.(check int) "serial is one domain" 1
    (Core.Exec.jobs_of_backend Core.Exec.Serial)

let test_map_preserves_plan_order () =
  (* Results must come back in plan order even though the parallel pool
     completes jobs in whatever order the scheduler picks. *)
  let payloads = List.init 200 Fun.id in
  let f j = (j.Core.Exec.index, j.Core.Exec.seed, j.Core.Exec.payload * 2) in
  let serial =
    Core.Exec.map ~backend:Core.Exec.Serial ~f (Core.Exec.plan ~seed:9 payloads)
  in
  List.iter
    (fun jobs ->
      let par =
        Core.Exec.map ~backend:(Core.Exec.Parallel jobs) ~f
          (Core.Exec.plan ~seed:9 payloads)
      in
      Alcotest.(check bool)
        (Printf.sprintf "parallel %d = serial" jobs)
        true (par = serial))
    [ 2; 3; 4; 8 ]

let test_exception_propagates () =
  let payloads = List.init 64 Fun.id in
  let boom j = if j.Core.Exec.payload = 37 then failwith "boom" else () in
  List.iter
    (fun backend ->
      Alcotest.check_raises "job exception reaches the caller"
        (Failure "boom") (fun () ->
          ignore
            (Core.Exec.map ~backend ~f:boom (Core.Exec.plan ~seed:1 payloads))))
    [ Core.Exec.Serial; Core.Exec.Parallel 4 ]

let test_exception_leaves_pool_clean () =
  (* A crashed parallel run must join every helper domain before
     re-raising, so the engine is immediately reusable. *)
  let payloads = List.init 64 Fun.id in
  (try
     ignore
       (Core.Exec.map
          ~backend:(Core.Exec.Parallel 4)
          ~f:(fun j -> if j.Core.Exec.payload = 5 then failwith "boom")
          (Core.Exec.plan ~seed:2 payloads))
   with Failure _ -> ());
  let r =
    Core.Exec.map
      ~backend:(Core.Exec.Parallel 4)
      ~f:(fun j -> j.Core.Exec.payload + 1)
      (Core.Exec.plan ~seed:2 payloads)
  in
  Alcotest.(check (list int)) "a fresh parallel run still works"
    (List.map (( + ) 1) payloads)
    r

let test_for_all_abort_skips_remaining () =
  (* Once a failure is known, the shared abort flag must stop workers
     from processing the rest of their chunks and from taking new ones. *)
  let total = 3200 in
  let processed = Atomic.make 0 in
  let ok =
    Core.Exec.for_all
      ~backend:(Core.Exec.Parallel 4)
      ~seed:8
      ~f:(fun ~seed:_ p ->
        Atomic.incr processed;
        p <> 0)
      (List.init total Fun.id)
  in
  Alcotest.(check bool) "the failure is reported" false ok;
  Alcotest.(check bool)
    (Printf.sprintf "early abort: %d of %d jobs ran" (Atomic.get processed)
       total)
    true
    (Atomic.get processed < 1000)

let test_ticker_rate_limited () =
  (* A sub-second campaign must produce exactly the final progress line,
     not one message per job. *)
  let messages = ref [] in
  let finishes = ref 0 in
  let mu = Mutex.create () in
  Core.Exec.set_progress
    (Some
       { Core.Exec.line =
           (fun m ->
             Mutex.lock mu;
             messages := m :: !messages;
             Mutex.unlock mu);
         finished =
           (fun () ->
             Mutex.lock mu;
             incr finishes;
             Mutex.unlock mu) });
  Fun.protect
    ~finally:(fun () -> Core.Exec.set_progress None)
    (fun () ->
      List.iter
        (fun backend ->
          messages := [];
          finishes := 0;
          ignore
            (Core.Exec.map ~backend ~label:"tick-test"
               ~f:(fun _ -> ())
               (Core.Exec.plan ~seed:1 (List.init 500 Fun.id)));
          let n = List.length !messages in
          Alcotest.(check bool)
            (Printf.sprintf "%d message(s) for 500 fast jobs" n)
            true
            (n >= 1 && n <= 5);
          Alcotest.(check bool) "the final line reports completion" true
            (Test_util.contains (List.hd !messages) "500/500");
          Alcotest.(check int) "finished fires exactly once" 1 !finishes)
        [ Core.Exec.Serial; Core.Exec.Parallel 4 ])

let test_for_all_agrees_across_backends () =
  let payloads = List.init 100 Fun.id in
  List.iter
    (fun pred ->
      let expect =
        Core.Exec.for_all ~backend:Core.Exec.Serial ~seed:5
          ~f:(fun ~seed:_ p -> pred p)
          payloads
      in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "for_all, %d domains" jobs)
            expect
            (Core.Exec.for_all ~backend:(Core.Exec.Parallel jobs) ~seed:5
               ~f:(fun ~seed:_ p -> pred p)
               payloads))
        [ 2; 4 ])
    [ (fun _ -> true); (fun p -> p <> 63); (fun p -> p < 2) ]

(* ------------------------------------------------------------------ *)
(* Jobs clamping                                                       *)

let test_clamp_jobs () =
  List.iter
    (fun (raw, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "clamp_jobs %d" raw)
        expect
        (Core.Exec.clamp_jobs ~warn:false raw))
    [ (0, 1); (-5, 1); (1, 1); (7, 7); (512, 512); (513, 512);
      (100000, 512) ]

(* ------------------------------------------------------------------ *)
(* Supervised execution: deterministic retry, quarantine, watchdog.    *)

let with_supervision s f =
  Core.Exec.set_supervision (Some s);
  Fun.protect ~finally:(fun () -> Core.Exec.set_supervision None) f

(* A pure job function and its unsupervised reference results. *)
let sup_payloads = List.init 40 Fun.id
let sup_f ~seed p = (seed * 31) + p

let sup_run ?quarantine ~jobs () =
  Core.Exec.run
    ~backend:(Core.Exec.backend_of_jobs jobs)
    ?quarantine ~seed:3 ~f:sup_f sup_payloads

let sup_reference = lazy (sup_run ~jobs:1 ())

let test_retry_heals_bit_identical () =
  (* faulty_attempts 1 with one retry: every faulted job heals on its
     second attempt, which reuses the planned seed — the supervised run
     must be bit-identical to the unsupervised one. *)
  let plan =
    Core.Fault.plan ~rate:0.6 ~kinds:[ Core.Fault.Raise ] ~faulty_attempts:1
      ~seed:77 ()
  in
  let expected_retries =
    List.fold_left
      (fun acc index ->
        acc + (Core.Fault.predict plan ~retries:1 ~index).Core.Fault.attempts
        - 1)
      0
      (List.init (List.length sup_payloads) Fun.id)
  in
  Alcotest.(check bool) "the plan actually faults some jobs" true
    (expected_retries > 0);
  with_supervision (Core.Exec.supervision ~retries:1 ~faults:plan ())
  @@ fun () ->
  let r = sup_run ~jobs:4 () in
  let s = Core.Exec.drain_summary () in
  Alcotest.(check bool) "healed run = unsupervised run" true
    (r = Lazy.force sup_reference);
  Alcotest.(check int) "retry count matches the fault plan"
    expected_retries s.Core.Exec.retried;
  Alcotest.(check int) "nothing quarantined" 0
    (List.length s.Core.Exec.quarantined)

let test_quarantine_matches_prediction () =
  (* No retries against a two-attempt fault window: predicted-fatal jobs
     must be quarantined (fallback value, failed summary entry) and every
     other job must be untouched. *)
  let plan =
    Core.Fault.plan ~rate:0.5
      ~kinds:[ Core.Fault.Raise; Core.Fault.Ledger_fail ]
      ~faulty_attempts:2 ~seed:5 ()
  in
  let predicted =
    List.filteri
      (fun index _ ->
        (Core.Fault.predict plan ~retries:0 ~index).Core.Fault.outcome
        = `Quarantined)
      sup_payloads
  in
  Alcotest.(check bool) "the plan predicts some quarantines" true
    (predicted <> []);
  List.iter
    (fun jobs ->
      with_supervision
        (Core.Exec.supervision ~retries:0 ~keep_going:true ~faults:plan ())
      @@ fun () ->
      let r = sup_run ~quarantine:(fun _ _ -> -1) ~jobs () in
      let s = Core.Exec.drain_summary () in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs %d: quarantined set = prediction" jobs)
        predicted
        (List.map (fun fl -> fl.Core.Exec.f_index) s.Core.Exec.quarantined);
      List.iteri
        (fun i v ->
          if List.mem i predicted then
            Alcotest.(check int) "fallback value in place" (-1) v
          else
            Alcotest.(check int) "healthy job untouched"
              (List.nth (Lazy.force sup_reference) i)
              v)
        r)
    [ 1; 4 ]

let test_hang_cancelled_by_watchdog () =
  (* Every first attempt hangs; the watchdog must cancel it at the
     timeout and the clean retry must reproduce the reference bits. *)
  let plan =
    Core.Fault.plan ~rate:1.0 ~kinds:[ Core.Fault.Hang ] ~faulty_attempts:1
      ~seed:9 ()
  in
  let payloads = List.init 4 Fun.id in
  let reference =
    Core.Exec.run ~backend:Core.Exec.Serial ~seed:6 ~f:sup_f payloads
  in
  with_supervision
    (Core.Exec.supervision ~timeout_s:0.3 ~retries:1 ~faults:plan ())
  @@ fun () ->
  let r =
    Core.Exec.run ~backend:(Core.Exec.Parallel 4) ~seed:6 ~f:sup_f payloads
  in
  let s = Core.Exec.drain_summary () in
  Alcotest.(check bool) "cancelled-then-retried run = reference" true
    (r = reference);
  Alcotest.(check int) "every job burned one retry" 4 s.Core.Exec.retried;
  Alcotest.(check int) "no quarantines" 0
    (List.length s.Core.Exec.quarantined)

let test_hang_without_timeout_degrades_to_raise () =
  (* A Hang fault with no timeout armed must not wedge the process: it
     degrades to an injected raise naming the missing timeout. *)
  let plan =
    Core.Fault.plan ~rate:1.0 ~kinds:[ Core.Fault.Hang ] ~faulty_attempts:1
      ~seed:2 ()
  in
  with_supervision
    (Core.Exec.supervision ~retries:0 ~keep_going:true ~faults:plan ())
  @@ fun () ->
  let r =
    Core.Exec.run ~backend:Core.Exec.Serial ~quarantine:(fun _ _ -> -1)
      ~seed:1 ~f:sup_f [ 0; 1; 2 ]
  in
  let s = Core.Exec.drain_summary () in
  Alcotest.(check (list int)) "every job quarantined" [ -1; -1; -1 ] r;
  List.iter
    (fun fl ->
      Alcotest.(check bool) "the reason names the missing timeout" true
        (Test_util.contains fl.Core.Exec.f_reason "no timeout armed"))
    s.Core.Exec.quarantined

let test_poison_job_raises_without_keep_going () =
  let plan =
    Core.Fault.plan ~rate:1.0 ~kinds:[ Core.Fault.Raise ] ~faulty_attempts:8
      ~seed:4 ()
  in
  with_supervision
    (Core.Exec.supervision ~retries:1 ~keep_going:false ~faults:plan ())
  @@ fun () ->
  match sup_run ~quarantine:(fun _ _ -> -1) ~jobs:2 () with
  | _ -> Alcotest.fail "a poison job without keep_going must raise"
  | exception Core.Exec.Job_failed fl ->
    ignore (Core.Exec.drain_summary ());
    Alcotest.(check int) "both attempts were consumed" 2
      fl.Core.Exec.f_attempts;
    Alcotest.(check bool) "the reason names the injected fault" true
      (Test_util.contains fl.Core.Exec.f_reason "injected fault: job crash")

(* Satellite: a fully cached journal must answer without calling [f]
   (and hence without starting the pool). *)
let test_cached_run_never_calls_f () =
  let path = Filename.temp_file "exec-cache" ".jsonl" in
  let header =
    { Core.Runlog.schema = Core.Runlog.schema_version; campaign = "test";
      argv = []; seed = 3; jobs = 0; grid = Core.Json.Null; git = None;
      created = 0.0; shard = None; merged = None }
  in
  let sink = Core.Runlog.create ~deterministic:true ~path header in
  let r1 =
    Core.Exec.run ~backend:Core.Exec.Serial
      ~journal:(Core.Runlog.journal ~sink "")
      ~codec:Core.Runlog.int_codec ~seed:3 ~f:sup_f sup_payloads
  in
  Core.Runlog.close sink;
  let cache =
    match Core.Runlog.load path with
    | Ok l -> Core.Runlog.cache_of_ledger l
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  let r2 =
    Core.Exec.run
      ~backend:(Core.Exec.Parallel 4)
      ~journal:(Core.Runlog.journal ~cache "")
      ~codec:Core.Runlog.int_codec ~seed:3
      ~f:(fun ~seed:_ _ -> Alcotest.fail "f called on a fully cached run")
      sup_payloads
  in
  Alcotest.(check bool) "cached results replay bit-identically" true
    (r1 = r2)

(* Satellite: the supervised retry schedule and the reduced result are a
   pure function of (campaign seed, fault plan) — identical for every
   --jobs value. *)
let prop_supervised_deterministic =
  QCheck.Test.make
    ~name:"supervised run: same seed + plan = same result (jobs in {1,2,4})"
    ~count:4
    QCheck.(int_range 0 1_000_000)
    (fun fault_seed ->
      let plan =
        Core.Fault.plan ~rate:0.5
          ~kinds:
            [ Core.Fault.Raise; Core.Fault.Ledger_fail; Core.Fault.Corrupt ]
          ~faulty_attempts:2 ~seed:fault_seed ()
      in
      let observe jobs =
        with_supervision
          (Core.Exec.supervision ~retries:1 ~keep_going:true ~faults:plan ())
        @@ fun () ->
        let r = sup_run ~quarantine:(fun _ _ -> -1) ~jobs () in
        let s = Core.Exec.drain_summary () in
        ( r,
          s.Core.Exec.retried,
          List.map
            (fun fl ->
              ( fl.Core.Exec.f_index, fl.Core.Exec.f_attempts,
                fl.Core.Exec.f_reason ))
            s.Core.Exec.quarantined )
      in
      let reference = observe 1 in
      List.for_all (fun jobs -> observe jobs = reference) [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* The headline property: real campaign drivers are bit-identical
   across backends at the same seed. *)

let campaign_at ~backend ~seed =
  let apps = List.filter_map Apps.Registry.by_name [ "cbe-dot"; "sdk-red" ] in
  let envs chip =
    let tuned = Core.Tuning.shipped ~chip in
    [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
      Core.Environment.sys_plus ~tuned ]
  in
  Core.Campaign.run ~backend ~chips:[ Gpusim.Chip.k20 ] ~environments_for:envs
    ~apps ~runs:5 ~seed ()

let prop_campaign_backend_equality =
  QCheck.Test.make ~name:"Campaign.run: serial = parallel (jobs in {1,2,4})"
    ~count:4
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let reference = campaign_at ~backend:Core.Exec.Serial ~seed in
      List.for_all
        (fun jobs ->
          campaign_at ~backend:(Core.Exec.backend_of_jobs jobs) ~seed
          = reference)
        [ 1; 2; 4 ])

let patch_at ~backend ~seed =
  Core.Patch_finder.run ~backend ~chip:Gpusim.Chip.titan ~seed
    ~budget:Core.Budget.quick ()

let prop_patch_finder_backend_equality =
  QCheck.Test.make
    ~name:"Patch_finder.run: serial = parallel (jobs in {1,2,4})" ~count:3
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let reference = patch_at ~backend:Core.Exec.Serial ~seed in
      List.for_all
        (fun jobs ->
          patch_at ~backend:(Core.Exec.backend_of_jobs jobs) ~seed = reference)
        [ 1; 2; 4 ])

let () =
  Alcotest.run "exec"
    [ ( "engine",
        [ Alcotest.test_case "plan seeds = bits30 stream" `Quick
            test_plan_matches_bits30_stream;
          Alcotest.test_case "plan order" `Quick test_plan_indices_and_payloads;
          Alcotest.test_case "backend_of_jobs" `Quick test_backend_of_jobs;
          Alcotest.test_case "map preserves plan order" `Quick
            test_map_preserves_plan_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "pool reusable after exception" `Quick
            test_exception_leaves_pool_clean;
          Alcotest.test_case "for_all aborts early" `Quick
            test_for_all_abort_skips_remaining;
          Alcotest.test_case "ticker rate-limited" `Quick
            test_ticker_rate_limited;
          Alcotest.test_case "for_all across backends" `Quick
            test_for_all_agrees_across_backends;
          Alcotest.test_case "clamp_jobs" `Quick test_clamp_jobs ] );
      ( "supervision",
        [ Alcotest.test_case "retry heals bit-identically" `Quick
            test_retry_heals_bit_identical;
          Alcotest.test_case "quarantine matches prediction" `Quick
            test_quarantine_matches_prediction;
          Alcotest.test_case "watchdog cancels hangs" `Quick
            test_hang_cancelled_by_watchdog;
          Alcotest.test_case "hang without timeout degrades" `Quick
            test_hang_without_timeout_degrades_to_raise;
          Alcotest.test_case "poison job raises without keep-going" `Quick
            test_poison_job_raises_without_keep_going;
          Alcotest.test_case "fully cached run never calls f" `Quick
            test_cached_run_never_calls_f;
          QCheck_alcotest.to_alcotest prop_supervised_deterministic ] );
      ( "backend equality",
        List.map QCheck_alcotest.to_alcotest
          [ prop_campaign_backend_equality;
            prop_patch_finder_backend_equality ] ) ]
