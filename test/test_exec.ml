(* The plan/execute/reduce engine: seed derivation compatibility with
   the historical sequential RNG threading, plan-order results, error
   propagation, and the headline guarantee that the parallel backend is
   bit-identical to the serial one on the real campaign drivers. *)

let test_plan_matches_bits30_stream () =
  (* The contract that keeps every historical seed-sensitive result
     reproducible: plan's i-th seed is the i-th draw of the old
     sequential master RNG. *)
  List.iter
    (fun master ->
      let rng = Gpusim.Rng.create master in
      let jobs = Core.Exec.plan ~seed:master (List.init 50 Fun.id) in
      List.iter
        (fun j ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d, job %d" master j.Core.Exec.index)
            (Gpusim.Rng.bits30 rng) j.Core.Exec.seed)
        jobs)
    [ 0; 1; 3; 42; 123456789 ]

let test_plan_indices_and_payloads () =
  let jobs = Core.Exec.plan ~seed:7 [ "a"; "b"; "c" ] in
  Alcotest.(check (list int)) "indices in order" [ 0; 1; 2 ]
    (List.map (fun j -> j.Core.Exec.index) jobs);
  Alcotest.(check (list string)) "payloads in order" [ "a"; "b"; "c" ]
    (List.map (fun j -> j.Core.Exec.payload) jobs)

let test_backend_of_jobs () =
  Alcotest.(check bool) "0 jobs is serial" true
    (Core.Exec.backend_of_jobs 0 = Core.Exec.Serial);
  Alcotest.(check bool) "1 job is serial" true
    (Core.Exec.backend_of_jobs 1 = Core.Exec.Serial);
  Alcotest.(check bool) "4 jobs is parallel" true
    (Core.Exec.backend_of_jobs 4 = Core.Exec.Parallel 4);
  Alcotest.(check int) "jobs_of_backend inverts" 4
    (Core.Exec.jobs_of_backend (Core.Exec.Parallel 4));
  Alcotest.(check int) "serial is one domain" 1
    (Core.Exec.jobs_of_backend Core.Exec.Serial)

let test_map_preserves_plan_order () =
  (* Results must come back in plan order even though the parallel pool
     completes jobs in whatever order the scheduler picks. *)
  let payloads = List.init 200 Fun.id in
  let f j = (j.Core.Exec.index, j.Core.Exec.seed, j.Core.Exec.payload * 2) in
  let serial =
    Core.Exec.map ~backend:Core.Exec.Serial ~f (Core.Exec.plan ~seed:9 payloads)
  in
  List.iter
    (fun jobs ->
      let par =
        Core.Exec.map ~backend:(Core.Exec.Parallel jobs) ~f
          (Core.Exec.plan ~seed:9 payloads)
      in
      Alcotest.(check bool)
        (Printf.sprintf "parallel %d = serial" jobs)
        true (par = serial))
    [ 2; 3; 4; 8 ]

let test_exception_propagates () =
  let payloads = List.init 64 Fun.id in
  let boom j = if j.Core.Exec.payload = 37 then failwith "boom" else () in
  List.iter
    (fun backend ->
      Alcotest.check_raises "job exception reaches the caller"
        (Failure "boom") (fun () ->
          ignore
            (Core.Exec.map ~backend ~f:boom (Core.Exec.plan ~seed:1 payloads))))
    [ Core.Exec.Serial; Core.Exec.Parallel 4 ]

let test_exception_leaves_pool_clean () =
  (* A crashed parallel run must join every helper domain before
     re-raising, so the engine is immediately reusable. *)
  let payloads = List.init 64 Fun.id in
  (try
     ignore
       (Core.Exec.map
          ~backend:(Core.Exec.Parallel 4)
          ~f:(fun j -> if j.Core.Exec.payload = 5 then failwith "boom")
          (Core.Exec.plan ~seed:2 payloads))
   with Failure _ -> ());
  let r =
    Core.Exec.map
      ~backend:(Core.Exec.Parallel 4)
      ~f:(fun j -> j.Core.Exec.payload + 1)
      (Core.Exec.plan ~seed:2 payloads)
  in
  Alcotest.(check (list int)) "a fresh parallel run still works"
    (List.map (( + ) 1) payloads)
    r

let test_for_all_abort_skips_remaining () =
  (* Once a failure is known, the shared abort flag must stop workers
     from processing the rest of their chunks and from taking new ones. *)
  let total = 3200 in
  let processed = Atomic.make 0 in
  let ok =
    Core.Exec.for_all
      ~backend:(Core.Exec.Parallel 4)
      ~seed:8
      ~f:(fun ~seed:_ p ->
        Atomic.incr processed;
        p <> 0)
      (List.init total Fun.id)
  in
  Alcotest.(check bool) "the failure is reported" false ok;
  Alcotest.(check bool)
    (Printf.sprintf "early abort: %d of %d jobs ran" (Atomic.get processed)
       total)
    true
    (Atomic.get processed < 1000)

let test_ticker_rate_limited () =
  (* A sub-second campaign must produce exactly the final progress line,
     not one message per job. *)
  let messages = ref [] in
  let finishes = ref 0 in
  let mu = Mutex.create () in
  Core.Exec.set_progress
    (Some
       { Core.Exec.line =
           (fun m ->
             Mutex.lock mu;
             messages := m :: !messages;
             Mutex.unlock mu);
         finished =
           (fun () ->
             Mutex.lock mu;
             incr finishes;
             Mutex.unlock mu) });
  Fun.protect
    ~finally:(fun () -> Core.Exec.set_progress None)
    (fun () ->
      List.iter
        (fun backend ->
          messages := [];
          finishes := 0;
          ignore
            (Core.Exec.map ~backend ~label:"tick-test"
               ~f:(fun _ -> ())
               (Core.Exec.plan ~seed:1 (List.init 500 Fun.id)));
          let n = List.length !messages in
          Alcotest.(check bool)
            (Printf.sprintf "%d message(s) for 500 fast jobs" n)
            true
            (n >= 1 && n <= 5);
          Alcotest.(check bool) "the final line reports completion" true
            (Test_util.contains (List.hd !messages) "500/500");
          Alcotest.(check int) "finished fires exactly once" 1 !finishes)
        [ Core.Exec.Serial; Core.Exec.Parallel 4 ])

let test_for_all_agrees_across_backends () =
  let payloads = List.init 100 Fun.id in
  List.iter
    (fun pred ->
      let expect =
        Core.Exec.for_all ~backend:Core.Exec.Serial ~seed:5
          ~f:(fun ~seed:_ p -> pred p)
          payloads
      in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "for_all, %d domains" jobs)
            expect
            (Core.Exec.for_all ~backend:(Core.Exec.Parallel jobs) ~seed:5
               ~f:(fun ~seed:_ p -> pred p)
               payloads))
        [ 2; 4 ])
    [ (fun _ -> true); (fun p -> p <> 63); (fun p -> p < 2) ]

(* ------------------------------------------------------------------ *)
(* The headline property: real campaign drivers are bit-identical
   across backends at the same seed. *)

let campaign_at ~backend ~seed =
  let apps = List.filter_map Apps.Registry.by_name [ "cbe-dot"; "sdk-red" ] in
  let envs chip =
    let tuned = Core.Tuning.shipped ~chip in
    [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
      Core.Environment.sys_plus ~tuned ]
  in
  Core.Campaign.run ~backend ~chips:[ Gpusim.Chip.k20 ] ~environments_for:envs
    ~apps ~runs:5 ~seed ()

let prop_campaign_backend_equality =
  QCheck.Test.make ~name:"Campaign.run: serial = parallel (jobs in {1,2,4})"
    ~count:4
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let reference = campaign_at ~backend:Core.Exec.Serial ~seed in
      List.for_all
        (fun jobs ->
          campaign_at ~backend:(Core.Exec.backend_of_jobs jobs) ~seed
          = reference)
        [ 1; 2; 4 ])

let patch_at ~backend ~seed =
  Core.Patch_finder.run ~backend ~chip:Gpusim.Chip.titan ~seed
    ~budget:Core.Budget.quick ()

let prop_patch_finder_backend_equality =
  QCheck.Test.make
    ~name:"Patch_finder.run: serial = parallel (jobs in {1,2,4})" ~count:3
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let reference = patch_at ~backend:Core.Exec.Serial ~seed in
      List.for_all
        (fun jobs ->
          patch_at ~backend:(Core.Exec.backend_of_jobs jobs) ~seed = reference)
        [ 1; 2; 4 ])

let () =
  Alcotest.run "exec"
    [ ( "engine",
        [ Alcotest.test_case "plan seeds = bits30 stream" `Quick
            test_plan_matches_bits30_stream;
          Alcotest.test_case "plan order" `Quick test_plan_indices_and_payloads;
          Alcotest.test_case "backend_of_jobs" `Quick test_backend_of_jobs;
          Alcotest.test_case "map preserves plan order" `Quick
            test_map_preserves_plan_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "pool reusable after exception" `Quick
            test_exception_leaves_pool_clean;
          Alcotest.test_case "for_all aborts early" `Quick
            test_for_all_abort_skips_remaining;
          Alcotest.test_case "ticker rate-limited" `Quick
            test_ticker_rate_limited;
          Alcotest.test_case "for_all across backends" `Quick
            test_for_all_agrees_across_backends ] );
      ( "backend equality",
        List.map QCheck_alcotest.to_alcotest
          [ prop_campaign_backend_equality;
            prop_patch_finder_backend_equality ] ) ]
