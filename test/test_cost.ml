(* The fence-cost benchmark (Sec. 6). *)

let measure app fencing =
  Core.Cost.measure ~chip:Gpusim.Chip.k20 ~app ~fencing ~runs:8 ~seed:4

let test_fences_never_cheaper () =
  (* "We see no points below the diagonal" (Fig. 5): conservative fencing
     never reduces runtime or energy. *)
  List.iter
    (fun name ->
      let app = Option.get (Apps.Registry.by_name name) in
      let no = measure app Apps.App.Stripped in
      let cons = measure app Apps.App.Conservative in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cons runtime (%.0f) >= none (%.0f)" name
           cons.Core.Cost.runtime no.Core.Cost.runtime)
        true
        (cons.Core.Cost.runtime >= no.Core.Cost.runtime);
      Alcotest.(check bool) (name ^ ": cons energy >= none") true
        (cons.Core.Cost.energy >= no.Core.Cost.energy))
    [ "cbe-dot"; "cbe-ht"; "sdk-red-nf" ]

let test_empirical_between () =
  (* Empirical fences are a subset of conservative ones: cost in
     between. *)
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let chip = Gpusim.Chip.k20 in
  let config =
    { (Core.Harden.default_config ~chip) with stability_runs = 50 }
  in
  let h = Core.Harden.insert ~chip ~config ~app ~seed:5 () in
  let no = measure app Apps.App.Stripped in
  let emp = measure app (Apps.App.Sites h.Core.Harden.fences) in
  let cons = measure app Apps.App.Conservative in
  Alcotest.(check bool) "emp >= no" true
    (emp.Core.Cost.runtime >= no.Core.Cost.runtime);
  Alcotest.(check bool) "cons >= emp" true
    (cons.Core.Cost.runtime >= emp.Core.Cost.runtime)

let test_overhead_pct () =
  Alcotest.(check (float 1e-9)) "+50%" 50.0
    (Core.Cost.overhead_pct ~base:100.0 150.0);
  Alcotest.(check (float 1e-9)) "zero base guarded" 0.0
    (Core.Cost.overhead_pct ~base:0.0 10.0)

let test_summary_medians () =
  let m r e = { Core.Cost.runtime = r; energy = e; discarded = 0 } in
  let point app no emp cons =
    { Core.Cost.chip = "K20"; app; nvml = true; no_fences = m no no;
      emp = m emp emp; cons = m cons cons; emp_count = 1 }
  in
  let points =
    [ point "a" 100. 101. 200.; point "b" 100. 102. 300.;
      point "c" 100. 110. 400. ]
  in
  let s = Core.Cost.summarise points in
  Alcotest.(check (float 1e-6)) "median emp runtime" 2.0
    s.Core.Cost.median_emp_runtime_pct;
  Alcotest.(check (float 1e-6)) "median cons runtime" 200.0
    s.Core.Cost.median_cons_runtime_pct;
  Alcotest.(check (float 1e-6)) "max cons" 300.0 s.Core.Cost.max_cons_runtime_pct

let test_discard_counting () =
  (* Under an aggressive environment errors appear; Cost.measure itself is
     native, so discards should be zero for correct apps. *)
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let no = measure app Apps.App.Stripped in
  Alcotest.(check int) "nothing discarded natively" 0 no.Core.Cost.discarded

let test_run_points () =
  let apps = List.filter_map Apps.Registry.by_name [ "cbe-dot"; "cbe-ht" ] in
  let points =
    Core.Cost.run ~chips:[ Gpusim.Chip.k20; Gpusim.Chip.c2075 ] ~apps
      ~emp_for:(fun _ _ -> []) ~runs:5 ~seed:6 ()
  in
  Alcotest.(check int) "chips x apps points" 4 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "positive runtimes" true
        (p.Core.Cost.no_fences.Core.Cost.runtime > 0.0))
    points;
  (* Empirical set empty => emp == no fences modulo seeds. *)
  ()

let test_fermi_cons_costlier_than_kepler () =
  (* The oldest chips show the most dramatic conservative-fencing costs
     (Sec. 6). *)
  let app = Option.get (Apps.Registry.by_name "cbe-ht") in
  let pct chip =
    let no = Core.Cost.measure ~chip ~app ~fencing:Apps.App.Stripped ~runs:6 ~seed:7 in
    let cons =
      Core.Cost.measure ~chip ~app ~fencing:Apps.App.Conservative ~runs:6 ~seed:7
    in
    Core.Cost.overhead_pct ~base:no.Core.Cost.runtime cons.Core.Cost.runtime
  in
  let kepler = pct Gpusim.Chip.k20 and fermi = pct Gpusim.Chip.c2075 in
  Alcotest.(check bool)
    (Printf.sprintf "Fermi (%.0f%%) > Kepler (%.0f%%)" fermi kepler)
    true (fermi > kepler)

let () =
  Alcotest.run "cost"
    [ ( "unit",
        [ Alcotest.test_case "overhead pct" `Quick test_overhead_pct;
          Alcotest.test_case "summary medians" `Quick test_summary_medians;
          Alcotest.test_case "no native discards" `Quick test_discard_counting
        ] );
      ( "benchmarks",
        [ Alcotest.test_case "fences never cheaper" `Slow
            test_fences_never_cheaper;
          Alcotest.test_case "empirical between" `Slow test_empirical_between;
          Alcotest.test_case "run grid" `Slow test_run_points;
          Alcotest.test_case "Fermi cons cost" `Slow
            test_fermi_cons_costlier_than_kepler ] ) ]
