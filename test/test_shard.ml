(* Core.Shard and gpuwmm merge: exact partitioning for any plan and any
   N (property-tested, both strategies), shard-then-merge ledgers
   byte-identical to the serial deterministic ledger (including after a
   shard is killed mid-run and resumed), and fail-closed merge
   validation for every refusal case. *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let temp () = Filename.temp_file "shard" ".jsonl"

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let with_deterministic_env f =
  Unix.putenv "GPUWMM_LEDGER_DETERMINISTIC" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GPUWMM_LEDGER_DETERMINISTIC" "0")
    f

let shard spec =
  match Core.Shard.parse spec with
  | Ok sh -> sh
  | Error e -> failwith (spec ^ ": " ^ e)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let test_parse () =
  let sh = shard "3/8" in
  Alcotest.(check int) "k" 3 sh.Core.Shard.k;
  Alcotest.(check int) "n" 8 sh.Core.Shard.n;
  Alcotest.(check string) "stride renders bare" "3/8"
    (Core.Shard.to_string sh);
  let c = shard "2/4:contiguous" in
  Alcotest.(check string) "contiguous renders suffixed" "2/4:contiguous"
    (Core.Shard.to_string c);
  Alcotest.(check string) "contig abbreviation" "2/4:contiguous"
    (Core.Shard.to_string (shard "2/4:contig"));
  List.iter
    (fun bad ->
      match Core.Shard.parse bad with
      | Ok _ -> Alcotest.failf "%S parsed" bad
      | Error _ -> ())
    [ "0/4"; "5/4"; "1/0"; "1/513"; "x/4"; "1-4"; "1/4:zigzag"; "" ]

(* ------------------------------------------------------------------ *)
(* Exact partition (property)                                          *)

let partition_prop =
  QCheck.Test.make ~count:300 ~name:"every job in exactly one shard"
    QCheck.(
      triple (int_range 0 200) (int_range 1 64) bool)
    (fun (total, n, contiguous) ->
      let strategy =
        if contiguous then Core.Shard.Contiguous else Core.Shard.Stride
      in
      let shards =
        List.init n (fun i -> Core.Shard.make ~strategy ~k:(i + 1) ~n ())
      in
      (* Each index owned exactly once. *)
      for i = 0 to total - 1 do
        let owners =
          List.filter (fun sh -> Core.Shard.owns sh ~total i) shards
        in
        if List.length owners <> 1 then
          QCheck.Test.fail_reportf "index %d of %d has %d owners (n=%d %s)"
            i total (List.length owners) n
            (if contiguous then "contiguous" else "stride")
      done;
      (* Ranks are dense 0..count-1 in increasing index order, and
         [indices] inverts [rank]. *)
      List.iter
        (fun sh ->
          let owned =
            List.filter (Core.Shard.owns sh ~total) (List.init total Fun.id)
          in
          let count = Core.Shard.count sh ~total in
          if List.length owned <> count then
            QCheck.Test.fail_reportf "count %d but %d owned" count
              (List.length owned);
          List.iteri
            (fun r i ->
              if Core.Shard.rank sh ~total i <> r then
                QCheck.Test.fail_reportf "rank of %d is %d, want %d" i
                  (Core.Shard.rank sh ~total i)
                  r)
            owned;
          if Core.Shard.indices sh ~total <> owned then
            QCheck.Test.fail_reportf "indices disagree with owns")
        shards;
      true)

(* ------------------------------------------------------------------ *)
(* Shard-then-merge byte-identity                                      *)

(* The same small fixed campaign as test_runlog, but with a real
   parameter grid in the header: merge reconstructs the campaign result
   from the grid's chips/envs/apps lists. *)
let chip = Gpusim.Chip.k20
let apps = List.filter_map Apps.Registry.by_name [ "cbe-dot"; "sdk-red" ]

let envs _chip =
  let tuned = Core.Tuning.shipped ~chip in
  [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
    Core.Environment.sys_plus ~tuned ]

let runs = 12
let cseed = 11

let json_strs l = Core.Json.List (List.map (fun s -> Core.Json.String s) l)

let grid =
  Core.Json.Assoc
    [ ("chips", json_strs [ chip.Gpusim.Chip.name ]);
      ("envs",
       json_strs
         (List.map (fun e -> e.Core.Environment.label) (envs chip)));
      ("apps", json_strs (List.map (fun a -> a.Apps.App.name) apps));
      ("runs", Core.Json.Int runs) ]

let header ?shard () =
  { Core.Runlog.schema = Core.Runlog.schema_version;
    campaign = "test"; argv = []; seed = cseed; jobs = 0; grid;
    git = None; created = 0.0; shard; merged = None }

let run_campaign ?cache ?shard ~path () =
  let sink = Core.Runlog.create ~deterministic:true ~path (header ?shard:(Option.map Core.Shard.to_string shard) ()) in
  let journal = Core.Runlog.journal ~sink ?cache "" in
  Core.Shard.set_ambient shard;
  let rows =
    Fun.protect
      ~finally:(fun () -> Core.Shard.set_ambient None)
      (fun () ->
        Core.Campaign.run ~backend:Core.Exec.Serial ~journal ~chips:[ chip ]
          ~environments_for:envs ~apps ~runs ~seed:cseed ())
  in
  (match shard with
  | Some _ -> ()  (* a shard ledger carries no result record *)
  | None ->
    Core.Runlog.append_result sink ~kind:"campaign"
      (Core.Campaign.rows_to_json rows));
  Core.Runlog.close sink;
  rows

(* The uninterrupted single-process reference, computed once. *)
let full =
  lazy
    (let path = temp () in
     let rows = run_campaign ~path () in
     let text = read_all path in
     Sys.remove path;
     (text, rows))

let write_shards ?(strategy = "") ~n () =
  List.init n (fun i ->
      let path = temp () in
      let sh = shard (Printf.sprintf "%d/%d%s" (i + 1) n strategy) in
      ignore (run_campaign ~shard:sh ~path ());
      path)

let merge_to paths =
  let out = temp () in
  let r = with_deterministic_env (fun () -> Core.Merge.merge ~out paths) in
  (out, r)

let cleanup paths = List.iter Sys.remove paths

let test_merge_identity () =
  let reference, _ = Lazy.force full in
  List.iter
    (fun (n, strategy) ->
      let paths = write_shards ~strategy ~n () in
      let out, r = merge_to paths in
      (match r with
      | Error e -> Alcotest.failf "merge (n=%d%s) failed: %s" n strategy e
      | Ok o ->
        Alcotest.(check bool)
          "result reconstructed" true o.Core.Merge.result_written);
      Alcotest.(check string)
        (Printf.sprintf "merged = serial (n=%d%s)" n strategy)
        reference (read_all out);
      cleanup (out :: paths))
    [ (2, ""); (3, ""); (4, ""); (3, ":contiguous") ]

(* Kill shard 2 mid-run (simulated by truncating its ledger inside the
   job stream), verify the merge refuses, resume the shard, and verify
   the re-merge is byte-identical to the serial reference.  A 2-way
   split of the 4-job plan gives the victim two jobs (indices 1 and 3),
   so the truncation leaves a partial — not empty — shard and the
   resume exercises cache replay. *)
let test_kill_resume_merge () =
  let reference, _ = Lazy.force full in
  let paths = write_shards ~n:2 () in
  let victim = List.nth paths 1 in
  let whole = read_all victim in
  let lines = String.split_on_char '\n' whole in
  (* keep the header and the first job record, drop the rest *)
  write_all victim (String.concat "\n" [ List.nth lines 0; List.nth lines 1 ] ^ "\n");
  (match merge_to paths with
  | out, Error e ->
    Sys.remove out;
    if not (contains ~affix:"missing" e) then
      Alcotest.failf "refusal does not name the missing job: %s" e
  | out, Ok _ ->
    Sys.remove out;
    Alcotest.fail "merge accepted a truncated shard");
  (* resume the victim in place: replay its cache, re-run the rest *)
  let cache =
    match Core.Runlog.load victim with
    | Ok l -> Core.Runlog.cache_of_ledger l
    | Error e -> failwith e
  in
  ignore (run_campaign ~cache ~shard:(shard "2/2") ~path:victim ());
  (match merge_to paths with
  | out, Ok _ ->
    Alcotest.(check string) "resumed merge = serial" reference (read_all out);
    Sys.remove out
  | _, Error e -> Alcotest.failf "merge after resume failed: %s" e);
  cleanup paths

let test_merge_fail_closed () =
  let expect_error ~what paths =
    let out, r = merge_to paths in
    match r with
    | Ok _ -> Alcotest.failf "merge accepted %s" what
    | Error _ ->
      if Sys.file_exists out && String.length (read_all out) > 0 then
        Alcotest.failf "failed merge of %s left output behind" what;
      if Sys.file_exists out then Sys.remove out
  in
  let paths = write_shards ~n:3 () in
  (* missing shard *)
  expect_error ~what:"an incomplete shard set" (List.tl paths);
  (* duplicated shard *)
  expect_error ~what:"a duplicated shard" (List.hd paths :: paths);
  (* mixed strategies *)
  let contig = write_shards ~strategy:":contiguous" ~n:3 () in
  expect_error ~what:"mixed strategies"
    [ List.nth paths 0; List.nth contig 1; List.nth paths 2 ];
  (* plan-header mismatch: swap in a shard whose seed differs *)
  let rogue = temp () in
  let rogue_header =
    { (header ~shard:"2/3" ()) with Core.Runlog.seed = cseed + 1 }
  in
  let sink = Core.Runlog.create ~deterministic:true ~path:rogue rogue_header in
  Core.Runlog.close sink;
  expect_error ~what:"a seed mismatch"
    [ List.nth paths 0; rogue; List.nth paths 2 ];
  (* unsharded input *)
  let plain = temp () in
  let sink = Core.Runlog.create ~deterministic:true ~path:plain (header ()) in
  Core.Runlog.close sink;
  expect_error ~what:"an unsharded ledger" [ plain ];
  cleanup (rogue :: plain :: (paths @ contig))

(* ------------------------------------------------------------------ *)
(* Merged-ledger provenance (outside deterministic mode)               *)

let test_merged_provenance () =
  let paths = write_shards ~n:2 () in
  let out = temp () in
  (* not under with_deterministic_env: provenance survives *)
  (match Core.Merge.merge ~out paths with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "merge failed: %s" e);
  (match Core.Runlog.load out with
  | Error e -> Alcotest.failf "merged ledger unreadable: %s" e
  | Ok l ->
    (match l.Core.Runlog.header.Core.Runlog.merged with
    | Some srcs ->
      Alcotest.(check (list string)) "merged field names the shards" paths srcs
    | None -> Alcotest.fail "merged ledger lacks the merged field");
    Alcotest.(check bool) "shard field stripped" true
      (l.Core.Runlog.header.Core.Runlog.shard = None);
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Core.Report.provenance ppf ~path:out l.Core.Runlog.header;
    Format.pp_print_flush ppf ();
    let stamp = Buffer.contents buf in
    if not (contains ~affix:"merged 2 shards" stamp) then
      Alcotest.failf "provenance stamp lacks the merge line:\n%s" stamp;
    (* compare: merged campaign result = single-process result *)
    let _, serial_rows = Lazy.force full in
    (match l.Core.Runlog.result with
    | Some ("campaign", data) ->
      let rows =
        match Core.Campaign.rows_of_json data with
        | Ok rows -> rows
        | Error e -> Alcotest.failf "merged result does not decode: %s" e
      in
      let c =
        Core.Report.compare_campaigns ~tolerance:0.0 ~baseline:serial_rows
          ~candidate:rows
      in
      Alcotest.(check int) "no regressions vs single-process" 0
        (List.length c.Core.Report.regressions)
    | _ -> Alcotest.fail "merged ledger lacks a campaign result"));
  cleanup (out :: paths)

let () =
  Alcotest.run "shard"
    [ ( "partition",
        [ Alcotest.test_case "parse and render" `Quick test_parse;
          QCheck_alcotest.to_alcotest partition_prop ] );
      ( "merge",
        [ Alcotest.test_case "shard-then-merge is byte-identical" `Slow
            test_merge_identity;
          Alcotest.test_case "killed shard: refuse, resume, merge" `Slow
            test_kill_resume_merge;
          Alcotest.test_case "merge fails closed" `Slow
            test_merge_fail_closed;
          Alcotest.test_case "merged provenance and compare" `Slow
            test_merged_provenance ] ) ]
