(* Allocation-discipline regression tests.

   The campaign hot path runs short litmus executions back to back on a
   recycled per-domain simulator ([Sim.with_sim]).  The refactor's
   contract is twofold:

   - recycling is observably identical to creating a fresh device per
     run (checked here against an inline fresh-device runner);
   - a single run stays within a committed minor-heap budget, so a
     change that reintroduces per-run device creation (a 65k-word global
     memory array per run) or list-based pending queues fails loudly. *)

let chip = Gpusim.Chip.k20

let inst = { Litmus.Test.idiom = Litmus.Test.MP; distance = 8 }

(* The pre-arena runner: a fresh device per run, as [Litmus.Runner]
   used to do.  The oracle for recycling equivalence. *)
(* Mirrors [Litmus.Runner]'s device_words / litmus_max_ticks. *)
let run_once_fresh ~seed inst =
  let sim = Gpusim.Sim.create ~words:2048 ~chip ~seed () in
  let x = Gpusim.Sim.alloc sim (Litmus.Test.layout_words inst) in
  let out = Gpusim.Sim.alloc sim 2 in
  Gpusim.Sim.write sim out (-1);
  Gpusim.Sim.write sim (out + 1) (-1);
  let result =
    Gpusim.Sim.launch sim ~max_ticks:50_000 ~grid:2
      ~block:1 (Litmus.Test.kernel inst)
      ~args:[ ("x", x); ("out", out) ]
  in
  let r1 = Gpusim.Sim.read sim out in
  let r2 = Gpusim.Sim.read sim (out + 1) in
  let timed_out =
    match result.Gpusim.Sim.outcome with
    | Gpusim.Sim.Finished -> false
    | Gpusim.Sim.Timeout | Gpusim.Sim.Trapped _ -> true
  in
  (r1, r2, timed_out)

let test_recycled_equals_fresh () =
  for seed = 1 to 500 do
    let o = Litmus.Runner.run_once ~chip ~seed inst in
    let r1, r2, timed_out = run_once_fresh ~seed inst in
    if (o.r1, o.r2, o.timed_out) <> (r1, r2, timed_out) then
      Alcotest.failf
        "seed %d: recycled sim gave (%d,%d,%b), fresh sim gave (%d,%d,%b)"
        seed o.r1 o.r2 o.timed_out r1 r2 timed_out
  done

let test_reset_equals_create () =
  (* Directly: a reset device behaves like a fresh one, including under
     an environment that draws randomness (stress + randomisation). *)
  let env =
    Core.Environment.for_litmus
      (Core.Environment.sys_plus
         ~tuned:(Core.Tuning.shipped ~chip:Gpusim.Chip.k20))
  in
  for seed = 1 to 100 do
    let fresh = Gpusim.Sim.create ~words:2048 ~chip ~seed () in
    let recycled = Gpusim.Sim.create ~words:2048 ~chip ~seed:(seed + 999) () in
    (* Dirty the recycled device with a different run first. *)
    ignore
      (Gpusim.Sim.launch recycled ~grid:2 ~block:1
         (Litmus.Test.kernel inst)
         ~args:
           [ ("x", Gpusim.Sim.alloc recycled (Litmus.Test.layout_words inst));
             ("out", Gpusim.Sim.alloc recycled 2) ]);
    Gpusim.Sim.reset recycled ~seed;
    let run sim =
      Gpusim.Sim.set_environment sim env;
      let x = Gpusim.Sim.alloc sim (Litmus.Test.layout_words inst) in
      let out = Gpusim.Sim.alloc sim 2 in
      let r =
        Gpusim.Sim.launch sim ~grid:2 ~block:1 (Litmus.Test.kernel inst)
          ~args:[ ("x", x); ("out", out) ]
      in
      ( Gpusim.Sim.read sim out,
        Gpusim.Sim.read sim (out + 1),
        r.Gpusim.Sim.outcome = Gpusim.Sim.Finished,
        Gpusim.Sim.reorders sim )
    in
    let a = run fresh and b = run recycled in
    if a <> b then Alcotest.failf "seed %d: reset device diverged" seed
  done

(* The committed per-run minor-heap budget, in words.  Measured at
   ~0.8k words/run when the budget was last tightened (ring-buffer
   queues, recycled simulator, memoised kernel ASTs, per-sim compiled
   code cache, one-word shared arrays for the shared-memory-free litmus
   kernels); the ceiling leaves ~3x headroom for noise and compiler
   drift but fails on any structural regression — per-run kernel
   compilation alone costs several hundred words, and per-run device
   creation >2k words of arrays. *)
let per_run_budget_words = 2_500.0

let batch_runs = 400

let test_minor_words_budget () =
  (* Warm the arena, kernel compilation paths and any memo tables so the
     measured window sees only steady-state per-run cost. *)
  for seed = 1 to 50 do
    ignore (Litmus.Runner.run_once ~chip ~seed inst)
  done;
  let before = Gc.minor_words () in
  for seed = 1 to batch_runs do
    ignore (Litmus.Runner.run_once ~chip ~seed inst)
  done;
  let after = Gc.minor_words () in
  let per_run = (after -. before) /. float_of_int batch_runs in
  Printf.printf "alloc: %.0f minor words/run (budget %.0f)\n%!" per_run
    per_run_budget_words;
  if per_run > per_run_budget_words then
    Alcotest.failf
      "per-run minor allocation %.0f words exceeds the committed budget of \
       %.0f words — did a hot path start allocating per run again?"
      per_run per_run_budget_words

let () =
  Alcotest.run "alloc"
    [ ( "allocation discipline",
        [ Alcotest.test_case "recycled sim = fresh sim" `Quick
            test_recycled_equals_fresh;
          Alcotest.test_case "reset = create under environment" `Quick
            test_reset_equals_create;
          Alcotest.test_case "minor-words budget per litmus run" `Quick
            test_minor_words_budget ] ) ]
