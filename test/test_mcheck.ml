(* The bounded model checker and its campaign-facing front end:
   verdicts against the SC oracle, DPOR pruning, witness replay,
   sharding determinism, golden reports and campaign cross-validation. *)

module M = Gpusim.Mcheck

let k20 = Gpusim.Chip.k20

let state_list =
  Alcotest.testable
    (fun ppf (s : Gpusim.Sc_ref.state) ->
      Fmt.pf ppf "mem=%a regs=%a"
        Fmt.(list ~sep:sp (pair ~sep:comma int int))
        s.memory
        Fmt.(list ~sep:sp (fun ppf (t, r, v) -> Fmt.pf ppf "%d.%s=%d" t r v))
        s.registers)
    ( = )
  |> Alcotest.list

let reachable_states (r : M.result) =
  List.map (fun (w : M.witness) -> w.M.state) r.M.reachable

(* ------------------------------------------------------------------ *)
(* Verdicts on the litmus idioms                                        *)

let check_inst ?(fenced = false) ?(k = 2) ?(dpor = true) inst =
  M.check ~chip:k20 ~max_reorderings:k ~dpor
    (Core.Check.litmus_program inst ~fenced)

let test_fenced_proved_sc () =
  (* Fully fenced MP/LB/SB at a cross-partition distance: the checker must
     prove the absence of weak behaviour. *)
  List.iter
    (fun idiom ->
      let inst = { Litmus.Test.idiom; distance = 31 } in
      match (check_inst ~fenced:true inst).M.verdict with
      | M.Proved_sc -> ()
      | M.Weak ws ->
        Alcotest.failf "%s fenced: %d weak state(s) found"
          (Litmus.Test.idiom_name idiom)
          (List.length ws))
    Litmus.Test.idioms

let test_unfenced_weak_witnessed () =
  (* Unfenced at a cross-partition distance: exactly the idiom's weak
     outcome appears, with a non-trivial witness schedule. *)
  List.iter
    (fun idiom ->
      let inst = { Litmus.Test.idiom; distance = 31 } in
      match (check_inst inst).M.verdict with
      | M.Proved_sc ->
        Alcotest.failf "%s unfenced: expected weak behaviour"
          (Litmus.Test.idiom_name idiom)
      | M.Weak ws ->
        List.iter
          (fun (w : M.witness) ->
            let r1, r2 = Core.Check.outcome w.M.state in
            Alcotest.(check bool)
              (Printf.sprintf "%s (%d,%d) is the designated weak outcome"
                 (Litmus.Test.idiom_name idiom) r1 r2)
              true
              (Litmus.Test.weak inst ~r1 ~r2);
            Alcotest.(check bool) "witness actually reorders" true
              (w.M.reorders > 0))
          ws)
    Litmus.Test.idioms

let test_same_partition_proved_sc () =
  (* d = 0 keeps both locations in one partition: FIFO commit order makes
     even the unfenced programs SC — the "no weak behaviour below the
     critical patch size" fact, now as a proof instead of 0 observations. *)
  List.iter
    (fun idiom ->
      let inst = { Litmus.Test.idiom; distance = 0 } in
      match (check_inst inst).M.verdict with
      | M.Proved_sc -> ()
      | M.Weak _ ->
        Alcotest.failf "%s d=0: weak behaviour inside one partition"
          (Litmus.Test.idiom_name idiom))
    Litmus.Test.idioms

let test_zero_bound_is_sc () =
  (* k = 0 forbids every reordering, so the reachable set collapses to the
     SC oracle's. *)
  let inst = { Litmus.Test.idiom = Litmus.Test.MP; distance = 31 } in
  let r = check_inst ~k:0 inst in
  (match r.M.verdict with
  | M.Proved_sc -> ()
  | M.Weak _ -> Alcotest.fail "k=0 cannot reach non-SC states");
  Alcotest.check state_list "reachable = SC at k=0" r.M.sc_states
    (reachable_states r);
  Alcotest.(check bool) "the bound actually pruned branches" true
    (r.M.stats.M.bound_pruned > 0)

(* ------------------------------------------------------------------ *)
(* DPOR                                                                 *)

let test_dpor_prunes_and_preserves () =
  let inst = { Litmus.Test.idiom = Litmus.Test.MP; distance = 31 } in
  let dpor = check_inst ~dpor:true inst in
  let naive = check_inst ~dpor:false inst in
  Alcotest.check state_list "same reachable states"
    (reachable_states naive) (reachable_states dpor);
  Alcotest.(check bool)
    (Printf.sprintf "DPOR explores strictly fewer transitions (%d < %d)"
       dpor.M.stats.M.explored naive.M.stats.M.explored)
    true
    (dpor.M.stats.M.explored < naive.M.stats.M.explored);
  Alcotest.(check bool) "sleep sets pruned something" true
    (dpor.M.stats.M.sleep_pruned > 0);
  Alcotest.(check int) "naive never consults sleep sets" 0
    naive.M.stats.M.sleep_pruned

let test_telemetry_counters () =
  let before = Core.Telemetry.counter_value (Core.Telemetry.counter "mcheck.explored") in
  let checks = Core.Telemetry.counter_value (Core.Telemetry.counter "mcheck.checks") in
  let inst = { Litmus.Test.idiom = Litmus.Test.SB; distance = 31 } in
  let r =
    Core.Check.check_program ~chip:k20 ~max_reorderings:2
      (Core.Check.litmus_program inst ~fenced:false)
  in
  Alcotest.(check int) "explored counter advanced by the run"
    (before + r.M.stats.M.explored)
    (Core.Telemetry.counter_value (Core.Telemetry.counter "mcheck.explored"));
  Alcotest.(check int) "checks counter bumped" (checks + 1)
    (Core.Telemetry.counter_value (Core.Telemetry.counter "mcheck.checks"))

(* ------------------------------------------------------------------ *)
(* Barriers under the weak machine                                      *)

let test_barrier_drains_under_weak () =
  let open Gpusim.Kbuild in
  let k0 = kernel "t0" ~params:[] [ store (int 0) (int 1); barrier ] in
  let k1 = kernel "t1" ~params:[] [ barrier; load "r" (int 0) ] in
  let p =
    { M.threads = [ k0; k1 ]; args = [ []; [] ]; blocks = Some [| 0; 0 |];
      init = []; watch_mem = []; watch_regs = [ (1, "r") ] }
  in
  let r = M.check ~chip:k20 ~max_reorderings:4 p in
  (match r.M.verdict with
  | M.Proved_sc -> ()
  | M.Weak _ -> Alcotest.fail "barrier release must drain the block");
  Alcotest.(check int) "single final state" 1 (List.length r.M.reachable);
  List.iter
    (fun (s : Gpusim.Sc_ref.state) ->
      Alcotest.(check (list (triple int string int)))
        "load after barrier sees the store" [ (1, "r", 1) ] s.registers)
    (reachable_states r)

let test_barrier_divergence_rejected () =
  let p =
    let open Gpusim.Kbuild in
    { M.threads = [ kernel "t0" ~params:[] [ barrier ];
                    kernel "t1" ~params:[] [] ];
      args = [ []; [] ]; blocks = Some [| 0; 0 |]; init = [];
      watch_mem = []; watch_regs = [] }
  in
  (* The SC baseline runs first, so its rejection fires before the weak
     exploration's — either message proves the program was refused. *)
  Alcotest.(check bool) "divergence rejected" true
    (try
       ignore (M.check ~chip:k20 ~max_reorderings:1 p);
       false
     with Invalid_argument m ->
       m = "Mcheck: barrier divergence" || m = "Sc_ref: barrier divergence")

(* ------------------------------------------------------------------ *)
(* Differential property: checker vs SC oracle                          *)

(* Random straight-line two-thread programs over two partitions of the
   K20 (addresses {0,1} and {32,33}).  Encoded as per-thread lists of
   (op, operand) naturals so shrinking stays meaningful. *)
let decode_thread t ops =
  let n_loads = ref 0 in
  let body =
    List.map
      (fun (op, a) ->
        let sel = op mod 3 in
        let word = [| 0; 1; 32; 33 |].(a mod 4) in
        let v = (a mod 3) + 1 in
        let open Gpusim.Kbuild in
        match sel with
        | 0 -> store (int word) (int v)
        | 1 ->
          incr n_loads;
          load (Printf.sprintf "r%d" !n_loads) (int word)
        | _ -> atomic_add (int word) (int 1))
      ops
  in
  let regs = List.init !n_loads (fun i -> (t, Printf.sprintf "r%d" (i + 1))) in
  (Gpusim.Kbuild.kernel (Printf.sprintf "t%d" t) ~params:[] body, regs)

let fence_all (k : Gpusim.Kernel.t) =
  let k = Gpusim.Kernel.label k in
  let sites = Gpusim.Kernel.global_access_sites k in
  Gpusim.Kernel.insert_fences_after ~scope:Gpusim.Kernel.Device
    ~sites:(fun s -> List.mem s sites)
    k

let program_of ~fenced (ops0, ops1) =
  let k0, regs0 = decode_thread 0 ops0 in
  let k1, regs1 = decode_thread 1 ops1 in
  let threads = [ k0; k1 ] in
  let threads = if fenced then List.map fence_all threads else threads in
  { M.threads; args = [ []; [] ]; blocks = None; init = [];
    watch_mem = [ 0; 1; 32; 33 ]; watch_regs = regs0 @ regs1 }

let sc_oracle (p : M.program) =
  Gpusim.Sc_ref.run ?blocks:p.M.blocks ~threads:p.M.threads ~args:p.M.args
    ~init:p.M.init ~watch_mem:p.M.watch_mem ~watch_regs:p.M.watch_regs ()

let thread_gen =
  QCheck.(list_of_size Gen.(int_range 1 3) (pair small_nat small_nat))

let prop_fenced_equals_sc =
  QCheck.Test.make ~name:"fully fenced: checker set = SC oracle set" ~count:40
    QCheck.(pair thread_gen thread_gen)
  @@ fun ops ->
  let p = program_of ~fenced:true ops in
  let r = M.check ~chip:k20 ~max_reorderings:2 p in
  reachable_states r = sc_oracle p && r.M.verdict = M.Proved_sc

let prop_unfenced_superset_replayable =
  QCheck.Test.make
    ~name:"unfenced: checker ⊇ SC oracle, extras replay in Sim" ~count:40
    QCheck.(pair thread_gen thread_gen)
  @@ fun ops ->
  let p = program_of ~fenced:false ops in
  let r = M.check ~chip:k20 ~max_reorderings:2 p in
  let reach = reachable_states r in
  let sc = sc_oracle p in
  List.for_all (fun s -> List.mem s reach) sc
  && (match r.M.verdict with
     | M.Proved_sc -> List.length reach = List.length sc
     | M.Weak ws -> Core.Check.replay_witnesses ~chip:k20 p ws = [])

(* ------------------------------------------------------------------ *)
(* Sharding determinism and golden reports                              *)

let test_jobs_deterministic () =
  (* --jobs must never change the verdicts, the witness schedules or a
     single byte of either rendering. *)
  let run jobs =
    Core.Check.run_litmus ~chip:k20 ~max_reorderings:2 ~jobs
      ~distances:[ 31 ] ()
  in
  let serial = run 1 in
  let ascii = Core.Check.render_ascii serial in
  let json = Core.Json.to_string (Core.Check.render_json serial) in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check string)
        (Printf.sprintf "ascii, jobs %d" jobs)
        ascii
        (Core.Check.render_ascii r);
      Alcotest.(check string)
        (Printf.sprintf "json, jobs %d" jobs)
        json
        (Core.Json.to_string (Core.Check.render_json r)))
    [ 2; 4 ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let golden_run () = Core.Check.run_litmus ~chip:k20 ~max_reorderings:2 ()

let test_golden_ascii () =
  Alcotest.(check string) "golden/check-k20.txt"
    (read_file "golden/check-k20.txt")
    (Core.Check.render_ascii (golden_run ()))

let test_golden_json () =
  Alcotest.(check string) "golden/check-k20.json"
    (read_file "golden/check-k20.json")
    (Core.Json.to_string (Core.Check.render_json (golden_run ())) ^ "\n")

let test_all_witnesses_replay () =
  let run = golden_run () in
  List.iter
    (fun (cr : Core.Check.case_result) ->
      Alcotest.(check (list string))
        (Core.Check.case_name cr.case ^ " replays")
        [] cr.replay_failures)
    run.Core.Check.cases

(* ------------------------------------------------------------------ *)
(* Cross-validation against the stress campaigns                        *)

let stress_env ~loc =
  let strategy =
    Core.Stress.Fixed
      { sequence = [ Core.Access_seq.St; Core.Access_seq.Ld ];
        locations = [ loc ]; scratch_words = 256 }
  in
  Core.Environment.for_litmus (Core.Environment.make strategy ~randomise:false)

let test_cross_validation () =
  (* Campaigns on the Titan under a tuned-style stress environment: every
     observed outcome must be checker-reachable, and every observed weak
     outcome must carry a witness schedule.  SB at this configuration is
     known to exhibit weak behaviour, so the test cannot pass vacuously. *)
  let weak_seen = ref 0 in
  List.iter
    (fun idiom ->
      let inst = { Litmus.Test.idiom; distance = 64 } in
      let c =
        Core.Check.cross_validate ~chip:Gpusim.Chip.titan ~seed:21 ~runs:200
          ~env:(stress_env ~loc:192) ~max_reorderings:2 inst
      in
      let name = Litmus.Test.idiom_name idiom in
      Alcotest.(check (list (pair int int)))
        (name ^ ": no campaign outcome escapes the checker")
        [] c.Core.Check.unexplained;
      Alcotest.(check (list (pair int int)))
        (name ^ ": every observed weak outcome has a witness")
        [] c.Core.Check.unwitnessed;
      Alcotest.(check bool) (name ^ ": campaign observed something") true
        (c.Core.Check.observed <> []);
      weak_seen := !weak_seen + List.length c.Core.Check.weak_observed)
    Litmus.Test.idioms;
  Alcotest.(check bool) "at least one idiom exhibited weak behaviour" true
    (!weak_seen > 0)

let () =
  Alcotest.run "mcheck"
    [ ( "verdicts",
        [ Alcotest.test_case "fenced idioms proved SC" `Quick
            test_fenced_proved_sc;
          Alcotest.test_case "unfenced weak witnessed" `Quick
            test_unfenced_weak_witnessed;
          Alcotest.test_case "same partition proved SC" `Quick
            test_same_partition_proved_sc;
          Alcotest.test_case "k=0 collapses to SC" `Quick
            test_zero_bound_is_sc ] );
      ( "dpor",
        [ Alcotest.test_case "prunes and preserves" `Quick
            test_dpor_prunes_and_preserves;
          Alcotest.test_case "telemetry counters" `Quick
            test_telemetry_counters ] );
      ( "barriers",
        [ Alcotest.test_case "release drains the block" `Quick
            test_barrier_drains_under_weak;
          Alcotest.test_case "divergence rejected" `Quick
            test_barrier_divergence_rejected ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_fenced_equals_sc;
          QCheck_alcotest.to_alcotest prop_unfenced_superset_replayable ] );
      ( "reports",
        [ Alcotest.test_case "jobs 1/2/4 byte-identical" `Quick
            test_jobs_deterministic;
          Alcotest.test_case "golden ascii" `Quick test_golden_ascii;
          Alcotest.test_case "golden json" `Quick test_golden_json;
          Alcotest.test_case "all witnesses replay" `Quick
            test_all_witnesses_replay ] );
      ( "cross-validation",
        [ Alcotest.test_case "campaign outcomes have witnesses" `Slow
            test_cross_validation ] ) ]
