(* End-to-end properties of the weak machine, checked against the
   independent SC oracle:

   - a fully fenced program only exhibits sequentially consistent
     outcomes, whatever the chip and stress;
   - the MP/LB/SB weak outcomes observed by the machine are exactly the
     documented non-SC ones (no wild values). *)

type op = St of int * int | Ld of string * int

let addresses = [ 0; 40; 80 ]  (* distinct partitions for patch size 32 *)

let gen_thread =
  let open QCheck.Gen in
  let gen_op =
    int_range 0 2 >>= fun a ->
    let addr = List.nth addresses a in
    bool >>= fun is_store ->
    if is_store then map (fun v -> St (addr, 1 + v)) (int_range 0 2)
    else map (fun r -> Ld (Printf.sprintf "r%d" r, addr)) (int_range 0 2)
  in
  list_size (int_range 1 4) gen_op

let gen_program = QCheck.Gen.pair gen_thread gen_thread

let print_program (a, b) =
  let op = function
    | St (a, v) -> Printf.sprintf "st[%d]=%d" a v
    | Ld (r, a) -> Printf.sprintf "%s=ld[%d]" r a
  in
  Printf.sprintf "T0: %s | T1: %s"
    (String.concat "; " (List.map op a))
    (String.concat "; " (List.map op b))

(* Registers a thread defines, in order of first definition. *)
let regs_of ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Ld (r, _) -> if List.mem r acc then acc else acc @ [ r ]
      | St _ -> acc)
    [] ops

let out_base = 200

let body ~fenced ~out ops =
  let open Gpusim.Kbuild in
  let stmt = function
    | St (a, v) -> [ store (int a) (int v) ]
    | Ld (r, a) -> [ load r (int a) ]
  in
  let fence_after stmts = if fenced then stmts @ [ fence ] else stmts in
  List.concat_map (fun op -> fence_after (stmt op)) ops
  @ List.mapi (fun i r -> store (int (Stdlib.( + ) out i)) (reg r)) (regs_of ops)

(* Watched locations: the data addresses plus each thread's register dump. *)
let watched (a, b) =
  addresses
  @ List.mapi (fun i _ -> out_base + i) (regs_of a)
  @ List.mapi (fun i _ -> out_base + 20 + i) (regs_of b)

let sc_states (a, b) ~fenced =
  let mk name out ops =
    Gpusim.Kernel.label
      { Gpusim.Kernel.name; params = []; body = body ~fenced ~out ops }
  in
  Gpusim.Sc_ref.run
    ~threads:[ mk "t0" out_base a; mk "t1" (out_base + 20) b ]
    ~args:[ []; [] ] ~init:[] ~watch_mem:(watched (a, b)) ~watch_regs:[] ()

let weak_kernel (a, b) ~fenced =
  let out1 = out_base + 20 in
  let open Gpusim.Kbuild in
  kernel "generated" ~params:[]
    [ if_ (bid = int 0)
        (body ~fenced ~out:out_base a)
        (body ~fenced ~out:out1 b) ]

let observe_weak_machine (a, b) ~fenced ~chip ~seed =
  let sim = Gpusim.Sim.create ~words:1024 ~chip ~seed () in
  let r =
    Gpusim.Sim.launch sim ~grid:2 ~block:1 (weak_kernel (a, b) ~fenced)
      ~args:[]
  in
  match r.Gpusim.Sim.outcome with
  | Gpusim.Sim.Finished ->
    Some (List.map (fun addr -> (addr, Gpusim.Sim.read sim addr)) (watched (a, b)))
  | Gpusim.Sim.Timeout | Gpusim.Sim.Trapped _ -> None

let prop_fenced_is_sc chip =
  QCheck.Test.make
    ~name:(Printf.sprintf "fully fenced => SC outcomes (%s)" chip.Gpusim.Chip.name)
    ~count:60
    (QCheck.make ~print:print_program gen_program)
  @@ fun prog ->
  let sc =
    List.map (fun s -> List.sort compare s.Gpusim.Sc_ref.memory)
      (sc_states prog ~fenced:true)
  in
  let ok = ref true in
  for seed = 1 to 12 do
    match observe_weak_machine prog ~fenced:true ~chip ~seed with
    | None -> ()
    | Some mem ->
      if not (List.mem (List.sort compare mem) sc) then ok := false
  done;
  !ok

let prop_unfenced_final_stores_coherent =
  (* Even without fences, the final value of every address must be one of
     the values some thread stored to it (or its initial 0): the machine
     never invents values. *)
  QCheck.Test.make ~name:"no invented values" ~count:60
    (QCheck.make ~print:print_program gen_program)
  @@ fun ((a, b) as prog) ->
  let stored addr =
    0
    :: List.filter_map
         (function St (x, v) when x = addr -> Some v | St _ | Ld _ -> None)
         (a @ b)
  in
  let ok = ref true in
  for seed = 1 to 10 do
    match observe_weak_machine prog ~fenced:false ~chip:Gpusim.Chip.c2050 ~seed with
    | None -> ()
    | Some mem ->
      List.iter
        (fun (addr, v) ->
          if List.mem addr addresses && not (List.mem v (stored addr)) then
            ok := false)
        mem
  done;
  !ok

let test_unfenced_mp_stays_within_envelope () =
  (* Unfenced MP may show the weak outcome but never anything outside
     SC ∪ {weak}. *)
  let inst = { Litmus.Test.idiom = Litmus.Test.MP; distance = 64 } in
  let sc = Litmus.Test.sc_outcomes inst in
  for seed = 1 to 300 do
    let o = Litmus.Runner.run_once ~chip:Gpusim.Chip.titan ~seed inst in
    if not o.Litmus.Runner.timed_out then begin
      let pair = (o.Litmus.Runner.r1, o.Litmus.Runner.r2) in
      let allowed =
        List.mem pair sc || Litmus.Test.weak inst ~r1:o.Litmus.Runner.r1 ~r2:o.Litmus.Runner.r2
      in
      Alcotest.(check bool)
        (Printf.sprintf "outcome (%d,%d) within envelope" o.Litmus.Runner.r1
           o.Litmus.Runner.r2)
        true allowed
    end
  done

let test_deterministic_replay () =
  let prog = ([ St (0, 1); Ld ("r0", 40) ], [ St (40, 2); Ld ("r1", 0) ]) in
  let a = observe_weak_machine prog ~fenced:false ~chip:Gpusim.Chip.k20 ~seed:9 in
  let b = observe_weak_machine prog ~fenced:false ~chip:Gpusim.Chip.k20 ~seed:9 in
  Alcotest.(check bool) "same seed, same observation" true (a = b)

let () =
  Alcotest.run "weak-machine"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fenced_is_sc Gpusim.Chip.k20;
            prop_fenced_is_sc Gpusim.Chip.c2075;
            prop_fenced_is_sc Gpusim.Chip.gtx980;
            prop_unfenced_final_stores_coherent ] );
      ( "unit",
        [ Alcotest.test_case "MP outcome envelope" `Quick
            test_unfenced_mp_stays_within_envelope;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay ] ) ]
