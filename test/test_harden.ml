(* Empirical fence insertion (Alg. 1), first against a synthetic oracle
   with a known minimal fence set, then end-to-end on real applications. *)

(* A synthetic application whose behaviour depends only on which of its
   "fence sites" are enabled: it fails deterministically unless [needed]
   is a subset of the enabled fences.  This isolates the reduction logic
   from testing noise. *)
let oracle_app ~n_sites ~needed =
  let open Gpusim.Kbuild in
  (* One global access per site so fence_sites has the right arity. *)
  let k =
    kernel "oracle" ~params:[ "out" ]
      (List.init n_sites (fun i -> store (param "out" + int i) (int 1)))
  in
  let sites = Gpusim.Kernel.global_access_sites (Gpusim.Kernel.label k) in
  let site i = ("oracle", List.nth sites i) in
  let app =
    { Apps.App.name = "oracle";
      source = "synthetic"; communication = "n/a"; post_condition = "n/a";
      has_fences = false;
      kernels = [ k ];
      max_ticks = 1000;
      run =
        (fun _sim fencing ->
          match fencing with
          | Apps.App.Sites enabled ->
            if List.for_all (fun i -> List.mem (site i) enabled) needed then
              Ok ()
            else Error "missing required fence"
          | Apps.App.Conservative | Apps.App.Original | Apps.App.Stripped ->
            Ok ()) }
  in
  (app, site)

let quick_config chip =
  { (Core.Harden.default_config ~chip) with
    initial_iterations = 4;
    stability_runs = 8 }

let test_oracle_single_fence () =
  let app, site = oracle_app ~n_sites:8 ~needed:[ 5 ] in
  let r =
    Core.Harden.insert ~chip:Gpusim.Chip.k20
      ~config:(quick_config Gpusim.Chip.k20) ~app ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true r.Core.Harden.converged;
  Alcotest.(check (list (pair string int))) "exactly the needed fence"
    [ site 5 ] r.Core.Harden.fences

let test_oracle_two_fences () =
  let app, site = oracle_app ~n_sites:10 ~needed:[ 2; 7 ] in
  let r =
    Core.Harden.insert ~chip:Gpusim.Chip.k20
      ~config:(quick_config Gpusim.Chip.k20) ~app ~seed:1 ()
  in
  Alcotest.(check bool) "converged" true r.Core.Harden.converged;
  Alcotest.(check (list (pair string int))) "both needed fences"
    (List.sort compare [ site 2; site 7 ])
    (List.sort compare r.Core.Harden.fences)

let test_oracle_no_fence_needed () =
  let app, _ = oracle_app ~n_sites:6 ~needed:[] in
  let r =
    Core.Harden.insert ~chip:Gpusim.Chip.k20
      ~config:(quick_config Gpusim.Chip.k20) ~app ~seed:1 ()
  in
  Alcotest.(check int) "empty fence set" 0 (List.length r.Core.Harden.fences)

let test_oracle_all_needed () =
  (* Worst case for binary reduction: every fence needed. *)
  let app, _ = oracle_app ~n_sites:4 ~needed:[ 0; 1; 2; 3 ] in
  let r =
    Core.Harden.insert ~chip:Gpusim.Chip.k20
      ~config:(quick_config Gpusim.Chip.k20) ~app ~seed:1 ()
  in
  Alcotest.(check int) "keeps all four" 4 (List.length r.Core.Harden.fences)

let test_initial_set_size () =
  let app, _ = oracle_app ~n_sites:9 ~needed:[] in
  let r =
    Core.Harden.insert ~chip:Gpusim.Chip.k20
      ~config:(quick_config Gpusim.Chip.k20) ~app ~seed:1 ()
  in
  Alcotest.(check int) "initial = all access sites" 9 r.Core.Harden.initial

let test_check_application () =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let chip = Gpusim.Chip.k20 in
  let env = Core.Environment.sys_plus ~tuned:(Core.Tuning.shipped ~chip) in
  (* With every fence enabled, checks pass even under stress. *)
  Alcotest.(check bool) "conservative set passes" true
    (Core.Harden.check_application ~chip ~env ~app
       ~fences:(Apps.App.fence_sites app) ~iterations:10 ~seed:3 ());
  (* With no fences, 30 stressed runs essentially always catch the bug. *)
  Alcotest.(check bool) "empty set fails" false
    (Core.Harden.check_application ~chip ~env ~app ~fences:[] ~iterations:30
       ~seed:3 ())

let test_cbe_dot_converges_to_critical_store () =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let chip = Gpusim.Chip.k20 in
  let config =
    { (Core.Harden.default_config ~chip) with stability_runs = 60 }
  in
  let r = Core.Harden.insert ~chip ~config ~app ~seed:5 () in
  Alcotest.(check bool) "converged" true r.Core.Harden.converged;
  Alcotest.(check int) "a single fence suffices (Table 6)" 1
    (List.length r.Core.Harden.fences);
  (* The surviving fence follows the critical-section store to c: the same
     fence prior hand analysis prescribed (Sec. 5.2). *)
  let k =
    Apps.App.apply_fencing (Apps.App.Sites r.Core.Harden.fences)
      (List.hd app.Apps.App.kernels)
  in
  let s = Gpusim.Kernel_pp.to_string k in
  Alcotest.(check bool) "fence right after the store to c" true
    (Test_util.contains s "g[%c] = (old_c + cache0);\n    __threadfence();")

let test_hardened_app_is_stable () =
  let app = Option.get (Apps.Registry.by_name "cbe-ht") in
  let chip = Gpusim.Chip.k20 in
  let config =
    { (Core.Harden.default_config ~chip) with stability_runs = 60 }
  in
  let r = Core.Harden.insert ~chip ~config ~app ~seed:6 () in
  let env = Core.Environment.sys_plus ~tuned:(Core.Tuning.shipped ~chip) in
  Alcotest.(check bool) "hardened app passes a fresh stressed check" true
    (Core.Harden.check_application ~chip ~env ~app
       ~fences:r.Core.Harden.fences ~iterations:40 ~seed:123 ())

let () =
  Alcotest.run "harden"
    [ ( "oracle",
        [ Alcotest.test_case "single fence" `Quick test_oracle_single_fence;
          Alcotest.test_case "two fences" `Quick test_oracle_two_fences;
          Alcotest.test_case "no fence needed" `Quick
            test_oracle_no_fence_needed;
          Alcotest.test_case "all needed" `Quick test_oracle_all_needed;
          Alcotest.test_case "initial set" `Quick test_initial_set_size ] );
      ( "end-to-end",
        [ Alcotest.test_case "check_application" `Slow test_check_application;
          Alcotest.test_case "cbe-dot converges" `Slow
            test_cbe_dot_converges_to_critical_store;
          Alcotest.test_case "hardened app stable" `Slow
            test_hardened_app_is_stable ] ) ]
