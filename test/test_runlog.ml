(* The durable JSONL run ledger: parse/load round-trips, torn tails,
   fail-closed seed validation, and the headline guarantee that a
   killed-then-resumed campaign produces a byte-identical ledger and
   identical results for any kill point and any --jobs in {1, 2, 4}. *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let temp () = Filename.temp_file "runlog" ".jsonl"

let take n l = List.filteri (fun i _ -> i < n) l

let header ~campaign ~seed =
  { Core.Runlog.schema = Core.Runlog.schema_version;
    campaign; argv = []; seed; jobs = 0; grid = Core.Json.Null;
    git = None; created = 0.0; shard = None; merged = None }

let cache_of path =
  match Core.Runlog.load path with
  | Ok l -> Core.Runlog.cache_of_ledger l
  | Error e -> failwith e

(* Drivers zero their wall-clock result fields (Tuning/Harden elapsed_s)
   only under the deterministic-ledger env var, so the multi-phase resume
   tests flip it for their duration. *)
let with_deterministic_env f =
  Unix.putenv "GPUWMM_LEDGER_DETERMINISTIC" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GPUWMM_LEDGER_DETERMINISTIC" "0")
    f

(* ------------------------------------------------------------------ *)
(* A small fixed campaign: 2 environments x 2 apps on one chip.        *)

let chip = Gpusim.Chip.k20
let apps = List.filter_map Apps.Registry.by_name [ "cbe-dot"; "sdk-red" ]

let envs _chip =
  let tuned = Core.Tuning.shipped ~chip in
  [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
    Core.Environment.sys_plus ~tuned ]

let runs = 12
let cseed = 11

let run_campaign ?cache ~path ~jobs () =
  let sink =
    Core.Runlog.create ~deterministic:true ~path
      (header ~campaign:"test" ~seed:cseed)
  in
  let journal = Core.Runlog.journal ~sink ?cache "" in
  match
    Core.Campaign.run
      ~backend:(Core.Exec.backend_of_jobs jobs)
      ~journal ~chips:[ chip ] ~environments_for:envs ~apps ~runs ~seed:cseed
      ()
  with
  | rows ->
    Core.Runlog.append_result sink ~kind:"campaign"
      (Core.Campaign.rows_to_json rows);
    Core.Runlog.close sink;
    rows
  | exception e ->
    Core.Runlog.abort sink;
    raise e

(* The uninterrupted reference ledger, computed once. *)
let full =
  lazy
    (let path = temp () in
     let rows = run_campaign ~path ~jobs:1 () in
     let text = read_all path in
     Sys.remove path;
     (text, rows))

(* Ledger lines: header, one per job, result, footer, trailing "". *)
let job_count text = List.length (String.split_on_char '\n' text) - 4

(* ------------------------------------------------------------------ *)
(* Load round-trip                                                     *)

let test_load_roundtrip () =
  let full_text, full_rows = Lazy.force full in
  match Core.Runlog.parse full_text with
  | Error e -> Alcotest.fail e
  | Ok l ->
    let h = l.Core.Runlog.header in
    Alcotest.(check int) "schema" Core.Runlog.schema_version
      h.Core.Runlog.schema;
    Alcotest.(check string) "campaign" "test" h.Core.Runlog.campaign;
    Alcotest.(check int) "seed" cseed h.Core.Runlog.seed;
    Alcotest.(check int) "one record per job" 4
      (List.length l.Core.Runlog.jobs);
    Alcotest.(check bool) "not torn" false l.Core.Runlog.torn;
    (match l.Core.Runlog.footer with
    | None -> Alcotest.fail "footer missing"
    | Some f ->
      Alcotest.(check int) "footer job total" 4 f.Core.Runlog.total_jobs;
      Alcotest.(check int) "footer error total"
        (List.fold_left
           (fun acc (j : Core.Runlog.job) -> acc + j.Core.Runlog.errors)
           0 l.Core.Runlog.jobs)
        f.Core.Runlog.total_errors);
    (match l.Core.Runlog.result with
    | Some ("campaign", data) -> (
      match Core.Campaign.rows_of_json data with
      | Error e -> Alcotest.fail e
      | Ok rows ->
        Alcotest.(check bool) "result record round-trips the rows" true
          (rows = full_rows);
        (* report --from must reproduce the live driver's Table 5
           character for character. *)
        Alcotest.(check string) "table5 from ledger = table5 live"
          (Fmt.str "%a" Core.Report.table5 full_rows)
          (Fmt.str "%a" Core.Report.table5 rows))
    | Some (k, _) -> Alcotest.failf "unexpected result kind %S" k
    | None -> Alcotest.fail "result record missing")

let test_torn_tail_tolerated () =
  let full_text, _ = Lazy.force full in
  let ls = String.split_on_char '\n' full_text in
  let text =
    String.concat "\n" (take 3 ls) ^ "\n{\"rec\":\"job\",\"phase\""
  in
  match Core.Runlog.parse text with
  | Error e -> Alcotest.fail e
  | Ok l ->
    Alcotest.(check bool) "flagged torn" true l.Core.Runlog.torn;
    Alcotest.(check int) "intact records kept" 2
      (List.length l.Core.Runlog.jobs)

let test_malformed_middle_rejected () =
  let full_text, _ = Lazy.force full in
  let ls = String.split_on_char '\n' full_text in
  let text =
    String.concat "\n"
      (List.mapi (fun i l -> if i = 1 then "not json" else l) ls)
  in
  match Core.Runlog.parse text with
  | Error e ->
    Alcotest.(check bool) "error names the line" true
      (Test_util.contains e "line")
  | Ok _ -> Alcotest.fail "corrupt middle line must not parse"

let test_seed_mismatch_fails_closed () =
  let full_text, _ = Lazy.force full in
  let path = temp () in
  write_all path full_text;
  let cache = cache_of path in
  Sys.remove path;
  let out = temp () in
  let raised =
    let sink =
      Core.Runlog.create ~deterministic:true ~path:out
        (header ~campaign:"test" ~seed:(cseed + 1))
    in
    let journal = Core.Runlog.journal ~sink ~cache "" in
    match
      Core.Campaign.run ~journal ~chips:[ chip ] ~environments_for:envs
        ~apps ~runs ~seed:(cseed + 1) ()
    with
    | _ ->
      Core.Runlog.close sink;
      false
    | exception Failure _ ->
      Core.Runlog.abort sink;
      true
  in
  Sys.remove out;
  Alcotest.(check bool) "resume at a different seed raises" true raised

(* ------------------------------------------------------------------ *)
(* Supervision records: attempts, quarantined jobs, and the guarantee
   that fault-free ledgers stay byte-identical (every new field is
   serialised conditionally).                                          *)

let test_failed_record_roundtrip () =
  let path = temp () in
  let sink =
    Core.Runlog.create ~deterministic:true ~path
      (header ~campaign:"test" ~seed:1)
  in
  let jn = Core.Runlog.journal ~sink "" in
  Core.Runlog.record jn ~index:0 ~seed:100 ~errors:0 ~duration_s:0.0
    (Core.Json.Int 1);
  Core.Runlog.record jn ~attempts:3 ~index:1 ~seed:101 ~errors:2
    ~duration_s:0.0 (Core.Json.Int 2);
  Core.Runlog.record_failure jn ~index:2 ~seed:102 ~attempts:2
    ~duration_s:0.0 "boom";
  Core.Runlog.close sink;
  let text = read_all path in
  (match String.split_on_char '\n' text with
  | _header :: j0 :: _j1 :: _j2 :: footer :: _ ->
    (* Byte-stability: a fault-free job record carries neither of the new
       fields, while a degraded footer counts its quarantined jobs. *)
    Alcotest.(check bool) "attempts=1 is not serialised" false
      (Test_util.contains j0 "attempts");
    Alcotest.(check bool) "healthy jobs carry no failed field" false
      (Test_util.contains j0 "failed");
    Alcotest.(check bool) "degraded footer counts quarantines" true
      (Test_util.contains footer "quarantined")
  | _ -> Alcotest.fail "unexpected ledger shape");
  (match Core.Runlog.parse text with
  | Error e -> Alcotest.fail e
  | Ok l -> (
    match l.Core.Runlog.jobs with
    | [ j0; j1; j2 ] ->
      Alcotest.(check int) "default attempts" 1 j0.Core.Runlog.attempts;
      Alcotest.(check bool) "healthy job has no failure" true
        (j0.Core.Runlog.failed = None);
      Alcotest.(check int) "retried attempts round-trip" 3
        j1.Core.Runlog.attempts;
      Alcotest.(check bool) "quarantine reason round-trips" true
        (j2.Core.Runlog.failed = Some "boom");
      Alcotest.(check bool) "quarantined record carries no result" true
        (j2.Core.Runlog.result = Core.Json.Null);
      (match l.Core.Runlog.footer with
      | Some f ->
        Alcotest.(check int) "footer counts the quarantine" 1
          f.Core.Runlog.quarantined
      | None -> Alcotest.fail "footer missing");
      (* Recovery path: the failed record satisfies plan order but must
         not be replayed as a cached result. *)
      let cache = Core.Runlog.cache_of_ledger l in
      let jc = Core.Runlog.journal ~cache ~origin:path "" in
      Alcotest.(check bool) "failed record is not resumable" true
        (Core.Runlog.cached_value jc ~codec:Core.Runlog.int_codec ~index:2
           ~seed:102
        = None);
      Alcotest.(check bool) "healthy record is resumable" true
        (match
           Core.Runlog.cached_value jc ~codec:Core.Runlog.int_codec ~index:1
             ~seed:101
         with
        | Some (2, j) -> j.Core.Runlog.attempts = 3
        | _ -> false)
    | js -> Alcotest.failf "expected 3 job records, got %d" (List.length js)));
  Sys.remove path

let test_clean_footer_has_no_quarantined_field () =
  let path = temp () in
  let sink =
    Core.Runlog.create ~deterministic:true ~path
      (header ~campaign:"test" ~seed:1)
  in
  let jn = Core.Runlog.journal ~sink "" in
  Core.Runlog.record jn ~index:0 ~seed:100 ~errors:0 ~duration_s:0.0
    (Core.Json.Int 1);
  Core.Runlog.close sink;
  let text = read_all path in
  Sys.remove path;
  Alcotest.(check bool)
    "a clean ledger never mentions quarantine (byte-stability)" false
    (Test_util.contains text "quarantined")

let test_cached_mismatch_names_origin () =
  let path = temp () in
  let sink =
    Core.Runlog.create ~deterministic:true ~path
      (header ~campaign:"test" ~seed:1)
  in
  let jn = Core.Runlog.journal ~sink "" in
  Core.Runlog.record jn ~index:0 ~seed:100 ~errors:0 ~duration_s:0.0
    (Core.Json.Int 1);
  Core.Runlog.close sink;
  let cache = cache_of path in
  Sys.remove path;
  let jc = Core.Runlog.journal ~cache ~origin:"old.jsonl" "" in
  match
    Core.Runlog.cached_value jc ~codec:Core.Runlog.int_codec ~index:0
      ~seed:999
  with
  | _ -> Alcotest.fail "a seed mismatch must raise"
  | exception Failure msg ->
    Alcotest.(check string) "the message names the ledger and both seeds"
      "old.jsonl: cached job /0 seed mismatch: the ledger records seed \
       100, this invocation plans seed 999 — refusing to resume a \
       different campaign"
      msg

let test_validate_resume_wording () =
  let path = temp () in
  let sink =
    Core.Runlog.create ~deterministic:true ~path
      (header ~campaign:"test" ~seed:11)
  in
  let jn = Core.Runlog.journal ~sink "" in
  Core.Runlog.record jn ~index:0 ~seed:100 ~errors:0 ~duration_s:0.0
    (Core.Json.Int 1);
  Core.Runlog.close sink;
  let l =
    match Core.Runlog.load path with Ok l -> l | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  let validate = Core.Runlog.validate_resume l ~path:"led.jsonl" in
  Alcotest.(check bool) "a matching invocation validates" true
    (validate ~campaign:"test" ~seed:11 ~grid:Core.Json.Null = Ok ());
  let err = function Error e -> e | Ok () -> Alcotest.fail "must not validate" in
  Alcotest.(check string) "campaign mismatch names both kinds"
    "led.jsonl: campaign kind mismatch: the ledger records a \"test\" \
     campaign, this invocation is \"tune\""
    (err (validate ~campaign:"tune" ~seed:11 ~grid:Core.Json.Null));
  Alcotest.(check string) "seed mismatch names both seeds"
    "led.jsonl: seed mismatch: the ledger was run with --seed 11, this \
     invocation uses --seed 12"
    (err (validate ~campaign:"test" ~seed:12 ~grid:Core.Json.Null));
  let grid = Core.Json.Assoc [ ("runs", Core.Json.Int 8) ] in
  Alcotest.(check string) "grid mismatch renders both grids"
    (Printf.sprintf
       "led.jsonl: parameter grid mismatch: the ledger records %s, this \
        invocation plans %s"
       (Core.Json.to_string Core.Json.Null)
       (Core.Json.to_string grid))
    (err (validate ~campaign:"test" ~seed:11 ~grid))

(* ------------------------------------------------------------------ *)
(* Kill/resume byte-identity                                           *)

let resume_prop =
  QCheck.Test.make
    ~name:"campaign kill/resume is byte-identical (any kill point, jobs)"
    ~count:12
    QCheck.(pair small_nat (int_range 0 2))
    (fun (kraw, jidx) ->
      let full_text, full_rows = Lazy.force full in
      let ls = String.split_on_char '\n' full_text in
      let njobs = job_count full_text in
      let k = kraw mod (njobs + 1) in
      let jobs = [| 1; 2; 4 |].(jidx) in
      let path = temp () in
      (* the ledger a kill at job k leaves behind: header + k records *)
      write_all path (String.concat "\n" (take (1 + k) ls) ^ "\n");
      let cache = cache_of path in
      let rows = run_campaign ~cache ~path ~jobs () in
      let text = read_all path in
      Sys.remove path;
      Core.Runlog.cache_size cache = k
      && rows = full_rows && text = full_text)

(* ------------------------------------------------------------------ *)
(* Multi-phase resume: tuning (patch -> seq -> spread) and hardening's
   sequential memoised check stream.                                   *)

let test_tuning_resume () =
  with_deterministic_env @@ fun () ->
  let tseed = 5 in
  let budget = Core.Budget.quick in
  let run_tuning ?cache ~path ~jobs () =
    let sink =
      Core.Runlog.create ~path (header ~campaign:"tune" ~seed:tseed)
    in
    let journal = Core.Runlog.journal ~sink ?cache "" in
    match
      Core.Tuning.run
        ~backend:(Core.Exec.backend_of_jobs jobs)
        ~journal ~chip ~seed:tseed ~budget ()
    with
    | r ->
      Core.Runlog.append_result sink ~kind:"tuning"
        (Core.Tuning.result_to_json r);
      Core.Runlog.close sink;
      r
    | exception e ->
      Core.Runlog.abort sink;
      raise e
  in
  let path = temp () in
  let r_full = run_tuning ~path ~jobs:2 () in
  let full_text = read_all path in
  let ls = String.split_on_char '\n' full_text in
  let total = job_count full_text in
  List.iter
    (fun quarter ->
      let k = total * quarter / 4 in
      write_all path (String.concat "\n" (take (1 + k) ls) ^ "\n");
      let cache = cache_of path in
      let r = run_tuning ~cache ~path ~jobs:1 () in
      Alcotest.(check bool)
        (Printf.sprintf "resume at %d/%d job(s): same result" k total)
        true (r = r_full);
      Alcotest.(check bool)
        (Printf.sprintf "resume at %d/%d job(s): same bytes" k total)
        true
        (read_all path = full_text))
    [ 1; 2; 3 ];
  Sys.remove path

let test_harden_memo_resume () =
  with_deterministic_env @@ fun () ->
  let hseed = 3 in
  let app = List.hd Apps.Registry.fence_free in
  let config =
    { (Core.Harden.default_config ~chip) with
      initial_iterations = 4;
      stability_runs = 8 }
  in
  let run_h ?cache ~path () =
    let sink =
      Core.Runlog.create ~path (header ~campaign:"harden" ~seed:hseed)
    in
    let journal = Core.Runlog.journal ~sink ?cache "" in
    match Core.Harden.insert ~chip ~config ~journal ~app ~seed:hseed () with
    | r ->
      Core.Runlog.append_result sink ~kind:"harden"
        (Core.Harden.results_to_json [ r ]);
      Core.Runlog.close sink;
      r
    | exception e ->
      Core.Runlog.abort sink;
      raise e
  in
  let path = temp () in
  let r_full = run_h ~path () in
  let full_text = read_all path in
  let ls = String.split_on_char '\n' full_text in
  let total = job_count full_text in
  Alcotest.(check bool) "hardening journals its checks" true (total > 0);
  let k = total / 2 in
  write_all path (String.concat "\n" (take (1 + k) ls) ^ "\n");
  let cache = cache_of path in
  let r = run_h ~cache ~path () in
  Alcotest.(check bool) "resumed hardening: same result" true (r = r_full);
  Alcotest.(check bool) "resumed hardening: same bytes" true
    (read_all path = full_text);
  Sys.remove path

let () =
  Alcotest.run "runlog"
    [ ( "ledger",
        [ Alcotest.test_case "load round-trip, report identity" `Slow
            test_load_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Slow
            test_torn_tail_tolerated;
          Alcotest.test_case "malformed middle rejected" `Slow
            test_malformed_middle_rejected;
          Alcotest.test_case "seed mismatch fails closed" `Slow
            test_seed_mismatch_fails_closed;
          Alcotest.test_case "failed record round-trip" `Quick
            test_failed_record_roundtrip;
          Alcotest.test_case "clean footer byte-stable" `Quick
            test_clean_footer_has_no_quarantined_field;
          Alcotest.test_case "cached mismatch names origin" `Quick
            test_cached_mismatch_names_origin;
          Alcotest.test_case "validate_resume wording" `Quick
            test_validate_resume_wording ] );
      ( "resume",
        [ QCheck_alcotest.to_alcotest resume_prop;
          Alcotest.test_case "tuning resumes across phases" `Slow
            test_tuning_resume;
          Alcotest.test_case "hardening resumes its memoised checks" `Slow
            test_harden_memo_resume ] ) ]
