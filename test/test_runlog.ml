(* The durable JSONL run ledger: parse/load round-trips, torn tails,
   fail-closed seed validation, and the headline guarantee that a
   killed-then-resumed campaign produces a byte-identical ledger and
   identical results for any kill point and any --jobs in {1, 2, 4}. *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let temp () = Filename.temp_file "runlog" ".jsonl"

let take n l = List.filteri (fun i _ -> i < n) l

let header ~campaign ~seed =
  { Core.Runlog.schema = Core.Runlog.schema_version;
    campaign; argv = []; seed; jobs = 0; grid = Core.Json.Null;
    git = None; created = 0.0 }

let cache_of path =
  match Core.Runlog.load path with
  | Ok l -> Core.Runlog.cache_of_ledger l
  | Error e -> failwith e

(* Drivers zero their wall-clock result fields (Tuning/Harden elapsed_s)
   only under the deterministic-ledger env var, so the multi-phase resume
   tests flip it for their duration. *)
let with_deterministic_env f =
  Unix.putenv "GPUWMM_LEDGER_DETERMINISTIC" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GPUWMM_LEDGER_DETERMINISTIC" "0")
    f

(* ------------------------------------------------------------------ *)
(* A small fixed campaign: 2 environments x 2 apps on one chip.        *)

let chip = Gpusim.Chip.k20
let apps = List.filter_map Apps.Registry.by_name [ "cbe-dot"; "sdk-red" ]

let envs _chip =
  let tuned = Core.Tuning.shipped ~chip in
  [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
    Core.Environment.sys_plus ~tuned ]

let runs = 12
let cseed = 11

let run_campaign ?cache ~path ~jobs () =
  let sink =
    Core.Runlog.create ~deterministic:true ~path
      (header ~campaign:"test" ~seed:cseed)
  in
  let journal = Core.Runlog.journal ~sink ?cache "" in
  match
    Core.Campaign.run
      ~backend:(Core.Exec.backend_of_jobs jobs)
      ~journal ~chips:[ chip ] ~environments_for:envs ~apps ~runs ~seed:cseed
      ()
  with
  | rows ->
    Core.Runlog.append_result sink ~kind:"campaign"
      (Core.Campaign.rows_to_json rows);
    Core.Runlog.close sink;
    rows
  | exception e ->
    Core.Runlog.abort sink;
    raise e

(* The uninterrupted reference ledger, computed once. *)
let full =
  lazy
    (let path = temp () in
     let rows = run_campaign ~path ~jobs:1 () in
     let text = read_all path in
     Sys.remove path;
     (text, rows))

(* Ledger lines: header, one per job, result, footer, trailing "". *)
let job_count text = List.length (String.split_on_char '\n' text) - 4

(* ------------------------------------------------------------------ *)
(* Load round-trip                                                     *)

let test_load_roundtrip () =
  let full_text, full_rows = Lazy.force full in
  match Core.Runlog.parse full_text with
  | Error e -> Alcotest.fail e
  | Ok l ->
    let h = l.Core.Runlog.header in
    Alcotest.(check int) "schema" Core.Runlog.schema_version
      h.Core.Runlog.schema;
    Alcotest.(check string) "campaign" "test" h.Core.Runlog.campaign;
    Alcotest.(check int) "seed" cseed h.Core.Runlog.seed;
    Alcotest.(check int) "one record per job" 4
      (List.length l.Core.Runlog.jobs);
    Alcotest.(check bool) "not torn" false l.Core.Runlog.torn;
    (match l.Core.Runlog.footer with
    | None -> Alcotest.fail "footer missing"
    | Some f ->
      Alcotest.(check int) "footer job total" 4 f.Core.Runlog.total_jobs;
      Alcotest.(check int) "footer error total"
        (List.fold_left
           (fun acc (j : Core.Runlog.job) -> acc + j.Core.Runlog.errors)
           0 l.Core.Runlog.jobs)
        f.Core.Runlog.total_errors);
    (match l.Core.Runlog.result with
    | Some ("campaign", data) -> (
      match Core.Campaign.rows_of_json data with
      | Error e -> Alcotest.fail e
      | Ok rows ->
        Alcotest.(check bool) "result record round-trips the rows" true
          (rows = full_rows);
        (* report --from must reproduce the live driver's Table 5
           character for character. *)
        Alcotest.(check string) "table5 from ledger = table5 live"
          (Fmt.str "%a" Core.Report.table5 full_rows)
          (Fmt.str "%a" Core.Report.table5 rows))
    | Some (k, _) -> Alcotest.failf "unexpected result kind %S" k
    | None -> Alcotest.fail "result record missing")

let test_torn_tail_tolerated () =
  let full_text, _ = Lazy.force full in
  let ls = String.split_on_char '\n' full_text in
  let text =
    String.concat "\n" (take 3 ls) ^ "\n{\"rec\":\"job\",\"phase\""
  in
  match Core.Runlog.parse text with
  | Error e -> Alcotest.fail e
  | Ok l ->
    Alcotest.(check bool) "flagged torn" true l.Core.Runlog.torn;
    Alcotest.(check int) "intact records kept" 2
      (List.length l.Core.Runlog.jobs)

let test_malformed_middle_rejected () =
  let full_text, _ = Lazy.force full in
  let ls = String.split_on_char '\n' full_text in
  let text =
    String.concat "\n"
      (List.mapi (fun i l -> if i = 1 then "not json" else l) ls)
  in
  match Core.Runlog.parse text with
  | Error e ->
    Alcotest.(check bool) "error names the line" true
      (Test_util.contains e "line")
  | Ok _ -> Alcotest.fail "corrupt middle line must not parse"

let test_seed_mismatch_fails_closed () =
  let full_text, _ = Lazy.force full in
  let path = temp () in
  write_all path full_text;
  let cache = cache_of path in
  Sys.remove path;
  let out = temp () in
  let raised =
    let sink =
      Core.Runlog.create ~deterministic:true ~path:out
        (header ~campaign:"test" ~seed:(cseed + 1))
    in
    let journal = Core.Runlog.journal ~sink ~cache "" in
    match
      Core.Campaign.run ~journal ~chips:[ chip ] ~environments_for:envs
        ~apps ~runs ~seed:(cseed + 1) ()
    with
    | _ ->
      Core.Runlog.close sink;
      false
    | exception Failure _ ->
      Core.Runlog.abort sink;
      true
  in
  Sys.remove out;
  Alcotest.(check bool) "resume at a different seed raises" true raised

(* ------------------------------------------------------------------ *)
(* Kill/resume byte-identity                                           *)

let resume_prop =
  QCheck.Test.make
    ~name:"campaign kill/resume is byte-identical (any kill point, jobs)"
    ~count:12
    QCheck.(pair small_nat (int_range 0 2))
    (fun (kraw, jidx) ->
      let full_text, full_rows = Lazy.force full in
      let ls = String.split_on_char '\n' full_text in
      let njobs = job_count full_text in
      let k = kraw mod (njobs + 1) in
      let jobs = [| 1; 2; 4 |].(jidx) in
      let path = temp () in
      (* the ledger a kill at job k leaves behind: header + k records *)
      write_all path (String.concat "\n" (take (1 + k) ls) ^ "\n");
      let cache = cache_of path in
      let rows = run_campaign ~cache ~path ~jobs () in
      let text = read_all path in
      Sys.remove path;
      Core.Runlog.cache_size cache = k
      && rows = full_rows && text = full_text)

(* ------------------------------------------------------------------ *)
(* Multi-phase resume: tuning (patch -> seq -> spread) and hardening's
   sequential memoised check stream.                                   *)

let test_tuning_resume () =
  with_deterministic_env @@ fun () ->
  let tseed = 5 in
  let budget = Core.Budget.quick in
  let run_tuning ?cache ~path ~jobs () =
    let sink =
      Core.Runlog.create ~path (header ~campaign:"tune" ~seed:tseed)
    in
    let journal = Core.Runlog.journal ~sink ?cache "" in
    match
      Core.Tuning.run
        ~backend:(Core.Exec.backend_of_jobs jobs)
        ~journal ~chip ~seed:tseed ~budget ()
    with
    | r ->
      Core.Runlog.append_result sink ~kind:"tuning"
        (Core.Tuning.result_to_json r);
      Core.Runlog.close sink;
      r
    | exception e ->
      Core.Runlog.abort sink;
      raise e
  in
  let path = temp () in
  let r_full = run_tuning ~path ~jobs:2 () in
  let full_text = read_all path in
  let ls = String.split_on_char '\n' full_text in
  let total = job_count full_text in
  List.iter
    (fun quarter ->
      let k = total * quarter / 4 in
      write_all path (String.concat "\n" (take (1 + k) ls) ^ "\n");
      let cache = cache_of path in
      let r = run_tuning ~cache ~path ~jobs:1 () in
      Alcotest.(check bool)
        (Printf.sprintf "resume at %d/%d job(s): same result" k total)
        true (r = r_full);
      Alcotest.(check bool)
        (Printf.sprintf "resume at %d/%d job(s): same bytes" k total)
        true
        (read_all path = full_text))
    [ 1; 2; 3 ];
  Sys.remove path

let test_harden_memo_resume () =
  with_deterministic_env @@ fun () ->
  let hseed = 3 in
  let app = List.hd Apps.Registry.fence_free in
  let config =
    { (Core.Harden.default_config ~chip) with
      initial_iterations = 4;
      stability_runs = 8 }
  in
  let run_h ?cache ~path () =
    let sink =
      Core.Runlog.create ~path (header ~campaign:"harden" ~seed:hseed)
    in
    let journal = Core.Runlog.journal ~sink ?cache "" in
    match Core.Harden.insert ~chip ~config ~journal ~app ~seed:hseed () with
    | r ->
      Core.Runlog.append_result sink ~kind:"harden"
        (Core.Harden.results_to_json [ r ]);
      Core.Runlog.close sink;
      r
    | exception e ->
      Core.Runlog.abort sink;
      raise e
  in
  let path = temp () in
  let r_full = run_h ~path () in
  let full_text = read_all path in
  let ls = String.split_on_char '\n' full_text in
  let total = job_count full_text in
  Alcotest.(check bool) "hardening journals its checks" true (total > 0);
  let k = total / 2 in
  write_all path (String.concat "\n" (take (1 + k) ls) ^ "\n");
  let cache = cache_of path in
  let r = run_h ~cache ~path () in
  Alcotest.(check bool) "resumed hardening: same result" true (r = r_full);
  Alcotest.(check bool) "resumed hardening: same bytes" true
    (read_all path = full_text);
  Sys.remove path

let () =
  Alcotest.run "runlog"
    [ ( "ledger",
        [ Alcotest.test_case "load round-trip, report identity" `Slow
            test_load_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Slow
            test_torn_tail_tolerated;
          Alcotest.test_case "malformed middle rejected" `Slow
            test_malformed_middle_rejected;
          Alcotest.test_case "seed mismatch fails closed" `Slow
            test_seed_mismatch_fails_closed ] );
      ( "resume",
        [ QCheck_alcotest.to_alcotest resume_prop;
          Alcotest.test_case "tuning resumes across phases" `Slow
            test_tuning_resume;
          Alcotest.test_case "hardening resumes its memoised checks" `Slow
            test_harden_memo_resume ] ) ]
