(* Deterministic fault plans (Core.Fault) and simulator-level soft
   errors (gpuFI-style store-commit bit flips): purity of the fault
   function, the predict/at consistency contract the chaos driver's
   invariant checks rest on, and the guarantee that armed soft errors
   flip stored values without perturbing the simulated schedule. *)

let all_kinds =
  [ Core.Fault.Raise; Core.Fault.Hang; Core.Fault.Corrupt;
    Core.Fault.Ledger_fail ]

let fatal = function
  | Core.Fault.Raise | Core.Fault.Hang | Core.Fault.Ledger_fail -> true
  | Core.Fault.Corrupt -> false

let matrix p ~indices ~attempts =
  List.concat_map
    (fun index ->
      List.map
        (fun attempt -> Core.Fault.at p ~index ~attempt)
        (List.init attempts Fun.id))
    (List.init indices Fun.id)

let test_at_is_pure () =
  let p =
    Core.Fault.plan ~rate:0.5 ~kinds:all_kinds ~faulty_attempts:3 ~seed:42 ()
  in
  let a = matrix p ~indices:50 ~attempts:5 in
  let b = matrix p ~indices:50 ~attempts:5 in
  Alcotest.(check bool) "two evaluations agree" true (a = b);
  Alcotest.(check bool) "some attempts fault" true
    (List.exists Option.is_some a);
  Alcotest.(check bool) "some attempts run clean" true
    (List.exists Option.is_none a);
  List.iter
    (function
      | None -> ()
      | Some k ->
        Alcotest.(check bool) "drawn kind is in the plan" true
          (List.mem k all_kinds))
    a

let test_rate_edges () =
  let zero = Core.Fault.plan ~rate:0.0 ~faulty_attempts:5 ~seed:1 () in
  Alcotest.(check bool) "rate 0 never faults" true
    (List.for_all Option.is_none (matrix zero ~indices:30 ~attempts:5));
  let one =
    Core.Fault.plan ~rate:1.0 ~kinds:[ Core.Fault.Raise ] ~faulty_attempts:2
      ~seed:1 ()
  in
  List.iter
    (fun index ->
      Alcotest.(check bool) "rate 1 faults every eligible attempt" true
        (Core.Fault.at one ~index ~attempt:0 = Some Core.Fault.Raise
        && Core.Fault.at one ~index ~attempt:1 = Some Core.Fault.Raise);
      Alcotest.(check bool) "attempts past faulty_attempts run clean" true
        (Core.Fault.at one ~index ~attempt:2 = None
        && Core.Fault.at one ~index ~attempt:7 = None))
    (List.init 10 Fun.id)

let test_kinds_restricted () =
  let p =
    Core.Fault.plan ~rate:1.0 ~kinds:[ Core.Fault.Corrupt ]
      ~faulty_attempts:4 ~seed:8 ()
  in
  Alcotest.(check bool) "a one-kind plan only draws that kind" true
    (List.for_all
       (fun f -> f = Some Core.Fault.Corrupt)
       (matrix p ~indices:20 ~attempts:4))

let test_plan_validation () =
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty kinds rejected" true
    (invalid (fun () -> Core.Fault.plan ~kinds:[] ~seed:1 ()));
  Alcotest.(check bool) "negative rate rejected" true
    (invalid (fun () -> Core.Fault.plan ~rate:(-0.1) ~seed:1 ()));
  Alcotest.(check bool) "rate above one rejected" true
    (invalid (fun () -> Core.Fault.plan ~rate:1.5 ~seed:1 ()));
  Alcotest.(check bool) "soft error rate above one rejected" true
    (invalid (fun () -> Core.Fault.plan ~soft_error_rate:2.0 ~seed:1 ()));
  Alcotest.(check bool) "negative faulty_attempts rejected" true
    (invalid (fun () -> Core.Fault.plan ~faulty_attempts:(-1) ~seed:1 ()))

(* The contract the chaos driver's invariant checks rest on: a
   prediction must be exactly what replaying [at] over the attempt
   budget implies.  Checked semantically (what each outcome asserts
   about the per-attempt faults), not by re-implementing [predict]. *)
let check_prediction p ~retries ~index =
  let pr = Core.Fault.predict p ~retries ~index in
  let name what =
    Printf.sprintf "plan seed %d, retries %d, job %d: %s" p.Core.Fault.seed
      retries index what
  in
  Alcotest.(check bool)
    (name "attempts within budget")
    true
    (pr.Core.Fault.attempts >= 1 && pr.Core.Fault.attempts <= retries + 1);
  let at a = Core.Fault.at p ~index ~attempt:a in
  (* Every attempt before the deciding one must have faulted fatally,
     or there would have been an earlier success. *)
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (name (Printf.sprintf "attempt %d faulted fatally" a))
        true
        (match at a with Some k -> fatal k | None -> false))
    (List.init
       (match pr.Core.Fault.outcome with
       | `Quarantined -> retries + 1
       | _ -> pr.Core.Fault.attempts - 1)
       Fun.id);
  match pr.Core.Fault.outcome with
  | `Clean ->
    Alcotest.(check bool) (name "deciding attempt is fault-free") true
      (at (pr.Core.Fault.attempts - 1) = None)
  | `Corrupted ->
    Alcotest.(check bool) (name "deciding attempt carries Corrupt") true
      (at (pr.Core.Fault.attempts - 1) = Some Core.Fault.Corrupt)
  | `Quarantined ->
    Alcotest.(check int) (name "quarantine consumed the whole budget")
      (retries + 1) pr.Core.Fault.attempts

let test_predict_matches_at () =
  List.iter
    (fun (seed, rate, kinds, faulty_attempts) ->
      let p = Core.Fault.plan ~rate ~kinds ~faulty_attempts ~seed () in
      List.iter
        (fun retries ->
          List.iter
            (fun index -> check_prediction p ~retries ~index)
            (List.init 30 Fun.id))
        [ 0; 1; 2; 3 ])
    [ (5, 0.5, all_kinds, 2);
      (7, 0.9, [ Core.Fault.Raise ], 4);
      (11, 0.3, [ Core.Fault.Corrupt; Core.Fault.Ledger_fail ], 1);
      (13, 1.0, [ Core.Fault.Hang ], 2) ]

let test_parse_kinds () =
  Alcotest.(check bool) "the four canonical names parse" true
    (Core.Fault.parse_kinds "raise,hang,corrupt,ledger" = Ok all_kinds);
  Alcotest.(check bool) "whitespace is trimmed" true
    (Core.Fault.parse_kinds " raise , ledger "
    = Ok [ Core.Fault.Raise; Core.Fault.Ledger_fail ]);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "kind_name %S round-trips" (Core.Fault.kind_name k))
        true
        (Core.Fault.parse_kinds (Core.Fault.kind_name k) = Ok [ k ]))
    all_kinds;
  (match Core.Fault.parse_kinds "raise,bogus" with
  | Ok _ -> Alcotest.fail "unknown kind must not parse"
  | Error e ->
    Alcotest.(check bool) "the error names the bad kind" true
      (Test_util.contains e "bogus"));
  Alcotest.(check bool) "empty spec rejected" true
    (match Core.Fault.parse_kinds "" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Simulator-level soft errors                                         *)

(* ls-bh commits far more plain stores per run than the reduction apps,
   so moderate rates reliably produce flips to assert on. *)
let app =
  match Apps.Registry.by_name "ls-bh" with
  | Some a -> a
  | None -> failwith "ls-bh app missing"

let with_soft_errors arm f =
  Gpusim.Sim.set_soft_error_default arm;
  Fun.protect ~finally:(fun () -> Gpusim.Sim.set_soft_error_default None) f

(* One application run on a fresh device; returns the device for
   counter inspection.  The ambient soft-error default is consulted at
   Sim.create time. *)
let run_app ~app ~seed =
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.k20 ~seed () in
  ignore (app.Apps.App.run sim Apps.App.Conservative);
  sim

let run_once ~seed = run_app ~app ~seed

let test_soft_errors_deterministic () =
  with_soft_errors (Some (0.2, 99)) @@ fun () ->
  List.iter
    (fun seed ->
      let a = run_once ~seed in
      let b = run_once ~seed in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same flips on both runs" seed)
        (Gpusim.Sim.bitflips a) (Gpusim.Sim.bitflips b);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: the armed rate injects flips" seed)
        true
        (Gpusim.Sim.bitflips a > 0))
    [ 3; 17 ]

let test_disarmed_never_flips () =
  let sim = run_once ~seed:3 in
  Alcotest.(check int) "no flips without arming" 0 (Gpusim.Sim.bitflips sim)

let test_schedule_unperturbed () =
  (* The injection rng is dedicated: armed and disarmed runs of the same
     device seed must exhibit the same simulated schedule (cycles and
     reorders), differing only in stored values.  This only holds for an
     application whose control flow is data-independent (cbe-dot's fixed
     dot-product loops) — a flipped value fed back into loop bounds, as
     in ls-bh, legitimately changes the work done. *)
  let dot =
    match Apps.Registry.by_name "cbe-dot" with
    | Some a -> a
    | None -> failwith "cbe-dot app missing"
  in
  let clean = run_app ~app:dot ~seed:5 in
  with_soft_errors (Some (1.0, 99)) @@ fun () ->
  let flipped = run_app ~app:dot ~seed:5 in
  Alcotest.(check bool) "the armed run flipped something" true
    (Gpusim.Sim.bitflips flipped > 0);
  Alcotest.(check int) "same modelled runtime"
    (Gpusim.Sim.elapsed_cycles clean)
    (Gpusim.Sim.elapsed_cycles flipped);
  Alcotest.(check int) "same reorder count" (Gpusim.Sim.reorders clean)
    (Gpusim.Sim.reorders flipped)

let test_bitflip_trace_consistency () =
  with_soft_errors (Some (0.3, 7)) @@ fun () ->
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.k20 ~seed:11 () in
  let traced = ref 0 in
  let metric_total = ref 0 in
  let _ =
    Gpusim.Trace.subscribe (Gpusim.Sim.trace sim) (fun ~tick:_ ev ->
        match ev with
        | Gpusim.Trace.Bitflip { bit; before; after; _ } ->
          incr traced;
          Alcotest.(check int) "the event records the exact flip"
            (before lxor (1 lsl bit))
            after
        | Gpusim.Trace.Launch_end { metrics; _ } ->
          metric_total :=
            !metric_total + Option.value ~default:0 (List.assoc_opt "bitflip" metrics)
        | _ -> ())
  in
  ignore (app.Apps.App.run sim Apps.App.Conservative);
  let n = Gpusim.Sim.bitflips sim in
  Alcotest.(check bool) "flips happened" true (n > 0);
  Alcotest.(check int) "one Bitflip event per flip" n !traced;
  Alcotest.(check int) "Metrics.n_bitflip agrees" n !metric_total

let prop_soft_error_determinism =
  QCheck.Test.make
    ~name:"soft errors: bitflip count is a pure function of the seeds"
    ~count:6
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (fault_seed, seed) ->
      with_soft_errors (Some (0.1, fault_seed)) @@ fun () ->
      Gpusim.Sim.bitflips (run_once ~seed)
      = Gpusim.Sim.bitflips (run_once ~seed))

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ Alcotest.test_case "at is pure" `Quick test_at_is_pure;
          Alcotest.test_case "rate edges" `Quick test_rate_edges;
          Alcotest.test_case "kinds restricted" `Quick test_kinds_restricted;
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          Alcotest.test_case "predict consistent with at" `Quick
            test_predict_matches_at;
          Alcotest.test_case "parse_kinds" `Quick test_parse_kinds ] );
      ( "soft errors",
        [ Alcotest.test_case "deterministic flips" `Quick
            test_soft_errors_deterministic;
          Alcotest.test_case "disarmed never flips" `Quick
            test_disarmed_never_flips;
          Alcotest.test_case "schedule unperturbed" `Quick
            test_schedule_unperturbed;
          Alcotest.test_case "trace and metrics agree" `Quick
            test_bitflip_trace_consistency;
          QCheck_alcotest.to_alcotest prop_soft_error_determinism ] ) ]
