(* Report formatting: each table/figure renders and carries its key
   content. *)

let render f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_table1 () =
  let s = render Core.Report.table1 in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("table 1 mentions " ^ frag) true
        (Test_util.contains s frag))
    [ "GTX 980"; "Tesla K20"; "Fermi"; "Kepler"; "Maxwell"; "2010" ]

let test_table4 () =
  let s = render Core.Report.table4 in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("table 4 mentions " ^ frag) true
        (Test_util.contains s frag))
    [ "cbe-dot"; "ls-bh-nf"; "CUDA by Example"; "post-condition" ]

let test_table5 () =
  let row =
    { Core.Campaign.chip = "K20"; environment = "sys-str+";
      cells =
        [ { Core.Campaign.app = "cbe-dot"; errors = 10; runs = 40;
            example = "x";
            histogram = [ ("x", 7); ("y", 3) ] } ];
      capable = 1; effective = 1 }
  in
  let s = render (fun ppf -> Core.Report.table5 ppf [ row ]) in
  Alcotest.(check bool) "has the a/b cell" true (Test_util.contains s "1 / 1");
  Alcotest.(check bool) "has the chip" true (Test_util.contains s "K20")

let test_table6 () =
  let r =
    { Core.Harden.app = "cbe-dot"; chip = "K20"; initial = 7;
      fences = [ ("dot", 24) ]; converged = true; rounds = 1; checks = 9;
      elapsed_s = 12.0 }
  in
  let s = render (fun ppf -> Core.Report.table6 ppf [ r ]) in
  Alcotest.(check bool) "initial count" true (Test_util.contains s "7");
  Alcotest.(check bool) "fence site" true (Test_util.contains s "dot:s24")

let test_figure5_and_csv () =
  let m r e = { Core.Cost.runtime = r; energy = e; discarded = 0 } in
  let p =
    { Core.Cost.chip = "K20"; app = "cbe-dot"; nvml = true;
      no_fences = m 100. 50.; emp = m 103. 51.; cons = m 250. 120.;
      emp_count = 1 }
  in
  let s = render (fun ppf -> Core.Report.figure5 ppf [ p ]) in
  Alcotest.(check bool) "medians present" true (Test_util.contains s "medians");
  let csv = Core.Report.cost_csv [ p ] in
  Alcotest.(check bool) "csv header" true
    (Test_util.contains csv "chip,app,nvml");
  Alcotest.(check bool) "csv row" true (Test_util.contains csv "K20,cbe-dot")

let test_figure3_and_csv () =
  let r =
    { Core.Patch_finder.cells =
        [ { Core.Patch_finder.idiom = Litmus.Test.MP; distance = 0;
            location = 0; weak = 5 };
          { Core.Patch_finder.idiom = Litmus.Test.MP; distance = 0;
            location = 8; weak = 0 } ];
      runs = 40;
      per_idiom = [ (Litmus.Test.MP, Some 32) ];
      critical = Some 32; chosen = 32 }
  in
  let s = render (fun ppf -> Core.Report.figure3 ppf ~chip:"Titan" r) in
  Alcotest.(check bool) "chip named" true (Test_util.contains s "Titan");
  Alcotest.(check bool) "patch size" true
    (Test_util.contains s "critical patch size: 32");
  let csv = Core.Report.patch_csv r in
  Alcotest.(check bool) "csv rows" true (Test_util.contains csv "MP,0,0,5")

let test_figure4_and_csv () =
  let r =
    { Core.Spread_finder.points =
        [ { Core.Spread_finder.spread = 1;
            scores = List.map (fun i -> (i, 3)) Litmus.Test.idioms };
          { Core.Spread_finder.spread = 2;
            scores = List.map (fun i -> (i, 9)) Litmus.Test.idioms } ];
      winner = 2;
      sequence = [ Core.Access_seq.Ld; Core.Access_seq.St ];
      patch = 32 }
  in
  let s = render (fun ppf -> Core.Report.figure4 ppf ~chip:"980" r) in
  Alcotest.(check bool) "winner shown" true
    (Test_util.contains s "most effective spread: 2");
  let csv = Core.Report.spread_csv r in
  Alcotest.(check bool) "csv rows" true (Test_util.contains csv "2,MP,9")

let () =
  Alcotest.run "report"
    [ ( "render",
        [ Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "table 4" `Quick test_table4;
          Alcotest.test_case "table 5" `Quick test_table5;
          Alcotest.test_case "table 6" `Quick test_table6;
          Alcotest.test_case "figure 3" `Quick test_figure3_and_csv;
          Alcotest.test_case "figure 4" `Quick test_figure4_and_csv;
          Alcotest.test_case "figure 5" `Quick test_figure5_and_csv ] ) ]
