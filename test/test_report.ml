(* Report formatting: each table/figure renders and carries its key
   content. *)

let render f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_table1 () =
  let s = render Core.Report.table1 in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("table 1 mentions " ^ frag) true
        (Test_util.contains s frag))
    [ "GTX 980"; "Tesla K20"; "Fermi"; "Kepler"; "Maxwell"; "2010" ]

let test_table4 () =
  let s = render Core.Report.table4 in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("table 4 mentions " ^ frag) true
        (Test_util.contains s frag))
    [ "cbe-dot"; "ls-bh-nf"; "CUDA by Example"; "post-condition" ]

let test_table5 () =
  let row =
    { Core.Campaign.chip = "K20"; environment = "sys-str+";
      cells =
        [ { Core.Campaign.app = "cbe-dot"; errors = 10; runs = 40;
            example = "x";
            histogram = [ ("x", 7); ("y", 3) ]; quarantined = None } ];
      capable = 1; effective = 1 }
  in
  let s = render (fun ppf -> Core.Report.table5 ppf [ row ]) in
  Alcotest.(check bool) "has the a/b cell" true (Test_util.contains s "1 / 1");
  Alcotest.(check bool) "has the chip" true (Test_util.contains s "K20")

let test_table6 () =
  let r =
    { Core.Harden.app = "cbe-dot"; chip = "K20"; initial = 7;
      fences = [ ("dot", 24) ]; converged = true; rounds = 1; checks = 9;
      elapsed_s = 12.0 }
  in
  let s = render (fun ppf -> Core.Report.table6 ppf [ r ]) in
  Alcotest.(check bool) "initial count" true (Test_util.contains s "7");
  Alcotest.(check bool) "fence site" true (Test_util.contains s "dot:s24")

let test_figure5_and_csv () =
  let m r e = { Core.Cost.runtime = r; energy = e; discarded = 0 } in
  let p =
    { Core.Cost.chip = "K20"; app = "cbe-dot"; nvml = true;
      no_fences = m 100. 50.; emp = m 103. 51.; cons = m 250. 120.;
      emp_count = 1 }
  in
  let s = render (fun ppf -> Core.Report.figure5 ppf [ p ]) in
  Alcotest.(check bool) "medians present" true (Test_util.contains s "medians");
  let csv = Core.Report.cost_csv [ p ] in
  Alcotest.(check bool) "csv header" true
    (Test_util.contains csv "chip,app,nvml");
  Alcotest.(check bool) "csv row" true (Test_util.contains csv "K20,cbe-dot")

let test_figure3_and_csv () =
  let r =
    { Core.Patch_finder.cells =
        [ { Core.Patch_finder.idiom = Litmus.Test.MP; distance = 0;
            location = 0; weak = 5 };
          { Core.Patch_finder.idiom = Litmus.Test.MP; distance = 0;
            location = 8; weak = 0 } ];
      runs = 40;
      per_idiom = [ (Litmus.Test.MP, Some 32) ];
      critical = Some 32; chosen = 32 }
  in
  let s = render (fun ppf -> Core.Report.figure3 ppf ~chip:"Titan" r) in
  Alcotest.(check bool) "chip named" true (Test_util.contains s "Titan");
  Alcotest.(check bool) "patch size" true
    (Test_util.contains s "critical patch size: 32");
  let csv = Core.Report.patch_csv r in
  Alcotest.(check bool) "csv rows" true (Test_util.contains csv "MP,0,0,5")

let test_figure4_and_csv () =
  let r =
    { Core.Spread_finder.points =
        [ { Core.Spread_finder.spread = 1;
            scores = List.map (fun i -> (i, 3)) Litmus.Test.idioms };
          { Core.Spread_finder.spread = 2;
            scores = List.map (fun i -> (i, 9)) Litmus.Test.idioms } ];
      winner = 2;
      sequence = [ Core.Access_seq.Ld; Core.Access_seq.St ];
      patch = 32 }
  in
  let s = render (fun ppf -> Core.Report.figure4 ppf ~chip:"980" r) in
  Alcotest.(check bool) "winner shown" true
    (Test_util.contains s "most effective spread: 2");
  let csv = Core.Report.spread_csv r in
  Alcotest.(check bool) "csv rows" true (Test_util.contains csv "2,MP,9")

(* ------------------------------------------------------------------ *)
(* Golden renderings and ledger comparison                             *)

let cell app errors runs histogram =
  { Core.Campaign.app; errors; runs;
    example = (match histogram with (m, _) :: _ -> m | [] -> "");
    histogram; quarantined = None }

let golden_rows =
  [ { Core.Campaign.chip = "K20"; environment = "no-str-";
      cells =
        [ cell "cbe-dot" 0 40 [];
          cell "sdk-red" 1 40 [ ("race in reduce", 1) ] ];
      capable = 1; effective = 0 };
    { Core.Campaign.chip = "K20"; environment = "sys-str+";
      cells =
        [ cell "cbe-dot" 10 40 [ ("dot mismatch", 7); ("timeout", 3) ];
          cell "sdk-red" 0 40 [] ];
      capable = 1; effective = 1 } ]

let golden_harden =
  [ { Core.Harden.app = "cbe-dot"; chip = "K20"; initial = 7;
      fences = [ ("dot", 24) ]; converged = true; rounds = 1; checks = 9;
      elapsed_s = 0.0 };
    { Core.Harden.app = "ls-bh-nf"; chip = "Titan"; initial = 12;
      fences = [ ("force", 3); ("update", 8) ]; converged = false;
      rounds = 4; checks = 31; elapsed_s = 0.0 } ]

(* Byte-exact goldens: ledger-backed reports (gpuwmm report --from) must
   keep reproducing the live drivers' output, so renderer changes must be
   deliberate. *)

let test_table5_golden () =
  Alcotest.(check string) "table5 ascii"
    "Table 5: effectiveness of the testing environments (a / b, where b \
     = apps with errors,\n\
    \         a = apps with error rate over 5%)\n\
     ------------------------------\n\
     chip    no-str-    sys-str+   \n\
     ------------------------------\n\
     K20     0 / 1      1 / 1      \n\
     dominant failure modes (errors summed over all cells):\n\
    \  K20      dot mismatch (x7)\n"
    (render (fun ppf -> Core.Report.table5 ppf golden_rows))

let test_table5_csv_golden () =
  Alcotest.(check string) "table5 csv"
    "chip,environment,app,errors,runs,rate,dominant\n\
     K20,no-str-,cbe-dot,0,40,0.0000,\n\
     K20,no-str-,sdk-red,1,40,0.0250,race in reduce\n\
     K20,sys-str+,cbe-dot,10,40,0.2500,dot mismatch\n\
     K20,sys-str+,sdk-red,0,40,0.0000,\n"
    (Core.Report.table5_csv golden_rows);
  (* Commas inside failure messages must not add CSV columns. *)
  let rows =
    [ { (List.hd golden_rows) with
        Core.Campaign.cells = [ cell "x" 1 2 [ ("a, b", 1) ] ] } ]
  in
  Alcotest.(check bool) "commas in messages become semicolons" true
    (Test_util.contains (Core.Report.table5_csv rows) "a; b")

let test_table5_md_golden () =
  Alcotest.(check string) "table5 markdown"
    "Table 5: effectiveness of the testing environments (a / b; b = apps \
     with errors, a = apps with error rate over 5%)\n\n\
     | chip | no-str- | sys-str+ |\n\
     |---|---|---|\n\
     | K20 | 0 / 1 | 1 / 1 |\n"
    (Core.Report.table5_md golden_rows)

let test_table6_golden () =
  Alcotest.(check string) "table6 ascii"
    "Table 6: empirical fence insertion results\n\
     ----------------------------------------------------------------------------\n\
     app          init.  red. (ref chip) agreeing  converged  time (mins)\n\
     ----------------------------------------------------------------------------\n\
     cbe-dot      7      1              0         true       0.00\n\
    \               fences: dot:s24\n\
     ls-bh-nf     12     2              0         false      0.00\n\
    \               fences: force:s3, update:s8\n"
    (render (fun ppf -> Core.Report.table6 ppf golden_harden))

let test_table6_csv_golden () =
  Alcotest.(check string) "table6 csv"
    "app,chip,initial,fences,fence_sites,converged,rounds,checks\n\
     cbe-dot,K20,7,1,dot:s24,true,1,9\n\
     ls-bh-nf,Titan,12,2,force:s3;update:s8,false,4,31\n"
    (Core.Report.table6_csv golden_harden)

let test_provenance_stamp () =
  let h =
    { Core.Runlog.schema = 1; campaign = "test"; argv = [ "gpuwmm"; "test" ];
      seed = 7; jobs = 4; grid = Core.Json.Null; git = Some "abc123";
      created = 0.0; shard = None; merged = None }
  in
  let s =
    render (fun ppf -> Core.Report.provenance ppf ~path:"runs/a.jsonl" h)
  in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("provenance mentions " ^ frag) true
        (Test_util.contains s frag))
    [ "runs/a.jsonl"; "campaign test"; "seed 7"; "abc123"; "gpuwmm test" ];
  (* Every line is '#'-prefixed so the stamp is valid atop CSV output. *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "line is a comment" true
        (line = "" || line.[0] = '#'))
    (String.split_on_char '\n' s)

let test_compare_campaigns () =
  let equal =
    Core.Report.compare_campaigns ~tolerance:0.0 ~baseline:golden_rows
      ~candidate:golden_rows
  in
  Alcotest.(check bool) "identical ledgers do not differ" true
    (equal.Core.Report.regressions = []
    && equal.Core.Report.improvements = []
    && equal.Core.Report.notes = []);
  (* Candidate exposes fewer errors -> regression; the vanished failure
     mode is noted. *)
  let weaker =
    List.map
      (fun row ->
        { row with
          Core.Campaign.cells =
            List.map
              (fun c ->
                if c.Core.Campaign.app = "cbe-dot" then
                  { c with
                    Core.Campaign.errors = 0;
                    histogram = [] }
                else c)
              row.Core.Campaign.cells })
      golden_rows
  in
  let r =
    Core.Report.compare_campaigns ~tolerance:0.02 ~baseline:golden_rows
      ~candidate:weaker
  in
  Alcotest.(check int) "one cell regressed beyond tolerance" 1
    (List.length r.Core.Report.regressions);
  Alcotest.(check bool) "regression names the cell" true
    (List.exists
       (fun m -> Test_util.contains m "cbe-dot")
       r.Core.Report.regressions);
  Alcotest.(check bool) "vanished failure mode noted" true
    (List.exists
       (fun m -> Test_util.contains m "dot mismatch")
       r.Core.Report.notes);
  (* The reverse direction is an improvement, not a regression. *)
  let better =
    Core.Report.compare_campaigns ~tolerance:0.02 ~baseline:weaker
      ~candidate:golden_rows
  in
  Alcotest.(check int) "no regressions on improvement" 0
    (List.length better.Core.Report.regressions);
  Alcotest.(check bool) "improvement recorded" true
    (better.Core.Report.improvements <> []);
  (* A row missing from the candidate is always a regression. *)
  let missing =
    Core.Report.compare_campaigns ~tolerance:0.02 ~baseline:golden_rows
      ~candidate:[ List.hd golden_rows ]
  in
  Alcotest.(check bool) "missing row is a regression" true
    (missing.Core.Report.regressions <> [])

let test_compare_tolerance () =
  (* A drop within the tolerance is not flagged. *)
  let drop =
    List.map
      (fun row ->
        { row with
          Core.Campaign.cells =
            List.map
              (fun c ->
                if c.Core.Campaign.errors = 10 then
                  { c with Core.Campaign.errors = 9 }
                else c)
              row.Core.Campaign.cells })
      golden_rows
  in
  let within =
    Core.Report.compare_campaigns ~tolerance:0.05 ~baseline:golden_rows
      ~candidate:drop
  in
  Alcotest.(check int) "2.5%% drop within 5%% tolerance" 0
    (List.length within.Core.Report.regressions);
  let beyond =
    Core.Report.compare_campaigns ~tolerance:0.01 ~baseline:golden_rows
      ~candidate:drop
  in
  Alcotest.(check int) "2.5%% drop beyond 1%% tolerance" 1
    (List.length beyond.Core.Report.regressions)

let () =
  Alcotest.run "report"
    [ ( "render",
        [ Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "table 4" `Quick test_table4;
          Alcotest.test_case "table 5" `Quick test_table5;
          Alcotest.test_case "table 6" `Quick test_table6;
          Alcotest.test_case "figure 3" `Quick test_figure3_and_csv;
          Alcotest.test_case "figure 4" `Quick test_figure4_and_csv;
          Alcotest.test_case "figure 5" `Quick test_figure5_and_csv ] );
      ( "golden",
        [ Alcotest.test_case "table 5 ascii" `Quick test_table5_golden;
          Alcotest.test_case "table 5 csv" `Quick test_table5_csv_golden;
          Alcotest.test_case "table 5 markdown" `Quick test_table5_md_golden;
          Alcotest.test_case "table 6 ascii" `Quick test_table6_golden;
          Alcotest.test_case "table 6 csv" `Quick test_table6_csv_golden;
          Alcotest.test_case "provenance stamp" `Quick
            test_provenance_stamp ] );
      ( "compare",
        [ Alcotest.test_case "regressions and notes" `Quick
            test_compare_campaigns;
          Alcotest.test_case "tolerance" `Quick test_compare_tolerance ] ) ]
