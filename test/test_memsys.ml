(* The weak memory subsystem in isolation. *)

let make ?(chip = Gpusim.Chip.k20) ?(seed = 1) ?(words = 512) ?(nthreads = 4) () =
  Gpusim.Memsys.create ~chip ~rng:(Gpusim.Rng.create seed) ~words ~nthreads

let test_host_rw () =
  let m = make () in
  Gpusim.Memsys.write m 5 42;
  Alcotest.(check int) "read back" 42 (Gpusim.Memsys.read m 5);
  Alcotest.(check int) "zero initialised" 0 (Gpusim.Memsys.read m 6)

let test_store_buffering () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:1 ~value:9;
  Alcotest.(check int) "store is buffered, not visible" 0
    (Gpusim.Memsys.read m 1);
  Alcotest.(check int) "pending" 1 (Gpusim.Memsys.pending_count m ~tid:0);
  let n = Gpusim.Memsys.drain m ~tid:0 in
  Alcotest.(check int) "drained one" 1 n;
  Alcotest.(check int) "now visible" 9 (Gpusim.Memsys.read m 1)

let test_forwarding () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:2 ~value:7;
  let p = Gpusim.Memsys.load m ~tid:0 ~addr:2 in
  Alcotest.(check int) "load forwards own pending store" 7
    (Gpusim.Memsys.force m ~tid:0 p)

let test_no_cross_thread_forwarding () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:3 ~value:5;
  let p = Gpusim.Memsys.load m ~tid:1 ~addr:3 in
  Alcotest.(check int) "other thread reads memory" 0
    (Gpusim.Memsys.force m ~tid:1 p)

let test_same_address_order () =
  (* Coherence: same-address stores retire in order under any commit
     pattern. *)
  let m = make ~seed:7 () in
  Gpusim.Memsys.store m ~tid:0 ~addr:4 ~value:1;
  Gpusim.Memsys.store m ~tid:0 ~addr:4 ~value:2;
  for _ = 1 to 200 do
    Gpusim.Memsys.tick m;
    Gpusim.Memsys.attempt_commits m ~tid:0
  done;
  ignore (Gpusim.Memsys.drain m ~tid:0);
  Alcotest.(check int) "last store wins" 2 (Gpusim.Memsys.read m 4)

let test_atomic_sees_own_past () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:6 ~value:10;
  let old = Gpusim.Memsys.atomic m ~tid:0 ~addr:6 (fun v -> v + 1) in
  Alcotest.(check int) "atomic observed own pending store" 10 old;
  Alcotest.(check int) "atomic effect immediate" 11 (Gpusim.Memsys.read m 6)

let test_atomic_no_full_drain () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:7 ~value:1;
  ignore (Gpusim.Memsys.atomic m ~tid:0 ~addr:8 (fun v -> v + 1));
  Alcotest.(check int)
    "atomic on another address leaves pending stores alone" 1
    (Gpusim.Memsys.pending_count m ~tid:0)

let test_strong_mode () =
  let m = make ~chip:Gpusim.Chip.sequential () in
  Alcotest.(check bool) "strong" true (Gpusim.Memsys.strong m);
  Gpusim.Memsys.store m ~tid:0 ~addr:9 ~value:3;
  Alcotest.(check int) "immediately visible" 3 (Gpusim.Memsys.read m 9);
  let p = Gpusim.Memsys.load m ~tid:0 ~addr:9 in
  Alcotest.(check bool) "load resolved at issue" true
    (Gpusim.Memsys.resolved p)

let test_reorder_counting () =
  (* Two stores to different partitions can commit out of order; drive
     commits until the younger one retires first at least once. *)
  let chip = Gpusim.Chip.k20 in
  let observed = ref false in
  let attempts = ref 0 in
  while (not !observed) && !attempts < 200 do
    incr attempts;
    let m = make ~chip ~seed:!attempts () in
    Gpusim.Memsys.store m ~tid:0 ~addr:0 ~value:1;
    (* partition 0 *)
    Gpusim.Memsys.store m ~tid:0 ~addr:32 ~value:1;
    (* partition 1 *)
    for _ = 1 to 50 do
      Gpusim.Memsys.tick m;
      Gpusim.Memsys.attempt_commits m ~tid:0
    done;
    ignore (Gpusim.Memsys.drain m ~tid:0);
    if Gpusim.Memsys.reorders m > 0 then observed := true
  done;
  Alcotest.(check bool) "reordering observed and counted" true !observed

let test_contention_decay () =
  let m = make () in
  Gpusim.Memsys.stress_access m ~sid:0 ~kind:`Store ~addr:0 ~boundary:false;
  let c0 = Gpusim.Memsys.contention m ~part:0 ~kind:`Store in
  Alcotest.(check bool) "bump recorded" true (c0 > 0.0);
  for _ = 1 to 500 do
    Gpusim.Memsys.tick m
  done;
  let c1 = Gpusim.Memsys.contention m ~part:0 ~kind:`Store in
  Alcotest.(check bool) "decayed to (near) zero" true (c1 < 0.01 *. c0 +. 1e-9)

let test_stress_gain_scales () =
  let bump gain =
    let m = make () in
    Gpusim.Memsys.set_stress_gain m gain;
    Gpusim.Memsys.stress_access m ~sid:0 ~kind:`Load ~addr:0 ~boundary:false;
    Gpusim.Memsys.contention m ~part:0 ~kind:`Load
  in
  let b1 = bump 1.0 and b2 = bump 2.0 in
  Alcotest.(check bool) "gain doubles the bump" true
    (Float.abs (b2 -. (2.0 *. b1)) < 1e-9)

let test_pure_run_decays () =
  (* Long same-kind runs lose pressure (why pure sequences rank last). *)
  let m = make () in
  let bumps =
    List.init 8 (fun _ ->
        let before = Gpusim.Memsys.contention m ~part:0 ~kind:`Store in
        Gpusim.Memsys.stress_access m ~sid:0 ~kind:`Store ~addr:0
          ~boundary:false;
        Gpusim.Memsys.contention m ~part:0 ~kind:`Store -. before)
  in
  let first = List.hd bumps in
  let last = List.nth bumps 7 in
  Alcotest.(check bool)
    (Printf.sprintf "eighth store bump (%.2f) well below first (%.2f)" last
       first)
    true
    (last < 0.3 *. first)

let () =
  Alcotest.run "memsys"
    [ ( "unit",
        [ Alcotest.test_case "host read/write" `Quick test_host_rw;
          Alcotest.test_case "store buffering" `Quick test_store_buffering;
          Alcotest.test_case "forwarding" `Quick test_forwarding;
          Alcotest.test_case "no cross-thread forwarding" `Quick
            test_no_cross_thread_forwarding;
          Alcotest.test_case "same-address order" `Quick
            test_same_address_order;
          Alcotest.test_case "atomic sees own past" `Quick
            test_atomic_sees_own_past;
          Alcotest.test_case "atomic does not drain" `Quick
            test_atomic_no_full_drain;
          Alcotest.test_case "strong mode" `Quick test_strong_mode;
          Alcotest.test_case "reorder counting" `Quick test_reorder_counting;
          Alcotest.test_case "contention decay" `Quick test_contention_decay;
          Alcotest.test_case "stress gain" `Quick test_stress_gain_scales;
          Alcotest.test_case "pure runs decay" `Quick test_pure_run_decays ] )
    ]
