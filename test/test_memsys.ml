(* The weak memory subsystem in isolation. *)

let make ?(chip = Gpusim.Chip.k20) ?(seed = 1) ?(words = 512) ?(nthreads = 4) () =
  Gpusim.Memsys.create ~chip ~rng:(Gpusim.Rng.create seed) ~words ~nthreads

let test_host_rw () =
  let m = make () in
  Gpusim.Memsys.write m 5 42;
  Alcotest.(check int) "read back" 42 (Gpusim.Memsys.read m 5);
  Alcotest.(check int) "zero initialised" 0 (Gpusim.Memsys.read m 6)

let test_store_buffering () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:1 ~value:9;
  Alcotest.(check int) "store is buffered, not visible" 0
    (Gpusim.Memsys.read m 1);
  Alcotest.(check int) "pending" 1 (Gpusim.Memsys.pending_count m ~tid:0);
  let n = Gpusim.Memsys.drain m ~tid:0 in
  Alcotest.(check int) "drained one" 1 n;
  Alcotest.(check int) "now visible" 9 (Gpusim.Memsys.read m 1)

let test_forwarding () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:2 ~value:7;
  let p = Gpusim.Memsys.load m ~tid:0 ~addr:2 in
  Alcotest.(check int) "load forwards own pending store" 7
    (Gpusim.Memsys.force m ~tid:0 p)

let test_no_cross_thread_forwarding () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:3 ~value:5;
  let p = Gpusim.Memsys.load m ~tid:1 ~addr:3 in
  Alcotest.(check int) "other thread reads memory" 0
    (Gpusim.Memsys.force m ~tid:1 p)

let test_same_address_order () =
  (* Coherence: same-address stores retire in order under any commit
     pattern. *)
  let m = make ~seed:7 () in
  Gpusim.Memsys.store m ~tid:0 ~addr:4 ~value:1;
  Gpusim.Memsys.store m ~tid:0 ~addr:4 ~value:2;
  for _ = 1 to 200 do
    Gpusim.Memsys.tick m;
    Gpusim.Memsys.attempt_commits m ~tid:0
  done;
  ignore (Gpusim.Memsys.drain m ~tid:0);
  Alcotest.(check int) "last store wins" 2 (Gpusim.Memsys.read m 4)

let test_atomic_sees_own_past () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:6 ~value:10;
  let old = Gpusim.Memsys.atomic m ~tid:0 ~addr:6 (fun v -> v + 1) in
  Alcotest.(check int) "atomic observed own pending store" 10 old;
  Alcotest.(check int) "atomic effect immediate" 11 (Gpusim.Memsys.read m 6)

let test_atomic_no_full_drain () =
  let m = make () in
  Gpusim.Memsys.store m ~tid:0 ~addr:7 ~value:1;
  ignore (Gpusim.Memsys.atomic m ~tid:0 ~addr:8 (fun v -> v + 1));
  Alcotest.(check int)
    "atomic on another address leaves pending stores alone" 1
    (Gpusim.Memsys.pending_count m ~tid:0)

let test_strong_mode () =
  let m = make ~chip:Gpusim.Chip.sequential () in
  Alcotest.(check bool) "strong" true (Gpusim.Memsys.strong m);
  Gpusim.Memsys.store m ~tid:0 ~addr:9 ~value:3;
  Alcotest.(check int) "immediately visible" 3 (Gpusim.Memsys.read m 9);
  let p = Gpusim.Memsys.load m ~tid:0 ~addr:9 in
  Alcotest.(check bool) "load resolved at issue" true
    (Gpusim.Memsys.resolved p)

let test_reorder_counting () =
  (* Two stores to different partitions can commit out of order; drive
     commits until the younger one retires first at least once. *)
  let chip = Gpusim.Chip.k20 in
  let observed = ref false in
  let attempts = ref 0 in
  while (not !observed) && !attempts < 200 do
    incr attempts;
    let m = make ~chip ~seed:!attempts () in
    Gpusim.Memsys.store m ~tid:0 ~addr:0 ~value:1;
    (* partition 0 *)
    Gpusim.Memsys.store m ~tid:0 ~addr:32 ~value:1;
    (* partition 1 *)
    for _ = 1 to 50 do
      Gpusim.Memsys.tick m;
      Gpusim.Memsys.attempt_commits m ~tid:0
    done;
    ignore (Gpusim.Memsys.drain m ~tid:0);
    if Gpusim.Memsys.reorders m > 0 then observed := true
  done;
  Alcotest.(check bool) "reordering observed and counted" true !observed

let test_contention_decay () =
  let m = make () in
  Gpusim.Memsys.stress_access m ~sid:0 ~kind:`Store ~addr:0 ~boundary:false;
  let c0 = Gpusim.Memsys.contention m ~part:0 ~kind:`Store in
  Alcotest.(check bool) "bump recorded" true (c0 > 0.0);
  for _ = 1 to 500 do
    Gpusim.Memsys.tick m
  done;
  let c1 = Gpusim.Memsys.contention m ~part:0 ~kind:`Store in
  Alcotest.(check bool) "decayed to (near) zero" true (c1 < 0.01 *. c0 +. 1e-9)

let test_stress_gain_scales () =
  let bump gain =
    let m = make () in
    Gpusim.Memsys.set_stress_gain m gain;
    Gpusim.Memsys.stress_access m ~sid:0 ~kind:`Load ~addr:0 ~boundary:false;
    Gpusim.Memsys.contention m ~part:0 ~kind:`Load
  in
  let b1 = bump 1.0 and b2 = bump 2.0 in
  Alcotest.(check bool) "gain doubles the bump" true
    (Float.abs (b2 -. (2.0 *. b1)) < 1e-9)

let test_pure_run_decays () =
  (* Long same-kind runs lose pressure (why pure sequences rank last). *)
  let m = make () in
  let bumps =
    List.init 8 (fun _ ->
        let before = Gpusim.Memsys.contention m ~part:0 ~kind:`Store in
        Gpusim.Memsys.stress_access m ~sid:0 ~kind:`Store ~addr:0
          ~boundary:false;
        Gpusim.Memsys.contention m ~part:0 ~kind:`Store -. before)
  in
  let first = List.hd bumps in
  let last = List.nth bumps 7 in
  Alcotest.(check bool)
    (Printf.sprintf "eighth store bump (%.2f) well below first (%.2f)" last
       first)
    true
    (last < 0.3 *. first)

(* ------------------------------------------------------------------ *)
(* Model equivalence: the ring-buffer pending queues must be observably
   identical to the original list-based implementation.  [Model] below
   is that original implementation, transcribed verbatim (minus the
   soft-error machinery, which is orthogonal and never armed here).
   Both sides are driven with the same random op sequence and must
   agree on every intermediate observation, every trace event, the
   final memory image, and the rng stream (same draws in the same
   order — any divergence desynchronises the streams and shows up
   immediately in the observations). *)

module Model = struct
  open Gpusim

  type kind = Load_k | Store_k

  type entry = {
    seq : int;
    addr : int;
    part : int;
    ekind : kind;
    store_value : int;
    mutable load_value : int option;
    leak : bool;
  }

  type pending = entry

  type stress_state = {
    mutable prev : kind option;
    mutable run : int;
    mutable prev_run : int;
  }

  type t = {
    chip : Chip.t;
    rng : Rng.t;
    global : int array;
    mutable queues : entry list ref array;
    mutable seq : int;
    mutable now : int;
    read_pool : float array;
    write_pool : float array;
    pool_stamp : int array;
    decay_pow : float array;
    stress_states : (int, stress_state) Hashtbl.t;
    nonempty : (int, unit) Hashtbl.t;
    sink : Trace.t;
    mutable n_reorders : int;
    mutable n_stress : int;
    mutable stress_gain : float;
    strong : bool;
  }

  let create ~chip ~rng ~words ~nthreads =
    let w = chip.Chip.weakness in
    let n = w.n_partitions in
    let decay_pow = Array.make 128 0.0 in
    decay_pow.(0) <- 1.0;
    for i = 1 to 127 do
      decay_pow.(i) <- decay_pow.(i - 1) *. w.decay_per_tick
    done;
    { chip; rng; global = Array.make words 0;
      queues = Array.init nthreads (fun _ -> ref []);
      seq = 0; now = 0;
      read_pool = Array.make n 0.0;
      write_pool = Array.make n 0.0;
      pool_stamp = Array.make n 0;
      decay_pow;
      stress_states = Hashtbl.create 64;
      nonempty = Hashtbl.create 64;
      sink = Trace.create ();
      n_reorders = 0;
      n_stress = 0;
      stress_gain = 1.0;
      strong = w.max_delay <= 0.0 && w.base_delay <= 0.0 }

  let read t addr = t.global.(addr)
  let words t = Array.length t.global
  let tick t = t.now <- t.now + 1
  let sink t = t.sink

  let observe_access t ~tid ~addr ~write ~atomic =
    if Trace.active t.sink then
      Trace.emit t.sink ~tick:t.now (Trace.Access { tid; addr; write; atomic })

  let reorders t = t.n_reorders
  let stress_accesses t = t.n_stress

  let refresh_pool t part =
    let dt = t.now - t.pool_stamp.(part) in
    if dt > 0 then begin
      let f = if dt < 128 then t.decay_pow.(dt) else 0.0 in
      t.read_pool.(part) <- t.read_pool.(part) *. f;
      t.write_pool.(part) <- t.write_pool.(part) *. f;
      t.pool_stamp.(part) <- t.now
    end

  let add_contention t part ckind amount =
    refresh_pool t part;
    match ckind with
    | `Load -> t.read_pool.(part) <- t.read_pool.(part) +. amount
    | `Store -> t.write_pool.(part) <- t.write_pool.(part) +. amount

  let contention t ~part ~kind =
    refresh_pool t part;
    let w = t.chip.Chip.weakness in
    match kind with
    | `Load -> t.read_pool.(part) +. (w.cross *. t.write_pool.(part))
    | `Store -> t.write_pool.(part) +. (w.cross *. t.read_pool.(part))

  let stress_state t sid =
    match Hashtbl.find_opt t.stress_states sid with
    | Some s -> s
    | None ->
      let s = { prev = None; run = 0; prev_run = 0 } in
      Hashtbl.add t.stress_states sid s;
      s

  let traffic_bump t st k ~boundary =
    let tr = t.chip.Chip.traffic in
    let same = match st.prev with Some p -> p = k | None -> false in
    let run = if same then st.run + 1 else 1 in
    let runfac_arr =
      match k with Load_k -> tr.run_ld | Store_k -> tr.run_st
    in
    let runfac = runfac_arr.(min run (Array.length runfac_arr) - 1) in
    let bf = if boundary then tr.boundary_factor else 1.0 in
    let base =
      (match k with Load_k -> tr.w_ld | Store_k -> tr.w_st) *. runfac
    in
    let trans =
      match st.prev with
      | Some p when p <> k -> tr.trans_bonus *. bf
      | Some _ | None -> 0.0
    in
    let flush =
      match (k, st.prev) with
      | Store_k, Some Load_k ->
        tr.flush_bonus *. float_of_int (min st.run tr.flush_cap) *. bf
      | _, _ -> 0.0
    in
    if same then st.run <- run
    else begin
      st.prev_run <- st.run;
      st.run <- 1;
      st.prev <- Some k
    end;
    base +. trans +. flush

  let stress_access t ~sid ~kind ~addr ~boundary =
    t.n_stress <- t.n_stress + 1;
    let k = match kind with `Load -> Load_k | `Store -> Store_k in
    let st = stress_state t sid in
    let amount = traffic_bump t st k ~boundary *. t.stress_gain in
    let part = Chip.partition t.chip addr in
    add_contention t part kind amount;
    match kind with
    | `Load -> ignore t.global.(addr)
    | `Store -> t.global.(addr) <- sid

  let app_access_bump = 0.02

  let app_access t ~kind ~addr =
    let part = Chip.partition t.chip addr in
    add_contention t part kind app_access_bump

  let queue t tid = t.queues.(tid)

  let mark_nonempty t tid q =
    if !q = [] then Hashtbl.remove t.nonempty tid
    else Hashtbl.replace t.nonempty tid ()

  let load_value t tid e =
    let q = queue t tid in
    let forwarded =
      List.fold_left
        (fun acc e' ->
          match e'.ekind with
          | Store_k when e'.addr = e.addr && e'.seq < e.seq ->
            Some e'.store_value
          | Store_k | Load_k -> acc)
        None !q
    in
    match forwarded with Some v -> v | None -> t.global.(e.addr)

  let commit t tid e =
    let q = queue t tid in
    (match e.ekind with
    | Store_k -> t.global.(e.addr) <- e.store_value
    | Load_k ->
      if e.load_value = None then e.load_value <- Some (load_value t tid e));
    let remaining = List.filter (fun e' -> e' != e) !q in
    q := remaining;
    mark_nonempty t tid q;
    let older = List.exists (fun (e' : entry) -> e'.seq < e.seq) remaining in
    if older then t.n_reorders <- t.n_reorders + 1;
    if Trace.active t.sink then begin
      Trace.emit t.sink ~tick:t.now
        (Trace.Commit
           { tid; addr = e.addr; is_store = (e.ekind = Store_k);
             value =
               (match e.ekind with
               | Store_k -> e.store_value
               | Load_k -> Option.value ~default:0 e.load_value);
             reordered = older });
      if older then
        let overtaken =
          List.fold_left
            (fun acc (e' : entry) ->
              if e'.seq < e.seq then Some e'.addr else acc)
            None remaining
        in
        match overtaken with
        | Some a ->
          Trace.emit t.sink ~tick:t.now
            (Trace.Reorder { tid; overtaken = a; committed = e.addr })
        | None -> ()
    end

  let pending_count t ~tid = List.length !(queue t tid)

  let heads q =
    let rec go seen acc = function
      | [] -> List.rev acc
      | e :: rest ->
        if e.leak then go seen (e :: acc) rest
        else if List.mem e.part seen then go seen acc rest
        else go (e.part :: seen) (e :: acc) rest
    in
    go [] [] q

  let delay_for t e =
    let w = t.chip.Chip.weakness in
    let kind = match e.ekind with Load_k -> `Load | Store_k -> `Store in
    let c = contention t ~part:e.part ~kind in
    let factor = c *. c /. ((w.knee *. w.knee) +. (c *. c)) in
    let kw =
      match e.ekind with
      | Load_k -> w.ld_delay_w
      | Store_k -> w.st_delay_w
    in
    Float.min w.max_delay (w.base_delay +. (w.gain *. factor *. kw))

  let attempt_commits t ~tid =
    let q = queue t tid in
    if !q <> [] then
      List.iter
        (fun e -> if not (Rng.chance t.rng (delay_for t e)) then commit t tid e)
        (heads !q)

  let drain t ~tid =
    let q = queue t tid in
    let n = List.length !q in
    List.iter (fun e -> commit t tid e) !q;
    n

  let drain_step t ~tid =
    let q = queue t tid in
    (match !q with e :: _ -> commit t tid e | [] -> ());
    !q = []

  let any_pending t = Hashtbl.length t.nonempty > 0

  let random_background_drain t =
    let n = Hashtbl.length t.nonempty in
    if n > 0 then begin
      let i = Rng.int t.rng n in
      let tid = ref (-1) in
      let j = ref 0 in
      Hashtbl.iter
        (fun k () ->
          if !j = i then tid := k;
          incr j)
        t.nonempty;
      if !tid >= 0 then attempt_commits t ~tid:!tid
    end

  let fresh_entry t ~addr ~ekind ~store_value =
    let w = t.chip.Chip.weakness in
    t.seq <- t.seq + 1;
    { seq = t.seq; addr; part = Chip.partition t.chip addr; ekind;
      store_value; load_value = None;
      leak = w.same_patch_leak > 0.0 && Rng.chance t.rng w.same_patch_leak }

  let enqueue t tid e =
    if Trace.active t.sink then
      Trace.emit t.sink ~tick:t.now
        (Trace.Issue
           { tid; addr = e.addr; part = e.part;
             is_store = (e.ekind = Store_k) });
    let q = queue t tid in
    let w = t.chip.Chip.weakness in
    if List.length !q >= w.queue_cap then begin
      match !q with oldest :: _ -> commit t tid oldest | [] -> ()
    end;
    q := !q @ [ e ];
    mark_nonempty t tid q

  let load t ~tid ~addr =
    observe_access t ~tid ~addr ~write:false ~atomic:false;
    if t.strong then begin
      t.seq <- t.seq + 1;
      { seq = t.seq; addr; part = 0; ekind = Load_k; store_value = 0;
        load_value = Some t.global.(addr); leak = false }
    end
    else begin
      let e = fresh_entry t ~addr ~ekind:Load_k ~store_value:0 in
      enqueue t tid e;
      e
    end

  let resolved (e : entry) = e.load_value <> None

  let force t ~tid e =
    match e.load_value with
    | Some v -> v
    | None ->
      commit t tid e;
      (match e.load_value with Some v -> v | None -> assert false)

  let store t ~tid ~addr ~value =
    observe_access t ~tid ~addr ~write:true ~atomic:false;
    if t.strong then t.global.(addr) <- value
    else enqueue t tid (fresh_entry t ~addr ~ekind:Store_k ~store_value:value)

  let atomic t ~tid ~addr f =
    observe_access t ~tid ~addr ~write:true ~atomic:true;
    if not t.strong then begin
      let q = queue t tid in
      let same = List.filter (fun e -> e.addr = addr) !q in
      List.iter (fun e -> commit t tid e) same;
      List.iter
        (fun (e : entry) ->
          t.n_reorders <- t.n_reorders + 1;
          if Trace.active t.sink then
            Trace.emit t.sink ~tick:t.now
              (Trace.Reorder { tid; overtaken = e.addr; committed = addr }))
        !q
    end;
    let old = t.global.(addr) in
    t.global.(addr) <- f old;
    if Trace.active t.sink then
      Trace.emit t.sink ~tick:t.now
        (Trace.Atomic_rmw { tid; addr; before = old; after = t.global.(addr) });
    old
end

type mop =
  | M_store of int * int * int  (* tid, addr, value *)
  | M_load_force of int * int  (* load then force immediately *)
  | M_load_keep of int * int  (* load, drop the handle *)
  | M_atomic of int * int
  | M_fence of int  (* full drain *)
  | M_step of int  (* drain_step *)
  | M_attempt of int
  | M_tick
  | M_background
  | M_stress of int * [ `Load | `Store ] * int * bool
  | M_app of [ `Load | `Store ] * int

(* One driver for both implementations, via a record of operations. *)
type ('m, 'p) impl = {
  i_store : 'm -> tid:int -> addr:int -> value:int -> unit;
  i_load : 'm -> tid:int -> addr:int -> 'p;
  i_force : 'm -> tid:int -> 'p -> int;
  i_resolved : 'p -> bool;
  i_atomic : 'm -> tid:int -> addr:int -> (int -> int) -> int;
  i_drain : 'm -> tid:int -> int;
  i_drain_step : 'm -> tid:int -> bool;
  i_attempt : 'm -> tid:int -> unit;
  i_tick : 'm -> unit;
  i_background : 'm -> unit;
  i_stress :
    'm -> sid:int -> kind:[ `Load | `Store ] -> addr:int -> boundary:bool ->
    unit;
  i_app : 'm -> kind:[ `Load | `Store ] -> addr:int -> unit;
  i_pending : 'm -> tid:int -> int;
  i_read : 'm -> int -> int;
  i_words : 'm -> int;
  i_reorders : 'm -> int;
  i_stress_accesses : 'm -> int;
  i_any_pending : 'm -> bool;
  i_contention : 'm -> part:int -> kind:[ `Load | `Store ] -> float;
  i_sink : 'm -> Gpusim.Trace.t;
}

let real_impl : (Gpusim.Memsys.t, Gpusim.Memsys.pending) impl =
  { i_store = Gpusim.Memsys.store;
    i_load = Gpusim.Memsys.load;
    i_force = Gpusim.Memsys.force;
    i_resolved = Gpusim.Memsys.resolved;
    i_atomic = Gpusim.Memsys.atomic;
    i_drain = Gpusim.Memsys.drain;
    i_drain_step = Gpusim.Memsys.drain_step;
    i_attempt = Gpusim.Memsys.attempt_commits;
    i_tick = Gpusim.Memsys.tick;
    i_background = Gpusim.Memsys.random_background_drain;
    i_stress = Gpusim.Memsys.stress_access;
    i_app = Gpusim.Memsys.app_access;
    i_pending = Gpusim.Memsys.pending_count;
    i_read = Gpusim.Memsys.read;
    i_words = Gpusim.Memsys.words;
    i_reorders = Gpusim.Memsys.reorders;
    i_stress_accesses = Gpusim.Memsys.stress_accesses;
    i_any_pending = Gpusim.Memsys.any_pending;
    i_contention = Gpusim.Memsys.contention;
    i_sink = Gpusim.Memsys.sink }

let model_impl : (Model.t, Model.pending) impl =
  { i_store = Model.store;
    i_load = Model.load;
    i_force = Model.force;
    i_resolved = Model.resolved;
    i_atomic = Model.atomic;
    i_drain = Model.drain;
    i_drain_step = Model.drain_step;
    i_attempt = Model.attempt_commits;
    i_tick = Model.tick;
    i_background = Model.random_background_drain;
    i_stress = Model.stress_access;
    i_app = Model.app_access;
    i_pending = Model.pending_count;
    i_read = Model.read;
    i_words = Model.words;
    i_reorders = Model.reorders;
    i_stress_accesses = Model.stress_accesses;
    i_any_pending = Model.any_pending;
    i_contention = Model.contention;
    i_sink = Model.sink }

let model_nthreads = 3
let model_words = 256

(* Run the op sequence and render every observation into one string;
   equality of the two strings is the property. *)
let run_ops (type m p) (impl : (m, p) impl) (m : m) ops =
  Gpusim.Trace.enable (impl.i_sink m);
  let buf = Buffer.create 1024 in
  let obs fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun op ->
      (match op with
      | M_store (tid, addr, value) -> impl.i_store m ~tid ~addr ~value
      | M_load_force (tid, addr) ->
        let p = impl.i_load m ~tid ~addr in
        obs "F%d;" (impl.i_force m ~tid p)
      | M_load_keep (tid, addr) ->
        let p = impl.i_load m ~tid ~addr in
        obs "K%b;" (impl.i_resolved p)
      | M_atomic (tid, addr) ->
        obs "A%d;" (impl.i_atomic m ~tid ~addr (fun v -> v + 3))
      | M_fence tid -> obs "D%d;" (impl.i_drain m ~tid)
      | M_step tid -> obs "S%b;" (impl.i_drain_step m ~tid)
      | M_attempt tid -> impl.i_attempt m ~tid
      | M_tick -> impl.i_tick m
      | M_background -> impl.i_background m
      | M_stress (sid, kind, addr, boundary) ->
        impl.i_stress m ~sid ~kind ~addr ~boundary
      | M_app (kind, addr) -> impl.i_app m ~kind ~addr);
      for tid = 0 to model_nthreads - 1 do
        obs "p%d," (impl.i_pending m ~tid)
      done;
      obs "%b;" (impl.i_any_pending m))
    ops;
  for tid = 0 to model_nthreads - 1 do
    obs "d%d;" (impl.i_drain m ~tid)
  done;
  for a = 0 to impl.i_words m - 1 do
    let v = impl.i_read m a in
    if v <> 0 then obs "m%d=%d," a v
  done;
  obs "reorders=%d;stress=%d;" (impl.i_reorders m)
    (impl.i_stress_accesses m);
  List.iter
    (fun k ->
      for part = 0 to 7 do
        obs "c%.9g," (impl.i_contention m ~part ~kind:k)
      done)
    [ `Load; `Store ];
  List.iter
    (fun r -> obs "%s;" (Format.asprintf "%a" Gpusim.Trace.pp_record r))
    (Gpusim.Trace.records (impl.i_sink m));
  Buffer.contents buf

let mop_gen =
  let open QCheck.Gen in
  let tid = int_range 0 (model_nthreads - 1) in
  let addr = int_range 0 (model_words - 1) in
  let kind = oneofl [ `Load; `Store ] in
  frequency
    [ (4, map3 (fun t a v -> M_store (t, a, v)) tid addr (int_range 0 99));
      (3, map2 (fun t a -> M_load_force (t, a)) tid addr);
      (2, map2 (fun t a -> M_load_keep (t, a)) tid addr);
      (1, map2 (fun t a -> M_atomic (t, a)) tid addr);
      (1, map (fun t -> M_fence t) tid);
      (1, map (fun t -> M_step t) tid);
      (2, map (fun t -> M_attempt t) tid);
      (3, return M_tick);
      (2, return M_background);
      ( 2,
        map3
          (fun s (k, a) b -> M_stress (s, k, a, b))
          (int_range 0 3) (pair kind addr) bool );
      (1, map2 (fun k a -> M_app (k, a)) kind addr) ]

let scenario_gen =
  QCheck.Gen.(
    triple (int_range 1 1_000_000) bool
      (list_size (int_range 1 150) mop_gen))

let model_equiv =
  QCheck.Test.make ~count:300 ~name:"ring-buffer queues = list-based model"
    (QCheck.make scenario_gen) (fun (seed, quirky, ops) ->
      (* gtx980 exercises the same-partition leak quirk (extra rng
         draws per entry); k20 is the common case. *)
      let chip = if quirky then Gpusim.Chip.gtx980 else Gpusim.Chip.k20 in
      let real =
        Gpusim.Memsys.create ~chip ~rng:(Gpusim.Rng.create seed)
          ~words:model_words ~nthreads:model_nthreads
      in
      let model =
        Model.create ~chip ~rng:(Gpusim.Rng.create seed) ~words:model_words
          ~nthreads:model_nthreads
      in
      let a = run_ops real_impl real ops in
      let b = run_ops model_impl model ops in
      if String.equal a b then true
      else
        QCheck.Test.fail_reportf
          "ring-buffer implementation diverged from the list model@.real:  \
           %s@.model: %s"
          a b)

let () =
  Alcotest.run "memsys"
    [ ( "unit",
        [ Alcotest.test_case "host read/write" `Quick test_host_rw;
          Alcotest.test_case "store buffering" `Quick test_store_buffering;
          Alcotest.test_case "forwarding" `Quick test_forwarding;
          Alcotest.test_case "no cross-thread forwarding" `Quick
            test_no_cross_thread_forwarding;
          Alcotest.test_case "same-address order" `Quick
            test_same_address_order;
          Alcotest.test_case "atomic sees own past" `Quick
            test_atomic_sees_own_past;
          Alcotest.test_case "atomic does not drain" `Quick
            test_atomic_no_full_drain;
          Alcotest.test_case "strong mode" `Quick test_strong_mode;
          Alcotest.test_case "reorder counting" `Quick test_reorder_counting;
          Alcotest.test_case "contention decay" `Quick test_contention_decay;
          Alcotest.test_case "stress gain" `Quick test_stress_gain_scales;
          Alcotest.test_case "pure runs decay" `Quick test_pure_run_decays ] );
      ("model", [ QCheck_alcotest.to_alcotest model_equiv ]) ]
