(* The simulator event tracer: ring-buffer bounds, the zero-overhead
   contract (no recording unless enabled or subscribed), subscriber
   plumbing, whole-launch integration, and the headline property that a
   campaign's merged plan-ordered trace is bit-identical across
   execution backends. *)

let ev tid = Gpusim.Trace.Barrier_wait { tid; block = 0 }

let test_disabled_by_default () =
  let t = Gpusim.Trace.create () in
  Alcotest.(check bool) "not active" false (Gpusim.Trace.active t);
  Alcotest.(check bool) "not enabled" false (Gpusim.Trace.enabled t);
  Gpusim.Trace.emit t ~tick:1 (ev 0);
  Alcotest.(check int) "emit without a buffer records nothing" 0
    (List.length (Gpusim.Trace.records t));
  Alcotest.(check int) "emitted stays 0" 0 (Gpusim.Trace.emitted t)

let test_ring_bounds () =
  let t = Gpusim.Trace.create () in
  Gpusim.Trace.enable ~capacity:8 t;
  Alcotest.(check bool) "active once enabled" true (Gpusim.Trace.active t);
  for i = 0 to 19 do
    Gpusim.Trace.emit t ~tick:i (ev i)
  done;
  let records = Gpusim.Trace.records t in
  Alcotest.(check int) "bounded by capacity" 8 (List.length records);
  Alcotest.(check (list int)) "keeps the newest, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun r -> r.Gpusim.Trace.tick) records);
  Alcotest.(check int) "emitted counts everything" 20 (Gpusim.Trace.emitted t);
  Alcotest.(check int) "dropped = emitted - kept" 12 (Gpusim.Trace.dropped t);
  Gpusim.Trace.clear t;
  Alcotest.(check int) "clear empties" 0
    (List.length (Gpusim.Trace.records t));
  Alcotest.(check bool) "clear keeps the buffer active" true
    (Gpusim.Trace.active t);
  Gpusim.Trace.disable t;
  Alcotest.(check bool) "disable deactivates" false (Gpusim.Trace.active t)

let test_bad_capacity_rejected () =
  let t = Gpusim.Trace.create () in
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.enable: capacity must be positive") (fun () ->
      Gpusim.Trace.enable ~capacity:0 t)

let test_subscribers () =
  let t = Gpusim.Trace.create () in
  let seen_a = ref [] and seen_b = ref [] in
  let sub seen =
    Gpusim.Trace.subscribe t (fun ~tick _ -> seen := tick :: !seen)
  in
  let a = sub seen_a in
  Alcotest.(check bool) "subscriber alone activates the sink" true
    (Gpusim.Trace.active t);
  Gpusim.Trace.emit t ~tick:1 (ev 0);
  let b = sub seen_b in
  Gpusim.Trace.emit t ~tick:2 (ev 0);
  Gpusim.Trace.unsubscribe t a;
  Gpusim.Trace.emit t ~tick:3 (ev 0);
  Alcotest.(check (list int)) "a saw ticks while subscribed" [ 2; 1 ] !seen_a;
  Alcotest.(check (list int)) "b saw ticks while subscribed" [ 3; 2 ] !seen_b;
  Alcotest.(check int) "no ring buffer: nothing retained" 0
    (List.length (Gpusim.Trace.records t));
  Gpusim.Trace.unsubscribe t b;
  Alcotest.(check bool) "last unsubscribe deactivates" false
    (Gpusim.Trace.active t)

(* ------------------------------------------------------------------ *)
(* Whole-launch integration                                             *)

let traced_run ?(chip = Gpusim.Chip.k20) ?(env = true) ~seed () =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let sim = Gpusim.Sim.create ~chip ~seed () in
  if env then Gpusim.Sim.set_environment sim (Test_util.sys_plus_env chip);
  (* Generous capacity so the whole run is retained: the event/metric
     agreement checks below assume a lossless trace. *)
  Gpusim.Trace.enable ~capacity:(1 lsl 20) (Gpusim.Sim.trace sim);
  ignore (app.Apps.App.run sim Apps.App.Original);
  Alcotest.(check int) "nothing dropped" 0
    (Gpusim.Trace.dropped (Gpusim.Sim.trace sim));
  Gpusim.Trace.records (Gpusim.Sim.trace sim)

let test_launch_events () =
  let records = traced_run ~seed:11 () in
  Alcotest.(check bool) "events were recorded" true (records <> []);
  (match records with
  | { Gpusim.Trace.event = Gpusim.Trace.Launch_begin { kernel; _ }; _ } :: _
    ->
    Alcotest.(check bool) "launch_begin names a kernel" true (kernel <> "")
  | _ -> Alcotest.fail "first event must be launch_begin");
  (match List.rev records with
  | { Gpusim.Trace.event = Gpusim.Trace.Launch_end { outcome; metrics; _ };
      _ }
    :: _ ->
    Alcotest.(check string) "last launch ends cleanly" "finished" outcome;
    Alcotest.(check bool) "launch_end carries metrics" true
      (List.mem_assoc "ticks" metrics)
  | _ -> Alcotest.fail "last event must be launch_end");
  let names =
    List.map (fun r -> Gpusim.Trace.event_name r.Gpusim.Trace.event) records
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected names))
    [ "issue"; "commit"; "atomic_rmw"; "thread_done"; "contention" ];
  (* Device ticks never run backwards, so the emission-ordered ring is
     tick-sorted. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Gpusim.Trace.tick <= b.Gpusim.Trace.tick && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "ticks are non-decreasing" true (monotone records)

let test_reorder_events_on_weak_chip () =
  (* Under system stress on a weak chip, cbe-dot exhibits reorders.  The
     trace and the exported metrics must agree: each device reorder
     (plain commit overtaking, or an atomic bypassing pending stores)
     emits exactly one Reorder event, and the per-launch [reorder]
     metric counts the same population. *)
  let rec has_reorder seed tries =
    if tries = 0 then []
    else
      let records = traced_run ~seed () in
      if
        List.exists
          (fun r ->
            match r.Gpusim.Trace.event with
            | Gpusim.Trace.Reorder _ -> true
            | _ -> false)
          records
      then records
      else has_reorder (seed + 1) (tries - 1)
  in
  let records = has_reorder 1 30 in
  Alcotest.(check bool) "found a run with reorders" true (records <> []);
  let reorders, flagged_commits, metric_reorders =
    List.fold_left
      (fun (r, c, m) rec_ ->
        match rec_.Gpusim.Trace.event with
        | Gpusim.Trace.Reorder _ -> (r + 1, c, m)
        | Gpusim.Trace.Commit { reordered = true; _ } -> (r, c + 1, m)
        | Gpusim.Trace.Launch_end { metrics; _ } ->
          (r, c, m + List.assoc "reorder" metrics)
        | _ -> (r, c, m))
      (0, 0, 0) records
  in
  Alcotest.(check int) "metrics count the traced reorders" reorders
    metric_reorders;
  Alcotest.(check bool) "flagged commits are a subset of reorders" true
    (flagged_commits <= reorders)

let test_sequential_chip_never_reorders () =
  let records = traced_run ~chip:Gpusim.Chip.sequential ~env:false ~seed:3 () in
  Alcotest.(check int) "SC reference emits no reorder events" 0
    (List.length
       (List.filter
          (fun r ->
            match r.Gpusim.Trace.event with
            | Gpusim.Trace.Reorder _ -> true
            | Gpusim.Trace.Commit { reordered = true; _ } -> true
            | _ -> false)
          records))

(* ------------------------------------------------------------------ *)
(* Cross-backend trace determinism                                      *)

(* A traced campaign: each job runs one application execution with the
   ring enabled and returns its records; the campaign's trace is the
   plan-ordered concatenation.  Same seed must give the identical merged
   trace whatever the backend, because every event carries only
   deterministic data (device ticks, thread ids, modelled contention) —
   never wall-clock or worker identity. *)
let traced_campaign ~backend ~seed =
  let chip = Gpusim.Chip.k20 in
  let env = Test_util.sys_plus_env chip in
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  Core.Exec.run ~backend ~seed
    ~f:(fun ~seed () ->
      let sim = Gpusim.Sim.create ~chip ~seed () in
      Gpusim.Sim.set_environment sim env;
      Gpusim.Trace.enable (Gpusim.Sim.trace sim);
      ignore (app.Apps.App.run sim Apps.App.Original);
      Gpusim.Trace.records (Gpusim.Sim.trace sim))
    (List.init 6 (fun _ -> ()))
  |> List.concat

let prop_trace_backend_determinism =
  QCheck.Test.make
    ~name:"merged plan-ordered trace: serial = parallel (jobs in {1,2,4})"
    ~count:3
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let reference = traced_campaign ~backend:Core.Exec.Serial ~seed in
      reference <> []
      && List.for_all
           (fun jobs ->
             traced_campaign ~backend:(Core.Exec.backend_of_jobs jobs) ~seed
             = reference)
           [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Metrics structured export                                            *)

let test_metrics_to_assoc_round_trip () =
  let records = traced_run ~seed:17 () in
  let m = Gpusim.Metrics.create () in
  (* Accumulate every launch's exported metrics back into a Metrics.t;
     add/reset and to_assoc must agree with each other. *)
  let launches = ref 0 in
  List.iter
    (fun r ->
      match r.Gpusim.Trace.event with
      | Gpusim.Trace.Launch_end { metrics; _ } ->
        incr launches;
        let x = Gpusim.Metrics.create () in
        x.Gpusim.Metrics.ticks <- List.assoc "ticks" metrics;
        x.Gpusim.Metrics.n_load <- List.assoc "ld" metrics;
        x.Gpusim.Metrics.n_store <- List.assoc "st" metrics;
        x.Gpusim.Metrics.n_reorder <- List.assoc "reorder" metrics;
        Gpusim.Metrics.add m x
      | _ -> ())
    records;
  Alcotest.(check bool) "saw at least one launch_end" true (!launches > 0);
  let assoc = Gpusim.Metrics.to_assoc m in
  Alcotest.(check (list string)) "stable keys in stable order"
    [ "ticks"; "alu"; "ld"; "st"; "atomic"; "fence"; "drained"; "stall";
      "reorder"; "app_cycles"; "bitflip" ]
    (List.map fst assoc);
  Alcotest.(check bool) "accumulated ticks" true
    (List.assoc "ticks" assoc > 0);
  Alcotest.(check string) "pp renders to_assoc as k=v pairs"
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) assoc))
    (Fmt.str "%a" Gpusim.Metrics.pp m);
  Gpusim.Metrics.reset m;
  Alcotest.(check bool) "reset zeroes every exported counter" true
    (List.for_all (fun (_, v) -> v = 0) (Gpusim.Metrics.to_assoc m))

let () =
  Alcotest.run "trace"
    [ ( "ring buffer",
        [ Alcotest.test_case "disabled by default" `Quick
            test_disabled_by_default;
          Alcotest.test_case "bounded ring" `Quick test_ring_bounds;
          Alcotest.test_case "bad capacity" `Quick test_bad_capacity_rejected;
          Alcotest.test_case "subscribers" `Quick test_subscribers ] );
      ( "launch integration",
        [ Alcotest.test_case "launch events" `Quick test_launch_events;
          Alcotest.test_case "reorders traced" `Quick
            test_reorder_events_on_weak_chip;
          Alcotest.test_case "SC never reorders" `Quick
            test_sequential_chip_never_reorders ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_trace_backend_determinism ] );
      ( "metrics export",
        [ Alcotest.test_case "to_assoc round-trip" `Quick
            test_metrics_to_assoc_round_trip ] ) ]
