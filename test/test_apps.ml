(* The ten application case studies. *)

let native seed = Test_util.fresh_sim ~chip:Gpusim.Chip.k20 ~seed ()

let sc seed = Test_util.fresh_sim ~chip:Gpusim.Chip.sequential ~seed ()

let result =
  Alcotest.testable
    (fun ppf -> function
      | Ok () -> Fmt.string ppf "Ok"
      | Error e -> Fmt.pf ppf "Error %s" e)
    ( = )

let test_registry () =
  Alcotest.(check int) "ten case studies" 10 (List.length Apps.Registry.all);
  Alcotest.(check int) "seven fence-free apps" 7
    (List.length Apps.Registry.fence_free);
  Alcotest.(check bool) "lookup" true (Apps.Registry.by_name "CBE-DOT" <> None);
  Alcotest.(check bool) "unknown" true (Apps.Registry.by_name "nope" = None)

let test_nf_variants_fence_free () =
  List.iter
    (fun app ->
      List.iter
        (fun k ->
          if not app.Apps.App.has_fences then
            (* -nf variants run Stripped even when asked for Original; their
               declared kernels may still contain the source fences, but the
               fence-site basis must strip them. *)
            ignore k)
        app.Apps.App.kernels;
      Alcotest.(check bool)
        (app.Apps.App.name ^ " has fence-insertion candidates")
        true
        (Apps.App.fence_sites app <> []))
    Apps.Registry.all

let check_app_under ~make_sim ~fencing ~expect_pass app ~seeds =
  List.iter
    (fun seed ->
      let sim = make_sim seed in
      let r = app.Apps.App.run sim fencing in
      if expect_pass then
        Alcotest.check result
          (Printf.sprintf "%s seed %d" app.Apps.App.name seed)
          (Ok ()) r)
    seeds

let test_all_pass_on_sc () =
  List.iter
    (fun app ->
      check_app_under ~make_sim:sc ~fencing:Apps.App.Original ~expect_pass:true
        app ~seeds:[ 1; 2; 3 ])
    Apps.Registry.all

let test_all_pass_native_weak () =
  (* Natively (no stress) the apps essentially never fail (Sec. 4.3). *)
  List.iter
    (fun app ->
      check_app_under ~make_sim:native ~fencing:Apps.App.Original
        ~expect_pass:true app ~seeds:[ 10; 11; 12; 13; 14 ])
    Apps.Registry.all

let test_conservative_stable_under_stress () =
  (* With a fence after every access, no error appears even under
     sys-str+ (this is what makes conservative fencing the sound upper
     bound of Sec. 6). *)
  let env = Test_util.sys_plus_env Gpusim.Chip.k20 in
  List.iter
    (fun app ->
      check_app_under
        ~make_sim:(fun seed -> Test_util.fresh_sim ~chip:Gpusim.Chip.k20 ~env ~seed ())
        ~fencing:Apps.App.Conservative ~expect_pass:true app
        ~seeds:[ 20; 21; 22; 23; 24 ])
    Apps.Registry.all

let errors_under_stress app ~chip ~runs =
  let env = Test_util.sys_plus_env chip in
  let master = Gpusim.Rng.create 99 in
  let errs = ref 0 in
  for _ = 1 to runs do
    let sim =
      Test_util.fresh_sim ~chip ~env ~seed:(Gpusim.Rng.bits30 master) ()
    in
    match app.Apps.App.run sim Apps.App.Original with
    | Ok () -> ()
    | Error _ -> incr errs
  done;
  !errs

let test_buggy_apps_fail_under_stress () =
  (* Sec. 4.3: weak behaviour observed in all applications except sdk-red
     and cub-scan.  80 runs at the observed rates make a miss vanishingly
     unlikely for the ones we assert on. *)
  List.iter
    (fun name ->
      let app = Option.get (Apps.Registry.by_name name) in
      let errs = errors_under_stress app ~chip:Gpusim.Chip.k20 ~runs:80 in
      Alcotest.(check bool)
        (Printf.sprintf "%s fails under sys-str+ (%d/80)" name errs)
        true (errs > 0))
    [ "cbe-ht"; "cbe-dot"; "ct-octree"; "tpo-tm"; "sdk-red-nf"; "ls-bh-nf" ]

let test_fenced_apps_never_fail_under_stress () =
  (* The fences shipped with sdk-red and cub-scan are sufficient. *)
  List.iter
    (fun name ->
      let app = Option.get (Apps.Registry.by_name name) in
      let errs = errors_under_stress app ~chip:Gpusim.Chip.k20 ~runs:60 in
      Alcotest.(check int) (name ^ " never fails") 0 errs)
    [ "sdk-red"; "cub-scan" ]

let test_apps_deterministic_per_seed () =
  List.iter
    (fun app ->
      let run seed =
        let sim = native seed in
        app.Apps.App.run sim Apps.App.Original
      in
      Alcotest.check result
        (app.Apps.App.name ^ " deterministic")
        (run 77) (run 77))
    Apps.Registry.all

let test_table4_metadata () =
  List.iter
    (fun app ->
      Alcotest.(check bool)
        (app.Apps.App.name ^ " has descriptions")
        true
        (app.Apps.App.source <> ""
        && app.Apps.App.communication <> ""
        && app.Apps.App.post_condition <> ""))
    Apps.Registry.all;
  let fenced =
    List.filter (fun a -> a.Apps.App.has_fences) Apps.Registry.all
  in
  Alcotest.(check (list string)) "three apps ship fences"
    [ "sdk-red"; "cub-scan"; "ls-bh" ]
    (List.map (fun a -> a.Apps.App.name) fenced)

let () =
  Alcotest.run "apps"
    [ ( "structure",
        [ Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "fence sites" `Quick test_nf_variants_fence_free;
          Alcotest.test_case "Table 4 metadata" `Quick test_table4_metadata ] );
      ( "correctness",
        [ Alcotest.test_case "all pass on SC" `Quick test_all_pass_on_sc;
          Alcotest.test_case "all pass natively" `Quick
            test_all_pass_native_weak;
          Alcotest.test_case "conservative fencing stable" `Slow
            test_conservative_stable_under_stress;
          Alcotest.test_case "deterministic per seed" `Quick
            test_apps_deterministic_per_seed ] );
      ( "weak-memory bugs",
        [ Alcotest.test_case "buggy apps fail under sys-str+" `Slow
            test_buggy_apps_fail_under_stress;
          Alcotest.test_case "shipped fences sufficient" `Slow
            test_fenced_apps_never_fail_under_stress ] ) ]
