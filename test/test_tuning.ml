(* The tuning pipeline: ε-patch extraction on synthetic data, plus a tiny
   end-to-end campaign on the quick budget. *)

let test_patch_row_solid () =
  (* Eight contiguous samples at stride 8 above threshold = 64 words. *)
  let row = List.init 8 (fun i -> (64 + (8 * i), 10)) in
  Alcotest.(check (list int)) "one 64-word patch" [ 64 ]
    (Core.Patch_finder.patch_sizes_of_row ~eps:3 ~stride:8 row)

let test_patch_row_split () =
  let row =
    [ (0, 9); (8, 9); (16, 0); (24, 9); (32, 9); (40, 9); (48, 0) ]
  in
  Alcotest.(check (list int)) "two patches: 16 and 24 words" [ 24; 16 ]
    (Core.Patch_finder.patch_sizes_of_row ~eps:3 ~stride:8 row)

let test_patch_row_singleton_dropped () =
  (* A lone above-threshold sample cannot resolve a width at stride > 1. *)
  let row = [ (0, 0); (8, 9); (16, 0) ] in
  Alcotest.(check (list int)) "noise dropped" []
    (Core.Patch_finder.patch_sizes_of_row ~eps:3 ~stride:8 row)

let test_patch_row_threshold () =
  let row = [ (0, 3); (8, 3); (16, 3) ] in
  Alcotest.(check (list int)) "at threshold is not above it" []
    (Core.Patch_finder.patch_sizes_of_row ~eps:3 ~stride:8 row)

let test_patch_row_stride_one () =
  let row = [ (0, 9); (1, 9); (2, 0); (3, 9) ] in
  Alcotest.(check (list int)) "unit stride keeps singletons" [ 1; 2 ]
    (Core.Patch_finder.patch_sizes_of_row ~eps:3 ~stride:1 row)

let test_budget_scaling () =
  let b = Core.Budget.scale_runs Core.Budget.default 2.0 in
  Alcotest.(check int) "runs doubled"
    (2 * Core.Budget.default.Core.Budget.runs_patch)
    b.Core.Budget.runs_patch;
  let p = Core.Budget.paper in
  Alcotest.(check int) "paper C" 1000 p.Core.Budget.runs_patch;
  Alcotest.(check int) "paper L" 256 p.Core.Budget.max_location;
  Alcotest.(check int) "paper N" 5 p.Core.Budget.seq_max_len;
  Alcotest.(check int) "paper M" 64 p.Core.Budget.max_spread;
  Alcotest.(check int) "paper eps" 3 p.Core.Budget.noise_threshold

let test_shipped_table2 () =
  List.iter
    (fun chip ->
      let tuned = Core.Tuning.shipped ~chip in
      Alcotest.(check int)
        (chip.Gpusim.Chip.name ^ " spread is 2")
        2 tuned.Core.Stress.spread;
      let s = Core.Access_seq.to_string tuned.Core.Stress.sequence in
      let expected =
        match chip.Gpusim.Chip.name with
        | "980" -> "ld4 st"
        | "K5200" -> "ld3 st ld"
        | "Titan" | "K20" -> "ld st2 ld"
        | "770" -> "st2 ld2"
        | _ -> "ld st"
      in
      Alcotest.(check string) (chip.Gpusim.Chip.name ^ " sequence") expected s)
    Gpusim.Chip.all

let test_shipped_unknown_chip_warns () =
  (* Count warnings through a scratch reporter: a chip outside Table 2
     must fall back loudly, a Table 2 chip silently. *)
  let warnings = ref 0 in
  let saved = Logs.reporter () in
  let counting =
    { Logs.report =
        (fun _src level ~over k msgf ->
          if level = Logs.Warning then incr warnings;
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.ikfprintf (fun _ -> over (); k ()) Format.std_formatter
                fmt)) }
  in
  Logs.set_reporter counting;
  Logs.set_level (Some Logs.Warning);
  Fun.protect
    ~finally:(fun () -> Logs.set_reporter saved)
    (fun () ->
      ignore (Core.Tuning.shipped ~chip:Gpusim.Chip.k20);
      Alcotest.(check int) "known chip is silent" 0 !warnings;
      let fake = { Gpusim.Chip.k20 with Gpusim.Chip.name = "K21-typo" } in
      let tuned = Core.Tuning.shipped ~chip:fake in
      Alcotest.(check int) "unknown chip warns once" 1 !warnings;
      Alcotest.(check string) "and falls back to the untuned sequence"
        "ld st"
        (Core.Access_seq.to_string tuned.Core.Stress.sequence))

let test_shipped_strict_fails_closed () =
  (* Under --strict an unknown chip must not fall back to the untuned
     sequence: it fails closed so a typo'd chip cannot silently run a
     campaign with untuned parameters. *)
  let fake = { Gpusim.Chip.k20 with Gpusim.Chip.name = "K21-typo" } in
  Alcotest.(check bool) "strict is off by default" false
    (Core.Tuning.strict ());
  Core.Tuning.set_strict true;
  Fun.protect
    ~finally:(fun () -> Core.Tuning.set_strict false)
    (fun () ->
      Alcotest.(check bool) "strict flag reads back" true
        (Core.Tuning.strict ());
      (match Core.Tuning.shipped ~chip:fake with
      | _ -> Alcotest.fail "unknown chip must fail closed under --strict"
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "error names Table 2" true
          (Test_util.contains msg "Table 2"));
      (* Table 2 chips are unaffected by strict mode. *)
      Alcotest.(check string) "known chip still resolves" "ld st2 ld"
        (Core.Access_seq.to_string
           (Core.Tuning.shipped ~chip:Gpusim.Chip.k20).Core.Stress.sequence))

let test_quick_pipeline_runs () =
  (* End-to-end smoke on the quick budget: structure, not statistics. *)
  let r =
    Core.Tuning.run ~chip:Gpusim.Chip.titan ~seed:2 ~budget:Core.Budget.quick ()
  in
  Alcotest.(check bool) "patch size positive" true
    (r.Core.Tuning.patch.Core.Patch_finder.chosen > 0);
  Alcotest.(check bool) "winner non-empty" true
    (Core.Access_seq.length r.Core.Tuning.sequences.Core.Seq_finder.winner > 0);
  Alcotest.(check bool) "spread in range" true
    (r.Core.Tuning.spreads.Core.Spread_finder.winner >= 1
    && r.Core.Tuning.spreads.Core.Spread_finder.winner
       <= Core.Budget.quick.Core.Budget.max_spread);
  let table = r.Core.Tuning.sequences.Core.Seq_finder.table in
  Alcotest.(check int) "all sequences scored"
    (List.length (Core.Access_seq.all ~max_len:Core.Budget.quick.Core.Budget.seq_max_len))
    (List.length table)

let test_seq_rank_layout () =
  let r =
    Core.Seq_finder.run ~chip:Gpusim.Chip.titan ~seed:3
      ~budget:Core.Budget.quick ~patch:32 ()
  in
  List.iter
    (fun idiom ->
      let rows = Core.Seq_finder.rank_for r idiom in
      let ranks = List.map (fun (rank, _, _) -> rank) rows in
      Alcotest.(check (list int)) "ranks are 1..n"
        (List.init (List.length rows) (fun i -> i + 1))
        ranks;
      let scores = List.map (fun (_, _, s) -> s) rows in
      Alcotest.(check bool) "descending" true
        (List.sort (fun a b -> compare b a) scores = scores))
    Litmus.Test.idioms

let () =
  Alcotest.run "tuning"
    [ ( "patch extraction",
        [ Alcotest.test_case "solid row" `Quick test_patch_row_solid;
          Alcotest.test_case "split row" `Quick test_patch_row_split;
          Alcotest.test_case "singleton dropped" `Quick
            test_patch_row_singleton_dropped;
          Alcotest.test_case "threshold strict" `Quick test_patch_row_threshold;
          Alcotest.test_case "stride one" `Quick test_patch_row_stride_one ] );
      ( "budgets and defaults",
        [ Alcotest.test_case "scaling" `Quick test_budget_scaling;
          Alcotest.test_case "shipped Table 2" `Quick test_shipped_table2;
          Alcotest.test_case "unknown chip warns" `Quick
            test_shipped_unknown_chip_warns;
          Alcotest.test_case "strict fails closed" `Quick
            test_shipped_strict_fails_closed ] );
      ( "pipeline",
        [ Alcotest.test_case "quick pipeline" `Slow test_quick_pipeline_runs;
          Alcotest.test_case "rank layout" `Slow test_seq_rank_layout ] ) ]
