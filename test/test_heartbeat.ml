(* Fleet observability: the heartbeat codec and emitter, staleness
   classification, the fleet aggregation rules, the /status golden
   document, the HTTP endpoint server, and the Prometheus exposition. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let tmp_hb () =
  let f = Filename.temp_file "gpuwmm-test" ".hb" in
  Sys.remove f;
  f

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)

let record_gen =
  let open QCheck.Gen in
  let finite_pos = map (fun f -> Float.abs f) (float_bound_exclusive 1e6) in
  let small = int_bound 10_000 in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let* pid = int_range 1 1_000_000 in
  let* shard =
    oneof
      [ return None;
        map (fun (k, n) -> Some (Printf.sprintf "%d/%d" k n))
          (pair (int_range 1 9) (int_range 1 9)) ]
  in
  let* seq = small in
  let* t = finite_pos in
  let* interval_s = map (fun f -> 0.01 +. f) finite_pos in
  let* final = bool in
  let* label = name in
  let* jobs_done = small in
  let* jobs_total = small in
  let* cached = small in
  let* errors = small in
  let* rate = finite_pos in
  let* eta_s = option finite_pos in
  let* retried = small in
  let* quarantined = small in
  let* minor_words = finite_pos in
  let* minor_collections = small in
  let* major_collections = small in
  let* counters = list_size (int_bound 4) (pair name small) in
  return
    { Core.Heartbeat.pid; shard; seq; t; interval_s; final; label; jobs_done;
      jobs_total; cached; errors; rate; eta_s; retried; quarantined;
      minor_words; minor_collections; major_collections; counters }

let prop_record_round_trip =
  QCheck.Test.make ~name:"Heartbeat: of_json (to_json r) = Ok r" ~count:300
    (QCheck.make record_gen)
    (fun r ->
      (* The codec also survives the actual printer/parser pair. *)
      match Core.Json.of_string (Core.Json.to_string (Core.Heartbeat.to_json r)) with
      | Error _ -> false
      | Ok j -> Core.Heartbeat.of_json j = Ok r)

let base_record =
  { Core.Heartbeat.pid = 101; shard = Some "1/2"; seq = 2; t = 0.0;
    interval_s = 1.0; final = false; label = "campaign"; jobs_done = 3;
    jobs_total = 5; cached = 1; errors = 2; rate = 0.0; eta_s = None;
    retried = 1; quarantined = 0; minor_words = 0.0; minor_collections = 0;
    major_collections = 0; counters = [ ("exec.jobs", 3) ] }

let test_of_json_rejects_foreign () =
  let bad j =
    match Core.Heartbeat.of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "decoded a non-heartbeat record"
  in
  bad (Core.Json.Assoc [ ("rec", Core.Json.String "job") ]);
  bad (Core.Json.Assoc [ ("pid", Core.Json.Int 1) ]);
  bad
    (Core.Json.Assoc
       [ ("rec", Core.Json.String "hb"); ("pid", Core.Json.String "x") ])

let test_stream_round_trip () =
  let path = tmp_hb () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "missing stream is empty" true
        (Core.Heartbeat.load path = []);
      let r2 = { base_record with Core.Heartbeat.seq = 3; jobs_done = 4 } in
      Core.Heartbeat.append ~path base_record;
      Core.Heartbeat.append ~path r2;
      (* A torn line (killed mid-write) and foreign junk are skipped. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"rec\":\"hb\",\"pid\":9";
      close_out oc;
      Alcotest.(check bool) "both records load, oldest first" true
        (Core.Heartbeat.load path = [ base_record; r2 ]);
      Alcotest.(check bool) "latest is the newest record" true
        (Core.Heartbeat.latest path = Some r2))

(* ------------------------------------------------------------------ *)
(* Staleness                                                            *)

let test_classify_boundaries () =
  let r = { base_record with Core.Heartbeat.t = 100.0; interval_s = 1.0 } in
  let check name now expect =
    Alcotest.(check string) name
      (Core.Heartbeat.liveness_name expect)
      (Core.Heartbeat.liveness_name (Core.Heartbeat.classify ~now r))
  in
  check "fresh beat is running" 100.1 Core.Heartbeat.Running;
  check "within 1.5 intervals is running" 101.4 Core.Heartbeat.Running;
  check "past 1.5 intervals is stale" 101.7 Core.Heartbeat.Stale;
  (* The promise `gpuwmm status` makes: dead within 2 heartbeat
     intervals of the last beat. *)
  check "at 2 intervals is dead" 102.0 Core.Heartbeat.Dead;
  check "long quiet is dead" 200.0 Core.Heartbeat.Dead;
  let final = { r with Core.Heartbeat.final = true } in
  Alcotest.(check string) "a final beat never ages into dead" "done"
    (Core.Heartbeat.liveness_name (Core.Heartbeat.classify ~now:1e9 final))

let test_eta_cold_start () =
  (* No ETA from a single completion: the first inter-tick sample
     extrapolates a campaign from one job. *)
  Alcotest.(check bool) "no live completions, no ETA" true
    (Core.Exec.eta_of ~live_done:0 ~remaining:10 ~ewma:2.0 = None);
  Alcotest.(check bool) "one live completion, no ETA" true
    (Core.Exec.eta_of ~live_done:1 ~remaining:10 ~ewma:2.0 = None);
  Alcotest.(check bool) "cold EWMA, no ETA" true
    (Core.Exec.eta_of ~live_done:5 ~remaining:10 ~ewma:0.0 = None);
  Alcotest.(check (option (float 1e-9))) "warm: remaining / rate"
    (Some 5.0)
    (Core.Exec.eta_of ~live_done:2 ~remaining:10 ~ewma:2.0)

(* ------------------------------------------------------------------ *)
(* The emitter                                                          *)

let test_emitter_beats_and_finalises () =
  let path = tmp_hb () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let e =
        Core.Heartbeat.start ~interval_s:0.05 ~shard:"1/4" ~path ()
      in
      Unix.sleepf 0.18;
      Core.Heartbeat.stop e;
      let beats = Core.Heartbeat.load path in
      Alcotest.(check bool) "several beats landed" true
        (List.length beats >= 3);
      let last = List.nth beats (List.length beats - 1) in
      Alcotest.(check bool) "stream ends with a final beat" true
        last.Core.Heartbeat.final;
      Alcotest.(check int) "beats carry this process's pid"
        (Unix.getpid ()) last.Core.Heartbeat.pid;
      Alcotest.(check (option string)) "beats carry the shard spec"
        (Some "1/4") last.Core.Heartbeat.shard;
      List.iteri
        (fun i b -> Alcotest.(check int) "seq is dense" i b.Core.Heartbeat.seq)
        beats)

(* ------------------------------------------------------------------ *)
(* Fleet aggregation                                                    *)

(* Two shard workers and the driving parent.  The invariant the CI
   endpoint check relies on: fleet totals are the sum of the shard
   workers alone — the driver's full-plan replay view is display-only. *)
let write_fleet dir =
  let w path r =
    let p = Filename.concat dir path in
    Core.Heartbeat.append ~path:p r;
    p
  in
  let shard1 =
    w "a.jsonl.hb"
      { base_record with Core.Heartbeat.pid = 101; shard = Some "1/2";
        jobs_done = 3; jobs_total = 5; cached = 1; errors = 2 }
  in
  let shard2 =
    w "b.jsonl.hb"
      { base_record with Core.Heartbeat.pid = 102; shard = Some "2/2";
        seq = 4; final = true; jobs_done = 5; jobs_total = 5; cached = 0;
        errors = 1; retried = 0 }
  in
  let driver =
    w "c.jsonl.hb"
      { base_record with Core.Heartbeat.pid = 100; shard = None;
        jobs_done = 9; jobs_total = 10; cached = 8; errors = 3; retried = 0 }
  in
  [ shard1; shard2; driver ]

let with_fleet f =
  let dir = Filename.temp_file "gpuwmm-fleet" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f (write_fleet dir))

let test_fleet_sums_shards () =
  with_fleet (fun paths ->
      let fleet = Core.Fleetview.load ~now:0.0 paths in
      Alcotest.(check int) "three workers" 3
        (List.length fleet.Core.Fleetview.workers);
      (* 3 + 5 from the shards; the driver's 9/10 replay view does not
         double-count. *)
      Alcotest.(check int) "done sums shard workers" 8
        fleet.Core.Fleetview.f_done;
      Alcotest.(check int) "total sums shard workers" 10
        fleet.Core.Fleetview.f_total;
      Alcotest.(check int) "errors sum shard workers" 3
        fleet.Core.Fleetview.f_errors;
      Alcotest.(check int) "retried sums shard workers" 1
        fleet.Core.Fleetview.f_retried;
      Alcotest.(check int) "one finished worker" 1
        fleet.Core.Fleetview.f_finished;
      Alcotest.(check int) "no dead workers at now = t" 0
        fleet.Core.Fleetview.f_dead;
      (* Shard workers sort first, by k; the driver trails. *)
      Alcotest.(check (list (option string))) "row order"
        [ Some "1/2"; Some "2/2"; None ]
        (List.map
           (fun w -> w.Core.Fleetview.w_last.Core.Heartbeat.shard)
           fleet.Core.Fleetview.workers))

let test_fleet_driver_only () =
  (* An unsharded campaign: the single driver row IS the fleet. *)
  let path = tmp_hb () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Core.Heartbeat.append ~path
        { base_record with Core.Heartbeat.shard = None; jobs_done = 4;
          jobs_total = 9 };
      let fleet = Core.Fleetview.load ~now:0.0 [ path ] in
      Alcotest.(check int) "driver counts when no shards" 4
        fleet.Core.Fleetview.f_done;
      Alcotest.(check int) "driver total" 9 fleet.Core.Fleetview.f_total)

let test_fleet_flags_dead () =
  with_fleet (fun paths ->
      (* Two intervals after the last beat of the non-final shards. *)
      let fleet = Core.Fleetview.load ~now:2.0 paths in
      Alcotest.(check int) "quiet workers classified dead" 2
        fleet.Core.Fleetview.f_dead;
      Alcotest.(check int) "the final-beat worker stays done" 1
        fleet.Core.Fleetview.f_finished;
      Alcotest.(check bool) "summary line flags the deaths" true
        (let line = Core.Fleetview.summary_line fleet in
         let re = "DEAD" in
         let n = String.length line and m = String.length re in
         let rec find i =
           i + m <= n && (String.sub line i m = re || find (i + 1))
         in
         find 0))

let test_status_golden () =
  with_fleet (fun paths ->
      let fleet = Core.Fleetview.load ~now:0.0 paths in
      Alcotest.(check string) "golden/status.json"
        (read_file "golden/status.json")
        (Core.Json.to_string (Core.Fleetview.render_json fleet) ^ "\n"))

(* ------------------------------------------------------------------ *)
(* The HTTP endpoint server                                             *)

let test_httpd_serves_and_stops () =
  let hits = Atomic.make 0 in
  let server =
    Core.Httpd.start ~port:0 (fun path ->
        Atomic.incr hits;
        match path with
        | "/ok" -> Core.Httpd.respond "hello\n"
        | "/json" ->
          Core.Httpd.respond ~content_type:"application/json" "{}\n"
        | "/boom" -> failwith "handler exploded"
        | _ -> Core.Httpd.respond ~status:404 "not found\n")
  in
  Fun.protect
    ~finally:(fun () -> Core.Httpd.stop server)
    (fun () ->
      let port = Core.Httpd.port server in
      Alcotest.(check bool) "picked a real port" true (port > 0);
      Alcotest.(check (pair int string)) "200 with body" (200, "hello\n")
        (Core.Httpd.fetch ~port "/ok");
      Alcotest.(check int) "404 for unknown paths" 404
        (fst (Core.Httpd.fetch ~port "/nope"));
      Alcotest.(check int) "handler exceptions become 500" 500
        (fst (Core.Httpd.fetch ~port "/boom"));
      Alcotest.(check int) "query strings are stripped" 200
        (fst (Core.Httpd.fetch ~port "/ok?x=1"));
      Alcotest.(check bool) "every request reached the handler" true
        (Atomic.get hits >= 4));
  (* After stop the port refuses connections. *)
  match Core.Httpd.fetch ~port:(Core.Httpd.port server) "/ok" with
  | exception Unix.Unix_error _ -> ()
  | status, _ ->
    (* A new process may have grabbed the port; only a served 200
       "hello" would prove the server survived stop. *)
    Alcotest.(check bool) "stopped server no longer answers" false
      (status = 200)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition and stamped exports                            *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec find i = i + m <= n && (String.sub hay i m = needle || find (i + 1)) in
  find 0

let test_prometheus_exposition () =
  Core.Telemetry.reset ();
  let c = Core.Telemetry.counter "test.prom" in
  Core.Telemetry.add c 3;
  let h = Core.Telemetry.histogram "test.lat" in
  Core.Telemetry.observe h 0.5;
  let text = Core.Telemetry.prometheus (Core.Telemetry.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true
        (contains text needle))
    [ "# TYPE gpuwmm_test_prom counter"; "gpuwmm_test_prom 3";
      "# TYPE gpuwmm_test_lat_seconds histogram";
      "gpuwmm_test_lat_seconds_bucket{le=\"1\"} 1";
      "gpuwmm_test_lat_seconds_bucket{le=\"+Inf\"} 1";
      "gpuwmm_test_lat_seconds_sum 0.5"; "gpuwmm_test_lat_seconds_count 1" ]

let test_fleet_prometheus () =
  with_fleet (fun paths ->
      let text =
        Core.Fleetview.prometheus (Core.Fleetview.load ~now:0.0 paths)
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("fleet gauges contain " ^ needle) true
            (contains text needle))
        [ "gpuwmm_fleet_jobs_done 8"; "gpuwmm_fleet_jobs_total 10";
          "gpuwmm_fleet_workers{state=\"running\"} 2";
          "gpuwmm_fleet_workers{state=\"done\"} 1";
          "gpuwmm_shard_jobs_done{shard=\"1/2\"} 3";
          "gpuwmm_shard_jobs_done{shard=\"2/2\"} 5";
          "gpuwmm_shard_jobs_total{shard=\"1/2\"} 5";
          "gpuwmm_shard_jobs_total{shard=\"2/2\"} 5" ])

let sample_record =
  { Gpusim.Trace.tick = 5;
    event = Gpusim.Trace.Access { tid = 1; addr = 7; write = true; atomic = false } }

let test_stamped_exports () =
  let text = Core.Telemetry.jsonl ~pid:7 ~shard:"1/2" [ sample_record ] in
  Alcotest.(check bool) "jsonl lines carry the stamp" true
    (contains text "\"pid\":7" && contains text "\"shard\":\"1/2\"");
  (* Stamps are transparent to the decoder: the round-trip still holds. *)
  (match Core.Telemetry.jsonl_parse text with
  | Ok [ r ] ->
    Alcotest.(check bool) "stamped record round-trips" true (r = sample_record)
  | _ -> Alcotest.fail "stamped jsonl failed to parse");
  let spans =
    [ { Core.Telemetry.label = "campaign"; index = 0; worker = 0;
        queued_at = 100.0; started_at = 100.5; ended_at = 101.0 } ]
  in
  let doc =
    Core.Json.to_string
      (Core.Telemetry.chrome_trace ~pid:9 ~shard:"2/4" ~span_base:0.0 ~spans
         [ sample_record ])
  in
  Alcotest.(check bool) "process_name metadata labels the track" true
    (contains doc "\"process_name\"" && contains doc "gpuwmm pid 9 shard 2/4");
  Alcotest.(check bool) "span timestamps stay absolute under span_base 0" true
    (contains doc "\"ts\":100500000");
  Alcotest.(check bool) "events ride the real pid" true
    (contains doc "\"pid\":9")

let () =
  Alcotest.run "heartbeat"
    [ ( "codec",
        [ QCheck_alcotest.to_alcotest prop_record_round_trip;
          Alcotest.test_case "rejects foreign records" `Quick
            test_of_json_rejects_foreign;
          Alcotest.test_case "stream round-trip, torn tail" `Quick
            test_stream_round_trip ] );
      ( "staleness",
        [ Alcotest.test_case "classification boundaries" `Quick
            test_classify_boundaries;
          Alcotest.test_case "eta cold start" `Quick test_eta_cold_start ] );
      ( "emitter",
        [ Alcotest.test_case "beats and finalises" `Quick
            test_emitter_beats_and_finalises ] );
      ( "fleet",
        [ Alcotest.test_case "totals sum the shard workers" `Quick
            test_fleet_sums_shards;
          Alcotest.test_case "driver-only fleet" `Quick test_fleet_driver_only;
          Alcotest.test_case "dead workers flagged" `Quick
            test_fleet_flags_dead;
          Alcotest.test_case "status golden" `Quick test_status_golden ] );
      ( "httpd",
        [ Alcotest.test_case "serves and stops" `Quick
            test_httpd_serves_and_stops ] );
      ( "exposition",
        [ Alcotest.test_case "prometheus text" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "fleet gauges" `Quick test_fleet_prometheus;
          Alcotest.test_case "stamped exports" `Quick test_stamped_exports ]
      ) ]
