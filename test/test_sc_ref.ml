(* The sequentially consistent oracle. *)

let mp_threads () =
  Litmus.Test.threads { Litmus.Test.idiom = Litmus.Test.MP; distance = 0 } ~x:0

let test_mp_outcomes () =
  let inst = { Litmus.Test.idiom = Litmus.Test.MP; distance = 0 } in
  Alcotest.(check (list (pair int int)))
    "MP under SC" [ (0, 0); (0, 1); (1, 1) ]
    (Litmus.Test.sc_outcomes inst)

let test_lb_outcomes () =
  let inst = { Litmus.Test.idiom = Litmus.Test.LB; distance = 3 } in
  Alcotest.(check (list (pair int int)))
    "LB under SC" [ (0, 0); (0, 1); (1, 0) ]
    (Litmus.Test.sc_outcomes inst)

let test_sb_outcomes () =
  let inst = { Litmus.Test.idiom = Litmus.Test.SB; distance = 0 } in
  Alcotest.(check (list (pair int int)))
    "SB under SC" [ (0, 1); (1, 0); (1, 1) ]
    (Litmus.Test.sc_outcomes inst)

let test_weak_outcome_not_sc () =
  (* The weak query of each idiom names exactly the outcome SC forbids. *)
  List.iter
    (fun idiom ->
      let inst = { Litmus.Test.idiom; distance = 5 } in
      let sc = Litmus.Test.sc_outcomes inst in
      List.iter
        (fun r1 ->
          List.iter
            (fun r2 ->
              let weak = Litmus.Test.weak inst ~r1 ~r2 in
              let reachable = List.mem (r1, r2) sc in
              if weak then
                Alcotest.(check bool)
                  (Printf.sprintf "%s (%d,%d) weak implies not SC"
                     (Litmus.Test.idiom_name idiom) r1 r2)
                  false reachable)
            [ 0; 1 ])
        [ 0; 1 ])
    Litmus.Test.idioms

let test_allows () =
  let threads, args = mp_threads () in
  let state =
    { Gpusim.Sc_ref.memory = []; registers = [] }
  in
  Alcotest.(check bool) "empty projection always allowed" true
    (Gpusim.Sc_ref.allows ~threads ~args ~init:[] state)

let test_rejects_loops () =
  let open Gpusim.Kbuild in
  let k = kernel "loop" ~params:[] [ while_ (int 1) [] ] in
  Alcotest.(check bool) "loops rejected" true
    (try
       ignore
         (Gpusim.Sc_ref.run ~threads:[ k ] ~args:[ [] ] ~init:[] ~watch_mem:[]
            ~watch_regs:[] ());
       false
     with Invalid_argument _ -> true)

let test_single_thread_deterministic () =
  let open Gpusim.Kbuild in
  let k =
    kernel "seq" ~params:[]
      [ store (int 0) (int 4);
        load "x" (int 0);
        store (int 1) (reg "x" + int 1) ]
  in
  let states =
    Gpusim.Sc_ref.run ~threads:[ k ] ~args:[ [] ] ~init:[] ~watch_mem:[ 0; 1 ]
      ~watch_regs:[] ()
  in
  Alcotest.(check int) "one final state" 1 (List.length states);
  match states with
  | [ s ] ->
    Alcotest.(check (list (pair int int))) "memory" [ (0, 4); (1, 5) ]
      s.Gpusim.Sc_ref.memory
  | _ -> Alcotest.fail "expected exactly one state"

let test_interleaving_count () =
  (* Two racing unfenced stores: both final values possible. *)
  let open Gpusim.Kbuild in
  let k v = kernel "st" ~params:[] [ store (int 0) (int v) ] in
  let states =
    Gpusim.Sc_ref.run ~threads:[ k 1; k 2 ] ~args:[ []; [] ] ~init:[]
      ~watch_mem:[ 0 ] ~watch_regs:[] ()
  in
  Alcotest.(check int) "two final states" 2 (List.length states)

let test_atomic_in_sc () =
  let open Gpusim.Kbuild in
  let k = kernel "inc" ~params:[] [ atomic_add (int 0) (int 1) ] in
  let states =
    Gpusim.Sc_ref.run ~threads:[ k; k ] ~args:[ []; [] ] ~init:[]
      ~watch_mem:[ 0 ] ~watch_regs:[] ()
  in
  Alcotest.(check (list (pair int int))) "both increments always land"
    [ (0, 2) ]
    (List.concat_map (fun s -> s.Gpusim.Sc_ref.memory) states)

let test_barrier_orders_block () =
  (* Within one block, a barrier separates t0's store from t1's load: the
     load can never observe the initial value. *)
  let open Gpusim.Kbuild in
  let k0 = kernel "t0" ~params:[] [ store (int 0) (int 1); barrier ] in
  let k1 = kernel "t1" ~params:[] [ barrier; load "r" (int 0) ] in
  let states =
    Gpusim.Sc_ref.run ~blocks:[| 0; 0 |] ~threads:[ k0; k1 ]
      ~args:[ []; [] ] ~init:[] ~watch_mem:[] ~watch_regs:[ (1, "r") ] ()
  in
  Alcotest.(check int) "one final state" 1 (List.length states);
  List.iter
    (fun (s : Gpusim.Sc_ref.state) ->
      Alcotest.(check (list (triple int string int)))
        "load after barrier sees the store" [ (1, "r", 1) ] s.registers)
    states

let test_barrier_no_order_across_blocks () =
  (* One thread per block (the default layout): the same program no longer
     synchronises, so the load can race with the store. *)
  let open Gpusim.Kbuild in
  let k0 = kernel "t0" ~params:[] [ store (int 0) (int 1); barrier ] in
  let k1 = kernel "t1" ~params:[] [ barrier; load "r" (int 0) ] in
  let states =
    Gpusim.Sc_ref.run ~threads:[ k0; k1 ] ~args:[ []; [] ] ~init:[]
      ~watch_mem:[] ~watch_regs:[ (1, "r") ] ()
  in
  Alcotest.(check int) "both load results reachable" 2 (List.length states)

let divergence_rejected name threads blocks =
  Alcotest.(check bool) name true
    (try
       ignore
         (Gpusim.Sc_ref.run ~blocks ~threads
            ~args:(List.map (fun _ -> []) threads)
            ~init:[] ~watch_mem:[] ~watch_regs:[] ());
       false
     with Invalid_argument m ->
       m = "Sc_ref: barrier divergence")

let test_barrier_divergence_rejected () =
  let open Gpusim.Kbuild in
  (* One member exits without reaching the barrier the other waits at. *)
  divergence_rejected "exited member"
    [ kernel "t0" ~params:[] [ barrier ]; kernel "t1" ~params:[] [] ]
    [| 0; 0 |];
  (* Conditional barrier: one branch synchronises, the other never does —
     divergence on the interleavings where the skipping thread exits. *)
  divergence_rejected "conditional barrier"
    [ kernel "t0" ~params:[] [ barrier ];
      kernel "t1" ~params:[] [ if_ (tid = int 0) [ barrier ] [] ] ]
    [| 0; 0 |]

let test_barrier_divergence_detects_deadlock () =
  (* Both threads reach *a* barrier, but thread 1 waits at a second one
     that can never fill: the oracle must reject rather than hang. *)
  let open Gpusim.Kbuild in
  divergence_rejected "deadlock"
    [ kernel "t0" ~params:[] [ barrier ];
      kernel "t1" ~params:[] [ barrier; barrier ] ]
    [| 0; 0 |]

let () =
  Alcotest.run "sc_ref"
    [ ( "oracle",
        [ Alcotest.test_case "MP outcomes" `Quick test_mp_outcomes;
          Alcotest.test_case "LB outcomes" `Quick test_lb_outcomes;
          Alcotest.test_case "SB outcomes" `Quick test_sb_outcomes;
          Alcotest.test_case "weak outcomes are non-SC" `Quick
            test_weak_outcome_not_sc;
          Alcotest.test_case "allows" `Quick test_allows;
          Alcotest.test_case "rejects loops" `Quick test_rejects_loops;
          Alcotest.test_case "deterministic single thread" `Quick
            test_single_thread_deterministic;
          Alcotest.test_case "interleavings" `Quick test_interleaving_count;
          Alcotest.test_case "atomics" `Quick test_atomic_in_sc;
          Alcotest.test_case "barrier orders a block" `Quick
            test_barrier_orders_block;
          Alcotest.test_case "barrier is per-block" `Quick
            test_barrier_no_order_across_blocks;
          Alcotest.test_case "barrier divergence rejected" `Quick
            test_barrier_divergence_rejected;
          Alcotest.test_case "barrier deadlock rejected" `Quick
            test_barrier_divergence_detects_deadlock ] ) ]
