(* The sequentially consistent oracle. *)

let mp_threads () =
  Litmus.Test.threads { Litmus.Test.idiom = Litmus.Test.MP; distance = 0 } ~x:0

let test_mp_outcomes () =
  let inst = { Litmus.Test.idiom = Litmus.Test.MP; distance = 0 } in
  Alcotest.(check (list (pair int int)))
    "MP under SC" [ (0, 0); (0, 1); (1, 1) ]
    (Litmus.Test.sc_outcomes inst)

let test_lb_outcomes () =
  let inst = { Litmus.Test.idiom = Litmus.Test.LB; distance = 3 } in
  Alcotest.(check (list (pair int int)))
    "LB under SC" [ (0, 0); (0, 1); (1, 0) ]
    (Litmus.Test.sc_outcomes inst)

let test_sb_outcomes () =
  let inst = { Litmus.Test.idiom = Litmus.Test.SB; distance = 0 } in
  Alcotest.(check (list (pair int int)))
    "SB under SC" [ (0, 1); (1, 0); (1, 1) ]
    (Litmus.Test.sc_outcomes inst)

let test_weak_outcome_not_sc () =
  (* The weak query of each idiom names exactly the outcome SC forbids. *)
  List.iter
    (fun idiom ->
      let inst = { Litmus.Test.idiom; distance = 5 } in
      let sc = Litmus.Test.sc_outcomes inst in
      List.iter
        (fun r1 ->
          List.iter
            (fun r2 ->
              let weak = Litmus.Test.weak inst ~r1 ~r2 in
              let reachable = List.mem (r1, r2) sc in
              if weak then
                Alcotest.(check bool)
                  (Printf.sprintf "%s (%d,%d) weak implies not SC"
                     (Litmus.Test.idiom_name idiom) r1 r2)
                  false reachable)
            [ 0; 1 ])
        [ 0; 1 ])
    Litmus.Test.idioms

let test_allows () =
  let threads, args = mp_threads () in
  let state =
    { Gpusim.Sc_ref.memory = []; registers = [] }
  in
  Alcotest.(check bool) "empty projection always allowed" true
    (Gpusim.Sc_ref.allows ~threads ~args ~init:[] state)

let test_rejects_loops () =
  let open Gpusim.Kbuild in
  let k = kernel "loop" ~params:[] [ while_ (int 1) [] ] in
  Alcotest.(check bool) "loops rejected" true
    (try
       ignore
         (Gpusim.Sc_ref.run ~threads:[ k ] ~args:[ [] ] ~init:[] ~watch_mem:[]
            ~watch_regs:[]);
       false
     with Invalid_argument _ -> true)

let test_single_thread_deterministic () =
  let open Gpusim.Kbuild in
  let k =
    kernel "seq" ~params:[]
      [ store (int 0) (int 4);
        load "x" (int 0);
        store (int 1) (reg "x" + int 1) ]
  in
  let states =
    Gpusim.Sc_ref.run ~threads:[ k ] ~args:[ [] ] ~init:[] ~watch_mem:[ 0; 1 ]
      ~watch_regs:[]
  in
  Alcotest.(check int) "one final state" 1 (List.length states);
  match states with
  | [ s ] ->
    Alcotest.(check (list (pair int int))) "memory" [ (0, 4); (1, 5) ]
      s.Gpusim.Sc_ref.memory
  | _ -> Alcotest.fail "expected exactly one state"

let test_interleaving_count () =
  (* Two racing unfenced stores: both final values possible. *)
  let open Gpusim.Kbuild in
  let k v = kernel "st" ~params:[] [ store (int 0) (int v) ] in
  let states =
    Gpusim.Sc_ref.run ~threads:[ k 1; k 2 ] ~args:[ []; [] ] ~init:[]
      ~watch_mem:[ 0 ] ~watch_regs:[]
  in
  Alcotest.(check int) "two final states" 2 (List.length states)

let test_atomic_in_sc () =
  let open Gpusim.Kbuild in
  let k = kernel "inc" ~params:[] [ atomic_add (int 0) (int 1) ] in
  let states =
    Gpusim.Sc_ref.run ~threads:[ k; k ] ~args:[ []; [] ] ~init:[]
      ~watch_mem:[ 0 ] ~watch_regs:[]
  in
  Alcotest.(check (list (pair int int))) "both increments always land"
    [ (0, 2) ]
    (List.concat_map (fun s -> s.Gpusim.Sc_ref.memory) states)

let () =
  Alcotest.run "sc_ref"
    [ ( "oracle",
        [ Alcotest.test_case "MP outcomes" `Quick test_mp_outcomes;
          Alcotest.test_case "LB outcomes" `Quick test_lb_outcomes;
          Alcotest.test_case "SB outcomes" `Quick test_sb_outcomes;
          Alcotest.test_case "weak outcomes are non-SC" `Quick
            test_weak_outcome_not_sc;
          Alcotest.test_case "allows" `Quick test_allows;
          Alcotest.test_case "rejects loops" `Quick test_rejects_loops;
          Alcotest.test_case "deterministic single thread" `Quick
            test_single_thread_deterministic;
          Alcotest.test_case "interleavings" `Quick test_interleaving_count;
          Alcotest.test_case "atomics" `Quick test_atomic_in_sc ] ) ]
