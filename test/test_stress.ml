(* Stressing strategies and environments. *)

let seq_stld = [ Core.Access_seq.St; Core.Access_seq.Ld ]

let test_kernel_shape () =
  let k = Core.Stress.kernel ~sequence:seq_stld ~n_locations:2 in
  Alcotest.(check (list string)) "parameters"
    [ "scratch"; "l0"; "l1" ] k.Gpusim.Kernel.params;
  (* Location selection reads no global memory; the loop does one access
     per sequence element. *)
  Alcotest.(check int) "two global accesses" 2
    (List.length (Gpusim.Kernel.global_access_sites k))

let test_kernel_rejects_zero_locations () =
  Alcotest.(check bool) "invalid" true
    (try
       ignore (Core.Stress.kernel ~sequence:seq_stld ~n_locations:0);
       false
     with Invalid_argument _ -> true)

let test_intensity_full_and_diluted () =
  (* Enough threads per location: full (= n_locations).  Starved: less. *)
  let full = Core.Stress.(intensity_for ~n_threads:32 ~n_locations:2) in
  Alcotest.(check (float 1e-9)) "full at 16/location" 2.0 full;
  let diluted = Core.Stress.(intensity_for ~n_threads:32 ~n_locations:16) in
  Alcotest.(check bool) "diluted below full" true (diluted < 16.0);
  Alcotest.(check bool) "still positive" true (diluted > 0.0)

let test_names () =
  Alcotest.(check string) "no" "no-str" (Core.Stress.name Core.Stress.No_stress);
  Alcotest.(check string) "sys" "sys-str"
    (Core.Stress.name
       (Core.Stress.Sys { sequence = seq_stld; spread = 2; regions = 16 }));
  Alcotest.(check string) "rand" "rand-str"
    (Core.Stress.name (Core.Stress.Rand { scratch_words = 64 }));
  Alcotest.(check string) "cache" "cache-str" (Core.Stress.name Core.Stress.Cache)

let test_environment_labels () =
  let tuned = Core.Tuning.shipped ~chip:Gpusim.Chip.k20 in
  let labels =
    List.map (fun e -> e.Core.Environment.label) (Core.Environment.all ~tuned)
  in
  Alcotest.(check (list string)) "the eight environments of Table 5"
    [ "no-str-"; "no-str+"; "sys-str-"; "sys-str+"; "rand-str-"; "rand-str+";
      "cache-str-"; "cache-str+" ]
    labels

let spec_of strategy =
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.k20 ~seed:4 () in
  Core.Stress.make_stress_litmus strategy sim ~app_grid:2 ~app_block:1

let test_no_stress_yields_none () =
  Alcotest.(check bool) "no spec" true (spec_of Core.Stress.No_stress = None)

let test_sys_spec () =
  match
    spec_of (Core.Stress.Sys { sequence = seq_stld; spread = 2; regions = 16 })
  with
  | None -> Alcotest.fail "expected a stress spec"
  | Some spec ->
    Alcotest.(check int) "period = sequence length" 2 spec.Gpusim.Sim.period;
    Alcotest.(check bool) "has blocks" true (spec.Gpusim.Sim.blocks > 0);
    Alcotest.(check bool) "warmup covers prologues" true
      (spec.Gpusim.Sim.warmup
      > 3 * spec.Gpusim.Sim.blocks * spec.Gpusim.Sim.block_size);
    (* The two location arguments address distinct patch regions. *)
    let l0 = List.assoc "l0" spec.Gpusim.Sim.args in
    let l1 = List.assoc "l1" spec.Gpusim.Sim.args in
    Alcotest.(check bool) "distinct regions" true (l0 <> l1);
    Alcotest.(check int) "patch aligned l0" 0
      (l0 mod Gpusim.Chip.k20.Gpusim.Chip.weakness.patch_size);
    Alcotest.(check int) "patch aligned l1" 0
      (l1 mod Gpusim.Chip.k20.Gpusim.Chip.weakness.patch_size)

let test_cache_spec_uses_l2 () =
  match spec_of Core.Stress.Cache with
  | None -> Alcotest.fail "expected a stress spec"
  | Some spec ->
    Alcotest.(check int) "scratchpad is L2-sized"
      Gpusim.Chip.k20.Gpusim.Chip.l2_words
      (List.assoc "words" spec.Gpusim.Sim.args)

let test_scratchpad_disjoint_from_app () =
  (* The stressing scratchpad must never overlap application data. *)
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.k20 ~seed:4 () in
  let app_base = Gpusim.Sim.alloc sim 100 in
  match
    Core.Stress.make_stress_litmus
      (Core.Stress.Sys { sequence = seq_stld; spread = 2; regions = 16 })
      sim ~app_grid:2 ~app_block:1
  with
  | None -> Alcotest.fail "expected a stress spec"
  | Some spec ->
    let scratch = List.assoc "scratch" spec.Gpusim.Sim.args in
    Alcotest.(check bool) "scratch above app data" true
      (scratch >= app_base + 100)

let test_stress_env_does_not_change_results () =
  (* A correct (racy-free) kernel computes the same answer under stress:
     stress memory and threads are disjoint. *)
  let open Gpusim.Kbuild in
  let k =
    kernel "sum" ~params:[ "out" ]
      [ global_tid "g"; atomic_add (param "out") (reg "g") ]
  in
  let run env =
    let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.titan ~seed:8 () in
    (match env with Some e -> Gpusim.Sim.set_environment sim e | None -> ());
    let out = Gpusim.Sim.alloc sim 1 in
    ignore (Gpusim.Sim.launch sim ~grid:4 ~block:4 k ~args:[ ("out", out) ]);
    Gpusim.Sim.read sim out
  in
  let native = run None in
  let stressed = run (Some (Test_util.sys_plus_env Gpusim.Chip.titan)) in
  Alcotest.(check int) "same sum" native stressed

let () =
  Alcotest.run "stress"
    [ ( "unit",
        [ Alcotest.test_case "kernel shape" `Quick test_kernel_shape;
          Alcotest.test_case "zero locations rejected" `Quick
            test_kernel_rejects_zero_locations;
          Alcotest.test_case "intensity" `Quick test_intensity_full_and_diluted;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "environment labels" `Quick
            test_environment_labels;
          Alcotest.test_case "no-stress spec" `Quick test_no_stress_yields_none;
          Alcotest.test_case "sys spec" `Quick test_sys_spec;
          Alcotest.test_case "cache spec" `Quick test_cache_spec_uses_l2;
          Alcotest.test_case "scratchpad disjoint" `Quick
            test_scratchpad_disjoint_from_app;
          Alcotest.test_case "stress preserves correct results" `Quick
            test_stress_env_does_not_change_results ] ) ]
