(* Shared helpers for the test suites (linked into every test executable). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* A device with a given chip and ambient environment. *)
let fresh_sim ?(chip = Gpusim.Chip.k20) ?env ~seed () =
  let sim = Gpusim.Sim.create ~chip ~seed () in
  (match env with Some e -> Gpusim.Sim.set_environment sim e | None -> ());
  sim

(* Run a kernel on the SC reference chip and return a reader. *)
let run_sc ?(grid = 1) ?(block = 1) ?(shared_words = 64) kernel args =
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.sequential ~seed:1 () in
  let result =
    Gpusim.Sim.launch sim ~shared_words ~grid ~block kernel ~args
  in
  (sim, result)

let sys_plus_env chip =
  Core.Environment.for_app
    (Core.Environment.sys_plus ~tuned:(Core.Tuning.shipped ~chip))
