(* Reordering diagnosis: symbolisation and aggregation. *)

let test_describe_regions () =
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.k20 ~seed:1 () in
  let d = Gpusim.Diagnosis.attach sim in
  Gpusim.Diagnosis.add_region d "flags" ~base:100 ~len:8;
  Alcotest.(check string) "inside region" "flags[+3]"
    (Gpusim.Diagnosis.describe d 103);
  Alcotest.(check string) "outside region" "@99"
    (Gpusim.Diagnosis.describe d 99)

let test_empty_report () =
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.sequential ~seed:1 () in
  let d = Gpusim.Diagnosis.attach sim in
  let open Gpusim.Kbuild in
  let k = kernel "noop" ~params:[] [ store (int 0) (int 1) ] in
  ignore (Gpusim.Sim.launch sim ~grid:1 ~block:1 k ~args:[]);
  Alcotest.(check int) "SC chip never reorders" 0
    (List.length (Gpusim.Diagnosis.report d))

let test_spinlock_bypass_diagnosed () =
  (* An unfenced critical section: the mutex release must eventually show
     up as overtaking the protected store. *)
  let k =
    let open Gpusim.Kbuild in
    kernel "cs" ~params:[ "mutex"; "data" ]
      (lock (param "mutex")
      @ [ load "v" (param "data");
          store (param "data") (reg "v" + int 1);
          unlock (param "mutex") ])
  in
  let found = ref false in
  let attempt = ref 0 in
  while (not !found) && !attempt < 50 do
    incr attempt;
    let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.c2075 ~seed:!attempt () in
    let d = Gpusim.Diagnosis.attach sim in
    Gpusim.Diagnosis.add_region d "mutex" ~base:0 ~len:1;
    Gpusim.Diagnosis.add_region d "data" ~base:64 ~len:1;
    ignore
      (Gpusim.Sim.launch sim ~grid:4 ~block:1 k
         ~args:[ ("mutex", 0); ("data", 64) ]);
    if
      List.exists
        (fun f ->
          f.Gpusim.Diagnosis.overtaken = "data[+0]"
          && f.Gpusim.Diagnosis.committed = "mutex[+0]")
        (Gpusim.Diagnosis.report d)
    then found := true
  done;
  Alcotest.(check bool)
    (Printf.sprintf "unlock-overtakes-store diagnosed within %d attempts"
       !attempt)
    true !found

let test_clear () =
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.k20 ~seed:5 () in
  let d = Gpusim.Diagnosis.attach sim in
  let open Gpusim.Kbuild in
  let k =
    kernel "two" ~params:[]
      [ store (int 0) (int 1); store (int 40) (int 1);
        atomic_add (int 80) (int 1) ]
  in
  ignore (Gpusim.Sim.launch sim ~grid:2 ~block:1 k ~args:[]);
  Gpusim.Diagnosis.clear d;
  Alcotest.(check int) "cleared" 0 (List.length (Gpusim.Diagnosis.report d))

let () =
  Alcotest.run "diagnosis"
    [ ( "unit",
        [ Alcotest.test_case "describe" `Quick test_describe_regions;
          Alcotest.test_case "empty report" `Quick test_empty_report;
          Alcotest.test_case "spinlock bypass" `Quick
            test_spinlock_bypass_diagnosed;
          Alcotest.test_case "clear" `Quick test_clear ] ) ]
