(* Interpreter semantics, checked on the sequentially consistent reference
   chip where results must be deterministic. *)

open Gpusim.Kbuild

let run1 ?(grid = 1) ?(block = 1) ?(shared_words = 64) k args =
  Test_util.run_sc ~grid ~block ~shared_words k args

let finished (r : Gpusim.Sim.result) =
  match r.Gpusim.Sim.outcome with
  | Gpusim.Sim.Finished -> true
  | Gpusim.Sim.Timeout | Gpusim.Sim.Trapped _ -> false

let test_arithmetic () =
  let k =
    kernel "arith" ~params:[ "out" ]
      [ def "a" (int 7);
        def "b" (int 3);
        store (param "out" + int 0) (reg "a" + reg "b");
        store (param "out" + int 1) (reg "a" - reg "b");
        store (param "out" + int 2) (reg "a" * reg "b");
        store (param "out" + int 3) (reg "a" / reg "b");
        store (param "out" + int 4) (reg "a" mod reg "b");
        store (param "out" + int 5) (min_ (reg "a") (reg "b"));
        store (param "out" + int 6) (max_ (reg "a") (reg "b"));
        store (param "out" + int 7) (not_ (int 0));
        store (param "out" + int 8) (reg "a" > reg "b");
        store (param "out" + int 9) (reg "a" <= reg "b") ]
  in
  let sim, r = run1 k [ ("out", 0) ] in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check (list int)) "results"
    [ 10; 4; 21; 2; 1; 3; 7; 1; 1; 0 ]
    (Array.to_list (Gpusim.Sim.read_array sim ~base:0 ~len:10))

let test_control_flow () =
  let k =
    kernel "ctrl" ~params:[ "out" ]
      [ def "sum" (int 0);
        def "i" (int 0);
        while_
          (reg "i" < int 10)
          [ when_ ((reg "i" mod int 2) = int 0) [ def "sum" (reg "sum" + reg "i") ];
            def "i" (reg "i" + int 1) ];
        if_ (reg "sum" = int 20)
          [ store (param "out") (int 111) ]
          [ store (param "out") (int 222) ] ]
  in
  let sim, _ = run1 k [ ("out", 0) ] in
  Alcotest.(check int) "sum of evens < 10" 111 (Gpusim.Sim.read sim 0)

let test_thread_ids () =
  let k =
    kernel "ids" ~params:[ "out" ]
      [ global_tid "g"; store (param "out" + reg "g") (tid + (int 100 * bid)) ]
  in
  let sim, _ = run1 ~grid:2 ~block:3 k [ ("out", 0) ] in
  Alcotest.(check (list int)) "tid and bid"
    [ 0; 1; 2; 100; 101; 102 ]
    (Array.to_list (Gpusim.Sim.read_array sim ~base:0 ~len:6))

let test_atomics () =
  let k =
    kernel "atomics" ~params:[ "out" ]
      [ atomic_add (param "out") (int 1);
        atomic_max (param "out" + int 1) tid;
        atomic_min (param "out" + int 2) (int 0 - tid) ]
  in
  let sim, _ = run1 ~block:8 k [ ("out", 0) ] in
  Alcotest.(check int) "atomicAdd counts threads" 8 (Gpusim.Sim.read sim 0);
  Alcotest.(check int) "atomicMax" 7 (Gpusim.Sim.read sim 1);
  Alcotest.(check int) "atomicMin" (-7) (Gpusim.Sim.read sim 2)

let test_cas_mutual_exclusion () =
  (* Classic lock-protected increment: must equal thread count even on a
     weak chip because the critical section is load-compute-store with a
     fence before unlock. *)
  let k =
    kernel "locked" ~params:[ "mutex"; "out" ]
      (lock (param "mutex")
      @ [ load "v" (param "out");
          store (param "out") (reg "v" + int 1);
          fence;
          unlock (param "mutex") ])
  in
  let sim = Test_util.fresh_sim ~chip:Gpusim.Chip.titan ~seed:11 () in
  let r = Gpusim.Sim.launch sim ~grid:4 ~block:2 k ~args:[ ("mutex", 0); ("out", 1) ] in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check int) "all increments" 8 (Gpusim.Sim.read sim 1)

let test_barrier_orders_shared () =
  let k =
    kernel "bar" ~params:[ "out" ]
      [ store ~space:Gpusim.Kernel.Shared tid (tid * int 2);
        barrier;
        load ~space:Gpusim.Kernel.Shared "v" ((tid + int 1) mod bdim);
        store (param "out" + tid) (reg "v") ]
  in
  let sim, r = run1 ~block:4 k [ ("out", 0) ] in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check (list int)) "neighbour values"
    [ 2; 4; 6; 0 ]
    (Array.to_list (Gpusim.Sim.read_array sim ~base:0 ~len:4))

let test_barrier_divergence_detected () =
  let k =
    kernel "div" ~params:[]
      [ when_ (tid = int 0) [ return ]; barrier ]
  in
  let _, r = run1 ~block:4 k [] in
  Alcotest.(check bool) "divergence flagged" true r.Gpusim.Sim.barrier_divergence

let test_trap_division_by_zero () =
  let k = kernel "crash" ~params:[ "out" ] [ store (param "out") (int 1 / int 0) ] in
  let _, r = run1 k [ ("out", 0) ] in
  (match r.Gpusim.Sim.outcome with
  | Gpusim.Sim.Trapped msg ->
    Alcotest.(check bool) "mentions division" true
      (Test_util.contains msg "division")
  | Gpusim.Sim.Finished | Gpusim.Sim.Timeout ->
    Alcotest.fail "expected a trap")

let test_trap_out_of_bounds () =
  let k = kernel "oob" ~params:[] [ store (int (-3)) (int 1) ] in
  let _, r = run1 k [] in
  (match r.Gpusim.Sim.outcome with
  | Gpusim.Sim.Trapped _ -> ()
  | Gpusim.Sim.Finished | Gpusim.Sim.Timeout -> Alcotest.fail "expected a trap")

let test_timeout () =
  let k = kernel "spin" ~params:[] [ while_ (int 1) [ def "x" (int 0) ] ] in
  let sim = Gpusim.Sim.create ~chip:Gpusim.Chip.sequential ~seed:1 () in
  let r = Gpusim.Sim.launch sim ~max_ticks:500 ~grid:1 ~block:1 k ~args:[] in
  (match r.Gpusim.Sim.outcome with
  | Gpusim.Sim.Timeout -> ()
  | Gpusim.Sim.Finished | Gpusim.Sim.Trapped _ ->
    Alcotest.fail "expected a timeout")

let test_rand_bounds () =
  let k =
    kernel "rand" ~params:[ "out" ]
      [ def "i" (int 0);
        while_
          (reg "i" < int 50)
          [ def "r" (Gpusim.Kernel.Rand (int 10));
            when_ ((reg "r" < int 0) || (reg "r" >= int 10))
              [ store (param "out") (int 1) ];
            def "i" (reg "i" + int 1) ] ]
  in
  let sim, _ = run1 k [ ("out", 0) ] in
  Alcotest.(check int) "never out of bounds" 0 (Gpusim.Sim.read sim 0)

let test_missing_arg_rejected () =
  let k = kernel "p" ~params:[ "a" ] [ def "x" (param "a") ] in
  Alcotest.check_raises "missing argument"
    (Invalid_argument
       "Code.compile p: parameters (a) do not match arguments ()")
    (fun () -> ignore (Gpusim.Code.compile k ~args:[]))

let test_randomisation_preserves_results () =
  (* A data-parallel kernel must compute the same result with thread-id
     randomisation on: logical ids are permuted, not changed. *)
  let k =
    kernel "sq" ~params:[ "out" ]
      [ global_tid "g"; store (param "out" + reg "g") (reg "g" * reg "g") ]
  in
  let env =
    { Gpusim.Sim.randomise = true;
      make_stress = (fun _ ~app_grid:_ ~app_block:_ -> None) }
  in
  let sim = Test_util.fresh_sim ~chip:Gpusim.Chip.titan ~env ~seed:3 () in
  let r = Gpusim.Sim.launch sim ~grid:4 ~block:8 k ~args:[ ("out", 0) ] in
  Alcotest.(check bool) "finished" true (finished r);
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "out[%d]" i) (Stdlib.( * ) i i) v)
    (Gpusim.Sim.read_array sim ~base:0 ~len:32)

let () =
  Alcotest.run "interp"
    [ ( "semantics",
        [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "thread ids" `Quick test_thread_ids;
          Alcotest.test_case "atomics" `Quick test_atomics;
          Alcotest.test_case "spinlock mutual exclusion" `Quick
            test_cas_mutual_exclusion;
          Alcotest.test_case "barrier orders shared memory" `Quick
            test_barrier_orders_shared;
          Alcotest.test_case "barrier divergence" `Quick
            test_barrier_divergence_detected;
          Alcotest.test_case "trap: division by zero" `Quick
            test_trap_division_by_zero;
          Alcotest.test_case "trap: out of bounds" `Quick
            test_trap_out_of_bounds;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "rand bounds" `Quick test_rand_bounds;
          Alcotest.test_case "missing argument" `Quick
            test_missing_arg_rejected;
          Alcotest.test_case "randomisation preserves results" `Quick
            test_randomisation_preserves_results ] ) ]
