(* Kernel AST: labelling, access-site enumeration, and the fence
   transformation passes used by empirical fence insertion. *)

open Gpusim.Kbuild

let sample =
  kernel "sample" ~params:[ "a"; "out" ]
    [ global_tid "t";
      load "x" (param "a" + reg "t");
      when_ (reg "x" > int 0)
        [ store (param "out") (reg "x"); fence ];
      while_ (reg "t" < int 4)
        [ atomic_add (param "out") (int 1); def "t" (reg "t" + int 1) ];
      barrier ]

let test_label_preorder () =
  let sids = ref [] in
  Gpusim.Kernel.iter_stmts (fun s -> sids := s.Gpusim.Kernel.sid :: !sids) sample;
  let sids = List.rev !sids in
  Alcotest.(check (list int))
    "pre-order ids are 0..n-1" (List.init (List.length sids) Fun.id) sids

let test_max_sid () =
  Alcotest.(check int) "max sid"
    (Stdlib.( - ) (Gpusim.Kernel.count_stmts sample) 1)
    (Gpusim.Kernel.max_sid sample)

let test_global_access_sites () =
  let sites = Gpusim.Kernel.global_access_sites sample in
  (* load, store, atomic = three global accesses. *)
  Alcotest.(check int) "three global access sites" 3 (List.length sites)

let test_fence_sites () =
  Alcotest.(check int) "one fence" 1
    (List.length (Gpusim.Kernel.fence_sites sample))

let test_strip_fences () =
  let stripped = Gpusim.Kernel.strip_fences sample in
  Alcotest.(check int) "no fences left" 0
    (List.length (Gpusim.Kernel.fence_sites stripped));
  Alcotest.(check int) "one statement fewer"
    (Stdlib.( - ) (Gpusim.Kernel.count_stmts sample) 1)
    (Gpusim.Kernel.count_stmts stripped)

let test_insert_all () =
  let base = Gpusim.Kernel.label (Gpusim.Kernel.strip_fences sample) in
  let fenced =
    Gpusim.Kernel.insert_fences_after ~scope:Gpusim.Kernel.Device
      ~sites:(fun _ -> true) base
  in
  Alcotest.(check int) "a fence per global access"
    (List.length (Gpusim.Kernel.global_access_sites base))
    (List.length (Gpusim.Kernel.fence_sites fenced))

let test_insert_selected () =
  let base = Gpusim.Kernel.label (Gpusim.Kernel.strip_fences sample) in
  let sites = Gpusim.Kernel.global_access_sites base in
  let chosen = List.hd sites in
  let fenced =
    Gpusim.Kernel.insert_fences_after ~scope:Gpusim.Kernel.Device
      ~sites:(fun s -> Stdlib.( = ) s chosen) base
  in
  Alcotest.(check int) "exactly one fence" 1
    (List.length (Gpusim.Kernel.fence_sites fenced))

let test_insert_preserves_sites () =
  (* Inserted fences carry the site id of the access they follow, so the
     original access sites remain identifiable. *)
  let base = Gpusim.Kernel.label (Gpusim.Kernel.strip_fences sample) in
  let fenced =
    Gpusim.Kernel.insert_fences_after ~scope:Gpusim.Kernel.Device
      ~sites:(fun _ -> true) base
  in
  Alcotest.(check (list int)) "access sites unchanged"
    (Gpusim.Kernel.global_access_sites base)
    (Gpusim.Kernel.global_access_sites fenced)

let test_shared_not_fence_candidate () =
  let k =
    kernel "sh" ~params:[]
      [ store ~space:Gpusim.Kernel.Shared (int 0) (int 1);
        load ~space:Gpusim.Kernel.Shared "x" (int 0) ]
  in
  Alcotest.(check int) "shared accesses are not candidates" 0
    (List.length (Gpusim.Kernel.global_access_sites k))

let test_pp_mentions_constructs () =
  let s = Gpusim.Kernel_pp.to_string ~sids:true sample in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "pretty-print contains %S" frag)
        true
        (Test_util.contains s frag))
    [ "__global__"; "atomicAdd"; "__threadfence"; "__syncthreads"; "while";
      "s0:" ]

let () =
  Alcotest.run "kernel"
    [ ( "passes",
        [ Alcotest.test_case "label pre-order" `Quick test_label_preorder;
          Alcotest.test_case "max sid" `Quick test_max_sid;
          Alcotest.test_case "global access sites" `Quick
            test_global_access_sites;
          Alcotest.test_case "fence sites" `Quick test_fence_sites;
          Alcotest.test_case "strip fences" `Quick test_strip_fences;
          Alcotest.test_case "insert everywhere" `Quick test_insert_all;
          Alcotest.test_case "insert selected" `Quick test_insert_selected;
          Alcotest.test_case "insert preserves sites" `Quick
            test_insert_preserves_sites;
          Alcotest.test_case "shared not candidate" `Quick
            test_shared_not_fence_candidate;
          Alcotest.test_case "pretty printer" `Quick test_pp_mentions_constructs
        ] ) ]
