(* Command-line interface: reproduce every table and figure of the paper,
   tune chips, test and harden applications, and run litmus tests. *)

open Cmdliner

let progress msg = Logs.info (fun m -> m "%s" msg)

let setup_log verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning);
  (* The execution engine owns campaign progress/throughput reporting;
     point it at the logger. *)
  Core.Exec.set_progress (Some progress)

(* ------------------------------------------------------------------ *)
(* Common arguments                                                     *)

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print progress messages.")

let seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed; equal seeds reproduce runs exactly.")

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~docv:"N"
        ~env:(Cmd.Env.info "GPUWMM_JOBS")
        ~doc:
          "Worker domains for campaign execution.  Defaults to \
           $(b,GPUWMM_JOBS) if set, else the runtime's recommended domain \
           count.  $(docv) = 1 selects the serial backend.  Results are \
           bit-identical for every job count at a given --seed.")

let backend_of jobs =
  match jobs with
  | Some n -> Core.Exec.backend_of_jobs n
  | None -> Core.Exec.default_backend ()

let chip_conv =
  let parse s =
    match Gpusim.Chip.by_name s with
    | Some c -> Ok c
    | None ->
      if String.lowercase_ascii s = "sc" then Ok Gpusim.Chip.sequential
      else
        Error
          (`Msg
            (Printf.sprintf "unknown chip %S (known: %s)" s
               (String.concat ", "
                  (List.map (fun c -> c.Gpusim.Chip.name) Gpusim.Chip.all))))
  in
  Arg.conv (parse, fun ppf c -> Fmt.string ppf c.Gpusim.Chip.name)

let chip =
  Arg.(
    value
    & opt chip_conv Gpusim.Chip.k20
    & info [ "chip" ] ~docv:"CHIP" ~doc:"Target chip (default K20).")

let chips =
  Arg.(
    value
    & opt (list chip_conv) [ Gpusim.Chip.k20 ]
    & info [ "chips" ] ~docv:"CHIPS"
        ~doc:"Comma-separated chips; use --all-chips for all seven.")

let all_chips =
  Arg.(value & flag & info [ "all-chips" ] ~doc:"Use all seven chips.")

let app_conv =
  let parse s =
    match Apps.Registry.by_name s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown application %S (known: %s)" s
             (String.concat ", "
                (List.map (fun a -> a.Apps.App.name) Apps.Registry.all))))
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf a.Apps.App.name)

let budget_term =
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Use the paper-scale campaign budget (D = L = 256, C = 1000); \
             hours per chip.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "runs-scale" ] ~docv:"F"
          ~doc:"Scale per-point execution counts by F.")
  in
  let make full scale =
    let b = if full then Core.Budget.paper else Core.Budget.default in
    if scale = 1.0 then b else Core.Budget.scale_runs b scale
  in
  Term.(const make $ full $ scale)

let resolve_chips chips all = if all then Gpusim.Chip.all else chips

let csv_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write raw data as CSV to FILE.")

let write_file p contents =
  let oc = open_out p in
  output_string oc contents;
  close_out oc;
  Fmt.pr "wrote %s@." p

let write_csv path contents =
  match path with None -> () | Some p -> write_file p contents

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)

let chips_cmd =
  let run verbose =
    setup_log verbose;
    Core.Report.table1 Fmt.stdout
  in
  Cmd.v (Cmd.info "chips" ~doc:"List the seven simulated GPUs (Table 1).")
    Term.(const run $ verbose)

let tuned_envs chip =
  Core.Environment.all ~tuned:(Core.Tuning.shipped ~chip)

let litmus_cmd =
  let idiom_conv =
    Arg.conv
      ( (fun s ->
          match String.uppercase_ascii s with
          | "MP" -> Ok Litmus.Test.MP
          | "LB" -> Ok Litmus.Test.LB
          | "SB" -> Ok Litmus.Test.SB
          | _ -> Error (`Msg "idiom must be MP, LB or SB")),
        fun ppf i -> Fmt.string ppf (Litmus.Test.idiom_name i) )
  in
  let idiom =
    Arg.(value & opt idiom_conv Litmus.Test.MP & info [ "idiom" ] ~docv:"T")
  in
  let distance =
    Arg.(value & opt int 64 & info [ "distance" ] ~docv:"D")
  in
  let runs = Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N") in
  let env_name =
    Arg.(
      value & opt string "sys-str-"
      & info [ "env" ] ~docv:"ENV"
          ~doc:"Environment: no-str-, sys-str-, sys-str+, rand-str-, ...")
  in
  let run verbose seed chip idiom distance runs env_name =
    setup_log verbose;
    let envs = tuned_envs chip in
    match
      List.find_opt (fun e -> e.Core.Environment.label = env_name) envs
    with
    | None ->
      Fmt.epr "unknown environment %s@." env_name;
      exit 1
    | Some env ->
      let inst = { Litmus.Test.idiom; distance } in
      let weak =
        Litmus.Runner.count_weak ~chip ~seed
          ~env:(Core.Environment.for_litmus env)
          ~runs inst
      in
      Fmt.pr "%s with d=%d on %s under %s: %d/%d weak@."
        (Litmus.Test.idiom_name idiom)
        distance chip.Gpusim.Chip.name env_name weak runs;
      Fmt.pr "SC-reachable outcomes: %a@."
        Fmt.(list ~sep:sp (parens (pair ~sep:comma int int)))
        (Litmus.Test.sc_outcomes inst)
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run a litmus test under a testing environment and count weak \
             behaviours.")
    Term.(
      const run $ verbose $ seed $ chip $ idiom $ distance $ runs $ env_name)

let tune_cmd =
  let run verbose seed chip budget jobs =
    setup_log verbose;
    let r = Core.Tuning.run ~backend:(backend_of jobs) ~chip ~seed ~budget () in
    Core.Report.table2 Fmt.stdout [ (r, r.Core.Tuning.elapsed_s /. 60.0) ];
    Core.Report.table3 Fmt.stdout r.Core.Tuning.sequences
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Run the full Sec. 3 tuning pipeline for one chip.")
    Term.(const run $ verbose $ seed $ chip $ budget_term $ jobs_term)

let test_cmd =
  let app_term =
    Arg.(
      value
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Single application (default: all ten).")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N") in
  let env_name =
    Arg.(value & opt string "sys-str+" & info [ "env" ] ~docv:"ENV")
  in
  let run verbose seed chip app runs env_name jobs =
    setup_log verbose;
    let envs = tuned_envs chip in
    match
      List.find_opt (fun e -> e.Core.Environment.label = env_name) envs
    with
    | None ->
      Fmt.epr "unknown environment %s@." env_name;
      exit 1
    | Some env ->
      let apps =
        match app with Some a -> [ a ] | None -> Apps.Registry.all
      in
      let rows =
        Core.Campaign.run ~backend:(backend_of jobs) ~chips:[ chip ]
          ~environments_for:(fun _ -> [ env ])
          ~apps ~runs ~seed ()
      in
      List.iter
        (fun row ->
          List.iter
            (fun cell ->
              Fmt.pr "%-12s %s %s: %d/%d erroneous runs%s@."
                cell.Core.Campaign.app chip.Gpusim.Chip.name env_name
                cell.Core.Campaign.errors cell.Core.Campaign.runs
                (match Core.Campaign.dominant cell with
                | None -> ""
                | Some (msg, n) ->
                  Printf.sprintf "  (dominant: %s x%d)" msg n))
            row.Core.Campaign.cells)
        rows
  in
  Cmd.v
    (Cmd.info "test"
       ~doc:"Repeatedly execute applications under a testing environment \
             and count erroneous runs (Sec. 4).")
    Term.(
      const run $ verbose $ seed $ chip $ app_term $ runs $ env_name
      $ jobs_term)

let harden_cmd =
  let app_term =
    Arg.(
      required
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Application to harden (fence-free).")
  in
  let stability =
    Arg.(value & opt int 200 & info [ "stability-runs" ] ~docv:"N")
  in
  let run verbose seed chip app stability jobs =
    setup_log verbose;
    let config =
      { (Core.Harden.default_config ~chip) with stability_runs = stability }
    in
    let r =
      Core.Harden.insert ~chip ~config ~backend:(backend_of jobs) ~app ~seed ()
    in
    Core.Report.table6 Fmt.stdout [ r ];
    (* Show the hardened kernels. *)
    List.iter
      (fun k ->
        let fenced =
          Apps.App.apply_fencing (Apps.App.Sites r.Core.Harden.fences) k
        in
        if
          Gpusim.Kernel.fence_sites fenced <> []
        then Fmt.pr "@.%s@." (Gpusim.Kernel_pp.to_string ~sids:true fenced))
      app.Apps.App.kernels
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:"Empirical fence insertion (Alg. 1) for one application.")
    Term.(
      const run $ verbose $ seed $ chip $ app_term $ stability $ jobs_term)

let inspect_cmd =
  let app_term =
    Arg.(
      required
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP")
  in
  let fencing =
    let fencing_conv =
      Arg.conv
        ( (fun s ->
            match String.lowercase_ascii s with
            | "original" -> Ok Apps.App.Original
            | "stripped" | "nf" -> Ok Apps.App.Stripped
            | "conservative" | "cons" -> Ok Apps.App.Conservative
            | _ -> Error (`Msg "fencing: original, stripped or conservative")),
          fun ppf _ -> Fmt.string ppf "<fencing>" )
    in
    Arg.(value & opt fencing_conv Apps.App.Original & info [ "fencing" ] ~docv:"F")
  in
  let run verbose app fencing =
    setup_log verbose;
    List.iter
      (fun k ->
        Fmt.pr "%s@."
          (Gpusim.Kernel_pp.to_string ~sids:true
             (Apps.App.apply_fencing fencing k)))
      app.Apps.App.kernels
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print an application's kernels (CUDA-like syntax).")
    Term.(const run $ verbose $ app_term $ fencing)

let target_cmd =
  let app_term =
    Arg.(
      required
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Application to analyse and test.")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N") in
  let run verbose seed chip app runs =
    setup_log verbose;
    (* Phase 1: one native run with the race detector attached. *)
    let sim = Gpusim.Sim.create ~chip ~seed () in
    let det = Gpusim.Race.attach sim in
    (match app.Apps.App.run sim Apps.App.Original with
    | Ok () -> ()
    | Error e -> Fmt.pr "(native observation run failed: %s)@." e);
    Gpusim.Race.detach sim det;
    Fmt.pr "communication locations observed in %s:@." app.Apps.App.name;
    Gpusim.Race.pp_findings Fmt.stdout (Gpusim.Race.findings det);
    let addresses = Gpusim.Race.data_locations det in
    (* Phase 2: targeted stress vs the tuned blind strategies. *)
    let tuned = Core.Tuning.shipped ~chip in
    let targeted =
      Core.Environment.make
        (Core.Stress.Targeted
           { sequence = tuned.Core.Stress.sequence; addresses })
        ~randomise:true
    in
    Fmt.pr "@.%d data location(s) targeted@." (List.length addresses);
    List.iter
      (fun env ->
        let cell = Core.Campaign.test_app ~chip ~env ~app ~runs ~seed in
        Fmt.pr "  %-10s %3d/%3d erroneous runs@." env.Core.Environment.label
          cell.Core.Campaign.errors cell.Core.Campaign.runs)
      [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
        Core.Environment.sys_plus ~tuned; targeted ]
  in
  Cmd.v
    (Cmd.info "target"
       ~doc:"Detect an application's communication locations with the              dynamic race detector and stress exactly their memory              partitions (the paper's future-work item (e)).")
    Term.(const run $ verbose $ seed $ chip $ app_term $ runs)

let trace_cmd =
  let app_term =
    Arg.(
      required
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Application to trace.")
  in
  let env_name =
    Arg.(
      value & opt string "sys-str+"
      & info [ "env" ] ~docv:"ENV"
          ~doc:"Testing environment: no-str-, sys-str+, rand-str+, ...")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Chrome trace-event output file; open in chrome://tracing or \
             ui.perfetto.dev.")
  in
  let jsonl_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Also write the raw event records as JSON Lines to FILE.")
  in
  let capacity =
    Arg.(
      value
      & opt int Gpusim.Trace.default_capacity
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Trace ring-buffer capacity; when a run emits more events, the \
             oldest are dropped.")
  in
  let run verbose seed chip app env_name out jsonl_out capacity =
    setup_log verbose;
    if capacity <= 0 then begin
      Fmt.epr "--capacity must be positive@.";
      exit 1
    end;
    match
      List.find_opt
        (fun e -> e.Core.Environment.label = env_name)
        (tuned_envs chip)
    with
    | None ->
      Fmt.epr "unknown environment %s@." env_name;
      exit 1
    | Some env ->
      let sim = Gpusim.Sim.create ~chip ~seed () in
      Gpusim.Sim.set_environment sim (Core.Environment.for_app env);
      let sink = Gpusim.Sim.trace sim in
      Gpusim.Trace.enable ~capacity sink;
      let outcome = app.Apps.App.run sim Apps.App.Original in
      let records = Gpusim.Trace.records sink in
      Fmt.pr "%s on %s under %s: %s@." app.Apps.App.name
        chip.Gpusim.Chip.name env_name
        (match outcome with Ok () -> "ok" | Error e -> "ERROR " ^ e);
      Fmt.pr "%d event(s) recorded (%d emitted, %d dropped by the ring)@."
        (List.length records)
        (Gpusim.Trace.emitted sink)
        (Gpusim.Trace.dropped sink);
      write_file out
        (Core.Json.to_string (Core.Telemetry.chrome_trace records) ^ "\n");
      Option.iter
        (fun p -> write_file p (Core.Telemetry.jsonl records))
        jsonl_out
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute one application with the event tracer enabled and export \
          the recorded simulator events (instruction issue and commit, \
          reorders, fences, barriers, contention samples) as a Chrome \
          trace-event file.")
    Term.(
      const run $ verbose $ seed $ chip $ app_term $ env_name $ out
      $ jsonl_out $ capacity)

let ablate_cmd =
  let runs = Arg.(value & opt int 150 & info [ "runs" ] ~docv:"N") in
  let run verbose seed chip runs =
    setup_log verbose;
    (* Ablate each ingredient of the tuned environment on one litmus
       instance, showing what each design choice buys. *)
    let inst = { Litmus.Test.idiom = Litmus.Test.SB; distance = 64 } in
    let tuned = Core.Tuning.shipped ~chip in
    let weak label strategy randomise =
      let env =
        Core.Environment.for_litmus (Core.Environment.make strategy ~randomise)
      in
      let n = Litmus.Runner.count_weak ~chip ~seed ~env ~runs inst in
      Fmt.pr "  %-34s %4d / %d weak@." label n runs
    in
    Fmt.pr "Ablation on %s, SB litmus test at distance 64:@."
      chip.Gpusim.Chip.name;
    let nat = Litmus.Runner.count_weak ~chip ~seed ~runs inst in
    Fmt.pr "  %-34s %4d / %d weak@." "no stress (baseline)" nat runs;
    weak "tuned (sequence + spread 2)" (Core.Stress.Sys tuned) false;
    weak "tuned + thread randomisation"
      (Core.Stress.Sys tuned) true;
    weak "worst sequence (pure stores)"
      (Core.Stress.Sys { tuned with sequence = [ Core.Access_seq.St ] })
      false;
    weak "over-spread (all 16 regions)"
      (Core.Stress.Sys { tuned with spread = 16 })
      false;
    weak "under-spread (1 region)"
      (Core.Stress.Sys { tuned with spread = 1 })
      false;
    weak "random locations (rand-str)"
      (Core.Stress.Rand { scratch_words = 1024 })
      false;
    weak "L2-walk (cache-str)" Core.Stress.Cache false
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Ablate the tuned environment's design choices (sequence,              spread, randomisation) on a litmus test.")
    Term.(const run $ verbose $ seed $ chip $ runs)

let run_litmus_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A .litmus test file.")
  in
  let runs = Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N") in
  let env_name =
    Arg.(value & opt string "sys-str+" & info [ "env" ] ~docv:"ENV")
  in
  let run verbose seed chip file runs env_name =
    setup_log verbose;
    let ic = open_in file in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    match Litmus.Lang.parse src with
    | Error e ->
      Fmt.epr "%s: %s@." file e;
      exit 1
    | Ok t -> (
      Fmt.pr "%a@." Litmus.Lang.pp t;
      let sc = Litmus.Lang.sc_allows t in
      Fmt.pr "condition reachable under SC: %b@." sc;
      match
        List.find_opt
          (fun e -> e.Core.Environment.label = env_name)
          (tuned_envs chip)
      with
      | None ->
        Fmt.epr "unknown environment %s@." env_name;
        exit 1
      | Some env ->
        let n =
          Litmus.Lang.count_satisfied ~chip ~seed
            ~env:(Core.Environment.for_litmus env) ~runs t
        in
        Fmt.pr "observed on %s under %s: %d/%d%s@." chip.Gpusim.Chip.name
          env_name n runs
          (if (not sc) && n > 0 then "  ** WEAK BEHAVIOUR **" else ""))
  in
  Cmd.v
    (Cmd.info "run-litmus"
       ~doc:"Parse a .litmus file, check its condition against the SC              oracle, and run it on the weak machine.")
    Term.(const run $ verbose $ seed $ chip $ file $ runs $ env_name)

(* ------------------------------------------------------------------ *)
(* Tables and figures                                                   *)

let table_cmd =
  let number =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Table number (1-6).")
  in
  let runs = Arg.(value & opt int 40 & info [ "runs" ] ~docv:"N") in
  let run verbose seed chips all number budget runs jobs =
    setup_log verbose;
    let chips = resolve_chips chips all in
    let backend = backend_of jobs in
    match number with
    | 1 -> Core.Report.table1 Fmt.stdout
    | 2 ->
      let results =
        List.map
          (fun chip ->
            let r = Core.Tuning.run ~backend ~chip ~seed ~budget () in
            (r, r.Core.Tuning.elapsed_s /. 60.0))
          chips
      in
      Core.Report.table2 Fmt.stdout results
    | 3 ->
      let chip = List.hd chips in
      let patch = Core.Patch_finder.run ~backend ~chip ~seed ~budget () in
      let r =
        Core.Seq_finder.run ~backend ~chip ~seed ~budget
          ~patch:patch.Core.Patch_finder.chosen ()
      in
      Core.Report.table3 Fmt.stdout r
    | 4 -> Core.Report.table4 Fmt.stdout
    | 5 ->
      let rows =
        Core.Campaign.run ~backend ~chips ~environments_for:tuned_envs
          ~apps:Apps.Registry.all ~runs ~seed ()
      in
      Core.Report.table5 Fmt.stdout rows
    | 6 ->
      let results =
        List.concat_map
          (fun app ->
            List.map
              (fun chip -> Core.Harden.insert ~chip ~backend ~app ~seed ())
              chips)
          Apps.Registry.fence_free
      in
      Core.Report.table6 Fmt.stdout results
    | n ->
      Fmt.epr "no table %d (the paper has tables 1-6)@." n;
      exit 1
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Reproduce a table of the paper.")
    Term.(
      const run $ verbose $ seed $ chips $ all_chips $ number $ budget_term
      $ runs $ jobs_term)

let figure_cmd =
  let number =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Figure number (3-5).")
  in
  let runs = Arg.(value & opt int 30 & info [ "runs" ] ~docv:"N") in
  let run verbose seed chips all number budget runs csv jobs =
    setup_log verbose;
    let chips = resolve_chips chips all in
    let backend = backend_of jobs in
    match number with
    | 3 ->
      List.iter
        (fun chip ->
          let r = Core.Patch_finder.run ~backend ~chip ~seed ~budget () in
          Core.Report.figure3 Fmt.stdout ~chip:chip.Gpusim.Chip.name r;
          write_csv csv (Core.Report.patch_csv r))
        chips
    | 4 ->
      List.iter
        (fun chip ->
          let patch = Core.Patch_finder.run ~backend ~chip ~seed ~budget () in
          let sequence = (Core.Tuning.shipped ~chip).Core.Stress.sequence in
          let r =
            Core.Spread_finder.run ~backend ~chip ~seed ~budget
              ~patch:patch.Core.Patch_finder.chosen ~sequence ()
          in
          Core.Report.figure4 Fmt.stdout ~chip:chip.Gpusim.Chip.name r;
          write_csv csv (Core.Report.spread_csv r))
        chips
    | 5 ->
      let apps = Apps.Registry.fence_free in
      (* emp_for runs inside a Cost job; keep the nested hardening serial
         so a parallel cost campaign does not oversubscribe domains. *)
      let emp_for chip app =
        (Core.Harden.insert ~chip ~app ~seed ()).Core.Harden.fences
      in
      let points = Core.Cost.run ~backend ~chips ~apps ~emp_for ~runs ~seed () in
      Core.Report.figure5 Fmt.stdout points;
      write_csv csv (Core.Report.cost_csv points)
    | n ->
      Fmt.epr "no figure %d here (the paper's figures 3-5 are reproducible)@." n;
      exit 1
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Reproduce a figure of the paper.")
    Term.(
      const run $ verbose $ seed $ chips $ all_chips $ number $ budget_term
      $ runs $ csv_out $ jobs_term)

let main =
  Cmd.group
    (Cmd.info "gpuwmm" ~version:"1.0.0"
       ~doc:
         "Exposing errors related to weak memory in (simulated) GPU \
          applications — reproduction of Sorensen & Donaldson, PLDI 2016.")
    [ chips_cmd; litmus_cmd; run_litmus_cmd; tune_cmd; test_cmd; harden_cmd;
      target_cmd; trace_cmd; ablate_cmd; inspect_cmd; table_cmd; figure_cmd ]

let () = exit (Cmd.eval main)
