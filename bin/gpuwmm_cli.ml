(* Command-line interface: reproduce every table and figure of the paper,
   tune chips, test and harden applications, and run litmus tests. *)

open Cmdliner

(* Set by setup_log; lets non-ticker informational messages (shard
   completion notes, listen banners) honour --quiet too — a shard
   worker spawned with -q must stay silent unconditionally. *)
let quiet_flag = ref false

let setup_log ?(quiet = false) verbose =
  quiet_flag := quiet;
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning);
  (* The execution engine owns campaign progress/throughput reporting.
     Under -v every progress line goes through Logs; otherwise, when
     stderr is an interactive terminal, a single in-place line is kept
     up to date; --quiet (or a non-tty stderr) disables progress. *)
  let reporter =
    if quiet then None
    else if verbose then
      Some
        { Core.Exec.line = (fun m -> Logs.info (fun f -> f "%s" m));
          finished = (fun () -> ()) }
    else if Unix.isatty Unix.stderr then
      Some
        { Core.Exec.line = (fun m -> Printf.eprintf "\r\027[K%s%!" m);
          finished = (fun () -> Printf.eprintf "\n%!") }
    else None
  in
  Core.Exec.set_progress reporter

(* ------------------------------------------------------------------ *)
(* Common arguments                                                     *)

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print progress messages.")

let seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed; equal seeds reproduce runs exactly.")

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~docv:"N"
        ~env:(Cmd.Env.info "GPUWMM_JOBS")
        ~doc:
          "Worker domains for campaign execution.  Defaults to \
           $(b,GPUWMM_JOBS) if set, else the runtime's recommended domain \
           count.  $(docv) = 1 selects the serial backend.  Results are \
           bit-identical for every job count at a given --seed.")

let backend_of jobs =
  match jobs with
  | Some n ->
    (* clamp_jobs warns when the requested value is outside 1..512. *)
    Core.Exec.backend_of_jobs (Core.Exec.clamp_jobs n)
  | None -> Core.Exec.default_backend ()

let chip_conv =
  let parse s =
    match Gpusim.Chip.by_name s with
    | Some c -> Ok c
    | None ->
      if String.lowercase_ascii s = "sc" then Ok Gpusim.Chip.sequential
      else
        Error
          (`Msg
            (Printf.sprintf "unknown chip %S (known: %s)" s
               (String.concat ", "
                  (List.map (fun c -> c.Gpusim.Chip.name) Gpusim.Chip.all))))
  in
  Arg.conv (parse, fun ppf c -> Fmt.string ppf c.Gpusim.Chip.name)

let chip =
  Arg.(
    value
    & opt chip_conv Gpusim.Chip.k20
    & info [ "chip" ] ~docv:"CHIP" ~doc:"Target chip (default K20).")

let chips =
  Arg.(
    value
    & opt (list chip_conv) [ Gpusim.Chip.k20 ]
    & info [ "chips" ] ~docv:"CHIPS"
        ~doc:"Comma-separated chips; use --all-chips for all seven.")

let all_chips =
  Arg.(value & flag & info [ "all-chips" ] ~doc:"Use all seven chips.")

let app_conv =
  let parse s =
    match Apps.Registry.by_name s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown application %S (known: %s)" s
             (String.concat ", "
                (List.map (fun a -> a.Apps.App.name) Apps.Registry.all))))
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf a.Apps.App.name)

let budget_term =
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Use the paper-scale campaign budget (D = L = 256, C = 1000); \
             hours per chip.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "runs-scale" ] ~docv:"F"
          ~doc:"Scale per-point execution counts by F.")
  in
  let make full scale =
    let b = if full then Core.Budget.paper else Core.Budget.default in
    let b = if scale = 1.0 then b else Core.Budget.scale_runs b scale in
    (* The raw flags ride along so a sharded worker subprocess can be
       spawned with a byte-identical parameter grid. *)
    let argv =
      (if full then [ "--full" ] else [])
      @ if scale = 1.0 then [] else [ "--runs-scale"; string_of_float scale ]
    in
    (b, argv)
  in
  Term.(const make $ full $ scale)

let resolve_chips chips all = if all then Gpusim.Chip.all else chips

let csv_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write raw data as CSV to FILE.")

let write_file p contents =
  let oc = open_out p in
  output_string oc contents;
  close_out oc;
  Fmt.pr "wrote %s@." p

let write_csv path contents =
  match path with None -> () | Some p -> write_file p contents

(* ------------------------------------------------------------------ *)
(* Run ledgers                                                          *)

let quiet =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress the live progress line.")

let log_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Write a durable JSONL run ledger to $(docv) as jobs complete; a \
           killed campaign can be resumed from it with $(b,--resume), and \
           $(b,gpuwmm report --from) $(docv) re-renders its tables later.")

let resume_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume an interrupted campaign from its ledger: jobs recorded \
           in $(docv) are replayed without re-executing and only the \
           remainder runs.  The invocation must describe the same campaign \
           (kind, seed, parameter grid).  The ledger is rewritten in place \
           unless $(b,--log) names a different file.")

let shard_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard" ] ~docv:"K/N"
        ~doc:
          "Run only shard $(docv) of the campaign's job plan (1-based; \
           append $(b,:contiguous) for block partitioning instead of the \
           default stride).  Requires $(b,--log): the shard ledger records \
           just this shard's jobs, at their unsharded seeds, and carries no \
           result record.  Combine the N shard ledgers with $(b,gpuwmm \
           merge) into one canonical ledger.")

let listen_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:
          "Serve live campaign observability on http://127.0.0.1:$(docv) \
           while the campaign runs: $(b,/metrics) (Prometheus text \
           exposition of the telemetry registry plus fleet gauges), \
           $(b,/status) (JSON fleet snapshot, the $(b,gpuwmm status --json) \
           document) and $(b,/healthz).  $(docv) 0 picks a free port and \
           prints it.")

let spans_term =
  Arg.(
    value & flag
    & info [ "spans" ]
        ~doc:
          "Record per-job execution spans and write a Chrome trace-event \
           sidecar $(b,LEDGER.spans.json) next to the ledger (requires \
           $(b,--log)).  Under the process backend each worker writes its \
           own sidecar; unify them with $(b,gpuwmm trace --merge).")

(* Escape hatch for the process backend: GPUWMM_PROCS=off forces the
   in-process domain pool even at campaign scale. *)
let procs_enabled () =
  match Sys.getenv_opt "GPUWMM_PROCS" with
  | Some ("0" | "off" | "no" | "false") -> false
  | _ -> true

let strict_term =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail instead of warning when a chip has no shipped Table 2 \
           tuning parameters, so a typo'd chip cannot silently campaign \
           with the untuned fallback.")

let tolerance_term =
  Arg.(
    value & opt float 0.02
    & info [ "tolerance" ] ~docv:"T"
        ~doc:
          "Absolute error-exposure-rate drop a cell may show before it \
           counts as a regression (default 0.02, i.e. two percentage \
           points).")

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                 *)

let exit_degraded = 3
let exit_failed = 4

let timeout_term =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-job wall-clock budget.  An attempt running longer is \
           cancelled by the watchdog at the simulator's next poll point \
           and counts as failed (retried under $(b,--retries)).")

let retries_term =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts for a failed or timed-out job, re-run with the \
           $(i,same) seed after a deterministic seed-derived backoff, so \
           a successful retry is bit-identical to a fault-free run.")

let keep_going_term =
  Arg.(
    value & flag
    & info [ "keep-going" ]
        ~doc:
          "Quarantine jobs that exhaust their attempts instead of \
           aborting: the campaign completes with degraded cells, the \
           ledger records each failure, and the exit code is 3.")

let setup_supervision ?faults ~timeout ~retries ~keep_going () =
  (match timeout with
  | Some t when t <= 0.0 ->
    Fmt.epr "--timeout must be positive@.";
    exit 2
  | _ -> ());
  if retries < 0 then begin
    Fmt.epr "--retries must be non-negative@.";
    exit 2
  end;
  if timeout <> None || retries > 0 || keep_going || faults <> None then
    Core.Exec.set_supervision
      (Some
         (Core.Exec.supervision ?timeout_s:timeout ~retries ~keep_going
            ?faults ()))

let pp_failure ppf (fl : Core.Exec.failure) =
  Fmt.pf ppf "%s job %d (seed %d, %d attempt(s)): %s" fl.Core.Exec.f_label
    fl.Core.Exec.f_index fl.Core.Exec.f_seed fl.Core.Exec.f_attempts
    fl.Core.Exec.f_reason

(* Print the degradation summary accumulated during a supervised
   campaign; a campaign that quarantined any job exits 3 so CI can tell
   a degraded success from a clean one. *)
let conclude_supervised () =
  let s = Core.Exec.drain_summary () in
  if s.Core.Exec.retried > 0 then
    Logs.info (fun f ->
        f "supervision: %d retry attempt(s) performed" s.Core.Exec.retried);
  match s.Core.Exec.quarantined with
  | [] -> ()
  | qs ->
    Fmt.epr "degraded: %d job(s) quarantined after exhausting attempts:@."
      (List.length qs);
    List.iter (fun fl -> Fmt.epr "  %a@." pp_failure fl) qs;
    exit exit_degraded

(* A poison job without --keep-going aborts the campaign (the ledger is
   left footer-less and resumable) with a distinct exit code. *)
let guarded f =
  try f ()
  with Core.Exec.Job_failed fl ->
    Fmt.epr "failed: %a@." pp_failure fl;
    Fmt.epr
      "rerun with --retries N to retry transient faults, or --keep-going \
       to quarantine poison jobs and continue@.";
    exit exit_failed

let json_strs xs = Core.Json.List (List.map (fun s -> Core.Json.String s) xs)
let chip_names cs = List.map (fun c -> c.Gpusim.Chip.name) cs
let app_names apps = List.map (fun a -> a.Apps.App.name) apps

(* Composite result-record payloads assembled at the CLI layer; the
   drivers own the per-result codecs. *)

let chipped_to_json enc xs =
  Core.Json.List
    (List.map
       (fun (chip, r) ->
         Core.Json.Assoc [ ("chip", Core.Json.String chip); ("result", enc r) ])
       xs)

let chipped_of_json dec j =
  let open Core.Runlog.Dec in
  match j with
  | Core.Json.List items ->
    all
      (fun item ->
        let* chip = str "chip" item in
        let* rj = field "result" item in
        let* r = dec rj in
        Ok (chip, r))
      items
  | _ -> Error "expected a list of {chip, result} objects"

let tuning_to_json rs =
  Core.Json.List
    (List.map
       (fun (r, minutes) ->
         Core.Json.Assoc
           [ ("minutes", Core.Json.Float minutes);
             ("result", Core.Tuning.result_to_json r) ])
       rs)

let tuning_of_json j =
  let open Core.Runlog.Dec in
  match j with
  | Core.Json.List items ->
    all
      (fun item ->
        let* minutes = float "minutes" item in
        let* rj = field "result" item in
        let* r = Core.Tuning.result_of_json rj in
        Ok (r, minutes))
      items
  | _ -> Error "expected a list of {minutes, result} objects"

let seq_to_json (chip, r) =
  Core.Json.Assoc
    [ ("chip", Core.Json.String chip);
      ("result", Core.Seq_finder.result_to_json r) ]

let seq_of_json j =
  let open Core.Runlog.Dec in
  let* chip = str "chip" j in
  let* rj = field "result" j in
  let* r = Core.Seq_finder.result_of_json rj in
  Ok (chip, r)

(* Render a ledger's reduced result record — the body of `gpuwmm report
   --from`, also used by --resume's complete-ledger fast path. *)
let render_ledger_result ?(format = `Ascii) ~path (l : Core.Runlog.ledger) =
  match l.Core.Runlog.result with
  | None ->
    Fmt.epr
      "%s has no result record: the campaign was interrupted; finish it \
       first with --resume %s@."
      path path;
    exit 2
  | Some (kind, data) ->
    Core.Report.provenance Fmt.stdout ~path l.Core.Runlog.header;
    let fail e =
      Fmt.epr "%s: cannot decode %S result: %s@." path kind e;
      exit 2
    in
    let ok = function Ok v -> v | Error e -> fail e in
    (* Markdown fallback for kinds without a native md renderer: the
       ASCII table inside a code fence. *)
    let fenced render =
      Fmt.pr "```@.";
      render Fmt.stdout;
      Fmt.pr "```@."
    in
    let render ascii md csv =
      match format with
      | `Ascii -> ascii Fmt.stdout
      | `Md -> md ()
      | `Csv -> print_string (csv ())
    in
    (match kind with
    | "campaign" ->
      let rows = ok (Core.Campaign.rows_of_json data) in
      render
        (fun ppf -> Core.Report.table5 ppf rows)
        (fun () -> print_string (Core.Report.table5_md rows))
        (fun () -> Core.Report.table5_csv rows)
    | "tuning" ->
      let results = ok (tuning_of_json data) in
      let ascii ppf = Core.Report.table2 ppf results in
      render ascii
        (fun () -> fenced ascii)
        (fun () -> Core.Report.table2_csv results)
    | "seq" ->
      let _chip, r = ok (seq_of_json data) in
      let ascii ppf = Core.Report.table3 ppf r in
      render ascii
        (fun () -> fenced ascii)
        (fun () -> Core.Report.table3_csv r)
    | "harden" ->
      let results = ok (Core.Harden.results_of_json data) in
      let ascii ppf = Core.Report.table6 ppf results in
      render ascii
        (fun () -> fenced ascii)
        (fun () -> Core.Report.table6_csv results)
    | "patch" ->
      let results =
        ok (chipped_of_json Core.Patch_finder.result_of_json data)
      in
      let ascii ppf =
        List.iter (fun (chip, r) -> Core.Report.figure3 ppf ~chip r) results
      in
      render ascii
        (fun () -> fenced ascii)
        (fun () -> Core.Report.patches_csv results)
    | "spread" ->
      let results =
        ok (chipped_of_json Core.Spread_finder.result_of_json data)
      in
      let ascii ppf =
        List.iter (fun (chip, r) -> Core.Report.figure4 ppf ~chip r) results
      in
      render ascii
        (fun () -> fenced ascii)
        (fun () -> Core.Report.spreads_csv results)
    | "cost" ->
      let points = ok (Core.Cost.points_of_json data) in
      let ascii ppf = Core.Report.figure5 ppf points in
      render ascii
        (fun () -> fenced ascii)
        (fun () -> Core.Report.cost_csv points)
    | k ->
      Fmt.epr "%s: unknown result kind %S@." path k;
      exit 2)

(* Open a ledger around a campaign body.  Without --log/--resume the body
   runs bare.  With --resume, the old ledger is loaded and validated
   against this invocation (campaign kind, seed, grid — exit 2 on
   mismatch), its header is kept verbatim and its completed jobs become
   the resume cache; the file is then rewritten in place (or to --log)
   with the cached records replayed in plan order, so a resumed ledger is
   byte-identical to an uninterrupted one.  On success the reduced result
   and footer are appended; an exception aborts the ledger footer-less,
   leaving a resumable prefix.

   Resuming a ledger that is already complete (footer present, no
   quarantined jobs, result recorded) short-circuits: the recorded result
   is rendered and the file is left byte-untouched — no pool is started
   and no job function runs.  A complete-but-degraded ledger (footer
   records quarantined jobs) takes the normal path instead, so its
   quarantined jobs re-run and can recover.

   With ~shard (a parsed --shard K/N) the run covers only the owned
   slice of the plan: the header records the shard, the ambient shard is
   installed around the body so Exec journals just the owned jobs (at
   dense shard-local flush ranks), and the ledger is closed without a
   result record — `gpuwmm merge` reassembles the canonical ledger from
   the full shard set.

   With ~procs (worker count n and the self-exec argv builder) the
   campaign fans out across n worker subprocesses first — each a
   single-domain `--shard k/n` run with its own GC — and the body then
   executes against the union resume cache of their shard ledgers:
   cached jobs replay, anything a crashed worker failed to flush re-runs
   here, and the resulting ledger is indistinguishable from a
   single-process run.  Fan-out is skipped under --resume/--shard and
   when GPUWMM_PROCS=off.

   Observability, all opt-in and result-neutral: every ledgered process
   beats on a <ledger>.hb sidecar (Core.Heartbeat; GPUWMM_HEARTBEAT=off
   disables); ~listen serves /metrics, /status and /healthz over the
   known sidecars for the campaign's duration; ~spans records per-job
   spans and writes a Chrome trace sidecar <ledger>.spans.json with
   absolute timestamps, mergeable across workers by `gpuwmm trace
   --merge`. *)
let with_ledger ?shard ?procs ?listen ?(spans = false) ~campaign ~seed ~jobs
    ~grid ~log ~resume ~kind ~encode f =
  let shard =
    match shard with
    | None -> None
    | Some spec -> (
      match Core.Shard.parse spec with
      | Ok sh -> Some sh
      | Error e ->
        Fmt.epr "--shard %s: %s@." spec e;
        exit 2)
  in
  (match (shard, log, resume) with
  | Some _, None, None ->
    Fmt.epr
      "--shard requires --log: the shard ledger is the shard's only output@.";
    exit 2
  | _ -> ());
  (match (spans, log, resume) with
  | true, None, None ->
    Fmt.epr "--spans requires --log: the trace sidecar lives next to it@.";
    exit 2
  | _ -> ());
  let shard_spec = Option.map Core.Shard.to_string shard in
  if spans then Core.Telemetry.set_spans true;
  (* Heartbeat sidecars this campaign is known to write: the worker
     shard set under fan-out, plus this process's own once its ledger
     path is settled.  The HTTP handler domain reads the list live on
     every scrape while this domain updates it, so it lives in an
     Atomic (like Exec's progress cell) rather than a plain ref. *)
  let hb_paths = Atomic.make [] in
  let observability_handler req =
    let now =
      if Core.Runlog.deterministic_mode () then 0.0 else Unix.gettimeofday ()
    in
    match req with
    | "/metrics" ->
      let fleet = Core.Fleetview.load ~now (Atomic.get hb_paths) in
      Core.Httpd.respond
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Core.Telemetry.prometheus (Core.Telemetry.snapshot ())
        ^ Core.Fleetview.prometheus fleet)
    | "/" | "/status" ->
      let fleet = Core.Fleetview.load ~now (Atomic.get hb_paths) in
      Core.Httpd.respond ~content_type:"application/json"
        (Core.Json.to_string (Core.Fleetview.render_json fleet) ^ "\n")
    | "/healthz" -> Core.Httpd.respond "ok\n"
    | _ -> Core.Httpd.respond ~status:404 "not found\n"
  in
  let server =
    match listen with
    | None -> None
    | Some port -> (
      match Core.Httpd.start ~port observability_handler with
      | s ->
        if not !quiet_flag then
          Fmt.epr "serving /metrics and /status on http://127.0.0.1:%d@."
            (Core.Httpd.port s);
        Some s
      | exception Unix.Unix_error (e, _, _) ->
        Fmt.epr "--listen %d: %s@." port (Unix.error_message e);
        exit 2)
  in
  let procs_cache, procs_tmp =
    match procs with
    | Some (n, argv_of)
      when n >= 2 && shard = None && resume = None && procs_enabled () ->
      let paths = Core.Procs.shard_paths ?log ~n () in
      Atomic.set hb_paths (List.map Core.Heartbeat.hb_path paths);
      Logs.info (fun f -> f "fanning out %d worker processes" n);
      let outcomes = Core.Procs.fan_out ~n ~paths ~argv_of () in
      List.iter
        (fun (o : Core.Procs.outcome) ->
          match o.Core.Procs.status with
          | Core.Procs.Failed reason ->
            Logs.warn (fun f ->
                f "shard %d/%d failed (%s); its jobs re-run in this process"
                  o.Core.Procs.k n reason)
          | _ -> ())
        outcomes;
      (Some (Core.Procs.merged_cache paths), if log = None then paths else [])
    | _ -> (None, [])
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Core.Httpd.stop server;
      Core.Procs.cleanup procs_tmp)
    (fun () ->
      match (log, resume) with
      | None, None -> (
        match procs_cache with
        | None -> ignore (f None)
        | Some cache ->
          (* No ledger requested: the workers' shard ledgers are still
             the cache, so the reduce replays their results without
             re-executing. *)
          ignore
            (f (Some (Core.Runlog.journal ~cache ~origin:"worker shards" ""))))
      | _ ->
        let path = match log with Some p -> p | None -> Option.get resume in
        let loaded =
          match resume with
          | None -> None
          | Some p -> (
            match Core.Runlog.load p with
            | Error e ->
              Fmt.epr "cannot resume from %s: %s@." p e;
              exit 2
            | Ok l ->
              (match
                 Core.Runlog.validate_resume ?shard:shard_spec l ~path:p
                   ~campaign ~seed ~grid
               with
              | Ok () -> ()
              | Error m ->
                Fmt.epr "%s@." m;
                exit 2);
              if l.Core.Runlog.torn then
                Fmt.epr
                  "note: %s ends mid-record (killed during a write); \
                   dropping the torn line@."
                  p;
              Some l)
        in
        let complete =
          match loaded with
          | Some l ->
            l.Core.Runlog.result <> None
            && (match l.Core.Runlog.footer with
               | Some ft -> ft.Core.Runlog.quarantined = 0
               | None -> false)
            && (log = None || log = resume)
          | None -> false
        in
        if complete then begin
          let l = Option.get loaded in
          Fmt.epr "%s is already complete; nothing to re-run@." path;
          render_ledger_result ~path l
        end
        else begin
          let header =
            match loaded with
            | Some l -> l.Core.Runlog.header
            | None ->
              Core.Runlog.make_header ?jobs ?shard:shard_spec ~campaign ~seed
                ~grid ()
          in
          let cache =
            match loaded with
            | Some l -> Some (Core.Runlog.cache_of_ledger l)
            | None -> procs_cache
          in
          Option.iter
            (fun c ->
              Logs.info (fun f ->
                  f "resuming from %s: %d completed job record(s)"
                    (if resume = None then "worker shards" else path)
                    (Core.Runlog.cache_size c)))
            cache;
          let sink = Core.Runlog.create ~path header in
          let journal = Core.Runlog.journal ~sink ?cache ~origin:path "" in
          Core.Shard.set_ambient shard;
          Atomic.set hb_paths
            (Atomic.get hb_paths @ [ Core.Heartbeat.hb_path path ]);
          let emitter =
            if Core.Heartbeat.enabled () then
              Some
                (Core.Heartbeat.start ?shard:shard_spec
                   ~path:(Core.Heartbeat.hb_path path) ())
            else None
          in
          let write_spans () =
            if spans then
              write_file (path ^ ".spans.json")
                (Core.Json.to_string
                   (Core.Telemetry.chrome_trace ~pid:(Unix.getpid ())
                      ?shard:shard_spec ~span_base:0.0
                      ~spans:(Core.Telemetry.spans ()) [])
                ^ "\n")
          in
          match
            Fun.protect
              ~finally:(fun () ->
                Core.Shard.set_ambient None;
                Option.iter Core.Heartbeat.stop emitter)
              (fun () -> f (Some journal))
          with
          | v -> (
            match shard_spec with
            | Some spec ->
              (* A shard ledger carries no result record: its reduce saw
                 placeholder values for the cells it did not own. *)
              Core.Runlog.close sink;
              write_spans ();
              Logs.info (fun f -> f "shard ledger written to %s" path);
              if not !quiet_flag then
                Fmt.epr
                  "shard %s of campaign written to %s; combine the full \
                   shard set with `gpuwmm merge ... --out LEDGER`@."
                  spec path
            | None ->
              Core.Runlog.append_result sink ~kind (encode v);
              Core.Runlog.close sink;
              write_spans ();
              Logs.info (fun f -> f "ledger written to %s" path))
          | exception e ->
            Core.Runlog.abort sink;
            raise e
        end)

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)

let chips_cmd =
  let run verbose =
    setup_log verbose;
    Core.Report.table1 Fmt.stdout
  in
  Cmd.v (Cmd.info "chips" ~doc:"List the seven simulated GPUs (Table 1).")
    Term.(const run $ verbose)

let tuned_envs chip =
  Core.Environment.all ~tuned:(Core.Tuning.shipped ~chip)

let litmus_cmd =
  let idiom_conv =
    Arg.conv
      ( (fun s ->
          match String.uppercase_ascii s with
          | "MP" -> Ok Litmus.Test.MP
          | "LB" -> Ok Litmus.Test.LB
          | "SB" -> Ok Litmus.Test.SB
          | _ -> Error (`Msg "idiom must be MP, LB or SB")),
        fun ppf i -> Fmt.string ppf (Litmus.Test.idiom_name i) )
  in
  let idiom =
    Arg.(value & opt idiom_conv Litmus.Test.MP & info [ "idiom" ] ~docv:"T")
  in
  let distance =
    Arg.(value & opt int 64 & info [ "distance" ] ~docv:"D")
  in
  let runs = Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N") in
  let env_name =
    Arg.(
      value & opt string "sys-str-"
      & info [ "env" ] ~docv:"ENV"
          ~doc:"Environment: no-str-, sys-str-, sys-str+, rand-str-, ...")
  in
  let run verbose seed chip idiom distance runs env_name =
    setup_log verbose;
    let envs = tuned_envs chip in
    match
      List.find_opt (fun e -> e.Core.Environment.label = env_name) envs
    with
    | None ->
      Fmt.epr "unknown environment %s@." env_name;
      exit 1
    | Some env ->
      let inst = { Litmus.Test.idiom; distance } in
      let weak =
        Litmus.Runner.count_weak ~chip ~seed
          ~env:(Core.Environment.for_litmus env)
          ~runs inst
      in
      Fmt.pr "%s with d=%d on %s under %s: %d/%d weak@."
        (Litmus.Test.idiom_name idiom)
        distance chip.Gpusim.Chip.name env_name weak runs;
      Fmt.pr "SC-reachable outcomes: %a@."
        Fmt.(list ~sep:sp (parens (pair ~sep:comma int int)))
        (Litmus.Test.sc_outcomes inst)
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run a litmus test under a testing environment and count weak \
             behaviours.")
    Term.(
      const run $ verbose $ seed $ chip $ idiom $ distance $ runs $ env_name)

let check_cmd =
  let k_term =
    Arg.(
      value & opt int 2
      & info [ "k"; "max-reorderings" ] ~docv:"K"
          ~doc:
            "Reordering bound: schedules performing more than $(docv) \
             out-of-order commits are not explored.  K = 0 restricts the \
             weak machine to its SC schedules; K = 2 covers every litmus \
             outcome the idioms can express.")
  in
  let distances_term =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "distances" ] ~docv:"D,..."
          ~doc:
            "Comma-separated communication distances to check (default: 0 \
             and patch_size - 1, the largest same-partition distance and \
             the smallest cross-partition one).")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the report to FILE.")
  in
  let run verbose chip k jobs distances json out =
    setup_log verbose;
    let jobs =
      match jobs with
      | Some n -> Core.Exec.clamp_jobs n
      | None -> Core.Exec.default_jobs ()
    in
    guarded (fun () ->
        let r =
          Core.Check.run_litmus ~chip ~max_reorderings:k ~jobs ?distances ()
        in
        let text =
          if json then Core.Json.to_string (Core.Check.render_json r) ^ "\n"
          else Core.Check.render_ascii r
        in
        print_string text;
        (match out with None -> () | Some p -> write_file p text);
        let failures =
          List.concat_map
            (fun c -> c.Core.Check.replay_failures)
            r.Core.Check.cases
        in
        if failures <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check the litmus idioms: enumerate every thread \
          interleaving and store-buffer commit schedule up to a reordering \
          bound (with sleep-set partial-order reduction), prove fenced \
          variants SC-only, produce a replayable witness schedule for every \
          weak behaviour, and confirm each witness by deterministic replay \
          in the simulator.  Exits 1 if any witness fails to replay.")
    Term.(
      const run $ verbose $ chip $ k_term $ jobs_term $ distances_term
      $ json_flag $ out_term)

let tune_cmd =
  let run verbose quiet seed chip (budget, _budget_argv) jobs log resume shard
      timeout retries keep_going =
    setup_log ~quiet verbose;
    setup_supervision ~timeout ~retries ~keep_going ();
    let grid =
      Core.Json.Assoc
        [ ("chips", json_strs (chip_names [ chip ]));
          ("budget", Core.Budget.to_json budget) ]
    in
    guarded (fun () ->
        with_ledger ?shard ~campaign:"tune" ~seed ~jobs ~grid ~log ~resume
          ~kind:"tuning" ~encode:tuning_to_json (fun journal ->
            let r =
              Core.Tuning.run ~backend:(backend_of jobs) ?journal ~chip ~seed
                ~budget ()
            in
            let minutes = r.Core.Tuning.elapsed_s /. 60.0 in
            if shard = None then begin
              Core.Report.table2 Fmt.stdout [ (r, minutes) ];
              Core.Report.table3 Fmt.stdout r.Core.Tuning.sequences
            end;
            [ (r, minutes) ]));
    conclude_supervised ()
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Run the full Sec. 3 tuning pipeline for one chip.")
    Term.(
      const run $ verbose $ quiet $ seed $ chip $ budget_term $ jobs_term
      $ log_term $ resume_term $ shard_term $ timeout_term $ retries_term
      $ keep_going_term)

let test_cmd =
  let app_term =
    Arg.(
      value
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Single application (default: all ten).")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N") in
  let env_name =
    Arg.(value & opt string "sys-str+" & info [ "env" ] ~docv:"ENV")
  in
  let run verbose quiet seed chip app runs env_name jobs log resume shard
      listen spans strict timeout retries keep_going =
    setup_log ~quiet verbose;
    setup_supervision ~timeout ~retries ~keep_going ();
    Core.Tuning.set_strict strict;
    let envs = tuned_envs chip in
    match
      List.find_opt (fun e -> e.Core.Environment.label = env_name) envs
    with
    | None ->
      Fmt.epr "unknown environment %s@." env_name;
      exit 1
    | Some env ->
      let apps =
        match app with Some a -> [ a ] | None -> Apps.Registry.all
      in
      let grid =
        Core.Json.Assoc
          [ ("chips", json_strs (chip_names [ chip ]));
            ("envs", json_strs [ env_name ]);
            ("apps", json_strs (app_names apps));
            ("runs", Core.Json.Int runs) ]
      in
      (* Campaign-scale work defaults to the process backend: worker
         subprocesses dodge OCaml 5's shared stop-the-world minor GC,
         which caps the in-process domain pool below 1x on this
         workload.  GPUWMM_PROCS=off restores the domain pool. *)
      let procs_n =
        let n =
          match jobs with
          | Some n -> Core.Exec.clamp_jobs n
          | None -> Core.Exec.default_jobs ()
        in
        if n >= 2 && shard = None && resume = None && procs_enabled () then
          Some n
        else None
      in
      let child_argv n ~k ~path =
        [ Sys.executable_name; "test";
          "--chip"; chip.Gpusim.Chip.name;
          "--runs"; string_of_int runs;
          "--env"; env_name;
          "--seed"; string_of_int seed;
          "-j"; "1"; "-q";
          "--shard"; Printf.sprintf "%d/%d" k n;
          "--log"; path ]
        @ (match app with
          | Some a -> [ "--app"; a.Apps.App.name ]
          | None -> [])
        @ (if spans then [ "--spans" ] else [])
        @ (if strict then [ "--strict" ] else [])
        @ (match timeout with
          | Some t -> [ "--timeout"; string_of_float t ]
          | None -> [])
        @ (if retries > 0 then [ "--retries"; string_of_int retries ] else [])
        @ if keep_going then [ "--keep-going" ] else []
      in
      let backend =
        match procs_n with
        | Some n -> Core.Exec.Processes n
        | None -> backend_of jobs
      in
      guarded (fun () ->
          with_ledger ?shard
            ?procs:(Option.map (fun n -> (n, child_argv n)) procs_n)
            ?listen ~spans
            ~campaign:"test" ~seed ~jobs ~grid ~log ~resume ~kind:"campaign"
            ~encode:Core.Campaign.rows_to_json (fun journal ->
              let rows =
                Core.Campaign.run ~backend ?journal ~chips:[ chip ]
                  ~environments_for:(fun _ -> [ env ])
                  ~apps ~runs ~seed ()
              in
              if shard = None then
                List.iter
                  (fun row ->
                    List.iter
                      (fun cell ->
                        match cell.Core.Campaign.quarantined with
                        | Some reason ->
                          Fmt.pr "%-12s %s %s: QUARANTINED (%s)@."
                            cell.Core.Campaign.app chip.Gpusim.Chip.name
                            env_name reason
                        | None ->
                          Fmt.pr "%-12s %s %s: %d/%d erroneous runs%s@."
                            cell.Core.Campaign.app chip.Gpusim.Chip.name
                            env_name cell.Core.Campaign.errors
                            cell.Core.Campaign.runs
                            (match Core.Campaign.dominant cell with
                            | None -> ""
                            | Some (msg, n) ->
                              Printf.sprintf "  (dominant: %s x%d)" msg n))
                      row.Core.Campaign.cells)
                  rows;
              rows));
      conclude_supervised ()
  in
  Cmd.v
    (Cmd.info "test"
       ~doc:"Repeatedly execute applications under a testing environment \
             and count erroneous runs (Sec. 4).")
    Term.(
      const run $ verbose $ quiet $ seed $ chip $ app_term $ runs $ env_name
      $ jobs_term $ log_term $ resume_term $ shard_term $ listen_term
      $ spans_term $ strict_term $ timeout_term $ retries_term
      $ keep_going_term)

let harden_cmd =
  let app_term =
    Arg.(
      required
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Application to harden (fence-free).")
  in
  let stability =
    Arg.(value & opt int 200 & info [ "stability-runs" ] ~docv:"N")
  in
  let run verbose quiet seed chip app stability jobs log resume shard timeout
      retries keep_going =
    setup_log ~quiet verbose;
    setup_supervision ~timeout ~retries ~keep_going ();
    let config =
      { (Core.Harden.default_config ~chip) with stability_runs = stability }
    in
    let grid =
      Core.Json.Assoc
        [ ("chips", json_strs (chip_names [ chip ]));
          ("apps", json_strs (app_names [ app ]));
          ("stability_runs", Core.Json.Int stability) ]
    in
    guarded (fun () ->
        with_ledger ?shard ~campaign:"harden" ~seed ~jobs ~grid ~log ~resume
          ~kind:"harden" ~encode:Core.Harden.results_to_json (fun journal ->
            let r =
              Core.Harden.insert ~chip ~config ~backend:(backend_of jobs)
                ?journal ~app ~seed ()
            in
            if shard = None then begin
              Core.Report.table6 Fmt.stdout [ r ];
              (* Show the hardened kernels. *)
              List.iter
                (fun k ->
                  let fenced =
                    Apps.App.apply_fencing
                      (Apps.App.Sites r.Core.Harden.fences) k
                  in
                  if Gpusim.Kernel.fence_sites fenced <> [] then
                    Fmt.pr "@.%s@."
                      (Gpusim.Kernel_pp.to_string ~sids:true fenced))
                app.Apps.App.kernels
            end;
            [ r ]));
    conclude_supervised ()
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:"Empirical fence insertion (Alg. 1) for one application.")
    Term.(
      const run $ verbose $ quiet $ seed $ chip $ app_term $ stability
      $ jobs_term $ log_term $ resume_term $ shard_term $ timeout_term
      $ retries_term $ keep_going_term)

let inspect_cmd =
  let app_term =
    Arg.(
      required
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP")
  in
  let fencing =
    let fencing_conv =
      Arg.conv
        ( (fun s ->
            match String.lowercase_ascii s with
            | "original" -> Ok Apps.App.Original
            | "stripped" | "nf" -> Ok Apps.App.Stripped
            | "conservative" | "cons" -> Ok Apps.App.Conservative
            | _ -> Error (`Msg "fencing: original, stripped or conservative")),
          fun ppf _ -> Fmt.string ppf "<fencing>" )
    in
    Arg.(value & opt fencing_conv Apps.App.Original & info [ "fencing" ] ~docv:"F")
  in
  let run verbose app fencing =
    setup_log verbose;
    List.iter
      (fun k ->
        Fmt.pr "%s@."
          (Gpusim.Kernel_pp.to_string ~sids:true
             (Apps.App.apply_fencing fencing k)))
      app.Apps.App.kernels
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print an application's kernels (CUDA-like syntax).")
    Term.(const run $ verbose $ app_term $ fencing)

let target_cmd =
  let app_term =
    Arg.(
      required
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Application to analyse and test.")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N") in
  let run verbose seed chip app runs =
    setup_log verbose;
    (* Phase 1: one native run with the race detector attached. *)
    let sim = Gpusim.Sim.create ~chip ~seed () in
    let det = Gpusim.Race.attach sim in
    (match app.Apps.App.run sim Apps.App.Original with
    | Ok () -> ()
    | Error e -> Fmt.pr "(native observation run failed: %s)@." e);
    Gpusim.Race.detach sim det;
    Fmt.pr "communication locations observed in %s:@." app.Apps.App.name;
    Gpusim.Race.pp_findings Fmt.stdout (Gpusim.Race.findings det);
    let addresses = Gpusim.Race.data_locations det in
    (* Phase 2: targeted stress vs the tuned blind strategies. *)
    let tuned = Core.Tuning.shipped ~chip in
    let targeted =
      Core.Environment.make
        (Core.Stress.Targeted
           { sequence = tuned.Core.Stress.sequence; addresses })
        ~randomise:true
    in
    Fmt.pr "@.%d data location(s) targeted@." (List.length addresses);
    List.iter
      (fun env ->
        let cell = Core.Campaign.test_app ~chip ~env ~app ~runs ~seed in
        Fmt.pr "  %-10s %3d/%3d erroneous runs@." env.Core.Environment.label
          cell.Core.Campaign.errors cell.Core.Campaign.runs)
      [ Core.Environment.make Core.Stress.No_stress ~randomise:false;
        Core.Environment.sys_plus ~tuned; targeted ]
  in
  Cmd.v
    (Cmd.info "target"
       ~doc:"Detect an application's communication locations with the              dynamic race detector and stress exactly their memory              partitions (the paper's future-work item (e)).")
    Term.(const run $ verbose $ seed $ chip $ app_term $ runs)

(* Union several Chrome trace-event files (one per campaign process,
   written with absolute span timestamps) into one timeline: collect
   every traceEvents entry, rebase the time axis so the earliest
   non-metadata event is 0, and re-sort.  Metadata events (ph "M",
   track labels) float to the front untouched. *)
let merge_chrome_traces inputs =
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let events =
    List.concat_map
      (fun p ->
        let fail msg =
          Fmt.epr "%s: %s@." p msg;
          exit 2
        in
        match Core.Json.of_string (read_file p) with
        | exception Sys_error e -> fail e
        | Error e -> fail e
        | Ok j -> (
          match Core.Json.member "traceEvents" j with
          | Some (Core.Json.List evs) -> evs
          | _ -> fail "not a Chrome trace-event file (no traceEvents array)"))
      inputs
  in
  let is_meta = function
    | Core.Json.Assoc kvs ->
      List.assoc_opt "ph" kvs = Some (Core.Json.String "M")
    | _ -> false
  in
  (* ts is microseconds; our sidecars write ints but foreign tools
     legally emit floats, so both must rebase and sort.  Integer events
     keep their kind when the base offset is integral (gpuwmm-only
     merges stay byte-stable). *)
  let ts_of = function
    | Core.Json.Assoc kvs -> (
      match List.assoc_opt "ts" kvs with
      | Some (Core.Json.Int t) -> Some (float_of_int t)
      | Some (Core.Json.Float t) -> Some t
      | _ -> None)
    | _ -> None
  in
  let metas, timed = List.partition is_meta events in
  let base =
    List.fold_left
      (fun acc ev ->
        match ts_of ev with Some t -> Float.min acc t | None -> acc)
      infinity timed
  in
  let base = if base = infinity then 0.0 else base in
  let int_base = Float.is_integer base in
  let rebase = function
    | Core.Json.Assoc kvs ->
      Core.Json.Assoc
        (List.map
           (function
             | "ts", Core.Json.Int t when int_base ->
               ("ts", Core.Json.Int (t - int_of_float base))
             | "ts", Core.Json.Int t ->
               ("ts", Core.Json.Float (float_of_int t -. base))
             | "ts", Core.Json.Float t -> ("ts", Core.Json.Float (t -. base))
             | kv -> kv)
           kvs)
    | ev -> ev
  in
  let timed = List.map rebase timed in
  let timed =
    List.stable_sort
      (fun a b -> compare (ts_of a) (ts_of b))
      timed
  in
  Core.Json.Assoc [ ("traceEvents", Core.Json.List (metas @ timed)) ]

let trace_cmd =
  let app_term =
    Arg.(
      value
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Application to trace.")
  in
  let merge =
    Arg.(
      value & flag
      & info [ "merge" ]
          ~doc:
            "Merge mode: instead of tracing an application, union the \
             Chrome trace files given as positional arguments (e.g. the \
             $(b,LEDGER.spans.json) sidecars each $(b,--spans) worker \
             wrote) into one timeline at $(b,--out), rebasing timestamps \
             to the earliest event.")
  in
  let merge_inputs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:"Chrome trace-event files to merge (with $(b,--merge)).")
  in
  let env_name =
    Arg.(
      value & opt string "sys-str+"
      & info [ "env" ] ~docv:"ENV"
          ~doc:"Testing environment: no-str-, sys-str+, rand-str+, ...")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Chrome trace-event output file; open in chrome://tracing or \
             ui.perfetto.dev.")
  in
  let jsonl_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Also write the raw event records as JSON Lines to FILE.")
  in
  let capacity =
    Arg.(
      value
      & opt int Gpusim.Trace.default_capacity
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Trace ring-buffer capacity; when a run emits more events, the \
             oldest are dropped.")
  in
  let run verbose seed chip app env_name out jsonl_out capacity merge
      merge_inputs =
    setup_log verbose;
    if merge then begin
      if merge_inputs = [] then begin
        Fmt.epr "--merge needs at least one trace file@.";
        exit 1
      end;
      write_file out
        (Core.Json.to_string (merge_chrome_traces merge_inputs) ^ "\n")
    end
    else begin
    if merge_inputs <> [] then begin
      Fmt.epr "positional trace files are only meaningful with --merge@.";
      exit 1
    end;
    let app =
      match app with
      | Some a -> a
      | None ->
        Fmt.epr "either --app APP (trace a run) or --merge FILES is required@.";
        exit 1
    in
    if capacity <= 0 then begin
      Fmt.epr "--capacity must be positive@.";
      exit 1
    end;
    match
      List.find_opt
        (fun e -> e.Core.Environment.label = env_name)
        (tuned_envs chip)
    with
    | None ->
      Fmt.epr "unknown environment %s@." env_name;
      exit 1
    | Some env ->
      let sim = Gpusim.Sim.create ~chip ~seed () in
      Gpusim.Sim.set_environment sim (Core.Environment.for_app env);
      let sink = Gpusim.Sim.trace sim in
      Gpusim.Trace.enable ~capacity sink;
      let outcome = app.Apps.App.run sim Apps.App.Original in
      let records = Gpusim.Trace.records sink in
      Fmt.pr "%s on %s under %s: %s@." app.Apps.App.name
        chip.Gpusim.Chip.name env_name
        (match outcome with Ok () -> "ok" | Error e -> "ERROR " ^ e);
      Fmt.pr "%d event(s) recorded (%d emitted, %d dropped by the ring)@."
        (List.length records)
        (Gpusim.Trace.emitted sink)
        (Gpusim.Trace.dropped sink);
      write_file out
        (Core.Json.to_string (Core.Telemetry.chrome_trace records) ^ "\n");
      Option.iter
        (fun p -> write_file p (Core.Telemetry.jsonl records))
        jsonl_out
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute one application with the event tracer enabled and export \
          the recorded simulator events (instruction issue and commit, \
          reorders, fences, barriers, contention samples) as a Chrome \
          trace-event file; or, with $(b,--merge), union per-worker trace \
          files into one timeline.")
    Term.(
      const run $ verbose $ seed $ chip $ app_term $ env_name $ out
      $ jsonl_out $ capacity $ merge $ merge_inputs)

let ablate_cmd =
  let runs = Arg.(value & opt int 150 & info [ "runs" ] ~docv:"N") in
  let run verbose seed chip runs =
    setup_log verbose;
    (* Ablate each ingredient of the tuned environment on one litmus
       instance, showing what each design choice buys. *)
    let inst = { Litmus.Test.idiom = Litmus.Test.SB; distance = 64 } in
    let tuned = Core.Tuning.shipped ~chip in
    let weak label strategy randomise =
      let env =
        Core.Environment.for_litmus (Core.Environment.make strategy ~randomise)
      in
      let n = Litmus.Runner.count_weak ~chip ~seed ~env ~runs inst in
      Fmt.pr "  %-34s %4d / %d weak@." label n runs
    in
    Fmt.pr "Ablation on %s, SB litmus test at distance 64:@."
      chip.Gpusim.Chip.name;
    let nat = Litmus.Runner.count_weak ~chip ~seed ~runs inst in
    Fmt.pr "  %-34s %4d / %d weak@." "no stress (baseline)" nat runs;
    weak "tuned (sequence + spread 2)" (Core.Stress.Sys tuned) false;
    weak "tuned + thread randomisation"
      (Core.Stress.Sys tuned) true;
    weak "worst sequence (pure stores)"
      (Core.Stress.Sys { tuned with sequence = [ Core.Access_seq.St ] })
      false;
    weak "over-spread (all 16 regions)"
      (Core.Stress.Sys { tuned with spread = 16 })
      false;
    weak "under-spread (1 region)"
      (Core.Stress.Sys { tuned with spread = 1 })
      false;
    weak "random locations (rand-str)"
      (Core.Stress.Rand { scratch_words = 1024 })
      false;
    weak "L2-walk (cache-str)" Core.Stress.Cache false
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Ablate the tuned environment's design choices (sequence,              spread, randomisation) on a litmus test.")
    Term.(const run $ verbose $ seed $ chip $ runs)

let run_litmus_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A .litmus test file.")
  in
  let runs = Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N") in
  let env_name =
    Arg.(value & opt string "sys-str+" & info [ "env" ] ~docv:"ENV")
  in
  let run verbose seed chip file runs env_name =
    setup_log verbose;
    let ic = open_in file in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    match Litmus.Lang.parse src with
    | Error e ->
      Fmt.epr "%s: %s@." file e;
      exit 1
    | Ok t -> (
      Fmt.pr "%a@." Litmus.Lang.pp t;
      let sc = Litmus.Lang.sc_allows t in
      Fmt.pr "condition reachable under SC: %b@." sc;
      match
        List.find_opt
          (fun e -> e.Core.Environment.label = env_name)
          (tuned_envs chip)
      with
      | None ->
        Fmt.epr "unknown environment %s@." env_name;
        exit 1
      | Some env ->
        let n =
          Litmus.Lang.count_satisfied ~chip ~seed
            ~env:(Core.Environment.for_litmus env) ~runs t
        in
        Fmt.pr "observed on %s under %s: %d/%d%s@." chip.Gpusim.Chip.name
          env_name n runs
          (if (not sc) && n > 0 then "  ** WEAK BEHAVIOUR **" else ""))
  in
  Cmd.v
    (Cmd.info "run-litmus"
       ~doc:"Parse a .litmus file, check its condition against the SC              oracle, and run it on the weak machine.")
    Term.(const run $ verbose $ seed $ chip $ file $ runs $ env_name)

(* ------------------------------------------------------------------ *)
(* Tables and figures                                                   *)

let table_cmd =
  let number =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Table number (1-6).")
  in
  let runs = Arg.(value & opt int 40 & info [ "runs" ] ~docv:"N") in
  let run verbose quiet seed chips all number (budget, budget_argv) runs jobs
      log resume shard listen spans strict timeout retries keep_going =
    setup_log ~quiet verbose;
    setup_supervision ~timeout ~retries ~keep_going ();
    Core.Tuning.set_strict strict;
    let chips = resolve_chips chips all in
    let grid =
      Core.Json.Assoc
        [ ("chips", json_strs (chip_names chips));
          ("budget", Core.Budget.to_json budget);
          ("runs", Core.Json.Int runs) ]
    in
    (* Only the Table 5 campaign is a flat independent grid today, so it
       alone defaults to the process backend (see `test`); the adaptive
       tables keep the domain pool. *)
    let procs_n =
      let n =
        match jobs with
        | Some n -> Core.Exec.clamp_jobs n
        | None -> Core.Exec.default_jobs ()
      in
      if
        number = 5 && n >= 2 && shard = None && resume = None
        && procs_enabled ()
      then Some n
      else None
    in
    let child_argv n ~k ~path =
      [ Sys.executable_name; "table"; string_of_int number;
        "--chips"; String.concat "," (chip_names chips);
        "--runs"; string_of_int runs;
        "--seed"; string_of_int seed;
        "-j"; "1"; "-q";
        "--shard"; Printf.sprintf "%d/%d" k n;
        "--log"; path ]
      @ budget_argv
      @ (if spans then [ "--spans" ] else [])
      @ (if strict then [ "--strict" ] else [])
      @ (match timeout with
        | Some t -> [ "--timeout"; string_of_float t ]
        | None -> [])
      @ (if retries > 0 then [ "--retries"; string_of_int retries ] else [])
      @ if keep_going then [ "--keep-going" ] else []
    in
    let backend =
      match procs_n with
      | Some n -> Core.Exec.Processes n
      | None -> backend_of jobs
    in
    let ledgered :
        type a.
        kind:string ->
        encode:(a -> Core.Json.t) ->
        (Core.Runlog.journal option -> a) ->
        unit =
     fun ~kind ~encode f ->
      guarded (fun () ->
          with_ledger ?shard
            ?procs:(Option.map (fun n -> (n, child_argv n)) procs_n)
            ?listen ~spans
            ~campaign:(Printf.sprintf "table%d" number)
            ~seed ~jobs ~grid ~log ~resume ~kind ~encode f);
      conclude_supervised ()
    in
    let static render =
      if log <> None || resume <> None then
        Fmt.epr "table %d is static; --log/--resume ignored@." number;
      render Fmt.stdout
    in
    let per_chip journal chip =
      Option.map
        (fun j -> Core.Runlog.extend j (chip.Gpusim.Chip.name ^ "/"))
        journal
    in
    match number with
    | 1 -> static Core.Report.table1
    | 2 ->
      ledgered ~kind:"tuning" ~encode:tuning_to_json (fun journal ->
          let results =
            List.map
              (fun chip ->
                let r =
                  Core.Tuning.run ~backend
                    ?journal:(per_chip journal chip)
                    ~chip ~seed ~budget ()
                in
                (r, r.Core.Tuning.elapsed_s /. 60.0))
              chips
          in
          Core.Report.table2 Fmt.stdout results;
          results)
    | 3 ->
      ledgered ~kind:"seq" ~encode:seq_to_json (fun journal ->
          let chip = List.hd chips in
          let patch =
            Core.Patch_finder.run ~backend ?journal ~chip ~seed ~budget ()
          in
          let r =
            Core.Seq_finder.run ~backend ?journal ~chip ~seed ~budget
              ~patch:patch.Core.Patch_finder.chosen ()
          in
          Core.Report.table3 Fmt.stdout r;
          (chip.Gpusim.Chip.name, r))
    | 4 -> static Core.Report.table4
    | 5 ->
      ledgered ~kind:"campaign" ~encode:Core.Campaign.rows_to_json
        (fun journal ->
          let rows =
            Core.Campaign.run ~backend ?journal ~chips
              ~environments_for:tuned_envs ~apps:Apps.Registry.all ~runs
              ~seed ()
          in
          if shard = None then Core.Report.table5 Fmt.stdout rows;
          rows)
    | 6 ->
      ledgered ~kind:"harden" ~encode:Core.Harden.results_to_json
        (fun journal ->
          let results =
            List.concat_map
              (fun app ->
                List.map
                  (fun chip ->
                    let journal =
                      Option.map
                        (fun j ->
                          Core.Runlog.extend j
                            (app.Apps.App.name ^ "/" ^ chip.Gpusim.Chip.name
                           ^ "/"))
                        journal
                    in
                    Core.Harden.insert ~chip ~backend ?journal ~app ~seed ())
                  chips)
              Apps.Registry.fence_free
          in
          Core.Report.table6 Fmt.stdout results;
          results)
    | n ->
      Fmt.epr "no table %d (the paper has tables 1-6)@." n;
      exit 1
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Reproduce a table of the paper.")
    Term.(
      const run $ verbose $ quiet $ seed $ chips $ all_chips $ number
      $ budget_term $ runs $ jobs_term $ log_term $ resume_term $ shard_term
      $ listen_term $ spans_term $ strict_term $ timeout_term $ retries_term
      $ keep_going_term)

let figure_cmd =
  let number =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Figure number (3-5).")
  in
  let runs = Arg.(value & opt int 30 & info [ "runs" ] ~docv:"N") in
  let run verbose quiet seed chips all number (budget, _budget_argv) runs csv
      jobs log resume shard strict timeout retries keep_going =
    setup_log ~quiet verbose;
    setup_supervision ~timeout ~retries ~keep_going ();
    Core.Tuning.set_strict strict;
    let chips = resolve_chips chips all in
    let backend = backend_of jobs in
    let grid =
      Core.Json.Assoc
        [ ("chips", json_strs (chip_names chips));
          ("budget", Core.Budget.to_json budget);
          ("runs", Core.Json.Int runs) ]
    in
    let ledgered :
        type a.
        kind:string ->
        encode:(a -> Core.Json.t) ->
        (Core.Runlog.journal option -> a) ->
        unit =
     fun ~kind ~encode f ->
      guarded (fun () ->
          with_ledger ?shard
            ~campaign:(Printf.sprintf "figure%d" number)
            ~seed ~jobs ~grid ~log ~resume ~kind ~encode f);
      conclude_supervised ()
    in
    let per_chip journal chip =
      Option.map
        (fun j -> Core.Runlog.extend j (chip.Gpusim.Chip.name ^ "/"))
        journal
    in
    match number with
    | 3 ->
      ledgered ~kind:"patch"
        ~encode:(chipped_to_json Core.Patch_finder.result_to_json)
        (fun journal ->
          List.map
            (fun chip ->
              let r =
                Core.Patch_finder.run ~backend
                  ?journal:(per_chip journal chip)
                  ~chip ~seed ~budget ()
              in
              Core.Report.figure3 Fmt.stdout ~chip:chip.Gpusim.Chip.name r;
              write_csv csv (Core.Report.patch_csv r);
              (chip.Gpusim.Chip.name, r))
            chips)
    | 4 ->
      ledgered ~kind:"spread"
        ~encode:(chipped_to_json Core.Spread_finder.result_to_json)
        (fun journal ->
          List.map
            (fun chip ->
              let journal = per_chip journal chip in
              let patch =
                Core.Patch_finder.run ~backend ?journal ~chip ~seed ~budget ()
              in
              let sequence =
                (Core.Tuning.shipped ~chip).Core.Stress.sequence
              in
              let r =
                Core.Spread_finder.run ~backend ?journal ~chip ~seed ~budget
                  ~patch:patch.Core.Patch_finder.chosen ~sequence ()
              in
              Core.Report.figure4 Fmt.stdout ~chip:chip.Gpusim.Chip.name r;
              write_csv csv (Core.Report.spread_csv r);
              (chip.Gpusim.Chip.name, r))
            chips)
    | 5 ->
      ledgered ~kind:"cost" ~encode:Core.Cost.points_to_json (fun journal ->
          let apps = Apps.Registry.fence_free in
          (* emp_for runs inside a Cost job; keep the nested hardening serial
             so a parallel cost campaign does not oversubscribe domains. *)
          let emp_for chip app =
            (Core.Harden.insert ~chip ~app ~seed ()).Core.Harden.fences
          in
          let points =
            Core.Cost.run ~backend ?journal ~chips ~apps ~emp_for ~runs ~seed
              ()
          in
          Core.Report.figure5 Fmt.stdout points;
          write_csv csv (Core.Report.cost_csv points);
          points)
    | n ->
      Fmt.epr "no figure %d here (the paper's figures 3-5 are reproducible)@." n;
      exit 1
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Reproduce a figure of the paper.")
    Term.(
      const run $ verbose $ quiet $ seed $ chips $ all_chips $ number
      $ budget_term $ runs $ csv_out $ jobs_term $ log_term $ resume_term
      $ shard_term $ strict_term $ timeout_term $ retries_term
      $ keep_going_term)

(* ------------------------------------------------------------------ *)
(* Chaos testing: deterministic fault injection                         *)

let chaos_cmd =
  let app_term =
    Arg.(
      value
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"Single application (default: all ten).")
  in
  let runs = Arg.(value & opt int 12 & info [ "runs" ] ~docv:"N") in
  let env_name =
    Arg.(value & opt string "sys-str+" & info [ "env" ] ~docv:"ENV")
  in
  let log_term =
    Arg.(
      value & opt string "chaos.jsonl"
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Ledger of the faulted campaign.  Its header describes a \
             $(b,test) campaign, so $(b,gpuwmm test --resume) $(docv) with \
             the same parameters re-runs the quarantined jobs fault-free.")
  in
  let faults_term =
    Arg.(
      value & opt string "raise,ledger"
      & info [ "faults" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated executor fault kinds to inject: $(b,raise) \
             (job crash), $(b,hang) (wedge until the watchdog cancels), \
             $(b,corrupt) (silent wrong result), $(b,ledger) (ledger \
             write failure).")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.25
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Per-attempt fault probability in [0,1].")
  in
  let fault_seed_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the fault plan; faults are a pure function of \
             (fault seed, job index, attempt).  Default: derived from \
             $(b,--seed).")
  in
  let fault_attempts =
    Arg.(
      value & opt int 1
      & info [ "fault-attempts" ] ~docv:"K"
          ~doc:
            "Only the first $(docv) attempts of a job may fault; retries \
             beyond them run clean (so --retries $(docv) always heals \
             raise/hang/ledger faults).")
  in
  let soft_rate =
    Arg.(
      value & opt float 0.0
      & info [ "soft-rate" ] ~docv:"P"
          ~doc:
            "Per-store probability of an injected single-bit soft error \
             in simulated global memory (armed for the reference run too, \
             so the executor-fault invariants still hold).")
  in
  let run verbose quiet seed chip app runs env_name jobs log faults
      fault_rate fault_seed fault_attempts soft_rate timeout retries
      keep_going =
    setup_log ~quiet verbose;
    let kinds =
      match Core.Fault.parse_kinds faults with
      | Ok k -> k
      | Error e ->
        Fmt.epr "--faults: %s@." e;
        exit 2
    in
    let fault_seed =
      match fault_seed with Some s -> s | None -> seed lxor 0xfa17
    in
    let plan =
      try
        Core.Fault.plan ~rate:fault_rate ~kinds
          ~faulty_attempts:fault_attempts ~soft_error_rate:soft_rate
          ~seed:fault_seed ()
      with Invalid_argument m ->
        Fmt.epr "%s@." m;
        exit 2
    in
    (* A hang can only be survived when the watchdog is armed. *)
    let timeout =
      match timeout with
      | Some _ -> timeout
      | None -> if List.mem Core.Fault.Hang kinds then Some 5.0 else None
    in
    if retries < 0 then begin
      Fmt.epr "--retries must be non-negative@.";
      exit 2
    end;
    match
      List.find_opt
        (fun e -> e.Core.Environment.label = env_name)
        (tuned_envs chip)
    with
    | None ->
      Fmt.epr "unknown environment %s@." env_name;
      exit 1
    | Some env -> (
      let apps = match app with Some a -> [ a ] | None -> Apps.Registry.all in
      let backend = backend_of jobs in
      (* Soft errors are simulator-level and deterministic per device seed,
         so they are armed for the reference run too: the invariants below
         measure executor faults only. *)
      if soft_rate > 0.0 then
        Gpusim.Sim.set_soft_error_default (Some (soft_rate, fault_seed));
      Fmt.pr "chaos: fault plan: %a@." Core.Fault.pp plan;
      let campaign_rows journal =
        Core.Campaign.run ~backend ?journal ~chips:[ chip ]
          ~environments_for:(fun _ -> [ env ])
          ~apps ~runs ~seed ()
      in
      let cells_of rows =
        List.concat_map (fun r -> r.Core.Campaign.cells) rows
      in
      (* 1. Fault-free reference at the same seeds. *)
      Core.Exec.set_supervision None;
      let ref_cells = cells_of (campaign_rows None) in
      let n_jobs = List.length ref_cells in
      (* 2. Pure predictions from the fault plan — computed before the
         faulted run, never from its observations. *)
      let predictions =
        List.init n_jobs (fun i -> Core.Fault.predict plan ~retries ~index:i)
      in
      let predicted o =
        List.concat
          (List.mapi
             (fun i (p : Core.Fault.prediction) ->
               if p.Core.Fault.outcome = o then [ i ] else [])
             predictions)
      in
      let pred_quarantined = predicted `Quarantined in
      let pred_corrupted = predicted `Corrupted in
      let pred_retried =
        List.fold_left
          (fun acc (p : Core.Fault.prediction) ->
            acc + p.Core.Fault.attempts - 1)
          0 predictions
      in
      Fmt.pr
        "chaos: %d job(s); predicting %d quarantine(s), %d corrupted \
         result(s), %d retry attempt(s)@."
        n_jobs
        (List.length pred_quarantined)
        (List.length pred_corrupted)
        pred_retried;
      (* 3. The same campaign under the fault plan, supervised and
         ledgered. *)
      Core.Exec.set_supervision
        (Some
           (Core.Exec.supervision ?timeout_s:timeout ~retries ~keep_going
              ~faults:plan ()));
      let grid =
        Core.Json.Assoc
          [ ("chips", json_strs (chip_names [ chip ]));
            ("envs", json_strs [ env_name ]);
            ("apps", json_strs (app_names apps));
            ("runs", Core.Json.Int runs) ]
      in
      let header =
        Core.Runlog.make_header ?jobs ~campaign:"test" ~seed ~grid ()
      in
      let sink = Core.Runlog.create ~path:log header in
      let journal = Core.Runlog.journal ~sink "" in
      let outcome =
        match campaign_rows (Some journal) with
        | rows ->
          Core.Runlog.append_result sink ~kind:"campaign"
            (Core.Campaign.rows_to_json rows);
          Core.Runlog.close sink;
          Ok rows
        | exception Core.Exec.Job_failed fl ->
          Core.Runlog.abort sink;
          Error fl
      in
      (* set_supervision resets the summary, so drain first. *)
      let summary = Core.Exec.drain_summary () in
      Core.Exec.set_supervision None;
      match outcome with
      | Error fl ->
        Fmt.epr "failed: %a@." pp_failure fl;
        Fmt.epr
          "chaos: campaign aborted on a poison job (no --keep-going); %s \
           is footer-less and resumable@."
          log;
        exit exit_failed
      | Ok rows ->
        let chaos_cells = cells_of rows in
        let violations = ref 0 in
        let check name ok detail =
          if ok then Fmt.pr "  ok: %s@." name
          else begin
            incr violations;
            Fmt.pr "  VIOLATED: %s (%s)@." name (detail ())
          end
        in
        let ints l = String.concat "," (List.map string_of_int l) in
        Fmt.pr "chaos: checking invariants@.";
        let actual_q =
          List.sort compare
            (List.map
               (fun fl -> fl.Core.Exec.f_index)
               summary.Core.Exec.quarantined)
        in
        check "quarantine set matches the pure fault-plan prediction"
          (actual_q = pred_quarantined)
          (fun () ->
            Printf.sprintf "predicted [%s], observed [%s]"
              (ints pred_quarantined) (ints actual_q));
        check "retry count matches prediction"
          (summary.Core.Exec.retried = pred_retried)
          (fun () ->
            Printf.sprintf "predicted %d, observed %d" pred_retried
              summary.Core.Exec.retried);
        let identical = ref true in
        let first_diff = ref (-1) in
        List.iteri
          (fun i (p : Core.Fault.prediction) ->
            if
              p.Core.Fault.outcome = `Clean
              && List.nth chaos_cells i <> List.nth ref_cells i
            then begin
              identical := false;
              if !first_diff < 0 then first_diff := i
            end)
          predictions;
        check
          "surviving jobs are bit-identical to the fault-free reference \
           (retries reuse the planned seed)"
          !identical
          (fun () -> Printf.sprintf "cell %d differs" !first_diff);
        check "quarantined cells carry no measurements"
          (List.for_all
             (fun i ->
               let c = List.nth chaos_cells i in
               c.Core.Campaign.quarantined <> None && c.Core.Campaign.runs = 0)
             pred_quarantined)
          (fun () -> "a quarantined cell has data");
        (match Core.Runlog.load log with
        | Error e -> check "ledger reloads" false (fun () -> e)
        | Ok l ->
          let failed_idx =
            List.sort compare
              (List.filter_map
                 (fun (j : Core.Runlog.job) ->
                   if j.Core.Runlog.failed <> None then
                     Some j.Core.Runlog.index
                   else None)
                 l.Core.Runlog.jobs)
          in
          check "ledger records every quarantined job"
            (failed_idx = pred_quarantined)
            (fun () ->
              Printf.sprintf "ledger has failed records [%s]"
                (ints failed_idx));
          check "ledger footer counts the quarantined jobs"
            (match l.Core.Runlog.footer with
            | Some ft ->
              ft.Core.Runlog.quarantined = List.length pred_quarantined
            | None -> false)
            (fun () -> "footer missing or wrong count");
          (* 5. Resume the chaos ledger with faults cleared: quarantined
             jobs re-run clean and recover the reference result;
             corrupted records persist (they were recorded as
             successes — silent corruption survives resume). *)
          let resumed_path = log ^ ".resumed" in
          let cache = Core.Runlog.cache_of_ledger l in
          let sink2 =
            Core.Runlog.create ~path:resumed_path l.Core.Runlog.header
          in
          let journal2 =
            Core.Runlog.journal ~sink:sink2 ~cache ~origin:log ""
          in
          let rows2 = campaign_rows (Some journal2) in
          Core.Runlog.append_result sink2 ~kind:"campaign"
            (Core.Campaign.rows_to_json rows2);
          Core.Runlog.close sink2;
          let cells2 = cells_of rows2 in
          let recovered = ref true in
          let first_bad = ref (-1) in
          List.iteri
            (fun i (p : Core.Fault.prediction) ->
              let expect =
                if p.Core.Fault.outcome = `Corrupted then
                  List.nth chaos_cells i
                else List.nth ref_cells i
              in
              if List.nth cells2 i <> expect then begin
                recovered := false;
                if !first_bad < 0 then first_bad := i
              end)
            predictions;
          check "fault-free resume recovers every quarantined cell"
            !recovered
            (fun () -> Printf.sprintf "cell %d" !first_bad);
          Fmt.pr "chaos: resumed ledger written to %s@." resumed_path);
        Core.Report.table5 Fmt.stdout rows;
        if !violations > 0 then begin
          Fmt.epr "chaos: %d invariant violation(s)@." !violations;
          exit exit_failed
        end;
        if pred_quarantined <> [] then begin
          Fmt.epr
            "degraded: %d cell(s) quarantined (as planned); recover with: \
             gpuwmm test --resume %s [same parameters]@."
            (List.length pred_quarantined)
            log;
          exit exit_degraded
        end)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a test campaign under a deterministic fault-injection plan \
          (job crashes, hangs, corrupted results, ledger write failures, \
          soft-error bit flips) and check the supervision invariants: \
          healed jobs are bit-identical to a fault-free run, quarantined \
          jobs are recorded in the ledger and recovered by a fault-free \
          resume.  Exits 0 when nothing was quarantined, 3 when the \
          campaign degraded as planned, 4 on an invariant violation or \
          abort.")
    Term.(
      const run $ verbose $ quiet $ seed $ chip $ app_term $ runs $ env_name
      $ jobs_term $ log_term $ faults_term $ fault_rate $ fault_seed_term
      $ fault_attempts $ soft_rate $ timeout_term $ retries_term
      $ keep_going_term)

(* ------------------------------------------------------------------ *)
(* Ledger-backed reporting and comparison                               *)

let merge_cmd =
  let inputs =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"SHARD"
          ~doc:"Shard ledgers to combine — the full 1/N .. N/N set.")
  in
  let out_term =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the merged ledger to $(docv).")
  in
  let run verbose paths out =
    setup_log verbose;
    match Core.Merge.merge ~out paths with
    | Error e ->
      Fmt.epr "merge failed: %s@." e;
      exit 2
    | Ok o ->
      Fmt.pr "merged %d shards (%d job records) into %s%s@."
        o.Core.Merge.shards o.Core.Merge.jobs o.Core.Merge.out_path
        (if o.Core.Merge.quarantined > 0 then
           Printf.sprintf
             " — %d quarantined job(s); finish it with --resume %s"
             o.Core.Merge.quarantined o.Core.Merge.out_path
         else if not o.Core.Merge.result_written then
           " — no result record yet; finish it with --resume"
         else "");
      if o.Core.Merge.quarantined > 0 then exit exit_degraded
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Combine the shard ledgers of a $(b,--shard)-partitioned campaign \
          into one canonical ledger.  Under \
          $(b,GPUWMM_LEDGER_DETERMINISTIC) the output is byte-identical to \
          a single-process run of the same campaign, so $(b,report), \
          $(b,compare) and $(b,--resume) work on it unchanged.  Fails \
          closed — writing nothing — on a missing or duplicated shard, \
          overlapping or missing jobs (resume the interrupted shard \
          first), or shards whose plan headers disagree.")
    Term.(const run $ verbose $ inputs $ out_term)

let report_cmd =
  let from_term =
    Arg.(
      required
      & opt (some file) None
      & info [ "from" ] ~docv:"LEDGER" ~doc:"Run ledger to render.")
  in
  let format_term =
    Arg.(
      value
      & opt (enum [ ("ascii", `Ascii); ("md", `Md); ("csv", `Csv) ]) `Ascii
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,ascii), $(b,md) or $(b,csv).")
  in
  let run verbose from format =
    setup_log verbose;
    match Core.Runlog.load from with
    | Error e ->
      Fmt.epr "%s: %s@." from e;
      exit 2
    | Ok l -> render_ledger_result ~format ~path:from l
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Rebuild the paper's tables and figures purely from a run ledger \
          (no re-execution), stamped with the ledger's provenance: path, \
          schema, campaign kind, seed, command line, creation time and \
          git version.")
    Term.(const run $ verbose $ from_term $ format_term)

let compare_cmd =
  let base_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline campaign ledger.")
  in
  let cand_term =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CANDIDATE" ~doc:"Candidate campaign ledger.")
  in
  let run verbose tolerance base cand =
    setup_log verbose;
    let rows_of path =
      match Core.Runlog.load path with
      | Error e ->
        Fmt.epr "%s: %s@." path e;
        exit 2
      | Ok l -> (
        match l.Core.Runlog.result with
        | Some ("campaign", data) -> (
          match Core.Campaign.rows_of_json data with
          | Ok rows -> (l.Core.Runlog.header, rows)
          | Error e ->
            Fmt.epr "%s: cannot decode campaign result: %s@." path e;
            exit 2)
        | Some (k, _) ->
          Fmt.epr
            "%s holds a %S result; compare needs campaign ledgers (from \
             $(b,test) or $(b,table 5))@."
            path k;
          exit 2
        | None ->
          Fmt.epr "%s has no result record (interrupted campaign?)@." path;
          exit 2)
    in
    let bh, baseline = rows_of base in
    let ch, candidate = rows_of cand in
    Fmt.pr "baseline:  %s (campaign %S, seed %d)@." base
      bh.Core.Runlog.campaign bh.Core.Runlog.seed;
    Fmt.pr "candidate: %s (campaign %S, seed %d)@." cand
      ch.Core.Runlog.campaign ch.Core.Runlog.seed;
    let c = Core.Report.compare_campaigns ~tolerance ~baseline ~candidate in
    Core.Report.pp_comparison Fmt.stdout c;
    if c.Core.Report.regressions <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two campaign ledgers cell by cell.  A cell whose \
          error-exposure rate drops beyond the tolerance — or a missing \
          row or cell — is a regression (the testing environment lost \
          effectiveness); exits 1 when any regression is found, for CI.")
    Term.(const run $ verbose $ tolerance_term $ base_term $ cand_term)

(* `gpuwmm status`: the operator's live view of a running (or finished)
   fleet, reassembled from the .hb heartbeat sidecars alone — no
   connection to the campaign process needed, so it works on a
   campaign started elsewhere, after the driver died, or on sidecars
   copied off the machine. *)
let status_cmd =
  let paths_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "What to watch: a directory (scanned for $(b,*.hb) sidecars), \
             a $(b,.hb) stream, or a campaign ledger (its $(b,.hb) sidecar \
             is looked up next to it).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Print one snapshot and exit (exit 1 if any worker is dead) \
             instead of watching live.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the snapshot as JSON (the /status document) on stdout; \
             implies $(b,--once).")
  in
  let interval_term =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh interval of the live view.")
  in
  let resolve path =
    if Sys.file_exists path && Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".hb")
      |> List.map (Filename.concat path)
      |> List.sort compare
    else if Filename.check_suffix path ".hb" then [ path ]
    else [ Core.Heartbeat.hb_path path ]
  in
  let run verbose paths once json interval =
    setup_log verbose;
    let hb_paths = List.concat_map resolve paths in
    if hb_paths = [] then begin
      Fmt.epr "no heartbeat streams found under %s@."
        (String.concat ", " paths);
      exit 1
    end;
    let det = Core.Runlog.deterministic_mode () in
    let now () = if det then 0.0 else Unix.gettimeofday () in
    let load () = Core.Fleetview.load ~now:(now ()) hb_paths in
    if json then begin
      let fleet = load () in
      print_string
        (Core.Json.to_string (Core.Fleetview.render_json fleet) ^ "\n");
      if fleet.Core.Fleetview.f_dead > 0 then exit 1
    end
    else if once then begin
      let fleet = load () in
      print_string (Core.Fleetview.render_ascii fleet);
      if fleet.Core.Fleetview.f_dead > 0 then exit 1
    end
    else begin
      let interval = Float.max 0.2 interval in
      let tty = Unix.isatty Unix.stdout in
      let rec watch () =
        let fleet = load () in
        if tty then print_string "\027[H\027[2J";
        print_string (Core.Fleetview.render_ascii fleet);
        flush stdout;
        (* Stop once every stream has delivered its orderly final beat
           (or died): the fleet is over and the view is final. *)
        let settled =
          fleet.Core.Fleetview.workers <> []
          && List.for_all
               (fun w ->
                 match w.Core.Fleetview.w_liveness with
                 | Core.Heartbeat.Done | Core.Heartbeat.Dead -> true
                 | _ -> false)
               fleet.Core.Fleetview.workers
        in
        if settled then begin
          if fleet.Core.Fleetview.f_dead > 0 then exit 1
        end
        else begin
          Unix.sleepf interval;
          watch ()
        end
      in
      watch ()
    end
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Show live per-shard progress of a running campaign from its \
          heartbeat sidecars: progress bars, rates, ETAs, stragglers, and \
          dead-worker detection (a worker quiet for two heartbeat \
          intervals is flagged dead).")
    Term.(const run $ verbose $ paths_term $ once $ json $ interval_term)

let main =
  Cmd.group
    (Cmd.info "gpuwmm" ~version:"1.0.0"
       ~doc:
         "Exposing errors related to weak memory in (simulated) GPU \
          applications — reproduction of Sorensen & Donaldson, PLDI 2016.")
    [ chips_cmd; litmus_cmd; run_litmus_cmd; check_cmd; tune_cmd; test_cmd;
      harden_cmd;
      target_cmd; trace_cmd; ablate_cmd; inspect_cmd; table_cmd; figure_cmd;
      chaos_cmd; status_cmd; merge_cmd; report_cmd; compare_cmd ]

let () = exit (Cmd.eval main)
