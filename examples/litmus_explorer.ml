(* Litmus explorer: sweep the MP, LB and SB tests over distances and
   stressed scratchpad locations, printing the patch structure of Fig. 3.

     dune exec examples/litmus_explorer.exe [-- CHIP] *)

let runs = 150

let () =
  let chip =
    match Sys.argv with
    | [| _; name |] -> (
      match Gpusim.Chip.by_name name with
      | Some c -> c
      | None ->
        Fmt.epr "unknown chip %s@." name;
        exit 1)
    | _ -> Gpusim.Chip.titan
  in
  Fmt.pr "Weak behaviours per stressed scratchpad location on %s@."
    chip.Gpusim.Chip.full_name;
  Fmt.pr "(%d executions per point; stressing sequence st ld)@.@." runs;
  let locations = List.init 16 (fun i -> i * 16) in
  Fmt.pr "%-4s %-6s" "test" "dist";
  List.iter (fun l -> Fmt.pr "%4d" l) locations;
  Fmt.pr "@.";
  List.iter
    (fun idiom ->
      List.iter
        (fun distance ->
          let inst = { Litmus.Test.idiom; distance } in
          Fmt.pr "%-4s %-6d" (Litmus.Test.idiom_name idiom) distance;
          List.iter
            (fun location ->
              let strategy =
                Core.Stress.Fixed
                  { sequence = [ Core.Access_seq.St; Core.Access_seq.Ld ];
                    locations = [ location ]; scratch_words = 256 }
              in
              let env =
                Core.Environment.for_litmus
                  (Core.Environment.make strategy ~randomise:false)
              in
              let weak =
                Litmus.Runner.count_weak ~chip ~seed:7 ~env ~runs inst
              in
              Fmt.pr "%4d" weak)
            locations;
          Fmt.pr "@.")
        [ 0; 32; 64; 128 ])
    Litmus.Test.idioms;
  Fmt.pr
    "@.Note the structure: nothing at d=0 (both locations share a memory \
     partition), and at larger distances whole patch-sized regions of \
     locations become effective — the basis of the paper's patch-size \
     tuning.@."
