(* Quickstart: the paper's Sec. 1 narrative on cbe-dot.

   The dot-product application from CUDA by Example guards its final
   reduction with a spinlock, but the unlock can become visible before the
   critical section's store.  Run natively it looks correct; run under the
   tuned testing environment the bug appears in a large fraction of
   executions.

     dune exec examples/quickstart.exe *)

let runs = 200

let count_errors ~env =
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let chip = Gpusim.Chip.k20 in
  let master = Gpusim.Rng.create 2024 in
  let errors = ref 0 in
  let sample = ref "" in
  for _ = 1 to runs do
    let sim = Gpusim.Sim.create ~chip ~seed:(Gpusim.Rng.bits30 master) () in
    (match env with Some e -> Gpusim.Sim.set_environment sim e | None -> ());
    match app.Apps.App.run sim Apps.App.Original with
    | Ok () -> ()
    | Error msg ->
      incr errors;
      if !sample = "" then sample := msg
  done;
  (!errors, !sample)

let () =
  Fmt.pr "cbe-dot on the (simulated) Tesla K20, %d executions each:@.@." runs;
  let native, _ = count_errors ~env:None in
  Fmt.pr "  natively:        %3d / %d erroneous runs@." native runs;
  let tuned = Core.Tuning.shipped ~chip:Gpusim.Chip.k20 in
  let env = Core.Environment.for_app (Core.Environment.sys_plus ~tuned) in
  let stressed, msg = count_errors ~env:(Some env) in
  Fmt.pr "  under sys-str+:  %3d / %d erroneous runs@." stressed runs;
  if msg <> "" then Fmt.pr "  example failure: %s@." msg;
  Fmt.pr
    "@.A developer who only ever runs the application natively would \
     conclude it is correct; the tuned stressing environment exposes the \
     missing fence immediately.  Try:@.";
  Fmt.pr "  dune exec bin/gpuwmm_cli.exe -- harden --app cbe-dot --chip K20@."
