(* Testing your own kernel, black-box: the end-user workflow.

   We write a small message-passing pipeline in the kernel eDSL, give it a
   post-condition, and hand it to the testing environment — without
   telling the tester anything about the communication idiom inside.

     dune exec examples/custom_app.exe *)

let n_stages = 6

(* Each block computes a value and passes it to the next block through a
   mailbox guarded by a ready flag — an MP handshake with no fence.  The
   tester does not know this. *)
let pipeline_kernel =
  let open Gpusim.Kbuild in
  kernel "pipeline" ~params:[ "mailbox"; "flags"; "out" ]
    [ when_
        (tid = int 0)
        [ if_
            (bid = int 0)
            [ store (param "mailbox" + int 0) (int 1000);
              store (param "flags" + int 0) (int 1) ]
            [ def "f" (int 0);
              while_ (reg "f" <> int 1)
                [ load "f" (param "flags" + (bid - int 1)) ];
              load "v" (param "mailbox" + (bid - int 1));
              store (param "mailbox" + bid) (reg "v" + int 1);
              store (param "flags" + bid) (int 1) ];
          store (param "out" + bid) (int 1) ] ]

let my_app =
  { Apps.App.name = "my-pipeline";
    source = "examples/custom_app.ml";
    communication = "per-block mailbox published under a ready flag";
    post_condition = "stage k holds 1000 + k";
    has_fences = false;
    kernels = [ pipeline_kernel ];
    max_ticks = 200_000;
    run =
      (fun sim fencing ->
        Apps.App.guard (fun () ->
            let mailbox = Gpusim.Sim.alloc sim n_stages in
            let flags = Gpusim.Sim.alloc sim n_stages in
            let out = Gpusim.Sim.alloc sim n_stages in
            Apps.App.exec sim fencing ~max_ticks:200_000 ~grid:n_stages
              ~block:2 pipeline_kernel
              ~args:[ ("mailbox", mailbox); ("flags", flags); ("out", out) ];
            for k = 0 to n_stages - 1 do
              let got = Gpusim.Sim.read sim (mailbox + k) in
              Apps.App.check
                (got = 1000 + k)
                (Printf.sprintf "stage %d holds %d, expected %d" k got
                   (1000 + k))
            done)) }

let () =
  let chip = Gpusim.Chip.titan in
  let tuned = Core.Tuning.shipped ~chip in
  let env = Core.Environment.sys_plus ~tuned in
  Fmt.pr "Black-box testing a custom pipeline kernel on %s:@.@."
    chip.Gpusim.Chip.full_name;
  List.iter
    (fun (label, e) ->
      let cell =
        Core.Campaign.test_app ~chip ~env:e ~app:my_app ~runs:60 ~seed:5
      in
      Fmt.pr "  %-9s %2d / %2d erroneous runs%s@." label
        cell.Core.Campaign.errors cell.Core.Campaign.runs
        (if cell.Core.Campaign.example = "" then ""
         else "   e.g. " ^ cell.Core.Campaign.example))
    [ ("no-str-", Core.Environment.make Core.Stress.No_stress ~randomise:false);
      ("sys-str+", env) ];
  Fmt.pr "@.Now let empirical fence insertion repair it:@.";
  let config =
    { (Core.Harden.default_config ~chip) with stability_runs = 120 }
  in
  let r = Core.Harden.insert ~chip ~config ~app:my_app ~seed:6 () in
  Fmt.pr "  suggested fences: %s@."
    (String.concat ", "
       (List.map
          (fun (k, s) -> Printf.sprintf "%s after site %d" k s)
          r.Core.Harden.fences));
  Fmt.pr "@.%s@."
    (Gpusim.Kernel_pp.to_string
       (Apps.App.apply_fencing (Apps.App.Sites r.Core.Harden.fences)
          pipeline_kernel))
