(* Empirical fence insertion (Alg. 1) on cbe-dot, with the reordering
   diagnosis that points at the root cause.

     dune exec examples/harden_app.exe *)

let () =
  let chip = Gpusim.Chip.k20 in
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in

  (* First, watch the reordering diagnosis on a failing stressed run. *)
  Fmt.pr "Diagnosing cbe-dot under sys-str+ on the %s:@.@."
    chip.Gpusim.Chip.full_name;
  let tuned = Core.Tuning.shipped ~chip in
  let env = Core.Environment.for_app (Core.Environment.sys_plus ~tuned) in
  let master = Gpusim.Rng.create 11 in
  let rec failing_run attempts =
    if attempts = 0 then None
    else begin
      let sim = Gpusim.Sim.create ~chip ~seed:(Gpusim.Rng.bits30 master) () in
      Gpusim.Sim.set_environment sim env;
      let diag = Gpusim.Diagnosis.attach sim in
      (* cbe-dot's allocation order (patch-aligned): mutex, a, b, c. *)
      Gpusim.Diagnosis.add_region diag "mutex" ~base:0 ~len:1;
      Gpusim.Diagnosis.add_region diag "a" ~base:32 ~len:64;
      Gpusim.Diagnosis.add_region diag "b" ~base:96 ~len:64;
      Gpusim.Diagnosis.add_region diag "c (dot result)" ~base:160 ~len:1;
      match app.Apps.App.run sim Apps.App.Original with
      | Error msg -> Some (msg, diag)
      | Ok () -> failing_run (attempts - 1)
    end
  in
  (match failing_run 100 with
  | Some (msg, diag) ->
    Fmt.pr "  failure: %s@." msg;
    Fmt.pr "  most frequent reorderings in that run:@.";
    List.iteri
      (fun i f ->
        if i < 5 then
          Fmt.pr "    %4d x %s overtaken by %s@." f.Gpusim.Diagnosis.count
            f.Gpusim.Diagnosis.overtaken f.Gpusim.Diagnosis.committed)
      (Gpusim.Diagnosis.report diag)
  | None -> Fmt.pr "  (no failing run found in 100 attempts)@.");

  (* Then run the fence insertion itself. *)
  Fmt.pr "@.Running empirical fence insertion (Alg. 1)...@.";
  let config =
    { (Core.Harden.default_config ~chip) with stability_runs = 150 }
  in
  let r = Core.Harden.insert ~chip ~config ~app ~seed:3 () in
  Fmt.pr
    "  %d candidate fence sites reduced to %d in %d round(s), %d checks, \
     %.1f s@."
    r.Core.Harden.initial
    (List.length r.Core.Harden.fences)
    r.Core.Harden.rounds r.Core.Harden.checks r.Core.Harden.elapsed_s;
  Fmt.pr "@.The hardened kernel (note the fence before the unlock):@.@.";
  let k =
    Apps.App.apply_fencing (Apps.App.Sites r.Core.Harden.fences)
      (List.hd app.Apps.App.kernels)
  in
  Fmt.pr "%s@." (Gpusim.Kernel_pp.to_string k)
