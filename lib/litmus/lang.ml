type instr =
  | Ld of string * string
  | St of string * int
  | Membar

type cond = { thread : int; register : string; value : int }

type t = {
  name : string;
  init : (string * int * int option) list;
  threads : instr list list;
  exists : cond list;
}

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)

type token =
  | Tident of string
  | Tint of int
  | Tlbrace | Trbrace | Tlparen | Trparen
  | Tsemi | Tcomma | Teq | Tat | Tpipe | Tcolon | Tand
  | Teof

exception Syntax of int * string

let lex src =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let emit t = tokens := (t, !line) :: !tokens in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | '\n' -> incr line
    | ' ' | '\t' | '\r' -> ()
    | '{' -> emit Tlbrace
    | '}' -> emit Trbrace
    | '(' -> emit Tlparen
    | ')' -> emit Trparen
    | ';' -> emit Tsemi
    | ',' -> emit Tcomma
    | '=' -> emit Teq
    | '@' -> emit Tat
    | '|' -> emit Tpipe
    | ':' -> emit Tcolon
    | '/' ->
      if !i + 1 < n && src.[!i + 1] = '\\' then begin
        emit Tand;
        incr i
      end
      else raise (Syntax (!line, "lone '/'"))
    | '#' ->
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done;
      i := !i - 1
    | '-' | '0' .. '9' ->
      let start = !i in
      if c = '-' then incr i;
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      (match int_of_string_opt s with
      | Some v -> emit (Tint v)
      | None -> raise (Syntax (!line, "bad integer " ^ s)));
      i := !i - 1
    | c when is_ident c ->
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      emit (Tident (String.sub src start (!i - start)));
      i := !i - 1
    | c -> raise (Syntax (!line, Printf.sprintf "unexpected character %C" c)));
    incr i
  done;
  emit Teof;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                             *)

type stream = { mutable toks : (token * int) list }

let peek s = match s.toks with (t, _) :: _ -> t | [] -> Teof
let line_of s = match s.toks with (_, l) :: _ -> l | [] -> 0

let advance s =
  match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let expect s t what =
  if peek s = t then advance s
  else raise (Syntax (line_of s, "expected " ^ what))

let ident s =
  match peek s with
  | Tident x ->
    advance s;
    x
  | _ -> raise (Syntax (line_of s, "expected an identifier"))

let integer s =
  match peek s with
  | Tint v ->
    advance s;
    v
  | _ -> raise (Syntax (line_of s, "expected an integer"))

(* { x = 0; y = 0 @ 64 } *)
let parse_init s =
  expect s Tlbrace "'{'";
  let rec entries acc =
    match peek s with
    | Trbrace ->
      advance s;
      List.rev acc
    | _ ->
      let var = ident s in
      expect s Teq "'='";
      let v = integer s in
      let off =
        if peek s = Tat then begin
          advance s;
          Some (integer s)
        end
        else None
      in
      let acc = (var, v, off) :: acc in
      (match peek s with
      | Tsemi ->
        advance s;
        entries acc
      | Trbrace ->
        advance s;
        List.rev acc
      | _ -> raise (Syntax (line_of s, "expected ';' or '}'")))
  in
  entries []

(* P0 | P1 ;  then rows of instructions, '|'-separated, ';'-terminated *)
let parse_threads s =
  let rec header acc =
    let p = ident s in
    if String.length p < 2 || p.[0] <> 'P' then
      raise (Syntax (line_of s, "expected a thread header P<i>"));
    let acc = acc + 1 in
    match peek s with
    | Tpipe ->
      advance s;
      header acc
    | Tsemi ->
      advance s;
      acc
    | _ -> raise (Syntax (line_of s, "expected '|' or ';'"))
  in
  let n = header 0 in
  let columns = Array.make n [] in
  let parse_cell () =
    (* empty cell, or one instruction *)
    match peek s with
    | Tpipe | Tsemi -> None
    | Tident "membar" ->
      advance s;
      Some Membar
    | Tident "st" ->
      advance s;
      let var = ident s in
      expect s Tcomma "','";
      Some (St (var, integer s))
    | Tident "ld" ->
      advance s;
      let r = ident s in
      expect s Tcomma "','";
      Some (Ld (r, ident s))
    | _ -> raise (Syntax (line_of s, "expected st, ld, membar or empty cell"))
  in
  let rec rows () =
    match peek s with
    | Tident "exists" -> ()
    | Teof -> raise (Syntax (line_of s, "missing exists clause"))
    | _ ->
      for col = 0 to n - 1 do
        (match parse_cell () with
        | Some i -> columns.(col) <- i :: columns.(col)
        | None -> ());
        if col < n - 1 then expect s Tpipe "'|'"
      done;
      expect s Tsemi "';'";
      rows ()
  in
  rows ();
  Array.to_list (Array.map List.rev columns)

(* exists (0:r1 = 1 /\ 1:r2 = 0) *)
let parse_exists s =
  expect s (Tident "exists") "'exists'";
  expect s Tlparen "'('";
  let rec conds acc =
    let thread = integer s in
    expect s Tcolon "':'";
    let register = ident s in
    expect s Teq "'='";
    let value = integer s in
    let acc = { thread; register; value } :: acc in
    match peek s with
    | Tand ->
      advance s;
      conds acc
    | Trparen ->
      advance s;
      List.rev acc
    | _ -> raise (Syntax (line_of s, "expected '/\\' or ')'"))
  in
  conds []

let parse src =
  try
    let s = { toks = lex src } in
    expect s (Tident "GPU") "'GPU'";
    let name = ident s in
    let init = parse_init s in
    let threads = parse_threads s in
    let exists = parse_exists s in
    let t = { name; init; threads; exists } in
    (* Static checks: variables and thread indices must exist. *)
    let vars = List.map (fun (v, _, _) -> v) init in
    List.iteri
      (fun ti instrs ->
        ignore ti;
        List.iter
          (function
            | Ld (_, v) | St (v, _) ->
              if not (List.mem v vars) then
                raise (Syntax (0, "undeclared variable " ^ v))
            | Membar -> ())
          instrs)
      threads;
    List.iter
      (fun c ->
        if c.thread < 0 || c.thread >= List.length threads then
          raise (Syntax (0, "exists refers to missing thread")))
      exists;
    Ok t
  with Syntax (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)

let pp ppf t =
  Fmt.pf ppf "GPU %s@." t.name;
  Fmt.pf ppf "{ %s }@."
    (String.concat "; "
       (List.map
          (fun (v, i, off) ->
            match off with
            | None -> Printf.sprintf "%s = %d" v i
            | Some o -> Printf.sprintf "%s = %d @ %d" v i o)
          t.init));
  let n = List.length t.threads in
  Fmt.pf ppf "%s ;@."
    (String.concat " | " (List.init n (Printf.sprintf "P%d")));
  let instr_str = function
    | Ld (r, v) -> Printf.sprintf "ld %s, %s" r v
    | St (v, i) -> Printf.sprintf "st %s, %d" v i
    | Membar -> "membar"
  in
  let height =
    List.fold_left (fun m th -> Int.max m (List.length th)) 0 t.threads
  in
  for row = 0 to height - 1 do
    let cells =
      List.map
        (fun th ->
          match List.nth_opt th row with
          | Some i -> instr_str i
          | None -> "")
        t.threads
    in
    Fmt.pf ppf "%s ;@." (String.concat " | " cells)
  done;
  Fmt.pf ppf "exists (%s)@."
    (String.concat {| /\ |}
       (List.map
          (fun c -> Printf.sprintf "%d:%s = %d" c.thread c.register c.value)
          t.exists))

(* ------------------------------------------------------------------ *)
(* Layout and compilation                                               *)

let layout t =
  let next = ref 0 in
  let entries =
    List.map
      (fun (v, _, off) ->
        let o = match off with Some o -> o | None -> !next in
        next := Int.max !next (o + 1);
        (v, o))
      t.init
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (v, o) ->
      if Hashtbl.mem seen o then
        invalid_arg (Printf.sprintf "Lang.layout: variables overlap at %d" o);
      Hashtbl.add seen o v)
    entries;
  (entries, !next)

let regs_of_thread instrs =
  List.fold_left
    (fun acc i ->
      match i with
      | Ld (r, _) -> if List.mem r acc then acc else acc @ [ r ]
      | St _ | Membar -> acc)
    [] instrs

let out_slot ~thread ~index = (thread * 8) + index

let thread_body t ~thread instrs =
  let open Gpusim.Kbuild in
  let offsets, _ = layout t in
  let addr v = param "base" + int (List.assoc v offsets) in
  let body =
    List.map
      (function
        | St (v, value) -> store (addr v) (int value)
        | Ld (r, v) -> load r (addr v)
        | Membar -> fence)
      instrs
  in
  let dump =
    List.mapi
      (fun index r ->
        store (param "out" + int (out_slot ~thread ~index)) (reg r))
      (regs_of_thread instrs)
  in
  body @ dump

let to_kernel t =
  let open Gpusim.Kbuild in
  let rec dispatch i = function
    | [] -> []
    | [ instrs ] -> thread_body t ~thread:i instrs
    | instrs :: rest ->
      let next = Stdlib.( + ) i 1 in
      [ if_ (bid = int i) (thread_body t ~thread:i instrs) (dispatch next rest) ]
  in
  kernel ("litmus_" ^ t.name) ~params:[ "base"; "out" ]
    (dispatch 0 t.threads)

(* ------------------------------------------------------------------ *)
(* Running                                                              *)

type outcome = {
  registers : (int * string * int) list;
  satisfied : bool;
}

let poison = -99999

let check_exists t registers =
  List.for_all
    (fun c ->
      match
        List.find_opt
          (fun (th, r, _) -> th = c.thread && r = c.register)
          registers
      with
      | Some (_, _, v) -> v = c.value
      (* A register the thread never loads reads as 0, matching the
         kernel language's uninitialised-register semantics. *)
      | None -> c.value = 0)
    t.exists

let run_once ~chip ~seed ?(env = Gpusim.Sim.no_environment) t =
  Gpusim.Sim.with_sim ~words:4096 ~chip ~seed @@ fun sim ->
  Gpusim.Sim.set_environment sim env;
  let _, extent = layout t in
  let base = Gpusim.Sim.alloc sim extent in
  let n = List.length t.threads in
  let out = Gpusim.Sim.alloc sim (8 * n) in
  Gpusim.Sim.fill sim ~base:out ~len:(8 * n) poison;
  List.iter
    (fun (v, value, _) ->
      let offsets, _ = layout t in
      Gpusim.Sim.write sim (base + List.assoc v offsets) value)
    t.init;
  let result =
    Gpusim.Sim.launch sim ~max_ticks:50_000 ~grid:n ~block:1 (to_kernel t)
      ~args:[ ("base", base); ("out", out) ]
  in
  match result.Gpusim.Sim.outcome with
  | Gpusim.Sim.Timeout | Gpusim.Sim.Trapped _ -> None
  | Gpusim.Sim.Finished ->
    let registers =
      List.concat
        (List.mapi
           (fun thread instrs ->
             List.mapi
               (fun index r ->
                 (thread, r, Gpusim.Sim.read sim (out + out_slot ~thread ~index)))
               (regs_of_thread instrs))
           t.threads)
    in
    Some { registers; satisfied = check_exists t registers }

let count_satisfied ~chip ~seed ?env ~runs t =
  let master = Gpusim.Rng.create seed in
  let n = ref 0 in
  for _ = 1 to runs do
    match run_once ~chip ~seed:(Gpusim.Rng.bits30 master) ?env t with
    | Some o when o.satisfied -> incr n
    | Some _ | None -> ()
  done;
  !n

let sc_allows t =
  let offsets, _ = layout t in
  let mk thread instrs =
    Gpusim.Kernel.label
      { Gpusim.Kernel.name = Printf.sprintf "t%d" thread;
        params = [ "base"; "out" ];
        body = thread_body t ~thread instrs }
  in
  let threads = List.mapi mk t.threads in
  let args = List.map (fun _ -> [ ("base", 0); ("out", 1000) ]) t.threads in
  let init = List.map (fun (v, value, _) -> (List.assoc v offsets, value)) t.init in
  let watch_regs =
    List.concat
      (List.mapi
         (fun thread instrs ->
           List.map (fun r -> (thread, r)) (regs_of_thread instrs))
         t.threads)
  in
  let states =
    Gpusim.Sc_ref.run ~threads ~args ~init ~watch_mem:[] ~watch_regs ()
  in
  List.exists (fun s -> check_exists t s.Gpusim.Sc_ref.registers) states
