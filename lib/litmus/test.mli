(** The MP, LB and SB litmus tests (Fig. 2 of the paper), instantiated at
    a configurable distance between their communication locations.

    A test instance [Td] places the two communication locations [x] and
    [y] exactly [d] words apart in global memory, with the two
    communicating threads in distinct blocks; this mirrors Sec. 3.1, where
    the unknown data layout of applications is modelled by sweeping [d]. *)

type idiom = MP | LB | SB

val idiom_name : idiom -> string
val idioms : idiom list

type instance = {
  idiom : idiom;
  distance : int;  (** words between the communication locations *)
}

val kernel : instance -> Gpusim.Kernel.t
(** The two-block CUDA kernel for the instance.  Parameters: [x] (base of
    the communication pair; [y] is at [x + max 1 distance]) and [out]
    (two words receiving the observer's registers [r1, r2]). *)

val layout_words : instance -> int
(** Words needed for the communication pair. *)

val weak : instance -> r1:int -> r2:int -> bool
(** The test's weak-behaviour query on the final registers:
    MP: r1=1 and r2=0;  LB: r1=1 and r2=1;  SB: r1=0 and r2=0. *)

val sc_outcomes : instance -> (int * int) list
(** All (r1, r2) outcomes reachable under sequential consistency, computed
    with the independent {!Gpusim.Sc_ref} oracle (fences stripped to
    straight-line threads). *)

val threads : instance -> x:int -> Gpusim.Kernel.t list * (string * int) list list
(** The per-thread straight-line kernels and arguments used by
    {!sc_outcomes}; exposed for the test suite. *)
