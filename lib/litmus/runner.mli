(** Executing litmus-test instances on the simulated GPU and counting
    weak behaviours.

    This is the inner loop of all of Sec. 3's tuning campaigns: hundreds
    of thousands of short executions, each on a freshly zeroed device,
    under a caller-supplied testing environment (stressing blocks and/or
    thread randomisation). *)

type outcome = {
  r1 : int;
  r2 : int;
  weak : bool;
  timed_out : bool;
}

val run_once :
  chip:Gpusim.Chip.t ->
  seed:int ->
  ?env:Gpusim.Sim.environment ->
  Test.instance ->
  outcome
(** One execution: allocate the communication pair and the observation
    array, launch the two-block kernel, read back [r1, r2]. *)

val count_weak :
  chip:Gpusim.Chip.t ->
  seed:int ->
  ?env:Gpusim.Sim.environment ->
  runs:int ->
  Test.instance ->
  int
(** Number of weak outcomes over [runs] executions with seeds derived
    from [seed].  Timeouts are not counted as weak. *)

val observed :
  chip:Gpusim.Chip.t ->
  seed:int ->
  ?env:Gpusim.Sim.environment ->
  runs:int ->
  Test.instance ->
  (int * int) list
(** The distinct [(r1, r2)] outcomes over [runs] executions with seeds
    derived from [seed], sorted; timeouts are dropped.  This is the
    campaign side of checker cross-validation: every outcome observed
    here must be reachable for the model checker ([Core.Check]), and
    every observed {e weak} outcome must have a witness schedule. *)
