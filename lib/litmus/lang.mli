(** A concrete syntax for GPU litmus tests, in the style of the [litmus]
    tool's [.litmus] files, with a hand-written lexer and recursive-descent
    parser.

    Example:

    {v
GPU MP
{ x = 0; y = 0 @ 64 }
P0          | P1         ;
st x, 1     | ld r1, y   ;
membar      | ld r2, x   ;
st y, 1     |            ;
exists (1:r1 = 1 /\ 1:r2 = 0)
    v}

    Variables are allocated in global memory in declaration order; an
    optional [@ offset] pins a variable's word offset from the first
    variable, so the communication distance (Sec. 3.1) can be controlled
    from the test source.  Threads run in distinct blocks.  [membar] is a
    device-scope fence. *)

type instr =
  | Ld of string * string  (** [ld r, x] *)
  | St of string * int  (** [st x, 1] *)
  | Membar

type cond = { thread : int; register : string; value : int }

type t = {
  name : string;
  init : (string * int * int option) list;
      (** variable, initial value, optional word offset *)
  threads : instr list list;
  exists : cond list;  (** conjunction *)
}

val parse : string -> (t, string) result
(** Parse a test from source; errors carry a line number. *)

val pp : Format.formatter -> t -> unit
(** Print back in concrete syntax ([parse] of the output round-trips). *)

val layout : t -> (string * int) list * int
(** Word offsets of each variable (declaration order, honouring [@]
    pins) and the total extent.  Fails on overlapping pins. *)

val to_kernel : t -> Gpusim.Kernel.t
(** A grid-of-[n]-blocks kernel: block [i] runs thread [i]'s instructions;
    each observed register [r] of thread [i] is written to
    [out + i*8 + index(r)].  Parameters: [base] (variables) and [out]. *)

type outcome = {
  registers : (int * string * int) list;  (** all registers' final values *)
  satisfied : bool;  (** the [exists] condition held *)
}

val run_once :
  chip:Gpusim.Chip.t ->
  seed:int ->
  ?env:Gpusim.Sim.environment ->
  t ->
  outcome option
(** One execution on the weak machine; [None] on timeout. *)

val count_satisfied :
  chip:Gpusim.Chip.t ->
  seed:int ->
  ?env:Gpusim.Sim.environment ->
  runs:int ->
  t ->
  int

val sc_allows : t -> bool
(** Whether the [exists] condition is reachable under sequential
    consistency (via {!Gpusim.Sc_ref}); a test whose condition is
    SC-unreachable but observed on the weak machine is a weak
    behaviour. *)
