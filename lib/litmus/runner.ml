type outcome = { r1 : int; r2 : int; weak : bool; timed_out : bool }

(* A small device suffices: the communication pair, the observation array,
   and any scratchpad the environment allocates. *)
let device_words = 2048

let litmus_max_ticks = 50_000

let run_once ~chip ~seed ?(env = Gpusim.Sim.no_environment) inst =
  Gpusim.Sim.with_sim ~words:device_words ~chip ~seed @@ fun sim ->
  Gpusim.Sim.set_environment sim env;
  let x = Gpusim.Sim.alloc sim (Test.layout_words inst) in
  let out = Gpusim.Sim.alloc sim 2 in
  (* Initialise the observed registers to poison so that a timeout cannot
     masquerade as a weak outcome. *)
  Gpusim.Sim.write sim out (-1);
  Gpusim.Sim.write sim (out + 1) (-1);
  let result =
    (* Litmus kernels touch no shared memory, so size the per-block
       shared arrays at one word instead of the 64-word default — two
       app blocks per run, at hundreds of millions of runs. *)
    Gpusim.Sim.launch sim ~max_ticks:litmus_max_ticks ~shared_words:1
      ~grid:2 ~block:1 (Test.kernel inst)
      ~args:[ ("x", x); ("out", out) ]
  in
  let r1 = Gpusim.Sim.read sim out in
  let r2 = Gpusim.Sim.read sim (out + 1) in
  let timed_out =
    match result.Gpusim.Sim.outcome with
    | Gpusim.Sim.Finished -> false
    | Gpusim.Sim.Timeout | Gpusim.Sim.Trapped _ -> true
  in
  { r1; r2; weak = (not timed_out) && Test.weak inst ~r1 ~r2; timed_out }

let count_weak ~chip ~seed ?env ~runs inst =
  let master = Gpusim.Rng.create seed in
  let n = ref 0 in
  for _ = 1 to runs do
    let seed = Gpusim.Rng.bits30 master in
    if (run_once ~chip ~seed ?env inst).weak then incr n
  done;
  !n

let observed ~chip ~seed ?env ~runs inst =
  let master = Gpusim.Rng.create seed in
  let acc = ref [] in
  for _ = 1 to runs do
    let seed = Gpusim.Rng.bits30 master in
    let o = run_once ~chip ~seed ?env inst in
    if not o.timed_out then acc := (o.r1, o.r2) :: !acc
  done;
  List.sort_uniq compare !acc
