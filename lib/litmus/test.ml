type idiom = MP | LB | SB

let idiom_name = function MP -> "MP" | LB -> "LB" | SB -> "SB"
let idioms = [ MP; LB; SB ]

type instance = { idiom : idiom; distance : int }

(* Distance 0 means contiguous communication locations, i.e. one word
   apart, matching the paper's "number of memory words separating the
   communication locations". *)
let offset_y inst = 1 + inst.distance

let layout_words inst = offset_y inst + 1

(* Writer body: the instructions of thread 0 (block 0). *)
let writer inst ~x ~y =
  let open Gpusim.Kbuild in
  match inst.idiom with
  | MP -> [ store x (int 1); store y (int 1) ]
  | LB -> [ load "r1" x; store y (int 1); store (param "out" + int 0) (reg "r1") ]
  | SB ->
    [ store x (int 1); load "r1" y; store (param "out" + int 0) (reg "r1") ]

(* Observer body: the instructions of thread 1 (block 1). *)
let observer inst ~x ~y =
  let open Gpusim.Kbuild in
  match inst.idiom with
  | MP ->
    [ load "r1" y; load "r2" x;
      store (param "out" + int 0) (reg "r1");
      store (param "out" + int 1) (reg "r2") ]
  | LB -> [ load "r2" y; store x (int 1); store (param "out" + int 1) (reg "r2") ]
  | SB ->
    [ store y (int 1); load "r2" x; store (param "out" + int 1) (reg "r2") ]

let build_kernel inst =
  let open Gpusim.Kbuild in
  let x = param "x" in
  let y = param "x" + int (offset_y inst) in
  kernel
    (Printf.sprintf "%s_d%d" (idiom_name inst.idiom) inst.distance)
    ~params:[ "x"; "out" ]
    [ if_ (bid = int 0) (writer inst ~x ~y) (observer inst ~x ~y) ]

(* The kernel AST is a pure function of the instance, yet tuning
   campaigns rebuild it for every one of their millions of launches over
   a handful of distinct instances.  Memoised under a mutex, like
   {!Core.Stress.kernel}; the AST is immutable, so sharing one value
   across worker domains is safe. *)
let kernel_memo : (idiom * int, Gpusim.Kernel.t) Hashtbl.t = Hashtbl.create 16
let kernel_mu = Mutex.create ()

let kernel inst =
  let key = (inst.idiom, inst.distance) in
  Mutex.lock kernel_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock kernel_mu)
    (fun () ->
      match Hashtbl.find_opt kernel_memo key with
      | Some k -> k
      | None ->
        let k = build_kernel inst in
        Hashtbl.add kernel_memo key k;
        k)

let weak inst ~r1 ~r2 =
  match inst.idiom with
  | MP -> r1 = 1 && r2 = 0
  | LB -> r1 = 1 && r2 = 1
  | SB -> r1 = 0 && r2 = 0

(* Straight-line per-thread kernels for the SC oracle: the register
   observations flow through the same out-array stores as the weak
   machine's kernel. *)
let threads inst ~x =
  let mk name body =
    Gpusim.Kernel.label
      { Gpusim.Kernel.name; params = [ "x"; "out" ]; body }
  in
  let xk = Gpusim.Kbuild.param "x" in
  let yk = Gpusim.Kbuild.(param "x" + int (offset_y inst)) in
  let k0 = mk "t0" (writer inst ~x:xk ~y:yk) in
  let k1 = mk "t1" (observer inst ~x:xk ~y:yk) in
  let args = [ ("x", x); ("out", x + layout_words inst) ] in
  ([ k0; k1 ], [ args; args ])

let sc_outcomes inst =
  let x = 0 in
  let out = x + layout_words inst in
  let threads, args = threads inst ~x in
  let states =
    Gpusim.Sc_ref.run ~threads ~args ~init:[] ~watch_mem:[ out; out + 1 ]
      ~watch_regs:[] ()
  in
  List.map
    (fun (s : Gpusim.Sc_ref.state) ->
      match s.memory with
      | [ (_, r1); (_, r2) ] -> (r1, r2)
      | _ -> assert false)
    states
  |> List.sort_uniq compare
