(** Durable JSONL run ledger for long campaigns.

    The paper's campaigns are hours long (an hour per Table 5 cell,
    ~0.5 billion litmus executions for tuning), yet a killed driver used
    to lose everything and a finished one left no machine-readable
    record of what produced a table.  A {e ledger} fixes both: it is an
    append-only JSONL file written incrementally as {!Exec} jobs
    complete, containing

    {ul
    {- a {b header} record — schema version, campaign kind, command
       line, master seed, [--jobs], the parameter grid as JSON, and
       [git describe] when available;}
    {- one {b job} record per completed job — phase name, plan index,
       pre-derived sub-seed, error count, duration, and the reduced
       result payload as {!Json};}
    {- one {b result} record — the fully reduced driver result, written
       after the campaign's reduce step (what [gpuwmm report --from]
       renders);}
    {- a {b footer} — job/error totals, wall time, and a
       {!Telemetry} snapshot.}}

    {b Plan-order durability.}  Workers complete jobs out of order, but
    the writer holds a reorder buffer and only flushes a job record once
    every lower-indexed record of the same phase is on disk.  A killed
    run therefore leaves a ledger whose job records are a plan-order
    prefix per phase — exactly the shape {!cache_of_ledger} needs for
    resumption — and, in {{!deterministic_mode} deterministic mode}, a
    ledger that is byte-identical for every [--jobs] value.

    {b Resume.}  [--resume LEDGER] loads the old ledger, replays its
    completed job records as cached results (skipping their execution
    entirely), and re-runs only the remainder.  The property that a
    fresh run and a killed-then-resumed run produce bit-identical
    ledgers and reports, for any kill point and any [--jobs] in
    {1,2,4}, is qcheck-tested in [test/test_runlog.ml]. *)

val schema_version : int

val deterministic_mode : unit -> bool
(** True when the [GPUWMM_LEDGER_DETERMINISTIC] environment variable is
    set to anything but [""], ["0"] or ["false"].  In this mode every
    wall-clock-dependent ledger field is zeroed (header [created],
    [argv], [git], [jobs]; job durations; footer wall time and telemetry
    snapshot), so two runs of the same campaign at the same seed produce
    byte-identical ledgers regardless of parallelism or timing.  Used by
    the resume property tests and the CI kill/resume job. *)

(** {1 Records} *)

type header = {
  schema : int;
  campaign : string;  (** campaign kind, e.g. ["test"] or ["table5"] *)
  argv : string list;
  seed : int;
  jobs : int;  (** the [--jobs] value the run was started with *)
  grid : Json.t;  (** the parameter grid (chips, envs, apps, budget) *)
  git : string option;  (** [git describe --always --dirty] if available *)
  created : float;  (** unix time *)
  shard : string option;
      (** [Some "k/N"] marks a shard ledger (see {!Shard}); serialised
          only when present, and preserved in deterministic mode — a
          shard's identity is part of the plan, not of the wall clock *)
  merged : string list option;
      (** contributing shard-ledger paths, stamped by [gpuwmm merge]
          outside deterministic mode only (a merged deterministic
          ledger must stay byte-identical to the single-process run) *)
}

val make_header :
  ?argv:string list -> ?jobs:int -> ?shard:string -> campaign:string ->
  seed:int -> grid:Json.t -> unit -> header
(** Stamp a header for a fresh run.  [argv] defaults to [Sys.argv]; in
    {!deterministic_mode} the [argv], [git], [created] and [jobs] fields
    are zeroed as documented above ([shard] is kept). *)

type job = {
  phase : string;
      (** namespaced stage, e.g. ["campaign"], ["K20/patch"],
          ["checks"]; unique per [Exec.run] call within a ledger *)
  index : int;  (** plan index within the phase *)
  seed : int;  (** the job's pre-derived sub-seed *)
  errors : int;  (** weak/error observations, for progress & compare *)
  duration_s : float;
  result : Json.t;  (** codec-encoded job result; [Null] when [failed] *)
  attempts : int;
      (** supervised attempts consumed (1 unless retries healed the job);
          serialised only when above 1, so fault-free ledgers are
          byte-identical with and without supervision *)
  failed : string option;
      (** [Some reason] marks a quarantined job: the record keeps the
          plan-order stream whole but carries no result, and resuming
          the ledger re-runs the job *)
}

type footer = {
  total_jobs : int;
  total_errors : int;
  quarantined : int;
      (** failed job records in this ledger (serialised only when
          non-zero); a non-zero value marks a degraded campaign *)
  wall_s : float;
  telemetry : Json.t;
}

type ledger = {
  header : header;
  jobs : job list;  (** in file order *)
  result : (string * Json.t) option;  (** (kind, data) *)
  footer : footer option;  (** absent for interrupted runs *)
  torn : bool;  (** a trailing partial line was dropped (killed mid-write) *)
}

(** {1 Writing} *)

type t
(** An open ledger writer.  All operations are mutex-guarded and safe to
    call from any worker domain. *)

val create : ?deterministic:bool -> path:string -> header -> t
(** Truncate/create [path] and write the header line.  [deterministic]
    defaults to {!deterministic_mode}[ ()] and controls zeroing of job
    durations and footer timing at write time. *)

val path : t -> string

val append_job : ?pos:int -> t -> job -> unit
(** Buffer one completed job; flush it (and any unblocked successors) to
    disk once all lower flush ranks of its phase have been written.  The
    flush rank [pos] defaults to the job's plan index; a [k/N] shard
    passes its dense shard-local rank ({!Shard.rank}) instead, since it
    only writes the plan indices it owns.  Phases must be written
    contiguously: switching phase with out-of-order records still
    pending raises [Invalid_argument]. *)

val append_result : t -> kind:string -> Json.t -> unit
(** Write the reduced campaign result record. *)

val close : t -> unit
(** Write the footer and close the file.  Raises [Invalid_argument] if
    out-of-order job records are still pending (a gap in the plan). *)

val abort : t -> unit
(** Flush and close the file {e without} a footer, leaving a resumable
    prefix.  For exception paths. *)

(** {1 Loading and resumption} *)

val parse : string -> (ledger, string) result
(** Parse ledger text.  The first line must be a header.  A final line
    that fails to parse is dropped and flagged [torn] (the process was
    killed mid-write); a malformed line anywhere else is an error. *)

val load : string -> (ledger, string) result
(** {!parse} the file at a path. *)

val count_job_records : string -> int
(** Count the job records durably flushed to a (possibly still growing)
    ledger by line prefix, without parsing.  [0] for a missing file.
    The fan-out parent's fallback progress probe when a worker has not
    yet produced a heartbeat. *)

type cache
(** Completed job records keyed by (phase, index). *)

val cache_of_ledger : ledger -> cache

val cache_of_ledgers : ledger list -> cache
(** Union cache over several ledgers (the process backend resolves its
    children's shard ledgers through this before the final in-process
    pass).  Well-formed shards never collide; on a collision the last
    ledger wins — [merge] independently rejects overlaps fail-closed. *)

val cache_size : cache -> int

(** {1 Journals}

    A journal is what drivers thread down to {!Exec}: an optional sink
    (the open writer), an optional resume cache, and the phase name that
    namespaces this [Exec.run] call's records.  Callers running the same
    driver several times in one ledger (per chip, per app) prefix the
    phase with {!extend}. *)

type journal = {
  sink : t option;
  cache : cache option;
  origin : string option;
      (** path of the ledger the cache was loaded from, so mismatch
          messages can name it *)
  phase : string;
}

val journal : ?sink:t -> ?cache:cache -> ?origin:string -> string -> journal
val extend : journal -> string -> journal
(** [extend j s] appends [s] to the phase prefix. *)

val validate_resume :
  ?shard:string ->
  ledger ->
  path:string ->
  campaign:string ->
  seed:int ->
  grid:Json.t ->
  (unit, string) result
(** Check a loaded ledger against this invocation's campaign kind, seed,
    parameter grid and shard ([shard] is this invocation's [--shard]
    spec, [None] for an unsharded run; it must equal the ledger's)
    before resuming from it.  Each error message names [path] and both
    the recorded and the planned value (the wording is golden-tested in
    [test/test_runlog.ml]). *)

(** {1 Codecs} *)

type 'a codec = {
  encode : 'a -> Json.t;
  decode : Json.t -> ('a, string) result;
  errors_of : 'a -> int;
      (** how many of the job's executions observed an error — drives
          the progress line's error rate and [compare]'s histograms *)
}

val int_codec : int codec
(** For count-valued jobs (the finders); [errors_of] is the count. *)

val bool_codec : bool codec
(** For check-valued jobs (hardening); [errors_of] is 1 on [false]. *)

val cached_value : journal -> codec:'a codec -> index:int -> seed:int ->
  ('a * job) option
(** Look up a cached job record and decode it.  A [failed]
    (quarantined) record is treated as absent so resuming re-runs it.
    Raises [Failure] — naming the journal's [origin] ledger — when the
    record exists but its seed differs from the planned seed (the
    ledger belongs to a different campaign) or its payload does not
    decode — resuming must never silently corrupt results. *)

val replay : ?pos:int -> journal -> job -> unit
(** Re-append a cached record verbatim to the sink (no-op without one),
    so a resumed ledger contains the full job history.  [pos] is the
    flush rank as for {!append_job}. *)

val record :
  journal -> ?pos:int -> ?attempts:int -> index:int -> seed:int ->
  errors:int -> duration_s:float -> Json.t -> unit
(** Append a freshly computed job record under the journal's phase.
    [attempts] (default 1) is the supervised attempt count; [pos] is
    the flush rank as for {!append_job}. *)

val record_failure :
  journal -> ?pos:int -> index:int -> seed:int -> attempts:int ->
  duration_s:float -> string -> unit
(** Append a quarantined-job record: [Null] result, zero errors, the
    failure reason in [failed]. *)

val memo :
  journal option -> codec:'a codec -> index:int -> seed:int ->
  (unit -> 'a) -> 'a
(** Journal one sequential computation: replay it from cache when
    available, otherwise run it, record it, and return it.  Used by
    drivers whose unit of work is not an [Exec.run] job (hardening's
    adaptive check sequence).  Under an ambient {!Shard} other than
    shard 1 the journal is ignored — adaptive streams cannot be
    partitioned, so every shard executes them but only shard 1 journals
    them (the merged ledger then carries the stream exactly once). *)

(** {1 Decoding helpers}

    Small result-typed accessors the driver codecs share. *)

module Dec : sig
  val ( let* ) :
    ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result

  val field : string -> Json.t -> (Json.t, string) result
  val int : string -> Json.t -> (int, string) result
  val float : string -> Json.t -> (float, string) result
  val bool : string -> Json.t -> (bool, string) result
  val str : string -> Json.t -> (string, string) result
  val list : string -> Json.t -> (Json.t list, string) result

  val opt_int : string -> Json.t -> (int option, string) result
  (** [Null] or absent is [None]. *)

  val opt_str : string -> Json.t -> (string option, string) result

  val all : ('a -> ('b, string) result) -> 'a list ->
    ('b list, string) result
  (** Decode every element or fail with the first error. *)
end
