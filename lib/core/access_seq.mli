(** Stressing access sequences σ ∈ (ld|st)+ (Sec. 3.3).

    A sequence is the loop body executed by stressing threads: each element
    is a load or store to the thread's assigned scratchpad location.  The
    tuning campaign enumerates all sequences up to a maximum length,
    measures the weak behaviours each provokes, and selects a
    Pareto-optimal winner per chip (Table 2). *)

type access = Ld | St

type t = access list
(** Non-empty. *)

val to_string : t -> string
(** Compact paper notation: [ld3 st ld], [st2 ld2], ... *)

val of_string : string -> t option
(** Parse the compact notation (also accepts the fully spelled-out form
    ["ld ld st"]).  Returns [None] on malformed input. *)

val all : max_len:int -> t list
(** Every sequence of length 1..[max_len], in length-then-lexicographic
    order ([Ld] before [St]).  There are [2^(max_len+1) - 2] of them
    (62 for the paper's N = 5; the paper's text says 63, an off-by-one we
    note in EXPERIMENTS.md). *)

val rotations : t -> t list
(** All rotations of the sequence, including itself. *)

val rotation_class : t -> t
(** Canonical (smallest) representative of the rotation class.  Sec. 3.3
    observes that rotationally equivalent sequences can behave differently,
    so tuning tests all of them; the class is used for reporting. *)

val length : t -> int

val compare : t -> t -> int
(** Length-then-lexicographic; the deterministic tie-break order used by
    the sequence finder. *)
