(** Worker heartbeats: periodic per-process progress/health records on a
    sidecar JSONL stream next to the campaign ledger.

    Each campaign process (shard workers and the driving parent alike)
    appends one {!record} about every {!interval} seconds to
    [<ledger>.hb]: pid and shard spec, the engine's live progress
    ({!Exec.progress}), retry/quarantine counts, GC pressure from
    [Gc.quick_stat], and the deltas of the {!Telemetry} counters since
    the previous beat.  Readers ({!Fleetview}, `gpuwmm status`, the
    {!Httpd} endpoints) reassemble the sidecars into a fleet view and
    use beat {e staleness} to flag dead workers: a stream quiet for two
    intervals is classified {!Dead}, so a [kill -9]'d worker is exposed
    without waiting on the parent's [waitpid].

    Under [GPUWMM_LEDGER_DETERMINISTIC] every wall-clock-derived field
    (timestamp, rate, ETA, GC stats) is written as zero, keeping test
    fixtures byte-stable.  Heartbeats never affect campaign results or
    ledger bytes. *)

type liveness =
  | Running  (** last beat within 1.5 intervals *)
  | Stale  (** between 1.5 and 2 intervals — one missed beat *)
  | Dead  (** quiet for ≥ 2 intervals without a final beat *)
  | Done  (** the stream ends with an orderly final beat *)

type record = {
  pid : int;
  shard : string option;  (** ["k/N"] for shard workers, [None] for drivers *)
  seq : int;  (** 0-based beat number within the stream *)
  t : float;  (** wall clock of the beat; [0.0] in deterministic mode *)
  interval_s : float;  (** the emitter's beat interval *)
  final : bool;  (** last beat of a completed process *)
  label : string;  (** current campaign phase, [""] before the first job *)
  jobs_done : int;  (** completed jobs (shard-local under [--shard]) *)
  jobs_total : int;  (** planned jobs (shard-local under [--shard]) *)
  cached : int;  (** jobs replayed from a resume cache *)
  errors : int;  (** erroneous executions so far, when countable *)
  rate : float;  (** EWMA jobs/s; [0.0] until warm *)
  eta_s : float option;  (** ETA; [None] until ≥ 2 live completions *)
  retried : int;  (** retry attempts performed so far *)
  quarantined : int;  (** jobs quarantined so far *)
  minor_words : float;  (** [Gc.quick_stat] cumulative minor words *)
  minor_collections : int;
  major_collections : int;
  counters : (string * int) list;
      (** telemetry counter deltas since the previous beat, sorted by
          name, zero deltas omitted *)
}

val hb_path : string -> string
(** The sidecar stream path for a ledger: [<ledger>.hb]. *)

val enabled : unit -> bool
(** [false] iff [GPUWMM_HEARTBEAT] is [off]/[0]/[no]/[false]. *)

val default_interval : float
(** 1.0 second. *)

val interval : unit -> float
(** The beat interval: a positive numeric [GPUWMM_HEARTBEAT] value, else
    {!default_interval}. *)

val to_json : record -> Json.t

val of_json : Json.t -> (record, string) result
(** Exact inverse of {!to_json}; optional fields ([shard], [final],
    [eta_s]) are omitted at their defaults. *)

val append : path:string -> record -> unit
(** Append one record (one line, one write) to the stream, creating it
    if needed. *)

val load : string -> record list
(** Every parseable record, oldest first.  A missing file is an empty
    stream; torn or foreign lines are skipped. *)

val latest : string -> record option
(** The newest parseable record of a stream. *)

val classify : now:float -> record -> liveness
(** Liveness of the worker behind a stream's newest record at [now]. *)

val liveness_name : liveness -> string
(** ["running"], ["stale"], ["dead"] or ["done"]. *)

(** {1 The emitter} *)

type emitter

val start : ?interval_s:float -> ?shard:string -> path:string -> unit -> emitter
(** Spawn a background domain that appends one beat immediately and then
    one per interval, sampling {!Exec.progress}, {!Exec.summary_counts},
    [Gc.quick_stat] and the telemetry counters.  The emitter never
    raises into the campaign: write failures are swallowed. *)

val stop : emitter -> unit
(** Stop the emitter and wait for it; a last record with [final = true]
    is appended so readers can distinguish completion from death. *)
