type config = {
  environment : Environment.t;
  initial_iterations : int;
  stability_runs : int;
  max_rounds : int;
}

let default_config ~chip =
  { environment = Environment.sys_plus ~tuned:(Tuning.shipped ~chip);
    initial_iterations = 32;
    stability_runs = 200;
    max_rounds = 4 }

type result = {
  app : string;
  chip : string;
  initial : int;
  fences : (string * int) list;
  converged : bool;
  rounds : int;
  checks : int;
  elapsed_s : float;
}

let run_app ~chip ~env ~app ~fences ~seed =
  Gpusim.Sim.with_sim ~chip ~seed @@ fun sim ->
  Gpusim.Sim.set_environment sim (Environment.for_app env);
  app.Apps.App.run sim (Apps.App.Sites fences)

let check_application ?backend ~chip ~env ~app ~fences ~iterations ~seed () =
  (* Every iteration is an independent job; the boolean conjunction is
     order-independent, so both executor backends may short-circuit on
     the first failure without changing the result. *)
  Exec.for_all ?backend ~seed
    ~f:(fun ~seed () ->
      match run_app ~chip ~env ~app ~fences ~seed with
      | Ok () -> true
      | Error _ -> false)
    (List.init iterations (fun _ -> ()))

(* SplitFences: the fences are kept sorted by code position (kernel order,
   then site id); the first half goes to F1 (Sec. 5.1). *)
let split fences =
  let n = List.length fences in
  let rec go i acc = function
    | [] -> (List.rev acc, [])
    | rest when i = (n + 1) / 2 -> (List.rev acc, rest)
    | f :: rest -> go (i + 1) (f :: acc) rest
  in
  go 0 [] fences

let diff f g = List.filter (fun x -> not (List.mem x g)) f

let insert ~chip ?config ?backend ?journal ~app ~seed () =
  let cfg = match config with Some c -> c | None -> default_config ~chip in
  let t0 = Unix.gettimeofday () in
  let checks = ref 0 in
  let journal = Option.map (fun j -> Runlog.extend j "checks") journal in
  let check fences iterations =
    (* The n-th check gets the n-th subseed: the reduction path is
       adaptive, but each check's verdict is still a pure function of
       (seed, check index, fence set) — which also makes the check the
       natural resume unit: a cached verdict replays without running,
       and the adaptive reduction then takes the same path. *)
    let n = !checks in
    incr checks;
    Runlog.memo journal ~codec:Runlog.bool_codec ~index:n
      ~seed:(Gpusim.Rng.subseed seed n) (fun () ->
        check_application ?backend ~chip ~env:cfg.environment ~app ~fences
          ~iterations ~seed:(Gpusim.Rng.subseed seed n) ())
  in
  let all = Apps.App.fence_sites app in
  let initial = List.length all in
  let binary_reduction fences iterations =
    let rec go fences =
      if List.length fences <= 1 then fences
      else begin
        let f1, f2 = split fences in
        if check (diff fences f1) iterations then go (diff fences f1)
        else if check (diff fences f2) iterations then go (diff fences f2)
        else fences
      end
    in
    go fences
  in
  let linear_reduction fences iterations =
    List.fold_left
      (fun kept f ->
        let without = List.filter (fun x -> x <> f) kept in
        if check without iterations then without else kept)
      fences fences
  in
  let rec rounds i n =
    Exec.info
      (Printf.sprintf "hardening %s on %s: round %d (I=%d)"
         app.Apps.App.name chip.Gpusim.Chip.name n i);
    let fb = binary_reduction all i in
    let fl = linear_reduction fb i in
    if check fl cfg.stability_runs then (fl, true, n)
    else if n >= cfg.max_rounds then (fl, false, n)
    else rounds (2 * i) (n + 1)
  in
  let fences, converged, rounds = rounds cfg.initial_iterations 1 in
  (* Zeroed in deterministic-ledger mode: elapsed time would be the only
     nondeterministic field of the hardening result record. *)
  let elapsed_s =
    if Runlog.deterministic_mode () then 0.0
    else Unix.gettimeofday () -. t0
  in
  { app = app.Apps.App.name; chip = chip.Gpusim.Chip.name; initial; fences;
    converged; rounds; checks = !checks; elapsed_s }

(* ------------------------------------------------------------------ *)
(* Ledger codecs                                                        *)

let result_to_json r =
  Json.Assoc
    [ ("app", Json.String r.app);
      ("chip", Json.String r.chip);
      ("initial", Json.Int r.initial);
      ( "fences",
        Json.List
          (List.map
             (fun (kernel, site) ->
               Json.Assoc
                 [ ("k", Json.String kernel); ("s", Json.Int site) ])
             r.fences) );
      ("converged", Json.Bool r.converged);
      ("rounds", Json.Int r.rounds);
      ("checks", Json.Int r.checks);
      ("elapsed_s", Json.Float r.elapsed_s) ]

let result_of_json j =
  let open Runlog.Dec in
  let* app = str "app" j in
  let* chip = str "chip" j in
  let* initial = int "initial" j in
  let* fj = list "fences" j in
  let* fences =
    all
      (fun e ->
        let* kernel = str "k" e in
        let* site = int "s" e in
        Ok (kernel, site))
      fj
  in
  let* converged = bool "converged" j in
  let* rounds = int "rounds" j in
  let* checks = int "checks" j in
  let* elapsed_s = float "elapsed_s" j in
  Ok { app; chip; initial; fences; converged; rounds; checks; elapsed_s }

let results_to_json rs = Json.List (List.map result_to_json rs)

let results_of_json j =
  match Json.to_list j with
  | None -> Error "harden results: expected a list"
  | Some rs -> Runlog.Dec.all result_of_json rs
