(* Campaign-facing front end of the bounded model checker: litmus
   program construction, root-sharded parallel exploration, witness
   replay validation, verdict rendering, and cross-validation against
   the stress campaigns. *)

module M = Gpusim.Mcheck

let explored_c = Telemetry.counter "mcheck.explored"
let sleep_pruned_c = Telemetry.counter "mcheck.sleep_pruned"
let bound_pruned_c = Telemetry.counter "mcheck.bound_pruned"
let completed_c = Telemetry.counter "mcheck.completed"
let checks_c = Telemetry.counter "mcheck.checks"
let witnesses_c = Telemetry.counter "mcheck.weak_witnesses"

let device_words = 2048

(* {1 Litmus programs} *)

type case = { instance : Litmus.Test.instance; fenced : bool }

let case_name c =
  Printf.sprintf "%s d%d %s"
    (Litmus.Test.idiom_name c.instance.Litmus.Test.idiom)
    c.instance.Litmus.Test.distance
    (if c.fenced then "fenced" else "unfenced")

let litmus_program inst ~fenced =
  let threads, args = Litmus.Test.threads inst ~x:0 in
  let threads =
    if not fenced then threads
    else
      List.map
        (fun k ->
          let k = Gpusim.Kernel.label k in
          let sites = Gpusim.Kernel.global_access_sites k in
          Gpusim.Kernel.insert_fences_after ~scope:Gpusim.Kernel.Device
            ~sites:(fun s -> List.mem s sites)
            k)
        threads
  in
  let out = Litmus.Test.layout_words inst in
  {
    M.threads;
    args;
    blocks = None;
    init = [];
    watch_mem = [ out; out + 1 ];
    watch_regs = [];
  }

let outcome (s : Gpusim.Sc_ref.state) =
  match s.memory with
  | [ (_, r1); (_, r2) ] -> (r1, r2)
  | _ -> invalid_arg "Check.outcome: state does not watch exactly two words"

(* {1 Sharded checking} *)

(* Merge per-root shard results back into the serial result.  The shard
   list is in root order and each shard's exploration of its root is
   identical to the serial DFS's subtree (unselected roots still enter
   the sleep sets), so keeping the first shard that reaches each state
   reproduces the serial first-wins witness choice exactly. *)
let merge_results (shards : M.result list) : M.result =
  match shards with
  | [] -> invalid_arg "Check.merge_results: no shards"
  | first :: _ ->
    let seen = Hashtbl.create 64 in
    let reachable =
      List.concat_map (fun (r : M.result) -> r.M.reachable) shards
      |> List.filter (fun (w : M.witness) ->
             if Hashtbl.mem seen w.M.state then false
             else (
               Hashtbl.add seen w.M.state ();
               true))
      |> List.sort (fun (a : M.witness) (b : M.witness) ->
             compare a.M.state b.M.state)
    in
    let sum f =
      List.fold_left (fun acc (r : M.result) -> acc + f r.M.stats) 0 shards
    in
    let stats =
      {
        M.explored = sum (fun s -> s.M.explored);
        sleep_pruned = sum (fun s -> s.M.sleep_pruned);
        bound_pruned = sum (fun s -> s.M.bound_pruned);
        completed = sum (fun s -> s.M.completed);
        roots = first.M.stats.M.roots;
      }
    in
    let sc_states = first.M.sc_states in
    let weak =
      List.filter
        (fun (w : M.witness) -> not (List.mem w.M.state sc_states))
        reachable
    in
    let verdict = if weak = [] then M.Proved_sc else M.Weak weak in
    { M.verdict; reachable; sc_states; stats }

let record_stats (r : M.result) =
  Telemetry.incr checks_c;
  Telemetry.add explored_c r.M.stats.M.explored;
  Telemetry.add sleep_pruned_c r.M.stats.M.sleep_pruned;
  Telemetry.add bound_pruned_c r.M.stats.M.bound_pruned;
  Telemetry.add completed_c r.M.stats.M.completed;
  (match r.M.verdict with
  | M.Proved_sc -> ()
  | M.Weak ws -> Telemetry.add witnesses_c (List.length ws));
  r

let check_program ~chip ~max_reorderings ?(jobs = 1) ?(dpor = true)
    ?(words = device_words) ?fuel (p : M.program) =
  let jobs = Exec.clamp_jobs ~warn:false jobs in
  let nroots = M.root_count ~chip ~words p in
  if jobs <= 1 || nroots <= 1 then
    record_stats (M.check ~chip ~max_reorderings ~dpor ~words ?fuel p)
  else
    let shards =
      Exec.run
        ~backend:(Exec.backend_of_jobs jobs)
        ~label:"check" ~seed:0
        ~f:(fun ~seed:_ i ->
          M.check ~chip ~max_reorderings ~dpor ~roots:[ i ] ~words ?fuel p)
        (List.init nroots Fun.id)
    in
    record_stats (merge_results shards)

(* {1 Witness replay} *)

let replay_witnesses ~chip ?(words = device_words) (p : M.program) ws =
  List.filter_map
    (fun (w : M.witness) ->
      let sched = M.schedule_to_string w.M.schedule in
      Gpusim.Sim.with_sim ~words ~chip ~seed:0 (fun t ->
          List.iter (fun (a, v) -> Gpusim.Sim.write t a v) p.M.init;
          match
            Gpusim.Sim.run_schedule t ?blocks:p.M.blocks ~threads:p.M.threads
              ~args:p.M.args ~watch_mem:p.M.watch_mem
              ~watch_regs:p.M.watch_regs w.M.schedule
          with
          | state, reorders ->
            if state = w.M.state && reorders = w.M.reorders then None
            else
              Some
                (Printf.sprintf "schedule %s: replay diverged from witness"
                   sched)
          | exception Failure msg ->
            Some (Printf.sprintf "schedule %s: %s" sched msg)))
    ws

(* {1 The litmus check driver} *)

type case_result = {
  case : case;
  proved : bool;
  sc : (int * int) list;
  weak : ((int * int) * M.witness) list;
  replay_failures : string list;
  stats : M.stats;
}

type run = {
  chip : Gpusim.Chip.t;
  max_reorderings : int;
  cases : case_result list;
}

let check_case ~chip ~max_reorderings ?(jobs = 1) case =
  let p = litmus_program case.instance ~fenced:case.fenced in
  let r = check_program ~chip ~max_reorderings ~jobs p in
  let replay_failures = replay_witnesses ~chip p r.M.reachable in
  let sc = List.map outcome r.M.sc_states |> List.sort_uniq compare in
  let weak =
    match r.M.verdict with
    | M.Proved_sc -> []
    | M.Weak ws -> List.map (fun (w : M.witness) -> (outcome w.M.state, w)) ws
  in
  { case; proved = weak = []; sc; weak; replay_failures; stats = r.M.stats }

let default_distances (chip : Gpusim.Chip.t) =
  [ 0; chip.weakness.patch_size - 1 ]

let run_litmus ~chip ~max_reorderings ?(jobs = 1) ?distances () =
  let distances =
    match distances with Some d -> d | None -> default_distances chip
  in
  let cases =
    List.concat_map
      (fun idiom ->
        List.concat_map
          (fun distance ->
            List.map
              (fun fenced ->
                { instance = { Litmus.Test.idiom; distance }; fenced })
              [ false; true ])
          distances)
      Litmus.Test.idioms
  in
  {
    chip;
    max_reorderings;
    cases = List.map (check_case ~chip ~max_reorderings ~jobs) cases;
  }

(* {1 Rendering}

   Both renderers are wall-clock-free and depend only on the [run]
   value, so their output is stable across machines and job counts —
   golden files and the --jobs determinism test rely on this. *)

let outcome_string (r1, r2) = Printf.sprintf "(%d,%d)" r1 r2

let outcomes_string = function
  | [] -> "-"
  | l -> String.concat " " (List.map outcome_string l)

let render_ascii run =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "bounded schedule exploration: chip %s, max reorderings %d\n\n"
    run.chip.Gpusim.Chip.name run.max_reorderings;
  Printf.bprintf b "%-6s %-4s %-9s %-10s %-20s %-14s %9s %9s %9s\n" "idiom"
    "dist" "fences" "verdict" "sc outcomes" "weak" "explored" "pruned"
    "schedules";
  List.iter
    (fun cr ->
      Printf.bprintf b "%-6s %-4d %-9s %-10s %-20s %-14s %9d %9d %9d\n"
        (Litmus.Test.idiom_name cr.case.instance.Litmus.Test.idiom)
        cr.case.instance.Litmus.Test.distance
        (if cr.case.fenced then "all" else "none")
        (if cr.proved then "proved-sc" else "weak")
        (outcomes_string cr.sc)
        (outcomes_string (List.map fst cr.weak))
        cr.stats.M.explored
        (cr.stats.M.sleep_pruned + cr.stats.M.bound_pruned)
        cr.stats.M.completed)
    run.cases;
  let witnesses =
    List.concat_map (fun cr -> List.map (fun w -> (cr, w)) cr.weak) run.cases
  in
  if witnesses <> [] then begin
    Buffer.add_string b "\nwitness schedules:\n";
    List.iter
      (fun (cr, (o, (w : M.witness))) ->
        Printf.bprintf b "  %-18s %s  %d reorder(s)  %s\n" (case_name cr.case)
          (outcome_string o) w.M.reorders
          (M.schedule_to_string w.M.schedule))
      witnesses
  end;
  let replayed =
    List.fold_left
      (fun acc cr -> acc + List.length cr.weak + List.length cr.sc)
      0 run.cases
  in
  let failures = List.concat_map (fun cr -> cr.replay_failures) run.cases in
  if failures = [] then
    Printf.bprintf b "\nreplay: all %d reachable states confirmed in Sim\n"
      replayed
  else begin
    Printf.bprintf b "\nreplay FAILURES (%d):\n" (List.length failures);
    List.iter (fun f -> Printf.bprintf b "  %s\n" f) failures
  end;
  Buffer.contents b

let json_outcome (r1, r2) = Json.List [ Json.Int r1; Json.Int r2 ]

let render_json run =
  Json.Assoc
    [
      ("chip", Json.String run.chip.Gpusim.Chip.name);
      ("max_reorderings", Json.Int run.max_reorderings);
      ( "cases",
        Json.List
          (List.map
             (fun cr ->
               Json.Assoc
                 [
                   ( "idiom",
                     Json.String
                       (Litmus.Test.idiom_name
                          cr.case.instance.Litmus.Test.idiom) );
                   ( "distance",
                     Json.Int cr.case.instance.Litmus.Test.distance );
                   ("fenced", Json.Bool cr.case.fenced);
                   ( "verdict",
                     Json.String (if cr.proved then "proved-sc" else "weak") );
                   ("sc", Json.List (List.map json_outcome cr.sc));
                   ( "weak",
                     Json.List
                       (List.map
                          (fun (o, (w : M.witness)) ->
                            Json.Assoc
                              [
                                ("outcome", json_outcome o);
                                ("reorders", Json.Int w.M.reorders);
                                ( "schedule",
                                  Json.String
                                    (M.schedule_to_string w.M.schedule) );
                              ])
                          cr.weak) );
                   ( "replay_failures",
                     Json.List
                       (List.map
                          (fun f -> Json.String f)
                          cr.replay_failures) );
                   ( "stats",
                     Json.Assoc
                       [
                         ("explored", Json.Int cr.stats.M.explored);
                         ("sleep_pruned", Json.Int cr.stats.M.sleep_pruned);
                         ("bound_pruned", Json.Int cr.stats.M.bound_pruned);
                         ("completed", Json.Int cr.stats.M.completed);
                         ("roots", Json.Int cr.stats.M.roots);
                       ] );
                 ])
             run.cases) );
    ]

(* {1 Cross-validation against the stress campaigns} *)

type cross = {
  observed : (int * int) list;
  reachable : (int * int) list;
  unexplained : (int * int) list;
  weak_observed : (int * int) list;
  unwitnessed : (int * int) list;
}

let cross_validate ~chip ~seed ~runs ?env ?(jobs = 1) ~max_reorderings inst =
  let observed = Litmus.Runner.observed ~chip ~seed ?env ~runs inst in
  let r =
    check_program ~chip ~max_reorderings ~jobs
      (litmus_program inst ~fenced:false)
  in
  let reachable =
    List.map (fun (w : M.witness) -> outcome w.M.state) r.M.reachable
    |> List.sort_uniq compare
  in
  let unexplained =
    List.filter (fun o -> not (List.mem o reachable)) observed
  in
  let weak_observed =
    List.filter (fun (r1, r2) -> Litmus.Test.weak inst ~r1 ~r2) observed
  in
  let witnessed =
    match r.M.verdict with
    | M.Proved_sc -> []
    | M.Weak ws ->
      List.map (fun (w : M.witness) -> outcome w.M.state) ws
      |> List.sort_uniq compare
  in
  let unwitnessed =
    List.filter (fun o -> not (List.mem o witnessed)) weak_observed
  in
  { observed; reachable; unexplained; weak_observed; unwitnessed }
