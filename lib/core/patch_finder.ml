type cell = {
  idiom : Litmus.Test.idiom;
  distance : int;
  location : int;
  weak : int;
}

type result = {
  cells : cell list;
  runs : int;
  per_idiom : (Litmus.Test.idiom * int option) list;
  critical : int option;
  chosen : int;
}

let patch_sizes_of_row ~eps ~stride cells =
  let sorted = List.sort compare cells in
  (* A single sample above threshold cannot resolve a patch width at
     stride > 1 (it only bounds it above by the stride), so lone samples
     are treated as noise rather than 1-sample patches. *)
  let min_run = if stride > 1 then 2 else 1 in
  let close acc run = if run >= min_run then (run * stride) :: acc else acc in
  let rec go acc run prev = function
    | [] -> close acc run
    | (loc, weak) :: rest ->
      let contiguous = match prev with Some p -> loc = p + stride | None -> false in
      if weak > eps then
        if contiguous || run = 0 then go acc (run + 1) (Some loc) rest
        else go (close acc run) 1 (Some loc) rest
      else go (close acc run) 0 (Some loc) rest
  in
  go [] 0 None sorted

(* The most frequent patch size over all (distance) rows of one idiom. *)
let modal_patch_size sizes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    sizes;
  Hashtbl.fold
    (fun size count acc ->
      match acc with
      | Some (_, c) when c >= count -> acc
      | Some _ | None -> Some (size, count))
    tbl None
  |> Option.map fst

(* ------------------------------------------------------------------ *)
(* Ledger codecs.  Idioms serialise by their display name; the helpers
   live here because every finder stage shares them. *)

let idiom_to_json i = Json.String (Litmus.Test.idiom_name i)

let idiom_of_json j =
  match Json.to_str j with
  | None -> Error "idiom: expected a string"
  | Some s -> (
    match
      List.find_opt
        (fun i -> Litmus.Test.idiom_name i = s)
        Litmus.Test.idioms
    with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "unknown idiom %S" s))

let scores_to_json scores =
  Json.List
    (List.map
       (fun (idiom, n) ->
         Json.Assoc [ ("idiom", idiom_to_json idiom); ("n", Json.Int n) ])
       scores)

let scores_of_json j =
  let open Runlog.Dec in
  match Json.to_list j with
  | None -> Error "scores: expected a list"
  | Some entries ->
    all
      (fun e ->
        let* ij = field "idiom" e in
        let* idiom = idiom_of_json ij in
        let* n = int "n" e in
        Ok (idiom, n))
      entries

let result_to_json r =
  Json.Assoc
    [ ("runs", Json.Int r.runs);
      ("chosen", Json.Int r.chosen);
      ( "critical",
        match r.critical with Some p -> Json.Int p | None -> Json.Null );
      ( "per_idiom",
        Json.List
          (List.map
             (fun (idiom, size) ->
               Json.Assoc
                 [ ("idiom", idiom_to_json idiom);
                   ( "size",
                     match size with
                     | Some s -> Json.Int s
                     | None -> Json.Null ) ])
             r.per_idiom) );
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Assoc
                 [ ("idiom", idiom_to_json c.idiom);
                   ("d", Json.Int c.distance);
                   ("loc", Json.Int c.location);
                   ("weak", Json.Int c.weak) ])
             r.cells) ) ]

let result_of_json j =
  let open Runlog.Dec in
  let* runs = int "runs" j in
  let* chosen = int "chosen" j in
  let* critical = opt_int "critical" j in
  let* pj = list "per_idiom" j in
  let* per_idiom =
    all
      (fun e ->
        let* ij = field "idiom" e in
        let* idiom = idiom_of_json ij in
        let* size = opt_int "size" e in
        Ok (idiom, size))
      pj
  in
  let* cj = list "cells" j in
  let* cells =
    all
      (fun e ->
        let* ij = field "idiom" e in
        let* idiom = idiom_of_json ij in
        let* distance = int "d" e in
        let* location = int "loc" e in
        let* weak = int "weak" e in
        Ok { idiom; distance; location; weak })
      cj
  in
  Ok { cells; runs; per_idiom; critical; chosen }

let run ?backend ?journal ~chip ~seed ~budget () =
  let b = budget in
  let locations =
    let rec go l acc =
      if l >= b.Budget.max_location then List.rev acc
      else go (l + b.Budget.location_stride) (l :: acc)
    in
    go 0 []
  in
  (* Plan: one job per (idiom, distance, location) point, in the
     historical nesting order so job seeds match the former loop. *)
  let points =
    List.concat_map
      (fun idiom ->
        List.concat_map
          (fun distance ->
            List.map (fun location -> (idiom, distance, location)) locations)
          b.Budget.distances_patch)
      Litmus.Test.idioms
  in
  let weaks =
    Exec.run ?backend
      ~label:(Printf.sprintf "patch-finding on %s" chip.Gpusim.Chip.name)
      ?journal:(Option.map (fun j -> Runlog.extend j "patch") journal)
      ~quarantine:(fun _ _ -> 0)
      ~codec:Runlog.int_codec ~execs_per_job:b.Budget.runs_patch ~seed
      ~f:(fun ~seed (idiom, distance, location) ->
        let strategy =
          Stress.Fixed
            { sequence = [ Access_seq.St; Access_seq.Ld ];
              locations = [ location ];
              scratch_words = b.Budget.max_location }
        in
        let env =
          Environment.for_litmus (Environment.make strategy ~randomise:false)
        in
        Litmus.Runner.count_weak ~chip ~seed ~env ~runs:b.Budget.runs_patch
          { Litmus.Test.idiom; distance })
      points
  in
  let cells =
    List.map2
      (fun (idiom, distance, location) weak ->
        { idiom; distance; location; weak })
      points weaks
  in
  let per_idiom =
    List.map
      (fun idiom ->
        let sizes =
          List.concat_map
            (fun distance ->
              let row =
                List.filter_map
                  (fun c ->
                    if c.idiom = idiom && c.distance = distance then
                      Some (c.location, c.weak)
                    else None)
                  cells
              in
              patch_sizes_of_row ~eps:b.Budget.noise_threshold
                ~stride:b.Budget.location_stride row)
            b.Budget.distances_patch
        in
        (idiom, modal_patch_size sizes))
      Litmus.Test.idioms
  in
  let observed = List.filter_map snd per_idiom in
  let critical =
    match List.sort_uniq compare observed with
    | [ p ] when List.length observed = List.length Litmus.Test.idioms ->
      Some p
    | _ -> None
  in
  (* Fallback mirrors the paper's treatment of the 980: when a test shows
     no patches (or the tests disagree), take the modal size among the
     tests that did show patches; as a last resort use the architectural
     patch granularity. *)
  let chosen =
    match critical with
    | Some p -> p
    | None -> (
      match modal_patch_size observed with
      | Some p -> p
      | None -> chip.Gpusim.Chip.weakness.patch_size)
  in
  { cells; runs = b.Budget.runs_patch; per_idiom; critical; chosen }
