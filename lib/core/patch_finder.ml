type cell = {
  idiom : Litmus.Test.idiom;
  distance : int;
  location : int;
  weak : int;
}

type result = {
  cells : cell list;
  runs : int;
  per_idiom : (Litmus.Test.idiom * int option) list;
  critical : int option;
  chosen : int;
}

let patch_sizes_of_row ~eps ~stride cells =
  let sorted = List.sort compare cells in
  (* A single sample above threshold cannot resolve a patch width at
     stride > 1 (it only bounds it above by the stride), so lone samples
     are treated as noise rather than 1-sample patches. *)
  let min_run = if stride > 1 then 2 else 1 in
  let close acc run = if run >= min_run then (run * stride) :: acc else acc in
  let rec go acc run prev = function
    | [] -> close acc run
    | (loc, weak) :: rest ->
      let contiguous = match prev with Some p -> loc = p + stride | None -> false in
      if weak > eps then
        if contiguous || run = 0 then go acc (run + 1) (Some loc) rest
        else go (close acc run) 1 (Some loc) rest
      else go (close acc run) 0 (Some loc) rest
  in
  go [] 0 None sorted

(* The most frequent patch size over all (distance) rows of one idiom. *)
let modal_patch_size sizes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    sizes;
  Hashtbl.fold
    (fun size count acc ->
      match acc with
      | Some (_, c) when c >= count -> acc
      | Some _ | None -> Some (size, count))
    tbl None
  |> Option.map fst

let run ?backend ~chip ~seed ~budget () =
  let b = budget in
  let locations =
    let rec go l acc =
      if l >= b.Budget.max_location then List.rev acc
      else go (l + b.Budget.location_stride) (l :: acc)
    in
    go 0 []
  in
  (* Plan: one job per (idiom, distance, location) point, in the
     historical nesting order so job seeds match the former loop. *)
  let points =
    List.concat_map
      (fun idiom ->
        List.concat_map
          (fun distance ->
            List.map (fun location -> (idiom, distance, location)) locations)
          b.Budget.distances_patch)
      Litmus.Test.idioms
  in
  let weaks =
    Exec.run ?backend
      ~label:(Printf.sprintf "patch-finding on %s" chip.Gpusim.Chip.name)
      ~execs_per_job:b.Budget.runs_patch ~seed
      ~f:(fun ~seed (idiom, distance, location) ->
        let strategy =
          Stress.Fixed
            { sequence = [ Access_seq.St; Access_seq.Ld ];
              locations = [ location ];
              scratch_words = b.Budget.max_location }
        in
        let env =
          Environment.for_litmus (Environment.make strategy ~randomise:false)
        in
        Litmus.Runner.count_weak ~chip ~seed ~env ~runs:b.Budget.runs_patch
          { Litmus.Test.idiom; distance })
      points
  in
  let cells =
    List.map2
      (fun (idiom, distance, location) weak ->
        { idiom; distance; location; weak })
      points weaks
  in
  let per_idiom =
    List.map
      (fun idiom ->
        let sizes =
          List.concat_map
            (fun distance ->
              let row =
                List.filter_map
                  (fun c ->
                    if c.idiom = idiom && c.distance = distance then
                      Some (c.location, c.weak)
                    else None)
                  cells
              in
              patch_sizes_of_row ~eps:b.Budget.noise_threshold
                ~stride:b.Budget.location_stride row)
            b.Budget.distances_patch
        in
        (idiom, modal_patch_size sizes))
      Litmus.Test.idioms
  in
  let observed = List.filter_map snd per_idiom in
  let critical =
    match List.sort_uniq compare observed with
    | [ p ] when List.length observed = List.length Litmus.Test.idioms ->
      Some p
    | _ -> None
  in
  (* Fallback mirrors the paper's treatment of the 980: when a test shows
     no patches (or the tests disagree), take the modal size among the
     tests that did show patches; as a last resort use the architectural
     patch granularity. *)
  let chosen =
    match critical with
    | Some p -> p
    | None -> (
      match modal_patch_size observed with
      | Some p -> p
      | None -> chip.Gpusim.Chip.weakness.patch_size)
  in
  { cells; runs = b.Budget.runs_patch; per_idiom; critical; chosen }
