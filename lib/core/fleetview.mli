(** Fleet view: join heartbeat sidecars ([<ledger>.hb]) into one
    cross-process picture of a campaign.

    All consumers of fleet progress — the {!Procs} fan-out ticker,
    `gpuwmm status`, and the {!Httpd} [/status] and [/metrics]
    endpoints — share this module, so a campaign looks the same from
    every vantage point.

    Totals sum the shard workers (records carrying a shard spec) when
    any exist; a driver row (no shard spec) is displayed but excluded
    from the totals then, because the parent's replay pass spans the
    whole plan and would double-count the workers.  For an unsharded
    campaign the single driver row {e is} the fleet. *)

type worker = {
  w_path : string;  (** the .hb stream this row was read from *)
  w_last : Heartbeat.record;  (** the newest record of the stream *)
  w_age_s : float;  (** seconds since the last beat (≥ 0) *)
  w_liveness : Heartbeat.liveness;
  w_straggler : bool;
      (** running with an ETA over 1.5× the fleet median (needs ≥ 2
          running workers with ETAs) *)
}

type fleet = {
  workers : worker list;  (** sorted: shard workers by [k], then drivers *)
  f_done : int;
  f_total : int;
  f_cached : int;
  f_errors : int;
  f_retried : int;
  f_quarantined : int;
  f_rate : float;  (** jobs/s summed over running and stale workers *)
  f_eta_s : float option;  (** remaining ÷ rate when both are positive *)
  f_running : int;
  f_stale : int;
  f_dead : int;
  f_finished : int;  (** workers whose stream ended with a final beat *)
}

val load : now:float -> string list -> fleet
(** Read the newest record of each stream and aggregate.  Streams that
    are missing or hold no parseable record are dropped.  Pass
    [now = 0.0] when the sidecars were written in deterministic mode
    (their timestamps are all [0.0]). *)

val summary_line : fleet -> string
(** One line for the parent's fan-out ticker:
    ["fleet: 37/96 jobs (38%) | 12.1 jobs/s | ETA 5s | 4 worker(s), 1 DEAD"]. *)

val worker_line : ?width:int -> worker -> string
(** One table row: shard, progress bar ([width] cells), counts, state,
    pid, retry/quarantine/straggler annotations. *)

val render_ascii : ?width:int -> fleet -> string
(** {!summary_line} followed by one {!worker_line} per worker. *)

val render_json : fleet -> Json.t
(** The [/status] document: a ["fleet"] aggregate object and a
    ["shards"] array with one object per worker. *)

val prometheus : fleet -> string
(** Prometheus text exposition of the fleet gauges
    ([gpuwmm_fleet_jobs_done], [gpuwmm_fleet_workers{state=...}],
    [gpuwmm_shard_jobs_done{shard="k/N"}], ...).  The per-process
    counter/histogram half of [/metrics] is {!Telemetry.prometheus}. *)
