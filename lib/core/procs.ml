(* Process-level fan-out for sharded campaigns.

   OCaml 5 domains share one stop-the-world minor collector, so for
   allocation-heavy simulation the domain pool stops scaling almost
   immediately (bench: speedup_j2 < 1).  The escape hatch is processes:
   the CLI re-executes itself once per shard ([--shard k/N]), each child
   a plain single-domain run with its own heap, and the parent
   reassembles the shard ledgers.  This module owns the mechanics —
   spawning, GC budgeting, ledger-tail progress, reaping and one-shot
   crash recovery — using nothing beyond stdlib [Unix].

   Why this is safe with domains: [Unix.create_process] forks and execs
   immediately, so the child never runs OCaml code in the forked image
   (fork without exec is unsafe once domains have been spawned). *)

type status =
  | Completed  (** exit 0 *)
  | Degraded  (** exit 3: quarantined jobs, ledger still whole *)
  | Failed of string  (** crashed twice; its slice re-runs in the parent *)

type outcome = {
  k : int;
  path : string;  (** the shard's ledger *)
  status : status;
  retried : bool;  (** the shard crashed once and was resumed *)
}

let shard_paths ?log ~n () =
  List.init n (fun i ->
      let k = i + 1 in
      match log with
      | Some l -> Printf.sprintf "%s.shard%d" l k
      | None ->
        let f = Filename.temp_file "gpuwmm-shard" ".jsonl" in
        (* temp_file creates the file; a stale empty ledger would fail
           the child's header parse on --resume paths, so remove it and
           let the child create it. *)
        Sys.remove f;
        f)

(* Each worker gets [1/n] of the default per-domain minor heap (floored
   at 1 MiB) unless the operator pinned GPUWMM_GC, so a process-sharded
   campaign keeps roughly the single-process memory budget. *)
let child_env ~n =
  let base = Unix.environment () in
  let has_gc =
    Array.exists (fun kv -> String.length kv >= 10 && String.sub kv 0 10 = "GPUWMM_GC=") base
  in
  if has_gc then base
  else
    let words = Int.max 262144 (Exec.default_minor_heap_words / Int.max 1 n) in
    Array.append base [| Printf.sprintf "GPUWMM_GC=%d" words |]

type child = {
  c_k : int;
  c_path : string;
  mutable c_pid : int;
  mutable c_retried : bool;
  mutable c_status : status option;
}

let describe_exit = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let fan_out ?(exe = Sys.executable_name) ~n ~paths ~argv_of () =
  if List.length paths <> n then
    invalid_arg "Procs.fan_out: paths length <> n";
  let env = child_env ~n in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let spawn argv =
    Unix.create_process_env exe (Array.of_list argv) env devnull devnull
      devnull
  in
  let children =
    List.mapi
      (fun i path ->
        let k = i + 1 in
        { c_k = k; c_path = path;
          c_pid = spawn (argv_of ~k ~path);
          c_retried = false; c_status = None })
      paths
  in
  let running () =
    List.filter (fun c -> c.c_status = None) children
  in
  let last_line = ref 0.0 in
  (* Progress goes through the heartbeat sidecars when the workers are
     beating — per-shard rates, a fleet ETA, dead-worker flags — and
     falls back to the blind ledger-tail count until the first beat
     lands (or when heartbeats are disabled). *)
  let progress () =
    let now = Unix.gettimeofday () in
    if now -. !last_line >= 1.0 then begin
      last_line := now;
      let hb_paths =
        List.map (fun c -> Heartbeat.hb_path c.c_path) children
      in
      let fleet = Fleetview.load ~now hb_paths in
      if fleet.Fleetview.workers <> [] then
        Exec.info (Fleetview.summary_line fleet)
      else
        let jobs =
          List.fold_left
            (fun acc c -> acc + Runlog.count_job_records c.c_path)
            0 children
        in
        Exec.info
          (Printf.sprintf
             "workers: %d job record(s) across %d shard(s), %d running" jobs n
             (List.length (running ())))
    end
  in
  let reap c =
    match Unix.waitpid [ Unix.WNOHANG ] c.c_pid with
    | 0, _ -> ()
    | _, Unix.WEXITED 0 -> c.c_status <- Some Completed
    | _, Unix.WEXITED 3 -> c.c_status <- Some Degraded
    | _, st ->
      if c.c_retried then begin
        c.c_status <- Some (Failed (describe_exit st));
        Exec.info
          (Printf.sprintf
             "worker %d/%d %s again; its slice falls back to the parent"
             c.c_k n (describe_exit st))
      end
      else begin
        c.c_retried <- true;
        Exec.info
          (Printf.sprintf "worker %d/%d %s; resuming it from %s" c.c_k n
             (describe_exit st) c.c_path);
        (* The shard ledger survives the crash (torn tails are dropped
           on load), so a resume replays the flushed jobs and only the
           remainder re-runs. *)
        c.c_pid <-
          spawn (argv_of ~k:c.c_k ~path:c.c_path @ [ "--resume"; c.c_path ])
      end
  in
  let rec drain () =
    match running () with
    | [] -> ()
    | live ->
      List.iter reap live;
      progress ();
      if running () <> [] then begin
        ignore (Unix.select [] [] [] 0.1);
        drain ()
      end
  in
  Fun.protect ~finally:(fun () -> Unix.close devnull) drain;
  List.map
    (fun c ->
      { k = c.c_k; path = c.c_path;
        status = Option.value c.c_status ~default:(Failed "not reaped");
        retried = c.c_retried })
    children

(* Union resume cache over whatever shard ledgers made it to disk.  A
   shard that crashed twice may be unreadable or half-written; its jobs
   simply stay uncached and re-run in the parent under the parent's own
   supervision, which is the crash-reaping story: no shard failure mode
   can lose a campaign, only slow it down. *)
let merged_cache paths =
  let ledgers =
    List.filter_map
      (fun p ->
        match Runlog.load p with
        | Ok l -> Some l
        | Error e ->
          Exec.info
            (Printf.sprintf "shard ledger %s unreadable (%s); its jobs re-run"
               p e);
          None)
      paths
  in
  Runlog.cache_of_ledgers ledgers

let cleanup paths =
  let rm p = try Sys.remove p with Sys_error _ -> () in
  List.iter
    (fun p ->
      rm p;
      (* Observability sidecars ride along with temp shard ledgers. *)
      rm (Heartbeat.hb_path p);
      rm (p ^ ".spans.json"))
    paths
