(** Memory stressing strategies (Secs. 3 and 4.2).

    A strategy describes what the extra {e stressing blocks} appended to a
    launch do.  The systematic strategy [Sys] uses the per-chip tuned
    parameters (access sequence and spread); [Rand] and [Cache] are the
    straightforward baselines of Sec. 4.2; [Fixed] pins the stressed
    scratchpad locations and is the raw ingredient of the tuning
    campaigns themselves (patch finding stresses one given location).

    All scratchpad memory is allocated fresh per launch, disjoint from the
    application's allocations, and stressing threads run in their own
    blocks, so the application's possible behaviours are unchanged. *)

type tuned = {
  sequence : Access_seq.t;  (** loop body of each stressing thread *)
  spread : int;  (** number of patch-sized regions stressed at once *)
  regions : int;  (** scratchpad size in patch-sized regions (paper M) *)
}

type t =
  | No_stress
  | Sys of tuned
  | Rand of { scratch_words : int }
      (** random load or store to a random scratchpad location *)
  | Cache
      (** walk an L2-sized scratchpad with a load and store per word *)
  | Fixed of {
      sequence : Access_seq.t;
      locations : int list;  (** scratchpad word offsets, one per thread group *)
      scratch_words : int;
    }
  | Targeted of {
      sequence : Access_seq.t;
      addresses : int list;
          (** application addresses (e.g. from {!Gpusim.Race}) whose
              memory partitions should be stressed — the "targeted
              testing around communication locations" the paper proposes
              as future work (Sec. 8) *)
    }

val name : t -> string
(** "no-str", "sys-str", "rand-str", "cache-str", "fixed-str",
    "tgt-str". *)

val kernel : sequence:Access_seq.t -> n_locations:int -> Gpusim.Kernel.t
(** The stressing kernel: each thread picks one of [n_locations] location
    parameters ([l0], [l1], ...) by global thread id and applies the
    sequence to it in an infinite loop.  Exposed for inspection/tests. *)

val default_warmup : int

val intensity_for : n_threads:int -> n_locations:int -> float
(** Contention multiplier for concentrated stress: full parallel pressure
    per location needs a minimum thread count; under-provisioned locations
    lose pressure quadratically (this carves the U-shape of Fig. 4).
    Exposed for tests. *)

val make_stress_litmus :
  t -> Gpusim.Sim.t -> app_grid:int -> app_block:int ->
  Gpusim.Sim.stress_spec option
(** Stressing-block construction for litmus campaigns: the total thread
    count is drawn uniformly between 50% and 100% of the chip's maximum
    concurrent threads (Sec. 3.2). *)

val make_stress_app :
  t -> Gpusim.Sim.t -> app_grid:int -> app_block:int ->
  Gpusim.Sim.stress_spec option
(** Stressing-block construction for application testing: the number of
    stressing blocks is drawn between 15% and 50% of the application's
    blocks (Sec. 4.2), with a floor of one block. *)
