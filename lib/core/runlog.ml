let schema_version = 1

let deterministic_mode () =
  match Sys.getenv_opt "GPUWMM_LEDGER_DETERMINISTIC" with
  | None | Some ("" | "0" | "false") -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Decoding helpers                                                     *)

module Dec = struct
  let ( let* ) = Result.bind

  let field k j =
    match Json.member k j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" k)

  let typed name conv k j =
    match Option.bind (Json.member k j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped %s field %S" name k)

  let int k j = typed "int" Json.to_int k j
  let float k j = typed "number" Json.to_float k j
  let bool k j = typed "bool" Json.to_bool k j
  let str k j = typed "string" Json.to_str k j
  let list k j = typed "list" Json.to_list k j

  let opt_int k j =
    match Json.member k j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_int v with
      | Some n -> Ok (Some n)
      | None -> Error (Printf.sprintf "mistyped int field %S" k))

  let opt_str k j =
    match Json.member k j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_str v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "mistyped string field %S" k))

  let all f xs =
    List.fold_right
      (fun x acc ->
        let* acc = acc in
        let* v = f x in
        Ok (v :: acc))
      xs (Ok [])
end

open Dec

(* ------------------------------------------------------------------ *)
(* Records                                                              *)

type header = {
  schema : int;
  campaign : string;
  argv : string list;
  seed : int;
  jobs : int;
  grid : Json.t;
  git : string option;
  created : float;
  shard : string option;
  merged : string list option;
}

let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> (
      match line with Some "" | None -> None | some -> some)
    | _ -> None
  with _ -> None

(* [shard] survives deterministic zeroing — it is part of the plan, not
   of the wall clock — so shard ledgers of the same shard are still
   byte-comparable across runs. *)
let make_header ?argv ?(jobs = 1) ?shard ~campaign ~seed ~grid () =
  if deterministic_mode () then
    { schema = schema_version; campaign; argv = []; seed; jobs = 0; grid;
      git = None; created = 0.0; shard; merged = None }
  else
    let argv =
      match argv with Some a -> a | None -> Array.to_list Sys.argv
    in
    { schema = schema_version; campaign; argv; seed; jobs; grid;
      git = git_describe (); created = Unix.gettimeofday (); shard;
      merged = None }

(* [shard]/[merged] are emitted only away from [None] so unsharded
   ledgers — including the CI golden one — keep their historical bytes,
   and a merged deterministic ledger stays byte-identical to the
   single-process run (merge provenance only exists outside
   deterministic mode). *)
let header_to_json h =
  Json.Assoc
    ([ ("rec", Json.String "header");
       ("schema", Json.Int h.schema);
       ("campaign", Json.String h.campaign);
       ("seed", Json.Int h.seed);
       ("jobs", Json.Int h.jobs);
       ("argv", Json.List (List.map (fun a -> Json.String a) h.argv));
       ("git", match h.git with Some g -> Json.String g | None -> Json.Null);
       ("created", Json.Float h.created);
       ("grid", h.grid) ]
    @ (match h.shard with
      | Some s -> [ ("shard", Json.String s) ]
      | None -> [])
    @ (match h.merged with
      | Some srcs ->
        [ ("merged", Json.List (List.map (fun s -> Json.String s) srcs)) ]
      | None -> []))

let header_of_json j =
  let* schema = int "schema" j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported ledger schema %d" schema)
  else
    let* campaign = str "campaign" j in
    let* seed = int "seed" j in
    let* jobs = int "jobs" j in
    let* argv_j = list "argv" j in
    let* argv =
      all
        (fun a ->
          match Json.to_str a with
          | Some s -> Ok s
          | None -> Error "mistyped argv element")
        argv_j
    in
    let* git = opt_str "git" j in
    let* created = float "created" j in
    let* grid = field "grid" j in
    let* shard = opt_str "shard" j in
    let* merged =
      match Json.member "merged" j with
      | None | Some Json.Null -> Ok None
      | Some v -> (
        match Json.to_list v with
        | None -> Error "mistyped list field \"merged\""
        | Some xs ->
          let* srcs =
            all
              (fun s ->
                match Json.to_str s with
                | Some s -> Ok s
                | None -> Error "mistyped merged element")
              xs
          in
          Ok (Some srcs))
    in
    Ok { schema; campaign; argv; seed; jobs; grid; git; created; shard;
         merged }

type job = {
  phase : string;
  index : int;
  seed : int;
  errors : int;
  duration_s : float;
  result : Json.t;
  attempts : int;
  failed : string option;
}

(* [attempts] and [failed] are emitted only away from their defaults so
   that supervision leaves fault-free ledgers byte-identical (the CI
   golden ledger is compared with cmp). *)
let job_to_json j =
  Json.Assoc
    ([ ("rec", Json.String "job");
       ("phase", Json.String j.phase);
       ("i", Json.Int j.index);
       ("seed", Json.Int j.seed);
       ("errors", Json.Int j.errors);
       ("dur_s", Json.Float j.duration_s) ]
    @ (if j.attempts > 1 then [ ("attempts", Json.Int j.attempts) ] else [])
    @ (match j.failed with
      | Some reason -> [ ("failed", Json.String reason) ]
      | None -> [])
    @ [ ("result", j.result) ])

let job_of_json j =
  let* phase = str "phase" j in
  let* index = int "i" j in
  let* seed = int "seed" j in
  let* errors = int "errors" j in
  let* duration_s = float "dur_s" j in
  let* attempts = opt_int "attempts" j in
  let* failed = opt_str "failed" j in
  let* result = field "result" j in
  Ok
    { phase; index; seed; errors; duration_s; result;
      attempts = Option.value ~default:1 attempts; failed }

type footer = {
  total_jobs : int;
  total_errors : int;
  quarantined : int;
  wall_s : float;
  telemetry : Json.t;
}

let footer_to_json f =
  Json.Assoc
    ([ ("rec", Json.String "footer");
       ("jobs", Json.Int f.total_jobs);
       ("errors", Json.Int f.total_errors) ]
    @ (if f.quarantined > 0 then [ ("quarantined", Json.Int f.quarantined) ]
       else [])
    @ [ ("wall_s", Json.Float f.wall_s); ("telemetry", f.telemetry) ])

let footer_of_json j =
  let* total_jobs = int "jobs" j in
  let* total_errors = int "errors" j in
  let* quarantined = opt_int "quarantined" j in
  let* wall_s = float "wall_s" j in
  let* telemetry = field "telemetry" j in
  Ok
    { total_jobs; total_errors;
      quarantined = Option.value ~default:0 quarantined; wall_s; telemetry }

type ledger = {
  header : header;
  jobs : job list;
  result : (string * Json.t) option;
  footer : footer option;
  torn : bool;
}

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)

type t = {
  oc : out_channel;
  file : string;
  mu : Mutex.t;
  deterministic : bool;
  mutable phase : string;
  mutable next : int;  (* lowest flush rank of [phase] not yet on disk *)
  pending : (int, job) Hashtbl.t;  (* completed but blocked by a gap *)
  mutable jobs_written : int;
  mutable errors_sum : int;
  mutable failed_sum : int;
  t0 : float;
  mutable closed : bool;
}

let emit_line t json =
  output_string t.oc (Json.to_string json);
  output_char t.oc '\n'

let create ?deterministic ~path header =
  let deterministic =
    match deterministic with Some d -> d | None -> deterministic_mode ()
  in
  let oc = open_out path in
  let t =
    { oc; file = path; mu = Mutex.create (); deterministic; phase = "";
      next = 0; pending = Hashtbl.create 64; jobs_written = 0;
      errors_sum = 0; failed_sum = 0; t0 = Unix.gettimeofday ();
      closed = false }
  in
  emit_line t (header_to_json header);
  flush oc;
  t

let path t = t.file

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* [pos] is the record's flush rank within its phase: the reorder
   buffer releases rank r only once ranks 0..r-1 are on disk.  It
   defaults to the plan index — for an unsharded run they coincide —
   but a k/N shard writes only the indices it owns, so its dense
   shard-local rank (Shard.rank) keys the buffer while the record keeps
   the global plan index. *)
let append_job ?pos t (job : job) =
  locked t @@ fun () ->
  if t.closed then invalid_arg "Runlog.append_job: ledger is closed";
  if job.phase <> t.phase then begin
    if Hashtbl.length t.pending > 0 then
      invalid_arg
        (Printf.sprintf
           "Runlog.append_job: phase %S left %d out-of-order record(s) \
            pending"
           t.phase (Hashtbl.length t.pending));
    t.phase <- job.phase;
    t.next <- 0
  end;
  let job = if t.deterministic then { job with duration_s = 0.0 } else job in
  Hashtbl.replace t.pending (Option.value pos ~default:job.index) job;
  let drained = ref false in
  while Hashtbl.mem t.pending t.next do
    let j = Hashtbl.find t.pending t.next in
    Hashtbl.remove t.pending t.next;
    emit_line t (job_to_json j);
    t.jobs_written <- t.jobs_written + 1;
    t.errors_sum <- t.errors_sum + j.errors;
    if j.failed <> None then t.failed_sum <- t.failed_sum + 1;
    t.next <- t.next + 1;
    drained := true
  done;
  if !drained then flush t.oc

let append_result t ~kind data =
  locked t @@ fun () ->
  if t.closed then invalid_arg "Runlog.append_result: ledger is closed";
  emit_line t
    (Json.Assoc
       [ ("rec", Json.String "result");
         ("kind", Json.String kind);
         ("data", data) ]);
  flush t.oc

let close t =
  locked t @@ fun () ->
  if not t.closed then begin
    if Hashtbl.length t.pending > 0 then
      invalid_arg
        (Printf.sprintf
           "Runlog.close: %d out-of-order job record(s) still pending"
           (Hashtbl.length t.pending));
    let wall_s =
      if t.deterministic then 0.0 else Unix.gettimeofday () -. t.t0
    in
    let telemetry =
      if t.deterministic then Json.Null
      else Telemetry.snapshot_to_json (Telemetry.snapshot ())
    in
    emit_line t
      (footer_to_json
         { total_jobs = t.jobs_written; total_errors = t.errors_sum;
           quarantined = t.failed_sum; wall_s; telemetry });
    flush t.oc;
    close_out t.oc;
    t.closed <- true
  end

let abort t =
  locked t @@ fun () ->
  if not t.closed then begin
    flush t.oc;
    close_out t.oc;
    t.closed <- true
  end

(* ------------------------------------------------------------------ *)
(* Loading                                                              *)

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty ledger"
  | first :: rest ->
    let* hj = Json.of_string first in
    let* header =
      match Json.member "rec" hj with
      | Some (Json.String "header") -> header_of_json hj
      | _ -> Error "first ledger line is not a header record"
    in
    let n = List.length rest in
    let rec go i jobs result footer = function
      | [] -> Ok { header; jobs = List.rev jobs; result; footer; torn = false }
      | line :: tl -> (
        let parsed =
          let* j = Json.of_string line in
          match Json.member "rec" j with
          | Some (Json.String "job") ->
            let* job = job_of_json j in
            Ok (`Job job)
          | Some (Json.String "result") ->
            let* kind = str "kind" j in
            let* data = field "data" j in
            Ok (`Result (kind, data))
          | Some (Json.String "footer") ->
            let* f = footer_of_json j in
            Ok (`Footer f)
          | _ -> Error "unknown record type"
        in
        match parsed with
        | Ok (`Job job) -> go (i + 1) (job :: jobs) result footer tl
        | Ok (`Result r) -> go (i + 1) jobs (Some r) footer tl
        | Ok (`Footer f) -> go (i + 1) jobs result (Some f) tl
        | Error e ->
          if i = n - 1 then
            (* The last line is allowed to be torn: a kill can land
               mid-write.  Everything before it must be intact. *)
            Ok { header; jobs = List.rev jobs; result; footer; torn = true }
          else Error (Printf.sprintf "ledger line %d: %s" (i + 2) e))
    in
    go 0 [] None None rest

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> parse text

(* A cheap live progress probe: count durably flushed job records by
   their line prefix, without parsing.  Safe against a concurrent
   writer because job lines are single [output_string] appends — the
   only torn line can be the last, which the prefix test then skips. *)
let count_job_records path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
    let prefix = {|{"rec":"job","|} in
    let plen = String.length prefix in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= plen && String.sub line 0 plen = prefix
         then incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n

(* ------------------------------------------------------------------ *)
(* Resumption                                                           *)

type cache = (string * int, job) Hashtbl.t

let cache_of_ledger l =
  let c = Hashtbl.create (List.length l.jobs) in
  List.iter (fun (j : job) -> Hashtbl.replace c (j.phase, j.index) j) l.jobs;
  c

(* Union cache over several (typically shard) ledgers.  Keys never
   overlap for well-formed shards; if they do, the last ledger wins,
   which `merge` independently rejects fail-closed. *)
let cache_of_ledgers ls =
  let c = Hashtbl.create 256 in
  List.iter
    (fun l ->
      List.iter
        (fun (j : job) -> Hashtbl.replace c (j.phase, j.index) j)
        l.jobs)
    ls;
  c

let cache_size = Hashtbl.length

type journal = {
  sink : t option;
  cache : cache option;
  origin : string option;  (* the resume ledger's path, for messages *)
  phase : string;
}

let journal ?sink ?cache ?origin phase = { sink; cache; origin; phase }
let extend j suffix = { j with phase = j.phase ^ suffix }

let origin_name jn = Option.value ~default:"resume ledger" jn.origin

type 'a codec = {
  encode : 'a -> Json.t;
  decode : Json.t -> ('a, string) result;
  errors_of : 'a -> int;
}

let int_codec =
  { encode = (fun n -> Json.Int n);
    decode =
      (fun j ->
        match Json.to_int j with
        | Some n -> Ok n
        | None -> Error "expected an int payload");
    errors_of = Fun.id }

let bool_codec =
  { encode = (fun b -> Json.Bool b);
    decode =
      (fun j ->
        match Json.to_bool j with
        | Some b -> Ok b
        | None -> Error "expected a bool payload");
    errors_of = (fun ok -> if ok then 0 else 1) }

let cached_value jn ~codec ~index ~seed =
  match jn.cache with
  | None -> None
  | Some c -> (
    match Hashtbl.find_opt c (jn.phase, index) with
    | None -> None
    | Some r when r.failed <> None ->
      (* A quarantined record satisfies the ledger's plan-order stream
         but carries no result: resuming re-runs the job, which is how a
         degraded campaign recovers. *)
      None
    | Some r ->
      if r.seed <> seed then
        failwith
          (Printf.sprintf
             "%s: cached job %s/%d seed mismatch: the ledger records \
              seed %d, this invocation plans seed %d — refusing to \
              resume a different campaign"
             (origin_name jn) jn.phase index r.seed seed);
      (match codec.decode r.result with
      | Ok v -> Some (v, r)
      | Error e ->
        failwith
          (Printf.sprintf "%s: cached job %s/%d does not decode: %s"
             (origin_name jn) jn.phase index e)))

let replay ?pos jn r = Option.iter (fun s -> append_job ?pos s r) jn.sink

let record jn ?pos ?(attempts = 1) ~index ~seed ~errors ~duration_s result =
  Option.iter
    (fun s ->
      append_job ?pos s
        { phase = jn.phase; index; seed; errors; duration_s; result;
          attempts; failed = None })
    jn.sink

let record_failure jn ?pos ~index ~seed ~attempts ~duration_s reason =
  Option.iter
    (fun s ->
      append_job ?pos s
        { phase = jn.phase; index; seed; errors = 0; duration_s;
          result = Json.Null; attempts; failed = Some reason })
    jn.sink

(* One-stop resume validation with messages that name the ledger and
   both sides of every mismatch (golden-tested wording; keep stable). *)
let validate_resume ?shard (l : ledger) ~path ~campaign ~seed ~grid =
  let h = l.header in
  let shard_name = function None -> "unsharded" | Some s -> "shard " ^ s in
  if h.shard <> shard then
    Error
      (Printf.sprintf
         "%s: shard mismatch: the ledger records an %s run, this \
          invocation is %s"
         path (shard_name h.shard) (shard_name shard))
  else if h.campaign <> campaign then
    Error
      (Printf.sprintf
         "%s: campaign kind mismatch: the ledger records a %S campaign, \
          this invocation is %S"
         path h.campaign campaign)
  else if h.seed <> seed then
    Error
      (Printf.sprintf
         "%s: seed mismatch: the ledger was run with --seed %d, this \
          invocation uses --seed %d"
         path h.seed seed)
  else if h.grid <> grid then
    Error
      (Printf.sprintf
         "%s: parameter grid mismatch: the ledger records %s, this \
          invocation plans %s"
         path (Json.to_string h.grid) (Json.to_string grid))
  else Ok ()

(* Adaptive sequential streams (hardening's check sequence) cannot be
   partitioned — every shard must execute them to reach the same next
   step — so under an ambient shard only shard 1 journals them: the
   merged ledger then carries the stream exactly once. *)
let memo journal ~codec ~index ~seed f =
  let journal =
    match Shard.ambient () with
    | Some s when s.Shard.k <> 1 -> None
    | _ -> journal
  in
  match journal with
  | None -> f ()
  | Some jn -> (
    match cached_value jn ~codec ~index ~seed with
    | Some (v, r) ->
      replay jn r;
      v
    | None ->
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let duration_s = Unix.gettimeofday () -. t0 in
      record jn ~index ~seed ~errors:(codec.errors_of v) ~duration_s
        (codec.encode v);
      v)
