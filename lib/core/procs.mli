(** Process-level fan-out for sharded campaigns (the [Processes n]
    backend's engine room).

    OCaml 5 domains share a stop-the-world minor collector, so the
    domain pool does not scale for allocation-heavy simulation; worker
    {e subprocesses} (self-exec with [--shard k/N]) each get their own
    runtime.  The parent spawns them, budgets their GC, follows their
    ledger tails for the live ticker, reaps crashes (one resume retry,
    then the parent re-runs the lost slice itself from the merged
    cache), and unions the shard ledgers into a resume cache.

    Uses stdlib [Unix] only.  Safe in the presence of domains because
    [Unix.create_process] forks and execs atomically. *)

type status =
  | Completed  (** worker exited 0 *)
  | Degraded
      (** worker exited 3 — quarantined jobs under [--keep-going]; its
          ledger is whole and usable *)
  | Failed of string
      (** crashed, was resumed once, crashed again; whatever jobs its
          ledger holds are still cached, the rest re-run in the parent *)

type outcome = {
  k : int;
  path : string;  (** the shard's ledger file *)
  status : status;
  retried : bool;
}

val shard_paths : ?log:string -> n:int -> unit -> string list
(** Ledger path per shard [1..n]: [LOG.shard<k>] next to a requested
    [--log] (durable, uploadable artifacts), fresh temp files
    otherwise. *)

val fan_out :
  ?exe:string ->
  n:int ->
  paths:string list ->
  argv_of:(k:int -> path:string -> string list) ->
  unit ->
  outcome list
(** Spawn one worker per shard with [argv_of ~k ~path] (the full argv
    including [argv.(0)]; [exe] defaults to [Sys.executable_name]),
    stdin/stdout/stderr on [/dev/null], and [GPUWMM_GC] set to
    [default_minor_heap_words / n] (floored at 1 MiB) unless the
    operator pinned it.  Blocks until every worker is reaped, emitting
    a fleet progress line ({!Fleetview.summary_line} over the workers'
    heartbeat sidecars; a blind ledger-tail count until the first beat)
    about once a second through {!Exec.info}.  A worker that exits with
    anything other than 0 or 3 is respawned once with
    [--resume <its ledger>] appended. *)

val merged_cache : string list -> Runlog.cache
(** Union resume cache over the shard ledgers that load (torn tails
    dropped, unreadable ledgers skipped with a notice) — the parent's
    final pass replays cached jobs and re-executes only what the
    workers failed to flush. *)

val cleanup : string list -> unit
(** Best-effort removal of temp shard ledgers and their observability
    sidecars ([.hb] heartbeats, [.spans.json] traces). *)
