let dominates ~scores a b =
  let sa = scores a and sb = scores b in
  if Array.length sa <> Array.length sb then
    invalid_arg "Pareto.dominates: unequal objective counts";
  let ge = ref true and gt = ref false in
  Array.iteri
    (fun i va ->
      if va < sb.(i) then ge := false;
      if va > sb.(i) then gt := true)
    sa;
  !ge && !gt

let front ~scores items =
  List.filter
    (fun a -> not (List.exists (fun b -> dominates ~scores b a) items))
    items

let select ~scores ~tie items =
  match front ~scores items with
  | [] -> None
  | [ x ] -> Some x
  | candidates ->
    let n_obj =
      match candidates with x :: _ -> Array.length (scores x) | [] -> 0
    in
    (* Per-objective maxima over the front. *)
    let best = Array.make n_obj min_int in
    List.iter
      (fun c ->
        let s = scores c in
        Array.iteri (fun i v -> if v > best.(i) then best.(i) <- v) s)
      candidates;
    let wins c =
      let s = scores c in
      let n = ref 0 in
      Array.iteri (fun i v -> if v = best.(i) then incr n) s;
      !n
    in
    let total c = Array.fold_left ( + ) 0 (scores c) in
    let rank a b =
      match Int.compare (wins b) (wins a) with
      | 0 -> (
        match Int.compare (total b) (total a) with
        | 0 -> tie a b
        | c -> c)
      | c -> c
    in
    (match List.sort rank candidates with
    | x :: _ -> Some x
    | [] -> None)
