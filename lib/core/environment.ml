type t = {
  label : string;
  strategy : Stress.t;
  randomise : bool;
}

let make strategy ~randomise =
  let label = Stress.name strategy ^ if randomise then "+" else "-" in
  { label; strategy; randomise }

let default_rand_scratch = 1024

let all ~tuned =
  let strategies =
    [ Stress.No_stress; Stress.Sys tuned;
      Stress.Rand { scratch_words = default_rand_scratch }; Stress.Cache ]
  in
  List.concat_map
    (fun s -> [ make s ~randomise:false; make s ~randomise:true ])
    strategies

let sys_plus ~tuned = make (Stress.Sys tuned) ~randomise:true

let for_litmus t =
  { Gpusim.Sim.randomise = t.randomise;
    make_stress = Stress.make_stress_litmus t.strategy }

let for_app t =
  { Gpusim.Sim.randomise = t.randomise;
    make_stress = Stress.make_stress_app t.strategy }
