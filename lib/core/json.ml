type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* Shortest representation that round-trips, so output stays tidy. *)
    let s =
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Assoc kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st.pos (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st.pos (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos ("expected " ^ word)

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c -> (
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail st.pos "bad \\u escape"
      in
      v := (!v * 16) + d)
    | None -> fail st.pos "truncated \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st.pos "truncated escape"
      | Some c ->
        (match c with
        | '"' -> advance st; Buffer.add_char buf '"'
        | '\\' -> advance st; Buffer.add_char buf '\\'
        | '/' -> advance st; Buffer.add_char buf '/'
        | 'n' -> advance st; Buffer.add_char buf '\n'
        | 'r' -> advance st; Buffer.add_char buf '\r'
        | 't' -> advance st; Buffer.add_char buf '\t'
        | 'b' -> advance st; Buffer.add_char buf '\b'
        | 'f' -> advance st; Buffer.add_char buf '\012'
        | 'u' ->
          advance st;
          let cp = hex4 st in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* high surrogate: require a following \uXXXX low surrogate *)
            expect st '\\';
            expect st 'u';
            let lo = hex4 st in
            if lo < 0xDC00 || lo > 0xDFFF then
              fail st.pos "unpaired surrogate"
            else
              utf8_add buf
                (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then
            fail st.pos "unpaired surrogate"
          else utf8_add buf cp
        | c -> fail st.pos (Printf.sprintf "bad escape \\%c" c));
        go ())
    | Some c when Char.code c < 0x20 -> fail st.pos "raw control character"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st
    | _ -> continue := false
  done;
  let s = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail start ("bad number " ^ s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      (* out of int range: degrade to float *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail start ("bad number " ^ s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Assoc []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let items = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := field () :: !items;
        skip_ws st
      done;
      expect st '}';
      Assoc (List.rev !items)
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v
    else Error (Printf.sprintf "at %d: trailing garbage" st.pos)
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)

let member key = function Assoc kvs -> List.assoc_opt key kvs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
