type point = {
  spread : int;
  scores : (Litmus.Test.idiom * int) list;
}

type result = {
  points : point list;
  winner : int;
  sequence : Access_seq.t;
  patch : int;
}

(* ------------------------------------------------------------------ *)
(* Ledger codecs                                                        *)

let result_to_json r =
  Json.Assoc
    [ ("patch", Json.Int r.patch);
      ("sequence", Json.String (Access_seq.to_string r.sequence));
      ("winner", Json.Int r.winner);
      ( "points",
        Json.List
          (List.map
             (fun p ->
               Json.Assoc
                 [ ("spread", Json.Int p.spread);
                   ("scores", Patch_finder.scores_to_json p.scores) ])
             r.points) ) ]

let result_of_json j =
  let open Runlog.Dec in
  let* patch = int "patch" j in
  let* sj = field "sequence" j in
  let* sequence = Seq_finder.sequence_of_json sj in
  let* winner = int "winner" j in
  let* pj = list "points" j in
  let* points =
    all
      (fun e ->
        let* spread = int "spread" e in
        let* scj = field "scores" e in
        let* scores = Patch_finder.scores_of_json scj in
        Ok { spread; scores })
      pj
  in
  Ok { points; winner; sequence; patch }

let run ?backend ?journal ~chip ~seed ~budget ~patch ~sequence () =
  let b = budget in
  let spreads =
    let rec go m acc =
      if m > b.Budget.max_spread then List.rev acc
      else go (m + b.Budget.spread_step) (m :: acc)
    in
    go 1 []
  in
  (* Plan: one job per (spread, idiom, distance) point, in the historical
     nesting order so job seeds match the former loop. *)
  let grid =
    List.concat_map
      (fun spread ->
        List.concat_map
          (fun idiom ->
            List.map
              (fun distance -> (spread, idiom, distance))
              b.Budget.distances_spread)
          Litmus.Test.idioms)
      spreads
  in
  let weaks =
    Exec.run ?backend
      ~label:(Printf.sprintf "spread finding on %s" chip.Gpusim.Chip.name)
      ?journal:(Option.map (fun j -> Runlog.extend j "spread") journal)
      ~quarantine:(fun _ _ -> 0)
      ~codec:Runlog.int_codec ~execs_per_job:b.Budget.runs_spread ~seed
      ~f:(fun ~seed (spread, idiom, distance) ->
        let strategy =
          Stress.Sys { sequence; spread; regions = b.Budget.max_spread }
        in
        let env =
          Environment.for_litmus (Environment.make strategy ~randomise:false)
        in
        Litmus.Runner.count_weak ~chip ~seed ~env ~runs:b.Budget.runs_spread
          { Litmus.Test.idiom; distance })
      grid
  in
  (* Reduce: sum weak counts per (spread, idiom) along the plan order. *)
  let results = Array.of_list weaks in
  let pos = ref 0 in
  let next () =
    let v = results.(!pos) in
    incr pos;
    v
  in
  let points =
    List.map
      (fun spread ->
        let scores =
          List.map
            (fun idiom ->
              let score = ref 0 in
              List.iter
                (fun _distance -> score := !score + next ())
                b.Budget.distances_spread;
              (idiom, !score))
            Litmus.Test.idioms
        in
        { spread; scores })
      spreads
  in
  let score_array p = Array.of_list (List.map snd p.scores) in
  let winner =
    match
      Pareto.select ~scores:score_array
        ~tie:(fun a b -> Int.compare a.spread b.spread)
        points
    with
    | Some p -> p.spread
    | None -> 2
  in
  { points; winner; sequence; patch }
