type point = {
  spread : int;
  scores : (Litmus.Test.idiom * int) list;
}

type result = {
  points : point list;
  winner : int;
  sequence : Access_seq.t;
  patch : int;
}

let run ~chip ~seed ~budget ~patch ~sequence ?(progress = ignore) () =
  let b = budget in
  let master = Gpusim.Rng.create seed in
  let spreads =
    let rec go m acc =
      if m > b.Budget.max_spread then List.rev acc
      else go (m + b.Budget.spread_step) (m :: acc)
    in
    go 1 []
  in
  let points =
    List.map
      (fun spread ->
        progress
          (Printf.sprintf "spread finding on %s: m=%d" chip.Gpusim.Chip.name
             spread);
        let scores =
          List.map
            (fun idiom ->
              let score = ref 0 in
              List.iter
                (fun distance ->
                  let strategy =
                    Stress.Sys
                      { sequence; spread; regions = b.Budget.max_spread }
                  in
                  let env =
                    Environment.for_litmus
                      (Environment.make strategy ~randomise:false)
                  in
                  score :=
                    !score
                    + Litmus.Runner.count_weak ~chip
                        ~seed:(Gpusim.Rng.bits30 master)
                        ~env ~runs:b.Budget.runs_spread
                        { Litmus.Test.idiom; distance })
                b.Budget.distances_spread;
              (idiom, !score))
            Litmus.Test.idioms
        in
        { spread; scores })
      spreads
  in
  let score_array p = Array.of_list (List.map snd p.scores) in
  let winner =
    match
      Pareto.select ~scores:score_array
        ~tie:(fun a b -> Int.compare a.spread b.spread)
        points
    with
    | Some p -> p.spread
    | None -> 2
  in
  { points; winner; sequence; patch }
