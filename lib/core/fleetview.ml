(* Fleet view: join the heartbeat sidecars of a sharded campaign back
   into one picture.

   Every consumer of cross-process progress goes through this module so
   they all agree: the parent's fan-out ticker (one summary line), the
   `gpuwmm status` subcommand (full per-shard table, ascii or JSON) and
   the /status and /metrics HTTP endpoints.  The inputs are plain .hb
   files, so the view works on a live campaign, on a finished one, and
   on artifacts copied off the machine.

   Aggregation rule: the fleet totals sum the *shard workers* (records
   carrying a shard spec) when any exist, because their shard-local
   counts partition the campaign plan exactly; a driver row (no shard
   spec — the parent, or a plain unsharded campaign) joins the totals
   only when no shard rows are present, since the parent's replay pass
   spans the whole plan and would double-count the workers. *)

type worker = {
  w_path : string;  (* the .hb stream *)
  w_last : Heartbeat.record;
  w_age_s : float;
  w_liveness : Heartbeat.liveness;
  w_straggler : bool;
}

type fleet = {
  workers : worker list;  (* sorted: shard workers by k, then drivers *)
  f_done : int;
  f_total : int;
  f_cached : int;
  f_errors : int;
  f_retried : int;
  f_quarantined : int;
  f_rate : float;  (* summed over live workers *)
  f_eta_s : float option;
  f_running : int;
  f_stale : int;
  f_dead : int;
  f_finished : int;
}

let shard_key r =
  match r.Heartbeat.shard with
  | None -> (1, 0, 0)  (* drivers sort after shard workers *)
  | Some s -> (
    match String.index_opt s '/' with
    | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | Some k -> (0, k, 0)
      | None -> (0, max_int, 0))
    | None -> (0, max_int, 0))

let median = function
  | [] -> None
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    Some a.(Array.length a / 2)

let load ~now paths =
  let rows =
    List.filter_map
      (fun p ->
        match Heartbeat.latest p with
        | None -> None
        | Some r ->
          Some
            { w_path = p; w_last = r;
              w_age_s = Float.max 0.0 (now -. r.Heartbeat.t);
              w_liveness = Heartbeat.classify ~now r;
              w_straggler = false })
      paths
  in
  let rows =
    List.sort
      (fun a b ->
        match compare (shard_key a.w_last) (shard_key b.w_last) with
        | 0 -> compare a.w_path b.w_path
        | c -> c)
      rows
  in
  (* A worker whose ETA exceeds 1.5x the fleet median is the straggler
     the operator wants to look at first. *)
  let etas =
    List.filter_map
      (fun w ->
        if w.w_liveness = Heartbeat.Running then w.w_last.Heartbeat.eta_s
        else None)
      rows
  in
  let rows =
    match median etas with
    | Some m when List.length etas >= 2 && m > 0.0 ->
      List.map
        (fun w ->
          match (w.w_liveness, w.w_last.Heartbeat.eta_s) with
          | Heartbeat.Running, Some e when e > 1.5 *. m ->
            { w with w_straggler = true }
          | _ -> w)
        rows
    | _ -> rows
  in
  let shard_rows =
    List.filter (fun w -> w.w_last.Heartbeat.shard <> None) rows
  in
  let counted = if shard_rows <> [] then shard_rows else rows in
  let sum f = List.fold_left (fun acc w -> acc + f w.w_last) 0 counted in
  let f_done = sum (fun r -> r.Heartbeat.jobs_done) in
  let f_total = sum (fun r -> r.Heartbeat.jobs_total) in
  let live w = w.w_liveness = Heartbeat.Running || w.w_liveness = Heartbeat.Stale in
  let f_rate =
    List.fold_left
      (fun acc w -> if live w then acc +. w.w_last.Heartbeat.rate else acc)
      0.0 counted
  in
  let remaining = f_total - f_done in
  let f_eta_s =
    if remaining > 0 && f_rate > 0.0 then
      Some (float_of_int remaining /. f_rate)
    else None
  in
  let count l = List.length (List.filter (fun w -> w.w_liveness = l) rows) in
  { workers = rows;
    f_done;
    f_total;
    f_cached = sum (fun r -> r.Heartbeat.cached);
    f_errors = sum (fun r -> r.Heartbeat.errors);
    f_retried = sum (fun r -> r.Heartbeat.retried);
    f_quarantined = sum (fun r -> r.Heartbeat.quarantined);
    f_rate;
    f_eta_s;
    f_running = count Heartbeat.Running;
    f_stale = count Heartbeat.Stale;
    f_dead = count Heartbeat.Dead;
    f_finished = count Heartbeat.Done }

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let format_eta = function
  | None -> "-"
  | Some s -> Exec.format_eta s

let bar ~width ~jobs_done ~total =
  if width <= 0 then ""
  else
    let filled =
      if total <= 0 then 0
      else Int.min width (width * jobs_done / Int.max 1 total)
    in
    Printf.sprintf "[%s%s]" (String.make filled '#')
      (String.make (width - filled) '.')

let percent ~jobs_done ~total =
  if total <= 0 then 0 else 100 * jobs_done / total

let summary_line f =
  let workers =
    Printf.sprintf "%d worker(s)%s%s%s"
      (List.length f.workers)
      (if f.f_finished > 0 then Printf.sprintf ", %d done" f.f_finished else "")
      (if f.f_stale > 0 then Printf.sprintf ", %d stale" f.f_stale else "")
      (if f.f_dead > 0 then Printf.sprintf ", %d DEAD" f.f_dead else "")
  in
  Printf.sprintf "fleet: %d/%d jobs (%d%%) | %.1f jobs/s | ETA %s | %s"
    f.f_done f.f_total
    (percent ~jobs_done:f.f_done ~total:f.f_total)
    f.f_rate (format_eta f.f_eta_s) workers

let worker_line ?(width = 20) w =
  let r = w.w_last in
  let name =
    match r.Heartbeat.shard with Some s -> s | None -> "driver"
  in
  let state =
    match w.w_liveness with
    | Heartbeat.Running ->
      Printf.sprintf "%4.1f j/s  ETA %s" r.Heartbeat.rate
        (format_eta r.Heartbeat.eta_s)
    | Heartbeat.Stale -> Printf.sprintf "STALE (%.0fs quiet)" w.w_age_s
    | Heartbeat.Dead -> Printf.sprintf "DEAD (%.0fs quiet)" w.w_age_s
    | Heartbeat.Done -> "done"
  in
  let extras =
    (if r.Heartbeat.retried > 0 then
       Printf.sprintf "  retried %d" r.Heartbeat.retried
     else "")
    ^ (if r.Heartbeat.quarantined > 0 then
         Printf.sprintf "  quarantined %d" r.Heartbeat.quarantined
       else "")
    ^ if w.w_straggler then "  << straggler" else ""
  in
  Printf.sprintf "  %-8s %s %4d/%-4d %3d%%  %-24s pid %d%s" name
    (bar ~width ~jobs_done:r.Heartbeat.jobs_done
       ~total:r.Heartbeat.jobs_total)
    r.Heartbeat.jobs_done r.Heartbeat.jobs_total
    (percent ~jobs_done:r.Heartbeat.jobs_done ~total:r.Heartbeat.jobs_total)
    state r.Heartbeat.pid extras

let render_ascii ?(width = 20) f =
  let b = Buffer.create 512 in
  Buffer.add_string b (summary_line f);
  Buffer.add_char b '\n';
  List.iter
    (fun w ->
      Buffer.add_string b (worker_line ~width w);
      Buffer.add_char b '\n')
    f.workers;
  Buffer.contents b

let worker_json w =
  let r = w.w_last in
  let open Json in
  Assoc
    ((match r.Heartbeat.shard with
     | Some s -> [ ("shard", String s) ]
     | None -> [])
    @ [ ("pid", Int r.Heartbeat.pid);
        ("state", String (Heartbeat.liveness_name w.w_liveness));
        ("label", String r.Heartbeat.label);
        ("done", Int r.Heartbeat.jobs_done);
        ("total", Int r.Heartbeat.jobs_total);
        ("cached", Int r.Heartbeat.cached);
        ("errors", Int r.Heartbeat.errors);
        ("rate", Float r.Heartbeat.rate) ]
    @ (match r.Heartbeat.eta_s with
      | Some e -> [ ("eta_s", Float e) ]
      | None -> [])
    @ [ ("retried", Int r.Heartbeat.retried);
        ("quarantined", Int r.Heartbeat.quarantined);
        ("age_s", Float w.w_age_s); ("seq", Int r.Heartbeat.seq);
        ("straggler", Bool w.w_straggler) ])

let render_json f =
  let open Json in
  Assoc
    [ ( "fleet",
        Assoc
          ([ ("done", Int f.f_done); ("total", Int f.f_total);
             ("cached", Int f.f_cached); ("errors", Int f.f_errors);
             ("retried", Int f.f_retried);
             ("quarantined", Int f.f_quarantined); ("rate", Float f.f_rate) ]
          @ (match f.f_eta_s with
            | Some e -> [ ("eta_s", Float e) ]
            | None -> [])
          @ [ ( "workers",
                Assoc
                  [ ("running", Int f.f_running); ("stale", Int f.f_stale);
                    ("dead", Int f.f_dead); ("done", Int f.f_finished) ] )
            ]) );
      ("shards", List (List.map worker_json f.workers)) ]

(* Prometheus text exposition for the fleet gauges; the per-process
   registry half of /metrics lives in {!Telemetry.prometheus}. *)
let prometheus f =
  let b = Buffer.create 512 in
  let gauge name ?(labels = "") v =
    Buffer.add_string b (Printf.sprintf "%s%s %d\n" name labels v)
  in
  Buffer.add_string b "# TYPE gpuwmm_fleet_jobs_done gauge\n";
  gauge "gpuwmm_fleet_jobs_done" f.f_done;
  Buffer.add_string b "# TYPE gpuwmm_fleet_jobs_total gauge\n";
  gauge "gpuwmm_fleet_jobs_total" f.f_total;
  Buffer.add_string b "# TYPE gpuwmm_fleet_errors gauge\n";
  gauge "gpuwmm_fleet_errors" f.f_errors;
  Buffer.add_string b "# TYPE gpuwmm_fleet_retried gauge\n";
  gauge "gpuwmm_fleet_retried" f.f_retried;
  Buffer.add_string b "# TYPE gpuwmm_fleet_quarantined gauge\n";
  gauge "gpuwmm_fleet_quarantined" f.f_quarantined;
  Buffer.add_string b "# TYPE gpuwmm_fleet_rate_jobs_per_s gauge\n";
  Buffer.add_string b
    (Printf.sprintf "gpuwmm_fleet_rate_jobs_per_s %g\n" f.f_rate);
  Buffer.add_string b "# TYPE gpuwmm_fleet_workers gauge\n";
  List.iter
    (fun (state, n) ->
      gauge "gpuwmm_fleet_workers"
        ~labels:(Printf.sprintf "{state=%S}" state)
        n)
    [ ("running", f.f_running); ("stale", f.f_stale); ("dead", f.f_dead);
      ("done", f.f_finished) ];
  Buffer.add_string b "# TYPE gpuwmm_shard_jobs_done gauge\n";
  List.iter
    (fun w ->
      match w.w_last.Heartbeat.shard with
      | Some s ->
        gauge "gpuwmm_shard_jobs_done"
          ~labels:(Printf.sprintf "{shard=%S}" s)
          w.w_last.Heartbeat.jobs_done
      | None -> ())
    f.workers;
  (* Per-shard plan sizes let a scraper tell "the fleet total is still
     partial" (a shard at 0 has not announced its plan yet) from "the
     fleet total is the whole campaign". *)
  Buffer.add_string b "# TYPE gpuwmm_shard_jobs_total gauge\n";
  List.iter
    (fun w ->
      match w.w_last.Heartbeat.shard with
      | Some s ->
        gauge "gpuwmm_shard_jobs_total"
          ~labels:(Printf.sprintf "{shard=%S}" s)
          w.w_last.Heartbeat.jobs_total
      | None -> ())
    f.workers;
  Buffer.contents b
