type result = {
  chip : string;
  patch : Patch_finder.result;
  sequences : Seq_finder.result;
  spreads : Spread_finder.result;
  tuned : Stress.tuned;
  elapsed_s : float;
}

let run ?backend ~chip ~seed ~budget () =
  let t0 = Unix.gettimeofday () in
  (* The three stages are data-dependent and run in sequence; each stage
     parallelises its own grid through Exec.  Stage seeds are split from
     the master seed up front. *)
  let patch =
    Patch_finder.run ?backend ~chip ~seed:(Gpusim.Rng.subseed seed 0) ~budget
      ()
  in
  let sequences =
    Seq_finder.run ?backend ~chip ~seed:(Gpusim.Rng.subseed seed 1) ~budget
      ~patch:patch.Patch_finder.chosen ()
  in
  let spreads =
    Spread_finder.run ?backend ~chip ~seed:(Gpusim.Rng.subseed seed 2) ~budget
      ~patch:patch.Patch_finder.chosen
      ~sequence:sequences.Seq_finder.winner ()
  in
  let tuned =
    { Stress.sequence = sequences.Seq_finder.winner;
      spread = spreads.Spread_finder.winner;
      regions = budget.Budget.max_spread }
  in
  { chip = chip.Gpusim.Chip.name; patch; sequences; spreads; tuned;
    elapsed_s = Unix.gettimeofday () -. t0 }

let parse s =
  match Access_seq.of_string s with
  | Some seq -> seq
  | None -> invalid_arg ("Tuning.shipped: bad sequence " ^ s)

(* Table 2 of the paper. *)
let table2 =
  [ ("980", "ld4 st");
    ("K5200", "ld3 st ld");
    ("Titan", "ld st2 ld");
    ("K20", "ld st2 ld");
    ("770", "st2 ld2");
    ("C2075", "ld st");
    ("C2050", "ld st") ]

let shipped ~chip =
  let name = chip.Gpusim.Chip.name in
  let sequence =
    match List.assoc_opt name table2 with
    | Some s -> parse s
    | None ->
      (* A typo'd chip must not silently masquerade as a tuned one. *)
      Logs.warn (fun m ->
          m
            "Tuning.shipped: chip %S has no Table 2 parameters; falling back \
             to the untuned sequence \"ld st\""
            name);
      parse "ld st"
  in
  { Stress.sequence; spread = 2; regions = Budget.default.Budget.max_spread }
