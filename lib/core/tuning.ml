type result = {
  chip : string;
  patch : Patch_finder.result;
  sequences : Seq_finder.result;
  spreads : Spread_finder.result;
  tuned : Stress.tuned;
  elapsed_s : float;
}

let run ?backend ?journal ~chip ~seed ~budget () =
  let t0 = Unix.gettimeofday () in
  (* The three stages are data-dependent and run in sequence; each stage
     parallelises its own grid through Exec.  Stage seeds are split from
     the master seed up front. *)
  let patch =
    Patch_finder.run ?backend ?journal ~chip ~seed:(Gpusim.Rng.subseed seed 0)
      ~budget ()
  in
  let sequences =
    Seq_finder.run ?backend ?journal ~chip ~seed:(Gpusim.Rng.subseed seed 1)
      ~budget ~patch:patch.Patch_finder.chosen ()
  in
  let spreads =
    Spread_finder.run ?backend ?journal ~chip
      ~seed:(Gpusim.Rng.subseed seed 2) ~budget
      ~patch:patch.Patch_finder.chosen
      ~sequence:sequences.Seq_finder.winner ()
  in
  let tuned =
    { Stress.sequence = sequences.Seq_finder.winner;
      spread = spreads.Spread_finder.winner;
      regions = budget.Budget.max_spread }
  in
  (* In deterministic-ledger mode the elapsed time would be the only
     nondeterministic field of the tuning result record; zero it so
     fresh and resumed ledgers stay byte-identical. *)
  let elapsed_s =
    if Runlog.deterministic_mode () then 0.0
    else Unix.gettimeofday () -. t0
  in
  { chip = chip.Gpusim.Chip.name; patch; sequences; spreads; tuned;
    elapsed_s }

let parse s =
  match Access_seq.of_string s with
  | Some seq -> seq
  | None -> invalid_arg ("Tuning.shipped: bad sequence " ^ s)

(* Table 2 of the paper. *)
let table2 =
  [ ("980", "ld4 st");
    ("K5200", "ld3 st ld");
    ("Titan", "ld st2 ld");
    ("K20", "ld st2 ld");
    ("770", "st2 ld2");
    ("C2075", "ld st");
    ("C2050", "ld st") ]

let strict_mode = Atomic.make false
let set_strict b = Atomic.set strict_mode b
let strict () = Atomic.get strict_mode

let shipped ~chip =
  let strict = Atomic.get strict_mode in
  let name = chip.Gpusim.Chip.name in
  let sequence =
    match List.assoc_opt name table2 with
    | Some s -> parse s
    | None when strict ->
      (* Fail closed: a typo'd chip must not silently run a campaign
         with untuned parameters. *)
      invalid_arg
        (Printf.sprintf
           "Tuning.shipped: chip %S has no Table 2 parameters (--strict)"
           name)
    | None ->
      (* A typo'd chip must not silently masquerade as a tuned one. *)
      Logs.warn (fun m ->
          m
            "Tuning.shipped: chip %S has no Table 2 parameters; falling back \
             to the untuned sequence \"ld st\""
            name);
      parse "ld st"
  in
  { Stress.sequence; spread = 2; regions = Budget.default.Budget.max_spread }

(* ------------------------------------------------------------------ *)
(* Ledger codecs                                                        *)

let tuned_to_json (t : Stress.tuned) =
  Json.Assoc
    [ ("sequence", Json.String (Access_seq.to_string t.Stress.sequence));
      ("spread", Json.Int t.Stress.spread);
      ("regions", Json.Int t.Stress.regions) ]

let tuned_of_json j =
  let open Runlog.Dec in
  let* sj = field "sequence" j in
  let* sequence = Seq_finder.sequence_of_json sj in
  let* spread = int "spread" j in
  let* regions = int "regions" j in
  Ok { Stress.sequence; spread; regions }

let result_to_json r =
  Json.Assoc
    [ ("chip", Json.String r.chip);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("patch", Patch_finder.result_to_json r.patch);
      ("sequences", Seq_finder.result_to_json r.sequences);
      ("spreads", Spread_finder.result_to_json r.spreads);
      ("tuned", tuned_to_json r.tuned) ]

let result_of_json j =
  let open Runlog.Dec in
  let* chip = str "chip" j in
  let* elapsed_s = float "elapsed_s" j in
  let* pj = field "patch" j in
  let* patch = Patch_finder.result_of_json pj in
  let* sj = field "sequences" j in
  let* sequences = Seq_finder.result_of_json sj in
  let* spj = field "spreads" j in
  let* spreads = Spread_finder.result_of_json spj in
  let* tj = field "tuned" j in
  let* tuned = tuned_of_json tj in
  Ok { chip; patch; sequences; spreads; tuned; elapsed_s }
