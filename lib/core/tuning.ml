type result = {
  chip : string;
  patch : Patch_finder.result;
  sequences : Seq_finder.result;
  spreads : Spread_finder.result;
  tuned : Stress.tuned;
  elapsed_s : float;
}

let run ~chip ~seed ~budget ?(progress = ignore) () =
  let t0 = Unix.gettimeofday () in
  let sub = Gpusim.Rng.create seed in
  let patch =
    Patch_finder.run ~chip ~seed:(Gpusim.Rng.bits30 sub) ~budget ~progress ()
  in
  let sequences =
    Seq_finder.run ~chip ~seed:(Gpusim.Rng.bits30 sub) ~budget
      ~patch:patch.Patch_finder.chosen ~progress ()
  in
  let spreads =
    Spread_finder.run ~chip ~seed:(Gpusim.Rng.bits30 sub) ~budget
      ~patch:patch.Patch_finder.chosen
      ~sequence:sequences.Seq_finder.winner ~progress ()
  in
  let tuned =
    { Stress.sequence = sequences.Seq_finder.winner;
      spread = spreads.Spread_finder.winner;
      regions = budget.Budget.max_spread }
  in
  { chip = chip.Gpusim.Chip.name; patch; sequences; spreads; tuned;
    elapsed_s = Unix.gettimeofday () -. t0 }

let parse s =
  match Access_seq.of_string s with
  | Some seq -> seq
  | None -> invalid_arg ("Tuning.shipped: bad sequence " ^ s)

(* Table 2 of the paper. *)
let table2 =
  [ ("980", "ld4 st");
    ("K5200", "ld3 st ld");
    ("Titan", "ld st2 ld");
    ("K20", "ld st2 ld");
    ("770", "st2 ld2");
    ("C2075", "ld st");
    ("C2050", "ld st") ]

let shipped ~chip =
  let name = chip.Gpusim.Chip.name in
  let sequence =
    match List.assoc_opt name table2 with
    | Some s -> parse s
    | None -> parse "ld st"
  in
  { Stress.sequence; spread = 2; regions = Budget.default.Budget.max_spread }
