(** Formatting of the paper's tables and figures from campaign data.

    Tables are rendered as aligned ASCII; figures as ASCII bar/line/scatter
    plots, with CSV export for external plotting. *)

val table1 : Format.formatter -> unit
(** The seven studied GPUs (Table 1). *)

val table2 :
  Format.formatter -> (Tuning.result * float) list -> unit
(** Tuned stressing parameters per chip (Table 2); the float is the
    tuning time in minutes. *)

val table3 : Format.formatter -> Seq_finder.result -> unit
(** Top and bottom access sequences per litmus test (Table 3). *)

val table4 : Format.formatter -> unit
(** The ten application case studies (Table 4). *)

val table5 : Format.formatter -> Campaign.row list -> unit
(** Effectiveness summary, a/b per chip and environment (Table 5). *)

val table6 : Format.formatter -> Harden.result list -> unit
(** Empirical fence insertion results (Table 6), grouped by application
    with per-chip agreement against the first (reference) chip. *)

val figure3 :
  Format.formatter -> chip:string -> Patch_finder.result -> unit
(** Patch-finding bar plots: weak behaviours per stressed location, one
    row block per (test, distance) (Fig. 3). *)

val figure4 :
  Format.formatter -> chip:string -> Spread_finder.result -> unit
(** Spread-finding curves: score per spread and litmus test (Fig. 4). *)

val figure5 : Format.formatter -> Cost.point list -> unit
(** Fence-cost scatter data and medians (Fig. 5). *)

val patch_csv : Patch_finder.result -> string
val spread_csv : Spread_finder.result -> string
val cost_csv : Cost.point list -> string
