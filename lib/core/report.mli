(** Formatting of the paper's tables and figures from campaign data.

    Tables are rendered as aligned ASCII; figures as ASCII bar/line/scatter
    plots, with CSV export for external plotting. *)

val table1 : Format.formatter -> unit
(** The seven studied GPUs (Table 1). *)

val table2 :
  Format.formatter -> (Tuning.result * float) list -> unit
(** Tuned stressing parameters per chip (Table 2); the float is the
    tuning time in minutes. *)

val table3 : Format.formatter -> Seq_finder.result -> unit
(** Top and bottom access sequences per litmus test (Table 3). *)

val table4 : Format.formatter -> unit
(** The ten application case studies (Table 4). *)

val table5 : Format.formatter -> Campaign.row list -> unit
(** Effectiveness summary, a/b per chip and environment (Table 5). *)

val table6 : Format.formatter -> Harden.result list -> unit
(** Empirical fence insertion results (Table 6), grouped by application
    with per-chip agreement against the first (reference) chip. *)

val figure3 :
  Format.formatter -> chip:string -> Patch_finder.result -> unit
(** Patch-finding bar plots: weak behaviours per stressed location, one
    row block per (test, distance) (Fig. 3). *)

val figure4 :
  Format.formatter -> chip:string -> Spread_finder.result -> unit
(** Spread-finding curves: score per spread and litmus test (Fig. 4). *)

val figure5 : Format.formatter -> Cost.point list -> unit
(** Fence-cost scatter data and medians (Fig. 5). *)

val patch_csv : Patch_finder.result -> string
val spread_csv : Spread_finder.result -> string
val cost_csv : Cost.point list -> string

(** {1 Ledger-backed rendering}

    [gpuwmm report --from LEDGER] rebuilds tables and figures purely
    from a run ledger; every output is stamped with the ledger's header
    provenance first. *)

val provenance : Format.formatter -> path:string -> Runlog.header -> unit
(** ['#']-prefixed provenance stamp (valid as CSV comment lines):
    ledger path, schema, campaign kind, seed, jobs, argv, creation time
    and git version; shard ledgers are flagged as partial, and a merged
    ledger (outside deterministic mode) names every contributing shard
    ledger. *)

val table5_csv : Campaign.row list -> string
(** One line per (chip, environment, app) cell: errors, runs, error
    rate and dominant failure mode (commas in messages become [';']). *)

val table5_md : Campaign.row list -> string
(** Table 5 as a GitHub-flavoured markdown table. *)

val table2_csv : (Tuning.result * float) list -> string

val table3_csv : Seq_finder.result -> string
(** One line per scored sequence: total and per-idiom weak counts. *)

val table6_csv : Harden.result list -> string
(** One line per (app, chip) hardening result; fence sites are
    [';']-separated. *)

val patches_csv : (string * Patch_finder.result) list -> string
(** {!patch_csv} with a chip column, for multi-chip ledgers. *)

val spreads_csv : (string * Spread_finder.result) list -> string
(** {!spread_csv} with a chip column, for multi-chip ledgers. *)

(** {1 Campaign comparison}

    [gpuwmm compare A B] diffs two campaign ledgers cell by cell.  The
    testing environment's job is to {e expose} errors, so a cell whose
    error-exposure rate drops by more than the tolerance — or a missing
    row/cell — is a regression; rises are improvements; failure modes
    appearing in or vanishing from the per-cell histograms are notes. *)

type comparison = {
  regressions : string list;
  improvements : string list;
  notes : string list;
}

val compare_campaigns :
  tolerance:float ->
  baseline:Campaign.row list ->
  candidate:Campaign.row list ->
  comparison
(** [tolerance] is an absolute error-rate delta (e.g. 0.02 allows a two
    percentage-point drop before flagging a regression). *)

val pp_comparison : Format.formatter -> comparison -> unit
