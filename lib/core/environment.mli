(** The eight testing environments of Sec. 4.2.

    An environment combines a stressing strategy with thread randomisation
    on or off: no-str, sys-str, rand-str, cache-str, each with a [+]
    (randomisation enabled) or [-] (disabled) suffix. *)

type t = {
  label : string;  (** e.g. "sys-str+" *)
  strategy : Stress.t;
  randomise : bool;
}

val make : Stress.t -> randomise:bool -> t

val all : tuned:Stress.tuned -> t list
(** The eight environments in the column order of Table 5: no-str-,
    no-str+, sys-str-, sys-str+, rand-str-, rand-str+, cache-str-,
    cache-str+.  [tuned] supplies the chip's systematic-stress
    parameters. *)

val sys_plus : tuned:Stress.tuned -> t
(** The flagship environment, sys-str+. *)

val for_litmus : t -> Gpusim.Sim.environment
(** Thread-count rule for litmus campaigns (50-100% of max concurrent). *)

val for_app : t -> Gpusim.Sim.environment
(** Thread-count rule for application testing (15-50% of the app's
    blocks). *)
