(** Empirical fence insertion (Sec. 5, Alg. 1).

    Starting from a fence after every global memory access, binary and
    linear reduction repeatedly remove fences, re-testing the application
    under an aggressive environment after each removal.  The process
    converges to a set of fences that is {e empirically stable} (no errors
    over a long test) and minimal in the sense that every fence in it was
    individually observed to matter. *)

type config = {
  environment : Environment.t;  (** the paper uses sys-str+ *)
  initial_iterations : int;  (** Alg. 1's I; the paper uses 32 *)
  stability_runs : int;
      (** executions for the EmpiricallyStable check (the paper's one
          hour of testing) *)
  max_rounds : int;
      (** restarts with doubled I before giving up (the paper's 24 h
          timeout) *)
}

val default_config : chip:Gpusim.Chip.t -> config
(** sys-str+ with the chip's shipped tuned parameters, I = 32,
    200 stability runs, 4 rounds. *)

type result = {
  app : string;
  chip : string;
  initial : int;  (** size of the initial (conservative) fence set *)
  fences : (string * int) list;
      (** the surviving fence sites: (kernel, access site id) *)
  converged : bool;  (** false if [max_rounds] was exhausted (timeout) *)
  rounds : int;
  checks : int;  (** CheckApplication invocations performed *)
  elapsed_s : float;
}

val check_application :
  ?backend:Exec.backend ->
  chip:Gpusim.Chip.t ->
  env:Environment.t ->
  app:Apps.App.t ->
  fences:(string * int) list ->
  iterations:int ->
  seed:int ->
  unit ->
  bool
(** Alg. 1's CheckApplication: [true] when no error is observed in
    [iterations] executions of the application with the given fences.
    The iterations are independent {!Exec} jobs with pre-derived seeds,
    so the verdict is identical across executor backends (both
    short-circuit on the first failure). *)

val insert :
  chip:Gpusim.Chip.t ->
  ?config:config ->
  ?backend:Exec.backend ->
  ?journal:Runlog.journal ->
  app:Apps.App.t ->
  seed:int ->
  unit ->
  result
(** Run empirical fence insertion for one application on one chip.  The
    application should be fence-free (Sec. 5.2 uses the seven fence-free
    case studies).

    The reduction is adaptive, so the journaled unit is the {e check}:
    the n-th CheckApplication verdict is a pure function of
    (seed, n, fence set) and is memoised under phase ["checks"] via
    {!Runlog.memo}.  Resuming replays the recorded verdicts in order,
    and the reduction deterministically retraces its path to the first
    unrecorded check.  In {!Runlog.deterministic_mode} [elapsed_s]
    is 0. *)

(** {1 Ledger codecs} *)

val result_to_json : result -> Json.t
val result_of_json : Json.t -> (result, string) Stdlib.result
val results_to_json : result list -> Json.t
val results_of_json : Json.t -> (result list, string) Stdlib.result
