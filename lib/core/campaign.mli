(** Application testing campaigns (Sec. 4, Table 5).

    For each (chip, environment, application) combination, the application
    is executed repeatedly under the environment and erroneous runs are
    counted.  The paper tests each combination for one hour; here the
    budget is an execution count, and rates are compared against the same
    5% effectiveness threshold.

    The grid is planned, executed and reduced through {!Exec}: one job per
    cell with a pre-derived seed, so results are independent of execution
    order and identical across executor backends. *)

type cell = {
  app : string;
  errors : int;
  runs : int;
  example : string;  (** first error message observed, if any *)
  histogram : (string * int) list;
      (** error message -> occurrence count, sorted by descending count
          (ties by message); reveals a cell's dominant failure modes.
          Error messages gain a [" \[soft-error\]"] suffix when injected
          bit-flips (and no reorderings) occurred in the erroneous run,
          or [" \[soft-error?\]"] when both did *)
  quarantined : string option;
      (** [Some reason] when the cell's job exhausted its supervised
          attempts under [--keep-going]: the cell carries no
          measurements ([runs = 0]) and reports render it degraded *)
}

type row = {
  chip : string;
  environment : string;
  cells : cell list;
  capable : int;  (** applications with at least one erroneous run (b) *)
  effective : int;  (** applications with error rate above 5% (a) *)
}

val effectiveness_threshold : float
(** 0.05, as in the paper. *)

val test_app :
  chip:Gpusim.Chip.t ->
  env:Environment.t ->
  app:Apps.App.t ->
  runs:int ->
  seed:int ->
  cell
(** Run one combination.  Applications that ship fences run [Original];
    the [-nf] variants strip them (encoded in the application itself).
    Per-run seeds are [Rng.subseed seed i]. *)

val dominant : cell -> (string * int) option
(** The cell's most frequent error message and its count, if any. *)

val merge_histograms : (string * int) list list -> (string * int) list
(** Order-independent merge of error histograms (summed counts, sorted by
    descending count then message). *)

val summarise_names :
  chip:string -> env:string -> cell list -> row
(** Summarise one row from already-computed cells, identified by name
    only (no chip/environment values needed — what ledger-level tooling
    has). *)

val rows_of_cells :
  chips:string list ->
  envs:string list ->
  apps_per_row:int ->
  cell list ->
  (row list, string) result
(** Rebuild the reduced row list from a flat plan-order cell list
    (chips x envs nesting, [apps_per_row] cells per row).  [gpuwmm
    merge] uses this to reconstruct a merged ledger's result record
    from its job records; errors out when the cell count does not match
    the grid. *)

val run :
  ?backend:Exec.backend ->
  ?journal:Runlog.journal ->
  chips:Gpusim.Chip.t list ->
  environments_for:(Gpusim.Chip.t -> Environment.t list) ->
  apps:Apps.App.t list ->
  runs:int ->
  seed:int ->
  unit ->
  row list
(** The full grid, row per (chip, environment).  [environments_for]
    builds the environment list per chip, because the systematic strategy
    uses per-chip tuned parameters.  [backend] selects the executor
    (default {!Exec.Serial}); results are bit-identical across
    backends.  [journal] journals every completed cell to a run ledger
    (phase ["campaign"]) and replays cells cached by [--resume]. *)

(** {1 Ledger codecs} *)

val cell_to_json : cell -> Json.t
val cell_of_json : Json.t -> (cell, string) result
val cell_codec : cell Runlog.codec

val rows_to_json : row list -> Json.t
val rows_of_json : Json.t -> (row list, string) result
(** The campaign's reduced result, as stored in a ledger's result
    record and rendered by [gpuwmm report]/[compare]. *)

val sys_tuned_for : Gpusim.Chip.t -> Stress.tuned
(** The shipped Table 2 parameters for a chip (used when the caller does
    not re-run tuning). *)
