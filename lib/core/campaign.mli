(** Application testing campaigns (Sec. 4, Table 5).

    For each (chip, environment, application) combination, the application
    is executed repeatedly under the environment and erroneous runs are
    counted.  The paper tests each combination for one hour; here the
    budget is an execution count, and rates are compared against the same
    5% effectiveness threshold. *)

type cell = {
  app : string;
  errors : int;
  runs : int;
  example : string;  (** one representative error message, if any *)
}

type row = {
  chip : string;
  environment : string;
  cells : cell list;
  capable : int;  (** applications with at least one erroneous run (b) *)
  effective : int;  (** applications with error rate above 5% (a) *)
}

val effectiveness_threshold : float
(** 0.05, as in the paper. *)

val test_app :
  chip:Gpusim.Chip.t ->
  env:Environment.t ->
  app:Apps.App.t ->
  runs:int ->
  seed:int ->
  cell
(** Run one combination.  Applications that ship fences run [Original];
    the [-nf] variants strip them (encoded in the application itself). *)

val run :
  chips:Gpusim.Chip.t list ->
  environments_for:(Gpusim.Chip.t -> Environment.t list) ->
  apps:Apps.App.t list ->
  runs:int ->
  seed:int ->
  ?progress:(string -> unit) ->
  unit ->
  row list
(** The full grid, row per (chip, environment).  [environments_for]
    builds the environment list per chip, because the systematic strategy
    uses per-chip tuned parameters. *)

val sys_tuned_for : Gpusim.Chip.t -> Stress.tuned
(** The shipped Table 2 parameters for a chip (used when the caller does
    not re-run tuning). *)
