(** Metrics registry, per-job spans, and trace exporters.

    The deterministic side of observability lives in {!Gpusim.Trace}:
    typed simulator events stamped with device ticks, identical across
    execution backends.  This module is the {e non}-deterministic side —
    everything that involves wall clocks, worker domains, or aggregate
    throughput — plus the serialisation layer that turns both sides into
    files a human (or Chrome) can open:

    {ul
    {- a process-wide registry of named {b counters} and duration
       {b histograms}, safe to bump from any domain.  Cells are striped
       per domain and merged on read, so hot-path updates from worker
       domains never contend on a shared cache line (the registry itself
       is mutex-guarded);}
    {- per-job {b spans} recorded by {!Exec} when enabled — queue wait,
       run time, worker id — for visualising campaign schedules;}
    {- exporters: Chrome trace-event JSON ([chrome://tracing],
       Perfetto) and line-delimited JSON with a lossless round-trip
       ({!record_of_json} inverts {!record_to_json}).}} *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find or create the registered counter with this name.  Cheap enough
    to call per use-site, but callers on hot paths should hoist it. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Find or create a duration histogram (seconds, log-scale buckets from
    1µs to 100s plus overflow). *)

val observe : histogram -> float -> unit
(** Record one duration.  Negative samples clamp to zero. *)

type histogram_snapshot = {
  count : int;
  sum : float;  (** total seconds across all samples *)
  buckets : (float * int) list;
      (** (upper bound in seconds, samples ≤ bound); the final bucket
          has bound [infinity] *)
}

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** A consistent-enough view of the whole registry (each cell is read
    atomically; the set of cells is read under the registry lock). *)

val reset : unit -> unit
(** Zero every registered counter and histogram (registrations remain). *)

val snapshot_to_json : snapshot -> Json.t
(** [{"counters": {...}, "histograms": {name: {count, sum, buckets}}}].
    Histogram buckets render only non-empty ones, as
    [{"le": bound_or_"inf", "n": count}]. *)

(** {1 Spans} *)

type span = {
  label : string;  (** campaign label, e.g. ["tune"] *)
  index : int;  (** job index in the plan *)
  worker : int;  (** worker domain slot; 0 is the calling domain *)
  queued_at : float;  (** wall clock when the batch was submitted *)
  started_at : float;
  ended_at : float;
}

val set_spans : bool -> unit
(** Enable or disable span recording process-wide (default off; enabling
    also clears previously recorded spans). *)

val spans_enabled : unit -> bool

val record_span : span -> unit
(** No-op while spans are disabled. *)

val spans : unit -> span list
(** Recorded spans, oldest first. *)

val clear_spans : unit -> unit

(** {1 Exporters} *)

val record_to_json : Gpusim.Trace.record -> Json.t
(** One flat object: [{"tick": t, "ev": "commit", ...event fields}]. *)

val record_of_json : Json.t -> (Gpusim.Trace.record, string) result
(** Exact inverse of {!record_to_json}. *)

val jsonl : ?pid:int -> ?shard:string -> Gpusim.Trace.record list -> string
(** One {!record_to_json} object per line, newline-terminated.  [?pid]
    and [?shard] prepend provenance fields to every line, so lines from
    several worker processes stay attributable after concatenation;
    {!record_of_json} ignores them, keeping the round-trip lossless. *)

val jsonl_parse : string -> (Gpusim.Trace.record list, string) result
(** Inverse of {!jsonl}; blank lines are skipped. *)

val chrome_trace :
  ?pid:int ->
  ?shard:string ->
  ?span_base:float ->
  ?spans:span list ->
  Gpusim.Trace.record list ->
  Json.t
(** A Chrome trace-event file: [{"traceEvents": [...]}].  Simulator
    records become instant events (ph ["i"], ts = device tick in µs,
    tid = issuing thread) except {!Gpusim.Trace.Contention} samples,
    which become counter events (ph ["C"], one track per partition).
    Spans become complete events (ph ["X"], tid = worker, dur = run
    time, with queue wait in args).  Events are sorted by ts, so
    timestamps are monotone within every track.

    Without [?pid], records sit on synthetic track 0 and spans on
    track 1, and span timestamps are rebased so the earliest
    [queued_at] is 0 — the traditional single-process layout.  With
    [?pid] (a campaign process writing its own file) both use the real
    pid and a [process_name] metadata event labels the track with pid
    and [?shard]; pass [~span_base:0.0] to keep span timestamps
    absolute (Unix µs) so [gpuwmm trace --merge] can union files from
    several processes onto one timeline. *)

val prometheus : snapshot -> string
(** Prometheus text exposition of the registry: each counter as a
    [counter] metric and each histogram as a [histogram] with
    [_bucket{le=...}]/[_sum]/[_count] series, names prefixed
    [gpuwmm_] with non-alphanumerics mapped to [_]
    (["exec.jobs"] → ["gpuwmm_exec_jobs"]). *)
