(* Worker heartbeats: the cross-process half of campaign progress.

   A campaign ledger records *results*; it says nothing about the
   health of the process writing it.  Each campaign process therefore
   appends a small JSONL heartbeat record to a sidecar stream
   ([<ledger>.hb]) about once a second: pid and shard, jobs done/total,
   the EWMA rate and ETA the ticker already maintains, retry and
   quarantine counts, GC pressure, and the deltas of the telemetry
   counters since the previous beat.  Readers (the parent's fleet
   ticker, `gpuwmm status`, the /status and /metrics endpoints) join
   the sidecars back into one fleet view — and classify a worker whose
   stream has gone quiet for two intervals as dead, which is how a
   `kill -9`'d worker is flagged without waiting on the parent's
   waitpid.

   The stream is append-only and crash-tolerant like the ledger itself:
   each beat is one line, written with a single [output_string] on a
   freshly opened descriptor, and readers drop unparseable (torn)
   lines.  Heartbeats never influence results; under
   [GPUWMM_LEDGER_DETERMINISTIC] every wall-clock-derived field is
   zeroed so test fixtures stay byte-stable. *)

type liveness = Running | Stale | Dead | Done

type record = {
  pid : int;
  shard : string option;  (* "k/N" for shard workers, None for drivers *)
  seq : int;
  t : float;  (* wall clock of the beat; 0.0 in deterministic mode *)
  interval_s : float;
  final : bool;  (* last beat of a completed process *)
  label : string;  (* current campaign phase, "" before the first job *)
  jobs_done : int;
  jobs_total : int;
  cached : int;
  errors : int;
  rate : float;  (* EWMA jobs/s; 0.0 until warm or in deterministic mode *)
  eta_s : float option;
  retried : int;
  quarantined : int;
  minor_words : float;
  minor_collections : int;
  major_collections : int;
  counters : (string * int) list;  (* telemetry counter deltas, sorted *)
}

let hb_path ledger = ledger ^ ".hb"

(* GPUWMM_HEARTBEAT=off disables the sidecar; a numeric value overrides
   the beat interval in seconds. *)
let enabled () =
  match Sys.getenv_opt "GPUWMM_HEARTBEAT" with
  | Some ("0" | "off" | "no" | "false") -> false
  | _ -> true

let default_interval = 1.0

let interval () =
  match Sys.getenv_opt "GPUWMM_HEARTBEAT" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some f when f > 0.0 -> f
    | _ -> default_interval)
  | None -> default_interval

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)

let to_json r =
  let open Json in
  Assoc
    (("rec", String "hb") :: ("pid", Int r.pid)
    :: (match r.shard with Some s -> [ ("shard", String s) ] | None -> [])
    @ [ ("seq", Int r.seq); ("t", Float r.t);
        ("interval_s", Float r.interval_s) ]
    @ (if r.final then [ ("final", Bool true) ] else [])
    @ [ ("label", String r.label); ("done", Int r.jobs_done);
        ("total", Int r.jobs_total); ("cached", Int r.cached);
        ("errors", Int r.errors); ("rate", Float r.rate) ]
    @ (match r.eta_s with Some e -> [ ("eta_s", Float e) ] | None -> [])
    @ [ ("retried", Int r.retried); ("quarantined", Int r.quarantined);
        ("minor_words", Float r.minor_words);
        ("minor_collections", Int r.minor_collections);
        ("major_collections", Int r.major_collections);
        ("counters", Assoc (List.map (fun (k, v) -> (k, Int v)) r.counters))
      ])

let of_json j =
  let open Runlog.Dec in
  let opt_float k =
    match Json.member k j with
    | None -> Ok None
    | Some v -> (
      match Json.to_float v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "field %s is not a number" k))
  in
  let opt_bool k ~default =
    match Json.member k j with
    | None -> Ok default
    | Some v -> (
      match Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %s is not a boolean" k))
  in
  let* tag = str "rec" j in
  if tag <> "hb" then Error (Printf.sprintf "not a heartbeat record: %S" tag)
  else
    let* pid = int "pid" j in
    let* shard = opt_str "shard" j in
    let* seq = int "seq" j in
    let* t = float "t" j in
    let* interval_s = float "interval_s" j in
    let* final = opt_bool "final" ~default:false in
    let* label = str "label" j in
    let* jobs_done = int "done" j in
    let* jobs_total = int "total" j in
    let* cached = int "cached" j in
    let* errors = int "errors" j in
    let* rate = float "rate" j in
    let* eta_s = opt_float "eta_s" in
    let* retried = int "retried" j in
    let* quarantined = int "quarantined" j in
    let* minor_words = float "minor_words" j in
    let* minor_collections = int "minor_collections" j in
    let* major_collections = int "major_collections" j in
    let* counters =
      match Json.member "counters" j with
      | Some (Json.Assoc kvs) ->
        all
          (fun (k, v) ->
            match Json.to_int v with
            | Some n -> Ok (k, n)
            | None -> Error (Printf.sprintf "non-integer counter %s" k))
          kvs
      | _ -> Error "missing or mistyped field counters"
    in
    Ok
      { pid; shard; seq; t; interval_s; final; label; jobs_done; jobs_total;
        cached; errors; rate; eta_s; retried; quarantined; minor_words;
        minor_collections; major_collections; counters }

(* ------------------------------------------------------------------ *)
(* Stream I/O                                                           *)

(* One open-append-write-close per beat: the line lands in one write so
   a concurrent reader never sees half a record except after a crash
   mid-write, and crashes leave no dangling descriptor. *)
let append ~path r =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json r) ^ "\n");
      flush oc)

(* Every parseable record of a stream, oldest first.  Torn or foreign
   lines are skipped, mirroring the ledger reader's crash tolerance. *)
let load path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let acc = ref [] in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Json.of_string line with
           | Error _ -> ()
           | Ok j -> (
             match of_json j with Ok r -> acc := r :: !acc | Error _ -> ())
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !acc

let latest path =
  match load path with [] -> None | l -> Some (List.nth l (List.length l - 1))

(* ------------------------------------------------------------------ *)
(* Staleness                                                            *)

(* A worker that stops beating is flagged [Stale] after 1.5 intervals
   (one missed beat plus scheduling slack) and [Dead] at 2 — the bound
   `gpuwmm status` promises for a kill -9'd worker.  A final beat marks
   orderly completion and never ages into Dead. *)
let classify ~now r =
  if r.final then Done
  else if r.interval_s <= 0.0 then Running
  else
    let age = now -. r.t in
    if age >= 2.0 *. r.interval_s then Dead
    else if age > 1.5 *. r.interval_s then Stale
    else Running

let liveness_name = function
  | Running -> "running"
  | Stale -> "stale"
  | Dead -> "dead"
  | Done -> "done"

(* ------------------------------------------------------------------ *)
(* The emitter                                                          *)

type emitter = {
  e_stop : bool Atomic.t;
  e_domain : unit Domain.t;
}

(* Snapshot the process into one record.  Wall-clock-derived fields
   (timestamp, rate, ETA, GC stats) are zeroed in deterministic mode so
   sidecars written by test fixtures stay byte-stable; the campaign
   counters are real either way. *)
let sample ~det ~shard ~interval_s ~seq ~final ~prev_counters () =
  let p = Exec.progress () in
  let retried, quarantined = Exec.summary_counts () in
  let gc = Gc.quick_stat () in
  let snap = (Telemetry.snapshot ()).Telemetry.counters in
  let deltas =
    List.filter_map
      (fun (k, v) ->
        let d =
          v - (match List.assoc_opt k !prev_counters with Some o -> o | None -> 0)
        in
        if d <> 0 then Some (k, d) else None)
      snap
  in
  prev_counters := snap;
  let label, jobs_done, jobs_total, cached, errors, rate, eta_s =
    match p with
    | None -> ("", 0, 0, 0, 0, 0.0, None)
    | Some p ->
      ( p.Exec.p_label, p.Exec.p_done, p.Exec.p_total, p.Exec.p_cached,
        p.Exec.p_errors, p.Exec.p_rate, p.Exec.p_eta_s )
  in
  { pid = Unix.getpid ();
    shard;
    seq;
    t = (if det then 0.0 else Unix.gettimeofday ());
    interval_s;
    final;
    label;
    jobs_done;
    jobs_total;
    cached;
    errors;
    rate = (if det then 0.0 else rate);
    eta_s = (if det then None else eta_s);
    retried;
    quarantined;
    minor_words = (if det then 0.0 else gc.Gc.minor_words);
    minor_collections = (if det then 0 else gc.Gc.minor_collections);
    major_collections = (if det then 0 else gc.Gc.major_collections);
    counters = deltas }

let start ?(interval_s = interval ()) ?shard ~path () =
  let det = Runlog.deterministic_mode () in
  let stop = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        let prev_counters = ref [] in
        let seq = ref 0 in
        let beat ~final =
          match
            append ~path
              (sample ~det ~shard ~interval_s ~seq:!seq ~final ~prev_counters
                 ())
          with
          | () -> incr seq
          | exception Sys_error _ -> ()
        in
        beat ~final:false;
        (* The seq-0 beat usually predates the campaign plan (the
           emitter starts before Exec builds its ticker), so it reports
           0/0.  Announce the plan the moment it appears rather than a
           full interval later: observers summing shard totals then see
           the whole fleet's plan within the workers' startup skew. *)
        let announced = ref (Exec.progress () <> None) in
        let rec loop () =
          if not (Atomic.get stop) then begin
            (* Sleep in short slices so stop is honoured promptly and the
               final beat lands before the process exits. *)
            let deadline = Unix.gettimeofday () +. interval_s in
            let announce = ref false in
            while
              (not (Atomic.get stop))
              && (not !announce)
              && Unix.gettimeofday () < deadline
            do
              Unix.sleepf 0.02;
              if (not !announced) && Exec.progress () <> None then begin
                announced := true;
                announce := true
              end
            done;
            if not (Atomic.get stop) then begin
              beat ~final:false;
              loop ()
            end
          end
        in
        loop ();
        beat ~final:true)
  in
  { e_stop = stop; e_domain = dom }

let stop e =
  Atomic.set e.e_stop true;
  Domain.join e.e_domain
