(** Pareto-optimality over per-objective scores, as used to select access
    sequences (Sec. 3.3) and spreads (Sec. 3.4) against the three litmus
    tests. *)

val dominates : scores:('a -> int array) -> 'a -> 'a -> bool
(** [dominates ~scores a b]: [a] is at least as good as [b] on every
    objective and strictly better on at least one.  The score arrays of
    all items must have equal length. *)

val front : scores:('a -> int array) -> 'a list -> 'a list
(** Items not dominated by any other item, in input order. *)

val select :
  scores:('a -> int array) -> tie:('a -> 'a -> int) -> 'a list -> 'a option
(** The paper's winner rule: take the Pareto front; if it has several
    members, prefer the one that achieves the maximum score on the most
    objectives (the "most effective for two of the three litmus tests"
    tie-break); remaining ties fall back to the highest total score, then
    to the deterministic order [tie]. *)
