(* Deterministic partitioning of an Exec plan into k/N shards.

   A shard is a pure function of (k, N, strategy) over plan indices —
   per-job seeds are pre-derived from the plan index (Exec.plan), so a
   shard executes exactly the jobs it owns with exactly the seeds the
   unsharded run would have used.  Two strategies:

   - [Stride] (the default): shard k of N owns indices congruent to
     k-1 mod N.  Ownership is independent of the plan length, so it
     also applies to adaptive job streams whose total is unknown up
     front, and it balances heterogeneous grids (neighbouring cells of
     a campaign land on different shards).
   - [Contiguous]: shard k owns the k-th of N contiguous chunks
     (the first [total mod N] chunks are one longer).  Better locality
     when neighbouring jobs share warmed state.

   [rank] maps an owned plan index to its position within the shard's
   own ledger stream (0, 1, 2, ...): shard ledgers are written in rank
   order, and `gpuwmm merge` interleaves them back into plan order. *)

type strategy = Stride | Contiguous

type t = { k : int; n : int; strategy : strategy }

let max_shards = 512

let make ?(strategy = Stride) ~k ~n () =
  if n < 1 || n > max_shards then
    invalid_arg
      (Printf.sprintf "Shard.make: N must be in 1..%d (got %d)" max_shards n);
  if k < 1 || k > n then
    invalid_arg
      (Printf.sprintf "Shard.make: k must be in 1..%d (got %d)" n k);
  { k; n; strategy }

let strategy_name = function Stride -> "stride" | Contiguous -> "contiguous"

let to_string t =
  match t.strategy with
  | Stride -> Printf.sprintf "%d/%d" t.k t.n
  | Contiguous -> Printf.sprintf "%d/%d:contiguous" t.k t.n

let parse s =
  let fail () =
    Error
      (Printf.sprintf
         "invalid shard spec %S: expected k/N with 1 <= k <= N <= %d, \
          optionally suffixed :stride or :contiguous"
         s max_shards)
  in
  let spec, strategy =
    match String.index_opt s ':' with
    | None -> (Some s, Some Stride)
    | Some i -> (
      let head = String.sub s 0 i in
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      match String.lowercase_ascii tail with
      | "stride" -> (Some head, Some Stride)
      | "contiguous" | "contig" -> (Some head, Some Contiguous)
      | _ -> (None, None))
  in
  match (spec, strategy) with
  | Some spec, Some strategy -> (
    match String.split_on_char '/' spec with
    | [ ks; ns ] -> (
      match (int_of_string_opt (String.trim ks), int_of_string_opt (String.trim ns)) with
      | Some k, Some n when n >= 1 && n <= max_shards && k >= 1 && k <= n ->
        Ok { k; n; strategy }
      | _ -> fail ())
    | _ -> fail ())
  | _ -> fail ()

(* Contiguous chunk bounds: the first [total mod n] chunks get one extra
   index, so sizes differ by at most one. *)
let chunk_start t ~total =
  let base = total / t.n and rem = total mod t.n in
  ((t.k - 1) * base) + Int.min (t.k - 1) rem

let chunk_stop t ~total =
  let base = total / t.n and rem = total mod t.n in
  (t.k * base) + Int.min t.k rem

let count t ~total =
  if total <= 0 then 0
  else
    match t.strategy with
    | Stride ->
      if total > t.k - 1 then ((total - t.k) / t.n) + 1 else 0
    | Contiguous -> chunk_stop t ~total - chunk_start t ~total

let owns t ~total index =
  index >= 0 && index < total
  &&
  match t.strategy with
  | Stride -> index mod t.n = t.k - 1
  | Contiguous ->
    index >= chunk_start t ~total && index < chunk_stop t ~total

let rank t ~total index =
  if not (owns t ~total index) then
    invalid_arg
      (Printf.sprintf "Shard.rank: shard %s does not own index %d (total %d)"
         (to_string t) index total)
  else
    match t.strategy with
    | Stride -> index / t.n
    | Contiguous -> index - chunk_start t ~total

let indices t ~total =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if owns t ~total i then i :: acc else acc)
  in
  go (total - 1) []

(* ------------------------------------------------------------------ *)
(* The ambient shard                                                    *)

(* Installed by the CLI (and worker processes) before running a
   campaign driver, like Exec.set_supervision: Exec.run consults it to
   decide which jobs to record (and, for drivers that opt in, which to
   skip), and Runlog.memo consults it so adaptive sequential streams
   are journalled by shard 1 only. *)

let ambient_shard : t option Atomic.t = Atomic.make None

let set_ambient s = Atomic.set ambient_shard s
let ambient () = Atomic.get ambient_shard
