type access = Ld | St

type t = access list

let length = List.length

(* Group maximal runs: ld ld ld st ld -> [(Ld,3); (St,1); (Ld,1)] *)
let runs seq =
  let rec go acc = function
    | [] -> List.rev acc
    | a :: rest -> (
      match acc with
      | (a', n) :: tl when a' = a -> go ((a', n + 1) :: tl) rest
      | _ -> go ((a, 1) :: acc) rest)
  in
  go [] seq

let access_name = function Ld -> "ld" | St -> "st"

let to_string seq =
  runs seq
  |> List.map (fun (a, n) ->
         if n = 1 then access_name a else Printf.sprintf "%s%d" (access_name a) n)
  |> String.concat " "

let of_string s =
  let parse_tok tok =
    let prefix p = String.length tok >= 2 && String.sub tok 0 2 = p in
    let count () =
      if String.length tok = 2 then Some 1
      else int_of_string_opt (String.sub tok 2 (String.length tok - 2))
    in
    if prefix "ld" then Option.map (fun n -> (Ld, n)) (count ())
    else if prefix "st" then Option.map (fun n -> (St, n)) (count ())
    else None
  in
  let toks =
    String.split_on_char ' ' s |> List.filter (fun t -> t <> "")
  in
  if toks = [] then None
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | tok :: rest -> (
        match parse_tok tok with
        | Some (a, n) when n >= 1 -> go (List.rev_append (List.init n (fun _ -> a)) acc) rest
        | Some _ | None -> None)
    in
    go [] toks

let all ~max_len =
  let rec extend len =
    if len = 0 then [ [] ]
    else
      let shorter = extend (len - 1) in
      List.concat_map (fun s -> [ Ld :: s; St :: s ]) shorter
  in
  let of_len len = List.map List.rev (extend len) |> List.sort compare in
  List.concat_map of_len (List.init max_len (fun i -> i + 1))

let rotations seq =
  let n = List.length seq in
  let a = Array.of_list seq in
  List.init n (fun k -> List.init n (fun i -> a.((i + k) mod n)))

let rotation_class seq =
  match List.sort compare (rotations seq) with
  | least :: _ -> least
  | [] -> invalid_arg "Access_seq.rotation_class: empty sequence"

let compare a b =
  match Int.compare (length a) (length b) with
  | 0 -> Stdlib.compare a b
  | c -> c
