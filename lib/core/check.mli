(** Campaign-facing front end of the bounded model checker
    ({!Gpusim.Mcheck}).

    The stress campaigns ({!Campaign}) sample weak behaviours; this
    module {e decides} them: it builds checker programs for the litmus
    idioms (optionally fully fenced), shards the exploration across
    {!Exec} jobs, validates every witness by bit-identical replay
    through [Sim.run_schedule], renders verdicts as stable ascii/json
    reports, and cross-validates the checker against campaign
    observations — every outcome a campaign observes must be reachable
    for the checker, and every observed weak outcome must have a
    witness schedule.

    Every [check_program] (and everything built on it) bumps the
    [mcheck.*] telemetry counters: [checks], [explored],
    [sleep_pruned], [bound_pruned], [completed], [weak_witnesses]. *)

type case = { instance : Litmus.Test.instance; fenced : bool }

val case_name : case -> string
(** E.g. ["MP d31 unfenced"]. *)

val litmus_program : Litmus.Test.instance -> fenced:bool -> Gpusim.Mcheck.program
(** The checker program of a litmus instance: the straight-line
    per-thread kernels of {!Litmus.Test.threads} at [x = 0], watching
    the two out-array words.  With [~fenced:true] a [Device] fence is
    inserted after every global access site — the configuration the
    checker must prove SC-only. *)

val outcome : Gpusim.Sc_ref.state -> int * int
(** Project a litmus-program final state to its [(r1, r2)] outcome.
    @raise Invalid_argument if the state does not watch two words. *)

val check_program :
  chip:Gpusim.Chip.t ->
  max_reorderings:int ->
  ?jobs:int ->
  ?dpor:bool ->
  ?words:int ->
  ?fuel:int ->
  Gpusim.Mcheck.program ->
  Gpusim.Mcheck.result
(** {!Gpusim.Mcheck.check} with root-level sharding: with [jobs > 1]
    each root-level transition becomes one {!Exec} job
    ([Mcheck.check ~roots:[i]]) and the per-root results are merged in
    root order — bit-identical to the serial result for every job
    count, by the same argument as {!Exec}'s backend guarantee plus the
    checker's root-sharding contract. *)

val replay_witnesses :
  chip:Gpusim.Chip.t ->
  ?words:int ->
  Gpusim.Mcheck.program ->
  Gpusim.Mcheck.witness list ->
  string list
(** Replay each witness schedule through [Sim.run_schedule] on a fresh
    device and compare final state and reorder count.  Returns a
    description per mismatch; [[]] means every witness is confirmed. *)

type case_result = {
  case : case;
  proved : bool;  (** no weak behaviour up to the bound *)
  sc : (int * int) list;  (** SC-reachable outcomes (the oracle) *)
  weak : ((int * int) * Gpusim.Mcheck.witness) list;
      (** non-SC outcomes with witness schedules *)
  replay_failures : string list;  (** [[]]: all reachable states replayed *)
  stats : Gpusim.Mcheck.stats;
}

type run = {
  chip : Gpusim.Chip.t;
  max_reorderings : int;
  cases : case_result list;
}

val check_case :
  chip:Gpusim.Chip.t ->
  max_reorderings:int ->
  ?jobs:int ->
  case ->
  case_result
(** Check one litmus case and replay-validate every reachable state's
    witness (SC and weak alike). *)

val default_distances : Gpusim.Chip.t -> int list
(** [[0; patch_size - 1]]: the largest same-partition distance (weak
    behaviour impossible — the checker proves SC even unfenced) and the
    smallest cross-partition one (weak behaviour appears unfenced). *)

val run_litmus :
  chip:Gpusim.Chip.t ->
  max_reorderings:int ->
  ?jobs:int ->
  ?distances:int list ->
  unit ->
  run
(** Check every idiom at every distance (default
    {!default_distances}), fenced and unfenced. *)

val render_ascii : run -> string
val render_json : run -> Json.t
(** Both renderings are functions of the [run] value only — no
    wall-clock, no job count — so they are byte-stable across machines
    and [?jobs] values (golden files and the determinism tests rely on
    this). *)

(** {1 Cross-validation} *)

type cross = {
  observed : (int * int) list;
      (** distinct campaign outcomes ({!Litmus.Runner.observed}) *)
  reachable : (int * int) list;  (** distinct checker outcomes *)
  unexplained : (int * int) list;
      (** observed but not reachable — must be [[]]; anything here is a
          checker unsoundness or a semantics divergence *)
  weak_observed : (int * int) list;
  unwitnessed : (int * int) list;
      (** weak observed without a witness schedule — must be [[]] *)
}

val cross_validate :
  chip:Gpusim.Chip.t ->
  seed:int ->
  runs:int ->
  ?env:Gpusim.Sim.environment ->
  ?jobs:int ->
  max_reorderings:int ->
  Litmus.Test.instance ->
  cross
(** Run the (unfenced) checker and a [runs]-execution campaign on the
    same instance — typically under a stressing environment so the
    campaign actually exhibits weak outcomes — and compare. *)
