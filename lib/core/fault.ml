type kind = Raise | Hang | Corrupt | Ledger_fail

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected msg -> Some ("injected fault: " ^ msg)
    | _ -> None)

type plan = {
  seed : int;
  rate : float;
  kinds : kind list;
  faulty_attempts : int;
  soft_error_rate : float;
}

let plan ?(rate = 0.2) ?(kinds = [ Raise ]) ?(faulty_attempts = 1)
    ?(soft_error_rate = 0.0) ~seed () =
  if kinds = [] then invalid_arg "Fault.plan: empty kinds";
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault.plan: rate not in [0,1]";
  if soft_error_rate < 0.0 || soft_error_rate > 1.0 then
    invalid_arg "Fault.plan: soft_error_rate not in [0,1]";
  if faulty_attempts < 0 then invalid_arg "Fault.plan: negative faulty_attempts";
  { seed; rate; kinds; faulty_attempts; soft_error_rate }

let at p ~index ~attempt =
  if attempt >= p.faulty_attempts || p.rate <= 0.0 then None
  else begin
    (* One rng per (job, attempt), derived purely from the fault seed:
       the draw is independent of execution order and backend. *)
    let rng =
      Gpusim.Rng.create
        (Gpusim.Rng.subseed (Gpusim.Rng.subseed p.seed index) attempt)
    in
    if Gpusim.Rng.chance rng p.rate then
      Some (List.nth p.kinds (Gpusim.Rng.int rng (List.length p.kinds)))
    else None
  end

type prediction = {
  attempts : int;
  outcome : [ `Clean | `Corrupted | `Quarantined ];
}

let predict p ~retries ~index =
  let rec go attempt =
    if attempt > retries then
      { attempts = retries + 1; outcome = `Quarantined }
    else
      match at p ~index ~attempt with
      | None -> { attempts = attempt + 1; outcome = `Clean }
      | Some Corrupt -> { attempts = attempt + 1; outcome = `Corrupted }
      | Some (Raise | Hang | Ledger_fail) -> go (attempt + 1)
  in
  go 0

let kind_name = function
  | Raise -> "raise"
  | Hang -> "hang"
  | Corrupt -> "corrupt"
  | Ledger_fail -> "ledger"

let kind_of_name = function
  | "raise" -> Some Raise
  | "hang" -> Some Hang
  | "corrupt" -> Some Corrupt
  | "ledger" -> Some Ledger_fail
  | _ -> None

let parse_kinds s =
  let names =
    List.filter
      (fun x -> x <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  if names = [] then Error "no fault kinds given"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match kind_of_name n with
        | Some k -> go (k :: acc) rest
        | None ->
          Error
            (Printf.sprintf
               "unknown fault kind %S (expected raise, hang, corrupt or \
                ledger)"
               n))
    in
    go [] names

let pp ppf p =
  Fmt.pf ppf "seed %d, rate %.2f, kinds [%s], faulty attempts %d%s" p.seed
    p.rate
    (String.concat "," (List.map kind_name p.kinds))
    p.faulty_attempts
    (if p.soft_error_rate > 0.0 then
       Fmt.str ", soft errors %.3g" p.soft_error_rate
     else "")
