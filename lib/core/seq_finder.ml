type scored = {
  sequence : Access_seq.t;
  scores : (Litmus.Test.idiom * int) list;
  total : int;
}

type result = {
  table : scored list;
  winner : Access_seq.t;
  patch : int;
}

let region_starts ~patch ~max_location =
  let rec go l acc = if l >= max_location then List.rev acc else go (l + patch) (l :: acc) in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Ledger codecs                                                        *)

let sequence_of_json j =
  match Option.bind (Json.to_str j) Access_seq.of_string with
  | Some s -> Ok s
  | None -> Error "expected an access sequence string"

let result_to_json r =
  Json.Assoc
    [ ("patch", Json.Int r.patch);
      ("winner", Json.String (Access_seq.to_string r.winner));
      ( "table",
        Json.List
          (List.map
             (fun s ->
               Json.Assoc
                 [ ("seq", Json.String (Access_seq.to_string s.sequence));
                   ("total", Json.Int s.total);
                   ("scores", Patch_finder.scores_to_json s.scores) ])
             r.table) ) ]

let result_of_json j =
  let open Runlog.Dec in
  let* patch = int "patch" j in
  let* wj = field "winner" j in
  let* winner = sequence_of_json wj in
  let* tj = list "table" j in
  let* table =
    all
      (fun e ->
        let* sj = field "seq" e in
        let* sequence = sequence_of_json sj in
        let* total = int "total" e in
        let* scj = field "scores" e in
        let* scores = Patch_finder.scores_of_json scj in
        Ok { sequence; scores; total })
      tj
  in
  Ok { table; winner; patch }

let run ?backend ?journal ~chip ~seed ~budget ~patch () =
  let b = budget in
  let locations = region_starts ~patch ~max_location:b.Budget.max_location in
  let sequences = Access_seq.all ~max_len:b.Budget.seq_max_len in
  (* Plan: one job per (sequence, idiom, distance, location) point, in
     the historical nesting order so job seeds match the former loop. *)
  let points =
    List.concat_map
      (fun sequence ->
        List.concat_map
          (fun idiom ->
            List.concat_map
              (fun distance ->
                List.map
                  (fun location -> (sequence, idiom, distance, location))
                  locations)
              b.Budget.distances_seq)
          Litmus.Test.idioms)
      sequences
  in
  let weaks =
    Exec.run ?backend
      ~label:(Printf.sprintf "sequence finding on %s" chip.Gpusim.Chip.name)
      ?journal:(Option.map (fun j -> Runlog.extend j "seq") journal)
      ~quarantine:(fun _ _ -> 0)
      ~codec:Runlog.int_codec ~execs_per_job:b.Budget.runs_seq ~seed
      ~f:(fun ~seed (sequence, idiom, distance, location) ->
        let strategy =
          Stress.Fixed
            { sequence; locations = [ location ];
              scratch_words = b.Budget.max_location }
        in
        let env =
          Environment.for_litmus (Environment.make strategy ~randomise:false)
        in
        Litmus.Runner.count_weak ~chip ~seed ~env ~runs:b.Budget.runs_seq
          { Litmus.Test.idiom; distance })
      points
  in
  (* Reduce: fold the flat weak counts back into per-sequence scores by
     walking the same nesting. *)
  let results = Array.of_list weaks in
  let pos = ref 0 in
  let next () =
    let v = results.(!pos) in
    incr pos;
    v
  in
  let table =
    List.map
      (fun sequence ->
        let scores =
          List.map
            (fun idiom ->
              let score = ref 0 in
              List.iter
                (fun _distance ->
                  List.iter (fun _location -> score := !score + next ())
                    locations)
                b.Budget.distances_seq;
              (idiom, !score))
            Litmus.Test.idioms
        in
        let total = List.fold_left (fun acc (_, s) -> acc + s) 0 scores in
        { sequence; scores; total })
      sequences
  in
  let score_array s = Array.of_list (List.map snd s.scores) in
  let winner =
    match
      Pareto.select ~scores:score_array
        ~tie:(fun a b -> Access_seq.compare a.sequence b.sequence)
        table
    with
    | Some s -> s.sequence
    | None -> [ Access_seq.Ld; Access_seq.St ]
  in
  let table =
    List.sort (fun a b -> Int.compare b.total a.total) table
  in
  { table; winner; patch }

let rank_for result idiom =
  let rows =
    List.map
      (fun s ->
        let score = List.assoc idiom s.scores in
        (s.sequence, score))
      result.table
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  List.mapi (fun i (seq, score) -> (i + 1, seq, score)) rows
