type cell = {
  app : string;
  errors : int;
  runs : int;
  example : string;
}

type row = {
  chip : string;
  environment : string;
  cells : cell list;
  capable : int;
  effective : int;
}

let effectiveness_threshold = 0.05

let test_app ~chip ~env ~app ~runs ~seed =
  let master = Gpusim.Rng.create seed in
  let errors = ref 0 in
  let example = ref "" in
  for _ = 1 to runs do
    let sim =
      Gpusim.Sim.create ~chip ~seed:(Gpusim.Rng.bits30 master) ()
    in
    Gpusim.Sim.set_environment sim (Environment.for_app env);
    match app.Apps.App.run sim Apps.App.Original with
    | Ok () -> ()
    | Error msg ->
      incr errors;
      if !example = "" then example := msg
  done;
  { app = app.Apps.App.name; errors = !errors; runs; example = !example }

let summarise ~chip ~env cells =
  let capable = List.length (List.filter (fun c -> c.errors > 0) cells) in
  let effective =
    List.length
      (List.filter
         (fun c ->
           float_of_int c.errors
           > effectiveness_threshold *. float_of_int c.runs)
         cells)
  in
  { chip = chip.Gpusim.Chip.name; environment = env.Environment.label; cells;
    capable; effective }

let run ~chips ~environments_for ~apps ~runs ~seed ?(progress = ignore) () =
  let master = Gpusim.Rng.create seed in
  List.concat_map
    (fun chip ->
      let environments = environments_for chip in
      List.map
        (fun env ->
          progress
            (Printf.sprintf "testing %s under %s" chip.Gpusim.Chip.name
               env.Environment.label);
          let cells =
            List.map
              (fun app ->
                test_app ~chip ~env ~app ~runs
                  ~seed:(Gpusim.Rng.bits30 master))
              apps
          in
          summarise ~chip ~env cells)
        environments)
    chips

let sys_tuned_for chip = Tuning.shipped ~chip
