type cell = {
  app : string;
  errors : int;
  runs : int;
  example : string;
  histogram : (string * int) list;
  quarantined : string option;
}

type row = {
  chip : string;
  environment : string;
  cells : cell list;
  capable : int;
  effective : int;
}

let effectiveness_threshold = 0.05

let runs_counter = Telemetry.counter "campaign.runs"
let errors_counter = Telemetry.counter "campaign.errors"

let test_app ~chip ~env ~app ~runs ~seed =
  let errors = ref 0 in
  let example = ref "" in
  let counts = Hashtbl.create 7 in
  Telemetry.add runs_counter runs;
  for i = 0 to runs - 1 do
    Gpusim.Sim.with_sim ~chip ~seed:(Gpusim.Rng.subseed seed i) (fun sim ->
        Gpusim.Sim.set_environment sim (Environment.for_app env);
        match app.Apps.App.run sim Apps.App.Original with
        | Ok () -> ()
        | Error msg ->
          (* An erroneous run that saw injected bit-flips is tagged so the
             histogram separates soft errors from weak-memory failures:
             [soft-error] when no reordering happened (the flip is the only
             possible cause), [soft-error?] when both occurred. *)
          let msg =
            if Gpusim.Sim.bitflips sim = 0 then msg
            else if Gpusim.Sim.reorders sim = 0 then msg ^ " [soft-error]"
            else msg ^ " [soft-error?]"
          in
          incr errors;
          Telemetry.incr errors_counter;
          if !example = "" then example := msg;
          Hashtbl.replace counts msg
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts msg)))
  done;
  let histogram =
    Hashtbl.fold (fun msg n acc -> (msg, n) :: acc) counts []
    |> List.sort (fun (m1, n1) (m2, n2) ->
           match Int.compare n2 n1 with
           | 0 -> String.compare m1 m2
           | c -> c)
  in
  { app = app.Apps.App.name; errors = !errors; runs; example = !example;
    histogram; quarantined = None }

let dominant cell =
  match cell.histogram with [] -> None | top :: _ -> Some top

let merge_histograms hs =
  let counts = Hashtbl.create 7 in
  List.iter
    (List.iter (fun (msg, n) ->
         Hashtbl.replace counts msg
           (n + Option.value ~default:0 (Hashtbl.find_opt counts msg))))
    hs;
  Hashtbl.fold (fun msg n acc -> (msg, n) :: acc) counts []
  |> List.sort (fun (m1, n1) (m2, n2) ->
         match Int.compare n2 n1 with 0 -> String.compare m1 m2 | c -> c)

let summarise_names ~chip ~env cells =
  let capable = List.length (List.filter (fun c -> c.errors > 0) cells) in
  let effective =
    List.length
      (List.filter
         (fun c ->
           float_of_int c.errors
           > effectiveness_threshold *. float_of_int c.runs)
         cells)
  in
  { chip; environment = env; cells; capable; effective }

let summarise ~chip ~env cells =
  summarise_names ~chip:chip.Gpusim.Chip.name ~env:env.Environment.label cells

(* Rebuild the reduced row list from a flat plan-order cell list — what
   `gpuwmm merge` uses to reconstruct a merged ledger's result record
   without re-running anything.  Row nesting matches [run]'s plan:
   chips x envs, [apps_per_row] cells each. *)
let rows_of_cells ~chips ~envs ~apps_per_row cells =
  let expect = List.length chips * List.length envs * apps_per_row in
  if apps_per_row <= 0 then Error "rows_of_cells: no applications in grid"
  else if List.length cells <> expect then
    Error
      (Printf.sprintf "rows_of_cells: %d cell(s) for a %d-cell grid"
         (List.length cells) expect)
  else
    let rec take n acc cells =
      if n = 0 then (List.rev acc, cells)
      else
        match cells with
        | [] -> assert false (* length checked above *)
        | c :: cells -> take (n - 1) (c :: acc) cells
    in
    let rows, rest =
      List.fold_left
        (fun (acc, cells) chip ->
          List.fold_left
            (fun (acc, cells) env ->
              let row_cells, cells = take apps_per_row [] cells in
              (summarise_names ~chip ~env row_cells :: acc, cells))
            (acc, cells) envs)
        ([], cells) chips
    in
    assert (rest = []);
    Ok (List.rev rows)

(* ------------------------------------------------------------------ *)
(* Ledger codecs                                                        *)

let histogram_to_json h =
  Json.List
    (List.map
       (fun (msg, n) ->
         Json.Assoc [ ("msg", Json.String msg); ("n", Json.Int n) ])
       h)

let histogram_of_json j =
  let open Runlog.Dec in
  match Json.to_list j with
  | None -> Error "histogram: expected a list"
  | Some entries ->
    all
      (fun e ->
        let* msg = str "msg" e in
        let* n = int "n" e in
        Ok (msg, n))
      entries

let cell_to_json c =
  Json.Assoc
    ([ ("app", Json.String c.app);
       ("errors", Json.Int c.errors);
       ("runs", Json.Int c.runs);
       ("example", Json.String c.example);
       ("histogram", histogram_to_json c.histogram) ]
    (* Conditional so fault-free ledgers stay byte-identical with older
       ones (the golden CI ledger cmp-checks this). *)
    @
    match c.quarantined with
    | None -> []
    | Some reason -> [ ("quarantined", Json.String reason) ])

let cell_of_json j =
  let open Runlog.Dec in
  let* app = str "app" j in
  let* errors = int "errors" j in
  let* runs = int "runs" j in
  let* example = str "example" j in
  let* hj = field "histogram" j in
  let* histogram = histogram_of_json hj in
  let* quarantined = opt_str "quarantined" j in
  Ok { app; errors; runs; example; histogram; quarantined }

let cell_codec =
  { Runlog.encode = cell_to_json; decode = cell_of_json;
    errors_of = (fun c -> c.errors) }

let row_to_json r =
  Json.Assoc
    [ ("chip", Json.String r.chip);
      ("environment", Json.String r.environment);
      ("cells", Json.List (List.map cell_to_json r.cells));
      ("capable", Json.Int r.capable);
      ("effective", Json.Int r.effective) ]

let row_of_json j =
  let open Runlog.Dec in
  let* chip = str "chip" j in
  let* environment = str "environment" j in
  let* cj = list "cells" j in
  let* cells = all cell_of_json cj in
  let* capable = int "capable" j in
  let* effective = int "effective" j in
  Ok { chip; environment; cells; capable; effective }

let rows_to_json rows = Json.List (List.map row_to_json rows)

let rows_of_json j =
  let open Runlog.Dec in
  match Json.to_list j with
  | None -> Error "campaign rows: expected a list"
  | Some rows -> all row_of_json rows

let run ?backend ?journal ~chips ~environments_for ~apps ~runs ~seed () =
  (* Plan: one job per (chip, environment, application) cell, flattened in
     the historical nesting order so pre-derived job seeds match what the
     former sequential loop drew from its master generator. *)
  let plan_rows =
    List.concat_map
      (fun chip ->
        List.map (fun env -> (chip, env)) (environments_for chip))
      chips
  in
  let grid =
    List.concat_map
      (fun (chip, env) -> List.map (fun app -> (chip, env, app)) apps)
      plan_rows
  in
  let cells =
    Exec.run ?backend ~label:"campaign" ~execs_per_job:runs
      ?journal:(Option.map (fun j -> Runlog.extend j "campaign") journal)
      ~codec:cell_codec ~seed
      ~quarantine:(fun (_, _, app) (fl : Exec.failure) ->
        { app = app.Apps.App.name; errors = 0; runs = 0; example = "";
          histogram = []; quarantined = Some fl.Exec.f_reason })
        (* Cells are independent, so a k/N shard can skip the cells it
           does not own outright; the placeholder rows a shard's reduce
           produces are discarded (a shard ledger records no result). *)
      ~shard_placeholder:(fun (_, _, app) ->
        { app = app.Apps.App.name; errors = 0; runs = 0; example = "";
          histogram = []; quarantined = None })
      ~f:(fun ~seed (chip, env, app) -> test_app ~chip ~env ~app ~runs ~seed)
      grid
  in
  (* Reduce: regroup the flat cell list row by row, in plan order. *)
  let per_row = List.length apps in
  let rec rows acc plan cells =
    match plan with
    | [] -> List.rev acc
    | (chip, env) :: plan ->
      let rec take n acc cells =
        if n = 0 then (List.rev acc, cells)
        else
          match cells with
          | [] -> invalid_arg "Campaign.run: short cell list"
          | c :: cells -> take (n - 1) (c :: acc) cells
      in
      let row_cells, cells = take per_row [] cells in
      rows (summarise ~chip ~env row_cells :: acc) plan cells
  in
  rows [] plan_rows cells

let sys_tuned_for chip = Tuning.shipped ~chip
