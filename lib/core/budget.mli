(** Experiment budgets: how many executions each campaign point gets and
    how finely parameter spaces are sampled.

    The paper's campaigns total roughly half a billion executions per GPU;
    {!paper} reproduces those parameters exactly, while {!default} scales
    the grids down so the whole tuning pipeline runs in seconds per chip.
    Scaling only widens confidence intervals; the procedures are
    identical. *)

type t = {
  runs_patch : int;  (** C for patch finding *)
  runs_seq : int;  (** C for sequence finding *)
  runs_spread : int;  (** C for spread finding *)
  max_location : int;  (** L: scratchpad locations considered *)
  location_stride : int;  (** sampling stride over [0, L) *)
  distances_patch : int list;  (** sampled d values for patch finding *)
  distances_seq : int list;
  distances_spread : int list;
  seq_max_len : int;  (** N: maximum access-sequence length *)
  max_spread : int;  (** M: maximum spread / scratchpad regions *)
  spread_step : int;  (** sampling stride over spreads 1..M *)
  noise_threshold : int;  (** ε for ε-patches, scaled with runs_patch *)
}

val default : t
val paper : t
val quick : t
(** Tiny budget for unit tests. *)

val scale_runs : t -> float -> t
(** Multiply all per-point execution counts (and the noise threshold)
    by a factor, for CLI [--runs-scale]. *)

val to_json : t -> Json.t
(** Every field, for run-ledger headers: a resumed campaign refuses a
    ledger whose recorded budget differs from the invocation's. *)
