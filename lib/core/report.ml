let hr ppf width = Fmt.pf ppf "%s@." (String.make width '-')

let table1 ppf =
  Fmt.pf ppf "Table 1: the seven Nvidia GPUs that we study (simulated)@.";
  hr ppf 56;
  Fmt.pf ppf "%-14s %-12s %-10s %s@." "chip" "architecture" "short name"
    "released";
  hr ppf 56;
  List.iter
    (fun c ->
      Fmt.pf ppf "%-14s %-12s %-10s %d@." c.Gpusim.Chip.full_name
        (Gpusim.Chip.architecture_name c.Gpusim.Chip.architecture)
        c.Gpusim.Chip.name c.Gpusim.Chip.released)
    Gpusim.Chip.all

let table2 ppf results =
  Fmt.pf ppf
    "Table 2: stressing parameters and time spent tuning (simulated)@.";
  hr ppf 64;
  Fmt.pf ppf "%-8s %-14s %-14s %-7s %s@." "chip" "c. patch size" "sequence"
    "spread" "time (mins)";
  hr ppf 64;
  List.iter
    (fun ((r : Tuning.result), mins) ->
      Fmt.pf ppf "%-8s %-14d %-14s %-7d %.1f@." r.Tuning.chip
        r.patch.Patch_finder.chosen
        (Access_seq.to_string r.sequences.Seq_finder.winner)
        r.spreads.Spread_finder.winner mins)
    results

let table3 ppf (r : Seq_finder.result) =
  Fmt.pf ppf "Table 3: top and bottom access sequences per litmus test@.";
  hr ppf 66;
  List.iter
    (fun idiom ->
      let rows = Seq_finder.rank_for r idiom in
      let n = List.length rows in
      Fmt.pf ppf "%s:@." (Litmus.Test.idiom_name idiom);
      List.iter
        (fun (rank, seq, score) ->
          if rank <= 3 || rank > n - 3 then
            Fmt.pf ppf "  %3d  %-14s %d@." rank (Access_seq.to_string seq)
              score;
          if rank = 4 && n > 6 then Fmt.pf ppf "  ...@.")
        rows)
    Litmus.Test.idioms;
  Fmt.pf ppf "winner (Pareto + tie-break): %s@."
    (Access_seq.to_string r.winner)

let table4 ppf =
  Fmt.pf ppf "Table 4: the ten case studies we consider@.";
  hr ppf 78;
  List.iter
    (fun app ->
      Fmt.pf ppf "%-12s %s@." app.Apps.App.name app.Apps.App.source;
      Fmt.pf ppf "%-12s   communication:  %s@." "" app.Apps.App.communication;
      Fmt.pf ppf "%-12s   post-condition: %s@." "" app.Apps.App.post_condition;
      if app.Apps.App.has_fences then
        Fmt.pf ppf "%-12s   (contains fence instructions)@." "")
    Apps.Registry.all

(* Shared Table 5 layout: paper column order for environments, Table 1
   order for chips — used identically by the ASCII, markdown and CSV
   renderers so the ledger path cannot drift from the live one. *)
let table5_layout rows =
  let envs =
    List.sort_uniq compare (List.map (fun r -> r.Campaign.environment) rows)
  in
  (* Preserve the paper's column order. *)
  let order =
    [ "no-str-"; "no-str+"; "sys-str-"; "sys-str+"; "rand-str-"; "rand-str+";
      "cache-str-"; "cache-str+" ]
  in
  let envs =
    List.filter (fun e -> List.mem e envs) order
    @ List.filter (fun e -> not (List.mem e order)) envs
  in
  let chips =
    List.sort_uniq compare (List.map (fun r -> r.Campaign.chip) rows)
  in
  let chips =
    (* Table 1 order. *)
    List.filter
      (fun c -> List.mem c chips)
      (List.map (fun c -> c.Gpusim.Chip.name) Gpusim.Chip.all)
    @ List.filter
        (fun c ->
          not
            (List.mem c (List.map (fun c -> c.Gpusim.Chip.name) Gpusim.Chip.all)))
        chips
  in
  (chips, envs)

let table5_find rows chip env =
  List.find_opt
    (fun r -> r.Campaign.chip = chip && r.Campaign.environment = env)
    rows

(* Degraded campaigns: cells whose job was quarantined under
   [--keep-going] carry no measurements.  Shared by the ASCII, markdown
   and CSV renderers: the a/b entry gains a [!n] marker (n quarantined
   cells) and the listing below names each cell and its failure. *)
let quarantined_in (r : Campaign.row) =
  List.filter (fun c -> c.Campaign.quarantined <> None) r.Campaign.cells

let table5_entry (r : Campaign.row) =
  let base =
    Printf.sprintf "%d / %d" r.Campaign.effective r.Campaign.capable
  in
  match List.length (quarantined_in r) with
  | 0 -> base
  | n -> Printf.sprintf "%s !%d" base n

let quarantined_cells rows =
  List.concat_map
    (fun (r : Campaign.row) ->
      List.filter_map
        (fun (c : Campaign.cell) ->
          Option.map
            (fun reason ->
              ( Printf.sprintf "%s/%s/%s" r.Campaign.chip
                  r.Campaign.environment c.Campaign.app,
                reason ))
            c.Campaign.quarantined)
        r.Campaign.cells)
    rows

let table5 ppf rows =
  Fmt.pf ppf
    "Table 5: effectiveness of the testing environments (a / b, where b = \
     apps with errors,@.         a = apps with error rate over 5%%)@.";
  let chips, envs = table5_layout rows in
  hr ppf (8 + (11 * List.length envs));
  Fmt.pf ppf "%-8s" "chip";
  List.iter (fun e -> Fmt.pf ppf "%-11s" e) envs;
  Fmt.pf ppf "@.";
  hr ppf (8 + (11 * List.length envs));
  List.iter
    (fun chip ->
      Fmt.pf ppf "%-8s" chip;
      List.iter
        (fun env ->
          match table5_find rows chip env with
          | Some r -> Fmt.pf ppf "%-11s" (table5_entry r)
          | None -> Fmt.pf ppf "%-11s" "-")
        envs;
      Fmt.pf ppf "@.")
    chips;
  (* Dominant failure modes, aggregated over every cell of a chip's rows:
     the per-cell error histograms make the "what actually broke" question
     answerable from the same campaign data. *)
  let dominant_for chip =
    List.filter (fun r -> r.Campaign.chip = chip) rows
    |> List.concat_map (fun r ->
           List.map (fun c -> c.Campaign.histogram) r.Campaign.cells)
    |> Campaign.merge_histograms
  in
  let any_errors =
    List.exists (fun chip -> dominant_for chip <> []) chips
  in
  if any_errors then begin
    Fmt.pf ppf "dominant failure modes (errors summed over all cells):@.";
    List.iter
      (fun chip ->
        match dominant_for chip with
        | [] -> ()
        | (msg, n) :: _ -> Fmt.pf ppf "  %-8s %s (x%d)@." chip msg n)
      chips
  end;
  match quarantined_cells rows with
  | [] -> ()
  | qs ->
    Fmt.pf ppf
      "degraded: %d cell(s) quarantined after exhausting supervised \
       attempts (marked !n above):@."
      (List.length qs);
    List.iter (fun (where, reason) -> Fmt.pf ppf "  %s: %s@." where reason) qs

let table6 ppf (results : Harden.result list) =
  Fmt.pf ppf "Table 6: empirical fence insertion results@.";
  hr ppf 76;
  Fmt.pf ppf "%-12s %-6s %-14s %-9s %-10s %s@." "app" "init."
    "red. (ref chip)" "agreeing" "converged" "time (mins)";
  hr ppf 76;
  let apps = List.sort_uniq compare (List.map (fun r -> r.Harden.app) results) in
  List.iter
    (fun app ->
      let rs = List.filter (fun r -> r.Harden.app = app) results in
      match rs with
      | [] -> ()
      | reference :: others ->
        let agreeing =
          List.length
            (List.filter
               (fun r ->
                 List.sort compare r.Harden.fences
                 = List.sort compare reference.Harden.fences)
               others)
        in
        let mins =
          List.map (fun r -> r.Harden.elapsed_s /. 60.0) rs
          |> List.fold_left ( +. ) 0.0
        in
        Fmt.pf ppf "%-12s %-6d %-14d %-9d %-10b %.2f@." app
          reference.Harden.initial
          (List.length reference.Harden.fences)
          agreeing
          (List.for_all (fun r -> r.Harden.converged) rs)
          mins;
        Fmt.pf ppf "%-12s   fences: %s@." ""
          (String.concat ", "
             (List.map
                (fun (k, s) -> Printf.sprintf "%s:s%d" k s)
                reference.Harden.fences)))
    apps

let bar width maxv v =
  if maxv <= 0 then ""
  else String.make (Int.max 0 (v * width / maxv)) '#'

let figure3 ppf ~chip (r : Patch_finder.result) =
  Fmt.pf ppf "Figure 3: patch finding on %s (weak behaviours per stressed \
              location, %d runs per point)@." chip r.Patch_finder.runs;
  let maxv =
    List.fold_left (fun m c -> Int.max m c.Patch_finder.weak) 1
      r.Patch_finder.cells
  in
  let distances =
    List.sort_uniq compare
      (List.map (fun c -> c.Patch_finder.distance) r.Patch_finder.cells)
  in
  let show = match distances with a :: b :: c :: _ -> [ a; b; c ] | l -> l in
  List.iter
    (fun idiom ->
      List.iter
        (fun d ->
          Fmt.pf ppf "%s d=%d:@." (Litmus.Test.idiom_name idiom) d;
          List.iter
            (fun c ->
              if c.Patch_finder.idiom = idiom && c.Patch_finder.distance = d
              then
                Fmt.pf ppf "  %4d |%-24s %d@." c.Patch_finder.location
                  (bar 24 maxv c.Patch_finder.weak)
                  c.Patch_finder.weak)
            r.Patch_finder.cells)
        show)
    [ Litmus.Test.MP; Litmus.Test.LB ];
  Fmt.pf ppf "critical patch size: %d@." r.Patch_finder.chosen

let figure4 ppf ~chip (r : Spread_finder.result) =
  Fmt.pf ppf "Figure 4: spread finding on %s (sequence %s)@." chip
    (Access_seq.to_string r.Spread_finder.sequence);
  let maxv =
    List.fold_left
      (fun m p ->
        List.fold_left (fun m (_, v) -> Int.max m v) m p.Spread_finder.scores)
      1 r.Spread_finder.points
  in
  List.iter
    (fun idiom ->
      Fmt.pf ppf "%s:@." (Litmus.Test.idiom_name idiom);
      List.iter
        (fun p ->
          let v = List.assoc idiom p.Spread_finder.scores in
          Fmt.pf ppf "  m=%2d |%-30s %d@." p.Spread_finder.spread
            (bar 30 maxv v) v)
        r.Spread_finder.points)
    Litmus.Test.idioms;
  Fmt.pf ppf "most effective spread: %d@." r.Spread_finder.winner

let figure5 ppf points =
  Fmt.pf ppf
    "Figure 5: cost of fences (modelled cycles / energy units; native \
     execution)@.";
  hr ppf 86;
  Fmt.pf ppf "%-8s %-12s %10s %10s %8s %10s %8s %6s@." "chip" "app" "no-f rt"
    "emp rt" "emp %" "cons rt" "cons %" "#emp";
  hr ppf 86;
  List.iter
    (fun (p : Cost.point) ->
      Fmt.pf ppf "%-8s %-12s %10.0f %10.0f %7.1f%% %10.0f %7.1f%% %6d@."
        p.Cost.chip p.Cost.app p.Cost.no_fences.Cost.runtime
        p.Cost.emp.Cost.runtime
        (Cost.overhead_pct ~base:p.Cost.no_fences.Cost.runtime
           p.Cost.emp.Cost.runtime)
        p.Cost.cons.Cost.runtime
        (Cost.overhead_pct ~base:p.Cost.no_fences.Cost.runtime
           p.Cost.cons.Cost.runtime)
        p.Cost.emp_count)
    points;
  let s = Cost.summarise points in
  Fmt.pf ppf
    "medians: emp fences +%.1f%% runtime, +%.1f%% energy; cons fences \
     +%.1f%% runtime, +%.1f%% energy@."
    s.Cost.median_emp_runtime_pct s.Cost.median_emp_energy_pct
    s.Cost.median_cons_runtime_pct s.Cost.median_cons_energy_pct;
  Fmt.pf ppf "maxima:  emp +%.1f%%, cons +%.1f%% runtime@."
    s.Cost.max_emp_runtime_pct s.Cost.max_cons_runtime_pct

let patch_csv (r : Patch_finder.result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "idiom,distance,location,weak\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d\n"
           (Litmus.Test.idiom_name c.Patch_finder.idiom)
           c.Patch_finder.distance c.Patch_finder.location c.Patch_finder.weak))
    r.Patch_finder.cells;
  Buffer.contents buf

let spread_csv (r : Spread_finder.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "spread,idiom,score\n";
  List.iter
    (fun p ->
      List.iter
        (fun (idiom, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%d\n" p.Spread_finder.spread
               (Litmus.Test.idiom_name idiom) v))
        p.Spread_finder.scores)
    r.Spread_finder.points;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ledger-backed rendering                                              *)

let provenance ppf ~path (h : Runlog.header) =
  Fmt.pf ppf "# ledger: %s | schema %d | campaign %s | seed %d | jobs %d@."
    path h.Runlog.schema h.Runlog.campaign h.Runlog.seed h.Runlog.jobs;
  (match h.Runlog.argv with
  | [] -> ()
  | argv -> Fmt.pf ppf "# argv: %s@." (String.concat " " argv));
  let created =
    if h.Runlog.created = 0.0 then "-"
    else
      let tm = Unix.gmtime h.Runlog.created in
      Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
  in
  Fmt.pf ppf "# created: %s | git: %s@." created
    (Option.value h.Runlog.git ~default:"-");
  (match h.Runlog.shard with
  | None -> ()
  | Some s -> Fmt.pf ppf "# shard: %s (partial ledger; combine with gpuwmm merge)@." s);
  match h.Runlog.merged with
  | None -> ()
  | Some srcs ->
    Fmt.pf ppf "# merged %d shards: %s@." (List.length srcs)
      (String.concat " " srcs)

let table5_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "chip,environment,app,errors,runs,rate,dominant\n";
  let chips, envs = table5_layout rows in
  List.iter
    (fun chip ->
      List.iter
        (fun env ->
          match table5_find rows chip env with
          | None -> ()
          | Some r ->
            List.iter
              (fun (c : Campaign.cell) ->
                let rate =
                  if c.Campaign.runs = 0 then 0.0
                  else
                    float_of_int c.Campaign.errors
                    /. float_of_int c.Campaign.runs
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s,%s,%s,%d,%d,%.4f,%s\n" chip env
                     c.Campaign.app c.Campaign.errors c.Campaign.runs rate
                     (match c.Campaign.quarantined with
                     | Some reason ->
                       "QUARANTINED: "
                       ^ String.map
                           (function ',' -> ';' | ch -> ch)
                           reason
                     | None -> (
                       match Campaign.dominant c with
                       | Some (msg, _) ->
                         String.map (function ',' -> ';' | ch -> ch) msg
                       | None -> ""))))
              r.Campaign.cells)
        envs)
    chips;
  Buffer.contents buf

let table5_md rows =
  let buf = Buffer.create 1024 in
  let chips, envs = table5_layout rows in
  Buffer.add_string buf
    "Table 5: effectiveness of the testing environments (a / b; b = apps \
     with errors, a = apps with error rate over 5%)\n\n";
  Buffer.add_string buf
    ("| chip | " ^ String.concat " | " envs ^ " |\n");
  Buffer.add_string buf
    ("|---|" ^ String.concat "" (List.map (fun _ -> "---|") envs) ^ "\n");
  List.iter
    (fun chip ->
      Buffer.add_string buf ("| " ^ chip ^ " |");
      List.iter
        (fun env ->
          match table5_find rows chip env with
          | Some r ->
            Buffer.add_string buf (Printf.sprintf " %s |" (table5_entry r))
          | None -> Buffer.add_string buf " - |")
        envs;
      Buffer.add_string buf "\n")
    chips;
  Buffer.contents buf

let table2_csv results =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "chip,patch,sequence,spread,minutes\n";
  List.iter
    (fun ((r : Tuning.result), mins) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%d,%.2f\n" r.Tuning.chip
           r.Tuning.patch.Patch_finder.chosen
           (Access_seq.to_string r.Tuning.sequences.Seq_finder.winner)
           r.Tuning.spreads.Spread_finder.winner mins))
    results;
  Buffer.contents buf

let table3_csv (r : Seq_finder.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat ","
       ("sequence" :: "total"
       :: List.map Litmus.Test.idiom_name Litmus.Test.idioms)
    ^ "\n");
  List.iter
    (fun (s : Seq_finder.scored) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s\n"
           (Access_seq.to_string s.Seq_finder.sequence)
           s.Seq_finder.total
           (String.concat ","
              (List.map
                 (fun i ->
                   match List.assoc_opt i s.Seq_finder.scores with
                   | Some n -> string_of_int n
                   | None -> "0")
                 Litmus.Test.idioms))))
    r.Seq_finder.table;
  Buffer.contents buf

let table6_csv (results : Harden.result list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "app,chip,initial,fences,fence_sites,converged,rounds,checks\n";
  List.iter
    (fun (r : Harden.result) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%s,%b,%d,%d\n" r.Harden.app
           r.Harden.chip r.Harden.initial
           (List.length r.Harden.fences)
           (String.concat ";"
              (List.map
                 (fun (k, s) -> Printf.sprintf "%s:s%d" k s)
                 r.Harden.fences))
           r.Harden.converged r.Harden.rounds r.Harden.checks))
    results;
  Buffer.contents buf

let patches_csv results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "chip,idiom,distance,location,weak\n";
  List.iter
    (fun (chip, (r : Patch_finder.result)) ->
      List.iter
        (fun (c : Patch_finder.cell) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%d,%d\n" chip
               (Litmus.Test.idiom_name c.Patch_finder.idiom)
               c.Patch_finder.distance c.Patch_finder.location
               c.Patch_finder.weak))
        r.Patch_finder.cells)
    results;
  Buffer.contents buf

let spreads_csv results =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "chip,spread,idiom,score\n";
  List.iter
    (fun (chip, (r : Spread_finder.result)) ->
      List.iter
        (fun (p : Spread_finder.point) ->
          List.iter
            (fun (idiom, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%s,%d,%s,%d\n" chip p.Spread_finder.spread
                   (Litmus.Test.idiom_name idiom) v))
            p.Spread_finder.scores)
        r.Spread_finder.points)
    results;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Campaign comparison                                                  *)

type comparison = {
  regressions : string list;
  improvements : string list;
  notes : string list;
}

let error_rate (c : Campaign.cell) =
  if c.Campaign.runs = 0 then 0.0
  else float_of_int c.Campaign.errors /. float_of_int c.Campaign.runs

(* The tool under comparison is a *testing* environment: its job is to
   expose errors.  A cell whose error-exposure rate drops by more than
   the tolerance is therefore a regression (the candidate lost testing
   power); a rise is an improvement.  Failure modes appearing or
   vanishing from the per-cell histograms are surfaced as notes. *)
let compare_campaigns ~tolerance ~baseline ~candidate =
  let regressions = ref [] in
  let improvements = ref [] in
  let notes = ref [] in
  let reg m = regressions := m :: !regressions in
  let imp m = improvements := m :: !improvements in
  let note m = notes := m :: !notes in
  let find rows chip env =
    List.find_opt
      (fun r -> r.Campaign.chip = chip && r.Campaign.environment = env)
      rows
  in
  List.iter
    (fun (b : Campaign.row) ->
      let where = Printf.sprintf "%s/%s" b.Campaign.chip b.Campaign.environment in
      match find candidate b.Campaign.chip b.Campaign.environment with
      | None -> reg (Printf.sprintf "%s: row missing from candidate" where)
      | Some c ->
        List.iter
          (fun (bc : Campaign.cell) ->
            let cell = Printf.sprintf "%s/%s" where bc.Campaign.app in
            match
              List.find_opt
                (fun cc -> cc.Campaign.app = bc.Campaign.app)
                c.Campaign.cells
            with
            | None -> reg (Printf.sprintf "%s: cell missing from candidate" cell)
            | Some cc when cc.Campaign.quarantined <> None ->
              (* A quarantined candidate cell measured nothing: that is a
                 loss of testing power regardless of rates. *)
              reg
                (Printf.sprintf "%s: cell quarantined in candidate (%s)" cell
                   (Option.value ~default:"" cc.Campaign.quarantined))
            | Some _ when bc.Campaign.quarantined <> None ->
              note
                (Printf.sprintf
                   "%s: recovered (baseline was quarantined: %s)" cell
                   (Option.value ~default:"" bc.Campaign.quarantined))
            | Some cc ->
              let rb = error_rate bc and rc = error_rate cc in
              let delta = rc -. rb in
              if delta < -.tolerance then
                reg
                  (Printf.sprintf
                     "%s: error-exposure rate fell %.2f%% -> %.2f%%" cell
                     (100.0 *. rb) (100.0 *. rc))
              else if delta > tolerance then
                imp
                  (Printf.sprintf
                     "%s: error-exposure rate rose %.2f%% -> %.2f%%" cell
                     (100.0 *. rb) (100.0 *. rc));
              let msgs h = List.map fst h in
              let bm = msgs bc.Campaign.histogram in
              let cm = msgs cc.Campaign.histogram in
              List.iter
                (fun m ->
                  if not (List.mem m cm) then
                    note (Printf.sprintf "%s: failure mode vanished: %s" cell m))
                bm;
              List.iter
                (fun m ->
                  if not (List.mem m bm) then
                    note (Printf.sprintf "%s: new failure mode: %s" cell m))
                cm)
          b.Campaign.cells)
    baseline;
  List.iter
    (fun (c : Campaign.row) ->
      if find baseline c.Campaign.chip c.Campaign.environment = None then
        note
          (Printf.sprintf "%s/%s: row only in candidate" c.Campaign.chip
             c.Campaign.environment))
    candidate;
  { regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    notes = List.rev !notes }

let pp_comparison ppf c =
  let section title = function
    | [] -> ()
    | items ->
      Fmt.pf ppf "%s:@." title;
      List.iter (fun i -> Fmt.pf ppf "  %s@." i) items
  in
  section "regressions" c.regressions;
  section "improvements" c.improvements;
  section "notes" c.notes;
  if c.regressions = [] && c.improvements = [] && c.notes = [] then
    Fmt.pf ppf "no differences@."
  else
    Fmt.pf ppf "%d regression(s), %d improvement(s), %d note(s)@."
      (List.length c.regressions)
      (List.length c.improvements)
      (List.length c.notes)

let cost_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "chip,app,nvml,no_runtime,no_energy,emp_runtime,emp_energy,cons_runtime,cons_energy,emp_fences\n";
  List.iter
    (fun (p : Cost.point) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%b,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%d\n"
           p.Cost.chip p.Cost.app p.Cost.nvml p.Cost.no_fences.Cost.runtime
           p.Cost.no_fences.Cost.energy p.Cost.emp.Cost.runtime
           p.Cost.emp.Cost.energy p.Cost.cons.Cost.runtime
           p.Cost.cons.Cost.energy p.Cost.emp_count))
    points;
  Buffer.contents buf
