let hr ppf width = Fmt.pf ppf "%s@." (String.make width '-')

let table1 ppf =
  Fmt.pf ppf "Table 1: the seven Nvidia GPUs that we study (simulated)@.";
  hr ppf 56;
  Fmt.pf ppf "%-14s %-12s %-10s %s@." "chip" "architecture" "short name"
    "released";
  hr ppf 56;
  List.iter
    (fun c ->
      Fmt.pf ppf "%-14s %-12s %-10s %d@." c.Gpusim.Chip.full_name
        (Gpusim.Chip.architecture_name c.Gpusim.Chip.architecture)
        c.Gpusim.Chip.name c.Gpusim.Chip.released)
    Gpusim.Chip.all

let table2 ppf results =
  Fmt.pf ppf
    "Table 2: stressing parameters and time spent tuning (simulated)@.";
  hr ppf 64;
  Fmt.pf ppf "%-8s %-14s %-14s %-7s %s@." "chip" "c. patch size" "sequence"
    "spread" "time (mins)";
  hr ppf 64;
  List.iter
    (fun ((r : Tuning.result), mins) ->
      Fmt.pf ppf "%-8s %-14d %-14s %-7d %.1f@." r.Tuning.chip
        r.patch.Patch_finder.chosen
        (Access_seq.to_string r.sequences.Seq_finder.winner)
        r.spreads.Spread_finder.winner mins)
    results

let table3 ppf (r : Seq_finder.result) =
  Fmt.pf ppf "Table 3: top and bottom access sequences per litmus test@.";
  hr ppf 66;
  List.iter
    (fun idiom ->
      let rows = Seq_finder.rank_for r idiom in
      let n = List.length rows in
      Fmt.pf ppf "%s:@." (Litmus.Test.idiom_name idiom);
      List.iter
        (fun (rank, seq, score) ->
          if rank <= 3 || rank > n - 3 then
            Fmt.pf ppf "  %3d  %-14s %d@." rank (Access_seq.to_string seq)
              score;
          if rank = 4 && n > 6 then Fmt.pf ppf "  ...@.")
        rows)
    Litmus.Test.idioms;
  Fmt.pf ppf "winner (Pareto + tie-break): %s@."
    (Access_seq.to_string r.winner)

let table4 ppf =
  Fmt.pf ppf "Table 4: the ten case studies we consider@.";
  hr ppf 78;
  List.iter
    (fun app ->
      Fmt.pf ppf "%-12s %s@." app.Apps.App.name app.Apps.App.source;
      Fmt.pf ppf "%-12s   communication:  %s@." "" app.Apps.App.communication;
      Fmt.pf ppf "%-12s   post-condition: %s@." "" app.Apps.App.post_condition;
      if app.Apps.App.has_fences then
        Fmt.pf ppf "%-12s   (contains fence instructions)@." "")
    Apps.Registry.all

let table5 ppf rows =
  Fmt.pf ppf
    "Table 5: effectiveness of the testing environments (a / b, where b = \
     apps with errors,@.         a = apps with error rate over 5%%)@.";
  let envs =
    List.sort_uniq compare (List.map (fun r -> r.Campaign.environment) rows)
  in
  (* Preserve the paper's column order. *)
  let order =
    [ "no-str-"; "no-str+"; "sys-str-"; "sys-str+"; "rand-str-"; "rand-str+";
      "cache-str-"; "cache-str+" ]
  in
  let envs =
    List.filter (fun e -> List.mem e envs) order
    @ List.filter (fun e -> not (List.mem e order)) envs
  in
  let chips =
    List.sort_uniq compare (List.map (fun r -> r.Campaign.chip) rows)
  in
  let chips =
    (* Table 1 order. *)
    List.filter
      (fun c -> List.mem c chips)
      (List.map (fun c -> c.Gpusim.Chip.name) Gpusim.Chip.all)
    @ List.filter
        (fun c ->
          not
            (List.mem c (List.map (fun c -> c.Gpusim.Chip.name) Gpusim.Chip.all)))
        chips
  in
  hr ppf (8 + (11 * List.length envs));
  Fmt.pf ppf "%-8s" "chip";
  List.iter (fun e -> Fmt.pf ppf "%-11s" e) envs;
  Fmt.pf ppf "@.";
  hr ppf (8 + (11 * List.length envs));
  List.iter
    (fun chip ->
      Fmt.pf ppf "%-8s" chip;
      List.iter
        (fun env ->
          match
            List.find_opt
              (fun r -> r.Campaign.chip = chip && r.Campaign.environment = env)
              rows
          with
          | Some r ->
            Fmt.pf ppf "%-11s"
              (Printf.sprintf "%d / %d" r.Campaign.effective r.Campaign.capable)
          | None -> Fmt.pf ppf "%-11s" "-")
        envs;
      Fmt.pf ppf "@.")
    chips;
  (* Dominant failure modes, aggregated over every cell of a chip's rows:
     the per-cell error histograms make the "what actually broke" question
     answerable from the same campaign data. *)
  let dominant_for chip =
    List.filter (fun r -> r.Campaign.chip = chip) rows
    |> List.concat_map (fun r ->
           List.map (fun c -> c.Campaign.histogram) r.Campaign.cells)
    |> Campaign.merge_histograms
  in
  let any_errors =
    List.exists (fun chip -> dominant_for chip <> []) chips
  in
  if any_errors then begin
    Fmt.pf ppf "dominant failure modes (errors summed over all cells):@.";
    List.iter
      (fun chip ->
        match dominant_for chip with
        | [] -> ()
        | (msg, n) :: _ -> Fmt.pf ppf "  %-8s %s (x%d)@." chip msg n)
      chips
  end

let table6 ppf (results : Harden.result list) =
  Fmt.pf ppf "Table 6: empirical fence insertion results@.";
  hr ppf 76;
  Fmt.pf ppf "%-12s %-6s %-14s %-9s %-10s %s@." "app" "init."
    "red. (ref chip)" "agreeing" "converged" "time (mins)";
  hr ppf 76;
  let apps = List.sort_uniq compare (List.map (fun r -> r.Harden.app) results) in
  List.iter
    (fun app ->
      let rs = List.filter (fun r -> r.Harden.app = app) results in
      match rs with
      | [] -> ()
      | reference :: others ->
        let agreeing =
          List.length
            (List.filter
               (fun r ->
                 List.sort compare r.Harden.fences
                 = List.sort compare reference.Harden.fences)
               others)
        in
        let mins =
          List.map (fun r -> r.Harden.elapsed_s /. 60.0) rs
          |> List.fold_left ( +. ) 0.0
        in
        Fmt.pf ppf "%-12s %-6d %-14d %-9d %-10b %.2f@." app
          reference.Harden.initial
          (List.length reference.Harden.fences)
          agreeing
          (List.for_all (fun r -> r.Harden.converged) rs)
          mins;
        Fmt.pf ppf "%-12s   fences: %s@." ""
          (String.concat ", "
             (List.map
                (fun (k, s) -> Printf.sprintf "%s:s%d" k s)
                reference.Harden.fences)))
    apps

let bar width maxv v =
  if maxv <= 0 then ""
  else String.make (Int.max 0 (v * width / maxv)) '#'

let figure3 ppf ~chip (r : Patch_finder.result) =
  Fmt.pf ppf "Figure 3: patch finding on %s (weak behaviours per stressed \
              location, %d runs per point)@." chip r.Patch_finder.runs;
  let maxv =
    List.fold_left (fun m c -> Int.max m c.Patch_finder.weak) 1
      r.Patch_finder.cells
  in
  let distances =
    List.sort_uniq compare
      (List.map (fun c -> c.Patch_finder.distance) r.Patch_finder.cells)
  in
  let show = match distances with a :: b :: c :: _ -> [ a; b; c ] | l -> l in
  List.iter
    (fun idiom ->
      List.iter
        (fun d ->
          Fmt.pf ppf "%s d=%d:@." (Litmus.Test.idiom_name idiom) d;
          List.iter
            (fun c ->
              if c.Patch_finder.idiom = idiom && c.Patch_finder.distance = d
              then
                Fmt.pf ppf "  %4d |%-24s %d@." c.Patch_finder.location
                  (bar 24 maxv c.Patch_finder.weak)
                  c.Patch_finder.weak)
            r.Patch_finder.cells)
        show)
    [ Litmus.Test.MP; Litmus.Test.LB ];
  Fmt.pf ppf "critical patch size: %d@." r.Patch_finder.chosen

let figure4 ppf ~chip (r : Spread_finder.result) =
  Fmt.pf ppf "Figure 4: spread finding on %s (sequence %s)@." chip
    (Access_seq.to_string r.Spread_finder.sequence);
  let maxv =
    List.fold_left
      (fun m p ->
        List.fold_left (fun m (_, v) -> Int.max m v) m p.Spread_finder.scores)
      1 r.Spread_finder.points
  in
  List.iter
    (fun idiom ->
      Fmt.pf ppf "%s:@." (Litmus.Test.idiom_name idiom);
      List.iter
        (fun p ->
          let v = List.assoc idiom p.Spread_finder.scores in
          Fmt.pf ppf "  m=%2d |%-30s %d@." p.Spread_finder.spread
            (bar 30 maxv v) v)
        r.Spread_finder.points)
    Litmus.Test.idioms;
  Fmt.pf ppf "most effective spread: %d@." r.Spread_finder.winner

let figure5 ppf points =
  Fmt.pf ppf
    "Figure 5: cost of fences (modelled cycles / energy units; native \
     execution)@.";
  hr ppf 86;
  Fmt.pf ppf "%-8s %-12s %10s %10s %8s %10s %8s %6s@." "chip" "app" "no-f rt"
    "emp rt" "emp %" "cons rt" "cons %" "#emp";
  hr ppf 86;
  List.iter
    (fun (p : Cost.point) ->
      Fmt.pf ppf "%-8s %-12s %10.0f %10.0f %7.1f%% %10.0f %7.1f%% %6d@."
        p.Cost.chip p.Cost.app p.Cost.no_fences.Cost.runtime
        p.Cost.emp.Cost.runtime
        (Cost.overhead_pct ~base:p.Cost.no_fences.Cost.runtime
           p.Cost.emp.Cost.runtime)
        p.Cost.cons.Cost.runtime
        (Cost.overhead_pct ~base:p.Cost.no_fences.Cost.runtime
           p.Cost.cons.Cost.runtime)
        p.Cost.emp_count)
    points;
  let s = Cost.summarise points in
  Fmt.pf ppf
    "medians: emp fences +%.1f%% runtime, +%.1f%% energy; cons fences \
     +%.1f%% runtime, +%.1f%% energy@."
    s.Cost.median_emp_runtime_pct s.Cost.median_emp_energy_pct
    s.Cost.median_cons_runtime_pct s.Cost.median_cons_energy_pct;
  Fmt.pf ppf "maxima:  emp +%.1f%%, cons +%.1f%% runtime@."
    s.Cost.max_emp_runtime_pct s.Cost.max_cons_runtime_pct

let patch_csv (r : Patch_finder.result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "idiom,distance,location,weak\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d\n"
           (Litmus.Test.idiom_name c.Patch_finder.idiom)
           c.Patch_finder.distance c.Patch_finder.location c.Patch_finder.weak))
    r.Patch_finder.cells;
  Buffer.contents buf

let spread_csv (r : Spread_finder.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "spread,idiom,score\n";
  List.iter
    (fun p ->
      List.iter
        (fun (idiom, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%d\n" p.Spread_finder.spread
               (Litmus.Test.idiom_name idiom) v))
        p.Spread_finder.scores)
    r.Spread_finder.points;
  Buffer.contents buf

let cost_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "chip,app,nvml,no_runtime,no_energy,emp_runtime,emp_energy,cons_runtime,cons_energy,emp_fences\n";
  List.iter
    (fun (p : Cost.point) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%b,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%d\n"
           p.Cost.chip p.Cost.app p.Cost.nvml p.Cost.no_fences.Cost.runtime
           p.Cost.no_fences.Cost.energy p.Cost.emp.Cost.runtime
           p.Cost.emp.Cost.energy p.Cost.cons.Cost.runtime
           p.Cost.cons.Cost.energy p.Cost.emp_count))
    points;
  Buffer.contents buf
