(** Spread finding (Sec. 3.4, Fig. 4): how many critical-patch-sized
    regions to stress simultaneously.

    For each spread m, the campaign runs executions in which a fresh
    random subset of m regions is stressed (threads divided evenly among
    them), sums weak behaviours over the sampled distances per litmus
    test, and selects the Pareto-optimal spread. *)

type point = {
  spread : int;
  scores : (Litmus.Test.idiom * int) list;  (** per-test totals (Fig. 4) *)
}

type result = {
  points : point list;
  winner : int;
  sequence : Access_seq.t;
  patch : int;
}

val run :
  ?backend:Exec.backend ->
  ?journal:Runlog.journal ->
  chip:Gpusim.Chip.t ->
  seed:int ->
  budget:Budget.t ->
  patch:int ->
  sequence:Access_seq.t ->
  unit ->
  result
(** The (spread, idiom, distance) grid runs through {!Exec}; results are
    bit-identical across executor backends at the same seed.  [journal]
    journals each grid point's weak count under phase ["spread"]. *)

(** {1 Ledger codecs} *)

val result_to_json : result -> Json.t
val result_of_json : Json.t -> (result, string) Stdlib.result
