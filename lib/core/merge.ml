(* Combine k/N shard ledgers into one canonical ledger.

   The contract is byte-identity: for a deterministic
   (GPUWMM_LEDGER_DETERMINISTIC) campaign, merging the N shard ledgers
   produces exactly the bytes a single-process run of the same campaign
   would have written.  That holds because

   - shard job records already carry their global plan index and the
     unsharded per-job seed, so replaying them through a fresh writer
     in plan order reproduces the canonical job stream;
   - the shard header differs from the canonical one only in its
     [shard] field (deterministic mode zeroes everything else), which
     the merge strips;
   - the footer totals are sums over the written job records, and a
     partition sums to the same totals;
   - for campaign-kind ledgers the result record is a pure function of
     the plan-order cell list (Campaign.rows_of_cells), so it can be
     reconstructed without re-running anything.

   Everything else is fail-closed: a missing shard, an overlapping or
   missing job, or shards whose plan headers disagree abort the merge
   with no output file written. *)

let ( let* ) = Result.bind

type outcome = {
  out_path : string;
  shards : int;
  jobs : int;
  quarantined : int;
  result_written : bool;
}

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* Loading and validating the shard set                                 *)

type src = {
  src_path : string;
  src_shard : Shard.t;
  src_ledger : Runlog.ledger;
}

let load_shard path =
  let* l =
    match Runlog.load path with
    | Ok l -> Ok l
    | Error e -> err "%s: %s" path e
  in
  let* spec =
    match l.Runlog.header.Runlog.shard with
    | Some s -> Ok s
    | None ->
      err "%s: not a shard ledger (no shard field in its header)" path
  in
  let* sh =
    match Shard.parse spec with
    | Ok sh -> Ok sh
    | Error e -> err "%s: %s" path e
  in
  (* A shard that finished writes a footer; a killed or still-running
     worker does not.  Refusing footer-less shards here catches tail
     truncation that the per-phase gap walk cannot see (the last owned
     jobs of a shard are simply absent, not out of sequence). *)
  let* () =
    match l.Runlog.footer with
    | Some _ when not l.Runlog.torn -> Ok ()
    | _ ->
      err
        "%s: shard %s is incomplete (footer missing) — resume the \
         interrupted shard before merging"
        path (Shard.to_string sh)
  in
  Ok { src_path = path; src_shard = sh; src_ledger = l }

(* The shard set must be exactly {1..N} of one N and one strategy, and
   every shard must describe the same plan (schema, campaign kind, seed,
   grid — the fields validate_resume checks; argv/created legitimately
   differ between worker processes). *)
let validate_set srcs =
  let* first =
    match srcs with
    | [] -> Error "merge needs at least one shard ledger"
    | s :: _ -> Ok s
  in
  let n = first.src_shard.Shard.n in
  let strategy = first.src_shard.Shard.strategy in
  let h0 = first.src_ledger.Runlog.header in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let sh = s.src_shard in
        if sh.Shard.n <> n || sh.Shard.strategy <> strategy then
          err "%s: shard %s does not belong to the same %d-way %s split \
               as %s (%s)"
            s.src_path
            (Shard.to_string sh)
            n
            (Shard.strategy_name strategy)
            first.src_path
            (Shard.to_string first.src_shard)
        else
          let h = s.src_ledger.Runlog.header in
          if h.Runlog.schema <> h0.Runlog.schema then
            err "%s: ledger schema %d differs from %s's %d" s.src_path
              h.Runlog.schema first.src_path h0.Runlog.schema
          else if h.Runlog.campaign <> h0.Runlog.campaign then
            err "%s: campaign kind mismatch: %S vs %s's %S" s.src_path
              h.Runlog.campaign first.src_path h0.Runlog.campaign
          else if h.Runlog.seed <> h0.Runlog.seed then
            err "%s: seed mismatch: %d vs %s's %d" s.src_path h.Runlog.seed
              first.src_path h0.Runlog.seed
          else if h.Runlog.grid <> h0.Runlog.grid then
            err "%s: parameter grid mismatch vs %s" s.src_path first.src_path
          else Ok ())
      (Ok ()) srcs
  in
  let by_k = Array.make (n + 1) None in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let k = s.src_shard.Shard.k in
        match by_k.(k) with
        | Some prev ->
          err "shards %s and %s both claim %s — overlapping shard set"
            prev.src_path s.src_path
            (Shard.to_string s.src_shard)
        | None ->
          by_k.(k) <- Some s;
          Ok ())
      (Ok ()) srcs
  in
  let* () =
    let missing = ref [] in
    for k = n downto 1 do
      if by_k.(k) = None then missing := k :: !missing
    done;
    match !missing with
    | [] -> Ok ()
    | ks ->
      err "incomplete shard set: missing shard%s %s of %d"
        (if List.length ks > 1 then "s" else "")
        (String.concat ", " (List.map string_of_int ks))
        n
  in
  Ok (Array.to_list by_k |> List.filter_map Fun.id)

(* ------------------------------------------------------------------ *)
(* Interleaving the job streams                                         *)

(* Phase order is taken from shard 1: both strategies assign plan index
   0 (and adaptive memo streams entirely) to shard 1, so every
   non-empty phase appears there, in canonical order. *)
let phase_order srcs =
  let shard1 =
    List.find (fun s -> s.src_shard.Shard.k = 1) srcs
  in
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (j : Runlog.job) ->
      if not (Hashtbl.mem seen j.Runlog.phase) then begin
        Hashtbl.add seen j.Runlog.phase ();
        order := j.Runlog.phase :: !order
      end)
    shard1.src_ledger.Runlog.jobs;
  let order = List.rev !order in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        List.fold_left
          (fun acc (j : Runlog.job) ->
            let* () = acc in
            if Hashtbl.mem seen j.Runlog.phase then Ok ()
            else
              err
                "%s records phase %S which is absent from shard 1 (%s) — \
                 resume the interrupted shard before merging"
                s.src_path j.Runlog.phase shard1.src_path)
          (Ok ()) s.src_ledger.Runlog.jobs)
      (Ok ()) srcs
  in
  Ok order

(* One phase's merged stream: every shard's records for the phase,
   sorted by global plan index, checked for overlaps and gaps. *)
let merge_phase srcs phase =
  let tagged =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (j : Runlog.job) ->
            if j.Runlog.phase = phase then Some (j, s) else None)
          s.src_ledger.Runlog.jobs)
      srcs
  in
  let sorted =
    List.stable_sort
      (fun ((a : Runlog.job), _) ((b : Runlog.job), _) ->
        compare a.Runlog.index b.Runlog.index)
      tagged
  in
  let rec check expect = function
    | [] -> Ok ()
    | ((j : Runlog.job), (s : src)) :: tl ->
      let i = j.Runlog.index in
      if i < expect then
        err "phase %S: job %d appears in more than one shard ledger \
             (last in %s) — overlapping shards"
          phase i s.src_path
      else if i > expect then
        let owner =
          match s.src_shard.Shard.strategy with
          | Shard.Stride ->
            Printf.sprintf " (stride shard %d/%d owns it)"
              ((expect mod s.src_shard.Shard.n) + 1)
              s.src_shard.Shard.n
          | Shard.Contiguous -> ""
        in
        err "phase %S: job %d is missing%s — resume the interrupted \
             shard before merging"
          phase expect owner
      else check (expect + 1) tl
  in
  let* () = check 0 sorted in
  Ok (List.map fst sorted)

(* ------------------------------------------------------------------ *)
(* Result reconstruction                                                *)

(* Campaign-kind ledgers ("test", "table5") reduce to Table 5 rows by a
   pure regrouping of the plan-order cells, so a merged ledger can carry
   the same result record the single-process run would have written.
   Other kinds (tuning, hardening, the finders) reduce through adaptive
   driver state; their merged ledgers are left result-less and are
   finished by `--resume`, which replays every job from cache and only
   re-runs the reduce. *)
let reconstruct_result header (jobs : Runlog.job list) =
  let grid = header.Runlog.grid in
  let strs key =
    match Json.member key grid with
    | Some (Json.List xs) -> Some (List.filter_map Json.to_str xs)
    | _ -> None
  in
  match header.Runlog.campaign with
  | "test" | "table5" -> (
    let cells_r =
      List.filter (fun (j : Runlog.job) -> j.Runlog.phase = "campaign") jobs
    in
    let* cells =
      List.fold_left
        (fun acc (j : Runlog.job) ->
          let* acc = acc in
          match Campaign.cell_of_json j.Runlog.result with
          | Ok c -> Ok (c :: acc)
          | Error e -> err "campaign job %d does not decode: %s" j.Runlog.index e)
        (Ok []) cells_r
    in
    let cells = List.rev cells in
    let* chips =
      match strs "chips" with
      | Some cs when cs <> [] -> Ok cs
      | _ -> Error "grid has no chips list"
    in
    let envs =
      match strs "envs" with
      | Some es when es <> [] -> es
      | _ ->
        (* Table 5 grids don't list environments: the driver uses the
           fixed 8-environment sweep, whose labels are chip-independent. *)
        let chip =
          match Option.bind (List.nth_opt chips 0) Gpusim.Chip.by_name with
          | Some c -> c
          | None -> List.hd Gpusim.Chip.all
        in
        List.map
          (fun e -> e.Environment.label)
          (Environment.all ~tuned:(Tuning.shipped ~chip))
    in
    let apps_per_row =
      match strs "apps" with
      | Some apps when apps <> [] -> List.length apps
      | _ -> List.length Apps.Registry.all
    in
    let* rows = Campaign.rows_of_cells ~chips ~envs ~apps_per_row cells in
    Ok (Some ("campaign", Campaign.rows_to_json rows)))
  | _ -> Ok None

(* ------------------------------------------------------------------ *)
(* The merge                                                            *)

let merge ~out paths =
  let* srcs =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* s = load_shard p in
        Ok (s :: acc))
      (Ok []) paths
  in
  let srcs = List.rev srcs in
  let* srcs = validate_set srcs in
  let* () =
    if List.exists (fun s -> String.length s.src_path > 0 && s.src_path = out) srcs
    then err "output %s is one of the shard ledgers" out
    else Ok ()
  in
  let* phases = phase_order srcs in
  let* streams =
    List.fold_left
      (fun acc phase ->
        let* acc = acc in
        let* stream = merge_phase srcs phase in
        Ok ((phase, stream) :: acc))
      (Ok []) phases
  in
  let streams = List.rev streams in
  let jobs = List.concat_map snd streams in
  let quarantined =
    List.length (List.filter (fun (j : Runlog.job) -> j.Runlog.failed <> None) jobs)
  in
  let h0 =
    (List.find (fun s -> s.src_shard.Shard.k = 1) srcs).src_ledger.Runlog.header
  in
  (* Quarantined shards merge to a quarantined (degraded) ledger with no
     result record; `--resume` re-runs exactly those jobs and completes
     it, as for a single-process degraded run. *)
  let* result =
    if quarantined > 0 then Ok None else reconstruct_result h0 jobs
  in
  let header =
    { h0 with
      Runlog.shard = None;
      (* Provenance survives only outside deterministic mode: a merged
         deterministic ledger must be byte-identical to the
         single-process run, which never had a merged field. *)
      merged =
        (if Runlog.deterministic_mode () then None
         else Some (List.map (fun s -> s.src_path) srcs)) }
  in
  let sink = Runlog.create ~path:out header in
  match
    List.iter
      (fun (_phase, stream) ->
        List.iter (fun j -> Runlog.append_job sink j) stream)
      streams;
    Option.iter (fun (kind, data) -> Runlog.append_result sink ~kind data) result;
    Runlog.close sink
  with
  | () ->
    Ok
      { out_path = out; shards = List.length srcs; jobs = List.length jobs;
        quarantined; result_written = result <> None }
  | exception e ->
    Runlog.abort sink;
    err "writing %s failed: %s" out (Printexc.to_string e)
