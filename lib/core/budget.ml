type t = {
  runs_patch : int;
  runs_seq : int;
  runs_spread : int;
  max_location : int;
  location_stride : int;
  distances_patch : int list;
  distances_seq : int list;
  distances_spread : int list;
  seq_max_len : int;
  max_spread : int;
  spread_step : int;
  noise_threshold : int;
}

let range lo hi step =
  let rec go d acc = if d > hi then List.rev acc else go (d + step) (d :: acc) in
  go lo []

(* The paper's ε = 3 corresponds to C = 1000; budgets scale it with
   their own C so a patch needs the same weak-behaviour *rate*. *)
let eps_for runs = Int.max 1 (3 * runs / 1000 + 1)

let default =
  let runs_patch = 60 in
  { runs_patch; runs_seq = 25; runs_spread = 40;
    max_location = 256; location_stride = 8;
    distances_patch = range 0 192 16;
    distances_seq = [ 32; 64; 96; 160 ];
    distances_spread = [ 32; 64; 96; 160 ];
    seq_max_len = 5; max_spread = 16; spread_step = 1;
    noise_threshold = eps_for runs_patch }

let paper =
  { runs_patch = 1000; runs_seq = 1000; runs_spread = 1000;
    max_location = 256; location_stride = 1;
    distances_patch = range 0 255 1;
    distances_seq = range 0 255 1;
    distances_spread = range 0 255 1;
    seq_max_len = 5; max_spread = 64; spread_step = 1;
    noise_threshold = 3 }

let quick =
  { runs_patch = 10; runs_seq = 6; runs_spread = 8;
    max_location = 128; location_stride = 16;
    distances_patch = [ 0; 64 ]; distances_seq = [ 64 ];
    distances_spread = [ 64 ];
    seq_max_len = 2; max_spread = 8; spread_step = 2;
    noise_threshold = 1 }

let scale_runs t f =
  let s n = Int.max 1 (int_of_float (float_of_int n *. f)) in
  { t with runs_patch = s t.runs_patch; runs_seq = s t.runs_seq;
    runs_spread = s t.runs_spread;
    noise_threshold = eps_for (s t.runs_patch) }

let to_json t =
  let ints ns = Json.List (List.map (fun n -> Json.Int n) ns) in
  Json.Assoc
    [ ("runs_patch", Json.Int t.runs_patch);
      ("runs_seq", Json.Int t.runs_seq);
      ("runs_spread", Json.Int t.runs_spread);
      ("max_location", Json.Int t.max_location);
      ("location_stride", Json.Int t.location_stride);
      ("distances_patch", ints t.distances_patch);
      ("distances_seq", ints t.distances_seq);
      ("distances_spread", ints t.distances_spread);
      ("seq_max_len", Json.Int t.seq_max_len);
      ("max_spread", Json.Int t.max_spread);
      ("spread_step", Json.Int t.spread_step);
      ("noise_threshold", Json.Int t.noise_threshold) ]
