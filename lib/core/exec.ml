type backend = Serial | Parallel of int

let serial = Serial

let backend_of_jobs n = if n <= 1 then Serial else Parallel n

let jobs_of_backend = function Serial -> 1 | Parallel n -> Int.max 1 n

let default_jobs () =
  match Sys.getenv_opt "GPUWMM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_backend () = backend_of_jobs (default_jobs ())

type 'a job = { index : int; seed : int; payload : 'a }

let plan ~seed payloads =
  List.mapi
    (fun index payload ->
      { index; seed = Gpusim.Rng.subseed seed index; payload })
    payloads

(* ------------------------------------------------------------------ *)
(* Progress reporting                                                   *)

let progress_hook : (string -> unit) option Atomic.t = Atomic.make None

let set_progress h = Atomic.set progress_hook h

let info msg =
  match Atomic.get progress_hook with Some emit -> emit msg | None -> ()

(* A rate-limited per-campaign reporter, safe to call from any worker
   domain.  Throttling state lives behind a mutex; the job counter the
   callers pass in is maintained with atomics by the executor. *)
let make_ticker ~label ~execs_per_job ~total =
  match (Atomic.get progress_hook, label) with
  | None, _ | _, None -> fun _ -> ()
  | Some emit, Some label ->
    let t0 = Unix.gettimeofday () in
    let mu = Mutex.create () in
    let last = ref t0 in
    fun jobs_done ->
      let now = Unix.gettimeofday () in
      if jobs_done = total || now -. !last >= 1.0 then begin
        Mutex.lock mu;
        if jobs_done = total || now -. !last >= 1.0 then begin
          last := now;
          let elapsed = now -. t0 in
          let execs = jobs_done * execs_per_job in
          let rate =
            if elapsed > 0.0 then float_of_int execs /. elapsed else 0.0
          in
          emit
            (Printf.sprintf "%s: %d/%d jobs (%.0f execs/s)" label jobs_done
               total rate)
        end;
        Mutex.unlock mu
      end

(* ------------------------------------------------------------------ *)
(* The worker pool                                                      *)

(* Run [process ~worker i] for every i in [0, len) on [domains] domains
   (the caller is one of them; it is worker 0, helpers are 1..).
   Indexes are handed out in chunks from a shared atomic counter; [stop]
   lets callers abort early (used by [for_all]).  The first exception is
   captured and re-raised on the calling domain after every worker has
   drained. *)
let pool_iter ~domains ~stop ~process len =
  let next = Atomic.make 0 in
  let error = Atomic.make None in
  let chunk = Int.max 1 (len / (domains * 8)) in
  let worker w =
    let rec loop () =
      if Atomic.get error = None && not (stop ()) then begin
        let start = Atomic.fetch_and_add next chunk in
        if start < len then begin
          (try
             let finish = Int.min len (start + chunk) in
             for i = start to finish - 1 do
               if Atomic.get error = None && not (stop ()) then
                 process ~worker:w i
             done
           with e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  let helpers =
    List.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Domain.join helpers;
  match Atomic.get error with Some e -> raise e | None -> ()

(* Wrap a job function with telemetry: every completed job bumps the
   exec counters/histograms, and — when span recording is on — leaves a
   span with its schedule (worker slot, queue wait, run time).  None of
   this touches the job's result, so the backend determinism guarantee
   is unaffected. *)
let instrumented ?label ~f ~queued_at =
  let jobs_c = Telemetry.counter "exec.jobs" in
  let run_h = Telemetry.histogram "exec.run_seconds" in
  let wait_h = Telemetry.histogram "exec.queue_wait_seconds" in
  let label = match label with Some l -> l | None -> "map" in
  fun ~worker j ->
    let started_at = Unix.gettimeofday () in
    let r = f j in
    let ended_at = Unix.gettimeofday () in
    Telemetry.incr jobs_c;
    Telemetry.observe run_h (ended_at -. started_at);
    Telemetry.observe wait_h (started_at -. queued_at);
    if Telemetry.spans_enabled () then
      Telemetry.record_span
        { Telemetry.label; index = j.index; worker; queued_at; started_at;
          ended_at };
    r

let map ?(backend = Serial) ?label ?(execs_per_job = 1) ~f jobs =
  let arr = Array.of_list jobs in
  let len = Array.length arr in
  let tick = make_ticker ~label ~execs_per_job ~total:len in
  let domains = Int.min (jobs_of_backend backend) (Int.max 1 len) in
  let exec = instrumented ?label ~f ~queued_at:(Unix.gettimeofday ()) in
  if domains <= 1 then
    List.mapi
      (fun i j ->
        let r = exec ~worker:0 j in
        tick (i + 1);
        r)
      jobs
  else begin
    let results = Array.make len None in
    let completed = Atomic.make 0 in
    pool_iter ~domains
      ~stop:(fun () -> false)
      ~process:(fun ~worker i ->
        results.(i) <- Some (exec ~worker arr.(i));
        tick (1 + Atomic.fetch_and_add completed 1))
      len;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let run ?backend ?label ?execs_per_job ~seed ~f payloads =
  map ?backend ?label ?execs_per_job
    ~f:(fun j -> f ~seed:j.seed j.payload)
    (plan ~seed payloads)

let for_all ?(backend = Serial) ~seed ~f payloads =
  let jobs = plan ~seed payloads in
  let domains =
    Int.min (jobs_of_backend backend) (Int.max 1 (List.length jobs))
  in
  if domains <= 1 then
    List.for_all (fun j -> f ~seed:j.seed j.payload) jobs
  else begin
    let arr = Array.of_list jobs in
    let failed = Atomic.make false in
    pool_iter ~domains
      ~stop:(fun () -> Atomic.get failed)
      ~process:(fun ~worker:_ i ->
        let j = arr.(i) in
        if not (f ~seed:j.seed j.payload) then Atomic.set failed true)
      (Array.length arr);
    not (Atomic.get failed)
  end
