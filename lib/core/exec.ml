type backend = Serial | Parallel of int

let serial = Serial

let backend_of_jobs n = if n <= 1 then Serial else Parallel n

let jobs_of_backend = function Serial -> 1 | Parallel n -> Int.max 1 n

let default_jobs () =
  match Sys.getenv_opt "GPUWMM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_backend () = backend_of_jobs (default_jobs ())

type 'a job = { index : int; seed : int; payload : 'a }

let plan ~seed payloads =
  List.mapi
    (fun index payload ->
      { index; seed = Gpusim.Rng.subseed seed index; payload })
    payloads

(* ------------------------------------------------------------------ *)
(* Progress reporting                                                   *)

type reporter = {
  line : string -> unit;
  finished : unit -> unit;
}

let progress_hook : reporter option Atomic.t = Atomic.make None

let set_progress h = Atomic.set progress_hook h

let info msg =
  match Atomic.get progress_hook with Some r -> r.line msg | None -> ()

let format_eta seconds =
  if not (Float.is_finite seconds) || seconds < 0.0 then "-"
  else
    let s = int_of_float (Float.round seconds) in
    if s >= 3600 then Printf.sprintf "%dh%02dm" (s / 3600) (s mod 3600 / 60)
    else Printf.sprintf "%02d:%02d" (s / 60) (s mod 60)

(* A rate-limited per-campaign reporter, safe to call from any worker
   domain.  Throttling state lives behind a mutex; the job counter the
   callers pass in is maintained with atomics by the executor.  The
   line carries completed/total jobs, live throughput, the error rate
   over all completed executions when the campaign's codec can count
   errors, and an ETA from an exponentially weighted moving average of
   the inter-tick completion rate.  [cached] jobs (replayed from a
   resume ledger) are excluded from the throughput and ETA basis. *)
let make_ticker ~label ~execs_per_job ~total ~cached =
  match (Atomic.get progress_hook, label) with
  | None, _ | _, None -> fun _ _ -> ()
  | Some rep, Some label ->
    let t0 = Unix.gettimeofday () in
    let mu = Mutex.create () in
    let last = ref t0 in
    let last_done = ref cached in
    let ewma = ref 0.0 in
    fun jobs_done errors ->
      let now = Unix.gettimeofday () in
      let final = jobs_done = total in
      if final || now -. !last >= 1.0 then begin
        Mutex.lock mu;
        if final || now -. !last >= 1.0 then begin
          let dt = now -. !last in
          if dt > 0.0 && jobs_done > !last_done then begin
            let inst = float_of_int (jobs_done - !last_done) /. dt in
            ewma := if !ewma = 0.0 then inst else (0.3 *. inst) +. (0.7 *. !ewma)
          end;
          last := now;
          last_done := jobs_done;
          let elapsed = now -. t0 in
          let live_execs = (jobs_done - cached) * execs_per_job in
          let rate =
            if elapsed > 0.0 then float_of_int live_execs /. elapsed else 0.0
          in
          let err =
            match errors with
            | None -> ""
            | Some e ->
              let execs = jobs_done * execs_per_job in
              if execs = 0 then ""
              else
                Printf.sprintf " | err %.2f%%"
                  (100.0 *. float_of_int e /. float_of_int execs)
          in
          let tail =
            if final then Printf.sprintf " | %.1fs" elapsed
            else
              Printf.sprintf " | ETA %s"
                (format_eta
                   (if !ewma > 0.0 then
                      float_of_int (total - jobs_done) /. !ewma
                    else infinity))
          in
          rep.line
            (Printf.sprintf "%s: %d/%d jobs (%.0f execs/s)%s%s" label
               jobs_done total rate err tail);
          if final then rep.finished ()
        end;
        Mutex.unlock mu
      end

(* ------------------------------------------------------------------ *)
(* The worker pool                                                      *)

(* Run [process ~worker i] for every i in [0, len) on [domains] domains
   (the caller is one of them; it is worker 0, helpers are 1..).
   Indexes are handed out in chunks from a shared atomic counter; [stop]
   lets callers abort early (used by [for_all]).  The first exception is
   captured and re-raised on the calling domain after every worker has
   drained. *)
let pool_iter ~domains ~stop ~process len =
  let next = Atomic.make 0 in
  let error = Atomic.make None in
  let chunk = Int.max 1 (len / (domains * 8)) in
  let worker w =
    let rec loop () =
      if Atomic.get error = None && not (stop ()) then begin
        let start = Atomic.fetch_and_add next chunk in
        if start < len then begin
          (try
             let finish = Int.min len (start + chunk) in
             for i = start to finish - 1 do
               if Atomic.get error = None && not (stop ()) then
                 process ~worker:w i
             done
           with e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  let helpers =
    List.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Domain.join helpers;
  match Atomic.get error with Some e -> raise e | None -> ()

(* Wrap a job function with telemetry: every completed job bumps the
   exec counters/histograms, and — when span recording is on — leaves a
   span with its schedule (worker slot, queue wait, run time).  None of
   this touches the job's result, so the backend determinism guarantee
   is unaffected. *)
let instrumented ?label ~f ~queued_at =
  let jobs_c = Telemetry.counter "exec.jobs" in
  let run_h = Telemetry.histogram "exec.run_seconds" in
  let wait_h = Telemetry.histogram "exec.queue_wait_seconds" in
  let label = match label with Some l -> l | None -> "map" in
  fun ~worker j ->
    let started_at = Unix.gettimeofday () in
    let r = f j in
    let ended_at = Unix.gettimeofday () in
    Telemetry.incr jobs_c;
    Telemetry.observe run_h (ended_at -. started_at);
    Telemetry.observe wait_h (started_at -. queued_at);
    if Telemetry.spans_enabled () then
      Telemetry.record_span
        { Telemetry.label; index = j.index; worker; queued_at; started_at;
          ended_at };
    (r, ended_at -. started_at)

let map ?(backend = Serial) ?label ?(execs_per_job = 1) ~f jobs =
  let arr = Array.of_list jobs in
  let len = Array.length arr in
  let tick = make_ticker ~label ~execs_per_job ~total:len ~cached:0 in
  let domains = Int.min (jobs_of_backend backend) (Int.max 1 len) in
  let exec = instrumented ?label ~f ~queued_at:(Unix.gettimeofday ()) in
  if domains <= 1 then
    List.mapi
      (fun i j ->
        let r, _ = exec ~worker:0 j in
        tick (i + 1) None;
        r)
      jobs
  else begin
    let results = Array.make len None in
    let completed = Atomic.make 0 in
    pool_iter ~domains
      ~stop:(fun () -> false)
      ~process:(fun ~worker i ->
        let r, _ = exec ~worker arr.(i) in
        results.(i) <- Some r;
        tick (1 + Atomic.fetch_and_add completed 1) None)
      len;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let run ?(backend = Serial) ?label ?(execs_per_job = 1) ?journal ?codec ~seed
    ~f payloads =
  let jobs = plan ~seed payloads in
  let arr = Array.of_list jobs in
  let len = Array.length arr in
  let results = Array.make len None in
  let errors = Atomic.make 0 in
  let count_errors = Option.is_some codec in
  (* Resolve cached jobs from the resume ledger up front: their results
     are replayed into the new ledger verbatim and their executions are
     skipped entirely. *)
  (match (journal, codec) with
  | Some jn, Some c ->
    Array.iter
      (fun j ->
        match Runlog.cached_value jn ~codec:c ~index:j.index ~seed:j.seed with
        | Some (v, r) ->
          results.(j.index) <- Some v;
          ignore (Atomic.fetch_and_add errors r.Runlog.errors);
          Runlog.replay jn r
        | None -> ())
      arr
  | Some _, None -> invalid_arg "Exec.run: ~journal requires ~codec"
  | None, _ -> ());
  let cached =
    Array.fold_left
      (fun n r -> if Option.is_some r then n + 1 else n)
      0 results
  in
  (match label with
  | Some l when cached > 0 ->
    info (Printf.sprintf "%s: resuming with %d/%d cached job(s)" l cached len)
  | _ -> ());
  let tick = make_ticker ~label ~execs_per_job ~total:len ~cached in
  let completed = Atomic.make cached in
  let fresh =
    Array.of_list (List.filter (fun j -> Option.is_none results.(j.index)) jobs)
  in
  let exec =
    instrumented ?label
      ~f:(fun j -> f ~seed:j.seed j.payload)
      ~queued_at:(Unix.gettimeofday ())
  in
  let process ~worker k =
    let j = fresh.(k) in
    let v, duration_s = exec ~worker j in
    let errs =
      match codec with Some c -> c.Runlog.errors_of v | None -> 0
    in
    (match journal with
    | Some jn ->
      let c = Option.get codec in
      Runlog.record jn ~index:j.index ~seed:j.seed ~errors:errs ~duration_s
        (c.Runlog.encode v)
    | None -> ());
    results.(j.index) <- Some v;
    if count_errors then ignore (Atomic.fetch_and_add errors errs);
    tick
      (1 + Atomic.fetch_and_add completed 1)
      (if count_errors then Some (Atomic.get errors) else None)
  in
  let flen = Array.length fresh in
  let domains = Int.min (jobs_of_backend backend) (Int.max 1 flen) in
  if domains <= 1 then
    for k = 0 to flen - 1 do
      process ~worker:0 k
    done
  else pool_iter ~domains ~stop:(fun () -> false) ~process flen;
  if flen = 0 && len > 0 then
    (* Fully cached resume: still emit the final progress tick. *)
    tick len (if count_errors then Some (Atomic.get errors) else None);
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

let for_all ?(backend = Serial) ~seed ~f payloads =
  let jobs = plan ~seed payloads in
  let domains =
    Int.min (jobs_of_backend backend) (Int.max 1 (List.length jobs))
  in
  if domains <= 1 then
    List.for_all (fun j -> f ~seed:j.seed j.payload) jobs
  else begin
    let arr = Array.of_list jobs in
    let failed = Atomic.make false in
    pool_iter ~domains
      ~stop:(fun () -> Atomic.get failed)
      ~process:(fun ~worker:_ i ->
        let j = arr.(i) in
        if not (f ~seed:j.seed j.payload) then Atomic.set failed true)
      (Array.length arr);
    not (Atomic.get failed)
  end
