type backend = Serial | Parallel of int | Processes of int

let serial = Serial

let max_jobs = 512

let clamp_jobs ?(warn = true) n =
  let clamped = Int.max 1 (Int.min max_jobs n) in
  if clamped <> n && warn then
    Logs.warn (fun m ->
        m "jobs value %d clamped to %d (valid range 1..%d)" n clamped max_jobs);
  clamped

let backend_of_jobs n =
  if n <= 1 then Serial else Parallel (clamp_jobs ~warn:false n)

let jobs_of_backend = function
  | Serial -> 1
  | Parallel n | Processes n -> Int.max 1 n

(* [Processes n] is executed in-process as a single domain: the fan-out
   across n worker subprocesses happens a layer above (Procs), where the
   command line needed to self-exec is known.  A child, and the parent's
   final replay-from-shard-caches pass, both land here. *)
let domains_of_backend = function
  | Serial | Processes _ -> 1
  | Parallel n -> Int.max 1 n

let default_jobs () =
  match Sys.getenv_opt "GPUWMM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> clamp_jobs n
    | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_backend () = backend_of_jobs (default_jobs ())

type 'a job = { index : int; seed : int; payload : 'a }

let plan ~seed payloads =
  List.mapi
    (fun index payload ->
      { index; seed = Gpusim.Rng.subseed seed index; payload })
    payloads

(* ------------------------------------------------------------------ *)
(* Supervision: timeouts, retries, quarantine                           *)

type supervision = {
  timeout_s : float option;
  retries : int;
  backoff_s : float;
  keep_going : bool;
  faults : Fault.plan option;
}

let supervision ?timeout_s ?(retries = 0) ?(backoff_s = 0.0)
    ?(keep_going = false) ?faults () =
  (match timeout_s with
  | Some t when t <= 0.0 -> invalid_arg "Exec.supervision: timeout must be > 0"
  | Some _ | None -> ());
  if retries < 0 then invalid_arg "Exec.supervision: negative retries";
  if backoff_s < 0.0 then invalid_arg "Exec.supervision: negative backoff";
  { timeout_s; retries; backoff_s; keep_going; faults }

type failure = {
  f_label : string;
  f_index : int;
  f_seed : int;
  f_attempts : int;
  f_reason : string;
  f_timed_out : bool;
}

exception Job_failed of failure

let () =
  Printexc.register_printer (function
    | Job_failed f ->
      Some
        (Printf.sprintf "job %d of %s failed after %d attempt(s): %s"
           f.f_index f.f_label f.f_attempts f.f_reason)
    | _ -> None)

exception Timed_out

(* Cooperative cancellation: domains cannot be killed, so a watchdog
   domain marks overdue worker slots and the workers abort themselves at
   the next poll point.  Each slot carries an attempt epoch; the watchdog
   records which epoch it cancelled, and [poll] raises only when the
   cancelled epoch is the one still running — a cancellation that arrives
   after the attempt already finished is inert. *)
type slot = {
  epoch : int Atomic.t;  (* bumped at every attempt start; 0 = idle *)
  deadline : float Atomic.t;  (* absolute; 0.0 = no deadline armed *)
  cancel : int Atomic.t;  (* epoch the watchdog cancelled; 0 = none *)
}

let make_slot () =
  { epoch = Atomic.make 0; deadline = Atomic.make 0.0; cancel = Atomic.make 0 }

let slot_key : slot option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let poll () =
  match Domain.DLS.get slot_key with
  | None -> ()
  | Some s ->
    let e = Atomic.get s.epoch in
    if e > 0 && Atomic.get s.cancel = e then raise Timed_out

let supervision_hook : supervision option Atomic.t = Atomic.make None

let sup_mu = Mutex.create ()
let quarantine_log : failure list ref = ref []
let retried_count = Atomic.make 0

let note_quarantine fl =
  Mutex.lock sup_mu;
  quarantine_log := fl :: !quarantine_log;
  Mutex.unlock sup_mu

type summary = { retried : int; quarantined : failure list }

(* Non-draining view for the heartbeat emitter: the CLI's end-of-campaign
   [drain_summary] must still see everything. *)
let summary_counts () =
  Mutex.lock sup_mu;
  let q = List.length !quarantine_log in
  Mutex.unlock sup_mu;
  (Atomic.get retried_count, q)

let drain_summary () =
  Mutex.lock sup_mu;
  let q = !quarantine_log in
  quarantine_log := [];
  Mutex.unlock sup_mu;
  let retried = Atomic.exchange retried_count 0 in
  { retried;
    quarantined =
      List.sort
        (fun a b ->
          match compare a.f_label b.f_label with
          | 0 -> compare a.f_index b.f_index
          | c -> c)
        q }

let set_supervision s =
  Atomic.set supervision_hook s;
  (* The simulator polls for cancellation only while a timeout is armed;
     otherwise the hot loop stays hook-free. *)
  Gpusim.Sim.set_poll_hook
    (match s with Some { timeout_s = Some _; _ } -> Some poll | _ -> None);
  ignore (drain_summary ())

let supervised () = Atomic.get supervision_hook

let with_watchdog ~sup slots body =
  match sup with
  | Some { timeout_s = Some _; _ } when Array.length slots > 0 ->
    let stop = Atomic.make false in
    let dog =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            Unix.sleepf 0.01;
            let now = Unix.gettimeofday () in
            Array.iter
              (fun s ->
                (* Read the epoch before the deadline: if the attempt
                   finishes between the two reads we cancel a stale epoch,
                   which [poll] ignores. *)
                let e = Atomic.get s.epoch in
                let dl = Atomic.get s.deadline in
                if dl > 0.0 && now > dl then Atomic.set s.cancel e)
              slots
          done)
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join dog)
      body
  | _ -> body ()

let begin_attempt slot timeout_s =
  Atomic.incr slot.epoch;
  match timeout_s with
  | Some t -> Atomic.set slot.deadline (Unix.gettimeofday () +. t)
  | None -> ()

let end_attempt slot = Atomic.set slot.deadline 0.0

(* An injected hang burns scheduler time at poll points until the
   watchdog cancels the attempt; it is only ever entered with a timeout
   armed (without one it degrades to a raise so chaos runs can never
   wedge the process). *)
let rec injected_hang () =
  poll ();
  Domain.cpu_relax ();
  injected_hang ()

let attempt_once ~sup ~slot ~index ~seed ~attempt ~compute =
  let fault =
    match sup.faults with
    | Some p -> Fault.at p ~index ~attempt
    | None -> None
  in
  begin_attempt slot sup.timeout_s;
  match
    (match fault with
    | Some Fault.Raise -> raise (Fault.Injected "job crash")
    | Some Fault.Hang ->
      if sup.timeout_s = None then
        raise (Fault.Injected "hang (no timeout armed to cancel it)")
      else injected_hang ()
    | Some (Fault.Corrupt | Fault.Ledger_fail) | None -> ());
    let eff_seed =
      match fault with Some Fault.Corrupt -> seed lxor 1 | _ -> seed
    in
    let v = compute ~seed:eff_seed in
    (match fault with
    | Some Fault.Ledger_fail -> raise (Fault.Injected "ledger write failure")
    | _ -> ());
    v
  with
  | v ->
    end_attempt slot;
    Ok v
  | exception Timed_out ->
    end_attempt slot;
    Error
      ( Printf.sprintf "timed out after %gs"
          (Option.value ~default:0.0 sup.timeout_s),
        true )
  | exception e ->
    end_attempt slot;
    Error (Printexc.to_string e, false)

(* The bounded retry loop.  Retries reuse the job's own planned seed, so
   a successful retry reproduces the fault-free result bit for bit.  The
   backoff duration is derived from the job seed (deterministic schedule)
   but only consumes wall clock, never affects results. *)
let supervise ~sup ~slot ~index ~seed ~compute =
  let rec go attempt =
    match attempt_once ~sup ~slot ~index ~seed ~attempt ~compute with
    | Ok v -> Ok (v, attempt + 1)
    | Error (reason, timed_out) ->
      if attempt < sup.retries then begin
        Atomic.incr retried_count;
        if sup.backoff_s > 0.0 then begin
          let rng =
            Gpusim.Rng.create (Gpusim.Rng.subseed seed (0x5eed + attempt))
          in
          let jitter = 0.5 +. Gpusim.Rng.float rng in
          Unix.sleepf
            (sup.backoff_s *. float_of_int (1 lsl Int.min attempt 16) *. jitter)
        end;
        go (attempt + 1)
      end
      else Error (reason, timed_out, attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Progress reporting                                                   *)

type reporter = {
  line : string -> unit;
  finished : unit -> unit;
}

let progress_hook : reporter option Atomic.t = Atomic.make None

let set_progress h = Atomic.set progress_hook h

let info msg =
  match Atomic.get progress_hook with Some r -> r.line msg | None -> ()

let format_eta seconds =
  if not (Float.is_finite seconds) || seconds < 0.0 then "-"
  else
    let s = int_of_float (Float.round seconds) in
    if s >= 3600 then Printf.sprintf "%dh%02dm" (s / 3600) (s mod 3600 / 60)
    else Printf.sprintf "%02d:%02d" (s / 60) (s mod 60)

(* The published progress of the newest campaign phase in this process:
   the cross-process observability channel.  The ticker keeps it fresh
   (about once a second) even when no progress reporter is installed, so
   quiet shard workers still expose live state to their heartbeat
   emitter and the /status endpoint.  Under an ambient shard the
   counts are shard-local: placeholder-skipped jobs are excluded from
   both [p_done] and [p_total], so summing worker snapshots yields the
   campaign plan's totals. *)
type progress = {
  p_label : string;
  p_total : int;
  p_done : int;
  p_cached : int;  (** jobs replayed from a resume cache *)
  p_errors : int;
  p_rate : float;  (** EWMA jobs/s; 0.0 until warm *)
  p_eta_s : float option;
  p_updated : float;  (** wall clock of the last update *)
}

let progress_cell : progress option Atomic.t = Atomic.make None

let progress () = Atomic.get progress_cell

let clear_progress () = Atomic.set progress_cell None

(* An ETA needs a warm EWMA *and* at least two live (non-cached)
   completions: the first inter-tick sample extrapolates a whole
   campaign from a single job, which produced wild initial estimates on
   slow campaigns. *)
let eta_of ~live_done ~remaining ~ewma =
  if live_done >= 2 && ewma > 0.0 then
    Some (float_of_int remaining /. ewma)
  else None

(* A rate-limited per-campaign reporter, safe to call from any worker
   domain.  Throttling state lives behind a mutex; the job counter the
   callers pass in is maintained with atomics by the executor.  The
   line carries completed/total jobs, live throughput, the error rate
   over all completed executions when the campaign's codec can count
   errors, and an ETA from an exponentially weighted moving average of
   the inter-tick completion rate.  [cached] jobs (replayed from a
   resume ledger) are excluded from the throughput and ETA basis, and
   [skipped] jobs (shard placeholders) from the displayed counts
   entirely — a shard worker reports only the slice it owns.  Each
   tick also refreshes {!progress_cell}, with or without a reporter. *)
let make_ticker ~label ~execs_per_job ~total ~cached ~skipped =
  match label with
  | None -> fun _ _ -> ()
  | Some label ->
    let rep = Atomic.get progress_hook in
    let t0 = Unix.gettimeofday () in
    (* Publish the campaign's shape immediately: observers (heartbeats,
       /status) see the planned total from the first beat, not only
       after the first job lands — jobs can take many seconds. *)
    Atomic.set progress_cell
      (Some
         { p_label = label; p_total = total - skipped; p_done = cached;
           p_cached = cached; p_errors = 0; p_rate = 0.0; p_eta_s = None;
           p_updated = t0 });
    let mu = Mutex.create () in
    let last = ref t0 in
    let last_done = ref (cached + skipped) in
    let ewma = ref 0.0 in
    fun jobs_done errors ->
      let now = Unix.gettimeofday () in
      let final = jobs_done = total in
      if final || now -. !last >= 1.0 then begin
        Mutex.lock mu;
        if final || now -. !last >= 1.0 then begin
          let dt = now -. !last in
          if dt > 0.0 && jobs_done > !last_done then begin
            let inst = float_of_int (jobs_done - !last_done) /. dt in
            ewma := if !ewma = 0.0 then inst else (0.3 *. inst) +. (0.7 *. !ewma)
          end;
          last := now;
          last_done := jobs_done;
          let elapsed = now -. t0 in
          (* Shard-local view: placeholders are not work. *)
          let own_done = jobs_done - skipped in
          let own_total = total - skipped in
          let live_done = own_done - cached in
          let live_execs = live_done * execs_per_job in
          let rate =
            if elapsed > 0.0 then float_of_int live_execs /. elapsed else 0.0
          in
          let eta =
            eta_of ~live_done ~remaining:(own_total - own_done) ~ewma:!ewma
          in
          Atomic.set progress_cell
            (Some
               { p_label = label; p_total = own_total; p_done = own_done;
                 p_cached = cached;
                 p_errors = (match errors with Some e -> e | None -> 0);
                 p_rate = !ewma; p_eta_s = eta; p_updated = now });
          match rep with
          | None -> ()
          | Some rep ->
            let err =
              match errors with
              | None -> ""
              | Some e ->
                let execs = own_done * execs_per_job in
                if execs = 0 then ""
                else
                  Printf.sprintf " | err %.2f%%"
                    (100.0 *. float_of_int e /. float_of_int execs)
            in
            let tail =
              if final then Printf.sprintf " | %.1fs" elapsed
              else
                Printf.sprintf " | ETA %s"
                  (format_eta
                     (match eta with Some s -> s | None -> infinity))
            in
            rep.line
              (Printf.sprintf "%s: %d/%d jobs (%.0f execs/s)%s%s" label
                 own_done own_total rate err tail);
            if final then rep.finished ()
        end;
        Mutex.unlock mu
      end

(* ------------------------------------------------------------------ *)
(* Per-domain GC tuning                                                 *)

(* The default 256k-word minor heap forces a collection every few
   simulated executions; under OCaml 5's stop-the-world parallel minor
   collector each of those synchronises every domain, which is the prime
   suspect for parallel slowdown on allocation-heavy workloads.  A large
   minor heap amortises the synchronisation to the point where domains
   mostly run undisturbed.  Override the size (in words) with
   [GPUWMM_GC=<words>], or disable tuning entirely with [GPUWMM_GC=off]. *)
let default_minor_heap_words = 2 * 1024 * 1024 (* 16 MiB per domain *)

let gc_tuned : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let tune_gc () =
  let tuned = Domain.DLS.get gc_tuned in
  if not !tuned then begin
    tuned := true;
    match Sys.getenv_opt "GPUWMM_GC" with
    | Some "off" -> ()
    | gc_env ->
      let minor =
        match gc_env with
        | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n > 0 -> n
          | Some _ | None -> default_minor_heap_words)
        | None -> default_minor_heap_words
      in
      let g = Gc.get () in
      if g.Gc.minor_heap_size < minor then
        Gc.set
          { g with
            Gc.minor_heap_size = minor;
            (* Simulator state is long-lived and reused; trading major-heap
               slack for fewer slices suits the workload. *)
            space_overhead = Int.max g.Gc.space_overhead 200 }
  end

(* ------------------------------------------------------------------ *)
(* The worker pool                                                      *)

(* Run [process ~worker i] for every i in [0, len) on [domains] domains
   (the caller is one of them; it is worker 0, helpers are 1..).
   Indexes are handed out in chunks from a shared atomic counter; [stop]
   lets callers abort early (used by [for_all]).  The first exception is
   captured and re-raised on the calling domain after every worker has
   drained. *)
let pool_iter ~domains ~stop ~process len =
  let next = Atomic.make 0 in
  let error = Atomic.make None in
  let chunk = Int.max 1 (len / (domains * 8)) in
  let worker w =
    tune_gc ();
    let rec loop () =
      if Atomic.get error = None && not (stop ()) then begin
        let start = Atomic.fetch_and_add next chunk in
        if start < len then begin
          (try
             let finish = Int.min len (start + chunk) in
             for i = start to finish - 1 do
               if Atomic.get error = None && not (stop ()) then
                 process ~worker:w i
             done
           with e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  let helpers =
    List.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Domain.join helpers;
  match Atomic.get error with Some e -> raise e | None -> ()

(* Wrap a job function with telemetry: every completed job bumps the
   exec counters/histograms, and — when span recording is on — leaves a
   span with its schedule (worker slot, queue wait, run time).  None of
   this touches the job's result, so the backend determinism guarantee
   is unaffected. *)
let instrumented ?label ~f ~queued_at =
  let jobs_c = Telemetry.counter "exec.jobs" in
  let run_h = Telemetry.histogram "exec.run_seconds" in
  let wait_h = Telemetry.histogram "exec.queue_wait_seconds" in
  let label = match label with Some l -> l | None -> "map" in
  fun ~worker j ->
    let started_at = Unix.gettimeofday () in
    let r = f j in
    let ended_at = Unix.gettimeofday () in
    Telemetry.incr jobs_c;
    Telemetry.observe run_h (ended_at -. started_at);
    Telemetry.observe wait_h (started_at -. queued_at);
    if Telemetry.spans_enabled () then
      Telemetry.record_span
        { Telemetry.label; index = j.index; worker; queued_at; started_at;
          ended_at };
    (r, ended_at -. started_at)

let map ?(backend = Serial) ?label ?(execs_per_job = 1) ~f jobs =
  tune_gc ();
  let arr = Array.of_list jobs in
  let len = Array.length arr in
  let tick = make_ticker ~label ~execs_per_job ~total:len ~cached:0 ~skipped:0 in
  let domains = Int.min (domains_of_backend backend) (Int.max 1 len) in
  let exec = instrumented ?label ~f ~queued_at:(Unix.gettimeofday ()) in
  if domains <= 1 then
    List.mapi
      (fun i j ->
        let r, _ = exec ~worker:0 j in
        tick (i + 1) None;
        r)
      jobs
  else begin
    let results = Array.make len None in
    let completed = Atomic.make 0 in
    pool_iter ~domains
      ~stop:(fun () -> false)
      ~process:(fun ~worker i ->
        let r, _ = exec ~worker arr.(i) in
        results.(i) <- Some r;
        tick (1 + Atomic.fetch_and_add completed 1) None)
      len;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let run ?(backend = Serial) ?label ?(execs_per_job = 1) ?journal ?codec
    ?quarantine ?shard_placeholder ~seed ~f payloads =
  tune_gc ();
  let jobs = plan ~seed payloads in
  let arr = Array.of_list jobs in
  let len = Array.length arr in
  let results = Array.make len None in
  let errors = Atomic.make 0 in
  let count_errors = Option.is_some codec in
  (* Under an ambient k/N shard, only the owned slice of the plan is
     journalled (at its dense shard-local flush rank); with a
     [shard_placeholder] the non-owned jobs are not even executed — the
     driver's reduce sees placeholders there, and the real values are
     reconstructed from the sibling shards at merge time. *)
  let shard = Shard.ambient () in
  let journal_pos j_index =
    match shard with
    | None -> Some None
    | Some sh ->
      if Shard.owns sh ~total:len j_index then
        Some (Some (Shard.rank sh ~total:len j_index))
      else None
  in
  (* Resolve cached jobs from the resume ledger up front: their results
     are replayed into the new ledger verbatim and their executions are
     skipped entirely. *)
  (match (journal, codec) with
  | Some jn, Some c ->
    Array.iter
      (fun j ->
        match Runlog.cached_value jn ~codec:c ~index:j.index ~seed:j.seed with
        | Some (v, r) ->
          results.(j.index) <- Some v;
          ignore (Atomic.fetch_and_add errors r.Runlog.errors);
          (match journal_pos j.index with
          | Some pos -> Runlog.replay ?pos jn r
          | None -> ())
        | None -> ())
      arr
  | Some _, None -> invalid_arg "Exec.run: ~journal requires ~codec"
  | None, _ -> ());
  let cached =
    Array.fold_left
      (fun n r -> if Option.is_some r then n + 1 else n)
      0 results
  in
  (match label with
  | Some l when cached > 0 ->
    info (Printf.sprintf "%s: resuming with %d/%d cached job(s)" l cached len)
  | _ -> ());
  let skipped = ref 0 in
  (match (shard, shard_placeholder) with
  | Some sh, Some ph ->
    Array.iter
      (fun j ->
        if
          (not (Shard.owns sh ~total:len j.index))
          && Option.is_none results.(j.index)
        then begin
          results.(j.index) <- Some (ph j.payload);
          incr skipped
        end)
      arr
  | _ -> ());
  let tick =
    make_ticker ~label ~execs_per_job ~total:len ~cached ~skipped:!skipped
  in
  let completed = Atomic.make (cached + !skipped) in
  let fresh =
    Array.of_list (List.filter (fun j -> Option.is_none results.(j.index)) jobs)
  in
  let exec =
    instrumented ?label
      ~f:(fun j -> f ~seed:j.seed j.payload)
      ~queued_at:(Unix.gettimeofday ())
  in
  let reduce () =
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  in
  let flen = Array.length fresh in
  if flen = 0 then begin
    (* Fully cached resume: a no-op fast path.  No pool, no watchdog, no
       supervision — [f] is never called; only the final progress tick is
       emitted. *)
    if len > 0 then
      tick len (if count_errors then Some (Atomic.get errors) else None);
    reduce ()
  end
  else begin
    let finish_job j v duration_s ~attempts =
      let errs =
        match codec with Some c -> c.Runlog.errors_of v | None -> 0
      in
      (match (journal, journal_pos j.index) with
      | Some jn, Some pos ->
        let c = Option.get codec in
        Runlog.record jn ?pos ~index:j.index ~seed:j.seed ~errors:errs
          ~duration_s ~attempts
          (c.Runlog.encode v)
      | _ -> ());
      results.(j.index) <- Some v;
      if count_errors then ignore (Atomic.fetch_and_add errors errs);
      tick
        (1 + Atomic.fetch_and_add completed 1)
        (if count_errors then Some (Atomic.get errors) else None)
    in
    let sup = Atomic.get supervision_hook in
    let domains = Int.min (domains_of_backend backend) flen in
    let slots =
      match sup with
      | Some _ -> Array.init (Int.max 1 domains) (fun _ -> make_slot ())
      | None -> [||]
    in
    let label_str = match label with Some l -> l | None -> "run" in
    let process ~worker k =
      let j = fresh.(k) in
      match sup with
      | None ->
        let v, duration_s = exec ~worker j in
        finish_job j v duration_s ~attempts:1
      | Some s -> (
        let slot = slots.(worker) in
        Domain.DLS.set slot_key (Some slot);
        let t0 = Unix.gettimeofday () in
        match
          supervise ~sup:s ~slot ~index:j.index ~seed:j.seed
            ~compute:(fun ~seed -> exec ~worker { j with seed })
        with
        | Ok ((v, duration_s), attempts) -> finish_job j v duration_s ~attempts
        | Error (reason, timed_out, attempts) -> (
          let fl =
            { f_label = label_str; f_index = j.index; f_seed = j.seed;
              f_attempts = attempts; f_reason = reason; f_timed_out = timed_out }
          in
          match quarantine with
          | Some q when s.keep_going ->
            (* Quarantine the poison job: a failed ledger record keeps the
               plan-order stream whole (and is re-run on resume), the
               caller's fallback value keeps the reduction total. *)
            note_quarantine fl;
            (match (journal, journal_pos j.index) with
            | Some jn, Some pos ->
              Runlog.record_failure jn ?pos ~index:j.index ~seed:j.seed
                ~attempts
                ~duration_s:(Unix.gettimeofday () -. t0)
                reason
            | _ -> ());
            let v = q j.payload fl in
            results.(j.index) <- Some v;
            if count_errors then
              ignore
                (Atomic.fetch_and_add errors
                   (match codec with
                   | Some c -> c.Runlog.errors_of v
                   | None -> 0));
            tick
              (1 + Atomic.fetch_and_add completed 1)
              (if count_errors then Some (Atomic.get errors) else None)
          | Some _ | None -> raise (Job_failed fl)))
    in
    with_watchdog ~sup slots (fun () ->
        if domains <= 1 then
          for k = 0 to flen - 1 do
            process ~worker:0 k
          done
        else pool_iter ~domains ~stop:(fun () -> false) ~process flen);
    (* The caller domain keeps its DLS across runs; clear the slot so a
       later unsupervised poll can never see a stale cancellation. *)
    if sup <> None then Domain.DLS.set slot_key None;
    reduce ()
  end

let for_all ?(backend = Serial) ~seed ~f payloads =
  tune_gc ();
  let jobs = plan ~seed payloads in
  let njobs = List.length jobs in
  if njobs = 0 then true
  else begin
    let sup = Atomic.get supervision_hook in
    let domains = Int.min (domains_of_backend backend) njobs in
    let slots =
      match sup with
      | Some _ -> Array.init (Int.max 1 domains) (fun _ -> make_slot ())
      | None -> [||]
    in
    let eval ~worker j =
      match sup with
      | None -> f ~seed:j.seed j.payload
      | Some s -> (
        let slot = slots.(worker) in
        Domain.DLS.set slot_key (Some slot);
        match
          supervise ~sup:s ~slot ~index:j.index ~seed:j.seed
            ~compute:(fun ~seed -> f ~seed j.payload)
        with
        | Ok (b, _) -> b
        | Error (reason, timed_out, attempts) ->
          let fl =
            { f_label = "for_all"; f_index = j.index; f_seed = j.seed;
              f_attempts = attempts; f_reason = reason; f_timed_out = timed_out }
          in
          if s.keep_going then begin
            (* Quarantined check: conservatively counted as a failure of
               the universal property. *)
            note_quarantine fl;
            false
          end
          else raise (Job_failed fl))
    in
    let failed = Atomic.make false in
    let body () =
      if domains <= 1 then (
        try
          List.iter
            (fun j ->
              if not (eval ~worker:0 j) then begin
                Atomic.set failed true;
                raise Exit
              end)
            jobs
        with Exit -> ())
      else begin
        let arr = Array.of_list jobs in
        pool_iter ~domains
          ~stop:(fun () -> Atomic.get failed)
          ~process:(fun ~worker i ->
            if not (eval ~worker arr.(i)) then Atomic.set failed true)
          njobs
      end
    in
    with_watchdog ~sup slots body;
    if sup <> None then Domain.DLS.set slot_key None;
    not (Atomic.get failed)
  end
