type measurement = {
  runtime : float;
  energy : float;
  discarded : int;
}

let measure ~chip ~app ~fencing ~runs ~seed =
  let total_runtime = ref 0.0 in
  let total_energy = ref 0.0 in
  let kept = ref 0 in
  let discarded = ref 0 in
  for i = 0 to runs - 1 do
    Gpusim.Sim.with_sim ~chip ~seed:(Gpusim.Rng.subseed seed i) (fun sim ->
        match app.Apps.App.run sim fencing with
        | Ok () ->
          incr kept;
          total_runtime :=
            !total_runtime +. float_of_int (Gpusim.Sim.elapsed_cycles sim);
          total_energy := !total_energy +. Gpusim.Sim.consumed_energy sim
        | Error _ -> incr discarded)
  done;
  let n = float_of_int (Int.max 1 !kept) in
  { runtime = !total_runtime /. n; energy = !total_energy /. n;
    discarded = !discarded }

type point = {
  chip : string;
  app : string;
  nvml : bool;
  no_fences : measurement;
  emp : measurement;
  cons : measurement;
  emp_count : int;
}

(* ------------------------------------------------------------------ *)
(* Ledger codecs                                                        *)

let measurement_to_json m =
  Json.Assoc
    [ ("runtime", Json.Float m.runtime);
      ("energy", Json.Float m.energy);
      ("discarded", Json.Int m.discarded) ]

let measurement_of_json j =
  let open Runlog.Dec in
  let* runtime = float "runtime" j in
  let* energy = float "energy" j in
  let* discarded = int "discarded" j in
  Ok { runtime; energy; discarded }

let point_to_json p =
  Json.Assoc
    [ ("chip", Json.String p.chip);
      ("app", Json.String p.app);
      ("nvml", Json.Bool p.nvml);
      ("no_fences", measurement_to_json p.no_fences);
      ("emp", measurement_to_json p.emp);
      ("cons", measurement_to_json p.cons);
      ("emp_count", Json.Int p.emp_count) ]

let point_of_json j =
  let open Runlog.Dec in
  let* chip = str "chip" j in
  let* app = str "app" j in
  let* nvml = bool "nvml" j in
  let* nj = field "no_fences" j in
  let* no_fences = measurement_of_json nj in
  let* ej = field "emp" j in
  let* emp = measurement_of_json ej in
  let* cj = field "cons" j in
  let* cons = measurement_of_json cj in
  let* emp_count = int "emp_count" j in
  Ok { chip; app; nvml; no_fences; emp; cons; emp_count }

let point_codec =
  { Runlog.encode = point_to_json; decode = point_of_json;
    errors_of =
      (fun p ->
        p.no_fences.discarded + p.emp.discarded + p.cons.discarded) }

let points_to_json ps = Json.List (List.map point_to_json ps)

let points_of_json j =
  match Json.to_list j with
  | None -> Error "cost points: expected a list"
  | Some ps -> Runlog.Dec.all point_of_json ps

let run ?backend ?journal ~chips ~apps ~emp_for ~runs ~seed () =
  (* Plan: one job per (chip, app) benchmark point; the three fencing
     variants inside a job draw sub-seeds 0/1/2 from the job seed. *)
  let grid =
    List.concat_map
      (fun chip -> List.map (fun app -> (chip, app)) apps)
      chips
  in
  Exec.run ?backend ~label:"fence-cost"
    ?journal:(Option.map (fun j -> Runlog.extend j "cost") journal)
    ~quarantine:(fun (chip, app) _ ->
      let zero = { runtime = 0.0; energy = 0.0; discarded = 0 } in
      { chip = chip.Gpusim.Chip.name; app = app.Apps.App.name;
        nvml = chip.Gpusim.Chip.cost.nvml_supported; no_fences = zero;
        emp = zero; cons = zero; emp_count = 0 })
    ~codec:point_codec ~execs_per_job:(3 * runs) ~seed
    ~f:(fun ~seed (chip, app) ->
      let emp_fences = emp_for chip app in
      let m i fencing =
        measure ~chip ~app ~fencing ~runs ~seed:(Gpusim.Rng.subseed seed i)
      in
      { chip = chip.Gpusim.Chip.name; app = app.Apps.App.name;
        nvml = chip.Gpusim.Chip.cost.nvml_supported;
        no_fences = m 0 Apps.App.Stripped;
        emp = m 1 (Apps.App.Sites emp_fences);
        cons = m 2 Apps.App.Conservative;
        emp_count = List.length emp_fences })
    grid

let overhead_pct ~base v = if base <= 0.0 then 0.0 else (v -. base) /. base *. 100.0

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

type summary = {
  median_emp_runtime_pct : float;
  median_cons_runtime_pct : float;
  median_emp_energy_pct : float;
  median_cons_energy_pct : float;
  max_emp_runtime_pct : float;
  max_cons_runtime_pct : float;
}

let summarise points =
  let rt_emp =
    List.map (fun p -> overhead_pct ~base:p.no_fences.runtime p.emp.runtime) points
  in
  let rt_cons =
    List.map (fun p -> overhead_pct ~base:p.no_fences.runtime p.cons.runtime) points
  in
  let nvml_points = List.filter (fun p -> p.nvml) points in
  let en_emp =
    List.map (fun p -> overhead_pct ~base:p.no_fences.energy p.emp.energy) nvml_points
  in
  let en_cons =
    List.map (fun p -> overhead_pct ~base:p.no_fences.energy p.cons.energy) nvml_points
  in
  { median_emp_runtime_pct = median rt_emp;
    median_cons_runtime_pct = median rt_cons;
    median_emp_energy_pct = median en_emp;
    median_cons_energy_pct = median en_cons;
    max_emp_runtime_pct = List.fold_left Float.max 0.0 rt_emp;
    max_cons_runtime_pct = List.fold_left Float.max 0.0 rt_cons }
