(** The cost of fences (Sec. 6, Fig. 5).

    Applications are benchmarked natively (no testing environment) under
    three fencing strategies: no fences, the empirically inserted fences,
    and a conservative fence after every global access.  Runtime is the
    simulator's modelled cycle count per execution (the analogue of CUDA
    events); energy comes from the per-chip cost model (the analogue of
    NVML sampling, and like the paper's numbers it is an estimate).
    Runs that fail the post-condition are discarded, as in the paper. *)

type measurement = {
  runtime : float;  (** mean modelled cycles per execution *)
  energy : float;  (** mean modelled energy per execution *)
  discarded : int;  (** erroneous runs excluded from the mean *)
}

val measure :
  chip:Gpusim.Chip.t ->
  app:Apps.App.t ->
  fencing:Apps.App.fencing ->
  runs:int ->
  seed:int ->
  measurement

type point = {
  chip : string;
  app : string;
  nvml : bool;  (** chip supports power queries (energy column valid) *)
  no_fences : measurement;
  emp : measurement;
  cons : measurement;
  emp_count : int;  (** number of empirically inserted fences *)
}

val run :
  ?backend:Exec.backend ->
  ?journal:Runlog.journal ->
  chips:Gpusim.Chip.t list ->
  apps:Apps.App.t list ->
  emp_for:(Gpusim.Chip.t -> Apps.App.t -> (string * int) list) ->
  runs:int ->
  seed:int ->
  unit ->
  point list
(** One {!Exec} job per (chip, app) point; results are bit-identical
    across executor backends at the same seed.  [emp_for] runs inside
    the job, so keep it serial when [backend] is parallel.  [journal]
    journals each point under phase ["cost"]; on resume, cached points
    skip their (expensive, nested-hardening) [emp_for] entirely. *)

(** {1 Ledger codecs} *)

val point_to_json : point -> Json.t
val point_of_json : Json.t -> (point, string) result
val point_codec : point Runlog.codec
val points_to_json : point list -> Json.t
val points_of_json : Json.t -> (point list, string) result

val overhead_pct : base:float -> float -> float
(** [(v - base) / base * 100]. *)

type summary = {
  median_emp_runtime_pct : float;
  median_cons_runtime_pct : float;
  median_emp_energy_pct : float;  (** over NVML-capable chips only *)
  median_cons_energy_pct : float;
  max_emp_runtime_pct : float;
  max_cons_runtime_pct : float;
}

val summarise : point list -> summary
