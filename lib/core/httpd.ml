(* A deliberately tiny HTTP/1.0 server over Unix sockets — just enough
   to expose /metrics and /status on a campaign without pulling in a
   web stack.  One accept-loop domain, one short-lived connection per
   request, Connection: close.  Observability must never take the
   campaign down: every per-connection failure is swallowed, and
   [stop] wakes the accept loop through a self-pipe so shutdown cannot
   hang on a quiet port. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

let respond ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body
    =
  { status; content_type; body }

type t = {
  sock : Unix.file_descr;
  port : int;
  stop_r : Unix.file_descr;  (* self-pipe: read side lives in the loop *)
  stop_w : Unix.file_descr;
  dom : unit Domain.t;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_response fd r =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      r.status (status_text r.status) r.content_type
      (String.length r.body)
  in
  let msg = head ^ r.body in
  let n = String.length msg in
  let pos = ref 0 in
  while !pos < n do
    let written = Unix.write_substring fd msg !pos (n - !pos) in
    if written = 0 then pos := n else pos := !pos + written
  done

(* Read until the end of the request head (or a size cap — we never
   accept bodies) and return the request line's path. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      let seen = Buffer.contents buf in
      let have_head =
        let rec find i =
          if i + 3 >= String.length seen then false
          else if String.sub seen i 4 = "\r\n\r\n" then true
          else find (i + 1)
        in
        String.length seen >= 4 && find 0
      in
      if have_head then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> None
  in
  match go () with
  | None -> None
  | Some raw -> (
    match String.index_opt raw '\n' with
    | None -> None
    | Some i ->
      let line = String.trim (String.sub raw 0 i) in
      (match String.split_on_char ' ' line with
      | meth :: path :: _ ->
        (* Strip any query string — the endpoints take none. *)
        let path =
          match String.index_opt path '?' with
          | Some q -> String.sub path 0 q
          | None -> path
        in
        Some (meth, path)
      | _ -> None))

let serve_connection handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | None -> ()
      | Some (meth, path) ->
        let resp =
          if meth <> "GET" && meth <> "HEAD" then
            respond ~status:405 "method not allowed\n"
          else
            match handler path with
            | r -> r
            | exception _ -> respond ~status:500 "internal error\n"
        in
        let resp = if meth = "HEAD" then { resp with body = "" } else resp in
        (try write_response fd resp with Unix.Unix_error _ -> ()))

let start ?(addr = "127.0.0.1") ~port handler =
  (* A client that disconnects mid-response must surface as an EPIPE
     [Unix_error] (swallowed by the per-connection handlers below), not
     as a SIGPIPE whose default action kills the whole campaign. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  let dom =
    Domain.spawn (fun () ->
        let running = ref true in
        while !running do
          match Unix.select [ sock; stop_r ] [] [] (-1.0) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, _, _ ->
            if List.mem stop_r readable then running := false
            else if List.mem sock readable then begin
              match Unix.accept sock with
              | fd, _ ->
                (* Connections are served synchronously on this domain:
                   a client that stalls mid-request would otherwise
                   block every other scraper and wedge [stop]'s
                   Domain.join (the self-pipe wakes the select, not an
                   in-flight read).  Bound each read/write instead;
                   timeouts surface as EAGAIN [Unix_error]s, which the
                   handlers treat as a dropped client. *)
                (try
                   Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
                   Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
                 with Unix.Unix_error _ -> ());
                serve_connection handler fd
              | exception Unix.Unix_error _ -> ()
            end
        done)
  in
  { sock; port; stop_r; stop_w; dom }

let port t = t.port

let stop t =
  (* One byte on the self-pipe wakes the select; then reap and close. *)
  (try ignore (Unix.write_substring t.stop_w "x" 0 1)
   with Unix.Unix_error _ -> ());
  Domain.join t.dom;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.sock; t.stop_r; t.stop_w ]

(* ------------------------------------------------------------------ *)
(* A matching micro-client, for tests and the bench harness.           *)

let fetch ?(addr = "127.0.0.1") ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> (
          match int_of_string_opt code with Some c -> c | None -> 0)
        | _ -> 0
      in
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        let start = find 0 in
        String.sub raw start (String.length raw - start)
      in
      (status, body))
