(** Deterministic plan/execute/reduce engine for campaign drivers.

    Every campaign in this repository is a large grid of independent
    simulated executions; the paper's methodology is throughput-bound
    (~0.5 billion litmus executions for tuning, an hour of application
    runs per Table 5 cell).  This module decouples {e what} a campaign
    computes from {e how} its jobs are scheduled:

    {ol
    {- {b Plan}: the driver flattens its parameter grid into a list of
       payloads; {!plan} assigns each job a pre-derived seed
       ([Rng.subseed master_seed index]), so a job's result is a pure
       function of [(seed, payload)] — never of execution order.}
    {- {b Execute}: a pluggable {!backend} runs the jobs — [Serial] on
       the calling domain, or [Parallel n] on a fixed pool of OCaml 5
       domains pulling index chunks from a shared atomic work queue.}
    {- {b Reduce}: results are returned in plan order regardless of
       completion order, so drivers merge them back into their result
       types deterministically.}}

    {b Guarantee}: for a pure job function, [Parallel n] output is
    bit-identical to [Serial] at the same seed, for every [n] (enforced
    by property tests in [test/test_exec.ml]).

    The engine also owns progress reporting (jobs completed, execs/sec);
    drivers no longer thread ad-hoc [~progress] callbacks. *)

type backend =
  | Serial  (** run jobs in plan order on the calling domain *)
  | Parallel of int
      (** [Parallel n]: a pool of [n] domains (the caller participates);
          [Parallel 1] behaves like [Serial] *)
  | Processes of int
      (** [Processes n]: the campaign is sharded across [n] worker
          {e subprocesses}, each with its own GC — the escape hatch from
          OCaml 5's stop-the-world shared minor collector.  The fan-out
          itself happens a layer above this module ({!Procs}, driven by
          the CLI, which knows the command line to self-exec with
          [--shard k/n]); inside [Exec] this backend executes on a
          single domain, which is exactly what a worker child and the
          parent's final replay-from-shard-caches pass need. *)

val serial : backend

val max_jobs : int
(** 512 — the upper bound of the sane [--jobs] range. *)

val clamp_jobs : ?warn:bool -> int -> int
(** Clamp a jobs value into [1 .. max_jobs].  Logs a warning when the
    value actually changes (suppressed with [~warn:false]). *)

val backend_of_jobs : int -> backend
(** [backend_of_jobs n] is [Serial] when [n <= 1], else [Parallel n] with
    [n] silently clamped to {!max_jobs}. *)

val jobs_of_backend : backend -> int
(** The advertised parallel width ([n] for both [Parallel n] and
    [Processes n], 1 for [Serial]). *)

val default_jobs : unit -> int
(** The [GPUWMM_JOBS] environment variable if set to an integer (clamped
    into [1 .. max_jobs], with a warning when out of range), else
    [Domain.recommended_domain_count ()]. *)

val default_backend : unit -> backend
(** [backend_of_jobs (default_jobs ())]. *)

val default_minor_heap_words : int
(** The minor-heap size {!tune_gc} installs by default (16 MiB per
    domain).  {!Procs} divides it across worker subprocesses so a
    process-sharded campaign keeps the same total memory budget. *)

val tune_gc : unit -> unit
(** Tune the calling domain's GC for campaign throughput (idempotent per
    domain; every executor entry point and worker calls it).  Grows the
    minor heap — 16 MiB per domain by default — so that OCaml 5's
    stop-the-world minor collections stop serialising worker domains,
    which is the dominant parallel-scaling cost for allocation-heavy
    simulation.  [GPUWMM_GC=<words>] overrides the minor-heap size;
    [GPUWMM_GC=off] leaves the runtime defaults untouched.  Never affects
    results, only scheduling of collections. *)

type 'a job = {
  index : int;  (** position in the plan, [0..n-1] *)
  seed : int;  (** [Rng.subseed master_seed index], derived up front *)
  payload : 'a;
}

val plan : seed:int -> 'a list -> 'a job list
(** Pair each payload with its plan index and pre-derived seed.  The
    seed sequence equals the [Rng.bits30] stream of
    [Rng.create seed] — exactly what the drivers' former sequential
    loops drew, so planned campaigns reproduce historical results. *)

val map :
  ?backend:backend ->
  ?label:string ->
  ?execs_per_job:int ->
  f:('a job -> 'b) ->
  'a job list ->
  'b list
(** Execute all jobs and return their results in plan order.  [f] must
    be pure (up to its own fresh simulator state) for the backend
    guarantee to hold.  [label] names the campaign in progress messages
    and in recorded spans; [execs_per_job] scales the reported execs/sec
    throughput.  An exception raised by any job is re-raised after the
    pool drains.

    Every completed job bumps the [exec.jobs] counter and the
    [exec.run_seconds] / [exec.queue_wait_seconds] histograms in
    {!Telemetry}; when {!Telemetry.set_spans} is on, each job also
    records a span with its worker slot and schedule.  Instrumentation
    never affects results. *)

type failure = {
  f_label : string;  (** campaign label (or ["for_all"], ["run"]) *)
  f_index : int;  (** plan index of the poison job *)
  f_seed : int;
  f_attempts : int;  (** attempts consumed, including the first *)
  f_reason : string;  (** printed exception or timeout description *)
  f_timed_out : bool;
}
(** A job that exhausted its supervised attempts (see {1:supervision}
    Supervision below). *)

val run :
  ?backend:backend ->
  ?label:string ->
  ?execs_per_job:int ->
  ?journal:Runlog.journal ->
  ?codec:'b Runlog.codec ->
  ?quarantine:('a -> failure -> 'b) ->
  ?shard_placeholder:('a -> 'b) ->
  seed:int ->
  f:(seed:int -> 'a -> 'b) ->
  'a list ->
  'b list
(** [run ~seed ~f payloads]: the common plan-then-execute composition.

    With [~journal] (which requires [~codec]), the run is {e journaled}:
    every completed job appends a record to the journal's {!Runlog}
    sink, in plan order regardless of completion order, and jobs found
    in the journal's resume cache are replayed from their recorded
    payloads instead of executing — [f] is never called for them.  When
    {e every} job is cached the pool (and watchdog) is never started at
    all.  Raises [Failure] if a cached record's seed disagrees with the
    plan (resuming a ledger from a different campaign) rather than
    silently mixing results.

    With [~codec] the progress line additionally reports the error rate
    so far ([codec.errors_of] summed over completed jobs, scaled by
    [execs_per_job]).

    Under an installed {!set_supervision} policy, each job runs as a
    bounded sequence of attempts (timeout-cancelled, retried with the
    {e same} seed so a successful retry is bit-identical to a fault-free
    run).  A job whose attempts are exhausted is {e quarantined} when the
    policy says [keep_going] and [~quarantine] provides a fallback value:
    a [failed] record is written to the journal, the failure is added to
    the degradation summary ({!drain_summary}) and the campaign
    continues.  Without [keep_going] (or without a fallback) the engine
    raises {!Job_failed}.

    Under an ambient {!Shard.set_ambient} [k/N] shard, only the owned
    slice of the plan is journalled, each record keyed at its dense
    shard-local flush rank ({!Shard.rank}) so the shard ledger streams
    gap-free; per-job seeds are the unsharded ones.  With
    [~shard_placeholder] the non-owned jobs are not executed at all —
    their result slots are filled with the (cheap, never-journalled)
    placeholder, which is what gives a shard its [1/N] runtime; the true
    values are reassembled from the sibling shards by [gpuwmm merge].
    Drivers whose later phases depend on every result (the adaptive
    finders) simply omit it: every shard then executes the full plan but
    still journals only its own slice. *)

val for_all :
  ?backend:backend ->
  seed:int ->
  f:(seed:int -> 'a -> bool) ->
  'a list ->
  bool
(** [true] iff [f] holds for every planned job.  Both backends
    short-circuit once a failure is known (serially by early exit, in
    parallel via a shared abort flag); the boolean is bit-identical
    across backends because it does not depend on which jobs were
    skipped.  Under supervision, a quarantined job counts as [false]
    when the policy says [keep_going], else {!Job_failed} is raised. *)

(** {1 Supervision}

    A process-wide execution policy: per-attempt wall-clock timeout
    enforced by a watchdog domain through cooperative cancellation
    (domains cannot be killed; the simulator polls {!poll} every 1024
    scheduler ticks), bounded retry with deterministic seed-derived
    backoff, and quarantine of poison jobs under [keep_going].  An
    optional {!Fault.plan} injects executor-level faults for chaos
    testing.  Installed ambiently (like {!set_progress}) so every
    campaign driver inherits it without signature changes. *)

type supervision = {
  timeout_s : float option;  (** per-attempt wall-clock budget *)
  retries : int;  (** extra attempts after the first *)
  backoff_s : float;
      (** base backoff before a retry; the actual sleep is
          [backoff_s * 2^attempt] scaled by a seed-derived jitter in
          [\[0.5, 1.5)] — deterministic schedule, wall-clock only *)
  keep_going : bool;  (** quarantine poison jobs instead of aborting *)
  faults : Fault.plan option;  (** executor-level fault injection *)
}

val supervision :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?keep_going:bool ->
  ?faults:Fault.plan ->
  unit ->
  supervision
(** Defaults: no timeout, no retries, no backoff, abort on failure, no
    faults — equivalent to unsupervised execution. *)

val set_supervision : supervision option -> unit
(** Install (or clear) the process-wide policy.  Also clears the pending
    degradation summary and installs/removes the simulator poll hook. *)

val supervised : unit -> supervision option

exception Job_failed of failure
(** Raised (after the pool drains) when a job exhausts its attempts and
    the policy does not allow degradation. *)

exception Timed_out
(** Raised at a poll point inside a cancelled attempt.  Escapes to the
    supervision layer only; user code never sees it. *)

val poll : unit -> unit
(** Cooperative cancellation point: raises {!Timed_out} iff the calling
    worker's current attempt has been cancelled by the watchdog.  Cheap
    (two atomic reads); long-running job functions outside the simulator
    may call it directly. *)

type summary = {
  retried : int;  (** retry attempts performed since the last drain *)
  quarantined : failure list;  (** sorted by (label, index) *)
}

val drain_summary : unit -> summary
(** Return and reset the accumulated degradation summary.  The CLI calls
    this once per campaign to print the summary and pick the exit
    code. *)

val summary_counts : unit -> int * int
(** [(retried, quarantined)] so far, without draining — the heartbeat
    emitter's periodic view; {!drain_summary} still sees everything. *)

type reporter = {
  line : string -> unit;
      (** one rate-limited progress line: completed/total jobs,
          throughput, error rate (when countable) and EWMA-based ETA *)
  finished : unit -> unit;
      (** called once after the final line of a campaign — lets a
          tty reporter terminate its in-place [\r] line *)
}

val set_progress : reporter option -> unit
(** Install (or clear) the global progress sink.  The CLI points this
    at a [\r]-updating stderr line when stderr is a tty, at [Logs]
    under [-v], and clears it under [--quiet]; when unset, campaigns
    run silently. *)

val info : string -> unit
(** Forward one message to the progress sink, if installed.  For the few
    driver-level milestones that are not per-job (e.g. hardening
    rounds). *)

val format_eta : float -> string
(** Human-readable duration (["02:35"], ["1h05m"]); ["-"] for negative
    or non-finite values. *)

(** {1 Published progress}

    The engine's live view of the newest campaign phase, refreshed by
    the progress ticker about once a second {e whether or not} a
    reporter is installed — quiet shard workers still publish, which is
    what their heartbeat stream ({!Heartbeat}) and the [/status]
    endpoint sample. *)

type progress = {
  p_label : string;  (** campaign label *)
  p_total : int;  (** planned jobs (shard-local under an ambient shard) *)
  p_done : int;  (** completed jobs, including cached replays *)
  p_cached : int;  (** jobs replayed from a resume cache *)
  p_errors : int;  (** erroneous executions so far (0 when uncountable) *)
  p_rate : float;  (** EWMA jobs/s; 0.0 until warm *)
  p_eta_s : float option;
      (** ETA in seconds; [None] until the estimate has a basis (at
          least two live completions) *)
  p_updated : float;  (** wall clock of the last refresh *)
}

val progress : unit -> progress option
(** The most recent snapshot, or [None] before any ticked campaign. *)

val clear_progress : unit -> unit

val eta_of : live_done:int -> remaining:int -> ewma:float -> float option
(** The ticker's ETA rule: [Some (remaining / ewma)] only once at least
    two live (non-cached) jobs completed and the EWMA is warm —
    guarding against the wild single-sample estimates a cold start used
    to print on slow campaigns. *)
