(** Deterministic plan/execute/reduce engine for campaign drivers.

    Every campaign in this repository is a large grid of independent
    simulated executions; the paper's methodology is throughput-bound
    (~0.5 billion litmus executions for tuning, an hour of application
    runs per Table 5 cell).  This module decouples {e what} a campaign
    computes from {e how} its jobs are scheduled:

    {ol
    {- {b Plan}: the driver flattens its parameter grid into a list of
       payloads; {!plan} assigns each job a pre-derived seed
       ([Rng.subseed master_seed index]), so a job's result is a pure
       function of [(seed, payload)] — never of execution order.}
    {- {b Execute}: a pluggable {!backend} runs the jobs — [Serial] on
       the calling domain, or [Parallel n] on a fixed pool of OCaml 5
       domains pulling index chunks from a shared atomic work queue.}
    {- {b Reduce}: results are returned in plan order regardless of
       completion order, so drivers merge them back into their result
       types deterministically.}}

    {b Guarantee}: for a pure job function, [Parallel n] output is
    bit-identical to [Serial] at the same seed, for every [n] (enforced
    by property tests in [test/test_exec.ml]).

    The engine also owns progress reporting (jobs completed, execs/sec);
    drivers no longer thread ad-hoc [~progress] callbacks. *)

type backend =
  | Serial  (** run jobs in plan order on the calling domain *)
  | Parallel of int
      (** [Parallel n]: a pool of [n] domains (the caller participates);
          [Parallel 1] behaves like [Serial] *)

val serial : backend

val backend_of_jobs : int -> backend
(** [backend_of_jobs n] is [Serial] when [n <= 1], else [Parallel n]. *)

val jobs_of_backend : backend -> int

val default_jobs : unit -> int
(** The [GPUWMM_JOBS] environment variable if set to a positive integer,
    else [Domain.recommended_domain_count ()]. *)

val default_backend : unit -> backend
(** [backend_of_jobs (default_jobs ())]. *)

type 'a job = {
  index : int;  (** position in the plan, [0..n-1] *)
  seed : int;  (** [Rng.subseed master_seed index], derived up front *)
  payload : 'a;
}

val plan : seed:int -> 'a list -> 'a job list
(** Pair each payload with its plan index and pre-derived seed.  The
    seed sequence equals the [Rng.bits30] stream of
    [Rng.create seed] — exactly what the drivers' former sequential
    loops drew, so planned campaigns reproduce historical results. *)

val map :
  ?backend:backend ->
  ?label:string ->
  ?execs_per_job:int ->
  f:('a job -> 'b) ->
  'a job list ->
  'b list
(** Execute all jobs and return their results in plan order.  [f] must
    be pure (up to its own fresh simulator state) for the backend
    guarantee to hold.  [label] names the campaign in progress messages
    and in recorded spans; [execs_per_job] scales the reported execs/sec
    throughput.  An exception raised by any job is re-raised after the
    pool drains.

    Every completed job bumps the [exec.jobs] counter and the
    [exec.run_seconds] / [exec.queue_wait_seconds] histograms in
    {!Telemetry}; when {!Telemetry.set_spans} is on, each job also
    records a span with its worker slot and schedule.  Instrumentation
    never affects results. *)

val run :
  ?backend:backend ->
  ?label:string ->
  ?execs_per_job:int ->
  ?journal:Runlog.journal ->
  ?codec:'b Runlog.codec ->
  seed:int ->
  f:(seed:int -> 'a -> 'b) ->
  'a list ->
  'b list
(** [run ~seed ~f payloads]: the common plan-then-execute composition.

    With [~journal] (which requires [~codec]), the run is {e journaled}:
    every completed job appends a record to the journal's {!Runlog}
    sink, in plan order regardless of completion order, and jobs found
    in the journal's resume cache are replayed from their recorded
    payloads instead of executing — [f] is never called for them.
    Raises [Failure] if a cached record's seed disagrees with the plan
    (resuming a ledger from a different campaign) rather than silently
    mixing results.

    With [~codec] the progress line additionally reports the error rate
    so far ([codec.errors_of] summed over completed jobs, scaled by
    [execs_per_job]). *)

val for_all :
  ?backend:backend ->
  seed:int ->
  f:(seed:int -> 'a -> bool) ->
  'a list ->
  bool
(** [true] iff [f] holds for every planned job.  Both backends
    short-circuit once a failure is known (serially by early exit, in
    parallel via a shared abort flag); the boolean is bit-identical
    across backends because it does not depend on which jobs were
    skipped. *)

type reporter = {
  line : string -> unit;
      (** one rate-limited progress line: completed/total jobs,
          throughput, error rate (when countable) and EWMA-based ETA *)
  finished : unit -> unit;
      (** called once after the final line of a campaign — lets a
          tty reporter terminate its in-place [\r] line *)
}

val set_progress : reporter option -> unit
(** Install (or clear) the global progress sink.  The CLI points this
    at a [\r]-updating stderr line when stderr is a tty, at [Logs]
    under [-v], and clears it under [--quiet]; when unset, campaigns
    run silently. *)

val info : string -> unit
(** Forward one message to the progress sink, if installed.  For the few
    driver-level milestones that are not per-job (e.g. hardening
    rounds). *)
