(** Patch finding (Sec. 3.2, Fig. 3): discovering the granularity at which
    scratchpad locations are interchangeable for stressing.

    For each litmus test T, distance d and scratchpad location l, the
    campaign runs C executions of 〈T_d, l〉 — the test instance with a
    single stressed location — and records the number of weak behaviours.
    A maximal run of contiguous locations each showing more than ε weak
    behaviours is an ε-patch; if all three tests agree on the patch size
    with the most ε-patches, that is the chip's critical patch size. *)

type cell = {
  idiom : Litmus.Test.idiom;
  distance : int;
  location : int;
  weak : int;  (** weak behaviours observed in [runs] executions *)
}

type result = {
  cells : cell list;  (** the full grid, for Fig. 3 *)
  runs : int;
  per_idiom : (Litmus.Test.idiom * int option) list;
      (** modal ε-patch size observed per test, [None] if no patches *)
  critical : int option;
      (** agreed critical patch size, when all tests with patches agree *)
  chosen : int;
      (** the value used downstream: the agreed size, else the modal size
          among the tests that did exhibit patches (the paper's 980
          fallback), else the architectural default *)
}

val run :
  ?backend:Exec.backend ->
  ?journal:Runlog.journal ->
  chip:Gpusim.Chip.t -> seed:int -> budget:Budget.t ->
  unit ->
  result
(** The full (idiom, distance, location) grid is planned, executed and
    reduced through {!Exec}; results are bit-identical across executor
    backends at the same seed.  [journal] journals each grid point's
    weak count under phase ["patch"]. *)

(** {1 Ledger codecs} *)

val idiom_to_json : Litmus.Test.idiom -> Json.t
val idiom_of_json : Json.t -> (Litmus.Test.idiom, string) Stdlib.result
(** Idioms serialise by display name ("MP"/"LB"/"SB"); shared by the
    other finder stages' codecs. *)

val scores_to_json : (Litmus.Test.idiom * int) list -> Json.t
val scores_of_json :
  Json.t -> ((Litmus.Test.idiom * int) list, string) Stdlib.result

val result_to_json : result -> Json.t
val result_of_json : Json.t -> (result, string) Stdlib.result

val patch_sizes_of_row : eps:int -> stride:int -> (int * int) list -> int list
(** [patch_sizes_of_row ~eps ~stride cells] extracts the sizes (in words)
    of maximal contiguous runs of (location, weak) samples exceeding [eps],
    given the sampling [stride].  Exposed for unit testing. *)
