(** Access-sequence finding (Sec. 3.3, Tables 2 and 3).

    Every sequence σ ∈ (ld|st)+ up to length N is scored per litmus test:
    the number of weak behaviours summed over the sampled distances and
    over the first location of each critical-patch-sized region.  The
    winner is Pareto-optimal over the three tests, with the paper's
    tie-break. *)

type scored = {
  sequence : Access_seq.t;
  scores : (Litmus.Test.idiom * int) list;
  total : int;
}

type result = {
  table : scored list;  (** all sequences, sorted by descending total *)
  winner : Access_seq.t;
  patch : int;  (** the critical patch size the campaign used *)
}

val run :
  ?backend:Exec.backend ->
  ?journal:Runlog.journal ->
  chip:Gpusim.Chip.t ->
  seed:int ->
  budget:Budget.t ->
  patch:int ->
  unit ->
  result
(** The (sequence, idiom, distance, location) grid runs through {!Exec};
    results are bit-identical across executor backends at the same
    seed.  [journal] journals each grid point's weak count under phase
    ["seq"]. *)

(** {1 Ledger codecs} *)

val sequence_of_json : Json.t -> (Access_seq.t, string) Stdlib.result
val result_to_json : result -> Json.t
val result_of_json : Json.t -> (result, string) Stdlib.result

val rank_for :
  result -> Litmus.Test.idiom -> (int * Access_seq.t * int) list
(** [(rank, σ, score)] rows for one test, best first — the layout of
    Table 3. *)
