(** Deterministic fault plans for chaos-testing the execution engine.

    A plan is a pure function of [(fault seed, job index, attempt)]: the
    same plan injects the same faults at the same places on every run,
    every backend and every [--jobs] value, which is what makes chaos
    campaigns reproducible and their invariants checkable (the
    [gpuwmm chaos] driver predicts the outcome of every job before
    running it, then verifies the prediction).

    Two layers of faults exist:

    - {e executor-level} faults, drawn from {!at} and injected by the
      supervision layer in [Exec] around a job attempt: a crash
      ({!Raise}), a hang cancelled only by the watchdog ({!Hang}), a
      silently wrong result ({!Corrupt}, the job computes with a
      perturbed seed), and a simulated ledger write failure
      ({!Ledger_fail}, the result is computed but the attempt dies
      before it is recorded);
    - {e simulator-level} transient soft errors (gpuFI-style bit flips
      on store commits), armed via [Gpusim.Sim.set_soft_error_default]
      and carried here only as the plan's {!field-soft_error_rate}. *)

type kind = Raise | Hang | Corrupt | Ledger_fail

exception Injected of string
(** The exception raised by injected {!Raise}, {!Hang} (when no timeout
    is armed) and {!Ledger_fail} faults.  Registered with a stable
    printer so quarantine reasons are deterministic. *)

type plan = {
  seed : int;  (** the fault seed; independent of the campaign seed *)
  rate : float;  (** per-attempt fault probability, in [\[0, 1\]] *)
  kinds : kind list;  (** the fault kinds to draw from (uniformly) *)
  faulty_attempts : int;
      (** attempts [0 .. faulty_attempts - 1] of a job may fault; later
          retries always run clean.  [1] means one retry always heals a
          job; a value above the retry budget creates poison jobs. *)
  soft_error_rate : float;
      (** per-store bit-flip probability for the simulator layer (not
          consulted by {!at}; the chaos driver arms it globally) *)
}

val plan :
  ?rate:float ->
  ?kinds:kind list ->
  ?faulty_attempts:int ->
  ?soft_error_rate:float ->
  seed:int ->
  unit ->
  plan
(** Defaults: [rate = 0.2], [kinds = [Raise]], [faulty_attempts = 1],
    [soft_error_rate = 0.0].  Raises [Invalid_argument] on an empty
    [kinds] list or rates outside [\[0, 1\]]. *)

val at : plan -> index:int -> attempt:int -> kind option
(** The fault injected into attempt [attempt] of job [index] — a pure
    function: no state, no wall clock, only the plan's seed. *)

type prediction = {
  attempts : int;  (** attempts consumed, including the successful one *)
  outcome : [ `Clean | `Corrupted | `Quarantined ];
}

val predict : plan -> retries:int -> index:int -> prediction
(** Replays {!at} over the attempt budget ([retries + 1] attempts):
    [`Clean] if some attempt runs fault-free, [`Corrupted] if the first
    surviving attempt carries a {!Corrupt} fault (the job "succeeds"
    with a wrong result), [`Quarantined] if every attempt faults
    fatally. *)

val kind_name : kind -> string
val parse_kinds : string -> (kind list, string) result
(** Comma-separated kind names ([raise,hang,corrupt,ledger]). *)

val pp : Format.formatter -> plan -> unit
