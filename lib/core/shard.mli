(** Deterministic partitioning of an {!Exec} plan into [k/N] shards.

    Every plan index belongs to exactly one of the [N] shards, and
    per-job seeds are untouched (they are derived from the plan index
    by {!Exec.plan}), so the union of the shard runs is observationally
    identical to the unsharded run.  [rank] gives an owned index's
    position in the shard's own ledger stream; `gpuwmm merge`
    interleaves shard ledgers back into plan order. *)

type strategy =
  | Stride  (** shard [k] of [N] owns indices congruent to [k-1] mod [N] *)
  | Contiguous  (** shard [k] owns the [k]-th of [N] contiguous chunks *)

type t = private { k : int; n : int; strategy : strategy }

val max_shards : int
(** Upper bound on [N] (matches the Exec jobs clamp). *)

val make : ?strategy:strategy -> k:int -> n:int -> unit -> t
(** Raises [Invalid_argument] unless [1 <= k <= n <= max_shards]. *)

val parse : string -> (t, string) result
(** Parse ["k/N"], ["k/N:stride"], ["k/N:contiguous"] (or [:contig]). *)

val to_string : t -> string
(** Canonical rendering; [parse (to_string t) = Ok t].  Stride shards
    render as ["k/N"], contiguous ones as ["k/N:contiguous"]. *)

val strategy_name : strategy -> string

val owns : t -> total:int -> int -> bool
(** [owns t ~total i]: does this shard own plan index [i] of a
    [total]-job plan? *)

val rank : t -> total:int -> int -> int
(** Position of an owned index within the shard's own job stream
    (0-based, dense).  Raises [Invalid_argument] if the shard does not
    own the index. *)

val count : t -> total:int -> int
(** Number of indices this shard owns. *)

val indices : t -> total:int -> int list
(** The owned indices in increasing order. *)

val set_ambient : t option -> unit
(** Install (or clear) the process-wide ambient shard.  {!Exec.run}
    consults it to restrict which jobs are journalled (and, for drivers
    that pass a placeholder, which are executed); {!Runlog.memo}
    consults it so adaptive sequential streams are journalled by shard
    1 only. *)

val ambient : unit -> t option
