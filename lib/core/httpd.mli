(** A minimal HTTP/1.0 server (Unix sockets only) for campaign
    observability endpoints.

    One background domain accepts loopback connections and serves each
    with a single handler call; connections are closed after every
    response ([Connection: close]).  Failures inside a connection are
    swallowed — the server exists to observe a campaign, never to
    interrupt one: [start] ignores [SIGPIPE] process-wide so a client
    disconnecting mid-response surfaces as a swallowed [EPIPE] rather
    than killing the campaign, and every accepted socket carries short
    receive/send timeouts so a stalled client cannot starve other
    scrapers.  [stop] wakes the accept loop through a self-pipe, so
    shutdown is prompt even when no request ever arrives. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

val respond : ?status:int -> ?content_type:string -> string -> response
(** [respond body] is a [200] [text/plain] response by default. *)

type t

val start : ?addr:string -> port:int -> (string -> response) -> t
(** [start ~port handler] binds [addr] (default loopback) on [port]
    — [0] picks a free port, see {!port} — and serves [GET]/[HEAD]
    requests by calling [handler path] (query strings stripped).  A
    handler exception becomes a [500]; other methods get a [405].
    Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The actually bound port (useful with [~port:0]). *)

val stop : t -> unit
(** Stop accepting, join the server domain and close the socket. *)

val fetch : ?addr:string -> port:int -> string -> int * string
(** Blocking micro-client for tests and benches: [fetch ~port path]
    performs one [GET] and returns [(status, body)].  Raises
    [Unix.Unix_error] if the connection fails. *)
