(* ------------------------------------------------------------------ *)
(* Striping                                                             *)

(* Counters and histogram cells are striped: each domain writes its own
   stripe (assigned round-robin on first use) and readers merge on
   demand.  Worker domains therefore never contend on a shared cache
   line while bumping metrics — with a single shared cell, the
   per-completed-job counter updates serialise the whole pool.  Reads
   ({!counter_value}, {!snapshot}) sum the stripes; they are exact
   whenever no writer is concurrently mid-update, which is the same
   consistency the single-cell representation offered. *)
let n_stripes = 8 (* power of two *)

let next_stripe = Atomic.make 0

let stripe_key : int Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Atomic.fetch_and_add next_stripe 1 land (n_stripes - 1))

let stripe () = Domain.DLS.get stripe_key

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)

type counter = int Atomic.t array (* one cell per stripe *)

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let registry_mu = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = Array.init n_stripes (fun _ -> Atomic.make 0) in
        Hashtbl.add counters name c;
        c)

let incr c = Atomic.incr c.(stripe ())
let add c n = ignore (Atomic.fetch_and_add c.(stripe ()) n)

let counter_value c =
  let total = ref 0 in
  Array.iter (fun cell -> total := !total + Atomic.get cell) c;
  !total

(* ------------------------------------------------------------------ *)
(* Histograms                                                           *)

(* Log-scale duration bounds, seconds.  The last bucket is the overflow
   catch-all. *)
let bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; 100.0; infinity |]

type histogram = {
  cells : int Atomic.t array array;  (* stripe -> per-bound cells *)
  sum : float Atomic.t array;  (* stripe -> partial sum *)
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  with_registry (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          { cells =
              Array.init n_stripes (fun _ ->
                  Array.init (Array.length bounds) (fun _ -> Atomic.make 0));
            sum = Array.init n_stripes (fun _ -> Atomic.make 0.0) }
        in
        Hashtbl.add histograms name h;
        h)

(* [compare_and_set] on a boxed float compares the box physically, so
   the retry loop is sound: we only install a new box against the exact
   box we read.  More domains than stripes can share a cell, so the CAS
   loop stays necessary even striped. *)
let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let observe h v =
  let v = Float.max 0.0 v in
  let rec slot i = if v <= bounds.(i) then i else slot (i + 1) in
  let s = stripe () in
  Atomic.incr h.cells.(s).(slot 0);
  atomic_add_float h.sum.(s) v

type histogram_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
}

let snapshot_histogram h =
  let counts =
    Array.init (Array.length bounds) (fun i ->
        let n = ref 0 in
        Array.iter (fun stripe -> n := !n + Atomic.get stripe.(i)) h.cells;
        !n)
  in
  let total = Array.fold_left ( + ) 0 counts in
  let sum = ref 0.0 in
  Array.iter (fun cell -> sum := !sum +. Atomic.get cell) h.sum;
  (* Cumulative "le" semantics, Prometheus-style. *)
  let acc = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i n ->
           acc := !acc + n;
           (bounds.(i), !acc))
         counts)
  in
  { count = total; sum = !sum; buckets }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_snapshot) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_registry (fun () ->
      { counters =
          Hashtbl.fold (fun k c acc -> (k, counter_value c) :: acc) counters []
          |> List.sort by_name;
        histograms =
          Hashtbl.fold
            (fun k h acc -> (k, snapshot_histogram h) :: acc)
            histograms []
          |> List.sort by_name })

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c)
        counters;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (Array.iter (fun c -> Atomic.set c 0)) h.cells;
          Array.iter (fun cell -> Atomic.set cell 0.0) h.sum)
        histograms)

let bound_json b =
  if Float.is_finite b then Json.Float b else Json.String "inf"

let snapshot_to_json s =
  let hist_json (hs : histogram_snapshot) =
    (* Only buckets that gained samples over their predecessor. *)
    let _, nonempty =
      List.fold_left
        (fun (prev, acc) (b, cum) ->
          ( cum,
            if cum > prev then
              Json.Assoc [ ("le", bound_json b); ("n", Json.Int cum) ] :: acc
            else acc ))
        (0, []) hs.buckets
    in
    Json.Assoc
      [ ("count", Json.Int hs.count);
        ("sum", Json.Float hs.sum);
        ("buckets", Json.List (List.rev nonempty)) ]
  in
  Json.Assoc
    [ ( "counters",
        Json.Assoc (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
      ( "histograms",
        Json.Assoc (List.map (fun (k, h) -> (k, hist_json h)) s.histograms) )
    ]

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

type span = {
  label : string;
  index : int;
  worker : int;
  queued_at : float;
  started_at : float;
  ended_at : float;
}

let spans_on = Atomic.make false
let span_log : span list ref = ref []
let span_mu = Mutex.create ()

let clear_spans () =
  Mutex.lock span_mu;
  span_log := [];
  Mutex.unlock span_mu

let set_spans on =
  Atomic.set spans_on on;
  if on then clear_spans ()

let spans_enabled () = Atomic.get spans_on

let record_span s =
  if Atomic.get spans_on then begin
    Mutex.lock span_mu;
    span_log := s :: !span_log;
    Mutex.unlock span_mu
  end

let spans () =
  Mutex.lock span_mu;
  let l = List.rev !span_log in
  Mutex.unlock span_mu;
  l

(* ------------------------------------------------------------------ *)
(* JSONL: a lossless record serialisation                               *)

let record_to_json { Gpusim.Trace.tick; event } =
  let open Json in
  let fields =
    match event with
    | Gpusim.Trace.Launch_begin
        { kernel; grid; block; stress_blocks; stress_threads } ->
      [ ("kernel", String kernel); ("grid", Int grid); ("block", Int block);
        ("stress_blocks", Int stress_blocks);
        ("stress_threads", Int stress_threads) ]
    | Launch_end { outcome; divergence; metrics } ->
      [ ("outcome", String outcome); ("divergence", Bool divergence);
        ("metrics", Assoc (List.map (fun (k, v) -> (k, Int v)) metrics)) ]
    | Access { tid; addr; write; atomic } ->
      [ ("tid", Int tid); ("addr", Int addr); ("write", Bool write);
        ("atomic", Bool atomic) ]
    | Issue { tid; addr; part; is_store } ->
      [ ("tid", Int tid); ("addr", Int addr); ("part", Int part);
        ("is_store", Bool is_store) ]
    | Commit { tid; addr; is_store; value; reordered } ->
      [ ("tid", Int tid); ("addr", Int addr); ("is_store", Bool is_store);
        ("value", Int value); ("reordered", Bool reordered) ]
    | Reorder { tid; overtaken; committed } ->
      [ ("tid", Int tid); ("overtaken", Int overtaken);
        ("committed", Int committed) ]
    | Atomic_rmw { tid; addr; before; after } ->
      [ ("tid", Int tid); ("addr", Int addr); ("before", Int before);
        ("after", Int after) ]
    | Fence { tid; pending; device_scope } ->
      [ ("tid", Int tid); ("pending", Int pending);
        ("device_scope", Bool device_scope) ]
    | Barrier_wait { tid; block } -> [ ("tid", Int tid); ("block", Int block) ]
    | Barrier_release { block; by_exit } ->
      [ ("block", Int block); ("by_exit", Bool by_exit) ]
    | Thread_done { tid; daemon } ->
      [ ("tid", Int tid); ("daemon", Bool daemon) ]
    | Contention { part; read; write } ->
      [ ("part", Int part); ("read", Float read); ("write", Float write) ]
    | Bitflip { tid; addr; bit; before; after } ->
      [ ("tid", Int tid); ("addr", Int addr); ("bit", Int bit);
        ("before", Int before); ("after", Int after) ]
  in
  Assoc
    (("tick", Int tick)
    :: ("ev", String (Gpusim.Trace.event_name event))
    :: fields)

exception Decode of string

let record_of_json j =
  let need k conv =
    match Option.bind (Json.member k j) conv with
    | Some v -> v
    | None -> raise (Decode ("missing or mistyped field " ^ k))
  in
  let i k = need k Json.to_int in
  let b k = need k Json.to_bool in
  let s k = need k Json.to_str in
  let f k = need k Json.to_float in
  let metrics k =
    match Json.member k j with
    | Some (Json.Assoc kvs) ->
      List.map
        (fun (name, v) ->
          match Json.to_int v with
          | Some n -> (name, n)
          | None -> raise (Decode ("non-integer metric " ^ name)))
        kvs
    | _ -> raise (Decode ("missing or mistyped field " ^ k))
  in
  match
    let tick = i "tick" in
    let event =
      match s "ev" with
      | "launch_begin" ->
        Gpusim.Trace.Launch_begin
          { kernel = s "kernel"; grid = i "grid"; block = i "block";
            stress_blocks = i "stress_blocks";
            stress_threads = i "stress_threads" }
      | "launch_end" ->
        Launch_end
          { outcome = s "outcome"; divergence = b "divergence";
            metrics = metrics "metrics" }
      | "access" ->
        Access
          { tid = i "tid"; addr = i "addr"; write = b "write";
            atomic = b "atomic" }
      | "issue" ->
        Issue
          { tid = i "tid"; addr = i "addr"; part = i "part";
            is_store = b "is_store" }
      | "commit" ->
        Commit
          { tid = i "tid"; addr = i "addr"; is_store = b "is_store";
            value = i "value"; reordered = b "reordered" }
      | "reorder" ->
        Reorder
          { tid = i "tid"; overtaken = i "overtaken";
            committed = i "committed" }
      | "atomic_rmw" ->
        Atomic_rmw
          { tid = i "tid"; addr = i "addr"; before = i "before";
            after = i "after" }
      | "fence" ->
        Fence
          { tid = i "tid"; pending = i "pending";
            device_scope = b "device_scope" }
      | "barrier_wait" -> Barrier_wait { tid = i "tid"; block = i "block" }
      | "barrier_release" ->
        Barrier_release { block = i "block"; by_exit = b "by_exit" }
      | "thread_done" -> Thread_done { tid = i "tid"; daemon = b "daemon" }
      | "contention" ->
        Contention { part = i "part"; read = f "read"; write = f "write" }
      | "bitflip" ->
        Bitflip
          { tid = i "tid"; addr = i "addr"; bit = i "bit";
            before = i "before"; after = i "after" }
      | other -> raise (Decode ("unknown event " ^ other))
    in
    { Gpusim.Trace.tick; event }
  with
  | r -> Ok r
  | exception Decode msg -> Error msg

(* Provenance stamp for multi-process exports: prepended fields, so a
   merged stream still says which worker each line came from.
   [record_of_json] ignores unknown fields, keeping the round-trip
   lossless. *)
let stamp ?pid ?shard = function
  | Json.Assoc kvs ->
    Json.Assoc
      ((match pid with Some p -> [ ("pid", Json.Int p) ] | None -> [])
      @ (match shard with Some s -> [ ("shard", Json.String s) ] | None -> [])
      @ kvs)
  | j -> j

let jsonl ?pid ?shard records =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Json.to_string (stamp ?pid ?shard (record_to_json r)));
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let jsonl_parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go acc rest
      else (
        match Json.of_string line with
        | Error e -> Error e
        | Ok j -> (
          match record_of_json j with
          | Error e -> Error e
          | Ok r -> go (r :: acc) rest))
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                            *)

let chrome_of_record ~rec_pid r =
  let { Gpusim.Trace.tick; event } = r in
  let open Json in
  match event with
  | Gpusim.Trace.Contention { part; read; write } ->
    (* Counter tracks: one per partition, plotted by the trace viewer. *)
    Assoc
      [ ("name", String (Printf.sprintf "contention.p%d" part));
        ("ph", String "C"); ("ts", Int tick); ("pid", Int rec_pid);
        ("tid", Int 0);
        ("args", Assoc [ ("read", Float read); ("write", Float write) ]) ]
  | event ->
    let tid =
      match Gpusim.Trace.tid_of_event event with Some t -> t | None -> 0
    in
    let args =
      match record_to_json r with
      | Assoc (("tick", _) :: ("ev", _) :: fields) -> fields
      | _ -> []
    in
    Assoc
      [ ("name", String (Gpusim.Trace.event_name event));
        ("ph", String "i"); ("s", String "t"); ("ts", Int tick);
        ("pid", Int rec_pid); ("tid", Int tid); ("args", Assoc args) ]

let chrome_of_span ~span_pid base s =
  let us t = int_of_float ((t -. base) *. 1e6) in
  Json.Assoc
    [ ("name", Json.String s.label); ("ph", Json.String "X");
      ("ts", Json.Int (us s.started_at));
      ("dur", Json.Int (Int.max 0 (us s.ended_at - us s.started_at)));
      ("pid", Json.Int span_pid); ("tid", Json.Int s.worker);
      ( "args",
        Json.Assoc
          [ ("index", Json.Int s.index);
            ( "queue_wait_us",
              Json.Int (Int.max 0 (us s.started_at - us s.queued_at)) ) ] ) ]

let ts_of = function
  | Json.Assoc kvs -> (
    match List.assoc_opt "ts" kvs with Some (Json.Int t) -> t | _ -> 0)
  | _ -> 0

let chrome_trace ?pid ?shard ?span_base ?(spans = []) records =
  (* Without an explicit pid, simulator records and wall-clock spans
     live on the traditional synthetic tracks 0 and 1.  With ?pid (a
     worker writing its own span file) both carry the real pid, and a
     process_name metadata event labels the track — that is what makes
     `gpuwmm trace --merge` able to union worker files into one
     timeline without colliding tracks. *)
  let rec_pid = match pid with Some p -> p | None -> 0 in
  let span_pid = match pid with Some p -> p | None -> 1 in
  let base =
    match span_base with
    | Some b -> b
    | None ->
      List.fold_left (fun acc s -> Float.min acc s.queued_at) infinity spans
  in
  let meta =
    match pid with
    | None -> []
    | Some p ->
      let name =
        Printf.sprintf "gpuwmm pid %d%s" p
          (match shard with Some s -> " shard " ^ s | None -> "")
      in
      [ Json.Assoc
          [ ("name", Json.String "process_name"); ("ph", Json.String "M");
            ("pid", Json.Int p); ("tid", Json.Int 0);
            ("args", Json.Assoc [ ("name", Json.String name) ]) ] ]
  in
  let events =
    List.map (chrome_of_record ~rec_pid) records
    @ List.map (chrome_of_span ~span_pid base) spans
  in
  let events = List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) events in
  Json.Assoc [ ("traceEvents", Json.List (meta @ events)) ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                           *)

(* Metric names: registry names are dotted ("exec.jobs"); Prometheus
   wants [a-zA-Z0-9_:] with a namespace prefix. *)
let prom_name n =
  "gpuwmm_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      n

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prometheus (s : snapshot) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    s.counters;
  List.iter
    (fun (name, (h : histogram_snapshot)) ->
      let n = prom_name name ^ "_seconds" in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      List.iter
        (fun (bound, cum) ->
          let le =
            if Float.is_finite bound then prom_float bound else "+Inf"
          in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=%S} %d\n" n le cum))
        h.buckets;
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (prom_float h.sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.count))
    s.histograms;
  Buffer.contents b
