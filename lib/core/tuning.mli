(** The complete per-chip tuning pipeline of Sec. 3: patch finding, then
    access-sequence finding, then spread finding, producing the
    systematic-stress parameters of Table 2. *)

type result = {
  chip : string;
  patch : Patch_finder.result;
  sequences : Seq_finder.result;
  spreads : Spread_finder.result;
  tuned : Stress.tuned;
  elapsed_s : float;  (** wall-clock tuning time (the paper reports ~1-4k
                          minutes per physical chip; ours is simulated) *)
}

val run :
  ?backend:Exec.backend ->
  chip:Gpusim.Chip.t ->
  seed:int ->
  budget:Budget.t ->
  unit ->
  result
(** The three stages run in sequence (they are data-dependent); each
    stage's grid executes through {!Exec} with the given [backend].
    Results are bit-identical across backends at the same seed. *)

val shipped : chip:Gpusim.Chip.t -> Stress.tuned
(** The tuned parameters published in Table 2 of the paper, shipped as
    defaults so that users can apply sys-str without re-running the
    multi-hour tuning campaign.  (Patch size per architecture, the
    paper's winning sequence per chip, spread 2.)  A chip without Table 2
    parameters falls back to the untuned ["ld st"] sequence and logs a
    [Logs] warning. *)
