(** The complete per-chip tuning pipeline of Sec. 3: patch finding, then
    access-sequence finding, then spread finding, producing the
    systematic-stress parameters of Table 2. *)

type result = {
  chip : string;
  patch : Patch_finder.result;
  sequences : Seq_finder.result;
  spreads : Spread_finder.result;
  tuned : Stress.tuned;
  elapsed_s : float;  (** wall-clock tuning time (the paper reports ~1-4k
                          minutes per physical chip; ours is simulated) *)
}

val run :
  chip:Gpusim.Chip.t ->
  seed:int ->
  budget:Budget.t ->
  ?progress:(string -> unit) ->
  unit ->
  result

val shipped : chip:Gpusim.Chip.t -> Stress.tuned
(** The tuned parameters published in Table 2 of the paper, shipped as
    defaults so that users can apply sys-str without re-running the
    multi-hour tuning campaign.  (Patch size per architecture, the
    paper's winning sequence per chip, spread 2.) *)
