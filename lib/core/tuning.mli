(** The complete per-chip tuning pipeline of Sec. 3: patch finding, then
    access-sequence finding, then spread finding, producing the
    systematic-stress parameters of Table 2. *)

type result = {
  chip : string;
  patch : Patch_finder.result;
  sequences : Seq_finder.result;
  spreads : Spread_finder.result;
  tuned : Stress.tuned;
  elapsed_s : float;  (** wall-clock tuning time (the paper reports ~1-4k
                          minutes per physical chip; ours is simulated) *)
}

val run :
  ?backend:Exec.backend ->
  ?journal:Runlog.journal ->
  chip:Gpusim.Chip.t ->
  seed:int ->
  budget:Budget.t ->
  unit ->
  result
(** The three stages run in sequence (they are data-dependent); each
    stage's grid executes through {!Exec} with the given [backend].
    Results are bit-identical across backends at the same seed.
    [journal] journals the stages under phases ["patch"], ["seq"] and
    ["spread"] (callers tuning several chips in one ledger prefix the
    journal with {!Runlog.extend}).  In {!Runlog.deterministic_mode}
    [elapsed_s] is 0 so ledger records stay reproducible. *)

val set_strict : bool -> unit
(** Process-wide strict mode (the CLI's [--strict] flag). *)

val strict : unit -> bool

val shipped : chip:Gpusim.Chip.t -> Stress.tuned
(** The tuned parameters published in Table 2 of the paper, shipped as
    defaults so that users can apply sys-str without re-running the
    multi-hour tuning campaign.  (Patch size per architecture, the
    paper's winning sequence per chip, spread 2.)  A chip without
    Table 2 parameters falls back to the untuned ["ld st"] sequence and
    logs a [Logs] warning — unless {!set_strict} mode is on, in which
    case it fails closed with [Invalid_argument] so a typo'd chip
    cannot silently run a campaign with untuned parameters. *)

(** {1 Ledger codecs} *)

val tuned_to_json : Stress.tuned -> Json.t
val tuned_of_json : Json.t -> (Stress.tuned, string) Stdlib.result
val result_to_json : result -> Json.t
val result_of_json : Json.t -> (result, string) Stdlib.result
