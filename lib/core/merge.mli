(** [gpuwmm merge]: combine k/N shard ledgers into one canonical ledger.

    A sharded campaign ([--shard k/N]) writes one ledger per shard, each
    holding that shard's slice of the job stream (global plan indices,
    unsharded per-job seeds) and a [shard] header field.  [merge]
    reassembles them into the ledger a single process would have
    written; under [GPUWMM_LEDGER_DETERMINISTIC] the output is
    byte-identical to that single-process run, so [gpuwmm report],
    [compare] and [--resume] work on it unchanged.

    The merge is fail-closed: it refuses (writing nothing) when a shard
    of the set is missing, two ledgers claim the same shard or record
    the same job, a job is missing from the interleaved stream (an
    interrupted shard — resume it first), or the shards' plan headers
    (schema, campaign kind, seed, parameter grid) disagree. *)

type outcome = {
  out_path : string;
  shards : int;  (** shard ledgers merged *)
  jobs : int;  (** job records in the merged ledger *)
  quarantined : int;
      (** failed records carried over; when non-zero the merged ledger
          is degraded and carries no result record (finish it with
          [--resume]) *)
  result_written : bool;
      (** a campaign result record was reconstructed from the job
          records ([test]/[table5] ledgers with no quarantined jobs) *)
}

val merge : out:string -> string list -> (outcome, string) result
(** [merge ~out paths] validates the shard set, interleaves the job
    streams in plan order (phase order taken from shard 1, which owns
    plan index 0 under both strategies), reconstructs the campaign
    result record when the ledger kind allows it, and writes the merged
    ledger to [out].  Outside deterministic mode the output header
    carries a [merged] field naming every contributing shard ledger
    (surfaced by [gpuwmm report]'s provenance stamp). *)
