(** A minimal JSON tree: printer and parser.

    The observability exporters (Chrome trace-event files, campaign
    JSONL) need structured, machine-readable output, and their test
    suite needs to parse that output back — but the container offers no
    JSON library and the dependency budget is fixed.  This module is the
    smallest closed loop: a value type, a compact printer, and a strict
    recursive-descent parser, with the round-trip property
    [of_string (to_string v) = Ok v] for every value the printer can
    emit (property-tested in [test/test_telemetry.ml]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Strings are
    escaped per RFC 8259; floats always carry a ['.'] or exponent so
    they re-parse as [Float], and non-finite floats render as [null]. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed;
    trailing garbage is an error).  Numbers with a fraction or exponent
    parse as [Float], others as [Int].  [\u] escapes are decoded to
    UTF-8, including surrogate pairs. *)

val member : string -> t -> t option
(** Field lookup in an [Assoc]; [None] elsewhere. *)

val to_bool : t -> bool option
(** The payload of a [Bool]; [None] otherwise. *)

val to_int : t -> int option
(** The integer value of an [Int]; [None] otherwise. *)

val to_float : t -> float option
(** The numeric value of a [Float] or [Int]; [None] otherwise. *)

val to_str : t -> string option
(** The payload of a [String]; [None] otherwise. *)

val to_list : t -> t list option
(** The elements of a [List]; [None] otherwise. *)
