type tuned = {
  sequence : Access_seq.t;
  spread : int;
  regions : int;
}

type t =
  | No_stress
  | Sys of tuned
  | Rand of { scratch_words : int }
  | Cache
  | Fixed of {
      sequence : Access_seq.t;
      locations : int list;
      scratch_words : int;
    }
  | Targeted of {
      sequence : Access_seq.t;
      addresses : int list;
    }

let name = function
  | No_stress -> "no-str"
  | Sys _ -> "sys-str"
  | Rand _ -> "rand-str"
  | Cache -> "cache-str"
  | Fixed _ -> "fixed-str"
  | Targeted _ -> "tgt-str"

let location_param i = Printf.sprintf "l%d" i

(* One access of the sequence, applied to the register holding this
   thread's scratchpad address. *)
let access_stmt = function
  | Access_seq.Ld -> Gpusim.Kbuild.load "v" (Gpusim.Kbuild.reg "addr")
  | Access_seq.St -> Gpusim.Kbuild.store (Gpusim.Kbuild.reg "addr") (Gpusim.Kbuild.int 1)

let build_kernel ~sequence ~n_locations =
  let open Gpusim.Kbuild in
  let params = "scratch" :: List.init n_locations location_param in
  let select =
    (* addr := scratch + l_(gtid mod n) *)
    def "which" ((tid + (bid * bdim)) mod int n_locations)
    ::
    List.init n_locations (fun i ->
        when_ (reg "which" = int i)
          [ def "addr" (param "scratch" + param (location_param i)) ])
  in
  kernel
    (Printf.sprintf "stress_%s" (Access_seq.to_string sequence))
    ~params
    (select @ [ while_ (int 1) (List.map access_stmt sequence) ])

(* The stress-kernel AST depends only on the access sequence and the
   location count, yet it was rebuilt at every launch; campaigns launch
   millions of times with a handful of distinct shapes.  Memoised under a
   mutex (one lookup per launch — far off the hot path); the AST is
   immutable, so sharing one value across worker domains is safe. *)
let kernel_memo : (string * int, Gpusim.Kernel.t) Hashtbl.t = Hashtbl.create 16
let kernel_mu = Mutex.create ()

let kernel ~sequence ~n_locations =
  if n_locations < 1 then invalid_arg "Stress.kernel: need at least one location";
  let key = (Access_seq.to_string sequence, n_locations) in
  Mutex.lock kernel_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock kernel_mu)
    (fun () ->
      match Hashtbl.find_opt kernel_memo key with
      | Some k -> k
      | None ->
        let k = build_kernel ~sequence ~n_locations in
        Hashtbl.add kernel_memo key k;
        k)

let rand_kernel =
  let open Gpusim.Kbuild in
  kernel "stress_rand" ~params:[ "scratch"; "words" ]
    [ while_ (int 1)
        [ def "r" (Gpusim.Kernel.Rand (param "words" * int 2));
          def "addr" (param "scratch" + (reg "r" / int 2));
          if_
            ((reg "r" mod int 2) = int 0)
            [ load "v" (reg "addr") ]
            [ store (reg "addr") (int 1) ] ] ]

let cache_kernel =
  let open Gpusim.Kbuild in
  kernel "stress_cache" ~params:[ "scratch"; "words" ]
    [ while_ (int 1)
        [ def "i" (int 0);
          while_
            (reg "i" < param "words")
            [ load "v" (param "scratch" + reg "i");
              store (param "scratch" + reg "i") (int 1);
              def "i" (reg "i" + int 1) ] ] ]

let default_warmup = 250

(* Each stressing thread runs a short prologue (location selection) before
   its loop; the warmup must cover that debt plus the contention
   build-up. *)
let warmup_for ~n_threads = default_warmup + (3 * n_threads)

let stress_block_size = 8

(* Threads needed to sustain full parallel pressure on one location; with
   fewer, the location's pressure scales down (this is what makes large
   spreads counter-productive, Fig. 4). *)
let threads_per_location_full = 16

let intensity_for ~n_threads ~n_locations =
  let per_loc = float_of_int n_threads /. float_of_int n_locations in
  let s = per_loc /. float_of_int threads_per_location_full in
  let s = Float.max 0.1 (Float.min 1.0 s) in
  (* Quadratic: a location's parallel pressure collapses quickly once it
     is under-provisioned, which is what carves the U-shape of Fig. 4. *)
  float_of_int n_locations *. (s *. s)

(* Instantiate the spec for a given thread budget. *)
let spec_for strategy sim ~n_threads =
  if n_threads <= 0 then None
  else
    let blocks = Int.max 1 (n_threads / stress_block_size) in
    let warmup = warmup_for ~n_threads:(blocks * stress_block_size) in
    let rng = Gpusim.Sim.rng sim in
    let chip = Gpusim.Sim.chip sim in
    match strategy with
    | No_stress -> None
    | Sys { sequence; spread; regions } ->
      let patch = chip.Gpusim.Chip.weakness.patch_size in
      let scratch = Gpusim.Sim.alloc sim (patch * regions) in
      let chosen = Gpusim.Rng.sample_distinct rng spread regions in
      let locations = List.map (fun r -> r * patch) chosen in
      let args =
        ("scratch", scratch)
        :: List.mapi (fun i l -> (location_param i, l)) locations
      in
      Some
        { Gpusim.Sim.kernel = kernel ~sequence ~n_locations:spread;
          blocks; block_size = stress_block_size; args;
          period = Access_seq.length sequence; warmup;
          intensity =
            intensity_for ~n_threads:(blocks * stress_block_size)
              ~n_locations:spread }
    | Rand { scratch_words } ->
      let scratch = Gpusim.Sim.alloc sim scratch_words in
      Some
        { Gpusim.Sim.kernel = rand_kernel; blocks;
          block_size = stress_block_size;
          args = [ ("scratch", scratch); ("words", scratch_words) ];
          period = 0; warmup; intensity = 1.0 }
    | Cache ->
      let words = chip.Gpusim.Chip.l2_words in
      let scratch = Gpusim.Sim.alloc sim words in
      Some
        { Gpusim.Sim.kernel = cache_kernel; blocks;
          block_size = stress_block_size;
          args = [ ("scratch", scratch); ("words", words) ];
          period = 0; warmup; intensity = 1.0 }
    | Targeted { sequence; addresses } ->
      (* Stress the partitions of the detected communication locations:
         the scratchpad covers one full partition cycle, and each target
         address is mapped to the scratchpad offset in the same
         partition. *)
      let w = chip.Gpusim.Chip.weakness in
      let patch = w.patch_size in
      let cycle = patch * w.n_partitions in
      let scratch = Gpusim.Sim.alloc sim cycle in
      let scratch_part = Gpusim.Chip.partition chip scratch in
      let loc_for addr =
        let p = Gpusim.Chip.partition chip addr in
        (p - scratch_part + w.n_partitions) mod w.n_partitions * patch
      in
      let locations = List.sort_uniq compare (List.map loc_for addresses) in
      if locations = [] then None
      else begin
        let n = List.length locations in
        let args =
          ("scratch", scratch)
          :: List.mapi (fun i l -> (location_param i, l)) locations
        in
        Some
          { Gpusim.Sim.kernel = kernel ~sequence ~n_locations:n; blocks;
            block_size = stress_block_size; args;
            period = Access_seq.length sequence; warmup;
            intensity =
              intensity_for ~n_threads:(blocks * stress_block_size)
                ~n_locations:n }
      end
    | Fixed { sequence; locations; scratch_words } ->
      let n = List.length locations in
      let scratch = Gpusim.Sim.alloc sim scratch_words in
      let args =
        ("scratch", scratch)
        :: List.mapi (fun i l -> (location_param i, l)) locations
      in
      Some
        { Gpusim.Sim.kernel = kernel ~sequence ~n_locations:n; blocks;
          block_size = stress_block_size; args;
          period = Access_seq.length sequence; warmup;
          intensity =
            intensity_for ~n_threads:(blocks * stress_block_size)
              ~n_locations:n }

let make_stress_litmus strategy sim ~app_grid ~app_block =
  match strategy with
  | No_stress -> None
  | Sys _ | Rand _ | Cache | Fixed _ | Targeted _ ->
    let chip = Gpusim.Sim.chip sim in
    let rng = Gpusim.Sim.rng sim in
    let cap = chip.Gpusim.Chip.max_concurrent in
    let total = Gpusim.Rng.int_in rng (cap / 2) cap in
    let n_threads = total - (app_grid * app_block) in
    (* At least one thread per stressed location (Sec. 3.4). *)
    let floor_threads =
      match strategy with
      | Sys { spread; _ } -> Int.max spread stress_block_size
      | Fixed { locations; _ } ->
        Int.max (List.length locations) stress_block_size
      | Targeted _ | No_stress | Rand _ | Cache -> stress_block_size
    in
    spec_for strategy sim ~n_threads:(Int.max floor_threads n_threads)

(* Our scaled-down applications launch far fewer threads than the
   originals, so the paper's 15-50%-of-blocks rule alone would yield
   stressing blocks too small to pressure a memory partition at all; the
   floor keeps the stress at the minimum effective strength. *)
let app_stress_floor_threads = 32

let make_stress_app strategy sim ~app_grid ~app_block =
  match strategy with
  | No_stress -> None
  | Sys _ | Rand _ | Cache | Fixed _ | Targeted _ ->
    let rng = Gpusim.Sim.rng sim in
    let lo = Int.max 1 (app_grid * 15 / 100) in
    let hi = Int.max lo (app_grid / 2) in
    let blocks = Gpusim.Rng.int_in rng lo hi in
    let n_threads =
      Int.max app_stress_floor_threads (blocks * app_block)
    in
    spec_for strategy sim ~n_threads
