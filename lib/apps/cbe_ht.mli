(** Concurrent hash table from CUDA by Example ch. A1.3: per-bucket
    spinlocks guarding linked-list insertion; list-head publication races
    with the unlock under weak memory. *)

val app : App.t
val kernel : Gpusim.Kernel.t
