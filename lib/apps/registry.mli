(** The ten application case studies of Table 4. *)

val all : App.t list
(** In the paper's order: cbe-ht, cbe-dot, ct-octree, tpo-tm, sdk-red,
    cub-scan, ls-bh, then the manufactured fence-free variants sdk-red-nf,
    cub-scan-nf, ls-bh-nf. *)

val fence_free : App.t list
(** The applications used for empirical fence insertion (Sec. 5.2): the
    seven that contain no fences — the four naturally fence-free ones plus
    the three [-nf] variants. *)

val by_name : string -> App.t option
(** Case-insensitive lookup. *)
