(* Dynamic task management after Tzeng, Patney & Owens (HPG 2010): a
   shared task queue protected by a custom spinlock; workers pop tasks and
   push freshly spawned children back.  Under weak memory the pushed
   task's payload (or the head/tail update) can still be in flight when
   the lock is released, so another worker pops a stale slot — tasks are
   lost or double-processed and the processed-task count is wrong. *)

let grid = 4
let block = 4
let initial_tasks = 4
let spawn_depth = 2  (* tasks below this depth spawn two children *)

(* A full binary tree of height spawn_depth per initial task. *)
let expected_tasks = initial_tasks * ((1 lsl (spawn_depth + 1)) - 1)

let queue_cap = 4 * expected_tasks
let max_worker_iterations = 6 * expected_tasks
let stale = -2

let kernel =
  let open Gpusim.Kbuild in
  let ( ^^ ) p i = param p + i in
  kernel "task_manager"
    ~params:[ "qmutex"; "qitems"; "qhead"; "qtail"; "processed" ]
    [ def "iters" (int 0);
      def "stop" (int 0);
      while_
        ((reg "stop" = int 0) && (reg "iters" < int max_worker_iterations))
        ([ def "iters" (reg "iters" + int 1); def "task" (int (-1)) ]
        @ lock (param "qmutex")
        @ [ load "h" (param "qhead");
            load "t" (param "qtail");
            when_
              (reg "h" < reg "t")
              [ load "task" ("qitems" ^^ reg "h");
                store (param "qhead") (reg "h" + int 1) ];
            unlock (param "qmutex");
            if_
              (reg "task" >= int 0)
              ([ atomic_add (param "processed") (int 1) ]
              @ [ when_
                    (reg "task" < int spawn_depth)
                    (lock (param "qmutex")
                    @ [ load "t2" (param "qtail");
                        store ("qitems" ^^ reg "t2") (reg "task" + int 1);
                        store ("qitems" ^^ (reg "t2" + int 1))
                          (reg "task" + int 1);
                        store (param "qtail") (reg "t2" + int 2);
                        unlock (param "qmutex") ]) ])
              [ load "done" (param "processed");
                when_
                  (reg "done" >= int expected_tasks)
                  [ def "stop" (int 1) ] ] ]) ]

let max_ticks = 400_000

let run sim fencing =
  App.guard (fun () ->
      let qmutex = Gpusim.Sim.alloc sim 1 in
      let qitems = Gpusim.Sim.alloc sim queue_cap in
      let qhead = Gpusim.Sim.alloc sim 1 in
      let qtail = Gpusim.Sim.alloc sim 1 in
      let processed = Gpusim.Sim.alloc sim 1 in
      Gpusim.Sim.fill sim ~base:qitems ~len:queue_cap stale;
      (* Seed the queue with the root tasks (depth 0). *)
      for i = 0 to initial_tasks - 1 do
        Gpusim.Sim.write sim (qitems + i) 0
      done;
      Gpusim.Sim.write sim qtail initial_tasks;
      App.exec sim fencing ~max_ticks ~grid ~block kernel
        ~args:
          [ ("qmutex", qmutex); ("qitems", qitems); ("qhead", qhead);
            ("qtail", qtail); ("processed", processed) ];
      let got = Gpusim.Sim.read sim processed in
      App.check (got = expected_tasks)
        (Printf.sprintf "processed %d tasks, expected %d" got expected_tasks))

let app =
  { App.name = "tpo-tm";
    source = "Tzeng, Patney & Owens, HPG 2010";
    communication = "concurrent access to queues protected by custom mutexes";
    post_condition = "expected number of tasks are executed";
    has_fences = false;
    kernels = [ kernel ];
    max_ticks;
    run }
