(* Concurrent hash table from CUDA by Example, ch. A1.3: array-based
   bucket lists with one spinlock per bucket.  Publication of the new list
   head races with the lock release under weak memory, losing entries. *)

let grid = 4
let block = 4
let items = 32
let buckets = 8

let nil = -1

let kernel =
  let open Gpusim.Kbuild in
  kernel "hashtable_insert"
    ~params:[ "keys"; "heads"; "next"; "mutexes"; "items"; "buckets" ]
    [ global_tid "gtid";
      def "i" (reg "gtid");
      while_
        (reg "i" < param "items")
        ([ load "key" (param "keys" + reg "i");
           def "h" (reg "key" mod param "buckets") ]
        @ Gpusim.Kbuild.lock (param "mutexes" + reg "h")
        @ [ load "head" (param "heads" + reg "h");
            store (param "next" + reg "i") (reg "head");
            store (param "heads" + reg "h") (reg "i");
            unlock (param "mutexes" + reg "h");
            def "i" (reg "i" + (bdim * gdim)) ]) ]

let max_ticks = 200_000

let keys_for seed =
  let rng = Gpusim.Rng.create (seed lxor 0x4ab) in
  Array.init items (fun _ -> Gpusim.Rng.int rng 1000)

let run sim fencing =
  App.guard (fun () ->
      let keys = keys_for 1 in
      let pkeys = Gpusim.Sim.alloc sim items in
      let heads = Gpusim.Sim.alloc sim buckets in
      let next = Gpusim.Sim.alloc sim items in
      let mutexes = Gpusim.Sim.alloc sim buckets in
      Gpusim.Sim.write_array sim ~base:pkeys keys;
      Gpusim.Sim.fill sim ~base:heads ~len:buckets nil;
      Gpusim.Sim.fill sim ~base:next ~len:items nil;
      App.exec sim fencing ~max_ticks ~grid ~block kernel
        ~args:
          [ ("keys", pkeys); ("heads", heads); ("next", next);
            ("mutexes", mutexes); ("items", items); ("buckets", buckets) ];
      (* Post-condition: every inserted element is in the final table,
         exactly once, in the right bucket. *)
      let seen = Array.make items false in
      for b = 0 to buckets - 1 do
        let steps = ref 0 in
        let cursor = ref (Gpusim.Sim.read sim (heads + b)) in
        while !cursor <> nil do
          incr steps;
          App.check (!steps <= items) "cycle in bucket list";
          let i = !cursor in
          App.check (i >= 0 && i < items)
            (Printf.sprintf "corrupt entry index %d in bucket %d" i b);
          App.check (not seen.(i))
            (Printf.sprintf "entry %d linked twice" i);
          seen.(i) <- true;
          App.check
            (keys.(i) mod buckets = b)
            (Printf.sprintf "entry %d in wrong bucket %d" i b);
          cursor := Gpusim.Sim.read sim (next + i)
        done
      done;
      Array.iteri
        (fun i present ->
          App.check present (Printf.sprintf "entry %d lost" i))
        seen)

let app =
  { App.name = "cbe-ht";
    source = "CUDA by Example, ch. A1.3";
    communication = "concurrent hashtable insertion protected by custom mutexes";
    post_condition = "all elements inserted into the hashtable are in the final hashtable";
    has_fences = false;
    kernels = [ kernel ];
    max_ticks;
    run }
