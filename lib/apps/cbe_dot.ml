(* Dot product from CUDA by Example, ch. A1.2 (Fig. 1 of the paper):
   block-local reduction in shared memory, then a global accumulation
   guarded by a custom spinlock.  The critical section's store can be
   overtaken by the lock release, losing updates. *)

let grid = 4
let block = 8
let n = 64

let kernel =
  let open Gpusim.Kbuild in
  kernel "dot" ~params:[ "mutex"; "a"; "b"; "c"; "n" ]
    ([ global_tid "tid";
       def "cache_index" tid;
       def "temp" (int 0);
       while_
         (reg "tid" < param "n")
         [ load "va" (param "a" + reg "tid");
           load "vb" (param "b" + reg "tid");
           def "temp" (reg "temp" + (reg "va" * reg "vb"));
           def "tid" (reg "tid" + (bdim * gdim)) ];
       store ~space:Gpusim.Kernel.Shared (reg "cache_index") (reg "temp");
       barrier;
       (* Tree reduction in shared memory. *)
       def "i" (bdim / int 2);
       while_
         (reg "i" > int 0)
         [ when_
             (reg "cache_index" < reg "i")
             [ load ~space:Gpusim.Kernel.Shared "lo" (reg "cache_index");
               load ~space:Gpusim.Kernel.Shared "hi"
                 (reg "cache_index" + reg "i");
               store ~space:Gpusim.Kernel.Shared (reg "cache_index")
                 (reg "lo" + reg "hi") ];
           barrier;
           def "i" (reg "i" / int 2) ] ]
    @ [ when_
          (reg "cache_index" = int 0)
          (Gpusim.Kbuild.lock (param "mutex")
          @ [ load "old_c" (param "c");
              load ~space:Gpusim.Kernel.Shared "cache0" (int 0);
              store (param "c") (reg "old_c" + reg "cache0");
              unlock (param "mutex") ]) ])

let max_ticks = 120_000

let input seed =
  let rng = Gpusim.Rng.create (seed lxor 0x5eed) in
  (Array.init n (fun _ -> Gpusim.Rng.int rng 50),
   Array.init n (fun _ -> Gpusim.Rng.int rng 50))

let run sim fencing =
  App.guard (fun () ->
      let a, b = input 1 in
      let mutex = Gpusim.Sim.alloc sim 1 in
      let pa = Gpusim.Sim.alloc sim n in
      let pb = Gpusim.Sim.alloc sim n in
      let pc = Gpusim.Sim.alloc sim 1 in
      Gpusim.Sim.write_array sim ~base:pa a;
      Gpusim.Sim.write_array sim ~base:pb b;
      App.exec sim fencing ~shared_words:block ~max_ticks ~grid ~block kernel
        ~args:
          [ ("mutex", mutex); ("a", pa); ("b", pb); ("c", pc); ("n", n) ];
      let expected = ref 0 in
      for i = 0 to n - 1 do
        expected := !expected + (a.(i) * b.(i))
      done;
      let got = Gpusim.Sim.read sim pc in
      App.check (got = !expected)
        (Printf.sprintf "dot product mismatch: got %d, expected %d" got
           !expected))

let app =
  { App.name = "cbe-dot";
    source = "CUDA by Example, ch. A1.2";
    communication = "global final reduction across blocks protected by a custom mutex";
    post_condition = "GPU result matches a CPU reference result";
    has_fences = false;
    kernels = [ kernel ];
    max_ticks;
    run }
