(* Barnes-Hut n-body simulation after the Lonestar GPU benchmarks
   (Burtscher et al.), reduced to one spatial dimension but keeping the
   three communicating kernels and their idioms:

   - [bh_build]: concurrent tree construction; a thread locks a child slot
     with CAS, may allocate and initialise a fresh internal node, and
     publishes it with a plain store.  The initialisation stores race with
     the publication under weak memory.
   - [bh_summarize]: bottom-up centre-of-mass computation; each node's
     data is published under a ready flag (an MP handshake).  The shipped
     fence sits here.
   - [bh_force]: read-only tree traversal with an opening criterion,
     followed by a position update.

   As in the paper, the fences shipped with the original application are
   insufficient: the build kernel's publication is unfenced, so [ls-bh]
   (with its original fences) can still fail under stress.  The reference
   solution is computed by a sequential OCaml implementation of the same
   integer algorithm. *)

let grid = 4
let block = 4
let n_bodies = 24
let space = 256  (* positions live in [0, space) *)
let body_tag = 1000  (* child values >= body_tag encode body ids *)
let empty = -1
let locked = -2
let max_nodes = 16 * n_bodies
let insert_guard = 64
let force_scale = 64
let half_space = space / 2

(* ------------------------------------------------------------------ *)
(* Kernels                                                              *)

let build_kernel =
  let open Gpusim.Kbuild in
  let ( ^^ ) p i = param p + i in
  kernel "bh_build"
    ~params:[ "xs"; "child"; "node_count"; "insert_fail"; "n" ]
    [ global_tid "gtid";
      def "b" (reg "gtid");
      while_
        (reg "b" < param "n")
        [ load "pos" ("xs" ^^ reg "b");
          def "node" (int 0);
          def "center" (int half_space);
          def "half" (int half_space);
          def "done" (int 0);
          def "guard" (int 0);
          while_
            ((reg "done" = int 0) && (reg "guard" < int insert_guard))
            [ def "side" (reg "pos" >= reg "center");
              def "slot" ((reg "node" * int 2) + reg "side");
              load "c" ("child" ^^ reg "slot");
              if_
                (reg "c" = int empty)
                [ (* Claim the empty slot and place the body. *)
                  atomic_cas ~dst:"old" ("child" ^^ reg "slot")
                    ~expected:(int empty) ~desired:(int locked);
                  when_
                    (reg "old" = int empty)
                    [ store ("child" ^^ reg "slot") (int body_tag + reg "b");
                      def "done" (int 1) ] ]
                [ when_
                    (reg "c" >= int body_tag)
                    [ (* Split: lock the slot, allocate a node, move the
                         resident body one level down, publish. *)
                      atomic_cas ~dst:"old" ("child" ^^ reg "slot")
                        ~expected:(reg "c") ~desired:(int locked);
                      when_
                        (reg "old" = reg "c")
                        [ def "other" (reg "c" - int body_tag);
                          atomic_add ~dst:"fresh" (param "node_count") (int 1);
                          def "ncenter"
                            (reg "center"
                            + (((reg "side" * int 2) - int 1)
                              * (reg "half" / int 2)));
                          load "opos" ("xs" ^^ reg "other");
                          def "oside" (reg "opos" >= reg "ncenter");
                          store
                            ("child" ^^ ((reg "fresh" * int 2) + reg "oside"))
                            (int body_tag + reg "other");
                          store
                            ("child"
                            ^^ ((reg "fresh" * int 2) + (int 1 - reg "oside")))
                            (int empty);
                          (* Lonestar has no fence here: publishing the
                             node can overtake its initialisation. *)
                          store ("child" ^^ reg "slot") (reg "fresh") ] ];
                  when_
                    ((reg "c" >= int 0) && (reg "c" < int body_tag))
                    [ (* Descend into the internal node.  Only descents
                         count against the guard: retries on locked slots
                         must be able to spin while a publication store is
                         still in flight. *)
                      def "guard" (reg "guard" + int 1);
                      def "node" (reg "c");
                      def "center"
                        (reg "center"
                        + (((reg "side" * int 2) - int 1)
                          * (reg "half" / int 2)));
                      def "half" (reg "half" / int 2) ] ] ];
          when_
            (reg "done" = int 0)
            [ atomic_add (param "insert_fail") (int 1) ];
          def "b" (reg "b" + (bdim * gdim)) ] ]

let summarize_kernel =
  let open Gpusim.Kbuild in
  let ( ^^ ) p i = param p + i in
  (* One logical handler per node, descending ids so every node's children
     (which always have larger ids) are handled first. *)
  let side_mass side =
    [ load "c" ("child" ^^ ((reg "node" * int 2) + int side));
      if_
        (reg "c" = int empty)
        [ def "m" (int 0); def "w" (int 0) ]
        [ if_
            (reg "c" >= int body_tag)
            [ def "m" (int 1); load "w" ("xs" ^^ (reg "c" - int body_tag)) ]
            [ def "rdy" (int 0);
              while_
                (reg "rdy" = int 0)
                [ load "rdy" ("ready" ^^ reg "c") ];
              load "m" ("mass" ^^ reg "c");
              load "w" ("wsum" ^^ reg "c") ] ];
      def (Printf.sprintf "m%d" side) (reg "m");
      def (Printf.sprintf "w%d" side) (reg "w") ]
  in
  kernel "bh_summarize"
    ~params:[ "xs"; "child"; "mass"; "wsum"; "ready"; "node_count" ]
    [ global_tid "gtid";
      load "ncount" (param "node_count");
      (* Walk this thread's stride from the highest id downwards. *)
      def "node"
        (reg "ncount" - int 1
        - ((reg "ncount" - int 1 - reg "gtid") mod (bdim * gdim)));
      when_
        (reg "gtid" < reg "ncount")
        [ while_
            (reg "node" >= int 0)
            (side_mass 0 @ side_mass 1
            @ [ store ("mass" ^^ reg "node") (reg "m0" + reg "m1");
                store ("wsum" ^^ reg "node") (reg "w0" + reg "w1");
                fence;  (* the fence shipped with Lonestar *)
                store ("ready" ^^ reg "node") (int 1);
                def "node" (reg "node" - (bdim * gdim)) ]) ] ]

let force_kernel =
  let open Gpusim.Kbuild in
  let ( ^^ ) p i = param p + i in
  let stack_slot i = (tid * int 16) + i in
  kernel "bh_force"
    ~params:[ "xs"; "child"; "mass"; "wsum"; "out"; "n" ]
    [ global_tid "gtid";
      def "b" (reg "gtid");
      while_
        (reg "b" < param "n")
        [ load "mypos" ("xs" ^^ reg "b");
          def "force" (int 0);
          (* Explicit traversal stack in shared memory: entries encode
             node * 512 + half. *)
          store ~space:Gpusim.Kernel.Shared (stack_slot (int 0))
            (int half_space);  (* node 0, half = space/2 *)
          def "sp" (int 1);
          while_
            (reg "sp" > int 0)
            [ def "sp" (reg "sp" - int 1);
              load ~space:Gpusim.Kernel.Shared "entry" (stack_slot (reg "sp"));
              def "node" (reg "entry" / int 512);
              def "half" (reg "entry" mod int 512);
              def "side" (int 0);
              while_
                (reg "side" < int 2)
                [ load "c" ("child" ^^ ((reg "node" * int 2) + reg "side"));
                  when_
                    (reg "c" >= int body_tag)
                    [ when_
                        (reg "c" <> (int body_tag + reg "b"))
                        [ load "bpos" ("xs" ^^ (reg "c" - int body_tag));
                          def "d" (reg "bpos" - reg "mypos");
                          def "ad" (max_ (reg "d") (int 0 - reg "d"));
                          def "sgn"
                            ((reg "d" > int 0) - (reg "d" < int 0));
                          def "force"
                            (reg "force"
                            + (reg "sgn"
                              * (int force_scale / (int 8 + reg "ad")))) ] ];
                  when_
                    ((reg "c" >= int 0) && (reg "c" < int body_tag))
                    [ load "m" ("mass" ^^ reg "c");
                      when_
                        (reg "m" > int 0)
                        [ load "w" ("wsum" ^^ reg "c");
                          def "com" (reg "w" / reg "m");
                          def "d" (reg "com" - reg "mypos");
                          def "ad" (max_ (reg "d") (int 0 - reg "d"));
                          def "chalf" (reg "half" / int 2);
                          if_
                            ((reg "chalf" * int 2) <= reg "ad")
                            [ (* Well separated: use the aggregate. *)
                              def "sgn"
                                ((reg "d" > int 0) - (reg "d" < int 0));
                              def "force"
                                (reg "force"
                                + (reg "sgn" * reg "m"
                                  * (int force_scale / (int 8 + reg "ad")))) ]
                            [ store ~space:Gpusim.Kernel.Shared
                                (stack_slot (reg "sp"))
                                ((reg "c" * int 512) + reg "chalf");
                              def "sp" (reg "sp" + int 1) ] ] ];
                  def "side" (reg "side" + int 1) ] ];
          def "push" (max_ (int (-8)) (min_ (int 8) (reg "force")));
          store ("out" ^^ reg "b") (reg "mypos" + reg "push");
          def "b" (reg "b" + (bdim * gdim)) ] ]

(* ------------------------------------------------------------------ *)
(* Sequential OCaml reference implementing the same integer algorithm.  *)

module Reference = struct
  type node = {
    mutable child : int array;  (* same encoding as the kernel *)
    mutable mass : int;
    mutable wsum : int;
  }

  let build positions =
    let nodes = Array.init max_nodes (fun _ ->
        { child = [| empty; empty |]; mass = 0; wsum = 0 }) in
    let count = ref 1 in
    let insert b =
      let pos = positions.(b) in
      let node = ref 0 and center = ref (space / 2) and half = ref (space / 2) in
      let finished = ref false in
      while not !finished do
        let side = if pos >= !center then 1 else 0 in
        let c = nodes.(!node).child.(side) in
        if c = empty then begin
          nodes.(!node).child.(side) <- body_tag + b;
          finished := true
        end
        else if c >= body_tag then begin
          let other = c - body_tag in
          let fresh = !count in
          incr count;
          let ncenter = !center + (((side * 2) - 1) * (!half / 2)) in
          let oside = if positions.(other) >= ncenter then 1 else 0 in
          nodes.(fresh).child.(oside) <- body_tag + other;
          nodes.(fresh).child.(1 - oside) <- empty;
          nodes.(!node).child.(side) <- fresh
        end
        else begin
          node := c;
          center := !center + (((side * 2) - 1) * (!half / 2));
          half := !half / 2
        end
      done
    in
    for b = 0 to Array.length positions - 1 do
      insert b
    done;
    (nodes, !count)

  let summarize positions nodes count =
    for node = count - 1 downto 0 do
      let m = ref 0 and w = ref 0 in
      Array.iter
        (fun c ->
          if c >= body_tag then begin
            incr m;
            w := !w + positions.(c - body_tag)
          end
          else if c >= 0 then begin
            m := !m + nodes.(c).mass;
            w := !w + nodes.(c).wsum
          end)
        nodes.(node).child;
      nodes.(node).mass <- !m;
      nodes.(node).wsum <- !w
    done

  let force positions nodes b =
    let mypos = positions.(b) in
    let total = ref 0 in
    let contrib m d =
      let ad = Int.max d (-d) in
      let sgn = compare d 0 in
      total := !total + (sgn * m * (force_scale / (8 + ad)))
    in
    let stack = ref [ (0, space / 2) ] in
    while !stack <> [] do
      let node, half =
        match !stack with e :: rest -> stack := rest; e | [] -> assert false
      in
      for side = 0 to 1 do
        let c = nodes.(node).child.(side) in
        if c >= body_tag then begin
          if c <> body_tag + b then
            contrib 1 (positions.(c - body_tag) - mypos)
        end
        else if c >= 0 then begin
          let m = nodes.(c).mass in
          if m > 0 then begin
            let com = nodes.(c).wsum / m in
            let d = com - mypos in
            let ad = Int.max d (-d) in
            let chalf = half / 2 in
            if chalf * 2 <= ad then contrib m d
            else stack := (c, chalf) :: !stack
          end
        end
      done
    done;
    mypos + Int.max (-8) (Int.min 8 !total)

  let run positions =
    let nodes, count = build positions in
    summarize positions nodes count;
    Array.init (Array.length positions) (fun b -> force positions nodes b)
end

(* ------------------------------------------------------------------ *)

let max_ticks = 500_000

let positions_for seed =
  let rng = Gpusim.Rng.create (seed lxor 0xb4) in
  (* Distinct positions so the tree has bounded depth. *)
  let a = Array.init space (fun i -> i) in
  Gpusim.Rng.shuffle rng a;
  Array.sub a 0 n_bodies

let run sim fencing =
  App.guard (fun () ->
      let ps = positions_for 1 in
      let xs = Gpusim.Sim.alloc sim n_bodies in
      let child = Gpusim.Sim.alloc sim (2 * max_nodes) in
      let node_count = Gpusim.Sim.alloc sim 1 in
      let insert_fail = Gpusim.Sim.alloc sim 1 in
      let mass = Gpusim.Sim.alloc sim max_nodes in
      let wsum = Gpusim.Sim.alloc sim max_nodes in
      let ready = Gpusim.Sim.alloc sim max_nodes in
      let out = Gpusim.Sim.alloc sim n_bodies in
      Gpusim.Sim.write_array sim ~base:xs ps;
      Gpusim.Sim.fill sim ~base:child ~len:(2 * max_nodes) empty;
      Gpusim.Sim.write sim node_count 1 (* root exists *);
      App.exec sim fencing ~max_ticks ~grid ~block build_kernel
        ~args:
          [ ("xs", xs); ("child", child); ("node_count", node_count);
            ("insert_fail", insert_fail); ("n", n_bodies) ];
      App.check (Gpusim.Sim.read sim insert_fail = 0) "body insertion failed";
      App.exec sim fencing ~max_ticks ~grid ~block summarize_kernel
        ~args:
          [ ("xs", xs); ("child", child); ("mass", mass); ("wsum", wsum);
            ("ready", ready); ("node_count", node_count) ];
      App.exec sim fencing ~shared_words:(block * 16) ~max_ticks ~grid ~block
        force_kernel
        ~args:
          [ ("xs", xs); ("child", child); ("mass", mass); ("wsum", wsum);
            ("out", out); ("n", n_bodies) ];
      let expected = Reference.run ps in
      let got = Gpusim.Sim.read_array sim ~base:out ~len:n_bodies in
      Array.iteri
        (fun b e ->
          App.check (got.(b) = e)
            (Printf.sprintf "body %d position: got %d, expected %d" b got.(b)
               e))
        expected)

let make name has_fences =
  { App.name;
    source = "Lonestar GPU benchmarks (Barnes-Hut), 1-D reduction";
    communication = "various instances across three kernels";
    post_condition = "final particle positions match results from reference implementation";
    has_fences;
    kernels = [ build_kernel; summarize_kernel; force_kernel ];
    max_ticks;
    run =
      (fun sim fencing ->
        let fencing =
          match (fencing, has_fences) with
          | App.Original, false -> App.Stripped
          | f, _ -> f
        in
        run sim fencing) }

let app = make "ls-bh" true
let app_nf = make "ls-bh-nf" false
