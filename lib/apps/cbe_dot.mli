(** Dot product from CUDA by Example ch. A1.2 — the paper's running
    example (Fig. 1): a spinlock-guarded global reduction whose critical
    section store can be overtaken by the lock release. *)

val app : App.t
val kernel : Gpusim.Kernel.t
