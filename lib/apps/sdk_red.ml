(* threadFenceReduction from the CUDA SDK: each block reduces a chunk and
   publishes a partial sum; the last block to finish (determined with an
   atomic counter) combines the partials.  The __threadfence between the
   partial-sum store and the counter increment is what makes the partial
   visible to the combining block. *)

let grid = 4
let block = 8
let n = 64

let kernel =
  let open Gpusim.Kbuild in
  kernel "reduce" ~params:[ "input"; "partials"; "counter"; "out"; "n" ]
    [ global_tid "gtid";
      def "acc" (int 0);
      def "i" (reg "gtid");
      while_
        (reg "i" < param "n")
        [ load "v" (param "input" + reg "i");
          def "acc" (reg "acc" + reg "v");
          def "i" (reg "i" + (bdim * gdim)) ];
      store ~space:Gpusim.Kernel.Shared tid (reg "acc");
      barrier;
      def "s" (bdim / int 2);
      while_
        (reg "s" > int 0)
        [ when_
            (tid < reg "s")
            [ load ~space:Gpusim.Kernel.Shared "lo" tid;
              load ~space:Gpusim.Kernel.Shared "hi" (tid + reg "s");
              store ~space:Gpusim.Kernel.Shared tid (reg "lo" + reg "hi") ];
          barrier;
          def "s" (reg "s" / int 2) ];
      when_
        (tid = int 0)
        [ load ~space:Gpusim.Kernel.Shared "block_sum" (int 0);
          store (param "partials" + bid) (reg "block_sum");
          fence;  (* the fence shipped with the SDK code *)
          atomic_add ~dst:"ticket" (param "counter") (int 1);
          when_
            (reg "ticket" = gdim - int 1)
            [ def "total" (int 0);
              def "j" (int 0);
              while_
                (reg "j" < gdim)
                [ load "p" (param "partials" + reg "j");
                  def "total" (reg "total" + reg "p");
                  def "j" (reg "j" + int 1) ];
              store (param "out") (reg "total") ] ] ]

let max_ticks = 120_000

let run sim fencing =
  App.guard (fun () ->
      let rng = Gpusim.Rng.create 0xed in
      let data = Array.init n (fun _ -> Gpusim.Rng.int rng 100) in
      let input = Gpusim.Sim.alloc sim n in
      let partials = Gpusim.Sim.alloc sim grid in
      let counter = Gpusim.Sim.alloc sim 1 in
      let out = Gpusim.Sim.alloc sim 1 in
      Gpusim.Sim.write_array sim ~base:input data;
      Gpusim.Sim.write sim out (-1);
      App.exec sim fencing ~shared_words:block ~max_ticks ~grid ~block kernel
        ~args:
          [ ("input", input); ("partials", partials); ("counter", counter);
            ("out", out); ("n", n) ];
      let expected = Array.fold_left ( + ) 0 data in
      let got = Gpusim.Sim.read sim out in
      App.check (got = expected)
        (Printf.sprintf "reduction mismatch: got %d, expected %d" got
           expected))

let make name has_fences =
  { App.name;
    source = "CUDA 7 SDK (threadFenceReduction)";
    communication = "last block (via atomic counter) combines block-local results";
    post_condition = "GPU result matches a CPU reference result";
    has_fences;
    kernels = [ kernel ];
    max_ticks;
    run =
      (fun sim fencing ->
        (* The -nf variant replaces Original with Stripped so that the
           shipped fence is removed. *)
        let fencing =
          match (fencing, has_fences) with
          | App.Original, false -> App.Stripped
          | f, _ -> f
        in
        run sim fencing) }

let app = make "sdk-red" true
let app_nf = make "sdk-red-nf" false
