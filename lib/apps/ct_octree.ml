(* Octree partitioning in the style of Cederman & Tsigas (GPU Computing
   Gems ch. 37): particles are distributed into octant buckets through
   non-blocking queues (atomicAdd on the tail, then a plain store of the
   element).  A second phase consumes the mid-level queues concurrently
   and splits each octant into sub-octants.  Under weak memory a consumer
   can observe a published tail before the element store has committed and
   read a stale slot — losing the particle. *)

let grid = 4
let block = 4
let n_particles = 48
let n_octants = 8
let cap = n_particles  (* per-queue capacity *)

let empty = -1

(* Octant of a particle at (x, y, z) in [0, 16)^3, split at 8; sub-octant
   splits each coordinate again at the quarter points. *)
let octant x y z =
  ((if x >= 8 then 1 else 0) * 4)
  + ((if y >= 8 then 1 else 0) * 2)
  + if z >= 8 then 1 else 0

let sub_octant x y z =
  ((if x mod 8 >= 4 then 1 else 0) * 4)
  + ((if y mod 8 >= 4 then 1 else 0) * 2)
  + if z mod 8 >= 4 then 1 else 0

let kernel =
  let open Gpusim.Kbuild in
  let ( ^^ ) p i = param p + i in
  let octant_exp ~split x y z =
    ((x >= split) * int 4) + ((y >= split) * int 2) + (z >= split)
  in
  kernel "octree_partition"
    ~params:
      [ "xs"; "ys"; "zs"; "mid_items"; "mid_tails"; "leaf_items";
        "leaf_tails"; "producers_done"; "n" ]
    [ global_tid "gtid";
      (* Phase 1: distribute particles into the eight mid-level queues. *)
      def "i" (reg "gtid");
      while_
        (reg "i" < param "n")
        [ load "x" ("xs" ^^ reg "i");
          load "y" ("ys" ^^ reg "i");
          load "z" ("zs" ^^ reg "i");
          def "oct" (octant_exp ~split:(int 8) (reg "x") (reg "y") (reg "z"));
          atomic_add ~dst:"slot" ("mid_tails" ^^ reg "oct") (int 1);
          store ("mid_items" ^^ ((reg "oct" * int cap) + reg "slot")) (reg "i");
          def "i" (reg "i" + (bdim * gdim)) ];
      atomic_add (param "producers_done") (int 1);
      (* Phase 2: each octant has one consumer thread (gtid = octant),
         which drains the mid queue into leaf queues. *)
      when_
        (reg "gtid" < int n_octants)
        [ def "oct" (reg "gtid");
          def "head" (int 0);
          def "spin" (int 0);
          while_
            (reg "spin" = int 0)
            [ load "tail" ("mid_tails" ^^ reg "oct");
              if_
                (reg "head" < reg "tail")
                [ load "p" ("mid_items" ^^ ((reg "oct" * int cap) + reg "head"));
                  def "head" (reg "head" + int 1);
                  (* The original code indexed the coordinate arrays with
                     the dequeued value unconditionally; the paper reports
                     finding out-of-bounds queue accesses this way and
                     patching them.  This is the patched version: a stale
                     slot is skipped (and the particle is lost, which the
                     post-condition reports). *)
                  when_
                    ((reg "p" >= int 0) && (reg "p" < param "n"))
                    [ load "x" ("xs" ^^ reg "p");
                      load "y" ("ys" ^^ reg "p");
                      load "z" ("zs" ^^ reg "p");
                      def "sub"
                        (octant_exp ~split:(int 4) (reg "x" mod int 8)
                           (reg "y" mod int 8) (reg "z" mod int 8));
                      def "leaf" ((reg "oct" * int n_octants) + reg "sub");
                      atomic_add ~dst:"lslot" ("leaf_tails" ^^ reg "leaf")
                        (int 1);
                      store
                        ("leaf_items" ^^ ((reg "leaf" * int cap) + reg "lslot"))
                        (reg "p") ] ]
                [ load "dc" (param "producers_done");
                  when_
                    ((reg "dc" = (bdim * gdim)) && (reg "head" >= reg "tail"))
                    [ def "spin" (int 1) ] ] ] ] ]

let max_ticks = 400_000

let particles seed =
  let rng = Gpusim.Rng.create (seed lxor 0x0c7) in
  Array.init n_particles (fun _ ->
      (Gpusim.Rng.int rng 16, Gpusim.Rng.int rng 16, Gpusim.Rng.int rng 16))

let run sim fencing =
  App.guard (fun () ->
      let ps = particles 1 in
      let alloc_fill len v =
        let base = Gpusim.Sim.alloc sim len in
        Gpusim.Sim.fill sim ~base ~len v;
        base
      in
      let xs = Gpusim.Sim.alloc sim n_particles in
      let ys = Gpusim.Sim.alloc sim n_particles in
      let zs = Gpusim.Sim.alloc sim n_particles in
      Array.iteri
        (fun i (x, y, z) ->
          Gpusim.Sim.write sim (xs + i) x;
          Gpusim.Sim.write sim (ys + i) y;
          Gpusim.Sim.write sim (zs + i) z)
        ps;
      let mid_items = alloc_fill (n_octants * cap) empty in
      let mid_tails = alloc_fill n_octants 0 in
      let leaf_items = alloc_fill (n_octants * n_octants * cap) empty in
      let leaf_tails = alloc_fill (n_octants * n_octants) 0 in
      let producers_done = alloc_fill 1 0 in
      App.exec sim fencing ~max_ticks ~grid ~block kernel
        ~args:
          [ ("xs", xs); ("ys", ys); ("zs", zs); ("mid_items", mid_items);
            ("mid_tails", mid_tails); ("leaf_items", leaf_items);
            ("leaf_tails", leaf_tails); ("producers_done", producers_done);
            ("n", n_particles) ];
      (* Post-condition: all original particles are in the final octree,
         each exactly once, in the right leaf. *)
      let seen = Array.make n_particles 0 in
      for leaf = 0 to (n_octants * n_octants) - 1 do
        let tail = Gpusim.Sim.read sim (leaf_tails + leaf) in
        App.check (tail >= 0 && tail <= cap)
          (Printf.sprintf "leaf %d has corrupt tail %d" leaf tail);
        for s = 0 to tail - 1 do
          let p = Gpusim.Sim.read sim (leaf_items + (leaf * cap) + s) in
          App.check (p >= 0 && p < n_particles)
            (Printf.sprintf "leaf %d slot %d holds invalid particle %d" leaf
               s p);
          let x, y, z = ps.(p) in
          App.check (leaf = (octant x y z * n_octants) + sub_octant x y z)
            (Printf.sprintf "particle %d in wrong leaf %d" p leaf);
          seen.(p) <- seen.(p) + 1
        done
      done;
      Array.iteri
        (fun p count ->
          App.check (count = 1)
            (Printf.sprintf "particle %d present %d times" p count))
        seen)

let app =
  { App.name = "ct-octree";
    source = "Cederman & Tsigas, GPU Computing Gems ch. 37";
    communication = "concurrent access to non-blocking queues";
    post_condition = "all original particles are in the final octree";
    has_fences = false;
    kernels = [ kernel ];
    max_ticks;
    run }
