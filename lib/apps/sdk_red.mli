(** threadFenceReduction from the CUDA SDK: block partial sums combined by
    the last block (atomic-counter election).  [app] keeps the shipped
    fence; [app_nf] is the manufactured fence-free variant. *)

val app : App.t
val app_nf : App.t
val kernel : Gpusim.Kernel.t
