(** Octree partitioning after Cederman & Tsigas: non-blocking queues
    (atomicAdd tail + plain element store); consumers can observe a
    published tail before the element store commits. *)

val app : App.t
val kernel : Gpusim.Kernel.t
