(** Dynamic task management after Tzeng, Patney & Owens: a mutex-guarded
    task queue; queue state updates race with the lock release, losing or
    double-processing tasks. *)

val app : App.t
val expected_tasks : int
