(** Application case studies (Table 4 of the paper).

    An application is a host program against the {!Gpusim.Sim} API plus a
    user-supplied functional post-condition.  The testing environment is
    ambient on the device, so applications are tested black-box: they
    allocate memory, launch kernels and check their own results without
    knowing whether stressing blocks were appended.

    Fencing is a compiler-pass parameter: the same application can run as
    written, with all fences stripped (the [-nf] variants), with a
    conservative fence after every global access, or with an explicit set
    of fence sites (the representation manipulated by empirical fence
    insertion, Sec. 5). *)

type fencing =
  | Original  (** the kernels as written *)
  | Stripped  (** all fences removed *)
  | Conservative  (** a device fence after every global memory access *)
  | Sites of (string * int) list
      (** device fences after the listed (kernel name, access site id)
          pairs; site ids refer to the labelled, fence-stripped kernel *)

val apply_fencing : fencing -> Gpusim.Kernel.t -> Gpusim.Kernel.t

type t = {
  name : string;
  source : string;  (** provenance, e.g. "CUDA by Example, ch. A1.2" *)
  communication : string;  (** Table 4 "communication" column *)
  post_condition : string;  (** Table 4 "post-condition" column *)
  has_fences : bool;  (** whether the original code contains fences *)
  kernels : Gpusim.Kernel.t list;
  max_ticks : int;  (** per-launch budget; exceeding it is an error *)
  run : Gpusim.Sim.t -> fencing -> (unit, string) result;
      (** one full execution: set up inputs, launch kernel(s), check the
          post-condition.  [Error] carries a reason (post-condition
          violation, timeout, trap, barrier divergence). *)
}

val fence_sites : t -> (string * int) list
(** All candidate fence sites: every global-access site of every kernel,
    on the fence-stripped labelled basis.  The initial fence set of
    empirical fence insertion is exactly this list. *)

exception Run_error of string

val exec :
  Gpusim.Sim.t ->
  fencing ->
  ?shared_words:int ->
  max_ticks:int ->
  grid:int ->
  block:int ->
  Gpusim.Kernel.t ->
  args:(string * int) list ->
  unit
(** Launch helper for application [run] functions: applies the fencing
    pass and raises {!Run_error} on timeout, trap or barrier
    divergence. *)

val guard : (unit -> unit) -> (unit, string) result
(** Convert {!Run_error} (and [Failure]) into [Error]. *)

val check : bool -> string -> unit
(** [check cond msg] raises {!Run_error} [msg] when the post-condition
    [cond] fails. *)
