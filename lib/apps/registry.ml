let all =
  [ Cbe_ht.app; Cbe_dot.app; Ct_octree.app; Tpo_tm.app; Sdk_red.app;
    Cub_scan.app; Ls_bh.app; Sdk_red.app_nf; Cub_scan.app_nf; Ls_bh.app_nf ]

let fence_free = List.filter (fun a -> not a.App.has_fences) all

let by_name name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun a -> String.lowercase_ascii a.App.name = target) all
