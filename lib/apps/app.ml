type fencing =
  | Original
  | Stripped
  | Conservative
  | Sites of (string * int) list

let stripped_basis k = Gpusim.Kernel.label (Gpusim.Kernel.strip_fences k)

let apply_fencing fencing k =
  match fencing with
  | Original -> k
  | Stripped -> stripped_basis k
  | Conservative ->
    Gpusim.Kernel.insert_fences_after ~scope:Gpusim.Kernel.Device
      ~sites:(fun _ -> true)
      (stripped_basis k)
  | Sites sites ->
    let base = stripped_basis k in
    let mine =
      List.filter_map
        (fun (kname, sid) ->
          if kname = base.Gpusim.Kernel.name then Some sid else None)
        sites
    in
    Gpusim.Kernel.insert_fences_after ~scope:Gpusim.Kernel.Device
      ~sites:(fun sid -> List.mem sid mine)
      base

type t = {
  name : string;
  source : string;
  communication : string;
  post_condition : string;
  has_fences : bool;
  kernels : Gpusim.Kernel.t list;
  max_ticks : int;
  run : Gpusim.Sim.t -> fencing -> (unit, string) result;
}

let fence_sites app =
  List.concat_map
    (fun k ->
      let base = stripped_basis k in
      List.map
        (fun sid -> (base.Gpusim.Kernel.name, sid))
        (Gpusim.Kernel.global_access_sites base))
    app.kernels

exception Run_error of string

let exec sim fencing ?shared_words ~max_ticks ~grid ~block kernel ~args =
  let kernel = apply_fencing fencing kernel in
  let result =
    Gpusim.Sim.launch sim ?shared_words ~max_ticks ~grid ~block kernel ~args
  in
  (match result.Gpusim.Sim.outcome with
  | Gpusim.Sim.Finished -> ()
  | Gpusim.Sim.Timeout ->
    raise (Run_error (kernel.Gpusim.Kernel.name ^ ": timeout"))
  | Gpusim.Sim.Trapped msg ->
    raise (Run_error (kernel.Gpusim.Kernel.name ^ ": trap: " ^ msg)));
  if result.Gpusim.Sim.barrier_divergence then
    raise (Run_error (kernel.Gpusim.Kernel.name ^ ": barrier divergence"))

let guard f =
  match f () with
  | () -> Ok ()
  | exception Run_error msg -> Error msg
  | exception Failure msg -> Error msg

let check cond msg = if not cond then raise (Run_error msg)
