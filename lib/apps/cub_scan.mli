(** Chained prefix scan in the style of CUB's decoupled lookback: blocks
    publish inclusive prefixes under ready flags (MP handshakes).  [app]
    keeps the two shipped fences; [app_nf] strips them. *)

val app : App.t
val app_nf : App.t
val kernel : Gpusim.Kernel.t
