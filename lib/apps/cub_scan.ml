(* Chained prefix scan in the style of CUB's decoupled lookback: each
   block publishes its inclusive prefix and a ready flag; block b+1 spins
   on block b's flag (an MP handshake).  The two fences order the data
   stores before the flag stores. *)

let grid = 6
let block = 4
let n = grid * block

let not_ready = 0
let ready = 1

let kernel =
  let open Gpusim.Kbuild in
  kernel "chained_scan"
    ~params:[ "input"; "inclusive"; "flags"; "out" ]
    [ (* Block-local sum of the block's chunk via shared memory. *)
      def "chunk_base" (bid * bdim);
      load "mine" (param "input" + (reg "chunk_base" + tid));
      store ~space:Gpusim.Kernel.Shared tid (reg "mine");
      barrier;
      when_
        (tid = int 0)
        [ def "local" (int 0);
          def "j" (int 0);
          while_
            (reg "j" < bdim)
            [ load ~space:Gpusim.Kernel.Shared "v" (reg "j");
              def "local" (reg "local" + reg "v");
              def "j" (reg "j" + int 1) ];
          if_
            (bid = int 0)
            [ store (param "inclusive" + int 0) (reg "local");
              fence;  (* shipped fence #1 *)
              store (param "flags" + int 0) (int 1) ]
            [ (* Spin on the predecessor's flag (MP handshake). *)
              def "f" (int 0);
              while_
                (reg "f" <> int 1)
                [ load "f" (param "flags" + (bid - int 1)) ];
              load "prev" (param "inclusive" + (bid - int 1));
              store (param "inclusive" + bid) (reg "prev" + reg "local");
              fence;  (* shipped fence #2 *)
              store (param "flags" + bid) (int 1) ];
          store (param "out" + bid) (int 1) ] ]

let max_ticks = 300_000

let run sim fencing =
  App.guard (fun () ->
      let rng = Gpusim.Rng.create 0x5ca9 in
      let data = Array.init n (fun _ -> Gpusim.Rng.int rng 20) in
      let input = Gpusim.Sim.alloc sim n in
      let inclusive = Gpusim.Sim.alloc sim grid in
      let flags = Gpusim.Sim.alloc sim grid in
      let out = Gpusim.Sim.alloc sim grid in
      Gpusim.Sim.write_array sim ~base:input data;
      Gpusim.Sim.fill sim ~base:flags ~len:grid not_ready;
      Gpusim.Sim.fill sim ~base:inclusive ~len:grid (-1);
      App.exec sim fencing ~shared_words:block ~max_ticks ~grid ~block kernel
        ~args:
          [ ("input", input); ("inclusive", inclusive); ("flags", flags);
            ("out", out) ];
      ignore ready;
      let expected = Array.make grid 0 in
      let acc = ref 0 in
      for b = 0 to grid - 1 do
        for i = 0 to block - 1 do
          acc := !acc + data.((b * block) + i)
        done;
        expected.(b) <- !acc
      done;
      for b = 0 to grid - 1 do
        let got = Gpusim.Sim.read sim (inclusive + b) in
        App.check (got = expected.(b))
          (Printf.sprintf "inclusive prefix of block %d: got %d, expected %d"
             b got expected.(b))
      done)

let make name has_fences =
  { App.name;
    source = "CUB GPU library (decoupled-lookback scan, simplified to a chained scan)";
    communication = "blocks communicate partial results using an MP-style handshake";
    post_condition = "GPU result matches a CPU reference result";
    has_fences;
    kernels = [ kernel ];
    max_ticks;
    run =
      (fun sim fencing ->
        let fencing =
          match (fencing, has_fences) with
          | App.Original, false -> App.Stripped
          | f, _ -> f
        in
        run sim fencing) }

let app = make "cub-scan" true
let app_nf = make "cub-scan-nf" false
