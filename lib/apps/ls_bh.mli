(** Barnes-Hut n-body after the Lonestar GPU benchmarks, reduced to one
    dimension but keeping the three kernels and their communication
    idioms.  The shipped fences are deliberately insufficient (the build
    kernel's node publication is unfenced), mirroring the paper's finding
    that ls-bh fails even with its original fences. *)

val app : App.t
val app_nf : App.t
val build_kernel : Gpusim.Kernel.t
val summarize_kernel : Gpusim.Kernel.t
val force_kernel : Gpusim.Kernel.t
