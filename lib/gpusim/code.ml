open Kernel

exception Trap of string

exception Unresolved of Memsys.pending

type tctx = {
  gid : int;
  regs : rv array;
  l_tid : int;
  l_bid : int;
  l_bdim : int;
  l_gdim : int;
  mem : Memsys.t;
  shared : int array;
}

and rv = Val of int | Pend of Memsys.pending

type ev = tctx -> int

type op =
  | Oassign of int * ev
  | Oload of { site : int; dst : int; space : Kernel.space; addr : ev }
  | Ostore of { site : int; space : Kernel.space; addr : ev; value : ev }
  | Oatomic of {
      site : int;
      dst : int option;
      space : Kernel.space;
      addr : ev;
      prepare : tctx -> int -> int;
    }
  | Ofence of Kernel.fence_scope
  | Obarrier
  | Ojump of int
  | Ojz of ev * int
  | Oreturn

type t = {
  kernel_name : string;
  ops : op array;
  n_regs : int;
  slots : (string * int) list;
}

let reg_slot code r = List.assoc_opt r code.slots

let read_reg ctx i =
  match ctx.regs.(i) with
  | Val v -> v
  | Pend p ->
    (* A dependent instruction cannot proceed until the load completes;
       the scheduler parks the thread, and the load commits through the
       normal contention-delayed machinery.  This stall is what lets
       program-order-later independent stores retire first (the LB weak
       behaviour). *)
    if Memsys.resolved p then begin
      let v = Memsys.force ctx.mem ~tid:ctx.gid p in
      ctx.regs.(i) <- Val v;
      v
    end
    else raise (Unresolved p)

(* Register slot allocation: every register name mentioned anywhere in the
   kernel gets one slot. *)
let collect_regs k =
  let tbl = Hashtbl.create 16 in
  let slot r =
    if not (Hashtbl.mem tbl r) then Hashtbl.add tbl r (Hashtbl.length tbl)
  in
  let rec exp = function
    | Int _ | Special _ | Param _ -> ()
    | Reg r -> slot r
    | Binop (_, a, b) -> exp a; exp b
    | Unop (_, a) -> exp a
    | Rand a -> exp a
  in
  let atomic = function
    | Acas (a, b) -> exp a; exp b
    | Aexch a | Aadd a | Amin a | Amax a -> exp a
  in
  Kernel.iter_stmts
    (fun s ->
      match s.instr with
      | Assign (r, e) -> slot r; exp e
      | Load { dst; addr; _ } -> slot dst; exp addr
      | Store { addr; value; _ } -> exp addr; exp value
      | Atomic { dst; addr; op; _ } ->
        Option.iter slot dst;
        exp addr;
        atomic op
      | If (c, _, _) | While (c, _) -> exp c
      | Fence _ | Barrier | Return -> ())
    k;
  tbl

let bool_of_int n = n <> 0
let int_of_bool b = if b then 1 else 0

let compile_exp slots args e =
  let slot r =
    match Hashtbl.find_opt slots r with
    | Some i -> i
    | None -> invalid_arg ("Code.compile: unknown register " ^ r)
  in
  let rec go = function
    | Int n -> fun _ -> n
    | Reg r ->
      let i = slot r in
      fun ctx -> read_reg ctx i
    | Special Tid -> fun ctx -> ctx.l_tid
    | Special Bid -> fun ctx -> ctx.l_bid
    | Special Bdim -> fun ctx -> ctx.l_bdim
    | Special Gdim -> fun ctx -> ctx.l_gdim
    | Param p -> (
      match List.assoc_opt p args with
      | Some v -> fun _ -> v
      | None -> invalid_arg ("Code.compile: missing argument for %" ^ p))
    | Binop (op, a, b) ->
      let fa = go a and fb = go b in
      (match op with
      | Add -> fun c -> fa c + fb c
      | Sub -> fun c -> fa c - fb c
      | Mul -> fun c -> fa c * fb c
      | Div ->
        fun c ->
          let d = fb c in
          if d = 0 then raise (Trap "division by zero") else fa c / d
      | Rem ->
        fun c ->
          let d = fb c in
          if d = 0 then raise (Trap "remainder by zero") else fa c mod d
      | Band -> fun c -> fa c land fb c
      | Bor -> fun c -> fa c lor fb c
      | Bxor -> fun c -> fa c lxor fb c
      | Shl -> fun c -> fa c lsl fb c
      | Shr -> fun c -> fa c asr fb c
      | Eq -> fun c -> int_of_bool (fa c = fb c)
      | Ne -> fun c -> int_of_bool (fa c <> fb c)
      | Lt -> fun c -> int_of_bool (fa c < fb c)
      | Le -> fun c -> int_of_bool (fa c <= fb c)
      | Gt -> fun c -> int_of_bool (fa c > fb c)
      | Ge -> fun c -> int_of_bool (fa c >= fb c)
      | Min -> fun c -> Int.min (fa c) (fb c)
      | Max -> fun c -> Int.max (fa c) (fb c))
    | Unop (Neg, a) ->
      let fa = go a in
      fun c -> -fa c
    | Unop (Lnot, a) ->
      let fa = go a in
      fun c -> int_of_bool (not (bool_of_int (fa c)))
    | Rand a ->
      let fa = go a in
      fun c -> Memsys.rand c.mem (fa c)
  in
  go e

let compile k ~args =
  let params = List.sort_uniq compare k.params in
  let given = List.sort_uniq compare (List.map fst args) in
  if params <> given then
    invalid_arg
      (Fmt.str "Code.compile %s: parameters (%a) do not match arguments (%a)"
         k.name
         Fmt.(list ~sep:comma string)
         params
         Fmt.(list ~sep:comma string)
         given);
  let slots = collect_regs k in
  let ce = compile_exp slots args in
  let slot r =
    match Hashtbl.find_opt slots r with
    | Some i -> i
    | None -> assert false (* collect_regs visited every register *)
  in
  let buf = ref [] in
  let n = ref 0 in
  let emit op =
    buf := op :: !buf;
    incr n
  in
  (* Emit with backpatching: jump targets are discovered after emitting
     the jump, so record the cell index and patch at the end. *)
  let patches = ref [] in
  let emit_jump_placeholder mk =
    let at = !n in
    emit (Ojump (-1));
    patches := (at, mk) :: !patches
  in
  let rec stmt s =
    match s.instr with
    | Assign (r, e) -> emit (Oassign (slot r, ce e))
    | Load { dst; space; addr } ->
      emit (Oload { site = s.sid; dst = slot dst; space; addr = ce addr })
    | Store { space; addr; value } ->
      emit (Ostore { site = s.sid; space; addr = ce addr; value = ce value })
    | Atomic { dst; space; addr; op } ->
      let prepare =
        match op with
        | Acas (expected, desired) ->
          let fe = ce expected and fd = ce desired in
          fun ctx ->
            let e = fe ctx and d = fd ctx in
            fun old -> if old = e then d else old
        | Aexch v ->
          let fv = ce v in
          fun ctx ->
            let v = fv ctx in
            fun _ -> v
        | Aadd v ->
          let fv = ce v in
          fun ctx ->
            let v = fv ctx in
            fun old -> old + v
        | Amin v ->
          let fv = ce v in
          fun ctx ->
            let v = fv ctx in
            fun old -> Int.min old v
        | Amax v ->
          let fv = ce v in
          fun ctx ->
            let v = fv ctx in
            fun old -> Int.max old v
      in
      emit
        (Oatomic
           { site = s.sid; dst = Option.map slot dst; space; addr = ce addr;
             prepare })
    | Fence scope -> emit (Ofence scope)
    | Barrier -> emit Obarrier
    | Return -> emit Oreturn
    | If (c, t, []) ->
      let fc = ce c in
      let jz_at = !n in
      emit (Ojump (-1));
      block t;
      let after = !n in
      patches := (jz_at, fun () -> Ojz (fc, after)) :: !patches
    | If (c, t, e) ->
      let fc = ce c in
      let jz_at = !n in
      emit (Ojump (-1));
      block t;
      let jend_at = !n in
      emit (Ojump (-1));
      let else_start = !n in
      block e;
      let after = !n in
      patches := (jz_at, fun () -> Ojz (fc, else_start)) :: !patches;
      patches := (jend_at, fun () -> Ojump after) :: !patches
    | While (c, b) ->
      let fc = ce c in
      let head = !n in
      emit (Ojump (-1));
      block b;
      emit_jump_placeholder (fun () -> Ojump head);
      let after = !n in
      patches := (head, fun () -> Ojz (fc, after)) :: !patches
  and block b = List.iter stmt b in
  block k.body;
  emit Oreturn;
  let ops = Array.of_list (List.rev !buf) in
  List.iter (fun (at, mk) -> ops.(at) <- mk ()) !patches;
  { kernel_name = k.name; ops; n_regs = Hashtbl.length slots;
    slots = Hashtbl.fold (fun r i acc -> (r, i) :: acc) slots [] }

let make_ctx ~code ~gid ~l_tid ~l_bid ~l_bdim ~l_gdim ~mem ~shared =
  { gid; regs = Array.make (Int.max 1 code.n_regs) (Val 0);
    l_tid; l_bid; l_bdim; l_gdim; mem; shared }
