open Kernel

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Min -> "min" | Max -> "max"

let special_name = function
  | Tid -> "threadIdx.x"
  | Bid -> "blockIdx.x"
  | Bdim -> "blockDim.x"
  | Gdim -> "gridDim.x"

let rec pp_exp ppf = function
  | Int n -> Fmt.int ppf n
  | Reg r -> Fmt.string ppf r
  | Special s -> Fmt.string ppf (special_name s)
  | Param p -> Fmt.pf ppf "%%%s" p
  | Binop ((Min | Max) as op, a, b) ->
    Fmt.pf ppf "%s(%a, %a)" (binop_name op) pp_exp a pp_exp b
  | Binop (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_exp a (binop_name op) pp_exp b
  | Unop (Neg, a) -> Fmt.pf ppf "(-%a)" pp_exp a
  | Unop (Lnot, a) -> Fmt.pf ppf "(!%a)" pp_exp a
  | Rand e -> Fmt.pf ppf "curand(%a)" pp_exp e

let space_name = function Global -> "g" | Shared -> "s"

let atomic_name = function
  | Acas _ -> "atomicCAS"
  | Aexch _ -> "atomicExch"
  | Aadd _ -> "atomicAdd"
  | Amin _ -> "atomicMin"
  | Amax _ -> "atomicMax"

let pp_instr ppf = function
  | Assign (r, e) -> Fmt.pf ppf "%s = %a;" r pp_exp e
  | Load { dst; space; addr } ->
    Fmt.pf ppf "%s = %s[%a];" dst (space_name space) pp_exp addr
  | Store { space; addr; value } ->
    Fmt.pf ppf "%s[%a] = %a;" (space_name space) pp_exp addr pp_exp value
  | Atomic { dst; space; addr; op } ->
    let pp_dst ppf = function
      | Some d -> Fmt.pf ppf "%s = " d
      | None -> ()
    in
    let pp_args ppf = function
      | Acas (e, d) -> Fmt.pf ppf ", %a, %a" pp_exp e pp_exp d
      | Aexch v | Aadd v | Amin v | Amax v -> Fmt.pf ppf ", %a" pp_exp v
    in
    Fmt.pf ppf "%a%s(&%s[%a]%a);" pp_dst dst (atomic_name op)
      (space_name space) pp_exp addr pp_args op
  | Fence Cta -> Fmt.string ppf "__threadfence_block();"
  | Fence Device -> Fmt.string ppf "__threadfence();"
  | Barrier -> Fmt.string ppf "__syncthreads();"
  | Return -> Fmt.string ppf "return;"
  | If _ | While _ -> assert false (* handled structurally by pp_stmt *)

let rec pp_stmt ?(sids = false) ppf s =
  let tag ppf = if sids then Fmt.pf ppf "s%d: " s.sid in
  match s.instr with
  | If (c, t, []) ->
    Fmt.pf ppf "@[<v 2>%tif (%a) {%a@]@,}" tag pp_exp c (pp_block ~sids) t
  | If (c, t, e) ->
    Fmt.pf ppf "@[<v 2>%tif (%a) {%a@]@,@[<v 2>} else {%a@]@,}" tag pp_exp c
      (pp_block ~sids) t (pp_block ~sids) e
  | While (c, b) ->
    Fmt.pf ppf "@[<v 2>%twhile (%a) {%a@]@,}" tag pp_exp c (pp_block ~sids) b
  | i -> Fmt.pf ppf "%t%a" tag pp_instr i

and pp_block ~sids ppf blk =
  List.iter (fun s -> Fmt.pf ppf "@,%a" (pp_stmt ~sids) s) blk

let pp ?(sids = false) ppf k =
  Fmt.pf ppf "@[<v 2>__global__ void %s(%a) {%a@]@,}@." k.name
    Fmt.(list ~sep:(any ", ") string)
    k.params (pp_block ~sids) k.body

let to_string ?sids k = Fmt.str "%a" (pp ?sids) k
