type stress_spec = {
  kernel : Kernel.t;
  blocks : int;
  block_size : int;
  args : (string * int) list;
  period : int;
  warmup : int;
  intensity : float;
}

type t = {
  chip : Chip.t;
  rng : Rng.t;
  mem : Memsys.t;
  mutable brk : int;  (* bump allocator cursor *)
  mutable env : environment;
  mutable cycles_total : int;  (* modelled runtime over all launches *)
  mutable energy_total : float;
  mutable code_cache : (Kernel.t * (string * int) list * Code.t) list;
      (* compiled-code MRU; survives [reset] because compilation is a
         pure function of (kernel, args) — see [compile_cached] *)
}

and environment = {
  randomise : bool;
  make_stress : t -> app_grid:int -> app_block:int -> stress_spec option;
}

let no_environment =
  { randomise = false; make_stress = (fun _ ~app_grid:_ ~app_block:_ -> None) }

(* Ambient per-process configuration, installed by the supervision layer
   (Core.Exec) and the chaos driver without threading new parameters
   through every app signature.  Both are read-only on the hot path. *)

let poll_hook : (unit -> unit) option Atomic.t = Atomic.make None
let set_poll_hook h = Atomic.set poll_hook h

let soft_error_default : (float * int) option Atomic.t = Atomic.make None
let set_soft_error_default d = Atomic.set soft_error_default d
let soft_error_defaulted () = Atomic.get soft_error_default

(* Arm soft-error injection per the ambient default; shared between
   [create] and [reset] so a recycled simulator is configured exactly like
   a fresh one. *)
let arm_soft_errors t ~seed =
  match Atomic.get soft_error_default with
  | Some (rate, fault_seed) when rate > 0.0 ->
    (* A dedicated rng derived from both the fault seed and the device
       seed: deterministic per device, independent of the device's own
       random stream. *)
    Memsys.set_soft_errors t.mem
      (Some (Rng.create (fault_seed lxor (seed * 0x9E3779B1)), rate))
  | Some _ | None -> ()

let create ?(words = 65536) ~chip ~seed () =
  let rng = Rng.create seed in
  let t =
    { chip; rng; mem = Memsys.create ~chip ~rng ~words ~nthreads:0; brk = 0;
      env = no_environment; cycles_total = 0; energy_total = 0.0;
      code_cache = [] }
  in
  arm_soft_errors t ~seed;
  t

(* Rewind a simulator to the state [create ~words ~chip ~seed ()] would
   produce, reusing every internal buffer.  Behavioural equivalence is
   property-tested against fresh creation (test_sim / test_alloc). *)
let reset t ~seed =
  Rng.reseed t.rng seed;
  Memsys.reset_device t.mem;
  t.brk <- 0;
  t.env <- no_environment;
  t.cycles_total <- 0;
  t.energy_total <- 0.0;
  arm_soft_errors t ~seed

(* Per-domain simulator arenas: one recycled instance per (chip, device
   size), so the per-run cost of a campaign is the run itself rather than
   re-creating a device (global memory array, queues, trace sink) on
   every iteration.  Keyed in domain-local storage — domains never share
   an instance, so no synchronisation is needed on the hot path. *)
type slot = { sim : t; mutable busy : bool }

let arenas : (string * int, slot) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let with_sim ?(words = 65536) ~chip ~seed f =
  let tbl = Domain.DLS.get arenas in
  let key = (chip.Chip.name, words) in
  match Hashtbl.find_opt tbl key with
  | Some slot when (not slot.busy) && slot.sim.chip == chip ->
    slot.busy <- true;
    Fun.protect
      ~finally:(fun () -> slot.busy <- false)
      (fun () ->
        reset slot.sim ~seed;
        f slot.sim)
  | Some { busy = true; _ } ->
    (* Nested borrow of the same device class (an app running a sub-sim):
       fall back to a throwaway instance. *)
    f (create ~words ~chip ~seed ())
  | Some _ | None ->
    (* First use, or a structurally different chip under the same name
       (property tests build ad-hoc chips): install a fresh instance. *)
    let slot = { sim = create ~words ~chip ~seed (); busy = true } in
    Hashtbl.replace tbl key slot;
    Fun.protect
      ~finally:(fun () -> slot.busy <- false)
      (fun () -> f slot.sim)

let chip t = t.chip
let rng t = t.rng
let mem t = t.mem
let set_environment t env = t.env <- env

let alloc t n =
  if n < 0 then invalid_arg "Sim.alloc: negative size";
  let patch = t.chip.Chip.weakness.patch_size in
  let base = (t.brk + patch - 1) / patch * patch in
  if base + n > Memsys.words t.mem then failwith "Sim.alloc: out of memory";
  t.brk <- base + n;
  base

let read t addr = Memsys.read t.mem addr
let write t addr v = Memsys.write t.mem addr v

let fill t ~base ~len v =
  for i = base to base + len - 1 do
    Memsys.write t.mem i v
  done

let read_array t ~base ~len = Array.init len (fun i -> Memsys.read t.mem (base + i))

let write_array t ~base a =
  Array.iteri (fun i v -> Memsys.write t.mem (base + i) v) a

let reorders t = Memsys.reorders t.mem
let bitflips t = Memsys.bitflips t.mem
let elapsed_cycles t = t.cycles_total
let consumed_energy t = t.energy_total
let trace t = Memsys.sink t.mem

(* ------------------------------------------------------------------ *)
(* Launch machinery                                                     *)

type outcome = Finished | Timeout | Trapped of string

type result = {
  outcome : outcome;
  barrier_divergence : bool;
  metrics : Metrics.t;
}

type status =
  | Running
  | Draining
  | Waiting of Memsys.pending  (* parked on an unresolved load *)
  | At_barrier
  | Done

type thread = {
  ctx : Code.tctx;
  code : Code.t;
  mutable pc : int;
  mutable status : status;
  daemon : bool;  (* stressing thread: terminated when the app finishes *)
  block_id : int;
  mutable accesses : int;  (* stress-loop boundary tracking *)
  period : int;
}

type blk = {
  mutable live : int;  (* threads not yet Done *)
  mutable waiting : int;  (* threads at the barrier *)
  members : thread array;
}

(* Logical thread-id assignment under randomisation: blocks are permuted
   among block slots, complete warps among warp slots within each block,
   and lanes within each warp.  Threads that share a block (warp) before
   randomisation still do afterwards, so barriers and intra-warp idioms
   stay meaningful (Sec. 3.5).  Without randomisation the mapping is the
   identity and nothing is allocated (nor any randomness drawn): callers
   use the ids directly. *)
let logical_ids t ~grid ~block =
  let warp = t.chip.Chip.warp_size in
  let block_of = Array.init grid (fun b -> b) in
  let tid_of = Array.init grid (fun _ -> Array.init block (fun i -> i)) in
  Rng.shuffle t.rng block_of;
  let full_warps = block / warp in
  Array.iter
    (fun tids ->
      if full_warps > 1 then begin
        let warp_slot = Array.init full_warps (fun w -> w) in
        Rng.shuffle t.rng warp_slot;
        let lanes = Array.init warp (fun l -> l) in
        for w = 0 to full_warps - 1 do
          Rng.shuffle t.rng lanes;
          for l = 0 to warp - 1 do
            tids.((w * warp) + l) <- (warp_slot.(w) * warp) + lanes.(l)
          done
        done
      end)
    tid_of;
  (block_of, tid_of)

let default_max_ticks = 1_000_000

(* Scheduling: a cursor walks each runnable set in bursts, with random
   jumps.  Bursts create the systematic co-scheduling patterns that thread
   randomisation perturbs. *)
let burst_continue = 0.7

(* Share of scheduler ticks given to stressing (daemon) threads when both
   classes have runnable threads. *)
let daemon_share = 0.65

let owner_attempt_probability = 0.5

exception Stop of outcome

(* Compiled code is a pure function of (kernel, args) — parameters are
   bound at compile time, all device state flows in through the
   per-thread ctx — so a recycled simulator that launches the same few
   (memoised) kernels millions of times need not re-lower them.  Keyed
   on physical kernel equality plus structural args equality; campaigns
   have a working set of two or three entries, so a short bounded list
   suffices and stays allocation-free on hits.  Deliberately kept across
   [reset]: recycling must not change behaviour (property-tested against
   fresh simulators in test_alloc/test_sim), and purity makes the cached
   code seed-independent. *)
let code_cache_max = 8

let compile_cached t kernel ~args =
  let rec find = function
    | [] -> None
    | (k, a, c) :: _ when k == kernel && a = args -> Some c
    | _ :: tl -> find tl
  in
  match find t.code_cache with
  | Some c -> c
  | None ->
    let c = Code.compile kernel ~args in
    let keep = t.code_cache in
    let keep =
      if List.length keep >= code_cache_max then
        List.filteri (fun i _ -> i < code_cache_max - 1) keep
      else keep
    in
    t.code_cache <- (kernel, args, c) :: keep;
    c

let launch t ?(max_ticks = default_max_ticks) ?(shared_words = 64) ~grid
    ~block kernel ~args =
  if grid <= 0 || block <= 0 || block > 1024 then
    invalid_arg "Sim.launch: bad launch configuration";
  let stress = t.env.make_stress t ~app_grid:grid ~app_block:block in
  let app_code = compile_cached t kernel ~args in
  let stress_code =
    Option.map (fun s -> compile_cached t s.kernel ~args:s.args) stress
  in
  let n_stress_threads =
    match stress with Some s -> s.blocks * s.block_size | None -> 0
  in
  let n_app = grid * block in
  let total = n_app + n_stress_threads in
  let sink = Memsys.sink t.mem in
  let tick_now () = Memsys.now t.mem in
  if Trace.active sink then
    Trace.emit sink ~tick:(tick_now ())
      (Trace.Launch_begin
         { kernel = kernel.Kernel.name; grid; block;
           stress_blocks = (match stress with Some s -> s.blocks | None -> 0);
           stress_threads = n_stress_threads });
  Memsys.reset_threads t.mem ~nthreads:total;
  Memsys.set_stress_gain t.mem
    (match stress with Some s -> s.intensity | None -> 1.0);
  (* The randomised id maps are only materialised when the environment
     asks for randomisation; the default identity mapping allocates
     nothing. *)
  let ids = if t.env.randomise then Some (logical_ids t ~grid ~block) else None in
  let metrics = Metrics.create () in
  let reorders_before = Memsys.reorders t.mem in
  let bitflips_before = Memsys.bitflips t.mem in
  let blocks = ref [] in
  let n_blocks = ref 0 in
  let next_gid = ref 0 in
  let add_block ~code ~daemon ~period ~l_gdim ~l_bid ~size ~shared_sz =
    let shared = Array.make (Int.max 1 shared_sz) 0 in
    let block_id = !n_blocks in
    let members =
      Array.init size (fun i ->
          let gid = !next_gid in
          incr next_gid;
          let l_tid =
            if daemon then i
            else match ids with Some (_, tid_of) -> tid_of.(l_bid).(i) | None -> i
          in
          let l_bid =
            if daemon then l_bid
            else match ids with Some (block_of, _) -> block_of.(l_bid) | None -> l_bid
          in
          let ctx =
            Code.make_ctx ~code ~gid ~l_tid ~l_bid ~l_bdim:size ~l_gdim
              ~mem:t.mem ~shared
          in
          { ctx; code; pc = 0; status = Running; daemon;
            block_id; accesses = 0; period })
    in
    let b = { live = size; waiting = 0; members } in
    blocks := b :: !blocks;
    incr n_blocks
  in
  for b = 0 to grid - 1 do
    add_block ~code:app_code ~daemon:false ~period:0 ~l_gdim:grid ~l_bid:b
      ~size:block ~shared_sz:shared_words
  done;
  (match (stress, stress_code) with
  | Some s, Some code ->
    for b = 0 to s.blocks - 1 do
      add_block ~code ~daemon:true ~period:s.period ~l_gdim:s.blocks ~l_bid:b
        ~size:s.block_size ~shared_sz:1
    done
  | _ -> ());
  let blocks = Array.of_list (List.rev !blocks) in
  (* Global ids are assigned densely in block-creation order, so the
     per-block member arrays concatenate into the gid-indexed thread
     table directly — no intermediate option array. *)
  let threads =
    Array.concat (Array.to_list (Array.map (fun b -> b.members) blocks))
  in
  (* Two runnable sets with O(1) removal: application threads keep a fixed
     scheduling share even when many stressing threads are resident, as on
     a real GPU where stress occupies other SMs rather than starving the
     application. *)
  let runnable = Array.init total (fun i -> i) in
  let pos = Array.init total (fun i -> i) in
  let n_run_app = ref n_app in
  (* Layout invariant: runnable.[0, n_run_app) are runnable app threads;
     runnable.[n_app, n_app + n_run_daemon) are runnable daemons. *)
  let n_run_daemon = ref n_stress_threads in
  let class_base gid = if gid < n_app then 0 else n_app in
  let class_count gid = if gid < n_app then n_run_app else n_run_daemon in
  let remove_runnable gid =
    let base = class_base gid and count = class_count gid in
    let p = pos.(gid) in
    if p < base + !count then begin
      let last = runnable.(base + !count - 1) in
      runnable.(p) <- last;
      pos.(last) <- p;
      runnable.(base + !count - 1) <- gid;
      pos.(gid) <- base + !count - 1;
      decr count
    end
  in
  let add_runnable gid =
    let base = class_base gid and count = class_count gid in
    let p = pos.(gid) in
    if p >= base + !count then begin
      let first = runnable.(base + !count) in
      runnable.(base + !count) <- gid;
      pos.(gid) <- base + !count;
      runnable.(p) <- first;
      pos.(first) <- p;
      incr count
    end
  in
  let live_app = ref n_app in
  let divergence = ref false in
  let cost = t.chip.Chip.cost in
  let weak = not (Memsys.strong t.mem) in
  let charge th c =
    if not th.daemon then metrics.Metrics.app_cycles <- metrics.Metrics.app_cycles + c
  in
  let release_barrier b ~by_exit =
    Array.iter
      (fun th ->
        if th.status <> Done then ignore (Memsys.drain t.mem ~tid:th.ctx.Code.gid))
      b.members;
    Array.iter
      (fun th ->
        if th.status = At_barrier then begin
          th.status <- Running;
          add_runnable th.ctx.Code.gid
        end)
      b.members;
    b.waiting <- 0;
    (* CUDA leaves a barrier undefined unless every thread of the block
       executes it; a release with exited members is flagged. *)
    if by_exit || b.live < Array.length b.members then divergence := true;
    if Trace.active sink then
      Trace.emit sink ~tick:(tick_now ())
        (Trace.Barrier_release
           { block = b.members.(0).block_id; by_exit })
  in
  let finish_thread th =
    th.status <- Done;
    if Trace.active sink then
      Trace.emit sink ~tick:(tick_now ())
        (Trace.Thread_done { tid = th.ctx.Code.gid; daemon = th.daemon });
    remove_runnable th.ctx.Code.gid;
    let b = blocks.(th.block_id) in
    b.live <- b.live - 1;
    if not th.daemon then begin
      decr live_app;
      if !live_app = 0 then raise (Stop Finished)
    end;
    if b.waiting > 0 && b.waiting = b.live then release_barrier b ~by_exit:true
  in
  let bounds_global a =
    if a < 0 || a >= Memsys.words t.mem then
      raise (Code.Trap (Fmt.str "global access out of bounds: %d" a))
  in
  let bounds_shared th a =
    if a < 0 || a >= Array.length th.ctx.Code.shared then
      raise (Code.Trap (Fmt.str "shared access out of bounds: %d" a))
  in
  let count_load th =
    if not th.daemon then metrics.Metrics.n_load <- metrics.Metrics.n_load + 1
  in
  let count_store th =
    if not th.daemon then metrics.Metrics.n_store <- metrics.Metrics.n_store + 1
  in
  let exec th =
    let ctx = th.ctx in
    let gid = ctx.Code.gid in
    (* Follow jump chains for free; only "real" operations cost a tick. *)
    let rec fetch pc fuel =
      if fuel = 0 then raise (Code.Trap "jump cycle");
      match th.code.Code.ops.(pc) with
      | Code.Ojump target -> fetch target (fuel - 1)
      | op ->
        th.pc <- pc;
        op
    in
    match fetch th.pc (Array.length th.code.Code.ops + 1) with
    | Code.Ojump _ -> assert false
    | Code.Oassign (i, f) ->
      ctx.Code.regs.(i) <- Code.Val (f ctx);
      th.pc <- th.pc + 1;
      if not th.daemon then metrics.Metrics.n_alu <- metrics.Metrics.n_alu + 1;
      charge th cost.cycles_alu
    | Code.Ojz (f, target) ->
      let v = f ctx in
      th.pc <- (if v = 0 then target else th.pc + 1);
      if not th.daemon then metrics.Metrics.n_alu <- metrics.Metrics.n_alu + 1;
      charge th cost.cycles_alu
    | Code.Oload { dst; space; addr; _ } ->
      let a = addr ctx in
      (match space with
      | Kernel.Shared ->
        bounds_shared th a;
        ctx.Code.regs.(dst) <- Code.Val ctx.Code.shared.(a)
      | Kernel.Global ->
        bounds_global a;
        if th.daemon then begin
          let boundary = th.period > 0 && th.accesses mod th.period = 0 in
          th.accesses <- th.accesses + 1;
          Memsys.stress_access t.mem ~sid:gid ~kind:`Load ~addr:a ~boundary;
          ctx.Code.regs.(dst) <- Code.Val (Memsys.read t.mem a)
        end
        else begin
          Memsys.app_access t.mem ~kind:`Load ~addr:a;
          let p = Memsys.load t.mem ~tid:gid ~addr:a in
          ctx.Code.regs.(dst) <-
            (if weak then Code.Pend p
             else Code.Val (Memsys.force t.mem ~tid:gid p))
        end);
      th.pc <- th.pc + 1;
      count_load th;
      charge th cost.cycles_mem
    | Code.Ostore { space; addr; value; _ } ->
      let a = addr ctx in
      let v = value ctx in
      (match space with
      | Kernel.Shared ->
        bounds_shared th a;
        ctx.Code.shared.(a) <- v
      | Kernel.Global ->
        bounds_global a;
        if th.daemon then begin
          let boundary = th.period > 0 && th.accesses mod th.period = 0 in
          th.accesses <- th.accesses + 1;
          Memsys.stress_access t.mem ~sid:gid ~kind:`Store ~addr:a ~boundary
        end
        else begin
          Memsys.app_access t.mem ~kind:`Store ~addr:a;
          Memsys.store t.mem ~tid:gid ~addr:a ~value:v
        end);
      th.pc <- th.pc + 1;
      count_store th;
      charge th cost.cycles_mem
    | Code.Oatomic { dst; space; addr; prepare; _ } ->
      let a = addr ctx in
      let f = prepare ctx in
      let old =
        match space with
        | Kernel.Shared ->
          bounds_shared th a;
          let old = ctx.Code.shared.(a) in
          ctx.Code.shared.(a) <- f old;
          old
        | Kernel.Global ->
          bounds_global a;
          Memsys.app_access t.mem ~kind:`Store ~addr:a;
          Memsys.atomic t.mem ~tid:gid ~addr:a f
      in
      (match dst with
      | Some i -> ctx.Code.regs.(i) <- Code.Val old
      | None -> ());
      th.pc <- th.pc + 1;
      if not th.daemon then
        metrics.Metrics.n_atomic <- metrics.Metrics.n_atomic + 1;
      charge th cost.cycles_atomic
    | Code.Ofence scope ->
      th.pc <- th.pc + 1;
      if not th.daemon then metrics.Metrics.n_fence <- metrics.Metrics.n_fence + 1;
      let base =
        match scope with
        | Kernel.Device -> cost.cycles_fence_base
        | Kernel.Cta -> cost.cycles_fence_base / 2
      in
      charge th base;
      let pending = Memsys.pending_count t.mem ~tid:gid in
      if Trace.active sink then
        Trace.emit sink ~tick:(tick_now ())
          (Trace.Fence
             { tid = gid; pending; device_scope = (scope = Kernel.Device) });
      if pending > 0 then th.status <- Draining
    | Code.Obarrier ->
      th.pc <- th.pc + 1;
      th.status <- At_barrier;
      remove_runnable gid;
      let b = blocks.(th.block_id) in
      b.waiting <- b.waiting + 1;
      if Trace.active sink then
        Trace.emit sink ~tick:(tick_now ())
          (Trace.Barrier_wait { tid = gid; block = th.block_id });
      if b.waiting = b.live then release_barrier b ~by_exit:false
    | Code.Oreturn -> finish_thread th
  in
  let step th =
    match th.status with
    | Running -> (
      try exec th
      with Code.Unresolved p -> th.status <- Waiting p)
    | Waiting p ->
      (* Drive this thread's own commits; the load completes through the
         usual contention-delayed machinery, so stressing the load's
         partition lengthens the stall. *)
      Memsys.attempt_commits t.mem ~tid:th.ctx.Code.gid;
      if Memsys.resolved p then begin
        th.status <- Running;
        try exec th with Code.Unresolved p' -> th.status <- Waiting p'
      end
    | Draining ->
      metrics.Metrics.fence_stall_ticks <- metrics.Metrics.fence_stall_ticks + 1;
      metrics.Metrics.fence_drained <- metrics.Metrics.fence_drained + 1;
      charge th cost.cycles_fence_per_entry;
      if Memsys.drain_step t.mem ~tid:th.ctx.Code.gid then th.status <- Running
    | At_barrier | Done -> assert false (* not in the runnable set *)
  in
  let warmup = match stress with Some s -> s.warmup | None -> 0 in
  let outcome = ref Timeout in
  let cursor_app = ref 0 in
  let cursor_daemon = ref 0 in
  (try
     let ticks = ref 0 in
     while !n_run_app > 0 || !n_run_daemon > 0 do
       if !ticks >= max_ticks + warmup then raise (Stop Timeout);
       incr ticks;
       metrics.Metrics.ticks <- metrics.Metrics.ticks + 1;
       Memsys.tick t.mem;
       (* Cooperative cancellation point for the supervision watchdog: a
          hook that raises aborts the launch (and the whole job attempt)
          without needing to kill the domain. *)
       if !ticks land 1023 = 0 then begin
         match Atomic.get poll_hook with Some f -> f () | None -> ()
       end;
       (* Sample one partition's contention pools every 64 ticks, walking
          the partitions round-robin.  Reads no randomness, so tracing
          never perturbs an execution. *)
       if Trace.active sink && !ticks land 63 = 0 then begin
         let part =
           !ticks lsr 6 mod t.chip.Chip.weakness.Chip.n_partitions
         in
         Trace.emit sink ~tick:(tick_now ())
           (Trace.Contention
              { part;
                read = Memsys.contention t.mem ~part ~kind:`Load;
                write = Memsys.contention t.mem ~part ~kind:`Store })
       end;
       let pick_daemon =
         if !n_run_daemon = 0 then false
         else if !n_run_app = 0 then true
         else if !ticks <= warmup then true
         else Rng.chance t.rng daemon_share
       in
       let base, count, cursor =
         if pick_daemon then (n_app, n_run_daemon, cursor_daemon)
         else (0, n_run_app, cursor_app)
       in
       if !cursor >= !count || not (Rng.chance t.rng burst_continue) then
         cursor := Rng.int t.rng !count
       else cursor := (!cursor + 1) mod !count;
       let gid = runnable.(base + !cursor) in
       let th = threads.(gid) in
       step th;
       if
         weak && th.status <> Done
         && Rng.chance t.rng owner_attempt_probability
       then Memsys.attempt_commits t.mem ~tid:gid;
       if weak && !ticks land 3 = 0 then
         Memsys.random_background_drain t.mem
     done;
     (* All threads blocked at distinct barriers with nobody left to make
        progress would exit the loop with runnable empty but app threads
        alive: that is a deadlock, reported as divergence. *)
     if !live_app > 0 then begin
       divergence := true;
       outcome := Finished
     end
     else outcome := Finished
   with
  | Stop o -> outcome := o
  | Code.Trap msg -> outcome := Trapped msg);
  (* Kernel completion makes all writes globally visible. *)
  let order = Array.init total (fun i -> i) in
  Rng.shuffle t.rng order;
  Array.iter (fun gid -> ignore (Memsys.drain t.mem ~tid:gid)) order;
  metrics.Metrics.n_reorder <- Memsys.reorders t.mem - reorders_before;
  metrics.Metrics.n_bitflip <- Memsys.bitflips t.mem - bitflips_before;
  t.cycles_total <- t.cycles_total + Metrics.runtime_cycles ~chip:t.chip metrics;
  t.energy_total <- t.energy_total +. Metrics.energy ~chip:t.chip metrics;
  if Trace.active sink then
    Trace.emit sink ~tick:(tick_now ())
      (Trace.Launch_end
         { outcome =
             (match !outcome with
             | Finished -> "finished"
             | Timeout -> "timeout"
             | Trapped msg -> "trapped: " ^ msg);
           divergence = !divergence;
           metrics = Metrics.to_assoc metrics });
  { outcome = !outcome; barrier_divergence = !divergence; metrics }

(* ------------------------------------------------------------------ *)
(* Deterministic fixed-schedule replay                                  *)

type rthread = {
  r_ctx : Code.tctx;
  r_code : Code.t;
  mutable r_pc : int;
  mutable r_draining : bool;
  mutable r_at_barrier : bool;
  mutable r_done : bool;
}

(* Replay an Mcheck witness: the schedule, not the rng, decides every
   thread step and every store-buffer commit.  One [Sstep] executes one
   statement op ([Ojump] glue is followed for free, and a thread whose
   next op is the kernel's trailing [Oreturn] finishes as part of the
   same step, mirroring Mcheck's one-transition-per-statement account);
   one [Scommit (tid, n)] commits the n-th pending FIFO entry through
   the ordinary Memsys commit path.  Replay shares Mcheck's program
   restrictions and validates the schedule as it goes: stepping a
   finished/draining/parked/blocked thread, a bad commit index, or a
   schedule that ends before quiescence all [Failure]. *)
let run_schedule t ?blocks ~threads ~args ~watch_mem ~watch_regs schedule =
  if List.length threads <> List.length args then
    invalid_arg "Sim.run_schedule: threads/args length mismatch";
  let n = List.length threads in
  let lay = Sc_ref.layouts ?blocks n in
  let bid_of = Array.map (fun (_, b, _, _) -> b) lay in
  Memsys.reset_threads t.mem ~nthreads:n;
  let weak = not (Memsys.strong t.mem) in
  let reorders_before = Memsys.reorders t.mem in
  let ths =
    Array.of_list
      (List.mapi
         (fun i (k : Kernel.t) ->
           let code = Code.compile k ~args:(List.nth args i) in
           let l_tid, l_bid, l_bdim, l_gdim = lay.(i) in
           let ctx =
             Code.make_ctx ~code ~gid:i ~l_tid ~l_bid ~l_bdim ~l_gdim
               ~mem:t.mem ~shared:(Array.make 1 0)
           in
           { r_ctx = ctx; r_code = code; r_pc = 0; r_draining = false;
             r_at_barrier = false; r_done = false })
         threads)
  in
  let invalid fmt = Fmt.failwith ("Sim.run_schedule: " ^^ fmt) in
  let bounds a =
    if a < 0 || a >= Memsys.words t.mem then
      invalid "out-of-bounds global access %d" a
  in
  let rec settle_pc th =
    match th.r_code.Code.ops.(th.r_pc) with
    | Code.Ojump tgt ->
      th.r_pc <- tgt;
      settle_pc th
    | _ -> ()
  in
  let rec finish th =
    th.r_done <- true;
    check_release bid_of.(th.r_ctx.Code.gid)
  and check_release b =
    let members = ref [] in
    for i = n - 1 downto 0 do
      if bid_of.(i) = b then members := i :: !members
    done;
    let members = !members in
    let live = List.filter (fun i -> not ths.(i).r_done) members in
    let waiting = List.filter (fun i -> ths.(i).r_at_barrier) members in
    if live <> [] && List.length waiting = List.length live then begin
      if List.length live < List.length members then invalid "barrier divergence";
      List.iter (fun i -> ignore (Memsys.drain t.mem ~tid:i)) members;
      List.iter
        (fun i ->
          let th = ths.(i) in
          if th.r_at_barrier then begin
            th.r_at_barrier <- false;
            settle_pc th;
            try_finish th
          end)
        members
    end
  and try_finish th =
    if (not th.r_done) && (not th.r_draining) && not th.r_at_barrier then
      match th.r_code.Code.ops.(th.r_pc) with
      | Code.Oreturn when th.r_pc = Array.length th.r_code.Code.ops - 1 ->
        finish th
      | _ -> ()
  in
  let exec_op th =
    let ctx = th.r_ctx in
    let gid = ctx.Code.gid in
    match th.r_code.Code.ops.(th.r_pc) with
    | Code.Oassign (i, ev) ->
      ctx.Code.regs.(i) <- Code.Val (ev ctx);
      th.r_pc <- th.r_pc + 1
    | Code.Oload { dst; space = Kernel.Global; addr; _ } ->
      let a = addr ctx in
      bounds a;
      let p = Memsys.load t.mem ~tid:gid ~addr:a in
      ctx.Code.regs.(dst) <-
        (if weak then Code.Pend p else Code.Val (Memsys.force t.mem ~tid:gid p));
      th.r_pc <- th.r_pc + 1
    | Code.Ostore { space = Kernel.Global; addr; value; _ } ->
      let a = addr ctx in
      let v = value ctx in
      bounds a;
      Memsys.store t.mem ~tid:gid ~addr:a ~value:v;
      th.r_pc <- th.r_pc + 1
    | Code.Oatomic { dst; space = Kernel.Global; addr; prepare; _ } ->
      let a = addr ctx in
      bounds a;
      let f = prepare ctx in
      let old = Memsys.atomic t.mem ~tid:gid ~addr:a f in
      (match dst with
      | Some i -> ctx.Code.regs.(i) <- Code.Val old
      | None -> ());
      th.r_pc <- th.r_pc + 1
    | Code.Oload _ | Code.Ostore _ | Code.Oatomic _ ->
      invalid "shared memory is not supported"
    | Code.Ofence _ ->
      th.r_pc <- th.r_pc + 1;
      if weak && Memsys.pending_count t.mem ~tid:gid > 0 then
        th.r_draining <- true
    | Code.Obarrier ->
      th.r_pc <- th.r_pc + 1;
      th.r_at_barrier <- true;
      check_release bid_of.(gid)
    | Code.Ojz (c, tgt) ->
      th.r_pc <- (if c ctx = 0 then tgt else th.r_pc + 1)
    | Code.Ojump _ -> assert false (* settled before exec *)
    | Code.Oreturn -> finish th
  in
  Array.iter
    (fun th ->
      settle_pc th;
      try_finish th)
    ths;
  List.iter
    (fun (stp : Mcheck.step) ->
      match stp with
      | Mcheck.Sstep ti ->
        if ti < 0 || ti >= n then invalid "bad thread id %d" ti;
        let th = ths.(ti) in
        if th.r_done then invalid "step of finished thread %d" ti;
        if th.r_draining then invalid "step of draining thread %d" ti;
        if th.r_at_barrier then invalid "step of parked thread %d" ti;
        (try exec_op th
         with Code.Unresolved _ -> invalid "step of blocked thread %d" ti);
        if not (th.r_done || th.r_at_barrier) then begin
          settle_pc th;
          try_finish th
        end
      | Mcheck.Scommit (ti, k) ->
        if ti < 0 || ti >= n then invalid "bad thread id %d" ti;
        Memsys.commit_nth t.mem ~tid:ti ~n:k;
        let th = ths.(ti) in
        if th.r_draining && Memsys.pending_count t.mem ~tid:ti = 0 then begin
          th.r_draining <- false;
          settle_pc th;
          try_finish th
        end)
    schedule;
  Array.iteri
    (fun i th ->
      if not th.r_done then invalid "incomplete schedule: thread %d unfinished" i;
      if Memsys.pending_count t.mem ~tid:i > 0 then
        invalid "incomplete schedule: thread %d has pending entries" i)
    ths;
  let memory =
    List.sort compare (List.map (fun a -> (a, Memsys.read t.mem a)) watch_mem)
  in
  let registers =
    List.sort compare
      (List.map
         (fun (ti, r) ->
           let th = ths.(ti) in
           let v =
             match Code.reg_slot th.r_code r with
             | None -> 0
             | Some s -> (
               match th.r_ctx.Code.regs.(s) with
               | Code.Val v -> v
               | Code.Pend p -> Memsys.force t.mem ~tid:ti p)
           in
           (ti, r, v))
         watch_regs)
  in
  ({ Sc_ref.memory; registers }, Memsys.reorders t.mem - reorders_before)
