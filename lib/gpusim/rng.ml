(* SplitMix64 (Steele, Lea, Flood; JDK 8).  Small state, good statistical
   quality, and cheap splitting -- ideal for seeding millions of short
   simulated executions reproducibly. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

(* In-place [create]: restart an existing generator on a fresh seed
   without allocating a new state record. *)
let reseed t seed = t.state <- mix (Int64.of_int seed)

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (int64 t) }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let subseed seed i =
  if i < 0 then invalid_arg "Rng.subseed: negative index";
  (* Jump directly to the i-th state of [create seed]'s stream; the result
     equals the (i+1)-th [bits30] draw without materialising a generator,
     so per-job seeds can be derived in any order (or concurrently). *)
  let state =
    Int64.add (mix (Int64.of_int seed))
      (Int64.mul (Int64.of_int (i + 1)) golden_gamma)
  in
  Int64.to_int (Int64.shift_right_logical (mix state) 34)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over 30 bits avoids modulo bias for the small
     bounds used throughout the simulator. *)
  if n > 1 lsl 29 then invalid_arg "Rng.int: bound too large";
  let mask =
    let rec widen m = if m >= n - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = bits30 t land mask in
    if v < n then v else draw ()
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. 0x1.0p-53

let bool t = Int64.compare (int64 t) 0L < 0

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_distinct t m n =
  if m < 0 || m > n then invalid_arg "Rng.sample_distinct";
  (* Partial Fisher-Yates over [0, n): O(n) space but n is small in all of
     our uses (scratchpad regions, thread ids). *)
  let a = Array.init n (fun i -> i) in
  let picked = ref [] in
  for i = 0 to m - 1 do
    let j = int_in t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp;
    picked := a.(i) :: !picked
  done;
  !picked
