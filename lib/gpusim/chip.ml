type architecture = Fermi | Kepler | Maxwell

type traffic = {
  w_ld : float;
  w_st : float;
  run_ld : float array;
  run_st : float array;
  trans_bonus : float;
  flush_bonus : float;
  flush_cap : int;
  boundary_factor : float;
}

type weakness = {
  patch_size : int;
  n_partitions : int;
  base_delay : float;
  gain : float;
  max_delay : float;
  knee : float;
  decay_per_tick : float;
  queue_cap : int;
  st_delay_w : float;
  ld_delay_w : float;
  cross : float;
  same_patch_leak : float;
}

type cost_model = {
  cycles_alu : int;
  cycles_mem : int;
  cycles_atomic : int;
  cycles_fence_base : int;
  cycles_fence_per_entry : int;
  parallelism : int;
  energy_alu : float;
  energy_mem : float;
  energy_atomic : float;
  energy_fence : float;
  static_power : float;
  nvml_supported : bool;
}

type t = {
  name : string;
  full_name : string;
  architecture : architecture;
  released : int;
  warp_size : int;
  max_concurrent : int;
  l2_words : int;
  traffic : traffic;
  weakness : weakness;
  cost : cost_model;
}

let architecture_name = function
  | Fermi -> "Fermi"
  | Kepler -> "Kepler"
  | Maxwell -> "Maxwell"

let partition chip addr =
  let w = chip.weakness in
  addr / w.patch_size mod w.n_partitions

(* Shared structural defaults.  Individual chips override the parameters
   that distinguish them; the comments on each chip say which Table 2 /
   Fig. 3 phenomenon the overrides target. *)

let kepler_weakness =
  { patch_size = 32; n_partitions = 8; base_delay = 0.04; gain = 1.15;
    max_delay = 0.985; knee = 18.0; decay_per_tick = 0.985; queue_cap = 6;
    st_delay_w = 1.0; ld_delay_w = 1.0; cross = 0.3; same_patch_leak = 0.0 }

let fermi_weakness =
  { kepler_weakness with patch_size = 64; base_delay = 0.05; gain = 1.2 }

let maxwell_weakness =
  { kepler_weakness with patch_size = 64; base_delay = 0.035; gain = 1.1;
    same_patch_leak = 0.015 }

(* Kepler (Titan, K20): back-to-back stores build write-buffer (WAW)
   pressure, so the hump in [run_st] makes st-pairs attractive and the
   winning sequence the rotation class of "ld st2 ld" (Table 2). *)
let kepler_traffic =
  { w_ld = 1.0; w_st = 1.2;
    run_ld = [| 1.0; 0.6; 0.36; 0.2; 0.1 |];
    run_st = [| 1.0; 1.3; 0.2; 0.1; 0.05 |];
    trans_bonus = 0.2; flush_bonus = 0.9; flush_cap = 4;
    boundary_factor = 0.3 }

(* Fermi (C2075, C2050): transitions dominate, so strict ld/st alternation
   ("ld st") wins. *)
let fermi_traffic =
  { w_ld = 1.0; w_st = 1.0;
    run_ld = [| 1.0; 0.5; 0.25; 0.12; 0.05 |];
    run_st = [| 1.0; 0.5; 0.25; 0.12; 0.05 |];
    trans_bonus = 2.0; flush_bonus = 0.2; flush_cap = 4;
    boundary_factor = 0.5 }

(* Load-dominant profiles (980, K5200): sustained loads keep read-port
   pressure and a single store triggers a dirty-writeback burst, so the
   "ld4 st" rotation class wins; the flush cap picks the rotation. *)
let load_heavy_traffic ~flush_cap ~boundary_factor =
  { w_ld = 1.2; w_st = 0.5;
    run_ld = [| 1.0; 1.0; 1.0; 1.0; 0.12 |];
    run_st = [| 1.0; 0.3; 0.1; 0.1; 0.05 |];
    trans_bonus = 0.1; flush_bonus = 0.6; flush_cap; boundary_factor }

let modern_cost =
  { cycles_alu = 1; cycles_mem = 2; cycles_atomic = 8;
    cycles_fence_base = 12; cycles_fence_per_entry = 4; parallelism = 16;
    energy_alu = 0.5; energy_mem = 1.5; energy_atomic = 4.0;
    energy_fence = 6.0; static_power = 0.8; nvml_supported = false }

let kepler_cost =
  { modern_cost with cycles_atomic = 12; cycles_fence_base = 25;
    cycles_fence_per_entry = 6; energy_fence = 10.0; static_power = 1.0 }

let fermi_cost =
  { modern_cost with cycles_mem = 3; cycles_atomic = 20;
    cycles_fence_base = 60; cycles_fence_per_entry = 10; parallelism = 8;
    energy_mem = 2.5; energy_atomic = 8.0; energy_fence = 25.0;
    static_power = 1.6 }

let gtx980 =
  { name = "980"; full_name = "GTX 980"; architecture = Maxwell;
    released = 2014; warp_size = 4; max_concurrent = 64; l2_words = 2048;
    traffic = load_heavy_traffic ~flush_cap:4 ~boundary_factor:0.4;
    weakness = maxwell_weakness;
    cost = { modern_cost with nvml_supported = false } }

let k5200 =
  { name = "K5200"; full_name = "Quadro K5200"; architecture = Kepler;
    released = 2014; warp_size = 4; max_concurrent = 56; l2_words = 1536;
    traffic = load_heavy_traffic ~flush_cap:3 ~boundary_factor:0.1;
    weakness = kepler_weakness;
    cost = { kepler_cost with nvml_supported = true } }

let titan =
  { name = "Titan"; full_name = "GTX Titan"; architecture = Kepler;
    released = 2013; warp_size = 4; max_concurrent = 56; l2_words = 1536;
    traffic = kepler_traffic;
    weakness = { kepler_weakness with gain = 1.18 };
    cost = { kepler_cost with nvml_supported = true } }

let k20 =
  { name = "K20"; full_name = "Tesla K20"; architecture = Kepler;
    released = 2013; warp_size = 4; max_concurrent = 48; l2_words = 1280;
    traffic = kepler_traffic;
    weakness = kepler_weakness;
    cost = { kepler_cost with nvml_supported = true } }

let gtx770 =
  { name = "770"; full_name = "GTX 770"; architecture = Kepler;
    released = 2013; warp_size = 4; max_concurrent = 48; l2_words = 512;
    (* boundary_factor 1.0 favours the "st2 ld2" rotation (Table 2) and
       the chip's fence-placement quirk discussed in Sec. 5.2. *)
    traffic = { kepler_traffic with boundary_factor = 1.3 };
    weakness = { kepler_weakness with base_delay = 0.09 };
    cost = { kepler_cost with cycles_fence_base = 45;
             cycles_fence_per_entry = 9; energy_fence = 18.0;
             nvml_supported = false } }

let c2075 =
  { name = "C2075"; full_name = "Tesla C2075"; architecture = Fermi;
    released = 2011; warp_size = 4; max_concurrent = 40; l2_words = 512;
    traffic = fermi_traffic;
    weakness = fermi_weakness;
    cost = { fermi_cost with nvml_supported = true } }

let c2050 =
  { name = "C2050"; full_name = "Tesla C2050"; architecture = Fermi;
    released = 2010; warp_size = 4; max_concurrent = 40; l2_words = 512;
    traffic = { fermi_traffic with boundary_factor = 0.45 };
    weakness = { fermi_weakness with base_delay = 0.045 };
    cost = { fermi_cost with cycles_fence_base = 70;
             cycles_fence_per_entry = 11; nvml_supported = false } }

let all = [ gtx980; k5200; titan; k20; gtx770; c2075; c2050 ]

let by_name name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun c -> String.lowercase_ascii c.name = target) all

let sequential =
  { name = "SC"; full_name = "sequentially consistent reference";
    architecture = Maxwell; released = 0; warp_size = 4;
    max_concurrent = 64; l2_words = 2048;
    traffic = fermi_traffic;
    weakness =
      { patch_size = 32; n_partitions = 8; base_delay = 0.0; gain = 0.0;
        max_delay = 0.0; knee = 1.0; decay_per_tick = 0.9; queue_cap = 1;
        st_delay_w = 0.0; ld_delay_w = 0.0; cross = 0.0;
        same_patch_leak = 0.0 };
    cost = modern_cost }
