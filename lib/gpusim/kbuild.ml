open Kernel

let kernel name ~params body = label { name; params; body }

let int n = Int n
let reg r = Reg r
let param p = Param p
let tid = Special Tid
let bid = Special Bid
let bdim = Special Bdim
let gdim = Special Gdim

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( mod ) a b = Binop (Rem, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (Band, Binop (Ne, a, Int 0), Binop (Ne, b, Int 0))
let ( || ) a b = Binop (Bor, Binop (Ne, a, Int 0), Binop (Ne, b, Int 0))
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)
let not_ a = Unop (Lnot, a)

let def r e = stmt (Assign (r, e))

let load dst ?(space = Global) addr = stmt (Load { dst; space; addr })

let store ?(space = Global) addr value = stmt (Store { space; addr; value })

let atomic ?dst ?(space = Global) addr op = stmt (Atomic { dst; space; addr; op })

let atomic_cas ?dst ?space addr ~expected ~desired =
  atomic ?dst ?space addr (Acas (expected, desired))

let atomic_exch ?dst ?space addr v = atomic ?dst ?space addr (Aexch v)
let atomic_add ?dst ?space addr v = atomic ?dst ?space addr (Aadd v)
let atomic_min ?dst ?space addr v = atomic ?dst ?space addr (Amin v)
let atomic_max ?dst ?space addr v = atomic ?dst ?space addr (Amax v)

let fence = stmt (Fence Device)
let fence_block = stmt (Fence Cta)
let barrier = stmt Barrier
let return = stmt Return

let if_ c t e = stmt (If (c, t, e))
let when_ c t = if_ c t []
let while_ c b = stmt (While (c, b))

let global_tid r = def r (tid + (bid * bdim))

(* The lock/unlock device functions of CUDA by Example (Fig. 1 of the
   paper).  We reuse one scratch register name across all call sites; the
   spin overwrites it on every iteration so sharing is harmless. *)
let lock mutex =
  [ atomic_cas ~dst:"_lock_old" mutex ~expected:(int 0) ~desired:(int 1);
    while_
      (reg "_lock_old" <> int 0)
      [ atomic_cas ~dst:"_lock_old" mutex ~expected:(int 0) ~desired:(int 1) ] ]

let unlock mutex = atomic_exch mutex (int 0)
