(** Root-cause diagnostics for weak-memory errors.

    The testing environment "provides a means to help identify the root
    causes" of weak-memory errors (Sec. 1 of the paper).  This module
    attaches to a device, records every out-of-order commit as a pair of
    addresses (the overtaken operation and the one that overtook it), and
    aggregates the pairs into a ranked report.  Combined with the memory
    map of an application (which array occupies which address range), the
    report points at the communication idiom that was broken. *)

type t

(** A named address range, e.g. an application array. *)
type region = { rname : string; base : int; len : int }

val attach : Sim.t -> t
(** Start recording: subscribes to the device's trace sink and
    aggregates every {!Trace.Reorder} event. *)

val detach : Sim.t -> t -> unit
(** Stop observing (recorded pairs remain readable). *)

val clear : t -> unit

val add_region : t -> string -> base:int -> len:int -> unit
(** Name an address range so reports show ["result\[+0\]"] instead of a
    raw address. *)

type finding = {
  overtaken : string;  (** symbolised address whose effect was delayed *)
  committed : string;  (** symbolised address that became visible first *)
  count : int;
}

val report : t -> finding list
(** Aggregated reorder pairs, most frequent first. *)

val pp_report : Format.formatter -> finding list -> unit

val describe : t -> int -> string
(** Symbolise one address against the recorded regions. *)
