(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    All randomness in the simulator and in experiment campaigns flows from
    values of type {!t}, so that any experiment is exactly reproducible from
    its seed.  The generator is mutable; use {!split} to derive independent
    streams for sub-experiments without sharing state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val reseed : t -> int -> unit
(** [reseed t seed] restarts [t] on [seed] in place: afterwards [t]'s
    stream is indistinguishable from [create seed]'s.  Lets a recycled
    simulator reuse its generator without allocating. *)

val copy : t -> t
(** [copy t] is a generator with the same current state as [t]; advancing
    one does not affect the other. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val subseed : int -> int -> int
(** [subseed seed i] is the [i]-th value of the {!bits30} stream of
    [create seed], computed purely (O(1), no shared state).  Campaign
    drivers use it to pre-derive independent per-job seeds up front, so a
    job's result is a function of [(seed, i)] alone — never of execution
    order.  Requires [i >= 0]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t m n] returns [m] distinct values drawn uniformly
    from [\[0, n)], in random order.  Requires [0 <= m <= n]. *)
