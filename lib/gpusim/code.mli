(** Compilation of kernels to a flat, directly-executable form.

    The structured {!Kernel} AST is lowered once per launch to an array of
    operations over pre-resolved register slots, with expressions staged
    into closures.  Kernel parameters are bound to the launch arguments at
    compile time.  This keeps the per-instruction interpretation cost low
    enough to run the paper's campaigns (hundreds of thousands of simulated
    executions) in seconds. *)

exception Trap of string
(** Raised during execution on kernel faults: out-of-bounds accesses,
    division by zero, or a read of a register holding no value.  The
    simulator turns it into an erroneous launch outcome. *)

exception Unresolved of Memsys.pending
(** Raised when an instruction needs the value of a still-pending load.
    The scheduler parks the thread until the load commits and then
    re-executes the instruction (expression evaluation is effect-free up
    to the raise, so re-execution is sound). *)

(** Per-thread execution context. *)
type tctx = {
  gid : int;  (** physical thread index, keys the memory subsystem *)
  regs : rv array;
  l_tid : int;  (** logical [threadIdx.x] (after randomisation) *)
  l_bid : int;  (** logical [blockIdx.x] *)
  l_bdim : int;
  l_gdim : int;
  mem : Memsys.t;
  shared : int array;  (** the block's shared memory *)
}

and rv = Val of int | Pend of Memsys.pending

type ev = tctx -> int
(** A staged expression evaluator.  Reading a register that holds a
    pending load forces it (dependency ordering). *)

type op =
  | Oassign of int * ev
  | Oload of { site : int; dst : int; space : Kernel.space; addr : ev }
  | Ostore of { site : int; space : Kernel.space; addr : ev; value : ev }
  | Oatomic of {
      site : int;
      dst : int option;
      space : Kernel.space;
      addr : ev;
      (* operand evaluators, run before the atomic takes effect *)
      prepare : tctx -> int -> int;
          (** [prepare ctx] is evaluated to a pure [old -> new] function *)
    }
  | Ofence of Kernel.fence_scope
  | Obarrier
  | Ojump of int
  | Ojz of ev * int  (** jump to target when the condition is zero *)
  | Oreturn

type t = {
  kernel_name : string;
  ops : op array;
  n_regs : int;
  slots : (string * int) list;  (** register-name [->] slot mapping *)
}

val reg_slot : t -> string -> int option
(** The slot allocated to a register name, if the kernel mentions it.
    Lets replay/checker code read back named registers from a context. *)

val compile : Kernel.t -> args:(string * int) list -> t
(** Lower a labelled kernel, binding each parameter to its argument.
    Raises [Invalid_argument] if an argument is missing or unused. *)

val make_ctx :
  code:t ->
  gid:int ->
  l_tid:int -> l_bid:int -> l_bdim:int -> l_gdim:int ->
  mem:Memsys.t -> shared:int array ->
  tctx

val read_reg : tctx -> int -> int
(** Read a register slot.
    @raise Unresolved if it holds a load that has not completed. *)
