type event =
  | Launch_begin of {
      kernel : string;
      grid : int;
      block : int;
      stress_blocks : int;
      stress_threads : int;
    }
  | Launch_end of {
      outcome : string;
      divergence : bool;
      metrics : (string * int) list;
    }
  | Access of { tid : int; addr : int; write : bool; atomic : bool }
  | Issue of { tid : int; addr : int; part : int; is_store : bool }
  | Commit of {
      tid : int;
      addr : int;
      is_store : bool;
      value : int;
      reordered : bool;
    }
  | Reorder of { tid : int; overtaken : int; committed : int }
  | Atomic_rmw of { tid : int; addr : int; before : int; after : int }
  | Fence of { tid : int; pending : int; device_scope : bool }
  | Barrier_wait of { tid : int; block : int }
  | Barrier_release of { block : int; by_exit : bool }
  | Thread_done of { tid : int; daemon : bool }
  | Contention of { part : int; read : float; write : float }
  | Bitflip of { tid : int; addr : int; bit : int; before : int; after : int }

type record = { tick : int; event : event }

type t = {
  mutable ring : record array;  (* [||] when no buffer is enabled *)
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable emitted : int;
  mutable subscribers : (int * (tick:int -> event -> unit)) list;
  mutable next_id : int;
  mutable active : bool;  (* cached: ring or subscribers present *)
}

let default_capacity = 65536

let create () =
  { ring = [||]; head = 0; len = 0; emitted = 0; subscribers = [];
    next_id = 0; active = false }

let refresh t = t.active <- Array.length t.ring > 0 || t.subscribers <> []

let active t = t.active
let enabled t = Array.length t.ring > 0

(* A shared placeholder for unwritten slots; never observable because
   [records] only reads the first [len] logical entries. *)
let dummy = { tick = 0; event = Barrier_release { block = 0; by_exit = false } }

let enable ?(capacity = default_capacity) t =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  t.ring <- Array.make capacity dummy;
  t.head <- 0;
  t.len <- 0;
  t.emitted <- 0;
  refresh t

let disable t =
  t.ring <- [||];
  t.head <- 0;
  t.len <- 0;
  refresh t

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.emitted <- 0

(* Back to the just-created state; used when a simulator instance is
   recycled for a fresh run. *)
let reset t =
  t.ring <- [||];
  t.head <- 0;
  t.len <- 0;
  t.emitted <- 0;
  t.subscribers <- [];
  t.next_id <- 0;
  t.active <- false

let emit t ~tick event =
  let cap = Array.length t.ring in
  if cap > 0 then begin
    t.ring.(t.head) <- { tick; event };
    t.head <- (t.head + 1) mod cap;
    if t.len < cap then t.len <- t.len + 1;
    t.emitted <- t.emitted + 1
  end;
  match t.subscribers with
  | [] -> ()
  | subs -> List.iter (fun (_, f) -> f ~tick event) subs

let records t =
  let cap = Array.length t.ring in
  if cap = 0 || t.len = 0 then []
  else begin
    let start = (t.head - t.len + cap) mod cap in
    List.init t.len (fun i -> t.ring.((start + i) mod cap))
  end

let emitted t = t.emitted
let dropped t = t.emitted - t.len

let subscribe t f =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.subscribers <- t.subscribers @ [ (id, f) ];
  refresh t;
  id

let unsubscribe t id =
  t.subscribers <- List.filter (fun (i, _) -> i <> id) t.subscribers;
  refresh t

let event_name = function
  | Launch_begin _ -> "launch_begin"
  | Launch_end _ -> "launch_end"
  | Access _ -> "access"
  | Issue _ -> "issue"
  | Commit _ -> "commit"
  | Reorder _ -> "reorder"
  | Atomic_rmw _ -> "atomic_rmw"
  | Fence _ -> "fence"
  | Barrier_wait _ -> "barrier_wait"
  | Barrier_release _ -> "barrier_release"
  | Thread_done _ -> "thread_done"
  | Contention _ -> "contention"
  | Bitflip _ -> "bitflip"

let tid_of_event = function
  | Access { tid; _ }
  | Issue { tid; _ }
  | Commit { tid; _ }
  | Reorder { tid; _ }
  | Atomic_rmw { tid; _ }
  | Fence { tid; _ }
  | Barrier_wait { tid; _ }
  | Thread_done { tid; _ }
  | Bitflip { tid; _ } -> Some tid
  | Launch_begin _ | Launch_end _ | Barrier_release _ | Contention _ -> None

let pp_event ppf = function
  | Launch_begin { kernel; grid; block; stress_blocks; stress_threads } ->
    Fmt.pf ppf "launch_begin %s <<<%d,%d>>> +%d stress blocks (%d threads)"
      kernel grid block stress_blocks stress_threads
  | Launch_end { outcome; divergence; _ } ->
    Fmt.pf ppf "launch_end %s%s" outcome
      (if divergence then " [divergence]" else "")
  | Access { tid; addr; write; atomic } ->
    Fmt.pf ppf "access t%d %s%s @%d" tid
      (if write then "write" else "read")
      (if atomic then " (atomic)" else "")
      addr
  | Issue { tid; addr; part; is_store } ->
    Fmt.pf ppf "issue t%d %s @%d (part %d)" tid
      (if is_store then "st" else "ld")
      addr part
  | Commit { tid; addr; is_store; value; reordered } ->
    Fmt.pf ppf "commit t%d %s @%d = %d%s" tid
      (if is_store then "st" else "ld")
      addr value
      (if reordered then " [reordered]" else "")
  | Reorder { tid; overtaken; committed } ->
    Fmt.pf ppf "reorder t%d @%d overtaken by @%d" tid overtaken committed
  | Atomic_rmw { tid; addr; before; after } ->
    Fmt.pf ppf "atomic t%d @%d: %d -> %d" tid addr before after
  | Fence { tid; pending; device_scope } ->
    Fmt.pf ppf "fence t%d (%s) %d pending" tid
      (if device_scope then "device" else "cta")
      pending
  | Barrier_wait { tid; block } -> Fmt.pf ppf "barrier_wait t%d b%d" tid block
  | Barrier_release { block; by_exit } ->
    Fmt.pf ppf "barrier_release b%d%s" block
      (if by_exit then " [by exit]" else "")
  | Thread_done { tid; daemon } ->
    Fmt.pf ppf "done t%d%s" tid (if daemon then " (stress)" else "")
  | Contention { part; read; write } ->
    Fmt.pf ppf "contention part %d: rd %.2f wr %.2f" part read write
  | Bitflip { tid; addr; bit; before; after } ->
    Fmt.pf ppf "bitflip t%d @%d bit %d: %d -> %d" tid addr bit before after

let pp_record ppf { tick; event } = Fmt.pf ppf "[%7d] %a" tick pp_event event
