(** The simulated GPU device and its host API.

    A {!t} bundles a chip profile, a seeded random stream, persistent
    global memory with a bump allocator, and an ambient {e testing
    environment}.  Application case studies are host programs written
    against this API: they allocate and initialise memory, launch kernels,
    and read results back — exactly the structure of a CUDA host program.

    The testing environment (thread-id randomisation and extra stressing
    blocks) is injected at {!launch} time without the application's
    involvement, which is what makes the paper's approach black-box: the
    application and the stress run as disjoint blocks on disjoint memory. *)

type t

(** Extra stressing blocks appended to a launch.  Built by the stressing
    strategies of the core library. *)
type stress_spec = {
  kernel : Kernel.t;
  blocks : int;
  block_size : int;
  args : (string * int) list;
  period : int;
      (** accesses per stressing-loop iteration (length of the access
          sequence); marks loop boundaries for the traffic model.  [0] for
          strategies without a fixed sequence. *)
  warmup : int;
      (** scheduler ticks given exclusively to the stressing blocks before
          application threads start, modelling stress that is already
          saturating the memory system when the kernel's work begins *)
  intensity : float;
      (** contention multiplier compensating for the scheduler's
          serialisation: on hardware, threads concentrated on a few
          locations apply pressure in parallel.  Computed by the stressing
          strategies from the thread-per-location count. *)
}

type environment = {
  randomise : bool;
      (** permute logical thread ids, respecting block and warp
          membership (Sec. 3.5) *)
  make_stress : t -> app_grid:int -> app_block:int -> stress_spec option;
      (** invoked at each launch to build the stressing blocks; receives
          the application's launch dimensions (the paper sizes stress as
          15-50% of the application's blocks) *)
}

val no_environment : environment

val create : ?words:int -> chip:Chip.t -> seed:int -> unit -> t
(** A fresh device with [words] (default 65536) of zeroed global memory. *)

val reset : t -> seed:int -> unit
(** Rewind a device to the state [create] with the same [words] and
    [chip] and the given [seed] would produce — zeroed memory, rewound
    allocator, default environment, reseeded random stream, cleared
    counters — reusing every internal buffer.  The basis of simulator
    recycling: running a workload on a reset device is bit-identical to
    running it on a fresh one. *)

val with_sim : ?words:int -> chip:Chip.t -> seed:int -> (t -> 'a) -> 'a
(** [with_sim ~chip ~seed f] borrows the calling domain's recycled
    simulator for this [(chip, words)] class — {!reset} to [seed] — and
    runs [f] on it.  Observably identical to
    [f (create ?words ~chip ~seed ())] but without re-creating the
    device: campaign hot paths run thousands of short executions per
    second, and the per-run allocation drops to (almost) the run itself.
    Each domain has its own arena, so parallel jobs never share a
    device.  Re-entrant borrows and ad-hoc chip values fall back to a
    fresh throwaway instance. *)

val chip : t -> Chip.t
val rng : t -> Rng.t
val mem : t -> Memsys.t

val set_environment : t -> environment -> unit

(** {1 Host memory operations} *)

val alloc : t -> int -> int
(** [alloc t n] reserves [n] words and returns the base address, aligned
    to the chip's patch size (allocations start at partition boundaries,
    like page-aligned CUDA allocations). *)

val read : t -> int -> int
val write : t -> int -> int -> unit
val fill : t -> base:int -> len:int -> int -> unit
val read_array : t -> base:int -> len:int -> int array
val write_array : t -> base:int -> int array -> unit

(** {1 Kernel launch} *)

type outcome =
  | Finished
  | Timeout  (** exceeded the tick budget (the paper's 30 s timeout) *)
  | Trapped of string  (** out-of-bounds access, division by zero, ... *)

type result = {
  outcome : outcome;
  barrier_divergence : bool;
      (** a block barrier was released because a thread exited — undefined
          behaviour in CUDA, reported as an error *)
  metrics : Metrics.t;
}

val launch :
  t ->
  ?max_ticks:int ->
  ?shared_words:int ->
  grid:int ->
  block:int ->
  Kernel.t ->
  args:(string * int) list ->
  result
(** Run a kernel to completion under the ambient environment.  [grid] and
    [block] must be positive; [block] at most 1024.  All pending memory
    operations are globally visible when [launch] returns. *)

val elapsed_cycles : t -> int
(** Modelled runtime (cycles) accumulated over every launch on this
    device — the simulator's analogue of timing kernels with CUDA
    events. *)

val consumed_energy : t -> float
(** Modelled energy accumulated over every launch (the analogue of the
    paper's NVML-based estimates). *)

val reorders : t -> int
(** Cumulative out-of-order commits observed on this device (a diagnostic
    for how much weak behaviour executions exhibited). *)

val bitflips : t -> int
(** Cumulative injected soft errors (store-commit bit flips) on this
    device; 0 unless soft-error injection was armed at {!create} time via
    {!set_soft_error_default}. *)

(** {1 Ambient fault-injection and supervision hooks}

    Process-wide configuration consulted by every device, installed by
    the supervision layer without widening application signatures. *)

val set_poll_hook : (unit -> unit) option -> unit
(** Install a cooperative cancellation point: the scheduler loop calls
    the hook every 1024 ticks.  A hook that raises aborts the launch (the
    exception propagates out of {!launch}); the supervision watchdog in
    [Core.Exec] uses this to cancel timed-out jobs, since OCaml domains
    cannot be killed. *)

val set_soft_error_default : (float * int) option -> unit
(** [set_soft_error_default (Some (rate, fault_seed))] arms gpuFI-style
    transient soft errors on every {e subsequently created} device: each
    committing plain store flips one bit of its value with probability
    [rate], drawn from a dedicated rng derived from [fault_seed] and the
    device seed (so flips are deterministic per device and the simulated
    schedule is unperturbed).  [None] (the default) disarms. *)

val soft_error_defaulted : unit -> (float * int) option

val trace : t -> Trace.t
(** The device's trace sink (shared with its {!Memsys}).  Enable a ring
    buffer on it before {!launch} to capture the execution's event
    stream ({!Trace.enable}), or subscribe observers — {!Diagnosis} and
    {!Race} attach this way.  Inactive (and free) by default. *)

(** {1 Deterministic fixed-schedule replay} *)

val run_schedule :
  t ->
  ?blocks:int array ->
  threads:Kernel.t list ->
  args:(string * int) list list ->
  watch_mem:int list ->
  watch_regs:(int * string) list ->
  Mcheck.step list ->
  Sc_ref.state * int
(** [run_schedule t ~threads ~args ~watch_mem ~watch_regs schedule]
    replays an {!Mcheck} witness schedule on this device's memory
    system: the schedule, not the rng, decides every thread step
    ([Sstep]) and every store-buffer commit ([Scommit], via
    {!Memsys.commit_nth}), so the replay is bit-deterministic and
    independent of the device seed.  Thread [i] of [threads] runs with
    geometry {!Sc_ref.layouts}[ ?blocks] against the device's current
    global memory (initialise it with {!write} first).  Returns the
    final state projected on the watch sets — for a valid witness,
    exactly [witness.state] — and the number of reorderings performed —
    exactly [witness.reorders].

    Programs are restricted as in {!Mcheck} (no loops, shared memory or
    random expressions); soft-error injection must be disarmed for the
    replay to match the checker.

    @raise Failure if the schedule is invalid for the program: stepping
    a finished, draining, parked or load-blocked thread, committing out
    of range, barrier divergence, or ending before every thread has
    finished with an empty queue. *)
