(* Bounded stateless model checking of the weak machine.

   The state space is the product of per-thread continuations (as in
   Sc_ref) and per-thread store-buffer FIFOs (as in Memsys): a transition
   either *steps* a thread (execute one statement, possibly issuing a
   pending entry) or *commits* one pending entry to global memory.  The
   commit rules — partition-head eligibility, reorder counting, load
   forwarding, fence drains, capacity eviction, atomic pre-commit —
   mirror Memsys exactly but with the contention-delay dice replaced by
   explicit nondeterminism, so the reachable final states form a
   superset of anything a seeded Sim run can produce, and every explored
   schedule can be replayed step-for-step through Sim.run_schedule.

   Exploration is a DFS with sleep sets (Godefroid-style dynamic
   partial-order reduction): after a transition [t] has been fully
   explored from a node, later siblings inherit [t] in their sleep set
   and skip it unless a dependent transition intervenes.  Sleep sets
   preserve all terminal states, which is what the verdict is computed
   from.  Soundness notes specific to this machine:

   - Same-thread transitions are always dependent, so the FIFO position
     and reorder flag of a commit are invariants of its Mazurkiewicz
     trace class: pruning on the reorder *bound* composes with sleep
     sets (an equivalent reordering of a pruned trace is pruned too).
   - Issue transitions of different threads commute only up to entry-id
     renaming; ids never escape into final-state projections and sleep
     sets are only consulted along a single DFS path, so the renaming is
     a symmetry and pruning stays sound.
   - Barrier steps (and thread exits in multi-member blocks) are
     treated as globally dependent; they are never slept. *)

module IMap = Map.Make (Int)
module SMap = Map.Make (String)

type step = Sstep of int | Scommit of int * int

type program = {
  threads : Kernel.t list;
  args : (string * int) list list;
  blocks : int array option;
  init : (int * int) list;
  watch_mem : int list;
  watch_regs : (int * string) list;
}

type witness = {
  state : Sc_ref.state;
  schedule : step list;
  reorders : int;
}

type stats = {
  explored : int;
  sleep_pruned : int;
  bound_pruned : int;
  completed : int;
  roots : int;
}

type verdict = Proved_sc | Weak of witness list

type result = {
  verdict : verdict;
  reachable : witness list;
  sc_states : Sc_ref.state list;
  stats : stats;
}

let pp_step ppf = function
  | Sstep t -> Fmt.pf ppf "S%d" t
  | Scommit (t, n) -> Fmt.pf ppf "C%d.%d" t n

let schedule_to_string sch =
  String.concat " " (List.map (Fmt.str "%a" pp_step) sch)

let schedule_of_string s =
  let parse tok =
    let fail () = invalid_arg ("Mcheck: bad schedule token " ^ tok) in
    if tok = "" then fail ()
    else
      match tok.[0] with
      | 'S' -> (
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some t -> Sstep t
        | None -> fail ())
      | 'C' -> (
        match String.split_on_char '.' (String.sub tok 1 (String.length tok - 1)) with
        | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some t, Some n -> Scommit (t, n)
          | _ -> fail ())
        | _ -> fail ())
      | _ -> fail ()
  in
  String.split_on_char ' ' s
  |> List.filter (fun t -> t <> "")
  |> List.map parse

(* ------------------------------------------------------------------ *)
(* Machine state (immutable: the DFS backtracks by dropping it)        *)

exception Blocked

type ekind = Eload | Estore

type ent = {
  id : int;  (* stable name for DPOR keys; FIFO position is positional *)
  addr : int;
  part : int;
  ek : ekind;
  sval : int;  (* store value; ignored for loads *)
}

type rval = Rv of int | Rp of int  (* Rp id: value of a pending load *)

type phase = Ready | Draining | AtBarrier | Finished

type tstate = {
  work : Kernel.stmt list;
  regs : rval SMap.t;
  queue : ent list;  (* FIFO, oldest first; only live entries *)
  phase : phase;
}

type mstate = {
  mem : int IMap.t;
  resolved : int IMap.t;  (* committed-load entry id -> value *)
  ths : tstate array;  (* copied on write *)
  reorders : int;
  next_id : int;
}

type geom = {
  n : int;
  lay : (int * int * int * int) array;  (* (tid, bid, bdim, gdim) *)
  bid_of : int array;  (* canonical block id per thread *)
  args : (string * int) list array;
  strong : bool;
  queue_cap : int;
  leak : bool;  (* same_patch_leak > 0: any entry may commit *)
  chip : Chip.t;
  words : int;
}

let with_th st ti ts =
  let ths = Array.copy st.ths in
  ths.(ti) <- ts;
  { st with ths }

let mem_find st a = match IMap.find_opt a st.mem with Some v -> v | None -> 0

let bounds g a =
  if a < 0 || a >= g.words then
    invalid_arg (Printf.sprintf "Mcheck: global access out of bounds: %d" a)

let rec eval g st ti (e : Kernel.exp) =
  let ts = st.ths.(ti) in
  match e with
  | Kernel.Int n -> n
  | Kernel.Reg r -> (
    match SMap.find_opt r ts.regs with
    | Some (Rv v) -> v
    | Some (Rp id) -> (
      match IMap.find_opt id st.resolved with
      | Some v -> v
      | None -> raise Blocked)
    | None -> 0)
  | Kernel.Param p -> (
    match List.assoc_opt p g.args.(ti) with
    | Some v -> v
    | None -> invalid_arg ("Mcheck: missing argument " ^ p))
  | Kernel.Special sp ->
    let l_tid, bid, bdim, gdim = g.lay.(ti) in
    (match sp with
    | Kernel.Tid -> l_tid
    | Kernel.Bid -> bid
    | Kernel.Bdim -> bdim
    | Kernel.Gdim -> gdim)
  | Kernel.Binop (op, a, b) ->
    let va = eval g st ti a and vb = eval g st ti b in
    let bool_ c = if c then 1 else 0 in
    (match op with
    | Kernel.Add -> va + vb
    | Kernel.Sub -> va - vb
    | Kernel.Mul -> va * vb
    | Kernel.Div -> if vb = 0 then 0 else va / vb
    | Kernel.Rem -> if vb = 0 then 0 else va mod vb
    | Kernel.Band -> va land vb
    | Kernel.Bor -> va lor vb
    | Kernel.Bxor -> va lxor vb
    | Kernel.Shl -> va lsl vb
    | Kernel.Shr -> va asr vb
    | Kernel.Eq -> bool_ (va = vb)
    | Kernel.Ne -> bool_ (va <> vb)
    | Kernel.Lt -> bool_ (va < vb)
    | Kernel.Le -> bool_ (va <= vb)
    | Kernel.Gt -> bool_ (va > vb)
    | Kernel.Ge -> bool_ (va >= vb)
    | Kernel.Min -> Int.min va vb
    | Kernel.Max -> Int.max va vb)
  | Kernel.Unop (Kernel.Neg, a) -> -eval g st ti a
  | Kernel.Unop (Kernel.Lnot, a) -> if eval g st ti a = 0 then 1 else 0
  | Kernel.Rand _ -> invalid_arg "Mcheck: random expressions are not supported"

(* Commit the [n]-th (FIFO) pending entry of thread [ti].  A commit with
   an older live entry remaining — i.e. [n > 0] — is a reordering, the
   weak-memory event the bound counts.  A committing load resolves to
   the newest older same-address pending store of its own thread
   (forwarding), else to global memory: exactly Memsys.load_value. *)
let commit_entry g st ti n =
  ignore g;
  let ts = st.ths.(ti) in
  let rec split i acc = function
    | [] -> invalid_arg "Mcheck: commit index out of range"
    | e :: tl -> if i = n then (List.rev acc, e, tl) else split (i + 1) (e :: acc) tl
  in
  let before, e, after = split 0 [] ts.queue in
  let st =
    match e.ek with
    | Estore -> { st with mem = IMap.add e.addr e.sval st.mem }
    | Eload ->
      let fwd =
        List.fold_left
          (fun acc e' -> if e'.ek = Estore && e'.addr = e.addr then Some e'.sval else acc)
          None before
      in
      let v = match fwd with Some v -> v | None -> mem_find st e.addr in
      { st with resolved = IMap.add e.id v st.resolved }
  in
  let queue = before @ after in
  let phase =
    if queue = [] && ts.phase = Draining then
      if ts.work = [] then Finished else Ready
    else ts.phase
  in
  let st = with_th st ti { ts with queue; phase } in
  ({ st with reorders = st.reorders + (if n > 0 then 1 else 0) }, e)

(* Barrier release, mirroring Sim.release_barrier: when every live
   member of a block is parked at the barrier, drain every member's
   queue in thread order (FIFO, so no reorderings) and wake the parked
   ones.  A release while some member has already exited is undefined
   in CUDA and rejected, as in Sc_ref. *)
let maybe_release g st bid =
  let members = ref [] in
  for i = g.n - 1 downto 0 do
    if g.bid_of.(i) = bid then members := i :: !members
  done;
  let members = !members in
  let live = List.filter (fun i -> st.ths.(i).phase <> Finished) members in
  let waiting = List.filter (fun i -> st.ths.(i).phase = AtBarrier) members in
  if live <> [] && List.length waiting = List.length live then begin
    if List.length live < List.length members then
      invalid_arg "Mcheck: barrier divergence";
    let rec drain st i =
      if st.ths.(i).queue = [] then st else drain (fst (commit_entry g st i 0)) i
    in
    let st = List.fold_left drain st members in
    let ths = Array.copy st.ths in
    List.iter
      (fun i ->
        let ts = ths.(i) in
        if ts.phase = AtBarrier then
          ths.(i) <- { ts with phase = (if ts.work = [] then Finished else Ready) })
      members;
    { st with ths }
  end
  else st

let block_members g bid =
  let c = ref 0 in
  Array.iter (fun b -> if b = bid then incr c) g.bid_of;
  !c

(* Enqueue an entry, evicting (committing) the FIFO head first when the
   queue is at chip capacity — Memsys.enqueue's capacity pressure, which
   is never a reordering.  Returns the eviction's memory footprint. *)
let issue g st ti ek addr sval =
  let st, fp =
    let q = st.ths.(ti).queue in
    if List.length q >= g.queue_cap && q <> [] then begin
      let st, e = commit_entry g st ti 0 in
      (st, [ (e.addr, e.ek = Estore) ])
    end
    else (st, [])
  in
  let e = { id = st.next_id; addr; part = Chip.partition g.chip addr; ek; sval } in
  let ts = st.ths.(ti) in
  let st = with_th st ti { ts with queue = ts.queue @ [ e ] } in
  ({ st with next_id = st.next_id + 1 }, e, fp)

(* Execute one statement of thread [ti].  Raises [Blocked] if it reads a
   register holding an uncommitted load (the thread parks, as in Sim).
   Returns the successor state, the memory footprint of any immediate
   global effect, and whether the step is globally synchronising. *)
let apply_step g st ti =
  let ts = st.ths.(ti) in
  match ts.work with
  | [] -> invalid_arg "Mcheck: step of a finished thread"
  | s :: rest -> (
    let set_reg st r v =
      let ts = st.ths.(ti) in
      with_th st ti { ts with regs = SMap.add r v ts.regs }
    in
    let advance st work =
      let ts = st.ths.(ti) in
      with_th st ti { ts with work }
    in
    let finish_if_done (st, fp, sync) =
      let ts = st.ths.(ti) in
      if ts.work = [] && ts.phase = Ready then begin
        let st = with_th st ti { ts with phase = Finished } in
        let multi = block_members g g.bid_of.(ti) > 1 in
        (maybe_release g st g.bid_of.(ti), fp, sync || multi)
      end
      else (st, fp, sync)
    in
    match s.Kernel.instr with
    | Kernel.Assign (r, e) ->
      let v = eval g st ti e in
      finish_if_done (advance (set_reg st r (Rv v)) rest, [], false)
    | Kernel.Load { dst; space = Kernel.Global; addr } ->
      let a = eval g st ti addr in
      bounds g a;
      if g.strong then
        finish_if_done (advance (set_reg st dst (Rv (mem_find st a))) rest, [ (a, false) ], false)
      else begin
        let st, e, fp = issue g st ti Eload a 0 in
        finish_if_done (advance (set_reg st dst (Rp e.id)) rest, fp, false)
      end
    | Kernel.Store { space = Kernel.Global; addr; value } ->
      let a = eval g st ti addr in
      let v = eval g st ti value in
      bounds g a;
      if g.strong then
        finish_if_done (advance { st with mem = IMap.add a v st.mem } rest, [ (a, true) ], false)
      else begin
        let st, _, fp = issue g st ti Estore a v in
        finish_if_done (advance st rest, fp, false)
      end
    | Kernel.Atomic { dst; space = Kernel.Global; addr; op } ->
      let a = eval g st ti addr in
      bounds g a;
      (* Operands are evaluated before the atomic takes effect (they may
         block on a pending load), as in Sim's Oatomic. *)
      let f =
        match op with
        | Kernel.Acas (e, d) ->
          let e = eval g st ti e and d = eval g st ti d in
          fun old -> if old = e then d else old
        | Kernel.Aexch v ->
          let v = eval g st ti v in
          fun _ -> v
        | Kernel.Aadd v ->
          let v = eval g st ti v in
          fun old -> old + v
        | Kernel.Amin v ->
          let v = eval g st ti v in
          fun old -> Int.min old v
        | Kernel.Amax v ->
          let v = eval g st ti v in
          fun old -> Int.max old v
      in
      let st =
        if g.strong then st
        else begin
          (* Retire pending same-address entries first (program-order
             past of the atomic), with normal reorder counting; every
             other still-pending entry is overtaken by the atomic's
             immediate effect: one reordering each.  Memsys.atomic. *)
          let rec retire st =
            let q = st.ths.(ti).queue in
            let rec find i = function
              | [] -> None
              | e :: tl -> if e.addr = a then Some i else find (i + 1) tl
            in
            match find 0 q with
            | Some i -> retire (fst (commit_entry g st ti i))
            | None -> st
          in
          let st = retire st in
          { st with reorders = st.reorders + List.length st.ths.(ti).queue }
        end
      in
      let old = mem_find st a in
      let st = { st with mem = IMap.add a (f old) st.mem } in
      let st = match dst with Some d -> set_reg st d (Rv old) | None -> st in
      finish_if_done (advance st rest, [ (a, true) ], false)
    | Kernel.Load _ | Kernel.Store _ | Kernel.Atomic _ ->
      invalid_arg "Mcheck: shared memory is not supported"
    | Kernel.Fence _ ->
      let st = advance st rest in
      let ts = st.ths.(ti) in
      if (not g.strong) && ts.queue <> [] then
        (with_th st ti { ts with phase = Draining }, [], false)
      else finish_if_done (st, [], false)
    | Kernel.If (c, t, e) ->
      let branch = if eval g st ti c <> 0 then t else e in
      finish_if_done (advance st (branch @ rest), [], false)
    | Kernel.While _ -> invalid_arg "Mcheck: loops are not supported"
    | Kernel.Barrier ->
      let st = advance st rest in
      let ts = st.ths.(ti) in
      let st = with_th st ti { ts with phase = AtBarrier } in
      (* Whether this arrival releases the block depends on schedule
         order, so every barrier step is globally synchronising. *)
      (maybe_release g st g.bid_of.(ti), [], true)
    | Kernel.Return -> finish_if_done (advance st [], [], false))

(* A commit may complete a fence drain and thereby finish the thread;
   in a multi-member block that exit is release-relevant. *)
let apply_commit g st ti n =
  let was = st.ths.(ti).phase in
  let st, e = commit_entry g st ti n in
  let ts = st.ths.(ti) in
  if ts.phase = Finished && was <> Finished then
    let multi = block_members g g.bid_of.(ti) > 1 in
    (maybe_release g st g.bid_of.(ti), e, multi)
  else (st, e, false)

(* ------------------------------------------------------------------ *)
(* Transition enumeration                                              *)

type trans = {
  t : step;
  key : int * int;  (* (tid, entry id); Steps use id -1 *)
  next : mstate;
  fp : (int * bool) list;  (* (address, is-write) global footprint *)
  sync : bool;  (* globally dependent (barriers, block exits) *)
}

(* FIFO positions eligible to commit: partition heads (no older pending
   entry in the same partition), as in Memsys.attempt_commits.  On chips
   with a same-partition leak any entry may commit (the checker
   over-approximates the probabilistic quirk). *)
let commit_positions g ts =
  let rec go n seen = function
    | [] -> []
    | e :: tl ->
      let ok = g.leak || not (List.mem e.part seen) in
      if ok then n :: go (n + 1) (e.part :: seen) tl
      else go (n + 1) (e.part :: seen) tl
  in
  go 0 [] ts.queue

let transitions g st =
  let steps = ref [] in
  for ti = g.n - 1 downto 0 do
    let ts = st.ths.(ti) in
    if ts.phase = Ready && ts.work <> [] then
      match (try Some (apply_step g st ti) with Blocked -> None) with
      | Some (next, fp, sync) ->
        steps := { t = Sstep ti; key = (ti, -1); next; fp; sync } :: !steps
      | None -> ()
  done;
  let commits = ref [] in
  for ti = g.n - 1 downto 0 do
    let ts = st.ths.(ti) in
    if ts.queue <> [] then
      List.iter
        (fun n ->
          let next, e, sync = apply_commit g st ti n in
          commits :=
            { t = Scommit (ti, n); key = (ti, e.id); next;
              fp = [ (e.addr, e.ek = Estore) ]; sync }
            :: !commits)
        (List.rev (commit_positions g ts))
  done;
  !steps @ !commits

let conflict fa fb =
  List.exists (fun (a, wa) -> List.exists (fun (b, wb) -> a = b && (wa || wb)) fb) fa

let dependent u v =
  fst u.key = fst v.key || u.sync || v.sync || conflict u.fp v.fp

(* ------------------------------------------------------------------ *)
(* Program setup                                                       *)

let validate p =
  if List.length p.threads <> List.length p.args then
    invalid_arg "Mcheck: threads/args length mismatch";
  List.iter
    (fun k ->
      Kernel.iter_stmts
        (fun s ->
          match s.Kernel.instr with
          | Kernel.While _ -> invalid_arg "Mcheck: loops are not supported"
          | Kernel.Load { space = Kernel.Shared; _ }
          | Kernel.Store { space = Kernel.Shared; _ }
          | Kernel.Atomic { space = Kernel.Shared; _ } ->
            invalid_arg "Mcheck: shared memory is not supported"
          | _ -> ())
        k)
    p.threads

let setup ~chip ~words p =
  validate p;
  let n = List.length p.threads in
  let lay = Sc_ref.layouts ?blocks:p.blocks n in
  let w = chip.Chip.weakness in
  let g =
    { n; lay;
      bid_of = Array.map (fun (_, b, _, _) -> b) lay;
      args = Array.of_list p.args;
      strong = w.Chip.max_delay <= 0.0 && w.Chip.base_delay <= 0.0;
      queue_cap = w.Chip.queue_cap;
      leak = w.Chip.same_patch_leak > 0.0;
      chip; words }
  in
  let mem = List.fold_left (fun m (a, v) -> IMap.add a v m) IMap.empty p.init in
  let ths =
    Array.of_list
      (List.map
         (fun (k : Kernel.t) ->
           { work = k.Kernel.body; regs = SMap.empty; queue = [];
             phase = (if k.Kernel.body = [] then Finished else Ready) })
         p.threads)
  in
  (g, { mem; resolved = IMap.empty; ths; reorders = 0; next_id = 0 })

let project (p : program) st : Sc_ref.state =
  let memory =
    List.sort compare (List.map (fun a -> (a, mem_find st a)) p.watch_mem)
  in
  let registers =
    List.sort compare
      (List.map
         (fun (ti, r) ->
           let v =
             match SMap.find_opt r st.ths.(ti).regs with
             | Some (Rv v) -> v
             | Some (Rp id) -> (
               match IMap.find_opt id st.resolved with
               | Some v -> v
               | None -> assert false (* terminal states have empty queues *))
             | None -> 0
           in
           (ti, r, v))
         p.watch_regs)
  in
  { Sc_ref.memory; registers }

let root_count ~chip ?(words = 2048) p =
  let g, st = setup ~chip ~words p in
  List.length (transitions g st)

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)

let check ~chip ~max_reorderings ?(dpor = true) ?roots ?(words = 2048)
    ?(fuel = 10_000_000) p =
  (* The SC oracle runs first: it shares Mcheck's program restrictions
     and deterministically rejects divergent programs. *)
  let sc_states =
    Sc_ref.run ?blocks:p.blocks ~threads:p.threads ~args:p.args ~init:p.init
      ~watch_mem:p.watch_mem ~watch_regs:p.watch_regs ()
  in
  let g, init = setup ~chip ~words p in
  let explored = ref 0
  and sleep_pruned = ref 0
  and bound_pruned = ref 0
  and completed = ref 0 in
  let results : (Sc_ref.state, step list * int) Hashtbl.t = Hashtbl.create 64 in
  let record st trace =
    incr completed;
    let s = project p st in
    if not (Hashtbl.mem results s) then
      Hashtbl.replace results s (List.rev trace, st.reorders)
  in
  let deadlock () = invalid_arg "Mcheck: barrier divergence" in
  let rec explore st trace sleep0 =
    let trs = transitions g st in
    if trs = [] then
      if Array.for_all (fun ts -> ts.phase = Finished) st.ths then
        record st trace
      else deadlock ()
    else begin
      let sleep = ref sleep0 in
      List.iter
        (fun tr ->
          if dpor && List.exists (fun u -> u.key = tr.key) !sleep then
            incr sleep_pruned
          else begin
            incr explored;
            if !explored > fuel then
              failwith "Mcheck: fuel exhausted (state space too large)";
            if tr.next.reorders > max_reorderings then incr bound_pruned
            else begin
              let child_sleep = List.filter (fun u -> not (dependent u tr)) !sleep in
              explore tr.next (tr.t :: trace) child_sleep
            end;
            if dpor then sleep := tr :: !sleep
          end)
        trs
    end
  in
  (* Root level: every root transition is visited in order; when a root
     shard is given, unselected roots are skipped but still enter the
     sleep set exactly as if a previous shard had explored them, so
     sharded exploration composes to the serial result. *)
  let root_trs = transitions g init in
  let n_roots = List.length root_trs in
  if root_trs = [] then begin
    if Array.for_all (fun ts -> ts.phase = Finished) init.ths then record init []
    else deadlock ()
  end
  else begin
    let selected i = match roots with None -> true | Some l -> List.mem i l in
    let sleep = ref [] in
    List.iteri
      (fun i tr ->
        if selected i then begin
          if dpor && List.exists (fun u -> u.key = tr.key) !sleep then
            incr sleep_pruned
          else begin
            incr explored;
            if tr.next.reorders > max_reorderings then incr bound_pruned
            else begin
              let child_sleep = List.filter (fun u -> not (dependent u tr)) !sleep in
              explore tr.next [ tr.t ] child_sleep
            end
          end
        end;
        if dpor then sleep := tr :: !sleep)
      root_trs
  end;
  let reachable =
    Hashtbl.fold
      (fun state (schedule, reorders) acc -> { state; schedule; reorders } :: acc)
      results []
    |> List.sort (fun a b -> compare a.state b.state)
  in
  let weak = List.filter (fun w -> not (List.mem w.state sc_states)) reachable in
  { verdict = (if weak = [] then Proved_sc else Weak weak);
    reachable; sc_states;
    stats =
      { explored = !explored; sleep_pruned = !sleep_pruned;
        bound_pruned = !bound_pruned; completed = !completed; roots = n_roots } }
