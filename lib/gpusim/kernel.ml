type space = Global | Shared

type special = Tid | Bid | Bdim | Gdim

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type unop = Neg | Lnot

type exp =
  | Int of int
  | Reg of string
  | Special of special
  | Param of string
  | Binop of binop * exp * exp
  | Unop of unop * exp
  | Rand of exp

type atomic =
  | Acas of exp * exp
  | Aexch of exp
  | Aadd of exp
  | Amin of exp
  | Amax of exp

type fence_scope = Cta | Device

type instr =
  | Assign of string * exp
  | Load of { dst : string; space : space; addr : exp }
  | Store of { space : space; addr : exp; value : exp }
  | Atomic of { dst : string option; space : space; addr : exp; op : atomic }
  | Fence of fence_scope
  | Barrier
  | If of exp * block * block
  | While of exp * block
  | Return

and stmt = { sid : int; instr : instr }

and block = stmt list

type t = { name : string; params : string list; body : block }

let stmt instr = { sid = -1; instr }

let label k =
  let next = ref 0 in
  let rec go blk = List.map go_stmt blk
  and go_stmt s =
    let sid = !next in
    incr next;
    let instr =
      match s.instr with
      | If (c, t, e) -> If (c, go t, go e)
      | While (c, b) -> While (c, go b)
      | ( Assign _ | Load _ | Store _ | Atomic _ | Fence _ | Barrier | Return )
        as i -> i
    in
    { sid; instr }
  in
  { k with body = go k.body }

let iter_stmts f k =
  let rec go blk = List.iter go_stmt blk
  and go_stmt s =
    f s;
    match s.instr with
    | If (_, t, e) -> go t; go e
    | While (_, b) -> go b
    | Assign _ | Load _ | Store _ | Atomic _ | Fence _ | Barrier | Return -> ()
  in
  go k.body

let max_sid k =
  let m = ref (-1) in
  iter_stmts (fun s -> if s.sid > !m then m := s.sid) k;
  !m

let count_stmts k =
  let n = ref 0 in
  iter_stmts (fun _ -> incr n) k;
  !n

let global_access_sites k =
  let acc = ref [] in
  let record s =
    match s.instr with
    | Load { space = Global; _ }
    | Store { space = Global; _ }
    | Atomic { space = Global; _ } -> acc := s.sid :: !acc
    | Load _ | Store _ | Atomic _
    | Assign _ | Fence _ | Barrier | If _ | While _ | Return -> ()
  in
  iter_stmts record k;
  List.rev !acc

let fence_sites k =
  let acc = ref [] in
  iter_stmts
    (fun s ->
      match s.instr with
      | Fence _ -> acc := s.sid :: !acc
      | Assign _ | Load _ | Store _ | Atomic _ | Barrier | If _ | While _
      | Return -> ())
    k;
  List.rev !acc

let strip_fences k =
  let rec go blk =
    List.filter_map
      (fun s ->
        match s.instr with
        | Fence _ -> None
        | If (c, t, e) -> Some { s with instr = If (c, go t, go e) }
        | While (c, b) -> Some { s with instr = While (c, go b) }
        | Assign _ | Load _ | Store _ | Atomic _ | Barrier | Return -> Some s)
      blk
  in
  { k with body = go k.body }

let insert_fences_after ~scope ~sites k =
  let is_global_access s =
    match s.instr with
    | Load { space = Global; _ }
    | Store { space = Global; _ }
    | Atomic { space = Global; _ } -> true
    | Load _ | Store _ | Atomic _
    | Assign _ | Fence _ | Barrier | If _ | While _ | Return -> false
  in
  let rec go blk =
    List.concat_map
      (fun s ->
        let s =
          match s.instr with
          | If (c, t, e) -> { s with instr = If (c, go t, go e) }
          | While (c, b) -> { s with instr = While (c, go b) }
          | Assign _ | Load _ | Store _ | Atomic _ | Fence _ | Barrier
          | Return -> s
        in
        if is_global_access s && sites s.sid then
          [ s; { sid = s.sid; instr = Fence scope } ]
        else [ s ])
      blk
  in
  { k with body = go k.body }
