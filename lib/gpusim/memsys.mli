(** The weak global-memory subsystem.

    Every thread owns a FIFO of {e pending} global-memory operations.
    Operations enter the FIFO at issue and take effect (commit) later,
    possibly out of program order, under these rules:

    - entries that map to the same memory {e partition} commit in FIFO
      order (so same-address operations are coherent, and two locations
      within one critical patch can never be observed out of order);
    - the probability that a commit attempt is deferred grows with the
      contention of the entry's partition — this is the lever that memory
      stressing pulls;
    - reading a register whose value comes from a pending load forces that
      load to resolve immediately (dependency ordering);
    - atomics take effect immediately but do not drain the FIFO;
    - fences drain the issuing thread's FIFO; a barrier drains a whole
      block (the caller enumerates the block's threads).

    Contention is tracked per partition in two pools (read and write
    traffic).  Stressing accesses feed the pools through a chip-specific
    response to the access kind and the preceding access pattern
    ({!Chip.traffic}), which is what makes some stressing sequences far
    more effective than others (Sec. 3.3 of the paper). *)

type t

type pending
(** A handle to a pending load. *)

val create : chip:Chip.t -> rng:Rng.t -> words:int -> nthreads:int -> t
(** A fresh subsystem with [words] of zeroed global memory and state for
    thread ids [0 .. nthreads-1].  When the chip is strong
    ([Chip.sequential]), all operations below degrade to immediate
    sequentially-consistent accesses. *)

val strong : t -> bool

(** {1 Host access (outside any launch)} *)

val read : t -> int -> int
val write : t -> int -> int -> unit
val words : t -> int

val set_stress_gain : t -> float -> unit
(** Per-launch multiplier applied to stressing contention (models the
    parallel pressure of threads concentrated on few locations). *)

val reset_threads : t -> nthreads:int -> unit
(** Prepare for a new launch: fresh pending queues for thread ids
    [0 .. nthreads-1], cleared contention pools and pattern state.  Global
    memory contents persist across launches.  The queues are preallocated
    slot arrays reused across launches, so this allocates only when the
    thread count grows past its high-water mark. *)

val reset_device : t -> unit
(** Return the subsystem to its just-created state — zeroed global memory,
    empty queues and pools, sequence and contention clocks at zero,
    counters cleared, soft errors disarmed, trace sink reset — while
    keeping every internal buffer for reuse.  Combined with a fresh rng
    seed this makes a recycled subsystem behaviourally indistinguishable
    from a newly created one, at near-zero allocation cost. *)

(** {1 Device operations} *)

val load : t -> tid:int -> addr:int -> pending
(** Issue a load; the result is unresolved until forced or committed. *)

val resolved : pending -> bool
(** Whether a pending load has its value (committed or forced). *)

val force : t -> tid:int -> pending -> int
(** Resolve a pending load now: forward from the newest older pending
    store of the same thread to the same address, else read memory.
    Idempotent. *)

val store : t -> tid:int -> addr:int -> value:int -> unit
(** Issue a store.  If the thread's FIFO is at capacity the oldest entry
    is committed first. *)

val atomic : t -> tid:int -> addr:int -> (int -> int) -> int
(** [atomic t ~tid ~addr f] atomically replaces [m] by [f m] and returns
    the previous value [m].  Pending same-address entries of [tid] are
    committed first so the atomic observes its own program-order past. *)

val drain : t -> tid:int -> int
(** Commit all pending entries of [tid] in sequence order (a fence).
    Returns the number of entries drained. *)

val drain_step : t -> tid:int -> bool
(** Commit at most one eligible entry of [tid], ignoring contention delay
    (used while a thread is stalled at a fence so that fence latency grows
    with queue occupancy).  Returns [true] when the FIFO is now empty. *)

val pending_count : t -> tid:int -> int
(** Number of pending entries of [tid].  O(1). *)

val commit_nth : t -> tid:int -> n:int -> unit
(** Commit the [n]-th pending entry of [tid] in FIFO order ([n = 0] is
    the oldest).  Deterministic replay hook for model-checker witness
    schedules ({!Sim.run_schedule}): the reorder/forwarding semantics
    are exactly those of the background committer, with the
    contention-delay dice removed.

    @raise Invalid_argument if [n] is outside [0 .. pending_count - 1]. *)

val attempt_commits : t -> tid:int -> unit
(** Background commit: for each partition-head entry of [tid], commit
    unless deferred by the contention-dependent delay. *)

val any_pending : t -> bool

val random_background_drain : t -> unit
(** Pick one thread that has pending entries and {!attempt_commits} on it;
    models the memory system draining buffers of descheduled threads. *)

(** {1 Contention} *)

val stress_access : t -> sid:int -> kind:[ `Load | `Store ] -> addr:int -> boundary:bool -> unit
(** Record a stressing access: touches memory and feeds the partition's
    contention pools through the chip's traffic response.  [sid] indexes
    per-stress-thread pattern state (previous kind, run length);
    [boundary] marks the first access of a stressing-loop iteration. *)

val app_access : t -> kind:[ `Load | `Store ] -> addr:int -> unit
(** Contention contribution of an ordinary application access (weaker than
    stressing, no pattern state). *)

val contention : t -> part:int -> kind:[ `Load | `Store ] -> float
(** Effective contention seen by a pending entry of the given kind in
    partition [part] (includes the cross-pool term). *)

(** {1 Bookkeeping} *)

val sink : t -> Trace.t
(** The device's trace sink.  The subsystem emits {!Trace.Access} (every
    application global access at issue), {!Trace.Issue} and
    {!Trace.Commit} (pending-entry lifecycle), {!Trace.Reorder} (every
    out-of-order commit, including atomics bypassing older pending
    operations) and {!Trace.Atomic_rmw} through it; {!Sim} shares the
    same sink for launch-level events.  Nothing is emitted (or
    allocated) while the sink is inactive. *)

val now : t -> int
(** The contention clock: monotone over the device's lifetime (never
    reset between launches), used as the trace timestamp. *)

val reorders : t -> int
(** Total out-of-order commits so far. *)

val stress_accesses : t -> int
(** Total stressing accesses performed (a campaign statistic). *)

(** {1 Soft-error injection} *)

val set_soft_errors : t -> (Rng.t * float) option -> unit
(** Arm (or disarm) transient soft errors: each committing plain store
    flips one low bit of its value with the given probability, drawn from
    the given {e dedicated} rng — never the device rng, so the simulated
    schedule is identical with and without injection; only stored values
    differ.  Every flip bumps {!bitflips} and emits {!Trace.Bitflip}.
    Atomics and host writes are never flipped (flipping a lock word would
    wedge the machine rather than model a data soft error). *)

val bitflips : t -> int
(** Total injected bit flips so far (0 unless armed). *)

val tick : t -> unit
(** Advance the contention clock by one scheduler step. *)

val rand : t -> int -> int
(** Device-side uniform random value in [\[0, bound)] ([0] if the bound is
    not positive); backs the kernel language's [Rand] expression. *)
