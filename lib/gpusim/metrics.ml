type t = {
  mutable ticks : int;
  mutable n_alu : int;
  mutable n_load : int;
  mutable n_store : int;
  mutable n_atomic : int;
  mutable n_fence : int;
  mutable fence_drained : int;
  mutable fence_stall_ticks : int;
  mutable n_reorder : int;
  mutable app_cycles : int;
  mutable n_bitflip : int;
}

let create () =
  { ticks = 0; n_alu = 0; n_load = 0; n_store = 0; n_atomic = 0; n_fence = 0;
    fence_drained = 0; fence_stall_ticks = 0; n_reorder = 0; app_cycles = 0;
    n_bitflip = 0 }

let reset m =
  m.ticks <- 0;
  m.n_alu <- 0;
  m.n_load <- 0;
  m.n_store <- 0;
  m.n_atomic <- 0;
  m.n_fence <- 0;
  m.fence_drained <- 0;
  m.fence_stall_ticks <- 0;
  m.n_reorder <- 0;
  m.app_cycles <- 0;
  m.n_bitflip <- 0

let add acc x =
  acc.ticks <- acc.ticks + x.ticks;
  acc.n_alu <- acc.n_alu + x.n_alu;
  acc.n_load <- acc.n_load + x.n_load;
  acc.n_store <- acc.n_store + x.n_store;
  acc.n_atomic <- acc.n_atomic + x.n_atomic;
  acc.n_fence <- acc.n_fence + x.n_fence;
  acc.fence_drained <- acc.fence_drained + x.fence_drained;
  acc.fence_stall_ticks <- acc.fence_stall_ticks + x.fence_stall_ticks;
  acc.n_reorder <- acc.n_reorder + x.n_reorder;
  acc.app_cycles <- acc.app_cycles + x.app_cycles;
  acc.n_bitflip <- acc.n_bitflip + x.n_bitflip

let total_mem_ops m = m.n_load + m.n_store + m.n_atomic

let launch_overhead = 100

let runtime_cycles ~(chip : Chip.t) m =
  launch_overhead + (m.app_cycles / chip.cost.parallelism)

let energy ~(chip : Chip.t) m =
  let c = chip.cost in
  let dynamic =
    (float_of_int m.n_alu *. c.energy_alu)
    +. (float_of_int (m.n_load + m.n_store) *. c.energy_mem)
    +. (float_of_int m.n_atomic *. c.energy_atomic)
    +. (float_of_int m.n_fence *. c.energy_fence)
  in
  dynamic +. (float_of_int (runtime_cycles ~chip m) *. c.static_power)

let to_assoc m =
  [ ("ticks", m.ticks); ("alu", m.n_alu); ("ld", m.n_load); ("st", m.n_store);
    ("atomic", m.n_atomic); ("fence", m.n_fence); ("drained", m.fence_drained);
    ("stall", m.fence_stall_ticks); ("reorder", m.n_reorder);
    ("app_cycles", m.app_cycles); ("bitflip", m.n_bitflip) ]

let pp ppf m =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> pf ppf "%s=%d" k v))
    (to_assoc m)
