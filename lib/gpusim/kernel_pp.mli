(** Pretty-printing of kernels in a CUDA-flavoured concrete syntax.

    Used by the CLI (`gpuwmm inspect`), by diagnosis reports (showing where
    empirical fence insertion placed fences), and by tests. *)

val pp_exp : Format.formatter -> Kernel.exp -> unit
val pp_instr : Format.formatter -> Kernel.instr -> unit

val pp_stmt : ?sids:bool -> Format.formatter -> Kernel.stmt -> unit
(** [~sids:true] prefixes each statement with its site id, e.g. [s12:]. *)

val pp : ?sids:bool -> Format.formatter -> Kernel.t -> unit

val to_string : ?sids:bool -> Kernel.t -> string
