(** A dynamic communication/race detector.

    Sec. 8 of the paper proposes "combining our techniques with race
    detectors to help pinpoint communication idioms in applications and
    developing targeted testing around these locations"; this module is
    that detector.  It observes every application global access during a
    run and reports the {e communication locations}: addresses touched by
    more than one thread with at least one write.  Locations only ever
    accessed atomically (e.g. a mutex word) are flagged — they are
    synchronisation rather than data, and the weak-memory hazards live in
    the plain-access locations communicated {e around} them. *)

type t

type finding = {
  addr : int;
  readers : int;  (** distinct reading threads *)
  writers : int;  (** distinct writing threads *)
  plain_accesses : int;
  atomic_accesses : int;
  atomic_only : bool;
}

val attach : Sim.t -> t
(** Start observing: subscribes to the device's trace sink and records
    every {!Trace.Access} event (application global accesses at issue).
    Multiple observers may coexist with each other and with a trace
    ring buffer. *)

val detach : Sim.t -> t -> unit
(** Stop observing (recorded findings remain readable). *)

val clear : t -> unit

val findings : t -> finding list
(** Communication locations (shared, with a writer), most-accessed first. *)

val data_locations : t -> int list
(** Addresses of plain-access (non-atomic-only) communication locations —
    the natural targets for {e targeted} stressing. *)

val pp_findings : Format.formatter -> finding list -> unit
