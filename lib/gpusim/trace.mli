(** Typed execution tracing for the simulator.

    Every device owns one {e sink}.  Simulator components ({!Memsys},
    {!Sim}) emit typed events through it; the sink fans them out to an
    optional bounded ring buffer (for post-mortem export) and to any
    number of subscribers (the {!Diagnosis} and {!Race} observers attach
    this way).  When nothing listens — the default — {!active} is a
    single mutable-field read and no event is ever allocated, which is
    the layer's zero-overhead-when-disabled contract: emit sites are
    written [if Trace.active sink then Trace.emit sink ...].

    Events carry only deterministic data (ticks, thread ids, addresses,
    modelled contention); never wall-clock times or worker identities.
    Consequently the trace of an execution is a pure function of
    [(chip, seed, program)], and merged traces collected through
    [Core.Exec] are bit-identical across serial and parallel backends
    (property-tested in [test/test_trace.ml]). *)

(** One simulator event.  The taxonomy spans the whole launch lifecycle:
    instruction-level memory traffic (issue/commit of pending
    operations, atomic RMWs), weak-memory incidents (out-of-order
    commits), synchronisation (fence drains, barrier waits and
    releases), thread retirement, per-partition contention samples, and
    launch begin/end markers carrying the launch's {!Metrics} as a
    structured key/value list. *)
type event =
  | Launch_begin of {
      kernel : string;
      grid : int;
      block : int;
      stress_blocks : int;  (** stressing blocks appended by the environment *)
      stress_threads : int;
    }
  | Launch_end of {
      outcome : string;  (** ["finished"], ["timeout"] or ["trapped: ..."] *)
      divergence : bool;
      metrics : (string * int) list;  (** [Metrics.to_assoc] of the launch *)
    }
  | Access of { tid : int; addr : int; write : bool; atomic : bool }
      (** an application global access at issue (the race detector's
          feed; stressing threads are excluded) *)
  | Issue of { tid : int; addr : int; part : int; is_store : bool }
      (** a pending entry entered the thread's FIFO *)
  | Commit of {
      tid : int;
      addr : int;
      is_store : bool;
      value : int;
      reordered : bool;  (** an older pending entry was overtaken *)
    }
  | Reorder of { tid : int; overtaken : int; committed : int }
      (** the visible weak-memory event: [committed] became globally
          visible while the older operation on [overtaken] was pending *)
  | Atomic_rmw of { tid : int; addr : int; before : int; after : int }
  | Fence of { tid : int; pending : int; device_scope : bool }
      (** fence executed with [pending] queued entries still to drain *)
  | Barrier_wait of { tid : int; block : int }
  | Barrier_release of { block : int; by_exit : bool }
      (** [by_exit]: released because a member thread exited (undefined
          behaviour in CUDA, reported as barrier divergence) *)
  | Thread_done of { tid : int; daemon : bool }
  | Contention of { part : int; read : float; write : float }
      (** periodic sample of one partition's modelled contention pools *)
  | Bitflip of { tid : int; addr : int; bit : int; before : int; after : int }
      (** an injected transient soft error: the store's committed value
          had [bit] flipped ([before -> after]).  Emitted only when
          {!Memsys.set_soft_errors} armed fault injection. *)

type record = { tick : int; event : event }

type t
(** A sink: ring buffer + subscribers.  Created inactive. *)

val create : unit -> t

val active : t -> bool
(** [true] iff a ring buffer is enabled or a subscriber is attached.
    Emit sites must guard on this so that disabled tracing allocates
    nothing. *)

val enabled : t -> bool
(** [true] iff a ring buffer is currently attached. *)

val default_capacity : int
(** 65536 records. *)

val enable : ?capacity:int -> t -> unit
(** Attach a bounded ring buffer (discarding any previous one).  Once
    full, the oldest record is overwritten; {!dropped} counts the
    overwrites.  [capacity] must be positive. *)

val disable : t -> unit
(** Detach the ring buffer (subscribers stay). *)

val clear : t -> unit
(** Forget buffered records and reset the emitted/dropped counters,
    keeping the buffer enabled. *)

val reset : t -> unit
(** Return the sink to its just-created state: ring buffer detached,
    records forgotten, all subscribers removed, handle counter rewound.
    Used when a simulator instance is recycled for a fresh run. *)

val emit : t -> tick:int -> event -> unit
(** Record an event: append to the ring buffer (if enabled) and call
    every subscriber.  Call only under an {!active} guard. *)

val records : t -> record list
(** Retained records, oldest first.  At most [capacity] of them; ticks
    are non-decreasing. *)

val emitted : t -> int
(** Events emitted towards the ring buffer since {!enable}/{!clear}. *)

val dropped : t -> int
(** Ring-buffer overwrites ([emitted - retained]). *)

val subscribe : t -> (tick:int -> event -> unit) -> int
(** Attach an observer; returns a handle for {!unsubscribe}.
    Subscribers see every event, buffered or not. *)

val unsubscribe : t -> int -> unit

val event_name : event -> string
(** Stable lower-snake-case tag, e.g. ["commit"]; exporters use it as
    the Chrome trace event name. *)

val tid_of_event : event -> int option
(** The acting thread, for events that have one. *)

val pp_event : Format.formatter -> event -> unit
val pp_record : Format.formatter -> record -> unit
