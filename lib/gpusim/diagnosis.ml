type region = { rname : string; base : int; len : int }

type t = {
  pairs : (int * int, int) Hashtbl.t;  (* (overtaken, committed) -> count *)
  mutable regions : region list;
  subscription : int;
}

let attach sim =
  let pairs = Hashtbl.create 64 in
  let subscription =
    Trace.subscribe (Sim.trace sim) (fun ~tick:_ ev ->
        match ev with
        | Trace.Reorder { overtaken; committed; _ } ->
          let key = (overtaken, committed) in
          let n =
            match Hashtbl.find_opt pairs key with Some n -> n | None -> 0
          in
          Hashtbl.replace pairs key (n + 1)
        | _ -> ())
  in
  { pairs; regions = []; subscription }

let detach sim t = Trace.unsubscribe (Sim.trace sim) t.subscription

let clear t = Hashtbl.reset t.pairs

let add_region t rname ~base ~len = t.regions <- { rname; base; len } :: t.regions

let describe t addr =
  let hit =
    List.find_opt (fun r -> addr >= r.base && addr < r.base + r.len) t.regions
  in
  match hit with
  | Some r -> Fmt.str "%s[+%d]" r.rname (addr - r.base)
  | None -> Fmt.str "@%d" addr

type finding = { overtaken : string; committed : string; count : int }

let report t =
  Hashtbl.fold
    (fun (o, c) count acc ->
      { overtaken = describe t o; committed = describe t c; count } :: acc)
    t.pairs []
  |> List.sort (fun a b -> compare b.count a.count)

let pp_report ppf findings =
  if findings = [] then Fmt.pf ppf "no reordering observed@."
  else
    List.iter
      (fun f ->
        Fmt.pf ppf "%6d x  %s overtaken by %s@." f.count f.overtaken
          f.committed)
      findings
