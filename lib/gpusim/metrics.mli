(** Execution counters collected during a kernel launch.

    The counters feed the cost model of Sec. 6 (runtime and energy of
    fencing strategies) and the reordering diagnostics.  Counters labelled
    "app" exclude the activity of stressing (daemon) threads, so that
    runtime/energy results describe the application itself, as measured by
    CUDA events in the paper. *)

type t = {
  mutable ticks : int;  (** scheduler steps for the whole launch *)
  mutable n_alu : int;
  mutable n_load : int;
  mutable n_store : int;
  mutable n_atomic : int;
  mutable n_fence : int;
  mutable fence_drained : int;  (** pending entries drained by fences *)
  mutable fence_stall_ticks : int;  (** ticks threads spent draining *)
  mutable n_reorder : int;
      (** commits that overtook an older pending operation of the same
          thread (a visible weak-memory event) *)
  mutable app_cycles : int;
      (** weighted cycle cost of application (non-daemon) threads *)
  mutable n_bitflip : int;
      (** injected transient soft errors (store-commit bit flips); always
          0 unless {!Memsys.set_soft_errors} armed fault injection *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val total_mem_ops : t -> int

val runtime_cycles : chip:Chip.t -> t -> int
(** Modelled kernel runtime: a fixed per-launch overhead plus the
    application cycle count divided by the chip's notional parallelism. *)

val energy : chip:Chip.t -> t -> float
(** Modelled energy: per-operation energy plus static power drawn over the
    modelled runtime. *)

val to_assoc : t -> (string * int) list
(** Structured key/value export of every counter, in a stable order with
    stable keys ([ticks], [alu], [ld], [st], [atomic], [fence],
    [drained], [stall], [reorder], [app_cycles], [bitflip]).  This is the single
    source for machine-readable output: {!Sim}'s [Launch_end] trace
    events and both telemetry exporters (Chrome trace JSON and JSONL)
    consume it, and {!pp} renders it. *)

val pp : Format.formatter -> t -> unit
(** [k=v] pairs of {!to_assoc}, space-separated. *)
