type kind = Load_k | Store_k

type entry = {
  seq : int;
  addr : int;
  part : int;
  ekind : kind;
  store_value : int;  (* meaningful for stores *)
  mutable resolved : bool;  (* a load that has its value *)
  mutable load_value : int;  (* meaningful once [resolved] *)
  leak : bool;  (* exempt from same-partition FIFO (GTX 980 quirk) *)
  mutable alive : bool;  (* still pending in its thread's queue *)
}

type pending = entry

(* A placeholder for unused queue slots; never enqueued, never committed,
   so its mutable fields are never written. *)
let dummy_entry =
  { seq = 0; addr = 0; part = 0; ekind = Load_k; store_value = 0;
    resolved = false; load_value = 0; leak = false; alive = false }

(* Per-thread pending FIFO as a preallocated slot array, reused across
   launches and across runs (allocation discipline: the former
   representation was an [entry list ref] rebuilt by [List.filter] on
   every commit and copied whole by [q := !q @ [e]] on every issue).
   Entries live in [buf.(head .. tail-1)] in issue (FIFO) order; a
   committed entry is tombstoned in place ([alive = false]) because
   commits can happen mid-queue (partition heads).  [head] always points
   at a live entry while [live > 0]; vacated slots are re-pointed at
   [dummy_entry] so retired entries stay collectable. *)
type queue = {
  mutable buf : entry array;
  mutable head : int;  (* first live slot (when live > 0) *)
  mutable tail : int;  (* one past the last used slot *)
  mutable live : int;  (* pending entries, i.e. the logical length *)
}

let new_queue () = { buf = Array.make 8 dummy_entry; head = 0; tail = 0; live = 0 }

let q_reset q =
  if q.tail > 0 then Array.fill q.buf 0 q.tail dummy_entry;
  q.head <- 0;
  q.tail <- 0;
  q.live <- 0

(* Advance [head] past tombstones (or reset the slot window when the
   queue empties), clearing vacated slots. *)
let q_settle q =
  if q.live = 0 then begin
    if q.tail > q.head then Array.fill q.buf q.head (q.tail - q.head) dummy_entry;
    q.head <- 0;
    q.tail <- 0
  end
  else
    while not q.buf.(q.head).alive do
      q.buf.(q.head) <- dummy_entry;
      q.head <- q.head + 1
    done

(* Append at the tail; when the slot window is exhausted, compact the
   live entries to the front (tombstones are dropped), doubling the slot
   array only if it is genuinely full of live entries.  Amortised
   allocation-free once the buffer has grown to the chip's queue
   capacity. *)
let q_push q e =
  let cap = Array.length q.buf in
  if q.tail = cap then begin
    let dst = if q.live = cap then Array.make (cap * 2) dummy_entry else q.buf in
    let j = ref 0 in
    for i = q.head to q.tail - 1 do
      let e' = q.buf.(i) in
      if e'.alive then begin
        dst.(!j) <- e';
        incr j
      end
    done;
    if dst == q.buf then Array.fill dst !j (q.tail - !j) dummy_entry;
    q.buf <- dst;
    q.head <- 0;
    q.tail <- !j
  end;
  q.buf.(q.tail) <- e;
  q.tail <- q.tail + 1;
  q.live <- q.live + 1

(* Pattern state of one stressing thread, used by the chip's traffic
   response (Sec. 3.3): consecutive-access run lengths and the kind of the
   previous access decide how much contention an access generates.
   [prev] is encoded as an int (0 none / 1 load / 2 store) so updating it
   allocates nothing. *)
type stress_state = {
  mutable prev : int;
  mutable run : int;
  mutable prev_run : int;  (* length of the run before the current one *)
}

let prev_code = function Load_k -> 1 | Store_k -> 2

type t = {
  chip : Chip.t;
  rng : Rng.t;
  global : int array;
  mutable queues : queue array;
      (* per-thread pending FIFOs; sized to the high-water thread count
         and reused across launches *)
  mutable seq : int;
  mutable now : int;
  (* contention pools per partition, with lazy exponential decay *)
  read_pool : float array;
  write_pool : float array;
  pool_stamp : int array;
  decay_pow : float array;
  (* stressing pattern state, dense by stress thread id; [stress_gen]
     carries a per-launch generation stamp so clearing all states is one
     integer bump instead of a table walk *)
  mutable stress_states : stress_state array;
  mutable stress_gen : int array;
  mutable cur_gen : int;
  nonempty : (int, unit) Hashtbl.t;  (* threads with pending entries *)
  (* scratch for [attempt_commits]: the partition-head snapshot and the
     seen-partition stamps, preallocated so the hot path allocates
     nothing *)
  heads_scratch : entry array;
  seen_stamp : int array;
  mutable seen_gen : int;
  sink : Trace.t;  (* the device's trace sink; shared with Sim *)
  mutable n_reorders : int;
  mutable n_stress : int;  (* stress accesses performed, a tuning statistic *)
  mutable stress_gain : float;
      (* per-launch intensity of stressing accesses; models the hardware
         parallelism of concentrated stress (see Stress.spec intensity) *)
  strong : bool;
  mutable soft : (Rng.t * float) option;
      (* armed soft-error injection: (dedicated rng, per-store flip
         probability).  The rng is never [t.rng], so arming injection does
         not perturb the simulated execution itself. *)
  mutable n_bitflips : int;
}

let strong t = t.strong

let create ~chip ~rng ~words ~nthreads =
  let w = chip.Chip.weakness in
  let n = w.n_partitions in
  let decay_pow = Array.make 128 0.0 in
  decay_pow.(0) <- 1.0;
  for i = 1 to 127 do
    decay_pow.(i) <- decay_pow.(i - 1) *. w.decay_per_tick
  done;
  { chip; rng; global = Array.make words 0;
    queues = Array.init nthreads (fun _ -> new_queue ());
    seq = 0; now = 0;
    read_pool = Array.make n 0.0;
    write_pool = Array.make n 0.0;
    pool_stamp = Array.make n 0;
    decay_pow;
    stress_states =
      Array.init nthreads (fun _ -> { prev = 0; run = 0; prev_run = 0 });
    stress_gen = Array.make nthreads 0;
    cur_gen = 0;
    nonempty = Hashtbl.create 64;
    heads_scratch = Array.make (Int.max 1 w.queue_cap) dummy_entry;
    seen_stamp = Array.make n 0;
    seen_gen = 0;
    sink = Trace.create ();
    n_reorders = 0;
    n_stress = 0;
    stress_gain = 1.0;
    strong = w.max_delay <= 0.0 && w.base_delay <= 0.0;
    soft = None;
    n_bitflips = 0 }

let read t addr = t.global.(addr)
let write t addr v = t.global.(addr) <- v
let words t = Array.length t.global

let set_stress_gain t g = t.stress_gain <- g

let grow_thread_state t ~nthreads =
  let cap = Array.length t.queues in
  if cap < nthreads then begin
    let old = t.queues in
    t.queues <-
      Array.init nthreads (fun i -> if i < cap then old.(i) else new_queue ())
  end;
  let scap = Array.length t.stress_states in
  if scap < nthreads then begin
    let old = t.stress_states and old_gen = t.stress_gen in
    t.stress_states <-
      Array.init nthreads (fun i ->
          if i < scap then old.(i) else { prev = 0; run = 0; prev_run = 0 });
    t.stress_gen <-
      Array.init nthreads (fun i -> if i < scap then old_gen.(i) else 0)
  end

let reset_threads t ~nthreads =
  grow_thread_state t ~nthreads;
  Array.iter q_reset t.queues;
  Array.fill t.read_pool 0 (Array.length t.read_pool) 0.0;
  Array.fill t.write_pool 0 (Array.length t.write_pool) 0.0;
  Array.fill t.pool_stamp 0 (Array.length t.pool_stamp) 0;
  t.cur_gen <- t.cur_gen + 1;
  Hashtbl.reset t.nonempty

let reset_device t =
  Array.fill t.global 0 (Array.length t.global) 0;
  Array.iter q_reset t.queues;
  Array.fill t.read_pool 0 (Array.length t.read_pool) 0.0;
  Array.fill t.write_pool 0 (Array.length t.write_pool) 0.0;
  Array.fill t.pool_stamp 0 (Array.length t.pool_stamp) 0;
  t.cur_gen <- t.cur_gen + 1;
  Hashtbl.reset t.nonempty;
  t.seq <- 0;
  t.now <- 0;
  t.n_reorders <- 0;
  t.n_stress <- 0;
  t.stress_gain <- 1.0;
  t.soft <- None;
  t.n_bitflips <- 0;
  Trace.reset t.sink

let tick t = t.now <- t.now + 1

let rand t bound = if bound <= 0 then 0 else Rng.int t.rng bound

let sink t = t.sink
let now t = t.now

let observe_access t ~tid ~addr ~write ~atomic =
  if Trace.active t.sink then
    Trace.emit t.sink ~tick:t.now (Trace.Access { tid; addr; write; atomic })

let reorders t = t.n_reorders
let stress_accesses t = t.n_stress

let set_soft_errors t soft = t.soft <- soft
let bitflips t = t.n_bitflips

(* A transient soft error on a committing store: flip one low bit of the
   value as it lands in global memory (gpuFI-style).  Drawn from the
   dedicated soft-error rng so the schedule of the simulated execution is
   untouched; only the stored value differs. *)
let maybe_flip t ~tid ~addr v =
  match t.soft with
  | None -> v
  | Some (rng, rate) ->
    if rate > 0.0 && Rng.chance rng rate then begin
      let bit = Rng.int rng 30 in
      let v' = v lxor (1 lsl bit) in
      t.n_bitflips <- t.n_bitflips + 1;
      if Trace.active t.sink then
        Trace.emit t.sink ~tick:t.now
          (Trace.Bitflip { tid; addr; bit; before = v; after = v' });
      v'
    end
    else v

(* ------------------------------------------------------------------ *)
(* Contention pools                                                     *)

let refresh_pool t part =
  let dt = t.now - t.pool_stamp.(part) in
  if dt > 0 then begin
    let f = if dt < 128 then t.decay_pow.(dt) else 0.0 in
    t.read_pool.(part) <- t.read_pool.(part) *. f;
    t.write_pool.(part) <- t.write_pool.(part) *. f;
    t.pool_stamp.(part) <- t.now
  end

let add_contention t part ckind amount =
  refresh_pool t part;
  match ckind with
  | `Load -> t.read_pool.(part) <- t.read_pool.(part) +. amount
  | `Store -> t.write_pool.(part) <- t.write_pool.(part) +. amount

let contention t ~part ~kind =
  refresh_pool t part;
  let w = t.chip.Chip.weakness in
  match kind with
  | `Load -> t.read_pool.(part) +. (w.cross *. t.write_pool.(part))
  | `Store -> t.write_pool.(part) +. (w.cross *. t.read_pool.(part))

let stress_state t sid =
  if sid >= Array.length t.stress_states then
    grow_thread_state t ~nthreads:(sid + 1);
  let s = t.stress_states.(sid) in
  if t.stress_gen.(sid) <> t.cur_gen then begin
    t.stress_gen.(sid) <- t.cur_gen;
    s.prev <- 0;
    s.run <- 0;
    s.prev_run <- 0
  end;
  s

(* Contention generated by one stressing access, given the thread's access
   pattern so far.  At a loop boundary the pattern linkage to the previous
   iteration is weakened by the chip's boundary factor, which is why
   rotations of a stressing sequence are not equally effective. *)
let traffic_bump t st k ~boundary =
  let tr = t.chip.Chip.traffic in
  let kc = prev_code k in
  let same = st.prev = kc in
  let run = if same then st.run + 1 else 1 in
  let runfac_arr = match k with Load_k -> tr.run_ld | Store_k -> tr.run_st in
  let runfac = runfac_arr.(min run (Array.length runfac_arr) - 1) in
  (* Run lengths persist across loop iterations: an all-store (or
     all-load) loop degenerates to one endless run whose pressure decays
     to the run table's tail, which is why pure sequences are the worst
     stressors (Table 3).  The loop boundary only perturbs the
     pattern-dependent bonuses, scaled by the chip's boundary factor --
     the reason rotations of a sequence are not equally effective. *)
  let bf = if boundary then tr.boundary_factor else 1.0 in
  let base = (match k with Load_k -> tr.w_ld | Store_k -> tr.w_st) *. runfac in
  let trans =
    if st.prev <> 0 && st.prev <> kc then tr.trans_bonus *. bf else 0.0
  in
  let flush =
    if k = Store_k && st.prev = prev_code Load_k then
      tr.flush_bonus *. float_of_int (min st.run tr.flush_cap) *. bf
    else 0.0
  in
  if same then st.run <- run
  else begin
    st.prev_run <- st.run;
    st.run <- 1;
    st.prev <- kc
  end;
  base +. trans +. flush

let stress_access t ~sid ~kind ~addr ~boundary =
  t.n_stress <- t.n_stress + 1;
  let k = match kind with `Load -> Load_k | `Store -> Store_k in
  let st = stress_state t sid in
  let amount = traffic_bump t st k ~boundary *. t.stress_gain in
  let part = Chip.partition t.chip addr in
  add_contention t part kind amount;
  (* Touch memory so stressing is a real workload, not only bookkeeping. *)
  match kind with
  | `Load -> ignore (t.global.(addr))
  | `Store -> t.global.(addr) <- sid

let app_access_bump = 0.02

let app_access t ~kind ~addr =
  let part = Chip.partition t.chip addr in
  add_contention t part kind app_access_bump

(* ------------------------------------------------------------------ *)
(* Pending queues                                                       *)

let queue t tid = t.queues.(tid)

let mark_nonempty t tid q =
  if q.live = 0 then Hashtbl.remove t.nonempty tid
  else Hashtbl.replace t.nonempty tid ()

(* Resolve a load's value: forward from the newest older pending store of
   the same thread to the same address, else read memory. *)
let load_value t tid e =
  let q = queue t tid in
  let v = ref 0 and found = ref false in
  for i = q.head to q.tail - 1 do
    let e' = q.buf.(i) in
    if e'.alive && e'.ekind == Store_k && e'.addr = e.addr && e'.seq < e.seq
    then begin
      v := e'.store_value;
      found := true
    end
  done;
  if !found then !v else t.global.(e.addr)

(* Commit one entry: apply its global effect and remove it.  An entry
   that overtakes an older pending one is a visible weak-memory event:
   counted, and reported on the trace sink as a [Reorder] (the feed of
   the Diagnosis observer). *)
let commit t tid e =
  let q = queue t tid in
  (match e.ekind with
  | Store_k -> t.global.(e.addr) <- maybe_flip t ~tid ~addr:e.addr e.store_value
  | Load_k ->
    if not e.resolved then begin
      e.load_value <- load_value t tid e;
      e.resolved <- true
    end);
  e.alive <- false;
  q.live <- q.live - 1;
  (* [older]: does a live entry issued before [e] remain?  [overtaken]
     tracks the newest such entry's address (FIFO scan, last match), which
     is what the former [List.fold_left] over the filtered list reported. *)
  let older = ref false and overtaken = ref 0 in
  for i = q.head to q.tail - 1 do
    let e' = q.buf.(i) in
    if e'.alive && e'.seq < e.seq then begin
      older := true;
      overtaken := e'.addr
    end
  done;
  q_settle q;
  mark_nonempty t tid q;
  if !older then t.n_reorders <- t.n_reorders + 1;
  if Trace.active t.sink then begin
    Trace.emit t.sink ~tick:t.now
      (Trace.Commit
         { tid; addr = e.addr; is_store = (e.ekind = Store_k);
           value =
             (match e.ekind with
             | Store_k -> e.store_value
             | Load_k -> e.load_value);
           reordered = !older });
    if !older then
      Trace.emit t.sink ~tick:t.now
        (Trace.Reorder { tid; overtaken = !overtaken; committed = e.addr })
  end

let pending_count t ~tid = (queue t tid).live

let delay_for t e =
  let w = t.chip.Chip.weakness in
  let kind = match e.ekind with Load_k -> `Load | Store_k -> `Store in
  let c = contention t ~part:e.part ~kind in
  let factor = c *. c /. ((w.knee *. w.knee) +. (c *. c)) in
  let kw = match e.ekind with
    | Load_k -> w.ld_delay_w
    | Store_k -> w.st_delay_w
  in
  Float.min w.max_delay (w.base_delay +. (w.gain *. factor *. kw))

(* Partition heads: entries with no older pending entry in the same
   partition.  Leaking entries (980 quirk) are exempt in both directions.
   The snapshot lands in [heads_scratch] (at most [queue_cap] entries, so
   the scratch never grows); seen-partition bookkeeping uses generation
   stamps so nothing is cleared or allocated per call. *)
let attempt_commits t ~tid =
  let q = queue t tid in
  if q.live > 0 then begin
    t.seen_gen <- t.seen_gen + 1;
    let gen = t.seen_gen in
    let n = ref 0 in
    for i = q.head to q.tail - 1 do
      let e = q.buf.(i) in
      if e.alive then
        if e.leak then begin
          t.heads_scratch.(!n) <- e;
          incr n
        end
        else if t.seen_stamp.(e.part) <> gen then begin
          t.seen_stamp.(e.part) <- gen;
          t.heads_scratch.(!n) <- e;
          incr n
        end
    done;
    for i = 0 to !n - 1 do
      let e = t.heads_scratch.(i) in
      if not (Rng.chance t.rng (delay_for t e)) then commit t tid e
    done;
    Array.fill t.heads_scratch 0 !n dummy_entry
  end

let drain t ~tid =
  let q = queue t tid in
  let n = q.live in
  (* Sequence order: no reordering is introduced by a fence.  The loop
     bounds are fixed up front; commits only tombstone entries, never
     move them, so the FIFO walk visits exactly the pre-drain pending
     set. *)
  let t0 = q.tail in
  for i = q.head to t0 - 1 do
    let e = q.buf.(i) in
    if e.alive then commit t tid e
  done;
  n

let drain_step t ~tid =
  let q = queue t tid in
  if q.live > 0 then commit t tid q.buf.(q.head);
  q.live = 0

(* Commit the [n]-th live entry (FIFO position) of [tid]'s queue.  This
   is the replay hook: a model-checker witness identifies commits by
   queue position, not entry id, so replay is insensitive to slot-window
   compaction. *)
let commit_nth t ~tid ~n =
  let q = queue t tid in
  if n < 0 || n >= q.live then
    invalid_arg
      (Printf.sprintf "Memsys.commit_nth: index %d out of 0..%d" n
         (q.live - 1));
  let k = ref n and i = ref q.head and chosen = ref dummy_entry in
  while !chosen == dummy_entry do
    let e = q.buf.(!i) in
    if e.alive then
      if !k = 0 then chosen := e else decr k;
    incr i
  done;
  commit t tid !chosen

let any_pending t = Hashtbl.length t.nonempty > 0

let random_background_drain t =
  let n = Hashtbl.length t.nonempty in
  if n > 0 then begin
    let i = Rng.int t.rng n in
    let tid = ref (-1) in
    let j = ref 0 in
    Hashtbl.iter
      (fun k () ->
        if !j = i then tid := k;
        incr j)
      t.nonempty;
    if !tid >= 0 then attempt_commits t ~tid:!tid
  end

let fresh_entry t ~addr ~ekind ~store_value =
  let w = t.chip.Chip.weakness in
  t.seq <- t.seq + 1;
  { seq = t.seq; addr; part = Chip.partition t.chip addr; ekind; store_value;
    resolved = false; load_value = 0;
    leak = w.same_patch_leak > 0.0 && Rng.chance t.rng w.same_patch_leak;
    alive = false }

let enqueue t tid e =
  if Trace.active t.sink then
    Trace.emit t.sink ~tick:t.now
      (Trace.Issue
         { tid; addr = e.addr; part = e.part; is_store = (e.ekind = Store_k) });
  let q = queue t tid in
  let w = t.chip.Chip.weakness in
  if q.live >= w.queue_cap && q.live > 0 then
    (* Capacity pressure: retire the oldest entry first. *)
    commit t tid q.buf.(q.head);
  e.alive <- true;
  q_push q e;
  mark_nonempty t tid q

let load t ~tid ~addr =
  observe_access t ~tid ~addr ~write:false ~atomic:false;
  if t.strong then begin
    t.seq <- t.seq + 1;
    { seq = t.seq; addr; part = 0; ekind = Load_k; store_value = 0;
      resolved = true; load_value = t.global.(addr); leak = false;
      alive = false }
  end
  else begin
    let e = fresh_entry t ~addr ~ekind:Load_k ~store_value:0 in
    enqueue t tid e;
    e
  end

let resolved (e : entry) = e.resolved

let force t ~tid e =
  if e.resolved then e.load_value
  else begin
    (* Still pending: resolving now is an early (possibly out-of-order)
       commit forced by a dependency. *)
    commit t tid e;
    assert e.resolved;
    e.load_value
  end

let store t ~tid ~addr ~value =
  observe_access t ~tid ~addr ~write:true ~atomic:false;
  if t.strong then t.global.(addr) <- maybe_flip t ~tid ~addr value
  else enqueue t tid (fresh_entry t ~addr ~ekind:Store_k ~store_value:value)

let atomic t ~tid ~addr f =
  observe_access t ~tid ~addr ~write:true ~atomic:true;
  if not t.strong then begin
    (* The atomic must observe this thread's program-order past on the
       same address, so retire pending same-address entries first. *)
    let q = queue t tid in
    let t0 = q.tail in
    for i = q.head to t0 - 1 do
      let e = q.buf.(i) in
      if e.alive && e.addr = addr then commit t tid e
    done;
    (* The atomic takes effect now while older plain operations are still
       pending: the unlock-overtakes-critical-section hazard.  Record each
       bypassed entry as a reordering event for the diagnostics. *)
    for i = q.head to q.tail - 1 do
      let e = q.buf.(i) in
      if e.alive then begin
        t.n_reorders <- t.n_reorders + 1;
        if Trace.active t.sink then
          Trace.emit t.sink ~tick:t.now
            (Trace.Reorder { tid; overtaken = e.addr; committed = addr })
      end
    done
  end;
  let old = t.global.(addr) in
  t.global.(addr) <- f old;
  if Trace.active t.sink then
    Trace.emit t.sink ~tick:t.now
      (Trace.Atomic_rmw { tid; addr; before = old; after = t.global.(addr) });
  old
