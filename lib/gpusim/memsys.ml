type kind = Load_k | Store_k

type entry = {
  seq : int;
  addr : int;
  part : int;
  ekind : kind;
  store_value : int;  (* meaningful for stores *)
  mutable load_value : int option;  (* meaningful for loads once resolved *)
  leak : bool;  (* exempt from same-partition FIFO (GTX 980 quirk) *)
}

type pending = entry

(* Pattern state of one stressing thread, used by the chip's traffic
   response (Sec. 3.3): consecutive-access run lengths and the kind of the
   previous access decide how much contention an access generates. *)
type stress_state = {
  mutable prev : kind option;
  mutable run : int;
  mutable prev_run : int;  (* length of the run before the current one *)
}

type t = {
  chip : Chip.t;
  rng : Rng.t;
  global : int array;
  mutable queues : entry list ref array;
      (* per-thread pending FIFOs, oldest first *)
  mutable seq : int;
  mutable now : int;
  (* contention pools per partition, with lazy exponential decay *)
  read_pool : float array;
  write_pool : float array;
  pool_stamp : int array;
  decay_pow : float array;
  stress_states : (int, stress_state) Hashtbl.t;
  nonempty : (int, unit) Hashtbl.t;  (* threads with pending entries *)
  sink : Trace.t;  (* the device's trace sink; shared with Sim *)
  mutable n_reorders : int;
  mutable n_stress : int;  (* stress accesses performed, a tuning statistic *)
  mutable stress_gain : float;
      (* per-launch intensity of stressing accesses; models the hardware
         parallelism of concentrated stress (see Stress.spec intensity) *)
  strong : bool;
  mutable soft : (Rng.t * float) option;
      (* armed soft-error injection: (dedicated rng, per-store flip
         probability).  The rng is never [t.rng], so arming injection does
         not perturb the simulated execution itself. *)
  mutable n_bitflips : int;
}

let strong t = t.strong

let create ~chip ~rng ~words ~nthreads =
  let w = chip.Chip.weakness in
  let n = w.n_partitions in
  let decay_pow = Array.make 128 0.0 in
  decay_pow.(0) <- 1.0;
  for i = 1 to 127 do
    decay_pow.(i) <- decay_pow.(i - 1) *. w.decay_per_tick
  done;
  { chip; rng; global = Array.make words 0;
    queues = Array.init nthreads (fun _ -> ref []);
    seq = 0; now = 0;
    read_pool = Array.make n 0.0;
    write_pool = Array.make n 0.0;
    pool_stamp = Array.make n 0;
    decay_pow;
    stress_states = Hashtbl.create 64;
    nonempty = Hashtbl.create 64;
    sink = Trace.create ();
    n_reorders = 0;
    n_stress = 0;
    stress_gain = 1.0;
    strong = w.max_delay <= 0.0 && w.base_delay <= 0.0;
    soft = None;
    n_bitflips = 0 }

let read t addr = t.global.(addr)
let write t addr v = t.global.(addr) <- v
let words t = Array.length t.global

let set_stress_gain t g = t.stress_gain <- g

let reset_threads t ~nthreads =
  t.queues <- Array.init nthreads (fun _ -> ref []);
  Array.fill t.read_pool 0 (Array.length t.read_pool) 0.0;
  Array.fill t.write_pool 0 (Array.length t.write_pool) 0.0;
  Array.fill t.pool_stamp 0 (Array.length t.pool_stamp) 0;
  Hashtbl.reset t.stress_states;
  Hashtbl.reset t.nonempty

let tick t = t.now <- t.now + 1

let rand t bound = if bound <= 0 then 0 else Rng.int t.rng bound

let sink t = t.sink
let now t = t.now

let observe_access t ~tid ~addr ~write ~atomic =
  if Trace.active t.sink then
    Trace.emit t.sink ~tick:t.now (Trace.Access { tid; addr; write; atomic })

let reorders t = t.n_reorders
let stress_accesses t = t.n_stress

let set_soft_errors t soft = t.soft <- soft
let bitflips t = t.n_bitflips

(* A transient soft error on a committing store: flip one low bit of the
   value as it lands in global memory (gpuFI-style).  Drawn from the
   dedicated soft-error rng so the schedule of the simulated execution is
   untouched; only the stored value differs. *)
let maybe_flip t ~tid ~addr v =
  match t.soft with
  | None -> v
  | Some (rng, rate) ->
    if rate > 0.0 && Rng.chance rng rate then begin
      let bit = Rng.int rng 30 in
      let v' = v lxor (1 lsl bit) in
      t.n_bitflips <- t.n_bitflips + 1;
      if Trace.active t.sink then
        Trace.emit t.sink ~tick:t.now
          (Trace.Bitflip { tid; addr; bit; before = v; after = v' });
      v'
    end
    else v

(* ------------------------------------------------------------------ *)
(* Contention pools                                                     *)

let refresh_pool t part =
  let dt = t.now - t.pool_stamp.(part) in
  if dt > 0 then begin
    let f = if dt < 128 then t.decay_pow.(dt) else 0.0 in
    t.read_pool.(part) <- t.read_pool.(part) *. f;
    t.write_pool.(part) <- t.write_pool.(part) *. f;
    t.pool_stamp.(part) <- t.now
  end

let add_contention t part ckind amount =
  refresh_pool t part;
  match ckind with
  | `Load -> t.read_pool.(part) <- t.read_pool.(part) +. amount
  | `Store -> t.write_pool.(part) <- t.write_pool.(part) +. amount

let contention t ~part ~kind =
  refresh_pool t part;
  let w = t.chip.Chip.weakness in
  match kind with
  | `Load -> t.read_pool.(part) +. (w.cross *. t.write_pool.(part))
  | `Store -> t.write_pool.(part) +. (w.cross *. t.read_pool.(part))

let stress_state t sid =
  match Hashtbl.find_opt t.stress_states sid with
  | Some s -> s
  | None ->
    let s = { prev = None; run = 0; prev_run = 0 } in
    Hashtbl.add t.stress_states sid s;
    s

(* Contention generated by one stressing access, given the thread's access
   pattern so far.  At a loop boundary the pattern linkage to the previous
   iteration is weakened by the chip's boundary factor, which is why
   rotations of a stressing sequence are not equally effective. *)
let traffic_bump t st k ~boundary =
  let tr = t.chip.Chip.traffic in
  let same = match st.prev with Some p -> p = k | None -> false in
  let run = if same then st.run + 1 else 1 in
  let runfac_arr = match k with Load_k -> tr.run_ld | Store_k -> tr.run_st in
  let runfac = runfac_arr.(min run (Array.length runfac_arr) - 1) in
  (* Run lengths persist across loop iterations: an all-store (or
     all-load) loop degenerates to one endless run whose pressure decays
     to the run table's tail, which is why pure sequences are the worst
     stressors (Table 3).  The loop boundary only perturbs the
     pattern-dependent bonuses, scaled by the chip's boundary factor --
     the reason rotations of a sequence are not equally effective. *)
  let bf = if boundary then tr.boundary_factor else 1.0 in
  let base = (match k with Load_k -> tr.w_ld | Store_k -> tr.w_st) *. runfac in
  let trans =
    match st.prev with
    | Some p when p <> k -> tr.trans_bonus *. bf
    | Some _ | None -> 0.0
  in
  let flush =
    match (k, st.prev) with
    | Store_k, Some Load_k ->
      tr.flush_bonus *. float_of_int (min st.run tr.flush_cap) *. bf
    | _, _ -> 0.0
  in
  if same then st.run <- run
  else begin
    st.prev_run <- st.run;
    st.run <- 1;
    st.prev <- Some k
  end;
  base +. trans +. flush

let stress_access t ~sid ~kind ~addr ~boundary =
  t.n_stress <- t.n_stress + 1;
  let k = match kind with `Load -> Load_k | `Store -> Store_k in
  let st = stress_state t sid in
  let amount = traffic_bump t st k ~boundary *. t.stress_gain in
  let part = Chip.partition t.chip addr in
  add_contention t part kind amount;
  (* Touch memory so stressing is a real workload, not only bookkeeping. *)
  match kind with
  | `Load -> ignore (t.global.(addr))
  | `Store -> t.global.(addr) <- sid

let app_access_bump = 0.02

let app_access t ~kind ~addr =
  let part = Chip.partition t.chip addr in
  add_contention t part kind app_access_bump

(* ------------------------------------------------------------------ *)
(* Pending queues                                                       *)

let queue t tid = t.queues.(tid)

let mark_nonempty t tid q =
  if !q = [] then Hashtbl.remove t.nonempty tid
  else Hashtbl.replace t.nonempty tid ()

(* Resolve a load's value: forward from the newest older pending store of
   the same thread to the same address, else read memory. *)
let load_value t tid e =
  let q = queue t tid in
  let forwarded =
    List.fold_left
      (fun acc e' ->
        match e'.ekind with
        | Store_k when e'.addr = e.addr && e'.seq < e.seq -> Some e'.store_value
        | Store_k | Load_k -> acc)
      None !q
  in
  match forwarded with Some v -> v | None -> t.global.(e.addr)

(* Commit one entry: apply its global effect and remove it.  An entry
   that overtakes an older pending one is a visible weak-memory event:
   counted, and reported on the trace sink as a [Reorder] (the feed of
   the Diagnosis observer). *)
let commit t tid e =
  let q = queue t tid in
  (match e.ekind with
  | Store_k -> t.global.(e.addr) <- maybe_flip t ~tid ~addr:e.addr e.store_value
  | Load_k -> if e.load_value = None then e.load_value <- Some (load_value t tid e));
  let remaining = List.filter (fun e' -> e' != e) !q in
  q := remaining;
  mark_nonempty t tid q;
  let older = List.exists (fun (e' : entry) -> e'.seq < e.seq) remaining in
  if older then t.n_reorders <- t.n_reorders + 1;
  if Trace.active t.sink then begin
    Trace.emit t.sink ~tick:t.now
      (Trace.Commit
         { tid; addr = e.addr; is_store = (e.ekind = Store_k);
           value =
             (match e.ekind with
             | Store_k -> e.store_value
             | Load_k -> Option.value ~default:0 e.load_value);
           reordered = older });
    if older then
      let overtaken =
        List.fold_left
          (fun acc (e' : entry) -> if e'.seq < e.seq then Some e'.addr else acc)
          None remaining
      in
      match overtaken with
      | Some a ->
        Trace.emit t.sink ~tick:t.now
          (Trace.Reorder { tid; overtaken = a; committed = e.addr })
      | None -> ()
  end

let pending_count t ~tid = List.length !(queue t tid)

(* Partition heads: entries with no older pending entry in the same
   partition.  Leaking entries (980 quirk) are exempt in both directions. *)
let heads q =
  let rec go seen acc = function
    | [] -> List.rev acc
    | e :: rest ->
      if e.leak then go seen (e :: acc) rest
      else if List.mem e.part seen then go seen acc rest
      else go (e.part :: seen) (e :: acc) rest
  in
  go [] [] q

let delay_for t e =
  let w = t.chip.Chip.weakness in
  let kind = match e.ekind with Load_k -> `Load | Store_k -> `Store in
  let c = contention t ~part:e.part ~kind in
  let factor = c *. c /. ((w.knee *. w.knee) +. (c *. c)) in
  let kw = match e.ekind with
    | Load_k -> w.ld_delay_w
    | Store_k -> w.st_delay_w
  in
  Float.min w.max_delay (w.base_delay +. (w.gain *. factor *. kw))

let attempt_commits t ~tid =
  let q = queue t tid in
  if !q <> [] then
    List.iter
      (fun e -> if not (Rng.chance t.rng (delay_for t e)) then commit t tid e)
      (heads !q)

let drain t ~tid =
  let q = queue t tid in
  let n = List.length !q in
  (* Sequence order: no reordering is introduced by a fence. *)
  List.iter (fun e -> commit t tid e) !q;
  n

let drain_step t ~tid =
  let q = queue t tid in
  (match !q with e :: _ -> commit t tid e | [] -> ());
  !q = []

let any_pending t = Hashtbl.length t.nonempty > 0

let random_background_drain t =
  let n = Hashtbl.length t.nonempty in
  if n > 0 then begin
    let i = Rng.int t.rng n in
    let tid = ref (-1) in
    let j = ref 0 in
    Hashtbl.iter
      (fun k () ->
        if !j = i then tid := k;
        incr j)
      t.nonempty;
    if !tid >= 0 then attempt_commits t ~tid:!tid
  end

let fresh_entry t ~addr ~ekind ~store_value =
  let w = t.chip.Chip.weakness in
  t.seq <- t.seq + 1;
  { seq = t.seq; addr; part = Chip.partition t.chip addr; ekind; store_value;
    load_value = None;
    leak = w.same_patch_leak > 0.0 && Rng.chance t.rng w.same_patch_leak }

let enqueue t tid e =
  if Trace.active t.sink then
    Trace.emit t.sink ~tick:t.now
      (Trace.Issue
         { tid; addr = e.addr; part = e.part; is_store = (e.ekind = Store_k) });
  let q = queue t tid in
  let w = t.chip.Chip.weakness in
  if List.length !q >= w.queue_cap then begin
    (* Capacity pressure: retire the oldest entry first. *)
    match !q with oldest :: _ -> commit t tid oldest | [] -> ()
  end;
  q := !q @ [ e ];
  mark_nonempty t tid q

let load t ~tid ~addr =
  observe_access t ~tid ~addr ~write:false ~atomic:false;
  if t.strong then begin
    t.seq <- t.seq + 1;
    { seq = t.seq; addr; part = 0; ekind = Load_k; store_value = 0;
      load_value = Some t.global.(addr); leak = false }
  end
  else begin
    let e = fresh_entry t ~addr ~ekind:Load_k ~store_value:0 in
    enqueue t tid e;
    e
  end

let resolved (e : entry) = e.load_value <> None

let force t ~tid e =
  match e.load_value with
  | Some v -> v
  | None ->
    (* Still pending: resolving now is an early (possibly out-of-order)
       commit forced by a dependency. *)
    commit t tid e;
    (match e.load_value with Some v -> v | None -> assert false)

let store t ~tid ~addr ~value =
  observe_access t ~tid ~addr ~write:true ~atomic:false;
  if t.strong then t.global.(addr) <- maybe_flip t ~tid ~addr value
  else enqueue t tid (fresh_entry t ~addr ~ekind:Store_k ~store_value:value)

let atomic t ~tid ~addr f =
  observe_access t ~tid ~addr ~write:true ~atomic:true;
  if not t.strong then begin
    (* The atomic must observe this thread's program-order past on the
       same address, so retire pending same-address entries first. *)
    let q = queue t tid in
    let same = List.filter (fun e -> e.addr = addr) !q in
    List.iter (fun e -> commit t tid e) same;
    (* The atomic takes effect now while older plain operations are still
       pending: the unlock-overtakes-critical-section hazard.  Record each
       bypassed entry as a reordering event for the diagnostics. *)
    List.iter
      (fun (e : entry) ->
        t.n_reorders <- t.n_reorders + 1;
        if Trace.active t.sink then
          Trace.emit t.sink ~tick:t.now
            (Trace.Reorder { tid; overtaken = e.addr; committed = addr }))
      !q
  end;
  let old = t.global.(addr) in
  t.global.(addr) <- f old;
  if Trace.active t.sink then
    Trace.emit t.sink ~tick:t.now
      (Trace.Atomic_rmw { tid; addr; before = old; after = t.global.(addr) });
  old
